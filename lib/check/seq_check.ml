module Circuit = Ppet_netlist.Circuit
module Logic3 = Ppet_retiming.Logic3
module Rgraph = Ppet_retiming.Rgraph
module Prng = Ppet_digraph.Prng

type stimulus = {
  input_names : string array;
  values : Logic3.t array array;
}

type divergence = {
  sequence : string;
  cycle : int;
  output : string;
  left : Logic3.t;
  right : Logic3.t;
  latency : int;
  stimulus : stimulus;
}

type verdict =
  | Equivalent of { sequences : int; cycles : int; latency : int }
  | Inequivalent of divergence

let input_names_union left right =
  let seen = Hashtbl.create 16 in
  let acc = ref [] in
  let add c =
    Array.iter
      (fun id ->
        let n = (Circuit.node c id).Circuit.name in
        if not (Hashtbl.mem seen n) then begin
          Hashtbl.add seen n ();
          acc := n :: !acc
        end)
      c.Circuit.inputs
  in
  add left;
  add right;
  Array.of_list (List.rev !acc)

(* drive a simulation from a stimulus; [force] wins over the recorded
   trace, names absent from both read constant zero *)
let drive stimulus force =
  let index = Hashtbl.create (Array.length stimulus.input_names) in
  Array.iteri
    (fun i n -> Hashtbl.replace index n i)
    stimulus.input_names;
  fun ~cycle name ->
    match Hashtbl.find_opt force name with
    | Some v -> v
    | None -> (
      match Hashtbl.find_opt index name with
      | Some i when cycle < Array.length stimulus.values ->
        stimulus.values.(cycle).(i)
      | Some _ | None -> Logic3.Zero)

let force_table force_right =
  let tbl = Hashtbl.create 8 in
  List.iter (fun (n, v) -> Hashtbl.replace tbl n v) force_right;
  tbl

(* per-cycle output values as arrays, in PO position order *)
let simulate c ?init ~inputs ~cycles () =
  let rg = Rgraph.of_circuit ?init c in
  let rows = Rgraph.simulate rg ~inputs ~cycles in
  Array.map (fun row -> Array.of_list (List.map snd row)) rows

let output_names rows =
  match Array.length rows with
  | 0 -> [||]
  | _ -> Array.of_list (List.map fst rows.(0))

let directed_stimuli input_names cycles =
  let n = Array.length input_names in
  let make name value_at =
    ( name,
      {
        input_names;
        values = Array.init cycles (fun t -> Array.init n (value_at t));
      } )
  in
  [
    make "directed:zeros" (fun _ _ -> Logic3.Zero);
    make "directed:ones" (fun _ _ -> Logic3.One);
    make "directed:alternating" (fun t _ ->
        if t land 1 = 0 then Logic3.Zero else Logic3.One);
    make "directed:walking-one" (fun t i ->
        if n > 0 && i = t mod n then Logic3.One else Logic3.Zero);
  ]

let random_stimuli input_names cycles sequences seed =
  let n = Array.length input_names in
  let rng = Prng.create seed in
  List.init sequences (fun s ->
      ( Printf.sprintf "random#%d" s,
        {
          input_names;
          values =
            Array.init cycles (fun _ ->
                Array.init n (fun _ ->
                    if Prng.bool rng then Logic3.One else Logic3.Zero));
        } ))

let first_mismatch ~cycles ~latency runs =
  let rec over_runs = function
    | [] -> None
    | (label, stim, l_out, l_names, r_out) :: rest ->
      let n_po = if Array.length l_out = 0 then 0 else Array.length l_out.(0) in
      let found = ref None in
      (try
         for t = 0 to cycles - 1 do
           for k = 0 to n_po - 1 do
             let lv = l_out.(t).(k) and rv = r_out.(t + latency).(k) in
             if not (Logic3.compatible lv rv) then begin
               found :=
                 Some
                   {
                     sequence = label;
                     cycle = t;
                     output = l_names.(k);
                     left = lv;
                     right = rv;
                     latency;
                     stimulus = stim;
                   };
               raise Exit
             end
           done
         done
       with Exit -> ());
      (match !found with Some _ as d -> d | None -> over_runs rest)
  in
  over_runs runs

let check ?(sequences = 4) ?(cycles = 24) ?(seed = 0xC4ECL)
    ?(max_latency = 4) ?init_left ?init_right ?(force_right = []) left right =
  if max_latency < 0 then
    Error.raisef Error.Check "max_latency must be >= 0 (got %d)" max_latency;
  if sequences < 0 then
    Error.raisef Error.Check "sequences must be >= 0 (got %d)" sequences;
  if Array.length left.Circuit.outputs <> Array.length right.Circuit.outputs
  then
    Error.raisef Error.Check
      "output counts differ: left has %d primary outputs, right has %d"
      (Array.length left.Circuit.outputs)
      (Array.length right.Circuit.outputs);
  let input_names = input_names_union left right in
  let total = cycles + max_latency in
  let stimuli =
    directed_stimuli input_names total
    @ random_stimuli input_names total sequences seed
  in
  let no_force = Hashtbl.create 1 in
  let force = force_table force_right in
  let runs =
    List.map
      (fun (label, stim) ->
        let l_rows =
          Rgraph.simulate
            (Rgraph.of_circuit ?init:init_left left)
            ~inputs:(drive stim no_force) ~cycles:total
        in
        let l_out =
          Array.map (fun row -> Array.of_list (List.map snd row)) l_rows
        in
        let r_out =
          simulate right ?init:init_right ~inputs:(drive stim force)
            ~cycles:total ()
        in
        (label, stim, l_out, output_names l_rows, r_out))
      stimuli
  in
  let n_sequences = List.length stimuli in
  (* smallest offset under which every sequence agrees; on failure keep,
     per offset, how deep the agreement ran and report the deepest.
     Total by construction: each offset either answers Equivalent or
     hands a concrete divergence to the next one, so the verdict at
     [max_latency] always has a witness in hand. *)
  let rec align d best =
    match first_mismatch ~cycles ~latency:d runs with
    | None -> Equivalent { sequences = n_sequences; cycles; latency = d }
    | Some div ->
      let best =
        match best with Some b when b.cycle >= div.cycle -> b | _ -> div
      in
      if d >= max_latency then Inequivalent best else align (d + 1) (Some best)
  in
  align 0 None

let replay ?(latency = 0) ?init_left ?init_right ?(force_right = []) left
    right stim =
  let cycles = Array.length stim.values - latency in
  if cycles <= 0 then None
  else begin
    let total = Array.length stim.values in
    let no_force = Hashtbl.create 1 in
    let force = force_table force_right in
    let l_rows =
      Rgraph.simulate
        (Rgraph.of_circuit ?init:init_left left)
        ~inputs:(drive stim no_force) ~cycles:total
    in
    let l_out = Array.map (fun row -> Array.of_list (List.map snd row)) l_rows in
    let r_out =
      simulate right ?init:init_right ~inputs:(drive stim force) ~cycles:total
        ()
    in
    first_mismatch ~cycles ~latency
      [ ("replay", stim, l_out, output_names l_rows, r_out) ]
  end

let pp_stimulus ppf stim =
  let widths =
    Array.map (fun n -> max 1 (String.length n)) stim.input_names
  in
  Format.fprintf ppf "@[<v>cycle";
  Array.iteri
    (fun i n -> Format.fprintf ppf " %*s" widths.(i) n)
    stim.input_names;
  Array.iteri
    (fun t row ->
      Format.fprintf ppf "@,%5d" t;
      Array.iteri
        (fun i v ->
          Format.fprintf ppf " %*s" widths.(i)
            (String.make 1 (Logic3.to_char v)))
        row)
    stim.values;
  Format.fprintf ppf "@]"

let pp_divergence ppf d =
  Format.fprintf ppf
    "@[<v>divergence: output %s at cycle %d: left %a, right %a (latency %d, \
     sequence %s)@,replayable stimulus:@,  @[<v>%a@]@]"
    d.output d.cycle Logic3.pp d.left Logic3.pp d.right d.latency d.sequence
    pp_stimulus d.stimulus

let pp_verdict ppf = function
  | Equivalent { sequences; cycles; latency } ->
    Format.fprintf ppf
      "equivalent over %d sequences x %d cycles (output latency %d)"
      sequences cycles latency
  | Inequivalent d -> pp_divergence ppf d
