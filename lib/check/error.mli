(** Typed, positioned diagnostics for the Merced pipeline.

    The libraries underneath raise three stringly exceptions —
    {!Ppet_netlist.Circuit.Error}, [Invalid_argument], [Failure] — which
    tell a caller neither {e where} in the flow the failure happened nor
    whether it was expected (a malformed input netlist) or a bug (a valid
    circuit crashing the partitioner). This module gives every pipeline
    stage a machine-readable failure: the stage, the source position when
    one is known (the parser embeds ["file:line"] prefixes), and the
    message. {!wrap} is the adapter the fuzzer and the CLI run each stage
    under. *)

type stage =
  | Parse       (** .bench / .v text to {!Ppet_netlist.Circuit.t} *)
  | Partition   (** the Merced flow: saturate, cluster, Assign_CBIT *)
  | Retime      (** legal-retiming solve and netlist emission *)
  | Synthesis   (** A_CELL / CBIT / scan-chain insertion *)
  | Session     (** whole-chip self-test simulation *)
  | Check       (** equivalence checking itself *)
  | Lint        (** static analysis of an accepted or emitted netlist *)

type t = {
  stage : stage;
  position : string option;  (** ["file:line"] when the source is known *)
  message : string;
}

exception Error of t

val stage_name : stage -> string
(** Lower-case stage tag, e.g. ["retime"]. *)

val to_string : t -> string
(** ["stage: file:line: message"], position omitted when absent. *)

val pp : Format.formatter -> t -> unit

val raisef :
  stage -> ?position:string -> ('a, unit, string, 'b) format4 -> 'a
(** Raise {!Error} with a formatted message. *)

val wrap : stage -> (unit -> 'a) -> ('a, t) result
(** Run the thunk, converting the library's untyped failures into a
    positioned [t] tagged with the stage: {!Circuit.Error} (its
    ["file:line:"] prefix, when present, becomes the position),
    [Invalid_argument] and [Failure]. A typed {!Error} passes through
    unchanged. Any other exception escapes — the fuzzer's crash oracle
    treats an escapee as a violation, never as a diagnostic. *)
