(** Pipeline fuzzing of the whole Merced flow.

    Each case builds a netlist — alternating {!Ppet_netlist.Generator}
    circuits (valid by construction) and mutation-perturbed [.bench]
    text of such circuits — and pushes it through
    parse -> partition -> retime -> CBIT synthesis -> self-test session
    under a crash/invariant oracle:

    - {b crash}: no stage may let an exception escape on a circuit the
      parser accepted; a mutant the parser {e cleanly} refuses (typed
      {!Error.t} / {!Ppet_netlist.Circuit.Error}) is counted as a
      rejection, not a violation;
    - {b round-trip}: [Bench_parser.parse_string (Bench_writer.to_string c)]
      is structurally [c] ({!Ppet_netlist.Circuit.equal});
    - {b accounting}: the area breakdown is self-consistent (cut counts
      match the cut-net list, ratios within bounds, retiming never
      priced above the plain variant, partition sizes cover the graph);
    - {b equivalence}: the retimed netlist is 3-valued sequentially
      equivalent to its source ({!Seq_check}), and the testable netlist
      matches it bit-exactly in normal mode
      ({!Ppet_core.Equivalence.check_bool} with control pins forced 0);
    - {b session}: the self-test session completes with a coverage in
      [0, 1] and detections within the fault count.

    Runs are deterministic in (seed, count): a report names the exact
    case index and per-case seed of every violation, so a failure
    replays by re-running with the same arguments. *)

type kind =
  | Generated  (** a [Generator.small_random] circuit, fed directly *)
  | Mutated    (** its [.bench] text byte-mutated, then re-parsed *)

type violation = {
  case : int;
  case_seed : int64;
  kind : kind;
  stage : Error.stage;
  detail : string;
}

type report = {
  cases : int;
  entered : int;     (** circuits the parser accepted into the flow *)
  rejected : int;    (** mutants cleanly refused by the parser *)
  completed : int;   (** flows that ran every stage to the end *)
  violations : violation list;
}

val mutate : Ppet_digraph.Prng.t -> string -> string
(** One mutation step over [.bench] text: byte noise, a same-arity
    gate-kind swap, a dropped line, or a duplicated line — exposed so a
    violation case can be rebuilt outside the fuzzer. *)

val run : ?seed:int64 -> ?count:int -> unit -> report
(** [run ~seed ~count ()] fuzzes [count] cases (default 50) derived
    deterministically from [seed] (default [0xF522]). *)

val pp_violation : Format.formatter -> violation -> unit

val pp_report : Format.formatter -> report -> unit
