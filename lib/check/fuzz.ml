module Circuit = Ppet_netlist.Circuit
module Bench_parser = Ppet_netlist.Bench_parser
module Bench_writer = Ppet_netlist.Bench_writer
module Generator = Ppet_netlist.Generator
module Prng = Ppet_digraph.Prng
module Params = Ppet_core.Params
module Merced = Ppet_core.Merced
module Assign = Ppet_core.Assign
module Testable = Ppet_core.Testable
module Session = Ppet_core.Session
module Equivalence = Ppet_core.Equivalence
module To_circuit = Ppet_retiming.To_circuit
module Lint_engine = Ppet_lint.Engine
module Diag = Ppet_lint.Diag

type kind = Generated | Mutated

type violation = {
  case : int;
  case_seed : int64;
  kind : kind;
  stage : Error.stage;
  detail : string;
}

type report = {
  cases : int;
  entered : int;
  rejected : int;
  completed : int;
  violations : violation list;
}

let case_seed seed i =
  Int64.add seed (Int64.mul (Int64.of_int (i + 1)) 0x9E3779B97F4A7C15L)

(* Perturb a valid netlist. Half the operators are structure-preserving
   (same-arity gate-kind swaps, line drops/duplicates) so a useful share
   of mutants re-parses and exercises the whole flow as a genuinely
   different circuit; the rest are byte noise aimed at the parser. *)
let multi_input_kinds = [| "AND"; "NAND"; "OR"; "NOR"; "XOR"; "XNOR" |]

let mutate rng src =
  let lines = String.split_on_char '\n' src in
  let arr = Array.of_list lines in
  let n_lines = Array.length arr in
  match Prng.int rng 4 with
  | 0 ->
    (* byte noise *)
    let b = Bytes.of_string src in
    let n = Bytes.length b in
    if n = 0 then src
    else begin
      for _ = 1 to 1 + Prng.int rng 5 do
        let i = Prng.int rng n in
        Bytes.set b i (Char.chr (32 + Prng.int rng 95))
      done;
      Bytes.to_string b
    end
  | 1 ->
    (* swap one multi-input gate kind for another: still parses, still a
       valid circuit, different function *)
    let candidates =
      Array.of_list
        (List.filter
           (fun i ->
             Array.exists
               (fun k ->
                 let pat = "= " ^ k ^ "(" in
                 let len = String.length pat and s = arr.(i) in
                 let rec at j =
                   j + len <= String.length s
                   && (String.sub s j len = pat || at (j + 1))
                 in
                 at 0)
               multi_input_kinds)
           (List.init n_lines (fun i -> i)))
    in
    if Array.length candidates = 0 then src
    else begin
      let i = Prng.pick rng candidates in
      let replacement = Prng.pick rng multi_input_kinds in
      let s = arr.(i) in
      let swapped =
        Array.fold_left
          (fun acc k ->
            match acc with
            | Some _ -> acc
            | None ->
              let pat = "= " ^ k ^ "(" in
              let len = String.length pat in
              let rec find j =
                if j + len > String.length s then None
                else if String.sub s j len = pat then Some j
                else find (j + 1)
              in
              (match find 0 with
               | Some j ->
                 Some
                   (String.sub s 0 j ^ "= " ^ replacement ^ "("
                   ^ String.sub s
                       (j + len)
                       (String.length s - j - len))
               | None -> None))
          None multi_input_kinds
      in
      (match swapped with
       | Some s' ->
         arr.(i) <- s';
         String.concat "\n" (Array.to_list arr)
       | None -> src)
    end
  | 2 ->
    (* drop a line: dangling references are a parser rejection, dropped
       OUTPUT declarations flow on with fewer observation points *)
    if n_lines <= 1 then src
    else begin
      let i = Prng.int rng n_lines in
      String.concat "\n"
        (List.filteri (fun j _ -> j <> i) (Array.to_list arr))
    end
  | _ ->
    (* duplicate a line: duplicate definitions must be refused cleanly *)
    if n_lines = 0 then src
    else begin
      let i = Prng.int rng n_lines in
      String.concat "\n"
        (List.concat_map
           (fun j -> if j = i then [ arr.(j); arr.(j) ] else [ arr.(j) ])
           (List.init n_lines (fun j -> j)))
    end

(* area-accounting / partition self-consistency; returns complaints *)
let accounting_violations (r : Merced.result) =
  let errs = ref [] in
  let add fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  let b = r.Merced.breakdown in
  let a = r.Merced.assignment in
  if b.Ppet_core.Area_accounting.cuts_total <> List.length a.Assign.cut_nets
  then
    add "cuts_total %d does not match the %d cut nets"
      b.Ppet_core.Area_accounting.cuts_total
      (List.length a.Assign.cut_nets);
  let open Ppet_core.Area_accounting in
  if b.cuts_on_scc < 0 || b.cuts_on_scc > b.cuts_total then
    add "cuts_on_scc %d outside [0, %d]" b.cuts_on_scc b.cuts_total;
  if b.retimable < 0 || b.mux_excess < 0 || b.retimable + b.mux_excess <> b.cuts_total
  then
    add "retimable %d + mux_excess %d does not decompose cuts_total %d"
      b.retimable b.mux_excess b.cuts_total;
  if b.area_with_retiming > b.area_without_retiming +. 1e-9 then
    add "retimed CBIT area %.1f exceeds the plain variant %.1f"
      b.area_with_retiming b.area_without_retiming;
  List.iter
    (fun (what, v) ->
      if not (v >= 0.0 && v <= 100.0) then add "%s %.3f outside [0, 100]" what v)
    [ ("ratio_with", b.ratio_with); ("ratio_without", b.ratio_without);
      ("ratio_full_utilization", b.ratio_full_utilization) ];
  if not (r.Merced.sigma_dff >= 0.0) then
    add "sigma_dff %.3f negative" r.Merced.sigma_dff;
  if not (r.Merced.testing_time >= 0.0) then
    add "testing_time %.3f negative" r.Merced.testing_time;
  (* every graph vertex assigned, partition sizes covering the graph *)
  let n = Array.length a.Assign.partition_of in
  let n_parts = List.length a.Assign.partitions in
  Array.iteri
    (fun v p ->
      if p < 0 || p >= n_parts then add "vertex %d has partition index %d" v p)
    a.Assign.partition_of;
  let total =
    List.fold_left
      (fun acc (p : Assign.partition) ->
        if p.Assign.input_count < 0 then
          add "partition with negative iota %d" p.Assign.input_count;
        acc + Array.length p.Assign.vertices)
      0 a.Assign.partitions
  in
  if total <> n then add "partition sizes sum to %d, graph has %d vertices" total n;
  List.rev !errs

let run ?(seed = 0xF522L) ?(count = 50) () =
  let violations = ref [] in
  let entered = ref 0 and rejected = ref 0 and completed = ref 0 in
  for case = 0 to count - 1 do
    let cseed = case_seed seed case in
    let rng = Prng.create cseed in
    let kind = if case land 1 = 0 then Generated else Mutated in
    let clean = ref true in
    let report stage detail =
      clean := false;
      violations := { case; case_seed = cseed; kind; stage; detail } :: !violations
    in
    let attempt stage f =
      match Error.wrap stage f with
      | Ok v -> Some v
      | Result.Error e ->
        report stage ("diagnostic on an accepted input: " ^ Error.to_string e);
        None
      | exception ex ->
        report stage ("exception escaped: " ^ Printexc.to_string ex);
        None
    in
    (* the fifth oracle: a circuit the flow accepted or emitted must be
       free of error-severity structural lint (mutants legitimately keep
       dead logic — infos — when an OUTPUT line was dropped) *)
    let lint_oracle what c =
      match attempt Error.Lint (fun () -> Lint_engine.structural_circuit c) with
      | None -> ()
      | Some diags ->
        List.iter
          (fun (d : Diag.t) ->
            if d.Diag.severity = Diag.Error then
              report Error.Lint
                (Printf.sprintf "%s fails lint: %s" what (Diag.to_human d)))
          diags
    in
    let flow c =
      incr entered;
      lint_oracle "accepted circuit" c;
      (* writer -> parser round trip must be the identity *)
      (match
         attempt Error.Parse (fun () ->
             Bench_parser.parse_string (Bench_writer.to_string c))
       with
       | Some c' when Circuit.equal c c' -> ()
       | Some _ ->
         report Error.Parse "writer -> parser round-trip is not the identity"
       | None -> ());
      let lk = 4 + Prng.int rng 12 in
      let params = { (Params.with_lk lk) with Params.seed = cseed } in
      match attempt Error.Partition (fun () -> Merced.run ~params c) with
      | None -> ()
      | Some r ->
        List.iter (report Error.Partition) (accounting_violations r);
        (match attempt Error.Retime (fun () -> Merced.retimed_netlist r) with
         | None | Some None -> ()
         | Some (Some (emitted, dropped)) ->
           if dropped < 0 then report Error.Retime "negative mux-cut count";
           (match
              attempt Error.Check (fun () ->
                  Seq_check.check ~sequences:2 ~cycles:12 ~max_latency:2 c
                    emitted.To_circuit.circuit
                    ~init_right:(To_circuit.init_fn emitted))
            with
            | None | Some (Seq_check.Equivalent _) -> ()
            | Some (Seq_check.Inequivalent d) ->
              report Error.Check
                (Printf.sprintf
                   "retimed netlist diverges on %s at cycle %d (sequence %s)"
                   d.Seq_check.output d.Seq_check.cycle d.Seq_check.sequence)));
        (match attempt Error.Synthesis (fun () -> Testable.insert r) with
         | None -> ()
         | Some t ->
           if t.Testable.added_area < -1e-9 then
             report Error.Synthesis
               (Printf.sprintf "negative added area %.3f" t.Testable.added_area);
           lint_oracle "testable netlist" t.Testable.circuit;
           (match
              attempt Error.Check (fun () ->
                  Equivalence.check_bool ~cycles:12 c t.Testable.circuit
                    ~force_right:
                      [ (t.Testable.test_en, false); (t.Testable.fb_en, false);
                        (t.Testable.psa_en, false); (t.Testable.scan_in, false)
                      ])
            with
            | None -> ()
            | Some v ->
              if not v.Equivalence.equivalent then
                report Error.Check
                  (Printf.sprintf "testable netlist differs in normal mode%s"
                     (match v.Equivalence.first_mismatch with
                      | Some (cy, name) ->
                        Printf.sprintf " (output %s at cycle %d)" name cy
                      | None -> "")));
           (match
              attempt Error.Session (fun () -> Session.run ~max_burst:32 t)
            with
            | None -> ()
            | Some s ->
              if
                not
                  (s.Session.coverage >= 0.0 && s.Session.coverage <= 1.0
                  && s.Session.n_detected <= s.Session.n_faults
                  && s.Session.n_detected >= 0)
              then
                report Error.Session
                  (Printf.sprintf "implausible session report: %d/%d detected"
                     s.Session.n_detected s.Session.n_faults)));
        if !clean then incr completed
    in
    let base () =
      Generator.small_random ~seed:cseed ~n_pi:(2 + Prng.int rng 6)
        ~n_dff:(1 + Prng.int rng 5)
        ~n_gates:(5 + Prng.int rng 36)
    in
    match kind with
    | Generated -> (
      match attempt Error.Parse (fun () -> base ()) with
      | Some c -> flow c
      | None -> ())
    | Mutated -> (
      match attempt Error.Parse (fun () -> Bench_writer.to_string (base ()))
      with
      | None -> ()
      | Some text -> (
        let mutated = mutate rng text in
        match
          Error.wrap Error.Parse (fun () ->
              Bench_parser.parse_string ~title:"fuzz" mutated)
        with
        | Ok c -> flow c
        | Result.Error _ -> incr rejected  (* clean refusal: oracle satisfied *)
        | exception ex ->
          report Error.Parse ("exception escaped: " ^ Printexc.to_string ex)))
  done;
  {
    cases = count;
    entered = !entered;
    rejected = !rejected;
    completed = !completed;
    violations = List.rev !violations;
  }

let pp_violation ppf v =
  Format.fprintf ppf "case %d (%s, seed %Ld) at %s: %s" v.case
    (match v.kind with Generated -> "generated" | Mutated -> "mutated")
    v.case_seed
    (Error.stage_name v.stage)
    v.detail

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>fuzz: %d cases@,  entered the flow: %d@,  cleanly rejected: %d@,  \
     flows fully clean: %d@,  oracle violations: %d@]"
    r.cases r.entered r.rejected r.completed
    (List.length r.violations);
  List.iter (fun v -> Format.fprintf ppf "@,  %a" pp_violation v) r.violations
