module Circuit = Ppet_netlist.Circuit

type stage = Parse | Partition | Retime | Synthesis | Session | Check | Lint

type t = {
  stage : stage;
  position : string option;
  message : string;
}

exception Error of t

let stage_name = function
  | Parse -> "parse"
  | Partition -> "partition"
  | Retime -> "retime"
  | Synthesis -> "synthesis"
  | Session -> "session"
  | Check -> "check"
  | Lint -> "lint"

let to_string e =
  match e.position with
  | Some pos -> Printf.sprintf "%s: %s: %s" (stage_name e.stage) pos e.message
  | None -> Printf.sprintf "%s: %s" (stage_name e.stage) e.message

let pp ppf e = Format.pp_print_string ppf (to_string e)

let raisef stage ?position fmt =
  Printf.ksprintf
    (fun message -> raise (Error { stage; position; message }))
    fmt

(* The parser prefixes messages with "file:line: "; recover that prefix
   as the structured position. A prefix qualifies when its last ':'
   separates a non-empty head from a run of digits. *)
let split_position msg =
  let is_digits s lo hi =
    lo < hi
    &&
    let ok = ref true in
    for i = lo to hi - 1 do
      match s.[i] with '0' .. '9' -> () | _ -> ok := false
    done;
    !ok
  in
  match String.index_opt msg ' ' with
  | Some sp when sp >= 2 && msg.[sp - 1] = ':' -> (
    let head = String.sub msg 0 (sp - 1) in
    match String.rindex_opt head ':' with
    | Some colon when colon > 0 && is_digits head (colon + 1) (String.length head)
      ->
      (Some head, String.sub msg (sp + 1) (String.length msg - sp - 1))
    | _ -> (None, msg))
  | _ -> (None, msg)

let wrap stage f =
  match f () with
  | v -> Ok v
  | exception Error e -> Result.Error e
  | exception Circuit.Error msg ->
    let position, message = split_position msg in
    Result.Error { stage; position; message }
  | exception Invalid_argument message ->
    Result.Error { stage; position = None; message }
  | exception Failure message ->
    Result.Error { stage; position = None; message }
