(** Differential sequential equivalence checking with stimulus replay.

    Co-simulates two circuits — typically an original netlist against its
    retimed or CBIT-instrumented counterpart — under 3-valued logic
    ({!Ppet_retiming.Logic3}), so registers whose initial value the
    transformation legitimately left unknown (X, supplied by the scan
    chain in hardware) never produce false mismatches: a divergence needs
    both sides concrete and different.

    The checker drives both circuits with the same named input stimulus
    over a set of directed sequences (all-zeros, all-ones, alternating,
    walking-one) followed by N seeded random sequences, and aligns
    outputs under a latency offset: if the transformation inserted
    pipeline registers on output paths, the right circuit's outputs lag
    the left's by a constant number of cycles, and the checker searches
    offsets [0..max_latency] for the one under which every sequence
    agrees. The verdict is structured: either equivalence (with the
    detected latency), or the first divergent cycle and signal together
    with the full input stimulus, replayable through {!replay}. *)

module Circuit := Ppet_netlist.Circuit
module Logic3 := Ppet_retiming.Logic3

type stimulus = {
  input_names : string array;
      (** union of both circuits' primary inputs, left order first *)
  values : Logic3.t array array;  (** cycle -> input index -> value *)
}

type divergence = {
  sequence : string;   (** which sequence exposed it, e.g. ["random#2"] *)
  cycle : int;         (** left-side cycle of the first divergence *)
  output : string;     (** primary-output signal name (left circuit) *)
  left : Logic3.t;
  right : Logic3.t;
  latency : int;       (** output alignment offset the values were read at *)
  stimulus : stimulus; (** full input trace — replay evidence *)
}

type verdict =
  | Equivalent of { sequences : int; cycles : int; latency : int }
  | Inequivalent of divergence

val check :
  ?sequences:int ->
  ?cycles:int ->
  ?seed:int64 ->
  ?max_latency:int ->
  ?init_left:(int -> Logic3.t) ->
  ?init_right:(int -> Logic3.t) ->
  ?force_right:(string * Logic3.t) list ->
  Circuit.t ->
  Circuit.t ->
  verdict
(** [check left right] runs 4 directed plus [sequences] (default 4)
    random sequences of [cycles] (default 24) cycles each. [init_*] give
    register initial values by node id (default all zero — the ISCAS89
    reset); [force_right] pins named right-only inputs (e.g. PPET control
    pins) to constants for every cycle. Outputs are compared
    positionally; raises {!Error.Error} (stage [Check]) when the output
    counts differ. On failure the reported divergence is the one
    surviving longest across offsets, i.e. the best alignment's first
    mismatch. *)

val replay :
  ?latency:int ->
  ?init_left:(int -> Logic3.t) ->
  ?init_right:(int -> Logic3.t) ->
  ?force_right:(string * Logic3.t) list ->
  Circuit.t ->
  Circuit.t ->
  stimulus ->
  divergence option
(** Re-run one recorded stimulus and return the first divergence at the
    given [latency] (default 0), or [None] if the circuits agree on it —
    the round-trip that makes a counterexample trustworthy. *)

val pp_stimulus : Format.formatter -> stimulus -> unit

val pp_divergence : Format.formatter -> divergence -> unit

val pp_verdict : Format.formatter -> verdict -> unit
