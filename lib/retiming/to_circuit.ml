module Circuit = Ppet_netlist.Circuit
module Gate = Ppet_netlist.Gate

type emitted = {
  circuit : Circuit.t;
  register_inits : (string * Logic3.t) list;
}

(* A register chain under construction for one driver: mutable values
   (meet-refined as edges share it) and the eventual register names. *)
type chain = {
  mutable values : Logic3.t array;
  base : string;  (* name prefix *)
  id : int;
}

(* Two registers may share a chain position only when their initial
   values are IDENTICAL. X is "unknown but specific", not a free choice:
   refining an X against a concrete value (or unifying two independent
   unknowns) would commit the emitted netlist to behaviour the retimed
   graph never justified. *)
let compatible_prefix chain inits =
  let w = List.length inits in
  let upto = min w (Array.length chain.values) in
  let rec check i = function
    | [] -> true
    | v :: tl ->
      if i >= upto then true
      else if Logic3.equal chain.values.(i) v && not (Logic3.equal v Logic3.X)
      then check (i + 1) tl
      else false
  in
  check 0 inits

let absorb chain inits =
  let w = List.length inits in
  let len = Array.length chain.values in
  if w > len then begin
    let bigger = Array.make w Logic3.X in
    Array.blit chain.values 0 bigger 0 len;
    chain.values <- bigger
  end;
  (* guarded by compatible_prefix: overlapping positions already equal *)
  List.iteri (fun i v -> if i >= len then chain.values.(i) <- v) inits

let reg_name chain j = Printf.sprintf "%s__r%d_%d" chain.base chain.id j

let circuit_of ?(title = "retimed") (g : Rgraph.t) =
  (match Rgraph.check_invariants g with
   | Ok () -> ()
   | Error msg -> invalid_arg ("To_circuit.circuit_of: " ^ msg));
  let nv = Rgraph.n_vertices g in
  (* build shared chains per tail vertex *)
  let chains_of_tail : (int, chain list ref) Hashtbl.t = Hashtbl.create 64 in
  let chain_counter = ref 0 in
  let edge_chain = Array.make (Array.length g.Rgraph.edges) None in
  Array.iteri
    (fun ei (e : Rgraph.edge) ->
      if e.Rgraph.weight > 0 then begin
        let lst =
          match Hashtbl.find_opt chains_of_tail e.Rgraph.tail with
          | Some l -> l
          | None ->
            let l = ref [] in
            Hashtbl.replace chains_of_tail e.Rgraph.tail l;
            l
        in
        let chain =
          match List.find_opt (fun ch -> compatible_prefix ch e.Rgraph.inits) !lst with
          | Some ch -> ch
          | None ->
            incr chain_counter;
            let ch =
              {
                values = [||];
                base = Rgraph.vertex_name g e.Rgraph.tail;
                id = !chain_counter;
              }
            in
            lst := ch :: !lst;
            ch
        in
        absorb chain e.Rgraph.inits;
        edge_chain.(ei) <- Some chain
      end)
    g.Rgraph.edges;
  (* signal name an edge's head pin reads *)
  let pin_signal ei =
    let e = g.Rgraph.edges.(ei) in
    match edge_chain.(ei) with
    | None -> Rgraph.vertex_name g e.Rgraph.tail
    | Some chain -> reg_name chain e.Rgraph.weight
  in
  let b = Circuit.Builder.create title in
  let register_inits = ref [] in
  (* vertices *)
  for v = 0 to nv - 1 do
    match g.Rgraph.kinds.(v) with
    | Rgraph.Vhost -> ()
    | Rgraph.Vpi name -> Circuit.Builder.add_input b name
    | Rgraph.Vgate (kind, name) ->
      let fanins =
        Array.to_list (Array.map pin_signal g.Rgraph.in_edges.(v))
      in
      Circuit.Builder.add_gate b ~name ~kind ~fanins
  done;
  (* register chains, in canonical (tail vertex, chain id) order: hash
     iteration order must not leak into the emitted netlist, or two
     identical compiles stop being byte-identical *)
  let tails =
    List.sort
      (fun (a, _) (b, _) -> compare a b)
      (Hashtbl.fold (fun tail lst acc -> (tail, lst) :: acc) chains_of_tail [])
  in
  List.iter
    (fun (tail, lst) ->
      let driver = Rgraph.vertex_name g tail in
      List.iter
        (fun chain ->
          Array.iteri
            (fun j v ->
              let name = reg_name chain (j + 1) in
              let fanin = if j = 0 then driver else reg_name chain j in
              Circuit.Builder.add_gate b ~name ~kind:Gate.Dff
                ~fanins:[ fanin ];
              register_inits := (name, v) :: !register_inits)
            chain.values)
        (List.sort (fun c1 c2 -> compare c1.id c2.id) !lst))
    tails;
  (* primary outputs: the host's in-edges *)
  Array.iter
    (fun ei -> Circuit.Builder.add_output b (pin_signal ei))
    g.Rgraph.in_edges.(g.Rgraph.host);
  let circuit = Circuit.Builder.finish b in
  { circuit; register_inits = !register_inits }

let init_fn emitted =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (name, v) ->
      match Circuit.find emitted.circuit name with
      | id -> Hashtbl.replace tbl id v
      | exception Not_found -> ())
    emitted.register_inits;
  fun id -> match Hashtbl.find_opt tbl id with Some v -> v | None -> Logic3.X
