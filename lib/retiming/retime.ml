type outcome =
  | Feasible of int array
  | Infeasible of int list

let pinned g v =
  match g.Rgraph.kinds.(v) with
  | Rgraph.Vpi _ | Rgraph.Vhost -> true
  | Rgraph.Vgate _ -> false

(* Difference constraints rho(u) - rho(v) <= weight(e) - require(e) per
   edge e = u -> v, plus rho(p) = 0 for pinned vertices, solved by
   queue-based Bellman-Ford (SPFA). A vertex relaxed >= n times lies on a
   negative cycle; we walk predecessor links to extract it. *)
let solve g ~require =
  Ppet_obs.Obs.span "retime.solve" @@ fun () ->
  let n = Rgraph.n_vertices g in
  (* constraint arcs: (from, to, length) meaning rho(to) <= rho(from) + len *)
  let arcs = ref [] in
  Array.iteri
    (fun i (e : Rgraph.edge) ->
      let r = require i in
      if r < 0 then invalid_arg "Retime.solve: negative requirement";
      arcs := (e.Rgraph.head, e.Rgraph.tail, e.Rgraph.weight - r) :: !arcs)
    g.Rgraph.edges;
  (* pin all PIs and the host together at equal lag *)
  let first_pinned = ref (-1) in
  for v = 0 to n - 1 do
    if pinned g v then begin
      if !first_pinned < 0 then first_pinned := v
      else begin
        arcs := (!first_pinned, v, 0) :: (v, !first_pinned, 0) :: !arcs
      end
    end
  done;
  let out = Array.make n [] in
  List.iter (fun (u, v, l) -> out.(u) <- (v, l) :: out.(u)) !arcs;
  let dist = Array.make n 0 in
  let pred = Array.make n (-1) in
  let relax_count = Array.make n 0 in
  let in_queue = Array.make n true in
  let queue = Queue.create () in
  for v = 0 to n - 1 do
    Queue.add v queue
  done;
  let neg_vertex = ref (-1) in
  let relaxations = ref 0 in
  (try
     while not (Queue.is_empty queue) do
       let u = Queue.pop queue in
       in_queue.(u) <- false;
       List.iter
         (fun (v, l) ->
           if dist.(u) + l < dist.(v) then begin
             incr relaxations;
             dist.(v) <- dist.(u) + l;
             pred.(v) <- u;
             relax_count.(v) <- relax_count.(v) + 1;
             if relax_count.(v) > n then begin
               neg_vertex := v;
               raise Exit
             end;
             if not in_queue.(v) then begin
               in_queue.(v) <- true;
               Queue.add v queue
             end
           end)
         out.(u)
     done
   with Exit -> ());
  Ppet_obs.Obs.add Ppet_obs.Obs.Metric.Bf_relaxations !relaxations;
  if !neg_vertex >= 0 then begin
    (* step back n times to be sure we are on the cycle, then collect it *)
    let v = ref !neg_vertex in
    for _ = 1 to n do
      v := pred.(!v)
    done;
    let cycle = ref [] in
    let cur = ref !v in
    let continue = ref true in
    while !continue do
      cycle := !cur :: !cycle;
      cur := pred.(!cur);
      if !cur = !v then continue := false
    done;
    Infeasible !cycle
  end
  else begin
    (* normalise so pinned vertices sit at lag 0 *)
    let shift = if !first_pinned >= 0 then dist.(!first_pinned) else 0 in
    Feasible (Array.map (fun d -> d - shift) dist)
  end

(* ------------------------------------------------------------------ *)
(* Flat incremental solver.

   [solve] above rebuilds the constraint graph as linked tuple lists and
   a boxed queue on every call; the requirement-drop loop of the
   pipeline re-solves the same graph dozens of times, so that
   representation dominates the retime stage. [Solver.create] builds
   the constraint arcs once as int CSR arrays; [Solver.run] reuses them
   and preallocated dist/pred/queue scratch across every re-solve.

   Equivalence contract: a cold [Solver.run] relaxes from the all-zero
   start exactly like [solve] — same initial queue (every vertex,
   ascending), same FIFO discipline, same per-vertex arc order (the
   vertex's incident edges in ascending edge index, then the pinned-tie
   arcs). On feasible systems the fixpoint is the shortest-path
   distances from the implicit super-source, which no relaxation order
   can change, so both entry points return the identical rho. On
   infeasible systems both report a genuine over-constrained cycle, but
   not necessarily the same one: the flat solver detects negative
   cycles early (pred-forest sweep below) where [solve] burns
   Theta(n * m) reaching its relax-count cutoff. *)

module Solver = struct
  type t = {
    g : Rgraph.t;
    n : int;
    first_pinned : int;
    arc_off : int array;   (* n+1: constraint arcs grouped by source *)
    arc_to : int array;
    arc_edge : int array;  (* rgraph edge behind the arc, -1 = pinned tie *)
    arc_len : int array;   (* weight - require, refreshed per run *)
    dist : int array;
    pred : int array;
    relax_count : int array;
    in_queue : bool array;
    queue : int array;     (* ring buffer, capacity n+1 *)
    color : int array;     (* scratch for the pred-forest cycle sweep *)
  }

  let create g =
    let n = Rgraph.n_vertices g in
    let n_edges = Array.length g.Rgraph.edges in
    let first_pinned = ref (-1) in
    let n_pinned = ref 0 in
    for v = 0 to n - 1 do
      if pinned g v then begin
        if !first_pinned < 0 then first_pinned := v;
        incr n_pinned
      end
    done;
    let pinned_arcs = if !n_pinned >= 2 then 2 * (!n_pinned - 1) else 0 in
    let n_arcs = n_edges + pinned_arcs in
    let cnt = Array.make n 0 in
    Array.iter
      (fun (e : Rgraph.edge) -> cnt.(e.Rgraph.head) <- cnt.(e.Rgraph.head) + 1)
      g.Rgraph.edges;
    if !n_pinned >= 2 then begin
      cnt.(!first_pinned) <- cnt.(!first_pinned) + (!n_pinned - 1);
      for v = 0 to n - 1 do
        if pinned g v && v <> !first_pinned then cnt.(v) <- cnt.(v) + 1
      done
    end;
    let arc_off = Array.make (n + 1) 0 in
    for v = 0 to n - 1 do
      arc_off.(v + 1) <- arc_off.(v) + cnt.(v)
    done;
    let arc_to = Array.make (max n_arcs 1) 0 in
    let arc_edge = Array.make (max n_arcs 1) (-1) in
    let fill = Array.make n 0 in
    let put u target edge =
      let i = arc_off.(u) + fill.(u) in
      arc_to.(i) <- target;
      arc_edge.(i) <- edge;
      fill.(u) <- fill.(u) + 1
    in
    (* edge arcs first (ascending edge index per source) ... *)
    Array.iteri
      (fun i (e : Rgraph.edge) -> put e.Rgraph.head e.Rgraph.tail i)
      g.Rgraph.edges;
    (* ... then the pinned ties, ascending *)
    if !n_pinned >= 2 then
      for v = 0 to n - 1 do
        if pinned g v && v <> !first_pinned then begin
          put !first_pinned v (-1);
          put v !first_pinned (-1)
        end
      done;
    {
      g;
      n;
      first_pinned = !first_pinned;
      arc_off;
      arc_to;
      arc_edge;
      arc_len = Array.make (max n_arcs 1) 0;
      dist = Array.make (max n 1) 0;
      pred = Array.make (max n 1) (-1);
      relax_count = Array.make (max n 1) 0;
      in_queue = Array.make (max n 1) false;
      queue = Array.make (n + 1) 0;
      color = Array.make (max n 1) 0;
    }

  let refresh_lengths s ~require =
    let n_arcs = s.arc_off.(s.n) in
    for i = 0 to n_arcs - 1 do
      let e = s.arc_edge.(i) in
      if e < 0 then s.arc_len.(i) <- 0
      else begin
        let r = require e in
        if r < 0 then invalid_arg "Retime.solve: negative requirement";
        s.arc_len.(i) <- s.g.Rgraph.edges.(e).Rgraph.weight - r
      end
    done

  (* collect the cycle through [w], which must lie on a pred cycle *)
  let collect_cycle s w =
    let cycle = ref [] in
    let cur = ref w in
    let continue = ref true in
    while !continue do
      cycle := !cur :: !cycle;
      cur := s.pred.(!cur);
      if !cur = w then continue := false
    done;
    !cycle

  let extract_cycle s neg_vertex =
    let v = ref neg_vertex in
    for _ = 1 to s.n do
      v := s.pred.(!v)
    done;
    collect_cycle s !v

  (* Early negative-cycle detection: every predecessor assignment was a
     strict improvement, so summing [dist] drops around any cycle of the
     pred forest shows its total length is negative — a cycle in the
     pred graph IS a negative constraint cycle. Sweeping the forest costs
     O(n) (each vertex colored once), so running it every ~n relaxations
     detects infeasibility after O(n + m) work where the bare
     [relax_count > n] cutoff needs O(n * m). Vertices are scanned in
     ascending order, keeping the reported cycle deterministic. *)
  let pred_cycle s =
    let color = s.color and pred = s.pred in
    let n = s.n in
    Array.fill color 0 n 0;
    let found = ref (-1) in
    let v0 = ref 0 in
    while !found < 0 && !v0 < n do
      if color.(!v0) = 0 then begin
        (* walk the pred chain: 1 = on this path, 2 = exhausted *)
        let u = ref !v0 in
        while !u >= 0 && color.(!u) = 0 do
          color.(!u) <- 1;
          u := pred.(!u)
        done;
        if !u >= 0 && color.(!u) = 1 then found := !u
        else begin
          let w = ref !v0 in
          while !w >= 0 && color.(!w) = 1 do
            color.(!w) <- 2;
            w := pred.(!w)
          done
        end
      end;
      incr v0
    done;
    !found

  (* Every cycle of the pred forest, not just the first: cycles are
     vertex-disjoint (each vertex has one pred), and by the argument
     above each is a genuine negative constraint cycle, so a caller
     dropping one requirement per cycle can retire them all from a
     single aborted run instead of paying a full re-solve per cycle. *)
  let pred_cycles_all s =
    let color = s.color and pred = s.pred in
    let n = s.n in
    Array.fill color 0 n 0;
    let cycles = ref [] in
    for v0 = 0 to n - 1 do
      if color.(v0) = 0 then begin
        let u = ref v0 in
        while !u >= 0 && color.(!u) = 0 do
          color.(!u) <- 1;
          u := pred.(!u)
        done;
        if !u >= 0 && color.(!u) = 1 then
          cycles := collect_cycle s !u :: !cycles;
        let w = ref v0 in
        while !w >= 0 && color.(!w) = 1 do
          color.(!w) <- 2;
          w := pred.(!w)
        done
      end
    done;
    List.rev !cycles

  type raw =
    | Rfeasible of int array
    | Rsweep of int      (* vertex on a pred cycle, found by the sweep *)
    | Rcutoff of int     (* vertex whose relax count crossed n *)

  let run_raw ?warm s ~require =
    Ppet_obs.Obs.span "retime.solve" @@ fun () ->
    let n = s.n in
    refresh_lengths s ~require;
    let dist = s.dist and pred = s.pred in
    let relax_count = s.relax_count and in_queue = s.in_queue in
    let queue = s.queue in
    let arc_off = s.arc_off and arc_to = s.arc_to and arc_len = s.arc_len in
    let qcap = n + 1 in
    let qhead = ref 0 and qtail = ref 0 in
    Array.fill pred 0 n (-1);
    Array.fill relax_count 0 n 0;
    (match warm with
     | None ->
       (* cold: the all-zero potential, every vertex queued — the exact
          start state of the list-based solver *)
       Array.fill dist 0 n 0;
       Array.fill in_queue 0 n true;
       for v = 0 to n - 1 do
         queue.(v) <- v
       done;
       qtail := n
     | Some potential ->
       (* warm: start from any potential — a previously feasible one or
          the label state of an aborted run — and queue only the sources
          of violated constraints. Sound (any relaxation fixpoint
          satisfies every constraint; the pred forest is rebuilt from
          scratch, so a predecessor cycle still certifies an
          over-constrained loop of the current system) but NOT
          canonical: a warm feasible answer is whatever fixpoint the
          start point leads to, so only cold runs are used where
          cross-substrate identity of the result matters. *)
       if Array.length potential <> n then
         invalid_arg "Retime.Solver.run: warm potential of wrong length";
       Array.blit potential 0 dist 0 n;
       Array.fill in_queue 0 n false;
       for u = 0 to n - 1 do
         if not in_queue.(u) then begin
           let lo = s.arc_off.(u) and hi = s.arc_off.(u + 1) in
           let i = ref lo in
           while !i < hi && not in_queue.(u) do
             if dist.(u) + s.arc_len.(!i) < dist.(s.arc_to.(!i)) then begin
               in_queue.(u) <- true;
               queue.(!qtail) <- u;
               qtail := (!qtail + 1) mod qcap
             end;
             incr i
           done
         end
       done);
    let neg_vertex = ref (-1) in
    let cycle_vertex = ref (-1) in
    let relaxations = ref 0 in
    let next_sweep = ref n in
    (* indices below stay in range by construction ([arc_to] targets and
       queue entries are vertices < n, arc indices < arc_off.(n)), so the
       hot loop reads unchecked; the queue holds each vertex at most once
       (the [in_queue] guard), so head only meets tail when empty *)
    (try
       while !qhead <> !qtail do
         if !relaxations >= !next_sweep then begin
           next_sweep := !relaxations + n;
           let w = pred_cycle s in
           if w >= 0 then begin
             cycle_vertex := w;
             raise Exit
           end
         end;
         let u = Array.unsafe_get queue !qhead in
         let h = !qhead + 1 in
         qhead := if h = qcap then 0 else h;
         Array.unsafe_set in_queue u false;
         let du = Array.unsafe_get dist u in
         let hi = Array.unsafe_get arc_off (u + 1) in
         for i = Array.unsafe_get arc_off u to hi - 1 do
           let v = Array.unsafe_get arc_to i in
           let cand = du + Array.unsafe_get arc_len i in
           if cand < Array.unsafe_get dist v then begin
             incr relaxations;
             Array.unsafe_set dist v cand;
             Array.unsafe_set pred v u;
             let rc = Array.unsafe_get relax_count v + 1 in
             Array.unsafe_set relax_count v rc;
             if rc > n then begin
               neg_vertex := v;
               raise Exit
             end;
             if not (Array.unsafe_get in_queue v) then begin
               Array.unsafe_set in_queue v true;
               Array.unsafe_set queue !qtail v;
               let t = !qtail + 1 in
               qtail := if t = qcap then 0 else t
             end
           end
         done
       done
     with Exit -> ());
    Ppet_obs.Obs.add Ppet_obs.Obs.Metric.Bf_relaxations !relaxations;
    if !cycle_vertex >= 0 then Rsweep !cycle_vertex
    else if !neg_vertex >= 0 then Rcutoff !neg_vertex
    else begin
      let shift = if s.first_pinned >= 0 then dist.(s.first_pinned) else 0 in
      Rfeasible (Array.init n (fun v -> dist.(v) - shift))
    end

  let run ?warm s ~require =
    match run_raw ?warm s ~require with
    | Rfeasible rho -> Feasible rho
    | Rsweep w -> Infeasible (collect_cycle s w)
    | Rcutoff v -> Infeasible (extract_cycle s v)

  let run_cycles ?warm s ~require =
    match run_raw ?warm s ~require with
    | Rfeasible rho -> Ok rho
    | Rsweep _ | Rcutoff _ -> Error (pred_cycles_all s)

  let potentials s = Array.sub s.dist 0 s.n
end

let retimed_weight g rho e =
  let edge = g.Rgraph.edges.(e) in
  edge.Rgraph.weight + rho.(edge.Rgraph.head) - rho.(edge.Rgraph.tail)

let is_legal g rho =
  let n = Rgraph.n_vertices g in
  Array.length rho = n
  && (let ok = ref true in
      for v = 0 to n - 1 do
        if pinned g v && rho.(v) <> 0 then ok := false
      done;
      Array.iteri
        (fun i _ -> if retimed_weight g rho i < 0 then ok := false)
        g.Rgraph.edges;
      !ok)

let gate_kind g v =
  match g.Rgraph.kinds.(v) with
  | Rgraph.Vgate (k, _) -> Some k
  | Rgraph.Vpi _ | Rgraph.Vhost -> None

(* Pop the register nearest the head of the edge (last of the tail-first
   init list). *)
let pop_head (e : Rgraph.edge) =
  match List.rev e.Rgraph.inits with
  | [] -> invalid_arg "Retime: popping an empty edge"
  | v :: rest ->
    e.Rgraph.inits <- List.rev rest;
    e.Rgraph.weight <- e.Rgraph.weight - 1;
    v

let pop_tail (e : Rgraph.edge) =
  match e.Rgraph.inits with
  | [] -> invalid_arg "Retime: popping an empty edge"
  | v :: rest ->
    e.Rgraph.inits <- rest;
    e.Rgraph.weight <- e.Rgraph.weight - 1;
    v

let push_tail (e : Rgraph.edge) v =
  e.Rgraph.inits <- v :: e.Rgraph.inits;
  e.Rgraph.weight <- e.Rgraph.weight + 1

let push_head (e : Rgraph.edge) v =
  e.Rgraph.inits <- e.Rgraph.inits @ [ v ];
  e.Rgraph.weight <- e.Rgraph.weight + 1

let apply g rho =
  if not (is_legal g rho) then invalid_arg "Retime.apply: illegal retiming";
  Ppet_obs.Obs.span "retime.apply" @@ fun () ->
  let work = Rgraph.copy g in
  let n = Rgraph.n_vertices work in
  let rem = Array.copy rho in
  let progress = ref true in
  (* A backward move justifies a register value with ONE preimage; with
     reconvergent fanout, justifications arriving over different paths
     may contradict each other (the meet of the popped values is empty).
     Degrading only the meet point to X is unsound: the conflicting
     claims have already committed concrete preimage bits elsewhere, and
     those commitments describe a pre-history that does not exist — the
     emitted machine then concretely diverges from the original in its
     first cycles. Any conflict therefore taints the whole constructive
     pass and we fall back to X initial values (scan-supplied), which is
     always safe. *)
  let tainted = ref false in
  let remaining () = Array.exists (fun r -> r <> 0) rem in
  while remaining () && !progress do
    progress := false;
    for v = 0 to n - 1 do
      match gate_kind work v with
      | None -> ()
      | Some kind ->
        if rem.(v) < 0 then begin
          (* forward move: one register from every in-edge to every
             out-edge, value computed through the gate *)
          let ins = work.Rgraph.in_edges.(v) in
          let ready =
            Array.for_all
              (fun ei -> work.Rgraph.edges.(ei).Rgraph.weight > 0)
              ins
          in
          if ready then begin
            let pins =
              Array.map (fun ei -> pop_head work.Rgraph.edges.(ei)) ins
            in
            let value = Logic3.eval kind pins in
            Array.iter
              (fun ei -> push_tail work.Rgraph.edges.(ei) value)
              work.Rgraph.out_edges.(v);
            rem.(v) <- rem.(v) + 1;
            progress := true
          end
        end
        else if rem.(v) > 0 then begin
          (* backward move: justify a register from the outputs back to
             the inputs *)
          let outs = work.Rgraph.out_edges.(v) in
          let ready =
            Array.for_all
              (fun ei -> work.Rgraph.edges.(ei).Rgraph.weight > 0)
              outs
          in
          if ready then begin
            let popped =
              Array.map (fun ei -> pop_tail work.Rgraph.edges.(ei)) outs
            in
            let value =
              Array.fold_left
                (fun acc v ->
                  match acc with
                  | None -> None
                  | Some a -> Logic3.meet a v)
                (Some Logic3.X) popped
            in
            let value =
              match value with
              | Some v -> v
              | None ->
                tainted := true;
                Logic3.X
            in
            let arity = Array.length work.Rgraph.in_edges.(v) in
            let pre =
              match Logic3.preimage kind arity value with
              | Some ins -> ins
              | None ->
                tainted := true;
                Array.make arity Logic3.X
            in
            Array.iteri
              (fun pin ei -> push_head work.Rgraph.edges.(ei) pre.(pin))
              work.Rgraph.in_edges.(v);
            rem.(v) <- rem.(v) - 1;
            progress := true
          end
        end
    done
  done;
  if remaining () || !tainted then begin
    (* Constructive ordering failed or a justification conflict was
       detected; fall back to the weight formula.
       Every edge incident to a lagged vertex has its register contents
       time-shifted — even at unchanged weight — so only edges between
       two lag-0 vertices keep their initial values; the rest become X
       (supplied by the scan chain in hardware). *)
    let fresh = Rgraph.copy g in
    Array.iteri
      (fun i (e : Rgraph.edge) ->
        if rho.(e.Rgraph.tail) <> 0 || rho.(e.Rgraph.head) <> 0 then begin
          let w = retimed_weight g rho i in
          e.Rgraph.weight <- w;
          e.Rgraph.inits <- List.init w (fun _ -> Logic3.X)
        end)
      fresh.Rgraph.edges;
    fresh
  end
  else work

let total_registers_after g rho =
  let total = ref 0 in
  Array.iteri (fun i _ -> total := !total + retimed_weight g rho i) g.Rgraph.edges;
  !total
