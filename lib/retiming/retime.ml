type outcome =
  | Feasible of int array
  | Infeasible of int list

let pinned g v =
  match g.Rgraph.kinds.(v) with
  | Rgraph.Vpi _ | Rgraph.Vhost -> true
  | Rgraph.Vgate _ -> false

(* Difference constraints rho(u) - rho(v) <= weight(e) - require(e) per
   edge e = u -> v, plus rho(p) = 0 for pinned vertices, solved by
   queue-based Bellman-Ford (SPFA). A vertex relaxed >= n times lies on a
   negative cycle; we walk predecessor links to extract it. *)
let solve g ~require =
  Ppet_obs.Obs.span "retime.solve" @@ fun () ->
  let n = Rgraph.n_vertices g in
  (* constraint arcs: (from, to, length) meaning rho(to) <= rho(from) + len *)
  let arcs = ref [] in
  Array.iteri
    (fun i (e : Rgraph.edge) ->
      let r = require i in
      if r < 0 then invalid_arg "Retime.solve: negative requirement";
      arcs := (e.Rgraph.head, e.Rgraph.tail, e.Rgraph.weight - r) :: !arcs)
    g.Rgraph.edges;
  (* pin all PIs and the host together at equal lag *)
  let first_pinned = ref (-1) in
  for v = 0 to n - 1 do
    if pinned g v then begin
      if !first_pinned < 0 then first_pinned := v
      else begin
        arcs := (!first_pinned, v, 0) :: (v, !first_pinned, 0) :: !arcs
      end
    end
  done;
  let out = Array.make n [] in
  List.iter (fun (u, v, l) -> out.(u) <- (v, l) :: out.(u)) !arcs;
  let dist = Array.make n 0 in
  let pred = Array.make n (-1) in
  let relax_count = Array.make n 0 in
  let in_queue = Array.make n true in
  let queue = Queue.create () in
  for v = 0 to n - 1 do
    Queue.add v queue
  done;
  let neg_vertex = ref (-1) in
  let relaxations = ref 0 in
  (try
     while not (Queue.is_empty queue) do
       let u = Queue.pop queue in
       in_queue.(u) <- false;
       List.iter
         (fun (v, l) ->
           if dist.(u) + l < dist.(v) then begin
             incr relaxations;
             dist.(v) <- dist.(u) + l;
             pred.(v) <- u;
             relax_count.(v) <- relax_count.(v) + 1;
             if relax_count.(v) > n then begin
               neg_vertex := v;
               raise Exit
             end;
             if not in_queue.(v) then begin
               in_queue.(v) <- true;
               Queue.add v queue
             end
           end)
         out.(u)
     done
   with Exit -> ());
  Ppet_obs.Obs.add Ppet_obs.Obs.Metric.Bf_relaxations !relaxations;
  if !neg_vertex >= 0 then begin
    (* step back n times to be sure we are on the cycle, then collect it *)
    let v = ref !neg_vertex in
    for _ = 1 to n do
      v := pred.(!v)
    done;
    let cycle = ref [] in
    let cur = ref !v in
    let continue = ref true in
    while !continue do
      cycle := !cur :: !cycle;
      cur := pred.(!cur);
      if !cur = !v then continue := false
    done;
    Infeasible !cycle
  end
  else begin
    (* normalise so pinned vertices sit at lag 0 *)
    let shift = if !first_pinned >= 0 then dist.(!first_pinned) else 0 in
    Feasible (Array.map (fun d -> d - shift) dist)
  end

let retimed_weight g rho e =
  let edge = g.Rgraph.edges.(e) in
  edge.Rgraph.weight + rho.(edge.Rgraph.head) - rho.(edge.Rgraph.tail)

let is_legal g rho =
  let n = Rgraph.n_vertices g in
  Array.length rho = n
  && (let ok = ref true in
      for v = 0 to n - 1 do
        if pinned g v && rho.(v) <> 0 then ok := false
      done;
      Array.iteri
        (fun i _ -> if retimed_weight g rho i < 0 then ok := false)
        g.Rgraph.edges;
      !ok)

let gate_kind g v =
  match g.Rgraph.kinds.(v) with
  | Rgraph.Vgate (k, _) -> Some k
  | Rgraph.Vpi _ | Rgraph.Vhost -> None

(* Pop the register nearest the head of the edge (last of the tail-first
   init list). *)
let pop_head (e : Rgraph.edge) =
  match List.rev e.Rgraph.inits with
  | [] -> invalid_arg "Retime: popping an empty edge"
  | v :: rest ->
    e.Rgraph.inits <- List.rev rest;
    e.Rgraph.weight <- e.Rgraph.weight - 1;
    v

let pop_tail (e : Rgraph.edge) =
  match e.Rgraph.inits with
  | [] -> invalid_arg "Retime: popping an empty edge"
  | v :: rest ->
    e.Rgraph.inits <- rest;
    e.Rgraph.weight <- e.Rgraph.weight - 1;
    v

let push_tail (e : Rgraph.edge) v =
  e.Rgraph.inits <- v :: e.Rgraph.inits;
  e.Rgraph.weight <- e.Rgraph.weight + 1

let push_head (e : Rgraph.edge) v =
  e.Rgraph.inits <- e.Rgraph.inits @ [ v ];
  e.Rgraph.weight <- e.Rgraph.weight + 1

let apply g rho =
  if not (is_legal g rho) then invalid_arg "Retime.apply: illegal retiming";
  Ppet_obs.Obs.span "retime.apply" @@ fun () ->
  let work = Rgraph.copy g in
  let n = Rgraph.n_vertices work in
  let rem = Array.copy rho in
  let progress = ref true in
  (* A backward move justifies a register value with ONE preimage; with
     reconvergent fanout, justifications arriving over different paths
     may contradict each other (the meet of the popped values is empty).
     Degrading only the meet point to X is unsound: the conflicting
     claims have already committed concrete preimage bits elsewhere, and
     those commitments describe a pre-history that does not exist — the
     emitted machine then concretely diverges from the original in its
     first cycles. Any conflict therefore taints the whole constructive
     pass and we fall back to X initial values (scan-supplied), which is
     always safe. *)
  let tainted = ref false in
  let remaining () = Array.exists (fun r -> r <> 0) rem in
  while remaining () && !progress do
    progress := false;
    for v = 0 to n - 1 do
      match gate_kind work v with
      | None -> ()
      | Some kind ->
        if rem.(v) < 0 then begin
          (* forward move: one register from every in-edge to every
             out-edge, value computed through the gate *)
          let ins = work.Rgraph.in_edges.(v) in
          let ready =
            Array.for_all
              (fun ei -> work.Rgraph.edges.(ei).Rgraph.weight > 0)
              ins
          in
          if ready then begin
            let pins =
              Array.map (fun ei -> pop_head work.Rgraph.edges.(ei)) ins
            in
            let value = Logic3.eval kind pins in
            Array.iter
              (fun ei -> push_tail work.Rgraph.edges.(ei) value)
              work.Rgraph.out_edges.(v);
            rem.(v) <- rem.(v) + 1;
            progress := true
          end
        end
        else if rem.(v) > 0 then begin
          (* backward move: justify a register from the outputs back to
             the inputs *)
          let outs = work.Rgraph.out_edges.(v) in
          let ready =
            Array.for_all
              (fun ei -> work.Rgraph.edges.(ei).Rgraph.weight > 0)
              outs
          in
          if ready then begin
            let popped =
              Array.map (fun ei -> pop_tail work.Rgraph.edges.(ei)) outs
            in
            let value =
              Array.fold_left
                (fun acc v ->
                  match acc with
                  | None -> None
                  | Some a -> Logic3.meet a v)
                (Some Logic3.X) popped
            in
            let value =
              match value with
              | Some v -> v
              | None ->
                tainted := true;
                Logic3.X
            in
            let arity = Array.length work.Rgraph.in_edges.(v) in
            let pre =
              match Logic3.preimage kind arity value with
              | Some ins -> ins
              | None ->
                tainted := true;
                Array.make arity Logic3.X
            in
            Array.iteri
              (fun pin ei -> push_head work.Rgraph.edges.(ei) pre.(pin))
              work.Rgraph.in_edges.(v);
            rem.(v) <- rem.(v) - 1;
            progress := true
          end
        end
    done
  done;
  if remaining () || !tainted then begin
    (* Constructive ordering failed or a justification conflict was
       detected; fall back to the weight formula.
       Every edge incident to a lagged vertex has its register contents
       time-shifted — even at unchanged weight — so only edges between
       two lag-0 vertices keep their initial values; the rest become X
       (supplied by the scan chain in hardware). *)
    let fresh = Rgraph.copy g in
    Array.iteri
      (fun i (e : Rgraph.edge) ->
        if rho.(e.Rgraph.tail) <> 0 || rho.(e.Rgraph.head) <> 0 then begin
          let w = retimed_weight g rho i in
          e.Rgraph.weight <- w;
          e.Rgraph.inits <- List.init w (fun _ -> Logic3.X)
        end)
      fresh.Rgraph.edges;
    fresh
  end
  else work

let total_registers_after g rho =
  let total = ref 0 in
  Array.iteri (fun i _ -> total := !total + retimed_weight g rho i) g.Rgraph.edges;
  !total
