(** Legal retiming (paper Sec. 2.2, after Leiserson & Saxe).

    A retiming is an integer lag [rho] per combinational vertex (primary
    inputs and the host are pinned at 0: the paper's rho maps C to Z).
    Edge [e = u -> v] gets the new weight
    [w_rho e = weight e + rho v - rho u] (Eq. 1); legality demands
    [w_rho e >= 0] everywhere (Eq. 3), and cycles keep their register
    count automatically (Eq. 2).

    [solve] finds a legal retiming meeting per-edge minimum register
    requirements by solving the difference-constraint system
    [rho u - rho v <= weight e - require e] with Bellman–Ford;
    infeasibility is reported as the set of vertices on some
    over-constrained cycle — exactly the loops whose cut count exceeds
    their register count (chi > f), which the cost model then prices as
    multiplexed A_CELLs. *)

type outcome =
  | Feasible of int array      (** rho per vertex; pinned vertices at 0 *)
  | Infeasible of int list     (** vertices of a negative-weight cycle *)

val solve : Rgraph.t -> require:(int -> int) -> outcome
(** [solve g ~require] with [require e >= 0] the minimum number of
    registers wanted on edge [e] after retiming. Use [require = fun _ -> 0]
    to merely re-check legality of the identity. *)

(** Flat-array solver over the same constraint system, for re-solve
    loops. [create] builds the constraint arcs once as int CSR arrays;
    each [run] reuses them plus preallocated scratch, so only the arc
    lengths ([weight - require]) are recomputed per call.

    Agreement with {!solve}: feasibility always coincides, and on
    feasible systems a cold [run] returns the identical rho (both
    compute the canonical shortest-path fixpoint of the all-zero
    start). On infeasible systems both report a true over-constrained
    cycle, but possibly different ones: [run] finds negative cycles in
    O(n + m) by sweeping the predecessor forest (any cycle there is a
    negative cycle) where {!solve} needs Theta(n * m) to trip its
    relax-count cutoff — the difference that lets the requirement-drop
    loop scale to 100k-cell circuits. *)
module Solver : sig
  type t

  val create : Rgraph.t -> t

  val run : ?warm:int array -> t -> require:(int -> int) -> outcome
  (** [run t ~require] solves cold, exactly like {!solve}.

      [run ~warm:rho t ~require] starts from a previous potential and
      enqueues only the sources of constraints it violates; if [rho] is
      feasible for the current requirements this verifies it with zero
      relaxations and returns it unchanged. Warm outcomes are sound
      (every returned potential satisfies all constraints; infeasibility
      still yields an over-constrained cycle) but not canonical — they
      depend on the starting point — so warm starts serve verification
      and oracle duty, never the result-defining solves. *)

  val run_cycles :
    ?warm:int array -> t -> require:(int -> int) ->
    (int array, int list list) result
  (** Like {!run}, but an infeasible system reports {e every} cycle of
      the predecessor forest at the abort point. The cycles are
      vertex-disjoint and each is a genuine negative constraint cycle,
      so a requirement-drop loop can retire all of them from one aborted
      solve instead of re-solving once per cycle. The list is non-empty
      and deterministic. *)

  val potentials : t -> int array
  (** Snapshot of the label state left by the last run — the feasible
      potential after a converged run, or the partial labels of an
      aborted one. Feeding it back as [~warm] resumes the relaxation on
      updated requirements, which is how the requirement-drop loop
      avoids one full cold solve per round (the result-defining final
      solve still runs cold). *)
end

val retimed_weight : Rgraph.t -> int array -> int -> int
(** [retimed_weight g rho e] is Eq. 1 for edge [e]. *)

val is_legal : Rgraph.t -> int array -> bool
(** All retimed weights non-negative and pinned vertices at lag 0. *)

val apply : Rgraph.t -> int array -> Rgraph.t
(** Rebuild the graph with retimed weights, moving register initial
    values along by elementary retiming steps: a forward move across a
    gate computes the new value with {!Logic3.eval}; a backward move
    justifies it with {!Logic3.preimage} and degrades to X when fanout
    values disagree. Moves that cannot be ordered constructively fall
    back to X initial values (in hardware the scan chain supplies
    those). Raises [Invalid_argument] when [rho] is not legal. *)

val total_registers_after : Rgraph.t -> int array -> int
(** Per-pin register count after retiming (cheap, does not apply). *)
