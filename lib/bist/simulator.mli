(** Levelized, word-parallel logic simulator.

    Packs [Gate.bits_per_word] independent patterns into each native
    integer, so one pass evaluates that many input vectors at once. The
    caller owns a values array indexed by node id; source entries
    (primary inputs, flip-flop outputs, or segment boundary signals) are
    set before evaluation and gate entries are filled in dependency
    order. *)

type t

val create : Ppet_netlist.Circuit.t -> t

val circuit : t -> Ppet_netlist.Circuit.t

val order : t -> int array
(** All combinational gates, in an evaluation order that respects
    fan-in dependencies. *)

val eval_all : t -> int array -> unit
(** [eval_all t values] computes every combinational gate. [values] must
    be sized [Circuit.size] with PI and DFF entries preset. *)

val eval_members : t -> int array -> member:bool array -> unit
(** Evaluate only the member gates (a segment); non-member fan-ins are
    read from the preset entries — exactly how a CUT sees its CBIT-driven
    boundary. *)

val step_into :
  t ->
  values:int array ->
  state:int array ->
  pi:int array ->
  next:int array ->
  po:int array ->
  unit
(** Allocation-free sequential step: [values] is a caller-owned scratch
    array of size [Circuit.size] (contents need not be cleared between
    steps), [state]/[pi] are read as in {!step}, and the next flip-flop
    state and primary output words are written into [next] and [po].
    [next] may alias [state]. Raises [Invalid_argument] on any size
    mismatch. *)

val step : t -> state:int array -> pi:int array -> int array * int array
(** Sequential step: [state] gives each DFF's current output word
    (indexed by position in [Circuit.dffs]), [pi] each primary input's
    word (indexed by position in [Circuit.inputs]). Returns
    (next flip-flop state, primary output words). A fresh-array wrapper
    over {!step_into}. *)

val run : t -> state:int array -> pis:int array list -> int array * int array list
(** Clock the circuit through a list of input words; returns the final
    state and the per-cycle primary outputs. Internally reuses one
    values buffer and one state buffer across all cycles. *)
