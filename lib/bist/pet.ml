module Segment = Ppet_netlist.Segment

type report = {
  width : int;
  n_faults : int;
  n_detected : int;
  n_redundant : int;
  coverage : float;
  detectable_coverage : float;
  patterns_applied : int;
}

let summarise ~width ~patterns_applied results =
  let n_faults = List.length results in
  let n_detected = List.length (List.filter snd results) in
  let n_redundant = n_faults - n_detected in
  let coverage =
    if n_faults = 0 then 1.0
    else float_of_int n_detected /. float_of_int n_faults
  in
  {
    width;
    n_faults;
    n_detected;
    n_redundant;
    coverage;
    (* exhaustive application defines detectability, so this is 1 by
       construction when patterns are exhaustive *)
    detectable_coverage =
      (if n_faults = n_redundant then 1.0
       else float_of_int n_detected /. float_of_int (n_faults - n_redundant));
    patterns_applied;
  }

let fault_list ?(collapse = true) sim seg =
  let c = Simulator.circuit sim in
  let faults = Fault.of_segment c seg in
  if collapse then Fault.collapse c faults else faults

let default_policy () = Fault_engine.Batch.policy ()

let run ?collapse ?policy sim seg =
  let policy =
    match policy with Some p -> p | None -> default_policy ()
  in
  let width = Segment.input_count seg in
  if width > 20 then
    invalid_arg
      "Pet.run: segment has more than 20 inputs; partition it first (that \
       is what PPET is for)";
  let faults = fault_list ?collapse sim seg in
  let patterns = Fault_engine.exhaustive_patterns ~width in
  let o = Fault_engine.Batch.run_segment policy sim seg ~patterns faults in
  summarise ~width ~patterns_applied:(1 lsl width) o.Fault_engine.Batch.results

let run_with_lfsr ?(extra_cycles = 0) ?policy sim seg =
  let policy =
    match policy with Some p -> p | None -> default_policy ()
  in
  let width = Segment.input_count seg in
  if width > 20 then invalid_arg "Pet.run_with_lfsr: more than 20 inputs";
  if width < 1 then invalid_arg "Pet.run_with_lfsr: segment has no inputs";
  let faults = fault_list sim seg in
  let count = (1 lsl width) + extra_cycles in
  let patterns = Fault_engine.lfsr_patterns ~width ~count in
  let o = Fault_engine.Batch.run_segment policy sim seg ~patterns faults in
  summarise ~width ~patterns_applied:count o.Fault_engine.Batch.results

let pp ppf r =
  Format.fprintf ppf
    "width %d: %d/%d faults detected (%.1f%%; %d redundant; detectable \
     coverage %.1f%%) with %d patterns"
    r.width r.n_detected r.n_faults (100.0 *. r.coverage) r.n_redundant
    (100.0 *. r.detectable_coverage)
    r.patterns_applied
