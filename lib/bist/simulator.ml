module Circuit = Ppet_netlist.Circuit
module Gate = Ppet_netlist.Gate

type t = {
  c : Circuit.t;
  topo : int array;  (* combinational gates in dependency order *)
}

let create c =
  let levels = Circuit.levels c in
  let combs = Circuit.combinational c in
  let order = Array.copy combs in
  Array.sort (fun a b -> compare (levels.(a), a) (levels.(b), b)) order;
  { c; topo = order }

let circuit t = t.c

let order t = t.topo

let eval_gate t values id =
  let nd = Circuit.node t.c id in
  let ins = Array.map (fun f -> values.(f)) nd.Circuit.fanins in
  values.(id) <- Gate.eval_word nd.Circuit.kind ins

let eval_all t values =
  if Array.length values <> Circuit.size t.c then
    invalid_arg "Simulator.eval_all: values array size mismatch";
  Array.iter (fun id -> eval_gate t values id) t.topo

let eval_members t values ~member =
  if Array.length values <> Circuit.size t.c then
    invalid_arg "Simulator.eval_members: values array size mismatch";
  Array.iter (fun id -> if member.(id) then eval_gate t values id) t.topo

let step_into t ~values ~state ~pi ~next ~po =
  let dffs = Circuit.dffs t.c in
  let pis = t.c.Circuit.inputs in
  if Array.length values <> Circuit.size t.c then
    invalid_arg "Simulator.step: values size mismatch";
  if Array.length state <> Array.length dffs then
    invalid_arg "Simulator.step: state size mismatch";
  if Array.length pi <> Array.length pis then
    invalid_arg "Simulator.step: pi size mismatch";
  if Array.length next <> Array.length dffs then
    invalid_arg "Simulator.step: next size mismatch";
  if Array.length po <> Array.length t.c.Circuit.outputs then
    invalid_arg "Simulator.step: po size mismatch";
  Array.iteri (fun i d -> values.(d) <- state.(i)) dffs;
  Array.iteri (fun i p -> values.(p) <- pi.(i)) pis;
  eval_all t values;
  Array.iteri
    (fun i d -> next.(i) <- values.((Circuit.node t.c d).Circuit.fanins.(0)))
    dffs;
  Array.iteri (fun i o -> po.(i) <- values.(o)) t.c.Circuit.outputs

let step t ~state ~pi =
  let values = Array.make (Circuit.size t.c) 0 in
  let next = Array.make (Array.length (Circuit.dffs t.c)) 0 in
  let po = Array.make (Array.length t.c.Circuit.outputs) 0 in
  step_into t ~values ~state ~pi ~next ~po;
  (next, po)

let run t ~state ~pis =
  let values = Array.make (Circuit.size t.c) 0 in
  let cur = Array.copy state in
  let next = Array.make (Array.length state) 0 in
  let outs =
    List.map
      (fun pi ->
        let po = Array.make (Array.length t.c.Circuit.outputs) 0 in
        step_into t ~values ~state:cur ~pi ~next ~po;
        Array.blit next 0 cur 0 (Array.length next);
        po)
      pis
  in
  (cur, outs)
