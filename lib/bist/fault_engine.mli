(** High-throughput pseudo-exhaustive fault simulation.

    Semantically identical to {!Fault_sim.segment_detects} — bit for bit,
    at any job count — but engineered for the scale the evaluation runs
    at (every partition of an s38584-class circuit, all [2^iota]
    patterns, every collapsed fault):

    - {b cone restriction}: for each fault site the transitive fanout
      restricted to segment members is precomputed once (and shared by
      both polarities and all pins of a gate); a faulty evaluation
      touches only those gates instead of the whole segment;
    - {b event-driven early exit}: within the cone, a gate is evaluated
      only when one of its fan-ins carries a faulty word that differs
      from the good value; the walk stops as soon as an observed signal
      differs (detected) or no changed signal has a remaining reader
      (the fault effect converged back to the good machine — undetected
      for this batch);
    - {b allocation-free steady state}: each worker owns one scratch set
      (good values, epoch-stamped faulty values, per-arity fan-in
      buffers) reused across every fault and pattern batch;
    - {b deterministic parallelism}: the fault list is sharded into
      contiguous, index-ordered chunks across the domains of a
      {!Ppet_parallel.Domain_pool.t}; each fault's verdict depends only
      on the fault and the patterns, so the merged result is the same
      list the serial path produces. *)

type t
(** A fault-simulation engine prepared for one (simulator, segment)
    pair: member topological order, observability and last-reader
    indices, and the fault-cone cache. *)

val create : Simulator.t -> Ppet_netlist.Segment.t -> t
(** Precompute the per-segment indices. Raises [Invalid_argument] if a
    member is a flip-flop (same contract as {!Fault_sim.segment_detects}). *)

val sequential_cutover : int
(** Segments with fewer member gates than this run serially even when a
    pool is supplied: the pooled dispatch (circuit-sized scratch per
    worker plus the fork/join barrier) costs more than the whole
    simulation at that size. Measured on the generated benchmarks — see
    EXPERIMENTS.md, "fault-engine cutover". Results are identical either
    way. *)

val detects :
  ?pool:Ppet_parallel.Domain_pool.t ->
  t ->
  patterns:int array list ->
  Fault.t list ->
  (Fault.t * bool) list
(** Like {!Fault_sim.segment_detects} on the engine's segment: each
    batch assigns one word per segment input signal (order of
    [Segment.input_signals]). Without [?pool] (or with a 1-job pool) the
    engine runs serially on the calling domain. Results are bit-identical
    to the serial seed loop in every configuration. *)

val segment_detects :
  ?pool:Ppet_parallel.Domain_pool.t ->
  Simulator.t ->
  Ppet_netlist.Segment.t ->
  patterns:int array list ->
  Fault.t list ->
  (Fault.t * bool) list
(** One-shot convenience: [create] + [detects]. Prefer building the
    engine once when simulating the same segment repeatedly. *)
