(** High-throughput pseudo-exhaustive fault simulation.

    The one fault-simulation entry point of the repo: every consumer
    (Pet, the selftest/campaign ops, the bench harnesses) drives faults
    through {!Batch.run}. The seed re-simulation loop survives only as
    the qcheck differential oracle in {!Fault_sim}.

    Engineered for the scale the evaluation runs at (every partition of
    an s38584-class circuit, all [2^iota] patterns, every collapsed
    fault):

    - {b cone restriction}: for each fault site the transitive fanout
      restricted to segment members is precomputed once (and shared by
      both polarities and all pins of a gate); a faulty evaluation
      touches only those gates instead of the whole segment;
    - {b event-driven early exit}: within the cone, a gate is evaluated
      only when one of its fan-ins carries a faulty word that differs
      from the good value; the walk stops as soon as an observed signal
      differs (detected) or no changed signal has a remaining reader
      (the fault effect converged back to the good machine — undetected
      for this batch);
    - {b word batching}: with [policy.words = W > 1] the engine runs a
      flat Bigarray kernel that evaluates W pattern words per gate
      visit, amortising the per-gate dispatch (kind decode, fan-in
      gathering, cone bookkeeping) that dominates the single-word loop;
    - {b fault dropping}: under {!Batch.Drop} a fault detected by one
      word group is retired immediately, so late patterns only simulate
      the surviving (hard or redundant) faults;
    - {b allocation-free steady state}: each worker owns one scratch set
      (good values, epoch-stamped faulty values, fan-in buffers) reused
      across every fault and pattern batch;
    - {b deterministic parallelism}: the fault list is sharded into
      contiguous, index-ordered chunks across the domains of a
      {!Ppet_parallel.Domain_pool.t}; each fault's verdict depends only
      on the fault and the patterns, so the merged result is the same
      list the serial path produces — at any word width, job count, or
      dropping policy. *)

type t
(** A fault-simulation engine prepared for one (simulator, segment)
    pair: member topological order, observability and last-reader
    indices, the fault-cone cache, and the flat slot/CSR-fan-in view the
    multi-word kernel runs on. *)

val create : Simulator.t -> Ppet_netlist.Segment.t -> t
(** Precompute the per-segment indices. Raises [Invalid_argument] if a
    member is a flip-flop (same contract as {!Fault_sim.segment_detects}). *)

(** {2 Pattern construction}

    Helpers shared by every campaign consumer (formerly in
    [Fault_sim]). *)

val pack_vectors : width:int -> int list -> int array list
(** Pack bit vectors (input i = bit i of each vector) into word batches
    of [Gate.bits_per_word] vectors each, the final batch ragged. One
    pass over the list; the packing {!exhaustive_patterns} and
    {!lfsr_patterns} are built from. *)

val exhaustive_patterns : width:int -> int array list
(** All [2^width] input vectors, packed into word batches: batch j gives,
    for input bit i, the word whose bit b is the value of input i in
    vector [j * bits_per_word + b]. Width must be at most 24. *)

val lfsr_patterns : width:int -> count:int -> int array list
(** The first [count] patterns of the standard CBIT LFSR of that width
    (plus the all-zero vector first, which the autonomous LFSR cannot
    produce), packed like {!exhaustive_patterns}. *)

val coverage : (Fault.t * bool) list -> float
(** Detected fraction, in [0, 1]; 1.0 for an empty list. *)

(** {2 The batch interface} *)

module Batch : sig
  type drop =
    | Keep  (** simulate every fault against every word group — the
                reference semantics, and the right mode for fixed-work
                throughput probes *)
    | Drop  (** retire a fault as soon as one word group detects it, so
                later patterns only simulate survivors. Verdicts are
                identical to [Keep]; only the work (and wall clock)
                differs. *)

  type policy = {
    words : int;
        (** pattern words evaluated per gate visit. [1] selects the
            scalar int-array kernel; [>= 2] the flat Bigarray multi-word
            kernel. *)
    pool : Ppet_parallel.Domain_pool.t option;
        (** fault-partition parallelism; [None] (or a 1-job pool) runs
            on the calling domain *)
    drop : drop;
    cutover : int;
        (** segments with fewer member gates than this run serially even
            when a pool is supplied: the pooled dispatch (per-worker
            scratch plus the fork/join barrier) costs more than the
            whole simulation at that size. The CLI threads
            [Params.fault_cutover] (default 128, the measured knee — see
            EXPERIMENTS.md, "fault-engine cutover") through here. *)
  }

  val policy :
    ?words:int ->
    ?pool:Ppet_parallel.Domain_pool.t ->
    ?drop:drop ->
    ?cutover:int ->
    unit ->
    policy
  (** Defaults: [words = 8], no pool, [Drop], [cutover = 128] (keep in
      sync with [Params.default.fault_cutover]). *)

  type outcome = {
    results : (Fault.t * bool) list;
        (** every fault with its verdict, input order *)
    n_faults : int;
    n_detected : int;
    coverage : float;  (** detected fraction; 1.0 when no faults *)
    batches : int;     (** pattern word batches offered *)
    word_evals : int;
        (** gate-word evaluations actually performed (good re-simulation
            plus event-driven faulty evaluations, summed over workers) —
            the work the dropping policy and word width save is visible
            here *)
  }

  val run : t -> policy -> patterns:int array list -> Fault.t list -> outcome
  (** Simulate the faults against the batches (each batch assigns one
      word per segment input signal, order of [Segment.input_signals]).
      Verdicts are bit-identical across every policy: word width, job
      count, and dropping only change the wall clock. Raises
      [Invalid_argument] on a batch arity mismatch or a non-positive
      [words]/[cutover]. *)

  val run_segment :
    policy ->
    Simulator.t ->
    Ppet_netlist.Segment.t ->
    patterns:int array list ->
    Fault.t list ->
    outcome
  (** One-shot convenience: {!create} + {!run}. Prefer building the
      engine once when simulating the same segment repeatedly. *)
end
