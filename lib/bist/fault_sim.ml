module Circuit = Ppet_netlist.Circuit
module Gate = Ppet_netlist.Gate
module Segment = Ppet_netlist.Segment

let word_mask = max_int

let const_of stuck_at = if stuck_at then word_mask else 0

(* Evaluate the member gates with an optional fault injected. Sources
   (boundary signals) must be preset in [values]. *)
let eval_with_fault sim values ~member fault =
  let c = Simulator.circuit sim in
  (match fault with
   | Some { Fault.site = Fault.Output id; stuck_at }
     when not member.(id) || (Circuit.node c id).Circuit.kind = Gate.Input ->
     (* a stuck source: override before any gate reads it *)
     values.(id) <- const_of stuck_at
   | Some { Fault.site = Fault.Output _; _ }
   | Some { Fault.site = Fault.Input_pin _; _ }
   | None -> ());
  Array.iter
    (fun id ->
      if member.(id) then begin
        let nd = Circuit.node c id in
        let ins = Array.map (fun f -> values.(f)) nd.Circuit.fanins in
        (match fault with
         | Some { Fault.site = Fault.Input_pin (gid, pin); stuck_at }
           when gid = id ->
           ins.(pin) <- const_of stuck_at
         | Some { Fault.site = Fault.Input_pin _; _ }
         | Some { Fault.site = Fault.Output _; _ }
         | None -> ());
        let v = Gate.eval_word nd.Circuit.kind ins in
        let v =
          match fault with
          | Some { Fault.site = Fault.Output oid; stuck_at } when oid = id ->
            const_of stuck_at
          | Some { Fault.site = Fault.Output _; _ }
          | Some { Fault.site = Fault.Input_pin _; _ }
          | None -> v
        in
        values.(id) <- v
      end)
    (Simulator.order sim)

let check_members c (seg : Segment.t) =
  Array.iter
    (fun id ->
      if (Circuit.node c id).Circuit.kind = Gate.Dff then
        invalid_arg
          "Fault_sim: segment members must be combinational (map clusters \
           with their flip-flops on the boundary)")
    seg.Segment.members

let segment_detects sim (seg : Segment.t) ~patterns faults =
  let c = Simulator.circuit sim in
  check_members c seg;
  let n = Circuit.size c in
  let member = Array.make n false in
  Array.iter (fun id -> member.(id) <- true) seg.Segment.members;
  let inputs = Segment.input_signals seg in
  let detected = Hashtbl.create (List.length faults) in
  List.iter (fun f -> Hashtbl.replace detected f false) faults;
  List.iter
    (fun batch ->
      if Array.length batch <> Array.length inputs then
        invalid_arg "Fault_sim.segment_detects: batch arity mismatch";
      let base = Array.make n 0 in
      Array.iteri (fun i sig_id -> base.(sig_id) <- batch.(i)) inputs;
      let good = Array.copy base in
      eval_with_fault sim good ~member None;
      List.iter
        (fun f ->
          if not (Hashtbl.find detected f) then begin
            let faulty = Array.copy base in
            eval_with_fault sim faulty ~member (Some f);
            let differs =
              Array.exists
                (fun obs -> good.(obs) lxor faulty.(obs) <> 0)
                seg.Segment.observed
            in
            if differs then Hashtbl.replace detected f true
          end)
        faults)
    patterns;
  List.map (fun f -> (f, Hashtbl.find detected f)) faults
