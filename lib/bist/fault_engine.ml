module Circuit = Ppet_netlist.Circuit
module Gate = Ppet_netlist.Gate
module Segment = Ppet_netlist.Segment
module Domain_pool = Ppet_parallel.Domain_pool
module Obs = Ppet_obs.Obs

let word_mask = max_int

let const_of stuck_at = if stuck_at then word_mask else 0

(* Flat encoding of the combinational kinds for the multi-word kernel:
   code = (family lsl 1) lor negated, with families 0 = wire
   (BUFF/NOT), 1 = AND, 2 = OR, 3 = XOR. The inner loops dispatch on the
   family once per gate and fold the negation in as a final pass, so
   NAND/NOR/XNOR share their family's word loop. *)
let code_of = function
  | Gate.Buff -> 0
  | Gate.Not -> 1
  | Gate.And -> 2
  | Gate.Nand -> 3
  | Gate.Or -> 4
  | Gate.Nor -> 5
  | Gate.Xor -> 6
  | Gate.Xnor -> 7
  | Gate.Input | Gate.Dff ->
    invalid_arg "Fault_engine: member gates must be combinational"

type t = {
  c : Circuit.t;
  seg : Segment.t;
  inputs : int array;        (* Segment.input_signals, batch order *)
  seg_order : int array;     (* member combinational gates, topo order *)
  pos_of : int array;        (* node id -> position in seg_order, -1 *)
  observed : bool array;     (* node id -> member observation point *)
  last_reader : int array;   (* node id -> max position reading it, -1 *)
  max_arity : int;
  cones : (int, int array) Hashtbl.t;
      (* fault-site node id -> member positions in its transitive
         fanout, ascending; the site itself is excluded (combinational
         members cannot cycle). Shared read-only by the workers;
         populated serially before each dispatch. *)
  cone_stamp : int array;    (* per position, for cone construction *)
  mutable cone_epoch : int;
  (* --- flat view for the multi-word kernel: slot i < width is input
     signal i, slot width + k is seg_order.(k) --- *)
  width : int;
  n_slots : int;
  slot_of : int array;       (* node id -> slot, -1 *)
  kind_code : int array;     (* per position *)
  fanin_off : int array;     (* position -> offset into fanin_slot (CSR) *)
  fanin_slot : int array;
  obs_slot : bool array;     (* per slot *)
  last_rd : int array;       (* per slot: max position reading it, -1 *)
}

let check_members c (seg : Segment.t) =
  Array.iter
    (fun id ->
      if (Circuit.node c id).Circuit.kind = Gate.Dff then
        invalid_arg
          "Fault_engine: segment members must be combinational (map \
           clusters with their flip-flops on the boundary)")
    seg.Segment.members

let create sim (seg : Segment.t) =
  let c = Simulator.circuit sim in
  check_members c seg;
  let n = Circuit.size c in
  let member = Array.make n false in
  Array.iter (fun id -> member.(id) <- true) seg.Segment.members;
  let seg_order =
    Array.of_list
      (List.filter
         (fun id -> member.(id))
         (Array.to_list (Simulator.order sim)))
  in
  let pos_of = Array.make n (-1) in
  Array.iteri (fun k id -> pos_of.(id) <- k) seg_order;
  let observed = Array.make n false in
  Array.iter (fun id -> observed.(id) <- true) seg.Segment.observed;
  let last_reader = Array.make n (-1) in
  let max_arity = ref 0 in
  Array.iteri
    (fun k id ->
      let fanins = (Circuit.node c id).Circuit.fanins in
      if Array.length fanins > !max_arity then
        max_arity := Array.length fanins;
      Array.iter
        (fun f -> if last_reader.(f) < k then last_reader.(f) <- k)
        fanins)
    seg_order;
  let inputs = Segment.input_signals seg in
  let width = Array.length inputs in
  let n_pos = Array.length seg_order in
  let n_slots = width + n_pos in
  let slot_of = Array.make n (-1) in
  Array.iteri (fun k id -> slot_of.(id) <- width + k) seg_order;
  Array.iteri (fun i id -> slot_of.(id) <- i) inputs;
  let kind_code =
    Array.map (fun id -> code_of (Circuit.node c id).Circuit.kind) seg_order
  in
  let fanin_off = Array.make (n_pos + 1) 0 in
  Array.iteri
    (fun k id ->
      fanin_off.(k + 1) <-
        fanin_off.(k) + Array.length (Circuit.node c id).Circuit.fanins)
    seg_order;
  let fanin_slot = Array.make (max fanin_off.(n_pos) 1) 0 in
  Array.iteri
    (fun k id ->
      let fanins = (Circuit.node c id).Circuit.fanins in
      Array.iteri
        (fun j f ->
          (* every fan-in of a member is itself a member position or a
             segment input signal, so it always has a slot *)
          fanin_slot.(fanin_off.(k) + j) <- slot_of.(f))
        fanins)
    seg_order;
  let obs_slot = Array.make (max n_slots 1) false in
  Array.iter (fun id -> obs_slot.(slot_of.(id)) <- true) seg.Segment.observed;
  let last_rd = Array.make (max n_slots 1) (-1) in
  Array.iteri (fun i id -> last_rd.(i) <- last_reader.(id)) inputs;
  Array.iteri
    (fun k id -> last_rd.(width + k) <- last_reader.(id))
    seg_order;
  {
    c;
    seg;
    inputs;
    seg_order;
    pos_of;
    observed;
    last_reader;
    max_arity = !max_arity;
    cones = Hashtbl.create 64;
    cone_stamp = Array.make (max n_pos 1) 0;
    cone_epoch = 0;
    width;
    n_slots;
    slot_of;
    kind_code;
    fanin_off;
    fanin_slot;
    obs_slot;
    last_rd;
  }

(* Member positions reachable from signal [root] through member gates.
   Cached: both polarities of an output fault and every pin fault of a
   gate share one cone. *)
let cone t root =
  match Hashtbl.find_opt t.cones root with
  | Some arr -> arr
  | None ->
    t.cone_epoch <- t.cone_epoch + 1;
    let ep = t.cone_epoch in
    let acc = ref [] in
    let rec expand id =
      Array.iter
        (fun sink ->
          let p = t.pos_of.(sink) in
          if p >= 0 && t.cone_stamp.(p) <> ep then begin
            t.cone_stamp.(p) <- ep;
            acc := p :: !acc;
            expand sink
          end)
        t.c.Circuit.fanouts.(id)
    in
    expand root;
    let arr = Array.of_list !acc in
    Array.sort compare arr;
    Hashtbl.replace t.cones root arr;
    arr

let root_of (f : Fault.t) =
  match f.Fault.site with
  | Fault.Output id -> id
  | Fault.Input_pin (gid, _) -> gid

(* ------------------------------------------------------------------ *)
(* pattern construction (shared by every campaign consumer)            *)

(* Single pass over the vector list: open a fresh word batch every
   [bits_per_word] vectors (the last one ragged), OR each vector's bits
   into the open batch as it streams by. *)
let pack_vectors ~width vectors =
  let bpw = Gate.bits_per_word in
  let rev_batches = ref [] in
  let words = ref [||] in
  let b = ref bpw in
  List.iter
    (fun vector ->
      if !b = bpw then begin
        words := Array.make width 0;
        rev_batches := !words :: !rev_batches;
        b := 0
      end;
      let w = !words in
      for i = 0 to width - 1 do
        if (vector lsr i) land 1 = 1 then w.(i) <- w.(i) lor (1 lsl !b)
      done;
      incr b)
    vectors;
  List.rev !rev_batches

let exhaustive_patterns ~width =
  if width < 0 || width > 24 then
    invalid_arg "Fault_engine.exhaustive_patterns: width must be in 0..24";
  let total = 1 lsl width in
  pack_vectors ~width (List.init total (fun v -> v))

let lfsr_patterns ~width ~count =
  if width < 1 || width > 32 then
    invalid_arg "Fault_engine.lfsr_patterns: width must be in 1..32";
  let l = Lfsr.create ~width () in
  let vectors =
    0
    :: List.filteri (fun i _ -> i < count - 1) (Lfsr.sequence l (max 0 (count - 1)))
  in
  pack_vectors ~width vectors

let coverage results =
  match results with
  | [] -> 1.0
  | _ ->
    let det = List.length (List.filter snd results) in
    float_of_int det /. float_of_int (List.length results)

(* ------------------------------------------------------------------ *)
(* single-word kernel: per-worker scratch allocated once per dispatch,
   reused across every fault and batch                                 *)

type scratch = {
  good : int array;          (* fault-free values of the current batch *)
  faulty : int array;        (* valid only where stamp = epoch *)
  stamp : int array;
  mutable epoch : int;
  ins : int array array;     (* arity -> reusable fan-in buffer *)
  mutable evals : int;       (* gate-word evaluations performed *)
}

let make_scratch t =
  let n = Circuit.size t.c in
  {
    good = Array.make (max n 1) 0;
    faulty = Array.make (max n 1) 0;
    stamp = Array.make (max n 1) 0;
    epoch = 0;
    ins = Array.init (t.max_arity + 1) (fun a -> Array.make (max a 1) 0);
    evals = 0;
  }

let eval_good t s batch =
  Array.iteri (fun i sig_id -> s.good.(sig_id) <- batch.(i)) t.inputs;
  let order = t.seg_order in
  for k = 0 to Array.length order - 1 do
    let id = order.(k) in
    let nd = Circuit.node t.c id in
    let fanins = nd.Circuit.fanins in
    let a = Array.length fanins in
    let buf = s.ins.(a) in
    for j = 0 to a - 1 do
      buf.(j) <- s.good.(fanins.(j))
    done;
    s.good.(id) <- Gate.eval_word nd.Circuit.kind buf
  done;
  s.evals <- s.evals + Array.length order

(* One fault against the batch currently in [s.good]. Returns whether
   some observed signal differs — exactly the seed criterion. *)
let sim_fault t s (f : Fault.t) =
  s.epoch <- s.epoch + 1;
  let epoch = s.epoch in
  let detected = ref false in
  let max_reach = ref (-1) in
  let mark id v =
    s.faulty.(id) <- v;
    s.stamp.(id) <- epoch;
    if t.observed.(id) then detected := true
    else if t.last_reader.(id) > !max_reach then max_reach := t.last_reader.(id)
  in
  let live =
    match f.Fault.site with
    | Fault.Output id ->
      (* a stuck output — of a member gate, an inside PI, or a boundary
         source — shows the constant to every reader *)
      let v = const_of f.Fault.stuck_at in
      if v = s.good.(id) then false
      else begin
        mark id v;
        true
      end
    | Fault.Input_pin (gid, pin) ->
      (* only the one gate sees the stuck pin; outside members the seed
         never injects it *)
      if t.pos_of.(gid) < 0 then false
      else begin
        let nd = Circuit.node t.c gid in
        let fanins = nd.Circuit.fanins in
        let a = Array.length fanins in
        let buf = s.ins.(a) in
        for j = 0 to a - 1 do
          buf.(j) <- s.good.(fanins.(j))
        done;
        buf.(pin) <- const_of f.Fault.stuck_at;
        let v = Gate.eval_word nd.Circuit.kind buf in
        s.evals <- s.evals + 1;
        if v = s.good.(gid) then false
        else begin
          mark gid v;
          true
        end
      end
  in
  if live && not !detected then begin
    let cone = cone t (root_of f) in
    let len = Array.length cone in
    let i = ref 0 in
    (* positions ascend, so once the next position is past the furthest
       reader of any changed signal the effect has converged *)
    while (not !detected) && !i < len && cone.(!i) <= !max_reach do
      let id = t.seg_order.(cone.(!i)) in
      incr i;
      let nd = Circuit.node t.c id in
      let fanins = nd.Circuit.fanins in
      let a = Array.length fanins in
      let buf = s.ins.(a) in
      let touched = ref false in
      for j = 0 to a - 1 do
        let fid = fanins.(j) in
        if s.stamp.(fid) = epoch then begin
          touched := true;
          buf.(j) <- s.faulty.(fid)
        end
        else buf.(j) <- s.good.(fid)
      done;
      if !touched then begin
        let v = Gate.eval_word nd.Circuit.kind buf in
        s.evals <- s.evals + 1;
        if v <> s.good.(id) then mark id v
      end
    done
  end;
  !detected

(* ------------------------------------------------------------------ *)
(* multi-word kernel: W pattern words per gate visit over a flat
   Bigarray value store (slot s occupies words [s*W .. s*W+W-1])       *)

type words = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type mscratch = {
  mgood : words;
  mfaulty : words;
  mstamp : int array;        (* per slot; valid where = mepoch *)
  mutable mepoch : int;
  mutable mevals : int;
  (* per-fault detection state lives here rather than in per-visit refs
     so the hot path allocates nothing *)
  mutable mdetected : bool;
  mutable mreach : int;
}

let make_mscratch t w =
  let n = max 1 (t.n_slots * w) in
  let mk () =
    let a = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n in
    Bigarray.Array1.fill a 0;
    a
  in
  {
    mgood = mk ();
    mfaulty = mk ();
    mstamp = Array.make (max 1 t.n_slots) 0;
    mepoch = 0;
    mevals = 0;
    mdetected = false;
    mreach = -1;
  }

(* The concrete type constraint matters: left polymorphic, the bigarray
   primitive inside compiles to the generic C call (caml_ba_get_1) and
   every word access in the kernel costs a ~50ns trip through the
   runtime; monomorphic, it compiles to an inline load. *)
let[@inline] bget (a : words) i = Bigarray.Array1.unsafe_get a i
let[@inline] bset (a : words) i (v : int) = Bigarray.Array1.unsafe_set a i v

(* Good simulation of one word group: batches [g0 .. g0+gn-1] of [pats],
   gn <= w (the final group is ragged). *)
let eval_good_multi t ms ~w ~gn ~pats ~g0 =
  let mg = ms.mgood in
  for i = 0 to t.width - 1 do
    let base = i * w in
    for j = 0 to gn - 1 do
      bset mg (base + j) (Array.unsafe_get (Array.unsafe_get pats (g0 + j)) i)
    done
  done;
  let n_pos = Array.length t.seg_order in
  for p = 0 to n_pos - 1 do
    let off = Array.unsafe_get t.fanin_off p in
    let arity = Array.unsafe_get t.fanin_off (p + 1) - off in
    let code = Array.unsafe_get t.kind_code p in
    let d = (t.width + p) * w in
    let s0 = Array.unsafe_get t.fanin_slot off * w in
    (match code lsr 1 with
     | 0 ->
       for j = 0 to gn - 1 do
         bset mg (d + j) (bget mg (s0 + j))
       done
     | fam ->
       let s1 = Array.unsafe_get t.fanin_slot (off + 1) * w in
       (match fam with
        | 1 ->
          for j = 0 to gn - 1 do
            bset mg (d + j) (bget mg (s0 + j) land bget mg (s1 + j))
          done
        | 2 ->
          for j = 0 to gn - 1 do
            bset mg (d + j) (bget mg (s0 + j) lor bget mg (s1 + j))
          done
        | _ ->
          for j = 0 to gn - 1 do
            bset mg (d + j) (bget mg (s0 + j) lxor bget mg (s1 + j))
          done);
       for i = 2 to arity - 1 do
         let si = Array.unsafe_get t.fanin_slot (off + i) * w in
         match fam with
         | 1 ->
           for j = 0 to gn - 1 do
             bset mg (d + j) (bget mg (d + j) land bget mg (si + j))
           done
         | 2 ->
           for j = 0 to gn - 1 do
             bset mg (d + j) (bget mg (d + j) lor bget mg (si + j))
           done
         | _ ->
           for j = 0 to gn - 1 do
             bset mg (d + j) (bget mg (d + j) lxor bget mg (si + j))
           done
       done);
    if code land 1 = 1 then
      for j = 0 to gn - 1 do
        bset mg (d + j) (word_mask land lnot (bget mg (d + j)))
      done
  done;
  ms.mevals <- ms.mevals + (n_pos * gn)

(* Faulty evaluation of position [p] with each fan-in read from the
   faulty plane when stamped this epoch, the good plane otherwise.
   Negation is folded in branchlessly (lxor with an all-ones mask), and
   the result is compared against the good plane as it is written, so
   the caller never re-scans the destination. Returns 0 when no fan-in
   was stamped (nothing written), 1 when written but equal to the good
   plane in every word, 2 when some word differs. *)
let eval_faulty_pos t ms ~w ~gn p =
  let fanin_slot = t.fanin_slot and mstamp = ms.mstamp in
  let off = Array.unsafe_get t.fanin_off p in
  let arity = Array.unsafe_get t.fanin_off (p + 1) - off in
  let ep = ms.mepoch in
  let mg = ms.mgood and mf = ms.mfaulty in
  let code = Array.unsafe_get t.kind_code p in
  let d = (t.width + p) * w in
  let fam = code lsr 1 in
  let nmask = if code land 1 = 1 then word_mask else 0 in
  let touched =
    if fam = 0 then
      Array.unsafe_get mstamp (Array.unsafe_get fanin_slot off) = ep
    else if arity = 2 then
      Array.unsafe_get mstamp (Array.unsafe_get fanin_slot off) = ep
      || Array.unsafe_get mstamp (Array.unsafe_get fanin_slot (off + 1)) = ep
    else begin
      let tch = ref false in
      for i = 0 to arity - 1 do
        if Array.unsafe_get mstamp (Array.unsafe_get fanin_slot (off + i)) = ep
        then tch := true
      done;
      !tch
    end
  in
  if not touched then 0
  else begin
    let diff = ref false in
    (match fam with
     | 0 ->
       (* single fan-in, and touched means it is stamped *)
       let s0 = Array.unsafe_get fanin_slot off * w in
       for j = 0 to gn - 1 do
         let r = bget mf (s0 + j) lxor nmask in
         if r <> bget mg (d + j) then diff := true;
         bset mf (d + j) r
       done
     | fam ->
       if arity = 2 then begin
         let f0 = Array.unsafe_get fanin_slot off
         and f1 = Array.unsafe_get fanin_slot (off + 1) in
         let src0 = if Array.unsafe_get mstamp f0 = ep then mf else mg in
         let src1 = if Array.unsafe_get mstamp f1 = ep then mf else mg in
         let s0 = f0 * w and s1 = f1 * w in
         match fam with
         | 1 ->
           for j = 0 to gn - 1 do
             let r = bget src0 (s0 + j) land bget src1 (s1 + j) lxor nmask in
             if r <> bget mg (d + j) then diff := true;
             bset mf (d + j) r
           done
         | 2 ->
           for j = 0 to gn - 1 do
             let r = bget src0 (s0 + j) lor bget src1 (s1 + j) lxor nmask in
             if r <> bget mg (d + j) then diff := true;
             bset mf (d + j) r
           done
         | _ ->
           for j = 0 to gn - 1 do
             let r = bget src0 (s0 + j) lxor bget src1 (s1 + j) lxor nmask in
             if r <> bget mg (d + j) then diff := true;
             bset mf (d + j) r
           done
       end
       else if arity = 1 then begin
         let f0 = Array.unsafe_get fanin_slot off in
         let src0 = if Array.unsafe_get mstamp f0 = ep then mf else mg in
         let s0 = f0 * w in
         for j = 0 to gn - 1 do
           let r = bget src0 (s0 + j) lxor nmask in
           if r <> bget mg (d + j) then diff := true;
           bset mf (d + j) r
         done
       end
       else begin
         let f0 = Array.unsafe_get fanin_slot off in
         let src0 = if Array.unsafe_get mstamp f0 = ep then mf else mg in
         let s0 = f0 * w in
         for j = 0 to gn - 1 do
           bset mf (d + j) (bget src0 (s0 + j))
         done;
         for i = 1 to arity - 2 do
           let fi = Array.unsafe_get fanin_slot (off + i) in
           let srci = if Array.unsafe_get mstamp fi = ep then mf else mg in
           let si = fi * w in
           match fam with
           | 1 ->
             for j = 0 to gn - 1 do
               bset mf (d + j) (bget mf (d + j) land bget srci (si + j))
             done
           | 2 ->
             for j = 0 to gn - 1 do
               bset mf (d + j) (bget mf (d + j) lor bget srci (si + j))
             done
           | _ ->
             for j = 0 to gn - 1 do
               bset mf (d + j) (bget mf (d + j) lxor bget srci (si + j))
             done
         done;
         (* the last fan-in is folded together with the negation and
            the good-plane compare in one final pass *)
         let fl = Array.unsafe_get fanin_slot (off + arity - 1) in
         let srcl = if Array.unsafe_get mstamp fl = ep then mf else mg in
         let sl = fl * w in
         match fam with
         | 1 ->
           for j = 0 to gn - 1 do
             let r = bget mf (d + j) land bget srcl (sl + j) lxor nmask in
             if r <> bget mg (d + j) then diff := true;
             bset mf (d + j) r
           done
         | 2 ->
           for j = 0 to gn - 1 do
             let r = bget mf (d + j) lor bget srcl (sl + j) lxor nmask in
             if r <> bget mg (d + j) then diff := true;
             bset mf (d + j) r
           done
         | _ ->
           for j = 0 to gn - 1 do
             let r = bget mf (d + j) lxor bget srcl (sl + j) lxor nmask in
             if r <> bget mg (d + j) then diff := true;
             bset mf (d + j) r
           done
       end);
    if !diff then 2 else 1
  end

(* Position [p] evaluated with fan-in [pin] forced to the constant [v]
   and every other fan-in good — the multi-word injection for pin
   faults. At injection time no slot is stamped yet. Returns whether
   any written word differs from the good plane (fused into the final
   negation pass, like [eval_faulty_pos]). *)
let inject_pin t ms ~w ~gn p ~pin ~v =
  let fanin_slot = t.fanin_slot in
  let off = Array.unsafe_get t.fanin_off p in
  let arity = Array.unsafe_get t.fanin_off (p + 1) - off in
  let mg = ms.mgood and mf = ms.mfaulty in
  let code = Array.unsafe_get t.kind_code p in
  let d = (t.width + p) * w in
  let fam = code lsr 1 in
  let nmask = if code land 1 = 1 then word_mask else 0 in
  (if fam = 0 then
     for j = 0 to gn - 1 do
       bset mf (d + j) v
     done
   else begin
     (if pin = 0 then
        for j = 0 to gn - 1 do
          bset mf (d + j) v
        done
      else begin
        let s0 = Array.unsafe_get fanin_slot off * w in
        for j = 0 to gn - 1 do
          bset mf (d + j) (bget mg (s0 + j))
        done
      end);
     for i = 1 to arity - 1 do
       if i = pin then (
         match fam with
         | 1 ->
           for j = 0 to gn - 1 do
             bset mf (d + j) (bget mf (d + j) land v)
           done
         | 2 ->
           for j = 0 to gn - 1 do
             bset mf (d + j) (bget mf (d + j) lor v)
           done
         | _ ->
           for j = 0 to gn - 1 do
             bset mf (d + j) (bget mf (d + j) lxor v)
           done)
       else begin
         let si = Array.unsafe_get fanin_slot (off + i) * w in
         match fam with
         | 1 ->
           for j = 0 to gn - 1 do
             bset mf (d + j) (bget mf (d + j) land bget mg (si + j))
           done
         | 2 ->
           for j = 0 to gn - 1 do
             bset mf (d + j) (bget mf (d + j) lor bget mg (si + j))
           done
         | _ ->
           for j = 0 to gn - 1 do
             bset mf (d + j) (bget mf (d + j) lxor bget mg (si + j))
           done
       end
     done
   end);
  let diff = ref false in
  for j = 0 to gn - 1 do
    let r = bget mf (d + j) lxor nmask in
    if r <> bget mg (d + j) then diff := true;
    bset mf (d + j) r
  done;
  !diff

(* One fault against the word group currently in [ms.mgood]. Per-word
   semantics match [sim_fault] exactly: a quiet word of a marked slot
   carries its good value, so it neither detects nor propagates.
   [fcone] is the fault's member cone, precomputed once per dispatch so
   the inner loop never touches the cone cache. *)
let[@inline] mark t ms slot =
  ms.mstamp.(slot) <- ms.mepoch;
  if t.obs_slot.(slot) then ms.mdetected <- true
  else if t.last_rd.(slot) > ms.mreach then ms.mreach <- t.last_rd.(slot)

let sim_fault_multi t ms ~w ~gn ~fcone (f : Fault.t) =
  ms.mepoch <- ms.mepoch + 1;
  ms.mdetected <- false;
  ms.mreach <- -1;
  let mg = ms.mgood and mf = ms.mfaulty in
  let live =
    match f.Fault.site with
    | Fault.Output id ->
      let slot = t.slot_of.(id) in
      (* a site no member reads and no member drives cannot matter *)
      if slot < 0 then false
      else begin
        let v = const_of f.Fault.stuck_at in
        let base = slot * w in
        (* write and compare in one pass: the stuck constant differs
           from the good plane iff some good word is not already v *)
        let d = ref false in
        for j = 0 to gn - 1 do
          if bget mg (base + j) <> v then d := true;
          bset mf (base + j) v
        done;
        if !d then begin
          mark t ms slot;
          true
        end
        else false
      end
    | Fault.Input_pin (gid, pin) ->
      let p = t.pos_of.(gid) in
      if p < 0 then false
      else begin
        let diff = inject_pin t ms ~w ~gn p ~pin ~v:(const_of f.Fault.stuck_at) in
        ms.mevals <- ms.mevals + gn;
        if diff then begin
          mark t ms (t.width + p);
          true
        end
        else false
      end
  in
  if live && not ms.mdetected then begin
    let len = Array.length fcone in
    let i = ref 0 in
    while
      (not ms.mdetected) && !i < len && Array.unsafe_get fcone !i <= ms.mreach
    do
      let p = Array.unsafe_get fcone !i in
      incr i;
      match eval_faulty_pos t ms ~w ~gn p with
      | 0 -> ()
      | r ->
        ms.mevals <- ms.mevals + gn;
        if r = 2 then mark t ms (t.width + p)
    done
  end;
  ms.mdetected

(* ------------------------------------------------------------------ *)
(* the batch interface                                                 *)

module Batch = struct
  type drop = Keep | Drop

  type policy = {
    words : int;
    pool : Domain_pool.t option;
    drop : drop;
    cutover : int;
  }

  (* keep the cutover default in sync with Params.default.fault_cutover
     (ppet_core sits above this library, so the constant cannot be
     shared textually) *)
  let policy ?(words = 8) ?pool ?(drop = Drop) ?(cutover = 128) () =
    { words; pool; drop; cutover }

  type outcome = {
    results : (Fault.t * bool) list;
    n_faults : int;
    n_detected : int;
    coverage : float;
    batches : int;
    word_evals : int;
  }

  (* shared parallel dispatch: contiguous index-ordered fault chunks,
     serial below the cutover (per-worker scratch plus the fork/join
     barrier cost more than microsecond segments) *)
  let dispatch pol t nf worker =
    match pol.pool with
    | Some p
      when Domain_pool.jobs p > 1 && Array.length t.seg_order >= pol.cutover
      ->
      let jobs = Domain_pool.jobs p in
      Domain_pool.run p (fun wid ->
          let lo, hi = Domain_pool.chunk ~jobs ~n:nf wid in
          worker wid lo hi)
    | _ -> worker 0 0 nf

  let run_single pol t patterns fs verdict evals =
    let worker wid lo hi =
      if lo < hi then begin
        let s = make_scratch t in
        let undetected = ref (hi - lo) in
        (try
           List.iter
             (fun batch ->
               if pol.drop = Drop && !undetected = 0 then raise Exit;
               eval_good t s batch;
               for i = lo to hi - 1 do
                 match pol.drop with
                 | Drop ->
                   if (not verdict.(i)) && sim_fault t s fs.(i) then begin
                     verdict.(i) <- true;
                     decr undetected
                   end
                 | Keep ->
                   if sim_fault t s fs.(i) then verdict.(i) <- true
               done)
             patterns
         with Exit -> ());
        evals.(wid) <- evals.(wid) + s.evals
      end
    in
    dispatch pol t (Array.length fs) worker

  let run_multi pol t pats fs verdict evals =
    let w = pol.words in
    let nb = Array.length pats in
    (* cones resolved once, outside the group x fault loops (the cache
       is already populated, so this is pure array plumbing) *)
    let fcones = Array.map (fun f -> cone t (root_of f)) fs in
    let worker wid lo hi =
      if lo < hi then begin
        let ms = make_mscratch t w in
        (* worker-local survivor list, compacted between word groups
           under Drop so late patterns only simulate live faults *)
        let active = Array.init (hi - lo) (fun i -> lo + i) in
        let nact = ref (hi - lo) in
        let g0 = ref 0 in
        while !g0 < nb && !nact > 0 do
          let gn = min w (nb - !g0) in
          eval_good_multi t ms ~w ~gn ~pats ~g0:!g0;
          let keep = ref 0 in
          for i = 0 to !nact - 1 do
            let fi = active.(i) in
            if sim_fault_multi t ms ~w ~gn ~fcone:fcones.(fi) fs.(fi) then
              verdict.(fi) <- true;
            if pol.drop = Keep || not verdict.(fi) then begin
              active.(!keep) <- fi;
              incr keep
            end
          done;
          nact := !keep;
          g0 := !g0 + w
        done;
        evals.(wid) <- evals.(wid) + ms.mevals
      end
    in
    dispatch pol t (Array.length fs) worker

  let run_impl t pol ~patterns faults =
    if pol.words < 1 then
      invalid_arg "Fault_engine.Batch.run: words must be >= 1";
    if pol.cutover < 1 then
      invalid_arg "Fault_engine.Batch.run: cutover must be >= 1";
    List.iter
      (fun batch ->
        if Array.length batch <> t.width then
          invalid_arg "Fault_engine.Batch.run: batch arity mismatch")
      patterns;
    let fs = Array.of_list faults in
    let nf = Array.length fs in
    (* populate the shared cone cache before going parallel *)
    Array.iter (fun f -> ignore (cone t (root_of f))) fs;
    let verdict = Array.make (max nf 1) false in
    let jobs =
      match pol.pool with Some p -> Domain_pool.jobs p | None -> 1
    in
    let evals = Array.make (max jobs 1) 0 in
    if pol.words = 1 then run_single pol t patterns fs verdict evals
    else run_multi pol t (Array.of_list patterns) fs verdict evals;
    let n_detected = ref 0 in
    for i = 0 to nf - 1 do
      if verdict.(i) then incr n_detected
    done;
    {
      results = List.mapi (fun i f -> (f, verdict.(i))) faults;
      n_faults = nf;
      n_detected = !n_detected;
      coverage =
        (if nf = 0 then 1.0
         else float_of_int !n_detected /. float_of_int nf);
      batches = List.length patterns;
      word_evals = Array.fold_left ( + ) 0 evals;
    }

  (* The enabled check sits here, at the call boundary: the per-fault
     and per-word loops above carry no instrumentation at all, and the
     disabled path allocates no closure. *)
  let run t pol ~patterns faults =
    if not (Obs.enabled ()) then run_impl t pol ~patterns faults
    else
      Obs.span "fault_engine.batch" (fun () ->
          Obs.add Obs.Metric.Faults_simulated (List.length faults);
          Obs.add Obs.Metric.Fault_patterns
            (Gate.bits_per_word * List.length patterns);
          let o = run_impl t pol ~patterns faults in
          Obs.add Obs.Metric.Fault_word_evals o.word_evals;
          o)

  let run_segment pol sim seg ~patterns faults =
    run (create sim seg) pol ~patterns faults
end
