module Circuit = Ppet_netlist.Circuit
module Gate = Ppet_netlist.Gate
module Segment = Ppet_netlist.Segment
module Domain_pool = Ppet_parallel.Domain_pool
module Obs = Ppet_obs.Obs

let word_mask = max_int

let const_of stuck_at = if stuck_at then word_mask else 0

type t = {
  c : Circuit.t;
  seg : Segment.t;
  inputs : int array;        (* Segment.input_signals, batch order *)
  seg_order : int array;     (* member combinational gates, topo order *)
  pos_of : int array;        (* node id -> position in seg_order, -1 *)
  observed : bool array;     (* node id -> member observation point *)
  last_reader : int array;   (* node id -> max position reading it, -1 *)
  max_arity : int;
  cones : (int, int array) Hashtbl.t;
      (* fault-site node id -> member positions in its transitive
         fanout, ascending; the site itself is excluded (combinational
         members cannot cycle). Shared read-only by the workers;
         populated serially before each dispatch. *)
  cone_stamp : int array;    (* per position, for cone construction *)
  mutable cone_epoch : int;
}

let check_members c (seg : Segment.t) =
  Array.iter
    (fun id ->
      if (Circuit.node c id).Circuit.kind = Gate.Dff then
        invalid_arg
          "Fault_engine: segment members must be combinational (map \
           clusters with their flip-flops on the boundary)")
    seg.Segment.members

let create sim (seg : Segment.t) =
  let c = Simulator.circuit sim in
  check_members c seg;
  let n = Circuit.size c in
  let member = Array.make n false in
  Array.iter (fun id -> member.(id) <- true) seg.Segment.members;
  let seg_order =
    Array.of_list
      (List.filter
         (fun id -> member.(id))
         (Array.to_list (Simulator.order sim)))
  in
  let pos_of = Array.make n (-1) in
  Array.iteri (fun k id -> pos_of.(id) <- k) seg_order;
  let observed = Array.make n false in
  Array.iter (fun id -> observed.(id) <- true) seg.Segment.observed;
  let last_reader = Array.make n (-1) in
  let max_arity = ref 0 in
  Array.iteri
    (fun k id ->
      let fanins = (Circuit.node c id).Circuit.fanins in
      if Array.length fanins > !max_arity then
        max_arity := Array.length fanins;
      Array.iter
        (fun f -> if last_reader.(f) < k then last_reader.(f) <- k)
        fanins)
    seg_order;
  {
    c;
    seg;
    inputs = Segment.input_signals seg;
    seg_order;
    pos_of;
    observed;
    last_reader;
    max_arity = !max_arity;
    cones = Hashtbl.create 64;
    cone_stamp = Array.make (max (Array.length seg_order) 1) 0;
    cone_epoch = 0;
  }

(* Member positions reachable from signal [root] through member gates.
   Cached: both polarities of an output fault and every pin fault of a
   gate share one cone. *)
let cone t root =
  match Hashtbl.find_opt t.cones root with
  | Some arr -> arr
  | None ->
    t.cone_epoch <- t.cone_epoch + 1;
    let ep = t.cone_epoch in
    let acc = ref [] in
    let rec expand id =
      Array.iter
        (fun sink ->
          let p = t.pos_of.(sink) in
          if p >= 0 && t.cone_stamp.(p) <> ep then begin
            t.cone_stamp.(p) <- ep;
            acc := p :: !acc;
            expand sink
          end)
        t.c.Circuit.fanouts.(id)
    in
    expand root;
    let arr = Array.of_list !acc in
    Array.sort compare arr;
    Hashtbl.replace t.cones root arr;
    arr

let root_of (f : Fault.t) =
  match f.Fault.site with
  | Fault.Output id -> id
  | Fault.Input_pin (gid, _) -> gid

(* ------------------------------------------------------------------ *)
(* per-worker scratch: allocated once per dispatch, reused across every
   fault and batch                                                     *)

type scratch = {
  good : int array;          (* fault-free values of the current batch *)
  faulty : int array;        (* valid only where stamp = epoch *)
  stamp : int array;
  mutable epoch : int;
  ins : int array array;     (* arity -> reusable fan-in buffer *)
}

let make_scratch t =
  let n = Circuit.size t.c in
  {
    good = Array.make (max n 1) 0;
    faulty = Array.make (max n 1) 0;
    stamp = Array.make (max n 1) 0;
    epoch = 0;
    ins = Array.init (t.max_arity + 1) (fun a -> Array.make (max a 1) 0);
  }

let eval_good t s batch =
  Array.iteri (fun i sig_id -> s.good.(sig_id) <- batch.(i)) t.inputs;
  let order = t.seg_order in
  for k = 0 to Array.length order - 1 do
    let id = order.(k) in
    let nd = Circuit.node t.c id in
    let fanins = nd.Circuit.fanins in
    let a = Array.length fanins in
    let buf = s.ins.(a) in
    for j = 0 to a - 1 do
      buf.(j) <- s.good.(fanins.(j))
    done;
    s.good.(id) <- Gate.eval_word nd.Circuit.kind buf
  done

(* One fault against the batch currently in [s.good]. Returns whether
   some observed signal differs — exactly the seed criterion. *)
let sim_fault t s (f : Fault.t) =
  s.epoch <- s.epoch + 1;
  let epoch = s.epoch in
  let detected = ref false in
  let max_reach = ref (-1) in
  let mark id v =
    s.faulty.(id) <- v;
    s.stamp.(id) <- epoch;
    if t.observed.(id) then detected := true
    else if t.last_reader.(id) > !max_reach then max_reach := t.last_reader.(id)
  in
  let live =
    match f.Fault.site with
    | Fault.Output id ->
      (* a stuck output — of a member gate, an inside PI, or a boundary
         source — shows the constant to every reader *)
      let v = const_of f.Fault.stuck_at in
      if v = s.good.(id) then false
      else begin
        mark id v;
        true
      end
    | Fault.Input_pin (gid, pin) ->
      (* only the one gate sees the stuck pin; outside members the seed
         never injects it *)
      if t.pos_of.(gid) < 0 then false
      else begin
        let nd = Circuit.node t.c gid in
        let fanins = nd.Circuit.fanins in
        let a = Array.length fanins in
        let buf = s.ins.(a) in
        for j = 0 to a - 1 do
          buf.(j) <- s.good.(fanins.(j))
        done;
        buf.(pin) <- const_of f.Fault.stuck_at;
        let v = Gate.eval_word nd.Circuit.kind buf in
        if v = s.good.(gid) then false
        else begin
          mark gid v;
          true
        end
      end
  in
  if live && not !detected then begin
    let cone = cone t (root_of f) in
    let len = Array.length cone in
    let i = ref 0 in
    (* positions ascend, so once the next position is past the furthest
       reader of any changed signal the effect has converged *)
    while (not !detected) && !i < len && cone.(!i) <= !max_reach do
      let id = t.seg_order.(cone.(!i)) in
      incr i;
      let nd = Circuit.node t.c id in
      let fanins = nd.Circuit.fanins in
      let a = Array.length fanins in
      let buf = s.ins.(a) in
      let touched = ref false in
      for j = 0 to a - 1 do
        let fid = fanins.(j) in
        if s.stamp.(fid) = epoch then begin
          touched := true;
          buf.(j) <- s.faulty.(fid)
        end
        else buf.(j) <- s.good.(fid)
      done;
      if !touched then begin
        let v = Gate.eval_word nd.Circuit.kind buf in
        if v <> s.good.(id) then mark id v
      end
    done
  end;
  !detected

(* ------------------------------------------------------------------ *)

(* Below this many member gates a pooled dispatch is slower than the
   serial loop: each worker allocates circuit-sized scratch and pays the
   fork/join barrier, while the simulation itself finishes in
   microseconds. Measured on the generated benchmarks (see
   EXPERIMENTS.md, "fault-engine cutover"); results are bit-identical
   either way, only the wall clock changes. *)
let sequential_cutover = 128

let detects_impl ?pool t ~patterns faults =
  let width = Array.length t.inputs in
  List.iter
    (fun batch ->
      if Array.length batch <> width then
        invalid_arg "Fault_engine.detects: batch arity mismatch")
    patterns;
  let fs = Array.of_list faults in
  let nf = Array.length fs in
  (* populate the shared cone cache before going parallel *)
  Array.iter (fun f -> ignore (cone t (root_of f))) fs;
  let verdict = Array.make (max nf 1) false in
  let worker lo hi =
    if lo < hi then begin
      let s = make_scratch t in
      let undetected = ref (hi - lo) in
      try
        List.iter
          (fun batch ->
            if !undetected = 0 then raise Exit;
            eval_good t s batch;
            for i = lo to hi - 1 do
              if (not verdict.(i)) && sim_fault t s fs.(i) then begin
                verdict.(i) <- true;
                decr undetected
              end
            done)
          patterns
      with Exit -> ()
    end
  in
  (match pool with
   | None -> worker 0 nf
   | Some p ->
     let jobs = Domain_pool.jobs p in
     if jobs = 1 || Array.length t.seg_order < sequential_cutover then
       worker 0 nf
     else
       Domain_pool.run p (fun w ->
           let lo, hi = Domain_pool.chunk ~jobs ~n:nf w in
           worker lo hi));
  List.mapi (fun i f -> (f, verdict.(i))) faults

(* The enabled check sits here, at the call boundary: the per-fault and
   per-pattern loops above carry no instrumentation at all, and the
   disabled path allocates no closure. *)
let detects ?pool t ~patterns faults =
  if not (Obs.enabled ()) then detects_impl ?pool t ~patterns faults
  else
    Obs.span "fault_engine.detects" (fun () ->
        Obs.add Obs.Metric.Faults_simulated (List.length faults);
        Obs.add Obs.Metric.Fault_patterns
          (Gate.bits_per_word * List.length patterns);
        detects_impl ?pool t ~patterns faults)

let segment_detects ?pool sim seg ~patterns faults =
  detects ?pool (create sim seg) ~patterns faults
