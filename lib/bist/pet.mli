(** Pseudo-exhaustive testing of one segment (the property PPET relies
    on, paper Sec. 1 and ref [12]).

    Applying all [2^iota] input combinations to a combinational segment
    detects {e every} detectable single stuck-at fault in it without any
    test generation — the correctness anchor for the whole scheme, which
    the validation experiment checks on real segments. *)

type report = {
  width : int;              (** iota — exhausted input count *)
  n_faults : int;
  n_detected : int;
  n_redundant : int;        (** undetected = provably redundant faults *)
  coverage : float;         (** detected / total *)
  detectable_coverage : float;  (** detected / (total - redundant): 1.0 by
                                    the pseudo-exhaustive argument *)
  patterns_applied : int;   (** 2^width *)
}

val run :
  ?collapse:bool ->
  ?policy:Fault_engine.Batch.policy ->
  Simulator.t ->
  Ppet_netlist.Segment.t ->
  report
(** Exhaustively test the segment (width capped at 20 — raise
    [Invalid_argument] beyond, exactly the reason the paper partitions
    with an input constraint). Redundancy is decided by the exhaustive
    run itself: a fault no exhaustive pattern distinguishes at the
    segment boundary is untestable in that segment.

    Fault simulation runs through {!Fault_engine.Batch.run} under
    [?policy] (default {!Fault_engine.Batch.policy}[ ()]: 8-word
    batches, fault dropping, no pool). Reports are bit-identical under
    every policy — word width, job count and dropping only change the
    wall clock. *)

val run_with_lfsr :
  ?extra_cycles:int ->
  ?policy:Fault_engine.Batch.policy ->
  Simulator.t ->
  Ppet_netlist.Segment.t ->
  report
(** Same, but patterns come from the segment's CBIT LFSR run for
    [2^width - 1 + extra_cycles] cycles plus the all-zero vector —
    demonstrating the hardware pattern source reaches the same
    coverage. *)

val pp : Format.formatter -> report -> unit
