(** The seed fault simulator — kept only as the differential oracle.

    For each fault the whole segment is re-simulated against the good
    machine, one word batch at a time; a fault is detected when any
    observed signal differs in any bit position. Quadratic and slow by
    design: the qcheck differential properties check the production
    {!Fault_engine.Batch} kernels (single-word, multi-word, dropped or
    not, at any job count) bit-for-bit against this loop. Production
    code must go through {!Fault_engine.Batch.run}. *)

val segment_detects :
  Simulator.t ->
  Ppet_netlist.Segment.t ->
  patterns:int array list ->
  Fault.t list ->
  (Fault.t * bool) list
(** [segment_detects sim seg ~patterns faults]: each element of
    [patterns] is a batch assigning one word per segment input signal
    (order of [Segment.input_signals]). Observation points are the
    segment's [observed] nodes. Returns each fault with its detection
    verdict over all batches. *)
