module Circuit = Ppet_netlist.Circuit
module Gate = Ppet_netlist.Gate
module To_graph = Ppet_netlist.To_graph
module Csr = Ppet_digraph.Csr
module Dataflow = Ppet_analysis.Dataflow
module Ternary = Ppet_analysis.Ternary
module Scoap = Ppet_analysis.Scoap

type facts = {
  c : Circuit.t;
  constants : int array;
  init : bool array;
  scoap : Scoap.t;
}

let facts ?pool c =
  let sched = Dataflow.prepare (Csr.of_netgraph (To_graph.partition_view c)) in
  let constants = Ternary.constants ?pool sched c in
  let init = Ternary.initializable ?pool sched c ~constants in
  let scoap = Scoap.compute ?pool sched c ~constants in
  { c; constants; init; scoap }

let info ~rule = Diag.makef ~rule ~severity:Diag.Info

let stuck_net c f =
  let diags = ref [] in
  for v = Circuit.size c - 1 downto 0 do
    let nd = Circuit.node c v in
    let k = nd.Circuit.kind in
    if k <> Gate.Input && f.constants.(v) <> Ternary.unknown then
      diags :=
        info ~rule:"stuck-net" ~locus:nd.Circuit.name
          ~hint:
            (if k = Gate.Dff then
               "constant from the first clock after settling; replace the \
                register with the constant"
             else "replace the gate with the constant it computes")
          "proven constant %d (equal or complementary fan-ins)"
          f.constants.(v)
        :: !diags
  done;
  !diags

let x_state c f =
  let diags = ref [] in
  for v = Circuit.size c - 1 downto 0 do
    let nd = Circuit.node c v in
    if nd.Circuit.kind = Gate.Dff && not f.init.(v) then
      diags :=
        info ~rule:"x-state" ~locus:nd.Circuit.name
          ~hint:"add a reset or break the uninitialized feedback loop"
          "no initializing path from the primary inputs; power-on X may \
           persist"
        :: !diags
  done;
  !diags

let unobservable_net c f =
  let diags = ref [] in
  for v = Circuit.size c - 1 downto 0 do
    if f.scoap.Scoap.co.(v) >= Scoap.inf then
      let nd = Circuit.node c v in
      diags :=
        info ~rule:"unobservable-net" ~locus:nd.Circuit.name
          ~hint:"observe the cone with OUTPUT(...) or remove it"
          "no primary output can observe this signal (unreachable or \
           constant-masked)"
        :: !diags
  done;
  !diags
