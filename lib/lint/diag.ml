type severity = Error | Warning | Info

type t = {
  rule : string;
  severity : severity;
  locus : string option;
  position : string option;
  message : string;
  hint : string option;
}

let make ~rule ~severity ?locus ?position ?hint message =
  { rule; severity; locus; position; message; hint }

let makef ~rule ~severity ?locus ?position ?hint fmt =
  Printf.ksprintf (fun message -> make ~rule ~severity ?locus ?position ?hint message) fmt

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let compare_opt a b =
  match (a, b) with
  | None, None -> 0
  | None, Some _ -> -1
  | Some _, None -> 1
  | Some x, Some y -> String.compare x y

let compare a b =
  let c = Stdlib.compare (severity_rank a.severity) (severity_rank b.severity) in
  if c <> 0 then c
  else
    let c = String.compare a.rule b.rule in
    if c <> 0 then c
    else
      let c = compare_opt a.locus b.locus in
      if c <> 0 then c
      else
        let c = compare_opt a.position b.position in
        if c <> 0 then c else String.compare a.message b.message

let sort ds = List.sort_uniq compare ds

let counts ds =
  List.fold_left
    (fun (e, w, i) d ->
      match d.severity with
      | Error -> (e + 1, w, i)
      | Warning -> (e, w + 1, i)
      | Info -> (e, w, i + 1))
    (0, 0, 0) ds

let is_finding d = match d.severity with Error | Warning -> true | Info -> false

let to_human d =
  let b = Buffer.create 96 in
  (match d.position with
   | Some p ->
     Buffer.add_string b p;
     Buffer.add_string b ": "
   | None -> ());
  Buffer.add_string b (severity_name d.severity);
  Buffer.add_char b '[';
  Buffer.add_string b d.rule;
  Buffer.add_char b ']';
  (match d.locus with
   | Some l ->
     Buffer.add_char b ' ';
     Buffer.add_string b l;
   | None -> ());
  Buffer.add_string b ": ";
  Buffer.add_string b d.message;
  (match d.hint with
   | Some h ->
     Buffer.add_string b " (hint: ";
     Buffer.add_string b h;
     Buffer.add_char b ')'
   | None -> ());
  Buffer.contents b

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_str s = "\"" ^ json_escape s ^ "\""

let json_opt = function None -> "null" | Some s -> json_str s

let to_json d =
  Printf.sprintf
    "{\"rule\":%s,\"severity\":%s,\"locus\":%s,\"position\":%s,\"message\":%s,\"hint\":%s}"
    (json_str d.rule)
    (json_str (severity_name d.severity))
    (json_opt d.locus) (json_opt d.position) (json_str d.message)
    (json_opt d.hint)
