(** Tolerant [.bench] front-end for the linter.

    {!Ppet_netlist.Bench_parser} stops at the first problem because its
    job is to refuse malformed netlists; a linter wants the opposite: read
    as much as possible and report {e every} violation with its position.
    This module lexes the same grammar but recovers at statement
    granularity, records illegal characters and syntax slips as
    diagnostics, and keeps statements the strict parser would reject
    (unknown gate kinds, duplicate definitions, dangling references) so
    the structural rules can see them.

    Valid in-memory circuits (generator output, compiled netlists) enter
    the same representation through {!of_circuit}, so one rule
    implementation serves both paths. *)

type stmt =
  | Input of { name : string; pos : string option }
  | Output of { name : string; pos : string option }
  | Gate of {
      name : string;
      kind : Ppet_netlist.Gate.kind option;  (** [None]: unknown spelling *)
      kind_name : string;                    (** as written *)
      fanins : string list;
      pos : string option;
    }

type t = {
  title : string;
  stmts : stmt list;             (** source order *)
  syntax : Diag.t list;          (** lexical / syntactic diagnostics *)
}

val parse : ?title:string -> ?file:string -> string -> t
(** Never raises: every problem becomes a [syntax] diagnostic (rule
    ["syntax"], capped to keep cascades readable). *)

val of_circuit : Ppet_netlist.Circuit.t -> t
(** Lossless view of a validated circuit; positions are absent. *)

val stmt_name : stmt -> string
val stmt_pos : stmt -> string option
