(** Structural rule family: netlist-shape checks over {!Raw.t}.

    The resolution rules (syntax, multiple-drivers, undriven-net,
    unknown-gate, bad-arity, no-state, duplicate-output) always run. The
    graph rules (comb-cycle, dead-logic, unread-input) need a resolvable
    netlist, so they run only when no resolution rule produced an error —
    the same reason a type checker does not run flow analyses over
    ill-formed terms. *)

val run : Raw.t -> Diag.t list
(** All structural diagnostics, unsorted and unfiltered (the engine
    sorts and applies the rule selection). *)
