(** Analysis rule family: advisory diagnostics derived from the
    {!Ppet_analysis} dataflow fixed points. All Info severity — each one
    flags testability debt (logic the pseudo-exhaustive hardware spends
    area and cycles on without gaining coverage), not an illegal
    netlist, so none of them ever gates the exit status. *)

type facts
(** The shared fixed points (ternary constants, initializability, SCOAP)
    computed once per circuit and read by every rule. *)

val facts :
  ?pool:Ppet_parallel.Domain_pool.t -> Ppet_netlist.Circuit.t -> facts

val stuck_net : Ppet_netlist.Circuit.t -> facts -> Diag.t list
(** ["stuck-net"]: a gate whose output is a proven ternary constant
    (equal or complementary fan-ins through BUF/NOT chains). Every
    stuck-at fault of the matching polarity on such a net is
    unexcitable. *)

val x_state : Ppet_netlist.Circuit.t -> facts -> Diag.t list
(** ["x-state"]: a flip-flop with no initializing path from the primary
    inputs — its power-on X may persist forever in functional
    operation. *)

val unobservable_net : Ppet_netlist.Circuit.t -> facts -> Diag.t list
(** ["unobservable-net"]: SCOAP observability is infinite — no primary
    output can ever see the signal, either structurally or because every
    path is masked by a proven-constant side pin. *)
