module Circuit = Ppet_netlist.Circuit
module Gate = Ppet_netlist.Gate
module Netgraph = Ppet_digraph.Netgraph
module Tarjan = Ppet_digraph.Tarjan
module Rgraph = Ppet_retiming.Rgraph
module Scc_budget = Ppet_retiming.Scc_budget
module Gf2_poly = Ppet_bist.Gf2_poly
module Merced = Ppet_core.Merced
module Cluster = Ppet_core.Cluster
module Assign = Ppet_core.Assign
module Testable = Ppet_core.Testable
module Area_accounting = Ppet_core.Area_accounting
module Params = Ppet_core.Params

let err ~rule = Diag.makef ~rule ~severity:Diag.Error

let is_comb = function
  | Gate.Input | Gate.Dff -> false
  | Gate.Buff | Gate.Not | Gate.And | Gate.Nand | Gate.Or | Gate.Nor
  | Gate.Xor | Gate.Xnor -> true

(* ------------------------------------------------------------------ *)

let input_bound (r : Merced.result) =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let part_of = r.Merced.assignment.Assign.partition_of in
  let lk = r.Merced.params.Params.l_k in
  List.iteri
    (fun i (p : Assign.partition) ->
      let locus = Printf.sprintf "partition %d" i in
      let iota =
        Cluster.input_count_of r.Merced.circuit r.Merced.graph
          ~inside:(fun v -> part_of.(v) = i)
          p.Assign.vertices
      in
      if iota <> p.Assign.input_count then
        add
          (err ~rule:"input-bound" ~locus
             ~hint:"the compiler's iota book-keeping is stale"
             "recomputed iota %d disagrees with the recorded %d" iota
             p.Assign.input_count);
      if iota > lk && (not p.Assign.oversize) && not p.Assign.locked then
        add
          (err ~rule:"input-bound" ~locus
             ~hint:"an unmarked partition must satisfy the input constraint"
             "iota %d exceeds the input constraint l_k = %d" iota lk))
    r.Merced.assignment.Assign.partitions;
  List.rev !diags

(* ------------------------------------------------------------------ *)

let control_inputs (t : Testable.t) =
  [ t.Testable.test_en; t.Testable.fb_en; t.Testable.psa_en; t.Testable.scan_in ]

let cell_placement (r : Merced.result) (t : Testable.t) =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let c = r.Merced.circuit in
  let g = r.Merced.graph in
  let net_name e = (Circuit.node c (Netgraph.net_src g e)).Circuit.name in
  let cut = Hashtbl.create 64 in
  List.iter
    (fun e -> Hashtbl.replace cut e 0)
    r.Merced.assignment.Assign.cut_nets;
  List.iter
    (fun (cl : Testable.cell) ->
      match Hashtbl.find_opt cut cl.Testable.net with
      | None ->
        add
          (err ~rule:"cell-placement" ~locus:cl.Testable.q_name
             ~hint:"every A_CELL must register a cut net"
             "cell sits on net %d (driver %s), which is not a cut net"
             cl.Testable.net (net_name cl.Testable.net))
      | Some n ->
        Hashtbl.replace cut cl.Testable.net (n + 1);
        let driver = Netgraph.net_src g cl.Testable.net in
        if cl.Testable.driver <> driver then
          add
            (err ~rule:"cell-placement" ~locus:cl.Testable.q_name
               "cell's recorded driver %d is not the net's source %d"
               cl.Testable.driver driver);
        let converted = (Circuit.node c driver).Circuit.kind = Gate.Dff in
        if cl.Testable.converted <> converted then
          add
            (err ~rule:"cell-placement" ~locus:cl.Testable.q_name
               "cell marked %s but the cut-net driver is %s"
               (if cl.Testable.converted then "converted" else "fresh")
               (if converted then "a flip-flop" else "combinational")))
    t.Testable.cells;
  Hashtbl.iter
    (fun e n ->
      if n <> 1 then
        add
          (err ~rule:"cell-placement" ~locus:(net_name e)
             ~hint:"each cut net needs exactly one A_CELL"
             "cut net %d has %d cells" e n))
    cut;
  if t.Testable.cells <> [] then
    List.iter
      (fun name ->
        match Circuit.find t.Testable.circuit name with
        | id ->
          if (Circuit.node t.Testable.circuit id).Circuit.kind <> Gate.Input
          then
            add
              (err ~rule:"cell-placement" ~locus:name
                 "control signal is not a primary input")
        | exception Not_found ->
          add
            (err ~rule:"cell-placement" ~locus:name
               "control input is missing from the testable netlist"))
      (control_inputs t);
  List.rev !diags

(* ------------------------------------------------------------------ *)

(* The combinational backward closure of [start] in [c]: expansion stops
   at flip-flops and primary inputs, which are recorded as boundary. *)
let load_cone (c : Circuit.t) start =
  let seen = Hashtbl.create 64 in
  let boundary = Hashtbl.create 16 in
  let rec visit id =
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.add seen id ();
      let nd = Circuit.node c id in
      if is_comb nd.Circuit.kind then Array.iter visit nd.Circuit.fanins
      else Hashtbl.add boundary id ()
    end
  in
  visit start;
  boundary

let scan_chain (r : Merced.result) (t : Testable.t) =
  ignore r;
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let tc = t.Testable.circuit in
  let prev = ref t.Testable.scan_in in
  List.iteri
    (fun i (cl : Testable.cell) ->
      (match Circuit.find tc cl.Testable.q_name with
       | exception Not_found ->
         add
           (err ~rule:"scan-chain" ~locus:cl.Testable.q_name
              "cell register is missing from the testable netlist")
       | q ->
         let nd = Circuit.node tc q in
         if nd.Circuit.kind <> Gate.Dff then
           add
             (err ~rule:"scan-chain" ~locus:cl.Testable.q_name
                "cell register is a %s, not a DFF" (Gate.name nd.Circuit.kind))
         else begin
           let boundary = load_cone tc nd.Circuit.fanins.(0) in
           match Circuit.find tc !prev with
           | exception Not_found ->
             add
               (err ~rule:"scan-chain" ~locus:cl.Testable.q_name
                  "predecessor %s does not exist" !prev)
           | p ->
             if not (Hashtbl.mem boundary p) then
               add
                 (err ~rule:"scan-chain" ~locus:cl.Testable.q_name
                    ~hint:"the chain must thread SCAN_IN through every cell"
                    "chain broken at bit %d: predecessor %s is not in the \
                     register's load cone"
                    i !prev)
         end);
      prev := cl.Testable.q_name)
    t.Testable.cells;
  List.rev !diags

(* ------------------------------------------------------------------ *)

let cbit_width (r : Merced.result) (t : Testable.t) =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let partitions = Array.of_list r.Merced.assignment.Assign.partitions in
  List.iteri
    (fun gi (g : Testable.cbit_group) ->
      let locus = Printf.sprintf "CBIT %d" gi in
      let members =
        List.filter
          (fun (cl : Testable.cell) -> cl.Testable.group_index = gi)
          t.Testable.cells
      in
      let n = List.length members in
      if g.Testable.width <> n || List.length g.Testable.cell_names <> n then
        add
          (err ~rule:"cbit-width" ~locus
             "width %d disagrees with %d member cells (%d recorded names)"
             g.Testable.width n
             (List.length g.Testable.cell_names));
      let bits = List.sort compare (List.map (fun cl -> cl.Testable.bit_index) members) in
      if bits <> List.init n (fun i -> i) then
        add
          (err ~rule:"cbit-width" ~locus
             "bit indexes are not a permutation of 0..%d" (n - 1));
      List.iter
        (fun (cl : Testable.cell) ->
          if
            cl.Testable.bit_index < List.length g.Testable.cell_names
            && List.nth g.Testable.cell_names cl.Testable.bit_index
               <> cl.Testable.q_name
          then
            add
              (err ~rule:"cbit-width" ~locus
                 "bit %d is %s in the group but cell %s claims it"
                 cl.Testable.bit_index
                 (List.nth g.Testable.cell_names cl.Testable.bit_index)
                 cl.Testable.q_name))
        members;
      if n > 0 then begin
        let want_degree = min n 32 in
        if Gf2_poly.degree g.Testable.poly <> want_degree then
          add
            (err ~rule:"cbit-width" ~locus
               ~hint:"the feedback polynomial must span the CBIT"
               "polynomial degree %d does not match min(width, 32) = %d"
               (Gf2_poly.degree g.Testable.poly)
               want_degree);
        if not (Gf2_poly.is_primitive g.Testable.poly) then
          add
            (err ~rule:"cbit-width" ~locus
               ~hint:"non-primitive feedback shortens the pattern cycle"
               "feedback polynomial 0x%x is not primitive" g.Testable.poly)
      end;
      if g.Testable.partition < 0 || g.Testable.partition >= Array.length partitions
      then
        add
          (err ~rule:"cbit-width" ~locus "fed partition %d does not exist"
             g.Testable.partition))
    t.Testable.groups;
  List.rev !diags

(* ------------------------------------------------------------------ *)

let feq a b = Float.abs (a -. b) <= 1e-9 *. (1.0 +. Float.abs a +. Float.abs b)

let area_accounting (r : Merced.result) (t : Testable.t) =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let b = r.Merced.breakdown in
  let fresh =
    Area_accounting.compute r.Merced.circuit r.Merced.budget
      ~cut_nets:r.Merced.assignment.Assign.cut_nets
      ~partition_iotas:(Merced.partition_iotas r)
  in
  let want_int what got want =
    if got <> want then
      add
        (err ~rule:"area-accounting" ~locus:what
           "recorded %d does not re-derive (fresh computation gives %d)" got
           want)
  in
  let want_float what got want =
    if not (feq got want) then
      add
        (err ~rule:"area-accounting" ~locus:what
           "recorded %g does not re-derive (fresh computation gives %g)" got
           want)
  in
  let open Area_accounting in
  want_int "cuts_total" b.cuts_total fresh.cuts_total;
  want_int "cuts_on_scc" b.cuts_on_scc fresh.cuts_on_scc;
  want_int "retimable" b.retimable fresh.retimable;
  want_int "mux_excess" b.mux_excess fresh.mux_excess;
  want_int "dffs_total" b.dffs_total fresh.dffs_total;
  want_int "dffs_on_scc" b.dffs_on_scc fresh.dffs_on_scc;
  want_float "circuit_area" b.circuit_area fresh.circuit_area;
  want_float "feedback_overhead" b.feedback_overhead fresh.feedback_overhead;
  want_float "area_with_retiming" b.area_with_retiming fresh.area_with_retiming;
  want_float "area_without_retiming" b.area_without_retiming
    fresh.area_without_retiming;
  want_int "cuts_total vs cut_nets" b.cuts_total
    (List.length r.Merced.assignment.Assign.cut_nets);
  let measured =
    Circuit.area t.Testable.circuit -. Circuit.area t.Testable.original
  in
  if not (feq t.Testable.added_area measured) then
    add
      (err ~rule:"area-accounting" ~locus:"added_area"
         "recorded added area %g, but the netlists measure %g"
         t.Testable.added_area measured);
  if t.Testable.added_area < -1e-9 then
    add
      (err ~rule:"area-accounting" ~locus:"added_area"
         "adding test hardware cannot shrink the netlist (%g)"
         t.Testable.added_area);
  List.rev !diags

(* ------------------------------------------------------------------ *)

let scc_budget (r : Merced.result) =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let budget = r.Merced.budget in
  let beta = r.Merced.params.Params.beta in
  let chi =
    Scc_budget.cuts_by_scc budget r.Merced.assignment.Assign.cut_nets
  in
  Array.iteri
    (fun c n ->
      if Scc_budget.is_loop budget c then begin
        let f = Scc_budget.registers budget c in
        if n > beta * f then
          add
            (err ~rule:"scc-budget" ~locus:(Printf.sprintf "SCC %d" c)
               ~hint:"Eq. 6: cuts on a loop are bounded by beta * registers"
               "chi = %d cut nets exceed beta * f = %d * %d" n beta f)
      end
      else if n > 0 then
        add
          (err ~rule:"scc-budget" ~locus:(Printf.sprintf "SCC %d" c)
             "%d cut nets counted internal to a loop-free component" n))
    chi;
  List.rev !diags

(* ------------------------------------------------------------------ *)

(* Eq. 1 re-derived with local arithmetic: never Retime.retimed_weight. *)
let retimed_weight (g : Rgraph.t) rho e =
  let edge = g.Rgraph.edges.(e) in
  edge.Rgraph.weight + rho.(edge.Rgraph.head) - rho.(edge.Rgraph.tail)

let vertex_table (g : Rgraph.t) =
  let tbl = Hashtbl.create (2 * Rgraph.n_vertices g) in
  for v = 0 to Rgraph.n_vertices g - 1 do
    Hashtbl.replace tbl (Rgraph.vertex_name g v) v
  done;
  tbl

(* One directed cycle inside a nontrivial SCC: follow, from the first
   member, the first out-edge staying inside the component. *)
let cycle_of_scc (g : Rgraph.t) (scc : Tarjan.result) comp =
  let inside v = scc.Tarjan.component.(v) = comp in
  let next v =
    let out = g.Rgraph.out_edges.(v) in
    let rec pick i =
      if i >= Array.length out then None
      else
        let e = out.(i) in
        if inside g.Rgraph.edges.(e).Rgraph.head then Some e else pick (i + 1)
    in
    pick 0
  in
  let start = scc.Tarjan.members.(comp).(0) in
  let rec walk path_edges seen v =
    match Hashtbl.find_opt seen v with
    | Some depth ->
      (* drop the lead-in, keep the cycle *)
      Some
        (List.filteri
           (fun i _ -> i >= depth)
           (List.rev path_edges))
    | None -> (
      Hashtbl.add seen v (List.length path_edges);
      match next v with
      | None -> None
      | Some e ->
        walk (e :: path_edges) seen g.Rgraph.edges.(e).Rgraph.head)
  in
  walk [] (Hashtbl.create 16) start

let retiming_legality (r : Merced.result) cert =
  match cert with
  | None ->
    [ err ~rule:"retiming-legality"
        "no retiming certificate: even the identity retiming failed" ]
  | Some (cert : Merced.certificate) ->
    let diags = ref [] in
    let add d = diags := d :: !diags in
    let g = cert.Merced.cert_graph in
    let rho = cert.Merced.cert_rho in
    let n = Rgraph.n_vertices g in
    if Array.length rho <> n then
      add
        (err ~rule:"retiming-legality"
           "certificate has %d lags for %d vertices" (Array.length rho) n);
    if Array.length rho = n then begin
      (* pinned lags: the paper's rho maps C to Z; PIs and host stay 0 *)
      for v = 0 to n - 1 do
        match g.Rgraph.kinds.(v) with
        | Rgraph.Vpi _ | Rgraph.Vhost ->
          if rho.(v) <> 0 then
            add
              (err ~rule:"retiming-legality" ~locus:(Rgraph.vertex_name g v)
                 "pinned vertex has lag %d (must be 0)" rho.(v))
        | Rgraph.Vgate _ -> ()
      done;
      (* Eq. 3: every retimed weight non-negative *)
      Array.iteri
        (fun e (edge : Rgraph.edge) ->
          let w' = retimed_weight g rho e in
          if w' < 0 then
            add
              (err ~rule:"retiming-legality"
                 ~locus:
                   (Printf.sprintf "%s -> %s"
                      (Rgraph.vertex_name g edge.Rgraph.tail)
                      (Rgraph.vertex_name g edge.Rgraph.head))
                 "Eq. 3 violated: retimed weight %d on an edge of weight %d"
                 w' edge.Rgraph.weight))
        g.Rgraph.edges;
      (* Eq. 2: register count around a cycle of every loop is invariant *)
      let gn = Netgraph.create n in
      Array.iter
        (fun (edge : Rgraph.edge) ->
          ignore
            (Netgraph.add_net gn ~src:edge.Rgraph.tail
               ~sinks:[ edge.Rgraph.head ]))
        g.Rgraph.edges;
      let scc = Tarjan.run gn in
      List.iter
        (fun comp ->
          match cycle_of_scc g scc comp with
          | None -> ()
          | Some cycle ->
            let before =
              List.fold_left
                (fun acc e -> acc + g.Rgraph.edges.(e).Rgraph.weight)
                0 cycle
            in
            let after =
              List.fold_left (fun acc e -> acc + retimed_weight g rho e) 0 cycle
            in
            if before <> after then
              add
                (err ~rule:"retiming-legality"
                   ~locus:
                     (Rgraph.vertex_name g
                        g.Rgraph.edges.(List.hd cycle).Rgraph.tail)
                   "Eq. 2 violated: a loop's register count moved from %d to %d"
                   before after))
        (Tarjan.nontrivial scc gn);
      (* requirement accounting: retained requirements are satisfied and
         retained + dropped covers every comb-driven cut net *)
      let by_name = vertex_table g in
      let universe = Hashtbl.create 64 in
      List.iter
        (fun e ->
          let driver = Netgraph.net_src r.Merced.graph e in
          let nd = Circuit.node r.Merced.circuit driver in
          if is_comb nd.Circuit.kind then
            match Hashtbl.find_opt by_name nd.Circuit.name with
            | Some v -> Hashtbl.replace universe v ()
            | None ->
              add
                (err ~rule:"retiming-legality" ~locus:nd.Circuit.name
                   "cut-net driver has no vertex in the retiming graph"))
        r.Merced.assignment.Assign.cut_nets;
      List.iter
        (fun v ->
          if not (Hashtbl.mem universe v) then
            add
              (err ~rule:"retiming-legality" ~locus:(Rgraph.vertex_name g v)
                 "requirement retained on a vertex that drives no \
                  comb-driven cut net");
          Array.iter
            (fun e ->
              let w' = retimed_weight g rho e in
              if w' < 1 then
                add
                  (err ~rule:"retiming-legality"
                     ~locus:(Rgraph.vertex_name g v)
                     ~hint:"this cut net was promised a functional register"
                     "requirement unsatisfied: out-edge to %s keeps %d \
                      registers"
                     (Rgraph.vertex_name g
                        g.Rgraph.edges.(e).Rgraph.head)
                     w'))
            g.Rgraph.out_edges.(v))
        cert.Merced.cert_required;
      let n_required = List.length cert.Merced.cert_required in
      let n_universe = Hashtbl.length universe in
      if n_universe - n_required <> cert.Merced.cert_dropped then
        add
          (err ~rule:"retiming-legality"
             "accounting: %d comb-driven cut drivers, %d requirements \
              retained, but %d recorded as dropped"
             n_universe n_required cert.Merced.cert_dropped);
      (* the emitted netlist realises exactly the certified weights *)
      let no_errors_yet = !diags = [] in
      if no_errors_yet then begin
        let emitted = Merced.apply_certificate r cert in
        let g2 =
          Rgraph.of_circuit emitted.Ppet_retiming.To_circuit.circuit
        in
        let by_name2 = vertex_table g2 in
        for v = 0 to n - 1 do
          let name = Rgraph.vertex_name g v in
          match Hashtbl.find_opt by_name2 name with
          | None ->
            add
              (err ~rule:"retiming-legality" ~locus:name
                 "vertex is missing from the emitted retimed netlist")
          | Some v2 ->
            let ins = g.Rgraph.in_edges.(v)
            and ins2 = g2.Rgraph.in_edges.(v2) in
            if Array.length ins <> Array.length ins2 then
              add
                (err ~rule:"retiming-legality" ~locus:name
                   "vertex has %d input pins before retiming, %d after"
                   (Array.length ins) (Array.length ins2))
            else
              Array.iteri
                (fun j e ->
                  let e2 = ins2.(j) in
                  let tail = Rgraph.vertex_name g g.Rgraph.edges.(e).Rgraph.tail
                  and tail2 =
                    Rgraph.vertex_name g2 g2.Rgraph.edges.(e2).Rgraph.tail
                  in
                  if tail <> tail2 then
                    add
                      (err ~rule:"retiming-legality" ~locus:name
                         "pin %d reads %s before retiming but %s after" j tail
                         tail2)
                  else begin
                    let want = retimed_weight g rho e
                    and got = g2.Rgraph.edges.(e2).Rgraph.weight in
                    if want <> got then
                      add
                        (err ~rule:"retiming-legality" ~locus:name
                           ~hint:
                             "the emitted netlist does not realise the \
                              certified register placement"
                           "pin %d (from %s): certificate says %d registers, \
                            netlist has %d"
                           j tail want got)
                  end)
                ins
        done
      end
    end;
    List.rev !diags

(* ------------------------------------------------------------------ *)

let exhaustive_width (r : Merced.result) =
  let limit = Ppet_core.Campaign.default_plan.Ppet_core.Campaign.max_width in
  let diags = ref [] in
  List.iteri
    (fun i seg ->
      let iota = Ppet_netlist.Segment.input_count seg in
      if iota > limit then
        diags :=
          Diag.makef ~rule:"exhaustive-width" ~severity:Diag.Info
            ~locus:(Printf.sprintf "partition %d" i)
            ~hint:
              "campaigns and selftest skip it; tighten l_k or raise \
               --max-width knowingly"
            "iota %d needs 2^%d exhaustive vectors, beyond the default \
             campaign width %d"
            iota iota limit
          :: !diags)
    (Merced.segments r);
  List.rev !diags
