module Bench_lexer = Ppet_netlist.Bench_lexer
module Circuit = Ppet_netlist.Circuit
module Gate = Ppet_netlist.Gate

type stmt =
  | Input of { name : string; pos : string option }
  | Output of { name : string; pos : string option }
  | Gate of {
      name : string;
      kind : Gate.kind option;
      kind_name : string;
      fanins : string list;
      pos : string option;
    }

type t = {
  title : string;
  stmts : stmt list;
  syntax : Diag.t list;
}

let stmt_name = function
  | Input { name; _ } | Output { name; _ } | Gate { name; _ } -> name

let stmt_pos = function
  | Input { pos; _ } | Output { pos; _ } | Gate { pos; _ } -> pos

(* Mirrors Bench_lexer's identifier character class (kept in sync with
   the lexer's documentation). *)
let is_ident_char c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> true
  | '_' | '.' | '[' | ']' | '/' | '$' | '-' -> true
  | _ -> false

let max_syntax = 20

exception Recover of string

let parse ?(title = "bench") ?(file = "<string>") src =
  let syntax = ref [] and n_syntax = ref 0 in
  let add_syntax ?pos message =
    incr n_syntax;
    if !n_syntax <= max_syntax then
      syntax :=
        Diag.make ~rule:"syntax" ~severity:Diag.Error ?position:pos message
        :: !syntax
  in
  (* Pass 1: blank out illegal characters (comment-aware) so lexing can
     always continue; each one is a diagnostic. *)
  let buf = Bytes.of_string src in
  let line = ref 1 and in_comment = ref false in
  for i = 0 to Bytes.length buf - 1 do
    let c = Bytes.get buf i in
    if c = '\n' then begin
      incr line;
      in_comment := false
    end
    else if !in_comment then ()
    else if c = '#' then in_comment := true
    else
      match c with
      | ' ' | '\t' | '\r' | '(' | ')' | ',' | '=' -> ()
      | c when is_ident_char c -> ()
      | c ->
        add_syntax
          ~pos:(Printf.sprintf "%s:%d" file !line)
          (Printf.sprintf "illegal character %C" c);
        Bytes.set buf i ' '
  done;
  (* Pass 2: statement-level recursive descent with recovery. *)
  let lexer = Bench_lexer.of_string ~file (Bytes.to_string buf) in
  let pos () = Some (Bench_lexer.position lexer) in
  let expect tok what =
    if Bench_lexer.next lexer <> tok then raise (Recover ("expected " ^ what))
  in
  let ident what =
    match Bench_lexer.next lexer with
    | Bench_lexer.Ident s -> s
    | _ -> raise (Recover ("expected " ^ what))
  in
  let parse_paren_name () =
    expect Bench_lexer.Lparen "'('";
    let name = ident "a signal name" in
    expect Bench_lexer.Rparen "')'";
    name
  in
  let parse_fanins () =
    expect Bench_lexer.Lparen "'('";
    let rec more acc =
      match Bench_lexer.next lexer with
      | Bench_lexer.Comma -> more (ident "a signal name" :: acc)
      | Bench_lexer.Rparen -> List.rev acc
      | _ -> raise (Recover "expected ',' or ')' in fan-in list")
    in
    more [ ident "a signal name" ]
  in
  let rec resync () =
    match Bench_lexer.peek lexer with
    | Bench_lexer.Eof | Bench_lexer.Ident _ -> ()
    | _ ->
      ignore (Bench_lexer.next lexer);
      resync ()
  in
  let stmts = ref [] in
  let rec loop () =
    match Bench_lexer.peek lexer with
    | Bench_lexer.Eof -> ()
    | _ ->
      let p = pos () in
      (try
         match Bench_lexer.next lexer with
         | Bench_lexer.Ident kw
           when (let u = String.uppercase_ascii kw in
                 (u = "INPUT" || u = "OUTPUT")
                 && Bench_lexer.peek lexer = Bench_lexer.Lparen) ->
           let name = parse_paren_name () in
           if String.uppercase_ascii kw = "INPUT" then
             stmts := Input { name; pos = p } :: !stmts
           else stmts := Output { name; pos = p } :: !stmts
         | Bench_lexer.Ident lhs ->
           expect Bench_lexer.Equal "'='";
           let kind_name = ident "a gate type" in
           let fanins = parse_fanins () in
           stmts :=
             Gate { name = lhs; kind = Gate.of_name kind_name; kind_name;
                    fanins; pos = p }
             :: !stmts
         | _ -> raise (Recover "expected a statement")
       with Recover msg ->
         add_syntax ?pos:p msg;
         resync ());
      loop ()
  in
  loop ();
  if !n_syntax > max_syntax then
    syntax :=
      Diag.makef ~rule:"syntax" ~severity:Diag.Error
        "%d further syntax errors suppressed" (!n_syntax - max_syntax)
      :: !syntax;
  { title; stmts = List.rev !stmts; syntax = List.rev !syntax }

let of_circuit (c : Circuit.t) =
  let name_of id = (Circuit.node c id).Circuit.name in
  let stmts =
    Array.fold_left
      (fun acc (nd : Circuit.node) ->
        match nd.Circuit.kind with
        | Gate.Input -> Input { name = nd.Circuit.name; pos = None } :: acc
        | kind ->
          Gate
            { name = nd.Circuit.name; kind = Some kind; kind_name = Gate.name kind;
              fanins = List.map name_of (Array.to_list nd.Circuit.fanins);
              pos = None }
          :: acc)
      [] c.Circuit.nodes
  in
  let stmts =
    Array.fold_left
      (fun acc po -> Output { name = name_of po; pos = None } :: acc)
      stmts c.Circuit.outputs
  in
  { title = c.Circuit.title; stmts = List.rev stmts; syntax = [] }
