(** Typed lint diagnostics.

    A diagnostic carries the rule that produced it, a severity, an
    optional locus (the signal, net or partition it is about), an
    optional source position (["file:line"], known only for findings on
    parsed text), the human message and an optional fix hint.

    Output order is total and deterministic: errors before warnings
    before infos, then by rule id, locus, position and message — so two
    lint runs over the same input are byte-identical regardless of rule
    evaluation order or worker count. *)

type severity = Error | Warning | Info

type t = {
  rule : string;             (** rule id from {!Registry} *)
  severity : severity;
  locus : string option;     (** signal / net / partition locus *)
  position : string option;  (** ["file:line"] when parsed from text *)
  message : string;
  hint : string option;      (** how to fix, when the rule knows *)
}

val make :
  rule:string -> severity:severity -> ?locus:string -> ?position:string ->
  ?hint:string -> string -> t

val makef :
  rule:string -> severity:severity -> ?locus:string -> ?position:string ->
  ?hint:string -> ('a, unit, string, t) format4 -> 'a

val severity_name : severity -> string
(** ["error"], ["warning"], ["info"]. *)

val compare : t -> t -> int
(** The deterministic output order described above. *)

val sort : t list -> t list

val counts : t list -> int * int * int
(** [(errors, warnings, infos)]. *)

val is_finding : t -> bool
(** Errors and warnings are findings (they gate the exit status); infos
    are advisory and do not. *)

val to_human : t -> string
(** One line: ["position: severity[rule] locus: message (hint: ...)"],
    with the absent parts omitted. *)

val json_escape : string -> string
(** JSON string-literal body for [s] (no surrounding quotes). *)

val to_json : t -> string
(** One JSON object; absent locus/position/hint serialise as [null]. *)
