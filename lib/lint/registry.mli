(** The lint rule registry.

    Every rule has a stable id (the [--rules] vocabulary and the [rule]
    field of every diagnostic), the family that decides which inputs it
    runs on, its severity, and one-line documentation. The registry is
    the single source of truth: the engine evaluates exactly the listed
    rules, the CLI prints them with [--list-rules], and the test suite
    keeps one violation fixture per id. *)

type family =
  | Structural  (** any netlist, parsed text or in-memory circuit *)
  | Analysis    (** dataflow fixed points over a validated circuit *)
  | Dft         (** compiled output: partitioning + testable design *)

type rule = {
  id : string;
  family : family;
  severity : Diag.severity;   (** severity its diagnostics carry *)
  doc : string;
}

val all : rule list
(** In fixed registry order (structural, then analysis, then DFT). *)

val find : string -> rule option

val ids : string list

val family_name : family -> string
(** ["structural"], ["analysis"] or ["dft"]. *)

val validate_selection : string list -> (unit, string) result
(** Check every id exists; the error names the unknown ids. *)
