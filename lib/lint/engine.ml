module Circuit = Ppet_netlist.Circuit
module Bench_parser = Ppet_netlist.Bench_parser
module Benchmarks = Ppet_netlist.Benchmarks
module Domain_pool = Ppet_parallel.Domain_pool
module Merced = Ppet_core.Merced
module Testable = Ppet_core.Testable
module Params = Ppet_core.Params
module Obs = Ppet_obs.Obs

type report = {
  title : string;
  selection : string list;
  compiled : bool;
  diags : Diag.t list;
}

let findings rep =
  let e, w, _ = Diag.counts rep.diags in
  e + w

let normalize_selection rules =
  List.filter (fun (r : Registry.rule) -> List.mem r.Registry.id rules)
    Registry.all
  |> List.map (fun r -> r.Registry.id)

let family_selected family selection =
  List.exists
    (fun (r : Registry.rule) ->
      r.Registry.family = family && List.mem r.Registry.id selection)
    Registry.all

let dft_selected = family_selected Registry.Dft
let analysis_selected = family_selected Registry.Analysis

(* Evaluate independent thunk groups, sharded over the pool's workers;
   results concatenate in group order (and are sorted later anyway). *)
let eval_groups ?pool groups =
  let arr = Array.of_list groups in
  let n = Array.length arr in
  let out = Array.make n [] in
  (match pool with
   | Some p when Domain_pool.jobs p > 1 && n > 1 ->
     let jobs = Domain_pool.jobs p in
     Domain_pool.run p (fun w ->
         let lo, hi = Domain_pool.chunk ~jobs ~n w in
         for i = lo to hi - 1 do
           out.(i) <- arr.(i) ()
         done)
   | _ -> Array.iteri (fun i g -> out.(i) <- g ()) arr);
  List.concat (Array.to_list out)

let in_selection selection (d : Diag.t) = List.mem d.Diag.rule selection

let relabel_testable (d : Diag.t) =
  let locus =
    match d.Diag.locus with
    | Some l -> "testable:" ^ l
    | None -> "testable"
  in
  { d with Diag.locus = Some locus }

(* The DFT family as parallel groups over one compile. The certificate
   solve lives inside its own group: it is the expensive part. *)
let dft_groups ~selection ~params c =
  let r = Merced.run ~params c in
  let t = Testable.insert r in
  let need id = List.mem id selection in
  let basics () =
    (if need "input-bound" then Dft_rules.input_bound r else [])
    @ (if need "scc-budget" then Dft_rules.scc_budget r else [])
  in
  let on_testable () =
    (if need "cell-placement" then Dft_rules.cell_placement r t else [])
    @ (if need "scan-chain" then Dft_rules.scan_chain r t else [])
    @ (if need "cbit-width" then Dft_rules.cbit_width r t else [])
    @ if need "area-accounting" then Dft_rules.area_accounting r t else []
  in
  let certificate () =
    if need "retiming-legality" then
      Dft_rules.retiming_legality r (Merced.retiming_certificate r)
    else []
  in
  let widths () =
    if need "exhaustive-width" then Dft_rules.exhaustive_width r else []
  in
  let testable_structural () =
    List.map relabel_testable (Struct_rules.run (Raw.of_circuit t.Testable.circuit))
    |> List.filter (in_selection selection)
  in
  [ basics; on_testable; certificate; widths; testable_structural ]

(* [structural] are the source diagnostics already computed (and already
   selection-filtered); [c] is the validated circuit when one exists. *)
let finish ?pool ~selection ~params ~title ~structural c =
  let has_error =
    List.exists (fun (d : Diag.t) -> d.Diag.severity = Diag.Error) structural
  in
  let valid = (not has_error) && c <> None in
  let compiled = valid && dft_selected selection in
  let dft =
    match c with
    | Some c when compiled -> eval_groups ?pool (dft_groups ~selection ~params c)
    | _ -> []
  in
  (* the analysis family needs only a validated circuit, not a Merced
     compile: it still runs when every DFT rule is deselected *)
  let analysis =
    match c with
    | Some c when valid && analysis_selected selection ->
      let facts = Analysis_rules.facts ?pool c in
      let need id = List.mem id selection in
      (if need "stuck-net" then Analysis_rules.stuck_net c facts else [])
      @ (if need "x-state" then Analysis_rules.x_state c facts else [])
      @
      if need "unobservable-net" then
        Analysis_rules.unobservable_net c facts
      else []
    | _ -> []
  in
  let rep =
    { title; selection; compiled;
      diags = Diag.sort (structural @ analysis @ dft) }
  in
  Obs.add Obs.Metric.Lint_rules_fired (List.length selection);
  Obs.add Obs.Metric.Lint_findings (findings rep);
  rep

let run_circuit ?pool ?(rules = Registry.ids) ?(params = Params.default) c =
  Obs.span "lint.run_circuit" @@ fun () ->
  let selection = normalize_selection rules in
  let structural =
    List.filter (in_selection selection) (Struct_rules.run (Raw.of_circuit c))
  in
  finish ?pool ~selection ~params ~title:c.Circuit.title ~structural (Some c)

let run_text ?pool ?(rules = Registry.ids) ?(params = Params.default)
    ?(title = "bench") ?(file = "<string>") src =
  Obs.span "lint.run_text" @@ fun () ->
  let selection = normalize_selection rules in
  let raw = Raw.parse ~title ~file src in
  let structural = Struct_rules.run raw in
  let has_error =
    List.exists (fun (d : Diag.t) -> d.Diag.severity = Diag.Error) structural
  in
  (* Safety net: the strict parser must accept whatever lints clean. *)
  let c, extra =
    if has_error then (None, [])
    else
      match Bench_parser.parse_string ~title ~file src with
      | c -> (Some c, [])
      | exception Circuit.Error msg ->
        ( None,
          [ Diag.makef ~rule:"syntax" ~severity:Diag.Error
              ~hint:"the tolerant and strict front-ends disagree"
              "text lints clean but the strict parser rejects it: %s" msg ] )
  in
  let structural =
    List.filter (in_selection selection) (structural @ extra)
  in
  finish ?pool ~selection ~params ~title ~structural c

let run_registry ?pool ?(rules = Registry.ids) ?(params = Params.default)
    names =
  (* generation is cached behind a plain Hashtbl: do it on one domain *)
  let circuits = Array.of_list (List.map Benchmarks.circuit names) in
  let n = Array.length circuits in
  let out = Array.make n None in
  (match pool with
   | Some p when Domain_pool.jobs p > 1 && n > 1 ->
     let jobs = Domain_pool.jobs p in
     Domain_pool.run p (fun w ->
         let lo, hi = Domain_pool.chunk ~jobs ~n w in
         for i = lo to hi - 1 do
           out.(i) <- Some (run_circuit ~rules ~params circuits.(i))
         done)
   | _ ->
     Array.iteri
       (fun i c -> out.(i) <- Some (run_circuit ?pool ~rules ~params c))
       circuits);
  List.filter_map Fun.id (Array.to_list out)

let structural_circuit c = Diag.sort (Struct_rules.run (Raw.of_circuit c))

let to_human ?(verbose = false) rep =
  let shown = List.filter (fun d -> verbose || Diag.is_finding d) rep.diags in
  let e, w, i = Diag.counts rep.diags in
  let verdict =
    if e + w = 0 then "clean"
    else Printf.sprintf "%d finding%s" (e + w) (if e + w = 1 then "" else "s")
  in
  let trailer =
    Printf.sprintf
      "lint %s: %s (%d rules, compile %s; %d errors, %d warnings, %d infos)"
      rep.title verdict
      (List.length rep.selection)
      (if rep.compiled then "ok" else "skipped")
      e w i
  in
  List.map Diag.to_human shown @ [ trailer ]

(* Bumped whenever a field is added, removed or re-typed; consumers pin
   on it instead of sniffing field sets. Version history lives in the
   README's diagnostic-schema section. *)
let schema_version = 2

let to_json rep =
  let e, w, i = Diag.counts rep.diags in
  Printf.sprintf
    "{\"schema_version\":%d,\"circuit\":\"%s\",\"compiled\":%b,\"rules\":\
     [%s],\"diagnostics\":[%s],\"summary\":{\"errors\":%d,\"warnings\":%d,\
     \"infos\":%d,\"findings\":%d}}"
    schema_version
    (Diag.json_escape rep.title)
    rep.compiled
    (String.concat ","
       (List.map (fun id -> "\"" ^ Diag.json_escape id ^ "\"") rep.selection))
    (String.concat "," (List.map Diag.to_json rep.diags))
    e w i (e + w)
