type family = Structural | Analysis | Dft

type rule = {
  id : string;
  family : family;
  severity : Diag.severity;
  doc : string;
}

let s id severity doc = { id; family = Structural; severity; doc }
let a id severity doc = { id; family = Analysis; severity; doc }
let d id severity doc = { id; family = Dft; severity; doc }

let all =
  [
    s "syntax" Diag.Error
      "illegal characters and malformed statements in .bench text";
    s "multiple-drivers" Diag.Error
      "a signal defined more than once (two drivers short the net)";
    s "undriven-net" Diag.Error
      "a referenced signal that no INPUT or gate ever defines";
    s "unknown-gate" Diag.Error "a gate kind outside the ISCAS89 vocabulary";
    s "bad-arity" Diag.Error
      "a gate with a fan-in count its kind does not allow";
    s "comb-cycle" Diag.Error
      "a combinational cycle (no flip-flop breaks the loop)";
    s "no-state" Diag.Error
      "an empty netlist, or one with neither primary inputs nor flip-flops";
    s "duplicate-output" Diag.Warning
      "the same signal declared OUTPUT more than once";
    s "dead-logic" Diag.Info
      "logic with no path to any primary output (dangling or dead cone)";
    s "unread-input" Diag.Info "a primary input no gate reads";
    a "stuck-net" Diag.Info
      "a gate output proven constant by ternary propagation (equal or \
       complementary fan-ins through inverter chains)";
    a "x-state" Diag.Info
      "a flip-flop with no initializing path from the primary inputs \
       (power-on X may persist forever)";
    a "unobservable-net" Diag.Info
      "a signal with infinite SCOAP observability: no primary output can \
       ever see it, structurally or through constant masking";
    d "input-bound" Diag.Error
      "a partition whose recomputed input count iota exceeds l_k (or \
       disagrees with the compiler's book-keeping)";
    d "cell-placement" Diag.Error
      "A_CELL / cut-net mismatch: a cell on a non-cut net or a cut net \
       without its cell";
    d "scan-chain" Diag.Error
      "a scan-chain break: a cell register not fed by its predecessor \
       (or SCAN_IN) in the testable netlist";
    d "cbit-width" Diag.Error
      "a CBIT whose width or feedback polynomial disagrees with its cell \
       group and the primitive-polynomial table";
    d "area-accounting" Diag.Error
      "the Table 12 breakdown or the testable design's added area does \
       not re-derive from the netlist";
    d "scc-budget" Diag.Error
      "an SCC whose cut count chi violates the Eq. 6 budget beta * f, or \
       mispriced mux excess";
    d "retiming-legality" Diag.Error
      "the retiming certificate fails Eqs. 1-3 (legality, pinned lags, \
       emitted-netlist agreement) re-derived without the solver";
    d "exhaustive-width" Diag.Info
      "a partition whose iota exceeds the default campaign max width: \
       legal under l_k but every campaign run will skip it";
  ]

let find id = List.find_opt (fun r -> r.id = id) all

let ids = List.map (fun r -> r.id) all

let family_name = function
  | Structural -> "structural"
  | Analysis -> "analysis"
  | Dft -> "dft"

let validate_selection sel =
  let unknown = List.filter (fun id -> find id = None) sel in
  match unknown with
  | [] -> Ok ()
  | _ ->
    Error
      (Printf.sprintf "unknown lint rule%s %s (try --list-rules)"
         (if List.length unknown > 1 then "s" else "")
         (String.concat ", " (List.map (Printf.sprintf "%S") unknown)))
