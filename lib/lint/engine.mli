(** The lint engine: evaluate {!Registry} rules over a netlist and (when
    the DFT family is selected) over its compiled Merced output.

    Structural rules run on the tolerant {!Raw} view, so a broken .bench
    file yields diagnostics instead of an exception. The DFT family
    compiles the circuit ({!Ppet_core.Merced.run},
    {!Ppet_core.Testable.insert}) and checks the output; it is skipped —
    [compiled = false] in the report — when the input has structural
    errors or when no DFT rule is selected. The testable netlist is also
    re-checked structurally, its loci prefixed with ["testable:"]. The
    analysis family ({!Analysis_rules}) needs only a validated circuit:
    it runs whenever the input is structurally clean, compile or not.

    Rule groups evaluate in parallel on a {!Ppet_parallel.Domain_pool}
    when one is supplied; {!run_registry} additionally parallelises
    across benchmarks. Diagnostics are {!Diag.sort}ed, so output is
    byte-identical for any worker count. *)

type report = {
  title : string;            (** circuit title *)
  selection : string list;   (** rule ids evaluated, registry order *)
  compiled : bool;           (** whether the DFT stage ran *)
  diags : Diag.t list;       (** sorted *)
}

val findings : report -> int
(** Errors + warnings — the count that gates the exit status. *)

val run_circuit :
  ?pool:Ppet_parallel.Domain_pool.t ->
  ?rules:string list ->
  ?params:Ppet_core.Params.t ->
  Ppet_netlist.Circuit.t ->
  report
(** Lint a validated in-memory circuit. [rules] defaults to the whole
    registry; unknown ids are ignored (the CLI validates them first). *)

val run_text :
  ?pool:Ppet_parallel.Domain_pool.t ->
  ?rules:string list ->
  ?params:Ppet_core.Params.t ->
  ?title:string ->
  ?file:string ->
  string ->
  report
(** Lint .bench text. Never raises on malformed input: syntax trouble
    becomes diagnostics. As a safety net, text the tolerant front-end
    accepts cleanly is re-parsed with the strict {!Bench_parser}; a
    strict rejection of lint-clean text is itself reported (it would
    mean the two front-ends disagree). *)

val run_registry :
  ?pool:Ppet_parallel.Domain_pool.t ->
  ?rules:string list ->
  ?params:Ppet_core.Params.t ->
  string list ->
  report list
(** Lint the named {!Ppet_netlist.Benchmarks} circuits, in parallel
    across benchmarks, reports in input order. Circuits are generated
    serially up front (the benchmark cache is not thread-safe). *)

val structural_circuit : Ppet_netlist.Circuit.t -> Diag.t list
(** Just the structural family on an in-memory circuit, serial and
    cheap — the {!Ppet_check.Fuzz} oracle entry point. Sorted. *)

val to_human : ?verbose:bool -> report -> string list
(** Diagnostic lines (infos only with [verbose]) followed by a one-line
    summary trailer. *)

val schema_version : int
(** Version of the JSON diagnostic schema below. Bumped on any field
    addition, removal or re-typing, so consumers pin on it instead of
    sniffing field sets. *)

val to_json : report -> string
(** One JSON object:
    [{"schema_version":...,"circuit":...,"compiled":...,"rules":[...],
      "diagnostics":[...],"summary":{...}}]. *)
