module Gate = Ppet_netlist.Gate
module Netgraph = Ppet_digraph.Netgraph
module Tarjan = Ppet_digraph.Tarjan

let err ~rule = Diag.makef ~rule ~severity:Diag.Error
let warn ~rule = Diag.makef ~rule ~severity:Diag.Warning
let info ~rule = Diag.makef ~rule ~severity:Diag.Info

(* Definitions in source order: (name, stmt). Outputs are references, not
   definitions. *)
let definitions raw =
  List.filter
    (fun s -> match s with Raw.Output _ -> false | _ -> true)
    raw.Raw.stmts

let resolution_rules raw =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  (* multiple-drivers: every definition after the first *)
  let defined = Hashtbl.create 64 in
  List.iter
    (fun s ->
      let name = Raw.stmt_name s in
      if Hashtbl.mem defined name then
        add
          (err ~rule:"multiple-drivers" ~locus:name ?position:(Raw.stmt_pos s)
             ~hint:"rename one of the definitions"
             "signal is defined more than once")
      else Hashtbl.add defined name ())
    (definitions raw);
  (* undriven-net: references that never resolve, one diagnostic per name *)
  let reported = Hashtbl.create 16 in
  let reference ~context pos name =
    if (not (Hashtbl.mem defined name)) && not (Hashtbl.mem reported name)
    then begin
      Hashtbl.add reported name ();
      add
        (err ~rule:"undriven-net" ~locus:name ?position:pos
           ~hint:"define the signal with INPUT(...) or a gate"
           "%s references an undefined signal" context)
    end
  in
  List.iter
    (fun s ->
      match s with
      | Raw.Input _ -> ()
      | Raw.Output { name; pos } -> reference ~context:"OUTPUT" pos name
      | Raw.Gate { name; fanins; pos; _ } ->
        List.iter
          (fun f -> reference ~context:(Printf.sprintf "gate %S" name) pos f)
          fanins)
    raw.Raw.stmts;
  (* unknown-gate / bad-arity *)
  List.iter
    (fun s ->
      match s with
      | Raw.Input _ | Raw.Output _ -> ()
      | Raw.Gate { name; kind; kind_name; fanins; pos } -> (
        match kind with
        | None ->
          add
            (err ~rule:"unknown-gate" ~locus:name ?position:pos
               ~hint:"use AND, NAND, OR, NOR, XOR, XNOR, NOT, BUF or DFF"
               "unknown gate type %S" kind_name)
        | Some k ->
          if not (Gate.arity_ok k (List.length fanins)) then
            add
              (err ~rule:"bad-arity" ~locus:name ?position:pos
                 ~hint:
                   (if k = Gate.Dff || k = Gate.Buff || k = Gate.Not then
                      "this kind takes exactly one input"
                    else "multi-input kinds take two or more inputs")
                 "%s cannot take %d input%s" (Gate.name k)
                 (List.length fanins)
                 (if List.length fanins = 1 then "" else "s"))))
    raw.Raw.stmts;
  (* no-state *)
  (match raw.Raw.stmts with
   | [] -> add (err ~rule:"no-state" "empty netlist")
   | _ ->
     let has_pi =
       List.exists (fun s -> match s with Raw.Input _ -> true | _ -> false)
         raw.Raw.stmts
     and has_dff =
       List.exists
         (fun s ->
           match s with
           | Raw.Gate { kind = Some Gate.Dff; _ } -> true
           | _ -> false)
         raw.Raw.stmts
     in
     if (not has_pi) && not has_dff then
       add
         (err ~rule:"no-state"
            ~hint:"a circuit needs at least one INPUT or DFF"
            "netlist has neither primary inputs nor flip-flops"));
  (* duplicate-output *)
  let outs = Hashtbl.create 16 in
  List.iter
    (fun s ->
      match s with
      | Raw.Output { name; pos } ->
        if Hashtbl.mem outs name then
          add
            (warn ~rule:"duplicate-output" ~locus:name ?position:pos
               ~hint:"drop the repeated declaration"
               "signal is declared OUTPUT more than once")
        else Hashtbl.add outs name ()
      | _ -> ())
    raw.Raw.stmts;
  List.rev !diags

(* Graph rules: run only on a resolvable netlist (see .mli). *)
let graph_rules raw =
  let defs = Array.of_list (definitions raw) in
  let n = Array.length defs in
  if n = 0 then []
  else begin
    let index = Hashtbl.create (2 * n) in
    Array.iteri (fun i s -> Hashtbl.replace index (Raw.stmt_name s) i) defs;
    let resolve name = Hashtbl.find index name in
    let diags = ref [] in
    let add d = diags := d :: !diags in
    (* comb-cycle: SCCs of the combinational dependency graph *)
    let g = Netgraph.create n in
    Array.iteri
      (fun i s ->
        match s with
        | Raw.Gate { kind = Some k; fanins; _ } when k <> Gate.Dff ->
          List.iter
            (fun f -> ignore (Netgraph.add_net g ~src:(resolve f) ~sinks:[ i ]))
            fanins
        | _ -> ())
      defs;
    let scc = Tarjan.run g in
    List.iter
      (fun c ->
        let members =
          List.sort String.compare
            (List.map
               (fun v -> Raw.stmt_name defs.(v))
               (Array.to_list scc.Tarjan.members.(c)))
        in
        let shown =
          match members with
          | a :: b :: c :: d :: _ :: _ -> [ a; b; c; d; "..." ]
          | l -> l
        in
        add
          (err ~rule:"comb-cycle"
             ~locus:(List.hd members)
             ?position:(Raw.stmt_pos defs.(scc.Tarjan.members.(c).(0)))
             ~hint:"break the loop with a DFF"
             "combinational cycle through %d signal%s: %s" (List.length members)
             (if List.length members = 1 then "" else "s")
             (String.concat ", " shown)))
      (Tarjan.nontrivial scc g);
    (* readers / observability *)
    let readers = Array.make n 0 in
    let fanin_ids = Array.make n [] in
    Array.iteri
      (fun i s ->
        match s with
        | Raw.Gate { fanins; _ } ->
          let ids = List.map resolve fanins in
          fanin_ids.(i) <- ids;
          List.iter (fun d -> readers.(d) <- readers.(d) + 1) ids
        | _ -> ())
      defs;
    let is_po = Array.make n false in
    List.iter
      (fun s ->
        match s with
        | Raw.Output { name; _ } -> is_po.(resolve name) <- true
        | _ -> ())
      raw.Raw.stmts;
    (* backward reachability from the primary outputs (through DFFs) *)
    let reachable = Array.make n false in
    let rec visit i =
      if not reachable.(i) then begin
        reachable.(i) <- true;
        List.iter visit fanin_ids.(i)
      end
    in
    Array.iteri (fun i po -> if po then visit i) is_po;
    let unreached_interior = ref [] in
    Array.iteri
      (fun i s ->
        if not reachable.(i) then
          let name = Raw.stmt_name s in
          match s with
          | Raw.Input _ ->
            if readers.(i) = 0 then
              add
                (info ~rule:"unread-input" ~locus:name
                   ?position:(Raw.stmt_pos s)
                   ~hint:"remove the input or wire it up"
                   "primary input is never read")
            else unreached_interior := name :: !unreached_interior
          | Raw.Gate _ ->
            if readers.(i) = 0 then
              add
                (info ~rule:"dead-logic" ~locus:name
                   ?position:(Raw.stmt_pos s)
                   ~hint:"remove the gate or observe it with OUTPUT(...)"
                   "gate drives nothing and is not a primary output")
            else unreached_interior := name :: !unreached_interior
          | Raw.Output _ -> ())
      defs;
    (match List.rev !unreached_interior with
     | [] -> ()
     | names ->
       let shown =
         match names with
         | a :: b :: c :: d :: _ :: _ -> [ a; b; c; d; "..." ]
         | l -> l
       in
       add
         (info ~rule:"dead-logic"
            ~hint:"the cone feeds neither a primary output nor live logic"
            "%d further signal%s only dead logic: %s" (List.length names)
            (if List.length names = 1 then " feeds" else "s feed")
            (String.concat ", " shown)));
    List.rev !diags
  end

let run raw =
  let resolution = resolution_rules raw in
  let fatal =
    raw.Raw.syntax <> []
    || List.exists (fun (d : Diag.t) -> d.Diag.severity = Diag.Error) resolution
  in
  let graph = if fatal then [] else graph_rules raw in
  raw.Raw.syntax @ resolution @ graph
