(** DFT / PPET rule family: checks over compiled Merced output.

    Every rule re-derives its facts from the netlists and the graph —
    none trusts the compiler's own book-keeping, which is exactly what
    makes them worth running: a diagnostic here means the compiler (or a
    hand-edited testable design) broke a paper invariant.

    [retiming_legality] is the certificate checker: it re-verifies the
    Leiserson–Saxe conditions (Eq. 1 weight arithmetic, Eq. 2 cycle
    register counts, Eq. 3 non-negativity, pinned lags) and the
    requirement accounting with its own arithmetic, then re-collapses the
    emitted retimed netlist and compares every pin's register count
    against the certificate's prediction. {!Ppet_core.Merced.solve}'s
    Bellman–Ford is never consulted. *)

val input_bound : Ppet_core.Merced.result -> Diag.t list
(** Recompute every partition's iota with
    {!Ppet_core.Cluster.input_count_of}; flag book-keeping mismatches and
    [iota > l_k] on partitions not marked oversize or locked. *)

val cell_placement :
  Ppet_core.Merced.result -> Ppet_core.Testable.t -> Diag.t list
(** Cells and cut nets must be in bijection; each cell's driver and
    converted flag must match the graph; the four control inputs must
    exist as primary inputs of the testable netlist. *)

val scan_chain :
  Ppet_core.Merced.result -> Ppet_core.Testable.t -> Diag.t list
(** Static connectivity: walking the cells in scan order, every cell
    register's load cone (combinational backward closure of its D input)
    must contain the previous chain register — [SCAN_IN] for the first. *)

val cbit_width :
  Ppet_core.Merced.result -> Ppet_core.Testable.t -> Diag.t list
(** Per CBIT: width equals its cell count, bit indexes are a permutation
    of [0..width-1], the feedback polynomial is primitive of degree
    [min width 32], and the width respects the cluster bound. *)

val area_accounting :
  Ppet_core.Merced.result -> Ppet_core.Testable.t -> Diag.t list
(** Re-run {!Ppet_core.Area_accounting.compute} and compare every field;
    re-measure the testable netlist's added area from the two circuits. *)

val scc_budget : Ppet_core.Merced.result -> Diag.t list
(** Eq. 6: for every loop, the cut count chi must not exceed
    [beta * f]. *)

val retiming_legality :
  Ppet_core.Merced.result -> Ppet_core.Merced.certificate option ->
  Diag.t list
(** The certificate checker described above. [None] (no certificate) is
    itself a diagnostic: every valid circuit has one. *)

val exhaustive_width : Ppet_core.Merced.result -> Diag.t list
(** Advisory: a partition whose recomputed exhaustive width exceeds the
    default campaign [max_width] — legal under [l_k], but every
    campaign and selftest run will skip it, leaving a coverage hole. *)
