(** Integer SCOAP-style testability measures (analysis 3).

    The classic Goldstein measures on the saturating integer lattice:
    CC0/CC1 (combinational 0/1-controllability, forward) and CO
    (observability, backward), with flip-flops costed as one extra time
    frame. Feedback is handled by the fixed-point engine: values start
    at {!inf} and relax monotonically downward, so a loop that no
    primary input reaches keeps {!inf} — which is exactly the
    "provably uncontrollable / unobservable" signal the untestable
    lint and the analyze report use.

    Proven-constant nets (from {!Ternary.constants}) are folded in: a
    constant-[v] net costs 0 to set to [v] and {!inf} to set away, which
    is how constant-masked paths surface as [CO = inf] downstream. *)

val inf : int
(** Saturation bound: values at or above it mean "not achievable". *)

type t = {
  cc0 : int array;  (** cost to set the node's net to 0 *)
  cc1 : int array;  (** cost to set it to 1 *)
  co : int array;   (** cost to observe it at a primary output *)
}

val controllability :
  ?pool:Ppet_parallel.Domain_pool.t ->
  Dataflow.t ->
  Ppet_netlist.Circuit.t ->
  constants:int array ->
  int array * int array
(** [(cc0, cc1)]. *)

val observability :
  ?pool:Ppet_parallel.Domain_pool.t ->
  Dataflow.t ->
  Ppet_netlist.Circuit.t ->
  cc0:int array ->
  cc1:int array ->
  int array

val compute :
  ?pool:Ppet_parallel.Domain_pool.t ->
  Dataflow.t ->
  Ppet_netlist.Circuit.t ->
  constants:int array ->
  t
(** Both passes in sequence. *)
