module Csr = Ppet_digraph.Csr
module Domain_pool = Ppet_parallel.Domain_pool

type direction = Forward | Backward

type t = {
  csr : Csr.t;
  comp : int array;           (* vertex -> component id (Tarjan order) *)
  n_comps : int;
  comp_off : int array;       (* component -> slice of comp_vertex *)
  comp_vertex : int array;    (* vertices grouped by component *)
  fwd_comps : int array;      (* components sorted by forward level *)
  fwd_level_off : int array;
  bwd_comps : int array;
  bwd_level_off : int array;
  max_comp : int;
  mutable scratch : Csr.workspace option;  (* serial-path reuse *)
}

(* Iterative Tarjan over the CSR successor rows. Component ids come out
   in reverse topological order: an edge between distinct components
   goes from the higher id to the lower. *)
let tarjan (csr : Csr.t) =
  let n = csr.Csr.n in
  let index = Array.make n (-1) in
  let low = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = Array.make (max n 1) 0 in
  let sp = ref 0 in
  let comp = Array.make n (-1) in
  let n_comps = ref 0 in
  let next = ref 0 in
  let frame_v = Array.make (max n 1) 0 in
  let frame_i = Array.make (max n 1) 0 in
  for root = 0 to n - 1 do
    if index.(root) < 0 then begin
      let fp = ref 0 in
      frame_v.(0) <- root;
      frame_i.(0) <- csr.Csr.succ_off.(root);
      index.(root) <- !next;
      low.(root) <- !next;
      incr next;
      stack.(!sp) <- root;
      incr sp;
      on_stack.(root) <- true;
      while !fp >= 0 do
        let v = frame_v.(!fp) in
        let i = frame_i.(!fp) in
        if i < csr.Csr.succ_off.(v + 1) then begin
          frame_i.(!fp) <- i + 1;
          let w = csr.Csr.succ.(i) in
          if index.(w) < 0 then begin
            index.(w) <- !next;
            low.(w) <- !next;
            incr next;
            stack.(!sp) <- w;
            incr sp;
            on_stack.(w) <- true;
            incr fp;
            frame_v.(!fp) <- w;
            frame_i.(!fp) <- csr.Csr.succ_off.(w)
          end
          else if on_stack.(w) && index.(w) < low.(v) then low.(v) <- index.(w)
        end
        else begin
          if low.(v) = index.(v) then begin
            let continue = ref true in
            while !continue do
              decr sp;
              let w = stack.(!sp) in
              on_stack.(w) <- false;
              comp.(w) <- !n_comps;
              if w = v then continue := false
            done;
            incr n_comps
          end;
          decr fp;
          if !fp >= 0 then begin
            let p = frame_v.(!fp) in
            if low.(v) < low.(p) then low.(p) <- low.(v)
          end
        end
      done
    end
  done;
  (comp, !n_comps)

(* Group components of equal level into contiguous ranges: a counting
   sort of component ids by level, plus the level offset table. *)
let level_ranges level n_comps n_levels =
  let off = Array.make (n_levels + 1) 0 in
  Array.iter (fun l -> off.(l + 1) <- off.(l + 1) + 1) level;
  for l = 0 to n_levels - 1 do
    off.(l + 1) <- off.(l + 1) + off.(l)
  done;
  let cursor = Array.copy off in
  let comps = Array.make (max n_comps 1) 0 in
  for c = 0 to n_comps - 1 do
    comps.(cursor.(level.(c))) <- c;
    cursor.(level.(c)) <- cursor.(level.(c)) + 1
  done;
  (comps, off)

let prepare (csr : Csr.t) =
  let n = csr.Csr.n in
  let comp, n_comps = tarjan csr in
  (* group vertices by component *)
  let comp_off = Array.make (n_comps + 1) 0 in
  Array.iter (fun c -> comp_off.(c + 1) <- comp_off.(c + 1) + 1) comp;
  let max_comp = ref (if n = 0 then 0 else 1) in
  for c = 0 to n_comps - 1 do
    if comp_off.(c + 1) > !max_comp then max_comp := comp_off.(c + 1);
    comp_off.(c + 1) <- comp_off.(c + 1) + comp_off.(c)
  done;
  let cursor = Array.copy comp_off in
  let comp_vertex = Array.make (max n 1) 0 in
  for v = 0 to n - 1 do
    let c = comp.(v) in
    comp_vertex.(cursor.(c)) <- v;
    cursor.(c) <- cursor.(c) + 1
  done;
  (* forward levels: process components in topological order (descending
     Tarjan ids), level = 1 + max over external predecessor components *)
  let flevel = Array.make (max n_comps 1) 0 in
  let n_flevels = ref (if n_comps = 0 then 0 else 1) in
  for c = n_comps - 1 downto 0 do
    let l = ref 0 in
    for i = comp_off.(c) to comp_off.(c + 1) - 1 do
      let v = comp_vertex.(i) in
      for j = csr.Csr.pred_off.(v) to csr.Csr.pred_off.(v + 1) - 1 do
        let pc = comp.(csr.Csr.pred.(j)) in
        if pc <> c && flevel.(pc) >= !l then l := flevel.(pc) + 1
      done
    done;
    flevel.(c) <- !l;
    if !l + 1 > !n_flevels then n_flevels := !l + 1
  done;
  (* backward levels: same over successor components, ascending ids *)
  let blevel = Array.make (max n_comps 1) 0 in
  let n_blevels = ref (if n_comps = 0 then 0 else 1) in
  for c = 0 to n_comps - 1 do
    let l = ref 0 in
    for i = comp_off.(c) to comp_off.(c + 1) - 1 do
      let v = comp_vertex.(i) in
      for j = csr.Csr.succ_off.(v) to csr.Csr.succ_off.(v + 1) - 1 do
        let sc = comp.(csr.Csr.succ.(j)) in
        if sc <> c && blevel.(sc) >= !l then l := blevel.(sc) + 1
      done
    done;
    blevel.(c) <- !l;
    if !l + 1 > !n_blevels then n_blevels := !l + 1
  done;
  let fwd_comps, fwd_level_off = level_ranges flevel n_comps !n_flevels in
  let bwd_comps, bwd_level_off = level_ranges blevel n_comps !n_blevels in
  {
    csr;
    comp;
    n_comps;
    comp_off;
    comp_vertex;
    fwd_comps;
    fwd_level_off;
    bwd_comps;
    bwd_level_off;
    max_comp = !max_comp;
    scratch = None;
  }

let n_components t = t.n_comps

let n_levels t = function
  | Forward -> Array.length t.fwd_level_off - 1
  | Backward -> Array.length t.bwd_level_off - 1

let max_component t = t.max_comp
let component_of t v = t.comp.(v)

let solve ?pool t ~direction ~init ~transfer ~equal =
  let csr = t.csr in
  let n = csr.Csr.n in
  let value = Array.init n init in
  let get v = value.(v) in
  let comps, level_off =
    match direction with
    | Forward -> (t.fwd_comps, t.fwd_level_off)
    | Backward -> (t.bwd_comps, t.bwd_level_off)
  in
  (* neighbours to requeue when a vertex changes: the vertices whose
     transfer reads it, i.e. successors forward, predecessors backward *)
  let dep_off, dep =
    match direction with
    | Forward -> (csr.Csr.succ_off, csr.Csr.succ)
    | Backward -> (csr.Csr.pred_off, csr.Csr.pred)
  in
  (* One component to quiescence. [inq.(v) = gen] marks queued vertices;
     components own disjoint vertex sets, so workers of one level (and
     successive levels) can share marks without clearing. *)
  let run_comp inq queue gen c =
    let lo = t.comp_off.(c) and hi = t.comp_off.(c + 1) in
    let cap = Array.length queue in
    let head = ref 0 and count = ref 0 in
    for i = lo to hi - 1 do
      let v = t.comp_vertex.(i) in
      queue.((!head + !count) mod cap) <- v;
      incr count;
      inq.(v) <- gen
    done;
    while !count > 0 do
      let v = queue.(!head mod cap) in
      incr head;
      decr count;
      inq.(v) <- gen - 1;
      let nv = transfer get v in
      if not (equal nv value.(v)) then begin
        value.(v) <- nv;
        for j = dep_off.(v) to dep_off.(v + 1) - 1 do
          let w = dep.(j) in
          if t.comp.(w) = c && inq.(w) <> gen then begin
            queue.((!head + !count) mod cap) <- w;
            incr count;
            inq.(w) <- gen
          end
        done
      end
    done
  in
  let n_lev = Array.length level_off - 1 in
  (match pool with
   | Some p when Domain_pool.jobs p > 1 && t.n_comps > 1 ->
     let jobs = Domain_pool.jobs p in
     (* marks shared (vertex sets are disjoint); queues per worker *)
     let inq = Array.make n 0 in
     let queues =
       Array.init jobs (fun _ -> Array.make (max 1 t.max_comp) 0)
     in
     for l = 0 to n_lev - 1 do
       let lo = level_off.(l) and hi = level_off.(l + 1) in
       let width = hi - lo in
       if width = 1 then run_comp inq queues.(0) 1 comps.(lo)
       else
         Domain_pool.run p (fun w ->
             let clo, chi = Domain_pool.chunk ~jobs ~n:width w in
             for i = clo to chi - 1 do
               run_comp inq queues.(w) 1 comps.(lo + i)
             done)
     done
   | _ ->
     let ws =
       match t.scratch with
       | Some ws -> ws
       | None ->
         let ws = Csr.workspace csr in
         t.scratch <- Some ws;
         ws
     in
     let gen = Csr.fresh_stamp ws in
     for l = 0 to n_lev - 1 do
       for i = level_off.(l) to level_off.(l + 1) - 1 do
         run_comp ws.Csr.vmark ws.Csr.queue gen comps.(i)
       done
     done);
  value
