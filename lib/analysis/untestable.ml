module Circuit = Ppet_netlist.Circuit
module Segment = Ppet_netlist.Segment
module Gate = Ppet_netlist.Gate
module Fault = Ppet_bist.Fault

type reason = Unexcitable | Unobservable | Blocked

let reason_name = function
  | Unexcitable -> "unexcitable"
  | Unobservable -> "unobservable"
  | Blocked -> "blocked"

type classification = {
  testable : Fault.t list;
  untestable : (Fault.t * reason) list;
}

(* Scratch is stamped ([mark]/[obs] cells count as set iff they equal
   [stamp]) so a classify call clears nothing; only the segment-local
   root entries are written and reset, because the identity baseline is
   what boundary signals must read as. *)
type ctx = {
  c : Circuit.t;
  level : int array;
  lroot : int array;  (* identity except current segment's members *)
  lpar : int array;
  value : int array;  (* valid where mark = stamp *)
  mark : int array;   (* member-and-evaluated stamp *)
  obs : int array;    (* reaches-an-observed-signal stamp *)
  mutable stamp : int;
}

let ctx c =
  let n = Circuit.size c in
  {
    c;
    level = Circuit.levels c;
    lroot = Array.init n (fun v -> v);
    lpar = Array.make n 0;
    value = Array.make n 2;
    mark = Array.make n 0;
    obs = Array.make n 0;
    stamp = 0;
  }

let classify ctx seg faults =
  let c = ctx.c in
  ctx.stamp <- ctx.stamp + 1;
  let st = ctx.stamp in
  let members = seg.Segment.members in
  Array.iter (fun m -> ctx.mark.(m) <- st) members;
  let val_of v = if ctx.mark.(v) = st then ctx.value.(v) else Ternary.unknown in
  (* Segment-local ternary evaluation in combinational-level order.
     Every segment input keeps its own root: the test hardware drives
     inputs independently and exhaustively, so equalities that hold only
     outside the segment must not be used. Chains internal to the
     segment may be followed. *)
  let order = Array.copy members in
  Array.sort
    (fun a b ->
      let la = ctx.level.(a) and lb = ctx.level.(b) in
      if la <> lb then compare la lb else compare a b)
    order;
  Array.iter
    (fun u ->
      let nd = Circuit.node c u in
      let fi = nd.Circuit.fanins in
      (match nd.Circuit.kind with
       | Gate.Buff | Gate.Not ->
         let f = fi.(0) in
         ctx.lroot.(u) <- ctx.lroot.(f);
         ctx.lpar.(u) <-
           ctx.lpar.(f)
           lxor (match nd.Circuit.kind with Gate.Not -> 1 | _ -> 0)
       | _ -> ());
      ctx.value.(u) <-
        Ternary.eval_node ~kind:nd.Circuit.kind ~arity:(Array.length fi)
          ~value:(fun i -> val_of fi.(i))
          ~root:(fun i -> ctx.lroot.(fi.(i)))
          ~parity:(fun i -> ctx.lpar.(fi.(i))))
    order;
  (* Backward reachability from the observed signals through member
     gates: a fault effect at a signal outside this set can never reach
     an observation point (the cone Fault_sim propagates through is
     exactly the member gates). *)
  let stack = Array.make (max 1 (Array.length members)) 0 in
  let sp = ref 0 in
  Array.iter
    (fun o ->
      if ctx.obs.(o) <> st then begin
        ctx.obs.(o) <- st;
        stack.(!sp) <- o;
        incr sp
      end)
    seg.Segment.observed;
  while !sp > 0 do
    decr sp;
    let g = stack.(!sp) in
    Array.iter
      (fun f ->
        if ctx.obs.(f) <> st then begin
          ctx.obs.(f) <- st;
          if ctx.mark.(f) = st then begin
            stack.(!sp) <- f;
            incr sp
          end
        end)
      (Circuit.node c g).Circuit.fanins
  done;
  (* Pin blocking: the reading gate's ternary output is the same
     constant with the pin forced either way, so neither polarity can
     ever move the gate. The other pins carry fault-free values (a
     combinational path from the gate back into its own fan-in would be
     a cycle), so their ternary facts apply to the faulty machine too. *)
  let pin_blocked g p =
    let nd = Circuit.node c g in
    let fi = nd.Circuit.fanins in
    let out forced =
      Ternary.eval_node ~kind:nd.Circuit.kind ~arity:(Array.length fi)
        ~value:(fun i -> if i = p then forced else val_of fi.(i))
        ~root:(fun i -> if i = p then -1 else ctx.lroot.(fi.(i)))
        ~parity:(fun i -> if i = p then 0 else ctx.lpar.(fi.(i)))
    in
    let o0 = out Ternary.zero in
    o0 <> Ternary.unknown && o0 = out Ternary.one
  in
  let stuck f = if f.Fault.stuck_at then Ternary.one else Ternary.zero in
  let classify_one (f : Fault.t) =
    match f.Fault.site with
    | Fault.Output v ->
      if val_of v = stuck f then Some Unexcitable
      else if ctx.obs.(v) <> st then Some Unobservable
      else None
    | Fault.Input_pin (g, p) ->
      let d = (Circuit.node c g).Circuit.fanins.(p) in
      if val_of d = stuck f then Some Unexcitable
      else if ctx.obs.(g) <> st then Some Unobservable
      else if pin_blocked g p then Some Blocked
      else None
  in
  let testable = ref [] and untestable = ref [] in
  List.iter
    (fun f ->
      match classify_one f with
      | None -> testable := f :: !testable
      | Some r -> untestable := (f, r) :: !untestable)
    faults;
  (* restore the identity-root baseline for the next segment *)
  Array.iter
    (fun m ->
      ctx.lroot.(m) <- m;
      ctx.lpar.(m) <- 0)
    members;
  { testable = List.rev !testable; untestable = List.rev !untestable }

let count cls = (List.length cls.testable, List.length cls.untestable)
