(** Static untestable-fault classification for pseudo-exhaustive
    segments (analysis 4).

    A stuck-at fault on a segment is {e statically untestable} when no
    exhaustive pattern can both excite it and propagate the effect to an
    observed signal. The classifier proves one of three sound
    conditions, each valid against exhaustive simulation of the segment
    (the {!Ppet_bist.Fault_sim} semantics: segment input signals driven
    independently through all [2^iota] combinations, members evaluated
    combinationally, detection = any observed signal differs):

    - {b Unexcitable}: the fault site's fault-free value is the stuck
      value on every pattern, so the faulty machine is the good machine.
      Site values come from a segment-local ternary evaluation in which
      every segment input is an independent X — local because the test
      hardware drives inputs exhaustively, including combinations the
      surrounding circuit could never produce, so only equalities
      internal to the segment may be used.
    - {b Unobservable}: no path from the fault site through member gates
      reaches an observed signal; a fault effect cannot leave its
      structural fanout cone.
    - {b Blocked}: for an input-pin fault, the reading gate's ternary
      output is the same constant with the pin forced to 0 and forced
      to 1 (the other pins at their segment-local ternary values), so
      neither polarity of the pin can ever move the gate.

    Anything not proven stays testable — the classifier never
    over-prunes, which the qcheck oracle (untestable implies undetected
    by exhaustive {!Ppet_bist.Fault_sim}) pins at several word widths. *)

type reason = Unexcitable | Unobservable | Blocked

val reason_name : reason -> string

type classification = {
  testable : Ppet_bist.Fault.t list;  (** input order preserved *)
  untestable : (Ppet_bist.Fault.t * reason) list;  (** input order *)
}

type ctx
(** Per-circuit precomputation (BUF/NOT roots, combinational levels) and
    scratch reused across segments. One [ctx] per worker: {!classify}
    mutates the scratch. *)

val ctx : Ppet_netlist.Circuit.t -> ctx

val classify :
  ctx ->
  Ppet_netlist.Segment.t ->
  Ppet_bist.Fault.t list ->
  classification
(** Classify a collapsed fault list of the segment. Faults must be of
    this segment ({!Ppet_bist.Fault.of_segment}, possibly collapsed:
    boundary output faults that collapsing rewrites onto non-member
    drivers are handled). *)

val count : classification -> int * int
(** [(n_testable, n_untestable)]. *)
