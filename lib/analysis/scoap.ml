module Circuit = Ppet_netlist.Circuit
module Gate = Ppet_netlist.Gate

let inf = max_int / 4
let sat_add a b = if a >= inf || b >= inf then inf else min inf (a + b)

(* Fold the generalized XOR controllability pairwise:
   combining (a0, a1) with the next pin (b0, b1) gives
   0 via equal parities, 1 via opposite ones. *)
let xor_combine (a0, a1) (b0, b1) =
  ( min (sat_add a0 b0) (sat_add a1 b1),
    min (sat_add a0 b1) (sat_add a1 b0) )

let controllability ?pool sched c ~constants =
  let pairs =
    Dataflow.solve ?pool sched ~direction:Dataflow.Forward
      ~init:(fun _ -> (inf, inf))
      ~transfer:(fun get v ->
        match Ternary.value_of_int constants.(v) with
        | Ternary.Zero -> (0, inf)
        | Ternary.One -> (inf, 0)
        | Ternary.Unknown -> (
          let nd = Circuit.node c v in
          let fi = nd.Circuit.fanins in
          match nd.Circuit.kind with
          | Gate.Input -> (1, 1)
          | Gate.Dff | Gate.Buff ->
            let a0, a1 = get fi.(0) in
            (sat_add a0 1, sat_add a1 1)
          | Gate.Not ->
            let a0, a1 = get fi.(0) in
            (sat_add a1 1, sat_add a0 1)
          | Gate.And | Gate.Nand ->
            let all1 = ref 0 and min0 = ref inf in
            Array.iter
              (fun f ->
                let f0, f1 = get f in
                all1 := sat_add !all1 f1;
                if f0 < !min0 then min0 := f0)
              fi;
            let c0 = sat_add !min0 1 and c1 = sat_add !all1 1 in
            if nd.Circuit.kind = Gate.And then (c0, c1) else (c1, c0)
          | Gate.Or | Gate.Nor ->
            let all0 = ref 0 and min1 = ref inf in
            Array.iter
              (fun f ->
                let f0, f1 = get f in
                all0 := sat_add !all0 f0;
                if f1 < !min1 then min1 := f1)
              fi;
            let c0 = sat_add !all0 1 and c1 = sat_add !min1 1 in
            if nd.Circuit.kind = Gate.Or then (c0, c1) else (c1, c0)
          | Gate.Xor | Gate.Xnor ->
            let acc = ref (get fi.(0)) in
            for i = 1 to Array.length fi - 1 do
              acc := xor_combine !acc (get fi.(i))
            done;
            let a0, a1 = !acc in
            let c0 = sat_add a0 1 and c1 = sat_add a1 1 in
            if nd.Circuit.kind = Gate.Xor then (c0, c1) else (c1, c0)))
      ~equal:(fun (a0, a1) (b0, b1) -> a0 = b0 && a1 = b1)
  in
  (Array.map fst pairs, Array.map snd pairs)

(* The side cost a fault effect pays to pass pin [p] of reader [g]: all
   other pins must hold their non-controlling value. *)
let observability ?pool sched c ~cc0 ~cc1 =
  let fanouts = c.Circuit.fanouts in
  Dataflow.solve ?pool sched ~direction:Dataflow.Backward
    ~init:(fun _ -> inf)
    ~transfer:(fun get v ->
      let best = ref (if Circuit.is_po c v then 0 else inf) in
      Array.iter
        (fun g ->
          let cog = get g in
          if cog < inf then begin
            let nd = Circuit.node c g in
            let fi = nd.Circuit.fanins in
            match nd.Circuit.kind with
            | Gate.Input -> ()
            | Gate.Dff | Gate.Buff | Gate.Not ->
              let cost = sat_add cog 1 in
              if cost < !best then best := cost
            | Gate.And | Gate.Nand | Gate.Or | Gate.Nor | Gate.Xor
            | Gate.Xnor ->
              let side f =
                match nd.Circuit.kind with
                | Gate.And | Gate.Nand -> cc1.(f)
                | Gate.Or | Gate.Nor -> cc0.(f)
                | _ -> min cc0.(f) cc1.(f)
              in
              for p = 0 to Array.length fi - 1 do
                if fi.(p) = v then begin
                  let cost = ref (sat_add cog 1) in
                  for q = 0 to Array.length fi - 1 do
                    if q <> p then cost := sat_add !cost (side fi.(q))
                  done;
                  if !cost < !best then best := !cost
                end
              done
          end)
        fanouts.(v);
      !best)
    ~equal:Int.equal

type t = {
  cc0 : int array;
  cc1 : int array;
  co : int array;
}

let compute ?pool sched c ~constants =
  let cc0, cc1 = controllability ?pool sched c ~constants in
  let co = observability ?pool sched c ~cc0 ~cc1 in
  { cc0; cc1; co }
