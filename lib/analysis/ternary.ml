module Circuit = Ppet_netlist.Circuit
module Gate = Ppet_netlist.Gate

type value = Zero | One | Unknown

let zero = 0
let one = 1
let unknown = 2

let value_of_int = function
  | 0 -> Zero
  | 1 -> One
  | _ -> Unknown

type roots = { root : int array; parity : int array }

(* Chase BUF/NOT chains iteratively (no recursion: synthetic profiles
   can carry long inverter ladders). [-2] marks a node currently on the
   walk, so a pure inverter loop — illegal in a validated circuit, but
   cheap to survive — anchors at its first node instead of spinning. *)
let roots c =
  let n = Circuit.size c in
  let root = Array.make n (-1) in
  let parity = Array.make n 0 in
  let chain = ref [] in
  for v0 = 0 to n - 1 do
    if root.(v0) < 0 then begin
      chain := [];
      let v = ref v0 in
      let stop = ref false in
      while not !stop do
        if root.(!v) >= 0 then stop := true
        else begin
          let nd = Circuit.node c !v in
          match nd.Circuit.kind with
          | Gate.Buff | Gate.Not ->
            if root.(!v) = -2 then begin
              root.(!v) <- !v;
              parity.(!v) <- 0;
              stop := true
            end
            else begin
              root.(!v) <- -2;
              chain := !v :: !chain;
              v := nd.Circuit.fanins.(0)
            end
          | _ ->
            root.(!v) <- !v;
            parity.(!v) <- 0;
            stop := true
        end
      done;
      (* head of [chain] is nearest the anchor: unwind in list order *)
      List.iter
        (fun u ->
          if root.(u) = -2 then begin
            let nd = Circuit.node c u in
            let f = nd.Circuit.fanins.(0) in
            root.(u) <- root.(f);
            parity.(u) <-
              parity.(f)
              lxor (match nd.Circuit.kind with Gate.Not -> 1 | _ -> 0)
          end)
        !chain
    end
  done;
  { root; parity }

let negate = function 0 -> 1 | 1 -> 0 | x -> x

(* One ternary gate transfer over abstract pins: [value i] is the
   ternary value of pin [i], [root i]/[parity i] its canonical signal (a
   negative root marks an independent pin that never matches another —
   how the pin-blocking check injects a forced constant). *)
let eval_node ~kind ~arity ~value ~root ~parity =
  let same_root i j = root i >= 0 && root i = root j in
  match kind with
  | Gate.Input -> unknown
  | Gate.Dff | Gate.Buff -> value 0
  | Gate.Not -> negate (value 0)
  | Gate.And | Gate.Nand | Gate.Or | Gate.Nor ->
    let controlling =
      match kind with Gate.And | Gate.Nand -> 0 | _ -> 1
    in
    let neg = match kind with Gate.Nand | Gate.Nor -> true | _ -> false in
    let hit = ref false in
    let all_noncontrolling = ref true in
    for i = 0 to arity - 1 do
      let x = value i in
      if x = controlling then hit := true
      else if x = unknown then all_noncontrolling := false
    done;
    let out =
      if !hit then controlling
      else if !all_noncontrolling then 1 - controlling
      else begin
        (* a signal and its own inverse among the unknown pins force the
           controlling value no matter what the signal does *)
        let pair = ref false in
        for i = 0 to arity - 1 do
          if (not !pair) && value i = unknown then
            for j = i + 1 to arity - 1 do
              if
                (not !pair)
                && value j = unknown
                && same_root i j
                && parity i <> parity j
              then pair := true
            done
        done;
        if !pair then controlling else unknown
      end
    in
    if neg then negate out else out
  | Gate.Xor | Gate.Xnor ->
    let acc = ref (match kind with Gate.Xnor -> 1 | _ -> 0) in
    for i = 0 to arity - 1 do
      let x = value i in
      if x <> unknown then acc := !acc lxor x
    done;
    (* unknown pins cancel pairwise when they share a root: x XOR x' is
       the XOR of the chain parities, a constant *)
    let used = Array.make (max arity 1) false in
    let open_term = ref false in
    for i = 0 to arity - 1 do
      if (not used.(i)) && value i = unknown then begin
        let partner = ref (-1) in
        for j = i + 1 to arity - 1 do
          if
            !partner < 0
            && (not used.(j))
            && value j = unknown
            && same_root i j
          then partner := j
        done;
        match !partner with
        | -1 -> open_term := true
        | j ->
          used.(i) <- true;
          used.(j) <- true;
          acc := !acc lxor (parity i lxor parity j)
      end
    done;
    if !open_term then unknown else !acc

let eval c (r : roots) get v =
  let nd = Circuit.node c v in
  let fi = nd.Circuit.fanins in
  eval_node ~kind:nd.Circuit.kind ~arity:(Array.length fi)
    ~value:(fun i -> get fi.(i))
    ~root:(fun i -> r.root.(fi.(i)))
    ~parity:(fun i -> r.parity.(fi.(i)))

let constants ?pool sched c =
  let r = roots c in
  Dataflow.solve ?pool sched ~direction:Dataflow.Forward
    ~init:(fun _ -> unknown)
    ~transfer:(fun get v -> eval c r get v)
    ~equal:Int.equal

let initializable ?pool sched c ~constants =
  Dataflow.solve ?pool sched ~direction:Dataflow.Forward
    ~init:(fun _ -> false)
    ~transfer:(fun get v ->
      if constants.(v) <> unknown then true
      else
        let nd = Circuit.node c v in
        match nd.Circuit.kind with
        | Gate.Input -> true
        | Gate.Dff -> get nd.Circuit.fanins.(0)
        | _ -> Array.for_all get nd.Circuit.fanins)
    ~equal:Bool.equal
