(** Ternary constant propagation and X-propagation (analyses 1 and 2).

    {b Constants.} Values live in the three-point domain
    [{Zero, One, Unknown}] ordered by information
    ([Unknown] below both constants). The .bench vocabulary has no tied
    cells, so constants are structural: an XOR that reads the same
    signal through both pins, an AND that reads a signal and its own
    inverse, and everything such a net dominates downstream. The
    transfer canonicalises every fan-in to a (root, parity) pair by
    chasing BUF/NOT chains, so a gate recognises equal and complementary
    fan-ins even through inverter trees.

    Flip-flops transfer their data input: a computed constant on a
    register means {e steady state} — from the first clock after the
    driving cone settles; the power-on value of the register itself is
    still arbitrary. Consumers that need per-cycle truth (the untestable
    classifier) work on combinational segments only, where the caveat is
    vacuous.

    {b X-propagation.} [initializable] computes the set of nodes whose
    value is eventually a function of the primary inputs alone: primary
    inputs are, a gate is when all its fan-ins are, a register is when
    its data input is, and a proven-constant net is. Everything outside
    the set may in principle never leave X after power-on (no
    initializing path) — an over-approximation, reported only as
    advisory lint. *)

type value = Zero | One | Unknown

val zero : int
val one : int
val unknown : int
(** The packed encoding used in result arrays: [zero = 0], [one = 1],
    [unknown = 2]. *)

val value_of_int : int -> value

type roots = { root : int array; parity : int array }
(** Per-node canonical signal: [root] is the node reached by chasing
    BUF/NOT fan-ins until a non-inverter, [parity] is 1 when the chase
    crossed an odd number of NOTs. *)

val roots : Ppet_netlist.Circuit.t -> roots

val eval_node :
  kind:Ppet_netlist.Gate.kind ->
  arity:int ->
  value:(int -> int) ->
  root:(int -> int) ->
  parity:(int -> int) ->
  int
(** One ternary gate transfer over abstract pins: [value i] the packed
    ternary value of pin [i], [root i]/[parity i] its canonical signal.
    A negative root marks an independent pin that never pairs with
    another — how the untestable classifier injects a forced pin. *)

val eval :
  Ppet_netlist.Circuit.t ->
  roots ->
  (int -> int) ->
  int ->
  int
(** [eval c r get v]: one monotone ternary transfer — [v]'s value from
    the fan-in values [get] returns, with equal/complementary fan-in
    refinement. Primary inputs are [unknown]; flip-flops pass their
    data input through. *)

val constants :
  ?pool:Ppet_parallel.Domain_pool.t ->
  Dataflow.t ->
  Ppet_netlist.Circuit.t ->
  int array
(** Whole-circuit least fixpoint of {!eval} (the schedule must come from
    the circuit's partition view, whose vertex ids are node ids). *)

val initializable :
  ?pool:Ppet_parallel.Domain_pool.t ->
  Dataflow.t ->
  Ppet_netlist.Circuit.t ->
  constants:int array ->
  bool array
(** [true] = provably driven by the primary inputs eventually; [false]
    = may stay X forever. *)
