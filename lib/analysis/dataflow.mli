(** Generic forward/backward fixed-point dataflow over a {!Csr} graph.

    The reusable abstract-interpretation layer of the repo: an analysis
    supplies a lattice (as a value type plus [equal]), an initial
    assignment, and a monotone transfer function; the engine computes
    the fixpoint with a worklist, scheduled over the SCC condensation of
    the graph.

    {b Schedule.} {!prepare} runs one (iterative, stack-safe) Tarjan
    pass and levels the condensation DAG in both directions: the forward
    level of a component is one past the longest chain of predecessor
    components, the backward level the same over successors. Components
    on the same level share no edge in either direction, so a level is
    an independent batch: {!solve} walks levels in order and, given a
    pool, shards the components of a level across its workers with
    {!Ppet_parallel.Domain_pool.chunk}. Each component runs a private
    worklist (ring queue plus stamp-style in-queue marks, the
    {!Ppet_digraph.Csr.workspace} discipline) seeded with the
    component's vertices; a change requeues only same-component
    neighbours, because cross-component edges point at later levels
    whose initial sweep has not happened yet.

    {b Determinism.} A monotone transfer on a finite-height lattice has
    a unique least fixpoint, and the engine iterates each component to
    quiescence — so the result is independent of worklist order, worker
    count, and level batching. Parallel and serial runs return the same
    array, which the analysis test suite pins. *)

type t
(** A prepared schedule: the condensation, both level orders, and a
    reusable serial scratch workspace. Prepare once per graph and share
    across analyses; one [t] must not run two {!solve}s concurrently
    (give each domain its own). *)

type direction = Forward | Backward

val prepare : Ppet_digraph.Csr.t -> t

val n_components : t -> int

val n_levels : t -> direction -> int
(** Depth of the condensation DAG seen from the given side — the number
    of sequential batches a {!solve} in that direction walks. *)

val max_component : t -> int
(** Size of the largest strongly-connected component (1 on an acyclic
    graph): the serial grain no schedule can split. *)

val component_of : t -> int -> int
(** Component id of a vertex (Tarjan numbering: an edge between distinct
    components goes from the higher id to the lower). *)

val solve :
  ?pool:Ppet_parallel.Domain_pool.t ->
  t ->
  direction:direction ->
  init:(int -> 'a) ->
  transfer:((int -> 'a) -> int -> 'a) ->
  equal:('a -> 'a -> bool) ->
  'a array
(** [solve t ~direction ~init ~transfer ~equal] returns the fixpoint
    assignment. [transfer get v] must recompute [v]'s value from the
    values [get] exposes — reading successors in a [Backward] pass,
    predecessors in a [Forward] pass (reads against the direction see
    finalized earlier-level values). [transfer] must be monotone w.r.t.
    a finite-height order on ['a] with [init] below the fixpoint, or the
    worklist may not terminate. *)
