module Metric = struct
  type t =
    | Flow_iterations
    | Flow_tree_nets
    | Bf_relaxations
    | Retime_required_kept
    | Retime_required_dropped
    | Clusters_formed
    | Partitions_formed
    | Faults_simulated
    | Fault_patterns
    | Fault_word_evals
    | Campaign_circuits
    | Lint_rules_fired
    | Lint_findings
    | Pool_dispatches
    | Pool_busy_ns

  let name = function
    | Flow_iterations -> "flow.iterations"
    | Flow_tree_nets -> "flow.tree_nets"
    | Bf_relaxations -> "retime.bf_relaxations"
    | Retime_required_kept -> "retime.required_kept"
    | Retime_required_dropped -> "retime.required_dropped"
    | Clusters_formed -> "cluster.clusters"
    | Partitions_formed -> "assign.partitions"
    | Faults_simulated -> "fault.faults"
    | Fault_patterns -> "fault.patterns"
    | Fault_word_evals -> "fault.word_evals"
    | Campaign_circuits -> "campaign.circuits"
    | Lint_rules_fired -> "lint.rules_fired"
    | Lint_findings -> "lint.findings"
    | Pool_dispatches -> "pool.dispatches"
    | Pool_busy_ns -> "pool.busy_ns"

  let all =
    [
      Flow_iterations; Flow_tree_nets; Bf_relaxations; Retime_required_kept;
      Retime_required_dropped; Clusters_formed; Partitions_formed;
      Faults_simulated; Fault_patterns; Fault_word_evals; Campaign_circuits;
      Lint_rules_fired; Lint_findings;
      Pool_dispatches; Pool_busy_ns;
    ]
end

type event =
  | Begin of { name : string; tid : int; ts : int64; minor_words : float }
  | End of { tid : int; ts : int64; minor_words : float }
  | Count of { metric : Metric.t; tid : int; ts : int64; value : int }
  | Gauge of { name : string; tid : int; ts : int64; value : float }

type t = {
  mutex : Mutex.t;
  mutable events : event list; (* newest first *)
  clock : unit -> int64;
}

let wall_clock_ns () = Int64.of_float (Unix.gettimeofday () *. 1e9)

let create ?(clock = wall_clock_ns) () =
  { mutex = Mutex.create (); events = []; clock }

(* The one process-wide sink. An [Atomic.t] keeps the disabled check a
   single plain load from every domain. *)
let sink : t option Atomic.t = Atomic.make None

(* A domain-local scope that overrides the global sink: the serve daemon
   runs many jobs in one process and gives each in-flight job its own
   trace on the worker domain executing it. Disabled-path cost grows
   from one atomic load to a DLS read plus the atomic load — still no
   closure, no allocation. *)
let scoped : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let install t = Atomic.set sink (Some t)

let current () =
  match Domain.DLS.get scoped with
  | Some _ as s -> s
  | None -> Atomic.get sink

let uninstall () = Atomic.set sink None
let enabled () = current () <> None

let with_installed t f =
  install t;
  Fun.protect ~finally:uninstall f

let with_scoped t f =
  let prev = Domain.DLS.get scoped in
  Domain.DLS.set scoped (Some t);
  Fun.protect ~finally:(fun () -> Domain.DLS.set scoped prev) f

let events t = Mutex.protect t.mutex (fun () -> List.rev t.events)
let now t = t.clock ()

let record t ev =
  Mutex.lock t.mutex;
  t.events <- ev :: t.events;
  Mutex.unlock t.mutex

(* worker attribution: Domain_pool publishes the worker index it gave
   this domain, so events land on the right track even though domains
   are recycled across dispatches *)
let worker_key = Domain.DLS.new_key (fun () -> 0)
let worker () = Domain.DLS.get worker_key

let with_worker w f =
  let prev = Domain.DLS.get worker_key in
  Domain.DLS.set worker_key w;
  Fun.protect ~finally:(fun () -> Domain.DLS.set worker_key prev) f

let span name f =
  match current () with
  | None -> f ()
  | Some t ->
    let tid = worker () in
    record t
      (Begin { name; tid; ts = t.clock (); minor_words = Gc.minor_words () });
    let finish () =
      record t (End { tid; ts = t.clock (); minor_words = Gc.minor_words () })
    in
    (match f () with
     | v ->
       finish ();
       v
     | exception e ->
       finish ();
       raise e)

let add metric value =
  match current () with
  | None -> ()
  | Some t ->
    record t (Count { metric; tid = worker (); ts = t.clock (); value })

let gauge name value =
  match current () with
  | None -> ()
  | Some t ->
    record t (Gauge { name; tid = worker (); ts = t.clock (); value })
