(** Robust summary statistics for benchmark runs.

    Medians with median-absolute-deviation spread — the numbers every
    BENCH_*.json entry carries — measured by repeated wall-clock runs.
    Robust statistics beat means here: a single GC pause or scheduler
    hiccup shifts a mean but not a median. *)

type summary = { median_ns : float; mad_ns : float; samples : int }

val median : float array -> float
(** Median (average of the two middle elements for even sizes). Raises
    [Invalid_argument] on the empty array. *)

val mad : float array -> float
(** Median absolute deviation around the median. *)

val measure : ?warmup:int -> ?repeat:int -> (unit -> unit) -> summary
(** Run [f] [warmup] times (default 1) untimed, then [repeat] times
    (default 5) timed, and summarise nanoseconds per run. *)
