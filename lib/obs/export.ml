(* Pure renderers over Obs.events: same events, same bytes. *)

type node = {
  name : string;
  t0 : int64;
  mutable t1 : int64;
  w0 : float;
  mutable w1 : float;
  mutable children : node list; (* reversed while building *)
  mutable closed : bool;
}

let ts_of = function
  | Obs.Begin b -> b.ts
  | Obs.End e -> e.ts
  | Obs.Count c -> c.ts
  | Obs.Gauge g -> g.ts

let tid_of = function
  | Obs.Begin b -> b.tid
  | Obs.End e -> e.tid
  | Obs.Count c -> c.tid
  | Obs.Gauge g -> g.tid

(* [~normalise]: the i-th event happens at i microseconds with no
   allocation, making every derived figure deterministic *)
let normalised events =
  List.mapi
    (fun i ev ->
      let ts = Int64.of_int (i * 1000) in
      match ev with
      | Obs.Begin b -> Obs.Begin { b with ts; minor_words = 0.0 }
      | Obs.End e -> Obs.End { e with ts; minor_words = 0.0 }
      | Obs.Count c -> Obs.Count { c with ts }
      | Obs.Gauge g -> Obs.Gauge { g with ts })
    events

(* rebase so the first event sits at t = 0 *)
let rebased events =
  match events with
  | [] -> []
  | first :: _ ->
    let t0 = ts_of first in
    List.map
      (fun ev ->
        let ts = Int64.sub (ts_of ev) t0 in
        match ev with
        | Obs.Begin b -> Obs.Begin { b with ts }
        | Obs.End e -> Obs.End { e with ts }
        | Obs.Count c -> Obs.Count { c with ts }
        | Obs.Gauge g -> Obs.Gauge { g with ts })
      events

let prepared ~normalise t =
  let evs = Obs.events t in
  if normalise then normalised evs else rebased evs

(* span forest per tid, preserving per-tid event order; an unmatched
   Begin stays marked open and ends at the last timestamp seen *)
let forests events =
  let stacks : (int, node list ref) Hashtbl.t = Hashtbl.create 4 in
  let roots : (int, node list ref) Hashtbl.t = Hashtbl.create 4 in
  let tids = ref [] in
  let slot tbl tid =
    match Hashtbl.find_opt tbl tid with
    | Some r -> r
    | None ->
      let r = ref [] in
      Hashtbl.replace tbl tid r;
      r
  in
  let last_ts = ref 0L in
  List.iter
    (fun ev ->
      last_ts := ts_of ev;
      let tid = tid_of ev in
      if not (List.mem tid !tids) then tids := tid :: !tids;
      match ev with
      | Obs.Begin b ->
        let n =
          {
            name = b.name;
            t0 = b.ts;
            t1 = b.ts;
            w0 = b.minor_words;
            w1 = b.minor_words;
            children = [];
            closed = false;
          }
        in
        let st = slot stacks tid in
        (match !st with
         | parent :: _ -> parent.children <- n :: parent.children
         | [] -> (slot roots tid) := n :: !(slot roots tid));
        st := n :: !st
      | Obs.End e -> (
        let st = slot stacks tid in
        match !st with
        | n :: rest ->
          n.t1 <- e.ts;
          n.w1 <- e.minor_words;
          n.closed <- true;
          st := rest
        | [] -> () (* stray End: drop *))
      | Obs.Count _ | Obs.Gauge _ -> ())
    events;
  (* close anything left open at the last timestamp *)
  Hashtbl.iter
    (fun _ st -> List.iter (fun n -> n.t1 <- !last_ts) !st)
    stacks;
  let order_children n =
    let rec fix n =
      n.children <- List.rev n.children;
      List.iter fix n.children
    in
    fix n
  in
  List.rev !tids
  |> List.filter_map (fun tid ->
         match Hashtbl.find_opt roots tid with
         | None -> None
         | Some r ->
           let rs = List.rev !r in
           List.iter order_children rs;
           Some (tid, rs))

let pp_duration_ns ns =
  let ns = Int64.to_float ns in
  if ns >= 1e9 then Printf.sprintf "%.2fs" (ns /. 1e9)
  else if ns >= 1e6 then Printf.sprintf "%.2fms" (ns /. 1e6)
  else if ns >= 1e3 then Printf.sprintf "%.2fus" (ns /. 1e3)
  else Printf.sprintf "%.0fns" ns

let pp_words w =
  if w >= 1e6 then Printf.sprintf "+%.1fMw" (w /. 1e6)
  else if w >= 1e3 then Printf.sprintf "+%.1fkw" (w /. 1e3)
  else Printf.sprintf "+%.0fw" w

let counts_by_metric events =
  List.filter_map
    (fun m ->
      let total =
        List.fold_left
          (fun acc ev ->
            match ev with
            | Obs.Count c when c.metric = m -> acc + c.value
            | _ -> acc)
          0 events
      in
      if total = 0 then None else Some (m, total))
    Obs.Metric.all

let gauges_in_order events =
  List.filter_map
    (function Obs.Gauge g -> Some (g.name, g.value) | _ -> None)
    events

let worker_busy events =
  let tbl = Hashtbl.create 4 in
  let order = ref [] in
  List.iter
    (function
      | Obs.Count { metric = Obs.Metric.Pool_busy_ns; tid; value; _ } ->
        (match Hashtbl.find_opt tbl tid with
         | Some (busy, tasks) -> Hashtbl.replace tbl tid (busy + value, tasks + 1)
         | None ->
           order := tid :: !order;
           Hashtbl.replace tbl tid (value, 1))
      | _ -> ())
    events;
  List.sort compare (List.rev !order)
  |> List.map (fun tid -> (tid, Hashtbl.find tbl tid))

let to_human ?(normalise = false) t =
  let events = prepared ~normalise t in
  let buf = Buffer.create 1024 in
  let n_spans =
    List.length (List.filter (function Obs.Begin _ -> true | _ -> false) events)
  in
  let forests = forests events in
  Printf.bprintf buf "trace: %d events, %d spans, %d workers\n"
    (List.length events) n_spans
    (max 1 (List.length forests));
  List.iter
    (fun (tid, roots) ->
      Printf.bprintf buf "spans (worker %d):\n" tid;
      let rec render depth n =
        Printf.bprintf buf "%s%-*s %10s %10s%s\n"
          (String.make (2 + (2 * depth)) ' ')
          (max 1 (40 - (2 * depth)))
          n.name
          (pp_duration_ns (Int64.sub n.t1 n.t0))
          (pp_words (n.w1 -. n.w0))
          (if n.closed then "" else "  (open)");
        List.iter (render (depth + 1)) n.children
      in
      List.iter (render 0) roots)
    forests;
  (match counts_by_metric events with
   | [] -> ()
   | counts ->
     Buffer.add_string buf "counters:\n";
     List.iter
       (fun (m, v) ->
         Printf.bprintf buf "  %-40s %12d\n" (Obs.Metric.name m) v)
       counts);
  (match gauges_in_order events with
   | [] -> ()
   | gs ->
     Buffer.add_string buf "gauges:\n";
     List.iter
       (fun (name, v) -> Printf.bprintf buf "  %-40s %12g\n" name v)
       gs);
  (match worker_busy events with
   | [] -> ()
   | ws ->
     Buffer.add_string buf "workers:\n";
     List.iter
       (fun (tid, (busy, tasks)) ->
         Printf.bprintf buf "  worker %d: busy %s over %d task%s\n" tid
           (pp_duration_ns (Int64.of_int busy))
           tasks
           (if tasks = 1 then "" else "s"))
       ws);
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let pp_ts_us ns = Printf.sprintf "%.3f" (Int64.to_float ns /. 1e3)

let to_chrome ?(normalise = false) t =
  let events = prepared ~normalise t in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[\n";
  (* per-tid name stacks so "E" events carry their span's name *)
  let stacks : (int, string list ref) Hashtbl.t = Hashtbl.create 4 in
  let stack tid =
    match Hashtbl.find_opt stacks tid with
    | Some r -> r
    | None ->
      let r = ref [] in
      Hashtbl.replace stacks tid r;
      r
  in
  let first = ref true in
  let emit line =
    if !first then first := false else Buffer.add_string buf ",\n";
    Buffer.add_string buf line
  in
  let last_ts = ref 0L in
  List.iter
    (fun ev ->
      last_ts := ts_of ev;
      match ev with
      | Obs.Begin b ->
        let st = stack b.tid in
        st := b.name :: !st;
        emit
          (Printf.sprintf
             "{\"name\":\"%s\",\"ph\":\"B\",\"pid\":0,\"tid\":%d,\"ts\":%s}"
             (json_escape b.name) b.tid (pp_ts_us b.ts))
      | Obs.End e ->
        let st = stack e.tid in
        let name =
          match !st with
          | n :: rest ->
            st := rest;
            n
          | [] -> "?"
        in
        emit
          (Printf.sprintf
             "{\"name\":\"%s\",\"ph\":\"E\",\"pid\":0,\"tid\":%d,\"ts\":%s}"
             (json_escape name) e.tid (pp_ts_us e.ts))
      | Obs.Count c ->
        emit
          (Printf.sprintf
             "{\"name\":\"%s\",\"ph\":\"C\",\"pid\":0,\"tid\":%d,\"ts\":%s,\
              \"args\":{\"value\":%d}}"
             (json_escape (Obs.Metric.name c.metric))
             c.tid (pp_ts_us c.ts) c.value)
      | Obs.Gauge g ->
        emit
          (Printf.sprintf
             "{\"name\":\"%s\",\"ph\":\"C\",\"pid\":0,\"tid\":%d,\"ts\":%s,\
              \"args\":{\"value\":%g}}"
             (json_escape g.name) g.tid (pp_ts_us g.ts)
             g.value))
    events;
  (* Truncated-span flush: a trace exported mid-flight — a crashed or
     killed run, or a live daemon snapshot — still has spans open. Close
     them at the last timestamp seen so every "B" has its "E" and the
     JSON loads in chrome://tracing instead of being rejected. *)
  let open_tids =
    Hashtbl.fold
      (fun tid st acc -> if !st = [] then acc else (tid, st) :: acc)
      stacks []
    |> List.sort compare
  in
  List.iter
    (fun (tid, st) ->
      List.iter
        (fun name ->
          emit
            (Printf.sprintf
               "{\"name\":\"%s\",\"ph\":\"E\",\"pid\":0,\"tid\":%d,\"ts\":%s}"
               (json_escape name) tid (pp_ts_us !last_ts)))
        !st;
      st := [])
    open_tids;
  Buffer.add_string buf "\n],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents buf
