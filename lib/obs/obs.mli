(** Structured tracing and metrics for the Merced pipeline.

    A {!t} is a passive event collector. Nothing records until a trace
    is {!install}ed; the disabled path is one atomic load and a branch —
    no closure, no allocation — so instrumented hot paths cost nothing
    in normal operation. Recording is domain-safe: events carry the
    worker id {!Ppet_parallel.Domain_pool} assigns via {!with_worker},
    so per-worker streams stay ordered even when wall-clock interleaves.

    Rendering lives in {!Export} (human tree and Chrome [trace_event]
    JSON); summary statistics for benchmarks live in {!Bench_stat}. *)

(** The closed vocabulary of pipeline counters. A closed variant keeps
    call sites typo-proof and exporters exhaustive: adding a metric is a
    compile-time event, not a stringly convention. *)
module Metric : sig
  type t =
    | Flow_iterations        (** shortest-path trees injected by [Flow.saturate] *)
    | Flow_tree_nets         (** nets relaxed across all injected trees *)
    | Bf_relaxations         (** Bellman–Ford relax steps in [Retime.solve] *)
    | Retime_required_kept   (** register requirements retained by the solver *)
    | Retime_required_dropped(** requirements dropped on over-constrained loops *)
    | Clusters_formed        (** clusters out of [Cluster.make_group] *)
    | Partitions_formed      (** partitions out of [Assign.run] *)
    | Faults_simulated       (** faults fed to [Fault_engine.Batch.run] *)
    | Fault_patterns         (** test patterns (words x batches) per batch run *)
    | Fault_word_evals       (** gate-word evaluations a batch run performed *)
    | Campaign_circuits      (** circuits completed by a campaign run *)
    | Lint_rules_fired       (** lint rules evaluated *)
    | Lint_findings          (** error+warning diagnostics produced *)
    | Pool_dispatches        (** [Domain_pool.run] dispatches *)
    | Pool_busy_ns           (** nanoseconds a worker spent inside a task *)

  val name : t -> string
  (** Stable dotted name, e.g. ["flow.iterations"]. *)

  val all : t list
  (** Every metric, in rendering order. *)
end

type event =
  | Begin of { name : string; tid : int; ts : int64; minor_words : float }
  | End of { tid : int; ts : int64; minor_words : float }
  | Count of { metric : Metric.t; tid : int; ts : int64; value : int }
  | Gauge of { name : string; tid : int; ts : int64; value : float }
      (** Timestamps are nanoseconds from the trace clock; [minor_words]
          is the recording domain's [Gc.minor_words] at the instant, so
          span alloc deltas come for free. [tid] is the worker id. *)

type t

val create : ?clock:(unit -> int64) -> unit -> t
(** A fresh, empty trace. [clock] (default: wall clock in nanoseconds)
    is injectable so tests produce deterministic timestamps. *)

val install : t -> unit
(** Make [t] the process-wide recording sink. *)

val uninstall : unit -> unit

val enabled : unit -> bool
(** Whether any trace is installed — the guard every recording primitive
    applies itself. *)

val with_installed : t -> (unit -> 'a) -> 'a
(** [install], run, [uninstall] (also on exceptions). *)

val with_scoped : t -> (unit -> 'a) -> 'a
(** [with_scoped t f] runs [f] with [t] as this domain's recording
    sink, overriding (and afterwards restoring) whatever {!install} set
    process-wide. The serve daemon uses this to give each in-flight job
    its own trace even though many jobs share the process. The scope is
    domain-local: work [f] dispatches onto other domains records to
    those domains' own scopes (or the global sink). *)

val current : unit -> t option
(** The effective trace — this domain's scope if one is set, else the
    installed one — for callers that need its clock. *)

val events : t -> event list
(** Events in recording order. *)

val now : t -> int64
(** The trace's clock. *)

val span : string -> (unit -> 'a) -> 'a
(** [span name f] brackets [f] with [Begin]/[End] events (ended on
    exceptions too). When disabled it is exactly [f ()]. *)

val add : Metric.t -> int -> unit
(** Bump a counter. Call sites accumulate locally and add once per
    phase, so the disabled cost on hot paths is a single branch at the
    call boundary, not per iteration. *)

val gauge : string -> float -> unit
(** Record a point-in-time measurement, e.g. ["merced.cuts_total"]. *)

val worker : unit -> int
(** This domain's worker id (0 outside a pool task). *)

val with_worker : int -> (unit -> 'a) -> 'a
(** Run a pool task attributed to the given worker id; restores the
    previous id afterwards. Used by {!Ppet_parallel.Domain_pool}. *)
