type summary = { median_ns : float; mad_ns : float; samples : int }

let sorted_copy a =
  let b = Array.copy a in
  Array.sort compare b;
  b

let median a =
  if Array.length a = 0 then invalid_arg "Bench_stat.median: empty";
  let s = sorted_copy a in
  let n = Array.length s in
  if n mod 2 = 1 then s.(n / 2) else (s.((n / 2) - 1) +. s.(n / 2)) /. 2.0

let mad a =
  let m = median a in
  median (Array.map (fun x -> Float.abs (x -. m)) a)

let measure ?(warmup = 1) ?(repeat = 5) f =
  if repeat < 1 then invalid_arg "Bench_stat.measure: repeat must be >= 1";
  for _ = 1 to warmup do
    f ()
  done;
  let samples =
    Array.init repeat (fun _ ->
        let t0 = Unix.gettimeofday () in
        f ();
        (Unix.gettimeofday () -. t0) *. 1e9)
  in
  { median_ns = median samples; mad_ns = mad samples; samples = repeat }
