(** Renderers for {!Obs} traces.

    Both exporters are pure functions of the recorded event stream:
    identical events give byte-identical output. Events keep recording
    order (per-worker streams are ordered; cross-worker interleaving is
    whatever the run produced). With [~normalise:true] timestamps become
    the event's sequence index (microseconds) and allocation figures
    zero, so golden tests and documentation diffs are deterministic. *)

val to_human : ?normalise:bool -> Obs.t -> string
(** Indented span tree per worker (duration and minor-heap allocation
    delta per span), then counters, gauges and per-worker pool
    utilisation. *)

val to_chrome : ?normalise:bool -> Obs.t -> string
(** Chrome [trace_event] JSON (load via [chrome://tracing] or Perfetto):
    spans as ["B"]/["E"] pairs, counters and gauges as ["C"] events, one
    event per line, [tid] = worker id. Spans still open when the trace
    is exported — a crashed or killed run, or a live snapshot of a
    running job — are flushed with a synthetic ["E"] at the last
    recorded timestamp, so the output is always balanced and loadable. *)
