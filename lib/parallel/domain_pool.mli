(** Reusable pool of OCaml 5 domains for deterministic data parallelism.

    The pool owns [jobs - 1] worker domains parked on a condition
    variable; the calling domain always participates as worker 0, so a
    pool of [jobs = 1] never spawns a domain and runs everything inline
    (the serial path costs nothing). Work is dispatched as a closure run
    once per worker; determinism is the caller's business and is easy to
    get: give each worker a disjoint, index-ordered slice of the input
    (see {!chunk}) and merge the per-slice results in slice order.

    A pool is cheap to keep alive — idle workers hold no locks and burn
    no CPU — so create one per session and reuse it across every
    dispatch; spawning a domain costs orders of magnitude more than a
    dispatch. A nested [run] issued from inside a task (on any pool) is
    detected and degrades to a serial sweep on the calling worker: every
    chunk still executes exactly once, with the same results, just
    without extra concurrency — the pool's dispatch machinery is never
    touched reentrantly. *)

type t

val create : jobs:int -> t
(** [create ~jobs] spawns [jobs - 1] worker domains.
    Raises [Invalid_argument] when [jobs < 1]. *)

val jobs : t -> int

val run : t -> (int -> unit) -> unit
(** [run t f] executes [f w] for every worker index [w] in
    [0, jobs), concurrently, and returns when all are done. [f 0] runs
    on the calling domain. If any [f w] raises, one of the exceptions is
    re-raised after every worker has finished its call. Called from
    inside a pool task, the dispatch runs serially on the caller (see
    the module description). *)

val chunk : jobs:int -> n:int -> int -> int * int
(** [chunk ~jobs ~n w] is the half-open index range [(lo, hi)] of
    worker [w]'s slice in a balanced contiguous split of [0, n):
    slices are in worker order, differ in length by at most one, and
    cover [0, n) exactly — the deterministic sharding used throughout. *)

val shutdown : t -> unit
(** Park, join and release the worker domains. The pool must not be
    used afterwards; calling [shutdown] twice is harmless. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] on a fresh pool and shuts it down on
    exit, normal or exceptional. *)
