type t = {
  jobs : int;
  mutex : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable task : (int -> unit) option;
  mutable generation : int;  (* bumped once per dispatch *)
  mutable remaining : int;   (* workers still inside the current task *)
  mutable stop : bool;
  mutable failure : exn option;
  mutable workers : unit Domain.t array;
}

let jobs t = t.jobs

let record_failure t e =
  Mutex.lock t.mutex;
  if t.failure = None then t.failure <- Some e;
  Mutex.unlock t.mutex

(* True while this domain (or systhread) is inside a pool task. [run]
   consults it to detect reentrant dispatch: a nested [run] issued from
   inside a task would clobber [task]/[remaining]/[generation] mid-flight
   (and deadlock when issued from a worker of the same pool), so nested
   calls degrade to a serial sweep on the caller instead. The flag is
   process-wide across pools on purpose — blocking a worker of pool A on
   a dispatch of pool B nests the same hazard. *)
let in_task = Domain.DLS.new_key (fun () -> false)

let entered_task f w =
  let prev = Domain.DLS.get in_task in
  Domain.DLS.set in_task true;
  Fun.protect ~finally:(fun () -> Domain.DLS.set in_task prev) (fun () -> f w)

(* Each worker sleeps until the generation counter moves past the last
   task it ran, so a dispatch issued before the worker got back to the
   condition variable is still picked up. *)
let rec worker_loop t w seen =
  Mutex.lock t.mutex;
  while (not t.stop) && t.generation = seen do
    Condition.wait t.work_ready t.mutex
  done;
  if t.stop then Mutex.unlock t.mutex
  else begin
    let gen = t.generation in
    let task = match t.task with Some f -> f | None -> assert false in
    Mutex.unlock t.mutex;
    (try entered_task task w with e -> record_failure t e);
    Mutex.lock t.mutex;
    t.remaining <- t.remaining - 1;
    if t.remaining = 0 then Condition.broadcast t.work_done;
    Mutex.unlock t.mutex;
    worker_loop t w gen
  end

let create ~jobs =
  if jobs < 1 then invalid_arg "Domain_pool.create: jobs must be >= 1";
  let t =
    {
      jobs;
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      task = None;
      generation = 0;
      remaining = 0;
      stop = false;
      failure = None;
      workers = [||];
    }
  in
  t.workers <-
    Array.init (jobs - 1) (fun i ->
        Domain.spawn (fun () -> worker_loop t (i + 1) 0));
  t

module Obs = Ppet_obs.Obs

(* When a trace is installed, attribute each task to its worker id and
   account the nanoseconds it spends busy, so exporters can show
   per-worker utilisation. Disabled cost: one atomic load per dispatch
   (run is not a hot path; the tasks it carries are). *)
let instrumented f =
  match Obs.current () with
  | None -> f
  | Some tr ->
    Obs.add Obs.Metric.Pool_dispatches 1;
    fun w ->
      Obs.with_worker w (fun () ->
          let t0 = Obs.now tr in
          Fun.protect
            ~finally:(fun () ->
              Obs.add Obs.Metric.Pool_busy_ns
                (Int64.to_int (Int64.sub (Obs.now tr) t0)))
            (fun () -> f w))

let check_alive t =
  Mutex.lock t.mutex;
  let stopped = t.stop in
  Mutex.unlock t.mutex;
  if stopped then invalid_arg "Domain_pool.run: pool is shut down"

let run t f =
  if Domain.DLS.get in_task then begin
    (* Reentrant dispatch: the caller is already inside a pool task, so
       the pool's dispatch state is in use (and, from a worker of this
       very pool, waiting on it would deadlock). Run every chunk
       serially right here — same results, no concurrency. *)
    check_alive t;
    let f = instrumented f in
    let first = ref None in
    for w = 0 to t.jobs - 1 do
      try f w with e -> if !first = None then first := Some e
    done;
    match !first with Some e -> raise e | None -> ()
  end
  else if t.jobs = 1 then begin
    check_alive t;
    let f = instrumented f in
    entered_task f 0
  end
  else begin
    let f = instrumented f in
    Mutex.lock t.mutex;
    if t.stop then begin
      Mutex.unlock t.mutex;
      invalid_arg "Domain_pool.run: pool is shut down"
    end;
    t.task <- Some f;
    t.failure <- None;
    t.remaining <- t.jobs - 1;
    t.generation <- t.generation + 1;
    Condition.broadcast t.work_ready;
    Mutex.unlock t.mutex;
    let own = try entered_task f 0; None with e -> Some e in
    Mutex.lock t.mutex;
    while t.remaining > 0 do
      Condition.wait t.work_done t.mutex
    done;
    t.task <- None;
    let worker_exn = t.failure in
    t.failure <- None;
    Mutex.unlock t.mutex;
    match own, worker_exn with
    | Some e, _ | None, Some e -> raise e
    | None, None -> ()
  end

let chunk ~jobs ~n w =
  if jobs < 1 then invalid_arg "Domain_pool.chunk: jobs must be >= 1";
  if n < 0 then invalid_arg "Domain_pool.chunk: negative n";
  if w < 0 || w >= jobs then invalid_arg "Domain_pool.chunk: bad worker";
  (w * n / jobs, (w + 1) * n / jobs)

let shutdown t =
  Mutex.lock t.mutex;
  let ws = t.workers in
  t.stop <- true;
  t.workers <- [||];
  Condition.broadcast t.work_ready;
  Mutex.unlock t.mutex;
  Array.iter Domain.join ws

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
