(* Content-addressed result store. The key digests what the job output
   is a function of — operation, every compile parameter
   (Params.fingerprint), the canonical circuit text, and the op-specific
   knobs — so a circuit submitted by registry name and the same circuit
   submitted as inline .bench text hit the same entry, while any knob
   change misses. Timing jobs (bench) are never stored: their output is
   not a function of their inputs. *)

type entry = {
  exit_code : int;
  output : string;
  stages : (string * int64) list;
}

type t = {
  mutex : Mutex.t;
  table : (string, entry) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let create () =
  { mutex = Mutex.create (); table = Hashtbl.create 64; hits = 0; misses = 0 }

let key ~op ~params_fp ~content ~extra =
  (* \x00 can appear in none of the parts (op names, fingerprints and
     .bench text are all printable), so the concatenation is injective *)
  Digest.to_hex (Digest.string (String.concat "\x00" [ op; params_fp; content; extra ]))

let find t k =
  Mutex.protect t.mutex (fun () ->
      match Hashtbl.find_opt t.table k with
      | Some _ as hit ->
        t.hits <- t.hits + 1;
        hit
      | None ->
        t.misses <- t.misses + 1;
        None)

let store t k e = Mutex.protect t.mutex (fun () -> Hashtbl.replace t.table k e)

let stats t = Mutex.protect t.mutex (fun () -> (t.hits, t.misses))
