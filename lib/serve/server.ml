module Params = Ppet_core.Params
module Cost_model = Ppet_core.Cost_model
module Circuit = Ppet_netlist.Circuit
module Bench_parser = Ppet_netlist.Bench_parser
module Check_error = Ppet_check.Error
module Obs = Ppet_obs.Obs
module Domain_pool = Ppet_parallel.Domain_pool

type config = {
  socket_path : string;
  jobs : int;
  queue_limit : int;
  default_timeout_ms : int option;
  quiet : bool;
}

exception Timed_out of string

let now_ms () = Unix.gettimeofday () *. 1000.

(* ------------------------------------------------------------------ *)
(* connections                                                         *)

(* A connection outlives its reader thread only while jobs it enqueued
   are still in flight: the reader waits for [pending] to drain before
   closing the descriptor, so workers never write to a recycled fd. *)
type conn = {
  fd : Unix.file_descr;
  write_mutex : Mutex.t;
  pending_mutex : Mutex.t;
  pending_cond : Condition.t;
  mutable pending : int;
}

let make_conn fd =
  {
    fd;
    write_mutex = Mutex.create ();
    pending_mutex = Mutex.create ();
    pending_cond = Condition.create ();
    pending = 0;
  }

(* one frame = one line; a vanished client is not an error, the result
   is simply dropped (SIGPIPE is ignored in [run]) *)
let send conn json =
  let line = Json.to_string json ^ "\n" in
  Mutex.protect conn.write_mutex (fun () ->
      try
        let len = String.length line in
        let rec go off =
          if off < len then
            go (off + Unix.write_substring conn.fd line off (len - off))
        in
        go 0
      with Unix.Unix_error _ | Sys_error _ -> ())

let add_pending conn n =
  Mutex.protect conn.pending_mutex (fun () -> conn.pending <- conn.pending + n)

let sub_pending conn n =
  Mutex.protect conn.pending_mutex (fun () ->
      conn.pending <- conn.pending - n;
      if conn.pending <= 0 then Condition.broadcast conn.pending_cond)

let wait_pending conn =
  Mutex.protect conn.pending_mutex (fun () ->
      while conn.pending > 0 do
        Condition.wait conn.pending_cond conn.pending_mutex
      done)

(* ------------------------------------------------------------------ *)
(* the job queue                                                       *)

(* where a finished job's outcome goes: straight back to the client, or
   into a suite aggregate that replies once when the last child lands *)
type agg = {
  agg_mutex : Mutex.t;
  mutable remaining : int;
  slots : Protocol.job_outcome option array;
  agg_id : string option;
}

type sink = Direct of string option | Collect of agg * int

type queued = {
  jreq : Protocol.job_request;
  sink : sink;
  conn : conn;
  timeout_ms : int option;  (* effective: request's or the server default *)
  deadline : float option;  (* absolute ms, from enqueue time *)
}

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  qmutex : Mutex.t;
  qcond : Condition.t;
  queue : queued Queue.t;
  mutable stopping : bool;
  mutable jobs_run : int;
  cache : Cache.t;
}

let stopping t = Mutex.protect t.qmutex (fun () -> t.stopping)

let enqueue t items =
  Mutex.protect t.qmutex (fun () ->
      if t.stopping then `Stopping
      else if Queue.length t.queue + List.length items > t.cfg.queue_limit then
        `Full (Queue.length t.queue)
      else begin
        List.iter (fun q -> Queue.add q t.queue) items;
        Condition.broadcast t.qcond;
        `Ok
      end)

let stop t =
  Mutex.protect t.qmutex (fun () ->
      t.stopping <- true;
      Condition.broadcast t.qcond);
  (* a shutdown on the listening socket kicks the acceptor out of
     [accept] with an error; it checks [stopping] and exits cleanly *)
  try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* per-job tracing: stage summaries and live progress                  *)

(* top-level spans of a finished trace: (name, duration ns) in order *)
let top_spans evs =
  let depth = Hashtbl.create 4 in
  let stack = Hashtbl.create 4 in
  let out = ref [] in
  List.iter
    (fun ev ->
      match ev with
      | Obs.Begin { name; tid; ts; _ } ->
        let d = Option.value ~default:0 (Hashtbl.find_opt depth tid) in
        let st = Option.value ~default:[] (Hashtbl.find_opt stack tid) in
        Hashtbl.replace stack tid ((name, ts) :: st);
        Hashtbl.replace depth tid (d + 1)
      | Obs.End { tid; ts; _ } -> (
        let d = Option.value ~default:0 (Hashtbl.find_opt depth tid) in
        match Hashtbl.find_opt stack tid with
        | Some ((name, ts0) :: rest) ->
          Hashtbl.replace stack tid rest;
          Hashtbl.replace depth tid (max 0 (d - 1));
          if d - 1 = 0 then out := (name, Int64.sub ts ts0) :: !out
        | _ -> ())
      | _ -> ())
    evs;
  List.rev !out

(* an incremental scanner over a live trace: each call translates the
   events recorded since the last one into begin/end frames for
   top-level stages *)
let progress_scanner tr ~emit =
  let cursor = ref 0 in
  let depth = Hashtbl.create 4 in
  let stack = Hashtbl.create 4 in
  fun () ->
    let evs = Obs.events tr in
    let rec drop n l =
      if n <= 0 then l else match l with [] -> [] | _ :: tl -> drop (n - 1) tl
    in
    let fresh = drop !cursor evs in
    cursor := List.length evs;
    List.iter
      (fun ev ->
        match ev with
        | Obs.Begin { name; tid; _ } ->
          let d = Option.value ~default:0 (Hashtbl.find_opt depth tid) in
          if d = 0 then emit ~stage:name `Begin;
          let st = Option.value ~default:[] (Hashtbl.find_opt stack tid) in
          Hashtbl.replace stack tid (name :: st);
          Hashtbl.replace depth tid (d + 1)
        | Obs.End { tid; _ } -> (
          let d = Option.value ~default:0 (Hashtbl.find_opt depth tid) in
          match Hashtbl.find_opt stack tid with
          | Some (name :: rest) ->
            Hashtbl.replace stack tid rest;
            Hashtbl.replace depth tid (max 0 (d - 1));
            if d - 1 = 0 then emit ~stage:name `End
          | _ -> ())
        | _ -> ())
      fresh

(* Run [f] recording into [tr] on this worker. With [emit], a streamer
   thread polls the trace and ships progress frames live; it is joined —
   and the trace flushed once more — before this returns, so every
   progress frame precedes the result frame on the wire. *)
let traced ?emit tr f =
  match emit with
  | None -> Obs.with_scoped tr f
  | Some emit ->
    let flush = progress_scanner tr ~emit in
    let stop_flag = Atomic.make false in
    let streamer =
      Thread.create
        (fun () ->
          while not (Atomic.get stop_flag) do
            flush ();
            Thread.delay 0.05
          done)
        ()
    in
    Fun.protect
      ~finally:(fun () ->
        Atomic.set stop_flag true;
        Thread.join streamer;
        flush ())
      (fun () -> Obs.with_scoped tr f)

(* ------------------------------------------------------------------ *)
(* executing one job                                                   *)

let circuit_of source =
  match source with
  | Protocol.Spec spec -> Ops.load_circuit_locked spec
  | Protocol.Text { text; title; file } ->
    Bench_parser.parse_string ?title ?file text

(* the lint front-end split the CLI applies: .bench files go through the
   tolerant text path (broken files are findings, not errors) *)
let lint_input source =
  match source with
  | Protocol.Text { text; title; file } -> `Text (text, title, file)
  | Protocol.Spec spec ->
    if
      spec <> "s27"
      && Sys.file_exists spec
      && not (Filename.check_suffix spec ".v")
    then
      let src = In_channel.with_open_text spec In_channel.input_all in
      `Text
        ( src,
          Some Filename.(remove_extension (basename spec)),
          Some spec )
    else `Circuit (Ops.load_circuit_locked spec)

let done_of_cache (e : Cache.entry) =
  Protocol.Done
    {
      Protocol.exit_code = e.Cache.exit_code;
      output = e.Cache.output;
      cached = true;
      stages = e.Cache.stages;
    }

let run_cached t ?emit ?key run =
  match Option.bind key (fun k -> Cache.find t.cache k) with
  | Some e -> done_of_cache e
  | None ->
    let tr = Obs.create () in
    let (o : Ops.outcome) = traced ?emit tr run in
    let stages = top_spans (Obs.events tr) in
    (match key with
     | Some k ->
       Cache.store t.cache k
         { Cache.exit_code = o.Ops.exit_code; output = o.Ops.output; stages }
     | None -> ());
    Protocol.Done
      {
        Protocol.exit_code = o.Ops.exit_code;
        output = o.Ops.output;
        cached = false;
        stages;
      }

let execute t ?emit ~deadline (jreq : Protocol.job_request) =
  let params = jreq.Protocol.params in
  let params_fp = Params.fingerprint params in
  (* auto-dispatch: resolve the request's cost model against each
     circuit through the same Ops.dispatch the CLI uses. The model
     fingerprint joins the cache key (the resolved params fingerprint
     already covers partitioner/cutover; the fingerprint also covers
     the word-width decision, which lives in the policy, not params). *)
  let model = jreq.Protocol.model in
  let model_extra =
    match model with
    | None -> ""
    | Some m -> ";dispatch=" ^ Cost_model.fingerprint m
  in
  let resolve c =
    match model with
    | None -> (params, None)
    | Some m ->
      let p, d = Ops.dispatch ~model:m ~params c in
      (p, Some d)
  in
  match jreq.Protocol.job with
  | Protocol.Sleep { ms } ->
    let tr = Obs.create () in
    traced ?emit tr (fun () ->
        Obs.span "sleep" (fun () ->
            let t0 = now_ms () in
            let fin = t0 +. float_of_int ms in
            let rec nap () =
              let now = now_ms () in
              if now < fin then begin
                (match deadline with
                 | Some dl when now > dl ->
                   raise
                     (Timed_out
                        (Printf.sprintf "sleep aborted after %.0f ms (timeout)"
                           (now -. t0)))
                 | _ -> ());
                Thread.delay (Float.min 0.01 ((fin -. now) /. 1000.));
                nap ()
              end
            in
            nap ()));
    Protocol.Done
      {
        Protocol.exit_code = 0;
        output = Printf.sprintf "slept %d ms\n" ms;
        cached = false;
        stages = top_spans (Obs.events tr);
      }
  | Protocol.Compile { source; verbose } ->
    let c = circuit_of source in
    let params, _ = resolve c in
    let key =
      Cache.key ~op:"compile" ~params_fp:(Params.fingerprint params)
        ~content:(Ops.canonical c)
        ~extra:(Printf.sprintf "verbose=%b%s" verbose model_extra)
    in
    run_cached t ?emit ~key (fun () -> Ops.compile ~verbose ~params c)
  | Protocol.Selftest { source; max_width } ->
    let c = circuit_of source in
    let params, decision = resolve c in
    let words = Option.map (fun d -> d.Cost_model.d_words) decision in
    let key =
      Cache.key ~op:"selftest" ~params_fp:(Params.fingerprint params)
        ~content:(Ops.canonical c)
        ~extra:(Printf.sprintf "max_width=%d%s" max_width model_extra)
    in
    run_cached t ?emit ~key (fun () -> Ops.selftest ?words ~params ~max_width c)
  | Protocol.Analyze { source; json } ->
    let c = circuit_of source in
    let key =
      Cache.key ~op:"analyze" ~params_fp ~content:(Ops.canonical c)
        ~extra:(Printf.sprintf "json=%b" json)
    in
    run_cached t ?emit ~key (fun () -> Ops.analyze ~params ~json c)
  | Protocol.Lint { source; rules; verbose } ->
    let rules_opt = match rules with [] -> None | r -> Some r in
    let extra title file =
      Printf.sprintf "rules=%s;verbose=%b;title=%s;file=%s"
        (String.concat "," rules) verbose
        (Option.value ~default:"" title)
        (Option.value ~default:"" file)
    in
    (match lint_input source with
     | `Text (text, title, file) ->
       let key =
         Cache.key ~op:"lint" ~params_fp ~content:text ~extra:(extra title file)
       in
       run_cached t ?emit ~key (fun () ->
           Ops.lint_text ?rules:rules_opt ~verbose ~params ?title ?file text)
     | `Circuit c ->
       let key =
         Cache.key ~op:"lint" ~params_fp ~content:(Ops.canonical c)
           ~extra:(extra None None)
       in
       run_cached t ?emit ~key (fun () ->
           Ops.lint ?rules:rules_opt ~verbose ~params c))
  | Protocol.Bench { benchmarks; repeat } ->
    run_cached t ?emit (fun () -> Ops.bench ~benchmarks ~repeat)
  | Protocol.Campaign { profiles; words; drop; max_width; min_coverage; prune }
    ->
    let plan =
      {
        Ppet_core.Campaign.default_plan with
        Ppet_core.Campaign.profiles;
        params;
        words;
        drop;
        max_width;
        min_coverage;
        prune;
        dispatch = model;
      }
    in
    (* cacheable: the human rendering carries no timings, so the same
       profiles + knobs + params (+ dispatch model) always produce the
       same bytes *)
    let key =
      Cache.key ~op:"campaign" ~params_fp
        ~content:(String.concat "," profiles)
        ~extra:
          (Printf.sprintf "words=%d;drop=%b;mw=%d;mc=%h;prune=%b%s" words drop
             max_width min_coverage prune model_extra)
    in
    run_cached t ?emit ~key (fun () -> fst (Ops.campaign plan))

(* every failure mode of a job becomes a structured error reply; the
   daemon itself never dies on a poisoned job *)
let outcome_of_exn = function
  | Timed_out msg ->
    Some
      (Protocol.Failed
         { Protocol.stage = "session"; message = msg; timeout = true; busy = false })
  | Check_error.Error e ->
    let message =
      match e.Check_error.position with
      | Some pos -> pos ^ ": " ^ e.Check_error.message
      | None -> e.Check_error.message
    in
    Some
      (Protocol.Failed
         {
           Protocol.stage = Check_error.stage_name e.Check_error.stage;
           message;
           timeout = false;
           busy = false;
         })
  | Circuit.Error msg ->
    Some
      (Protocol.Failed
         { Protocol.stage = "parse"; message = msg; timeout = false; busy = false })
  | Invalid_argument msg | Failure msg | Sys_error msg ->
    Some
      (Protocol.Failed
         { Protocol.stage = "session"; message = msg; timeout = false; busy = false })
  | _ -> None

let run_job t (q : queued) =
  let emit =
    match q.sink with
    | Direct id when q.jreq.Protocol.progress ->
      Some
        (fun ~stage phase ->
          send q.conn (Protocol.progress_frame ?id ~stage phase))
    | _ -> None
  in
  let outcome =
    try
      (match q.deadline with
       | Some dl when now_ms () > dl ->
         raise
           (Timed_out
              (Printf.sprintf "timed out after %d ms waiting in queue"
                 (Option.value ~default:0 q.timeout_ms)))
       | _ -> ());
      execute t ?emit ~deadline:q.deadline q.jreq
    with e -> (
      match outcome_of_exn e with Some o -> o | None -> raise e)
  in
  (* count the job before its reply leaves, so a stats query issued
     after a client saw the result never undercounts *)
  Mutex.protect t.qmutex (fun () -> t.jobs_run <- t.jobs_run + 1);
  (match q.sink with
   | Direct id -> (
     match outcome with
     | Protocol.Done r -> send q.conn (Protocol.result_frame ?id r)
     | Protocol.Failed e -> send q.conn (Protocol.error_frame ?id e))
   | Collect (agg, idx) ->
     let finished =
       Mutex.protect agg.agg_mutex (fun () ->
           agg.slots.(idx) <- Some outcome;
           agg.remaining <- agg.remaining - 1;
           agg.remaining = 0)
     in
     if finished then
       let outcomes =
         Array.to_list
           (Array.map
              (function
                | Some o -> o
                | None ->
                  Protocol.Failed
                    {
                      Protocol.stage = "session";
                      message = "suite slot never completed";
                      timeout = false;
                      busy = false;
                    })
              agg.slots)
       in
       send q.conn (Protocol.suite_frame ?id:agg.agg_id outcomes));
  sub_pending q.conn 1

(* ------------------------------------------------------------------ *)
(* workers                                                             *)

let rec drain t w =
  let next =
    Mutex.protect t.qmutex (fun () ->
        let rec wait () =
          if not (Queue.is_empty t.queue) then Some (Queue.pop t.queue)
          else if t.stopping then None
          else begin
            Condition.wait t.qcond t.qmutex;
            wait ()
          end
        in
        wait ())
  in
  match next with
  | None -> ()
  | Some q ->
    run_job t q;
    drain t w

(* ------------------------------------------------------------------ *)
(* the protocol front end                                              *)

let busy_error message =
  { Protocol.stage = "session"; message; timeout = false; busy = true }

let effective_timeout t (jreq : Protocol.job_request) =
  match jreq.Protocol.timeout_ms with
  | Some _ as s -> s
  | None -> t.cfg.default_timeout_ms

let queued_of t conn sink jreq =
  let timeout_ms = effective_timeout t jreq in
  {
    jreq;
    sink;
    conn;
    timeout_ms;
    deadline = Option.map (fun ms -> now_ms () +. float_of_int ms) timeout_ms;
  }

let reject t conn id n = function
  | `Stopping ->
    sub_pending conn n;
    send conn (Protocol.error_frame ?id (busy_error "server is shutting down"))
  | `Full depth ->
    sub_pending conn n;
    send conn
      (Protocol.error_frame ?id
         (busy_error
            (Printf.sprintf "queue full (%d queued, limit %d); retry later"
               depth t.cfg.queue_limit)))

let handle_request t conn line =
  match Protocol.parse line with
  | Error msg ->
    send conn
      (Protocol.error_frame
         { Protocol.stage = "parse"; message = msg; timeout = false; busy = false })
  | Ok { Protocol.request; id } -> (
    match request with
    | Protocol.Stats ->
      let hits, misses = Cache.stats t.cache in
      let depth, jobs_run =
        Mutex.protect t.qmutex (fun () -> (Queue.length t.queue, t.jobs_run))
      in
      send conn
        (Protocol.stats_frame ?id ~workers:t.cfg.jobs ~queue_depth:depth
           ~queue_limit:t.cfg.queue_limit ~jobs_run ~cache_hits:hits
           ~cache_misses:misses ())
    | Protocol.Shutdown ->
      send conn (Protocol.shutdown_frame ?id ());
      stop t
    | Protocol.Run jreq -> (
      add_pending conn 1;
      match enqueue t [ queued_of t conn (Direct id) jreq ] with
      | `Ok -> ()
      | (`Stopping | `Full _) as r -> reject t conn id 1 r)
    | Protocol.Suite jreqs -> (
      let n = List.length jreqs in
      let agg =
        {
          agg_mutex = Mutex.create ();
          remaining = n;
          slots = Array.make n None;
          agg_id = id;
        }
      in
      add_pending conn n;
      let items =
        List.mapi
          (fun i jreq ->
            (* children reply through the aggregate; per-job streams
               would interleave meaninglessly *)
            queued_of t conn
              (Collect (agg, i))
              { jreq with Protocol.progress = false })
          jreqs
      in
      match enqueue t items with
      | `Ok -> ()
      | (`Stopping | `Full _) as r -> reject t conn id n r))

let conn_loop t fd =
  let conn = make_conn fd in
  let ic = Unix.in_channel_of_descr fd in
  (try
     let rec loop () =
       match input_line ic with
       | line ->
         if String.trim line <> "" then handle_request t conn line;
         loop ()
       | exception End_of_file -> ()
     in
     loop ()
   with Sys_error _ | Unix.Unix_error _ -> ());
  (* keep the fd alive until every job this connection enqueued has
     delivered its reply (or dropped it) *)
  wait_pending conn;
  try Unix.close fd with Unix.Unix_error _ -> ()

let rec accept_loop t =
  match Unix.accept ~cloexec:true t.listen_fd with
  | fd, _ ->
    if stopping t then begin
      (try Unix.close fd with Unix.Unix_error _ -> ());
      ()
    end
    else begin
      ignore (Thread.create (fun () -> conn_loop t fd) ());
      accept_loop t
    end
  | exception Unix.Unix_error (Unix.ECONNABORTED, _, _) -> accept_loop t
  | exception Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* lifecycle                                                           *)

let logf t fmt =
  if t.cfg.quiet then Printf.ifprintf stderr fmt else Printf.eprintf fmt

let claim_socket path =
  if Sys.file_exists path then begin
    (* a leftover socket file from a dead daemon is reclaimed; a live
       one (something accepts our probe) is a usage error *)
    let probe = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      match Unix.connect probe (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error _ -> false
    in
    (try Unix.close probe with Unix.Unix_error _ -> ());
    if live then
      raise
        (Circuit.Error
           (Printf.sprintf "socket %S already has a live server" path));
    Sys.remove path
  end

let run cfg =
  if cfg.jobs < 1 then raise (Circuit.Error "serve: jobs must be >= 1");
  if cfg.queue_limit < 1 then
    raise (Circuit.Error "serve: queue limit must be >= 1");
  claim_socket cfg.socket_path;
  ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore);
  let listen_fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (match Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket_path) with
   | () -> ()
   | exception e ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     raise e);
  Unix.listen listen_fd 64;
  let t =
    {
      cfg;
      listen_fd;
      qmutex = Mutex.create ();
      qcond = Condition.create ();
      queue = Queue.create ();
      stopping = false;
      jobs_run = 0;
      cache = Cache.create ();
    }
  in
  logf t "serve: listening on %s (%d workers, queue limit %d)\n%!"
    cfg.socket_path cfg.jobs cfg.queue_limit;
  let acceptor = Thread.create (fun () -> accept_loop t) () in
  (* the workers: every pool domain (the calling one included) drains
     the queue until shutdown; queued jobs are finished, not dropped *)
  Domain_pool.with_pool ~jobs:cfg.jobs (fun pool ->
      Domain_pool.run pool (fun w -> drain t w));
  Thread.join acceptor;
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  (try Sys.remove cfg.socket_path with Sys_error _ -> ());
  let hits, misses = Cache.stats t.cache in
  logf t "serve: shut down after %d jobs (cache: %d hits, %d misses)\n%!"
    t.jobs_run hits misses
