(** Content-addressed store of finished job results.

    Keys digest operation + {!Ppet_core.Params.fingerprint} + canonical
    circuit text + op-specific knobs, so repeat submissions — by name or
    as identical inline text — are answered without recompiling.
    Thread-safe; lookups count hits and misses for the [stats] op. *)

type entry = {
  exit_code : int;
  output : string;
  stages : (string * int64) list;
      (** the stage summary of the original run, replayed on hits *)
}

type t

val create : unit -> t

val key : op:string -> params_fp:string -> content:string -> extra:string -> string
(** Injective over its parts (NUL-separated, then digested). *)

val find : t -> string -> entry option
(** Counts a hit or a miss. *)

val store : t -> string -> entry -> unit
val stats : t -> int * int
(** [(hits, misses)] so far. *)
