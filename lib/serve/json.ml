(* A self-contained JSON codec for the serve wire protocol.

   The repo deliberately carries no JSON dependency; the BENCH artefact
   reader in {!Ppet_core.Report} gets away with a line-oriented scan
   because it only reads files it wrote itself. The wire protocol has no
   such luxury — requests arrive from arbitrary clients and carry
   arbitrary .bench text inside string literals — so this is a real
   (small) recursive-descent parser over the full JSON grammar. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* parsing                                                             *)

type state = { src : string; mutable pos : int }

let error st fmt =
  Printf.ksprintf
    (fun msg ->
      raise (Parse_error (Printf.sprintf "offset %d: %s" st.pos msg)))
    fmt

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  while
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      true
    | _ -> false
  do
    ()
  done

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | Some c' -> error st "expected %C, found %C" c c'
  | None -> error st "expected %C, found end of input" c

let literal st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.src
    && String.sub st.src st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else error st "unrecognised literal"

(* UTF-8 encode one BMP code point (surrogate pairs are combined by the
   caller); enough for any \uXXXX escape a client can send *)
let utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let hex4 st =
  let v = ref 0 in
  for _ = 1 to 4 do
    (match peek st with
     | Some c ->
       let d =
         match c with
         | '0' .. '9' -> Char.code c - Char.code '0'
         | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
         | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
         | _ -> error st "bad \\u escape digit %C" c
       in
       v := (!v * 16) + d
     | None -> error st "truncated \\u escape");
    advance st
  done;
  !v

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' ->
      advance st;
      (match peek st with
       | Some '"' -> Buffer.add_char buf '"'; advance st
       | Some '\\' -> Buffer.add_char buf '\\'; advance st
       | Some '/' -> Buffer.add_char buf '/'; advance st
       | Some 'b' -> Buffer.add_char buf '\b'; advance st
       | Some 'f' -> Buffer.add_char buf '\012'; advance st
       | Some 'n' -> Buffer.add_char buf '\n'; advance st
       | Some 'r' -> Buffer.add_char buf '\r'; advance st
       | Some 't' -> Buffer.add_char buf '\t'; advance st
       | Some 'u' ->
         advance st;
         let cp = hex4 st in
         let cp =
           (* high surrogate: consume the matching \uXXXX low half *)
           if cp >= 0xD800 && cp <= 0xDBFF then begin
             expect st '\\';
             expect st 'u';
             let lo = hex4 st in
             if lo < 0xDC00 || lo > 0xDFFF then
               error st "unpaired surrogate";
             0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
           end
           else cp
         in
         utf8 buf cp
       | Some c -> error st "bad escape \\%C" c
       | None -> error st "truncated escape");
      go ()
    | Some c when Char.code c < 0x20 -> error st "raw control character in string"
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let consume () = advance st in
  (match peek st with Some '-' -> consume () | _ -> ());
  let digits () =
    let seen = ref false in
    while
      match peek st with
      | Some '0' .. '9' ->
        seen := true;
        consume ();
        true
      | _ -> false
    do
      ()
    done;
    !seen
  in
  if not (digits ()) then error st "malformed number";
  (match peek st with
   | Some '.' ->
     consume ();
     if not (digits ()) then error st "malformed number fraction"
   | _ -> ());
  (match peek st with
   | Some ('e' | 'E') ->
     consume ();
     (match peek st with Some ('+' | '-') -> consume () | _ -> ());
     if not (digits ()) then error st "malformed number exponent"
   | _ -> ());
  Num (float_of_string (String.sub st.src start (st.pos - start)))

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> error st "empty input"
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin
      advance st;
      Obj []
    end
    else begin
      let fields = ref [] in
      let rec members () =
        skip_ws st;
        let key = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        fields := (key, v) :: !fields;
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          members ()
        | Some '}' -> advance st
        | _ -> error st "expected ',' or '}' in object"
      in
      members ();
      Obj (List.rev !fields)
    end
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then begin
      advance st;
      List []
    end
    else begin
      let items = ref [] in
      let rec elements () =
        let v = parse_value st in
        items := v :: !items;
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          elements ()
        | Some ']' -> advance st
        | _ -> error st "expected ',' or ']' in array"
      in
      elements ();
      List (List.rev !items)
    end
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> error st "unexpected character %C" c

let of_string s =
  let st = { src = s; pos = 0 } in
  match parse_value st with
  | v ->
    skip_ws st;
    if st.pos <> String.length s then
      Error (Printf.sprintf "offset %d: trailing garbage" st.pos)
    else Ok v
  | exception Parse_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* printing — single line, so a value is always one protocol frame     *)

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let rec render buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> Buffer.add_string buf (number_to_string f)
  | Str s ->
    Buffer.add_char buf '"';
    escape buf s;
    Buffer.add_char buf '"'
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        render buf v)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        escape buf k;
        Buffer.add_string buf "\":";
        render buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  render buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* accessors                                                           *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function
  | Num f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_num = function Num f -> Some f | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_list = function List l -> Some l | _ -> None

let str_member key v = Option.bind (member key v) to_str
let int_member key v = Option.bind (member key v) to_int
let num_member key v = Option.bind (member key v) to_num
let bool_member key v = Option.bind (member key v) to_bool
let list_member key v = Option.bind (member key v) to_list
