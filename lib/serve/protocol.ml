module Params = Ppet_core.Params
module Bench_runner = Ppet_core.Bench_runner
module Campaign = Ppet_core.Campaign
module Cost_model = Ppet_core.Cost_model

(* ------------------------------------------------------------------ *)
(* requests                                                            *)

type source =
  | Spec of string
  | Text of { text : string; title : string option; file : string option }

type job =
  | Compile of { source : source; verbose : bool }
  | Lint of { source : source; rules : string list; verbose : bool }
  | Selftest of { source : source; max_width : int }
  | Analyze of { source : source; json : bool }
  | Bench of { benchmarks : string list; repeat : int }
  | Campaign of {
      profiles : string list;
      words : int;
      drop : bool;
      max_width : int;
      min_coverage : float;
      prune : bool;
    }
  | Sleep of { ms : int }

type job_request = {
  job : job;
  params : Params.t;
  model : Cost_model.t option;
  timeout_ms : int option;
  progress : bool;
}

type request =
  | Run of job_request
  | Suite of job_request list
  | Stats
  | Shutdown

type parsed = { request : request; id : string option }

let op_name = function
  | Compile _ -> "compile"
  | Lint _ -> "lint"
  | Selftest _ -> "selftest"
  | Analyze _ -> "analyze"
  | Bench _ -> "bench"
  | Campaign _ -> "campaign"
  | Sleep _ -> "sleep"

let ( let* ) = Result.bind

let params_of_json j =
  let d = Params.default in
  let lk = Option.value ~default:d.Params.l_k (Json.int_member "lk" j) in
  let beta = Option.value ~default:d.Params.beta (Json.int_member "beta" j) in
  let seed =
    match Json.int_member "seed" j with
    | Some s -> Int64.of_int s
    | None -> d.Params.seed
  in
  let* substrate =
    match Json.str_member "substrate" j with
    | None -> Ok d.Params.substrate
    | Some "csr" -> Ok Params.Csr
    | Some "hashed" -> Ok Params.Hashed
    | Some other ->
      Error (Printf.sprintf "substrate must be \"csr\" or \"hashed\", not %S" other)
  in
  let fault_cutover =
    Option.value ~default:d.Params.fault_cutover
      (Json.int_member "fault_cutover" j)
  in
  let* partitioner =
    match Json.str_member "partitioner" j with
    | None -> Ok d.Params.partitioner
    | Some name -> (
      match Params.partitioner_of_name name with
      | Some p -> Ok p
      | None ->
        Error
          (Printf.sprintf "partitioner must be one of %s, not %S"
             (String.concat ", "
                (List.map Params.partitioner_name Params.partitioners))
             name))
  in
  let p =
    { d with
      Params.l_k = lk; beta; seed; substrate; fault_cutover; partitioner }
  in
  match Params.validate p with Ok () -> Ok p | Error msg -> Error msg

(* "dispatch": "auto" ships the model inline as "model" (the daemon may
   run on another machine); anything else than auto/fixed is a parse
   error, as is a model that Cost_model.of_json rejects. *)
let model_of_json j =
  match Json.str_member "dispatch" j with
  | None | Some "fixed" -> Ok None
  | Some "auto" -> (
    match Json.str_member "model" j with
    | None -> Error "dispatch \"auto\" needs \"model\" (inline COST_MODEL.json text)"
    | Some text -> (
      match Cost_model.of_json text with
      | Ok m -> Ok (Some m)
      | Error msg -> Error (Printf.sprintf "model: %s" msg)))
  | Some other ->
    Error
      (Printf.sprintf "dispatch must be \"auto\" or \"fixed\", not %S" other)

let source_of_json j =
  match (Json.str_member "circuit" j, Json.str_member "bench" j) with
  | Some _, Some _ -> Error "give either \"circuit\" or \"bench\", not both"
  | Some spec, None -> Ok (Spec spec)
  | None, Some text ->
    Ok
      (Text
         {
           text;
           title = Json.str_member "title" j;
           file = Json.str_member "file" j;
         })
  | None, None -> Error "missing circuit: give \"circuit\" (a name) or \"bench\" (inline text)"

let string_list_member key j =
  match Json.member key j with
  | None -> Ok None
  | Some (Json.List items) ->
    let rec go acc = function
      | [] -> Ok (Some (List.rev acc))
      | Json.Str s :: rest -> go (s :: acc) rest
      | _ -> Error (Printf.sprintf "%S must be a list of strings" key)
    in
    go [] items
  | Some _ -> Error (Printf.sprintf "%S must be a list of strings" key)

let flag key j = Option.value ~default:false (Json.bool_member key j)

let job_of_json op j =
  match op with
  | "compile" ->
    let* source = source_of_json j in
    Ok (Compile { source; verbose = flag "verbose" j })
  | "lint" ->
    let* source = source_of_json j in
    let* rules = string_list_member "rules" j in
    Ok
      (Lint
         {
           source;
           rules = Option.value ~default:[] rules;
           verbose = flag "verbose" j;
         })
  | "selftest" ->
    let* source = source_of_json j in
    let max_width = Option.value ~default:14 (Json.int_member "max_width" j) in
    Ok (Selftest { source; max_width })
  | "analyze" ->
    let* source = source_of_json j in
    Ok (Analyze { source; json = flag "json" j })
  | "bench" ->
    let d = Bench_runner.default_plan in
    let* benchmarks = string_list_member "benchmarks" j in
    let benchmarks =
      Option.value ~default:d.Bench_runner.benchmarks benchmarks
    in
    let repeat =
      Option.value ~default:d.Bench_runner.repeat (Json.int_member "repeat" j)
    in
    Ok (Bench { benchmarks; repeat })
  | "campaign" ->
    let d = Campaign.default_plan in
    let* profiles = string_list_member "profiles" j in
    let profiles = Option.value ~default:d.Campaign.profiles profiles in
    let words = Option.value ~default:d.Campaign.words (Json.int_member "words" j) in
    let drop = Option.value ~default:d.Campaign.drop (Json.bool_member "drop" j) in
    let max_width =
      Option.value ~default:d.Campaign.max_width (Json.int_member "max_width" j)
    in
    let* min_coverage =
      match Json.member "min_coverage" j with
      | None -> Ok d.Campaign.min_coverage
      | Some v -> (
        match Json.to_num v with
        | Some f when f >= 0.0 && f <= 1.0 -> Ok f
        | _ -> Error "\"min_coverage\" must be a number in 0..1")
    in
    let prune = Option.value ~default:d.Campaign.prune (Json.bool_member "prune" j) in
    if profiles = [] then Error "campaign needs a non-empty \"profiles\" list"
    else if words < 1 then Error "\"words\" must be >= 1"
    else if max_width < 0 || max_width > 20 then
      Error "\"max_width\" must be in 0..20"
    else Ok (Campaign { profiles; words; drop; max_width; min_coverage; prune })
  | "sleep" -> (
    match Json.int_member "ms" j with
    | Some ms when ms >= 0 -> Ok (Sleep { ms })
    | Some _ -> Error "\"ms\" must be >= 0"
    | None -> Error "sleep needs an integer \"ms\"")
  | other -> Error (Printf.sprintf "unknown op %S" other)

let job_request_of_json op j =
  let* job = job_of_json op j in
  let* params = params_of_json j in
  let* model = model_of_json j in
  let* timeout_ms =
    match Json.member "timeout_ms" j with
    | None -> Ok None
    | Some v -> (
      match Json.to_int v with
      | Some ms when ms > 0 -> Ok (Some ms)
      | _ -> Error "\"timeout_ms\" must be a positive integer")
  in
  Ok { job; params; model; timeout_ms; progress = flag "progress" j }

let job_ops =
  [ "compile"; "lint"; "selftest"; "analyze"; "bench"; "campaign"; "sleep" ]

let request_of_json j =
  let id = Json.str_member "id" j in
  let* request =
    match Json.str_member "op" j with
    | None -> Error "missing \"op\""
    | Some "stats" -> Ok Stats
    | Some "shutdown" -> Ok Shutdown
    | Some "suite" -> (
      match Json.list_member "jobs" j with
      | None | Some [] -> Error "suite needs a non-empty \"jobs\" list"
      | Some jobs ->
        let rec go acc i = function
          | [] -> Ok (Suite (List.rev acc))
          | item :: rest -> (
            match Json.str_member "op" item with
            | None -> Error (Printf.sprintf "suite job %d: missing \"op\"" i)
            | Some op when not (List.mem op job_ops) ->
              Error
                (Printf.sprintf "suite job %d: %S is not a job op" i op)
            | Some op -> (
              match job_request_of_json op item with
              | Ok jr -> go (jr :: acc) (i + 1) rest
              | Error msg -> Error (Printf.sprintf "suite job %d: %s" i msg)))
        in
        go [] 0 jobs)
    | Some op when List.mem op job_ops ->
      let* jr = job_request_of_json op j in
      Ok (Run jr)
    | Some other -> Error (Printf.sprintf "unknown op %S" other)
  in
  Ok { request; id }

let parse line =
  match Json.of_string line with
  | Error msg -> Error (Printf.sprintf "bad JSON: %s" msg)
  | Ok (Json.Obj _ as j) -> request_of_json j
  | Ok _ -> Error "a request must be a JSON object"

(* ------------------------------------------------------------------ *)
(* replies                                                             *)

type job_result = {
  exit_code : int;
  output : string;
  cached : bool;
  stages : (string * int64) list;
}

type job_error = {
  stage : string;
  message : string;
  timeout : bool;
  busy : bool;
}

type job_outcome = Done of job_result | Failed of job_error

let with_id id fields =
  match id with None -> fields | Some s -> fields @ [ ("id", Json.Str s) ]

let stages_json stages =
  Json.List
    (List.map
       (fun (name, ns) ->
         Json.Obj
           [
             ("name", Json.Str name);
             ("ms", Json.Num (Int64.to_float ns /. 1e6));
           ])
       stages)

let result_fields r =
  [
    ("status", Json.Str "ok");
    ("exit_code", Json.Num (float_of_int r.exit_code));
    ("cached", Json.Bool r.cached);
    ("output", Json.Str r.output);
    ("stages", stages_json r.stages);
  ]

let error_fields e =
  [
    ("status", Json.Str "error");
    ("stage", Json.Str e.stage);
    ("message", Json.Str e.message);
  ]
  @ (if e.timeout then [ ("timeout", Json.Bool true) ] else [])
  @ if e.busy then [ ("busy", Json.Bool true) ] else []

let outcome_fields = function
  | Done r -> result_fields r
  | Failed e -> error_fields e

let result_frame ?id r =
  Json.Obj (with_id id (("type", Json.Str "result") :: result_fields r))

let error_frame ?id e =
  Json.Obj (with_id id (("type", Json.Str "error") :: error_fields e))

let progress_frame ?id ~stage phase =
  Json.Obj
    (with_id id
       [
         ("type", Json.Str "progress");
         ("stage", Json.Str stage);
         ("phase", Json.Str (match phase with `Begin -> "begin" | `End -> "end"));
       ])

let suite_frame ?id outcomes =
  let ok, errors, cached, findings =
    List.fold_left
      (fun (ok, errors, cached, findings) o ->
        match o with
        | Done r ->
          ( ok + 1,
            errors,
            (cached + if r.cached then 1 else 0),
            (findings + if r.exit_code = 1 then 1 else 0) )
        | Failed _ -> (ok, errors + 1, cached, findings))
      (0, 0, 0, 0) outcomes
  in
  Json.Obj
    (with_id id
       [
         ("type", Json.Str "result");
         ("op", Json.Str "suite");
         ("status", Json.Str (if errors = 0 then "ok" else "error"));
         ("total", Json.Num (float_of_int (List.length outcomes)));
         ("ok", Json.Num (float_of_int ok));
         ("errors", Json.Num (float_of_int errors));
         ("findings", Json.Num (float_of_int findings));
         ("cached", Json.Num (float_of_int cached));
         ( "jobs",
           Json.List (List.map (fun o -> Json.Obj (outcome_fields o)) outcomes)
         );
       ])

let shutdown_frame ?id () =
  Json.Obj
    (with_id id
       [
         ("type", Json.Str "result");
         ("op", Json.Str "shutdown");
         ("status", Json.Str "ok");
       ])

let stats_frame ?id ~workers ~queue_depth ~queue_limit ~jobs_run ~cache_hits
    ~cache_misses () =
  let num n = Json.Num (float_of_int n) in
  Json.Obj
    (with_id id
       [
         ("type", Json.Str "result");
         ("op", Json.Str "stats");
         ("status", Json.Str "ok");
         ("workers", num workers);
         ("queue_depth", num queue_depth);
         ("queue_limit", num queue_limit);
         ("jobs_run", num jobs_run);
         ("cache_hits", num cache_hits);
         ("cache_misses", num cache_misses);
       ])
