(** JSON values for the serve wire protocol.

    Minimal by design: the repo carries no JSON dependency, and the
    protocol needs exactly a full-grammar parser (requests carry
    arbitrary .bench text inside string literals) and a single-line
    printer (one value = one newline-delimited protocol frame). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val of_string : string -> (t, string) result
(** Parse one complete JSON value; trailing non-whitespace is an error.
    Escapes (including [\uXXXX] with surrogate pairs) decode to UTF-8. *)

val to_string : t -> string
(** Render on a single line — newlines in strings are escaped, so the
    result is always exactly one protocol frame. Integral floats print
    without a decimal point; [of_string (to_string v)] = [Ok v] for any
    [v] whose numbers are integral or round-trip through [%.17g]. *)

(** Accessors return [None] on shape mismatch (wrong constructor or
    missing field) — protocol handlers turn [None] into typed error
    replies rather than exceptions. *)

val member : string -> t -> t option
val to_int : t -> int option
val to_num : t -> float option
val to_str : t -> string option
val to_bool : t -> bool option
val to_list : t -> t list option
val str_member : string -> t -> string option
val int_member : string -> t -> int option
val num_member : string -> t -> float option
val bool_member : string -> t -> bool option
val list_member : string -> t -> t list option
