(** The merced compile daemon: a Unix-socket server running
    {!Protocol} jobs on a {!Ppet_parallel.Domain_pool}.

    Architecture: one acceptor thread spawns a reader thread per
    connection; requests are parsed there and pushed onto a bounded
    queue; every pool worker (the calling domain included) drains the
    queue until shutdown. Jobs execute serially inside — one job, one
    worker — which is what makes their output byte-identical to the
    one-shot CLI; throughput comes from running many jobs at once.

    Degradation is explicit, never fatal: a full queue answers with a
    [busy] error frame (backpressure, the client retries), a malformed
    request with a [parse]-stage error, a failing job with the typed
    stage of its {!Ppet_check.Error} — the daemon survives all of them.
    [timeout_ms] bounds the time a job may wait in the queue; a job
    already running is not preempted (the cooperative [sleep] op is the
    exception, and the test hook for the timeout path).

    Each job records into its own {!Ppet_obs.Obs} trace via
    [with_scoped]; top-level spans become the reply's stage summary and,
    when the request asked for progress, live begin/end frames.
    Deterministic results (compile, lint, selftest) land in a
    content-addressed {!Cache}; bench timings never do. *)

type config = {
  socket_path : string;
  jobs : int;                      (** pool workers; >= 1 *)
  queue_limit : int;               (** bound before [busy] replies; >= 1 *)
  default_timeout_ms : int option; (** for requests without [timeout_ms] *)
  quiet : bool;                    (** suppress stderr lifecycle lines *)
}

val run : config -> unit
(** Serve until a [shutdown] request: claims the socket (reclaiming a
    dead daemon's leftover file; refusing a live one with
    {!Ppet_netlist.Circuit.Error}), processes jobs, then drains the
    queue, joins the workers and removes the socket file. *)
