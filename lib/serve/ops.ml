module Circuit = Ppet_netlist.Circuit
module Bench_parser = Ppet_netlist.Bench_parser
module Bench_writer = Ppet_netlist.Bench_writer
module Benchmarks = Ppet_netlist.Benchmarks
module Segment = Ppet_netlist.Segment
module S27 = Ppet_netlist.S27
module Merced = Ppet_core.Merced
module Report = Ppet_core.Report
module Params = Ppet_core.Params
module Cost_model = Ppet_core.Cost_model
module Campaign = Ppet_core.Campaign
module Fault_engine = Ppet_bist.Fault_engine
module Assign = Ppet_core.Assign
module Phasing = Ppet_core.Phasing
module Bench_runner = Ppet_core.Bench_runner
module Pet = Ppet_bist.Pet
module Simulator = Ppet_bist.Simulator
module Pipeline = Ppet_bist.Pipeline
module Lint_engine = Ppet_lint.Engine

type outcome = {
  exit_code : int;  (* the CLI contract: 0 clean, 1 findings, 2 failure *)
  output : string;  (* exactly the bytes the one-shot CLI prints *)
}

(* ------------------------------------------------------------------ *)
(* circuit loading                                                     *)

let load_circuit spec =
  if spec = "s27" then S27.circuit ()
  else if Sys.file_exists spec then
    if Filename.check_suffix spec ".v" then
      Ppet_netlist.Verilog.parse_file spec
    else Bench_parser.parse_file spec
  else
    match Benchmarks.find spec with
    | exception Not_found ->
      raise
        (Circuit.Error
           (Printf.sprintf
              "%S is neither a file, \"s27\", nor a known benchmark (%s)"
              spec
              (String.concat ", " Benchmarks.names)))
    | _ -> Benchmarks.circuit spec

(* The benchmark generator memoises into a plain Hashtbl; concurrent
   server jobs must not race it. The one-shot CLI goes through the same
   lock — uncontended, it is a handful of nanoseconds. *)
let load_mutex = Mutex.create ()

let load_circuit_locked spec =
  Mutex.protect load_mutex (fun () -> load_circuit spec)

let canonical c = Bench_writer.to_string c

(* ------------------------------------------------------------------ *)
(* auto-dispatch resolution                                            *)

(* The one place a `--dispatch auto` request turns into concrete knobs,
   shared by the one-shot CLI and the daemon so both front doors make
   the same decision for the same circuit. The result-bearing knobs
   (partitioner, word width, cutover) are independent of the pool
   width, so CLI and daemon outputs stay byte-identical even when their
   pools differ — only the jobs choice (wall clock) can diverge. *)
let dispatch ?pool ~model ~params c =
  let jobs_available =
    match pool with
    | Some p -> Ppet_parallel.Domain_pool.jobs p
    | None -> 1
  in
  let d = Cost_model.decide model ~jobs_available (Cost_model.stats_of_circuit c) in
  (Cost_model.apply_decision d params, d)

(* ------------------------------------------------------------------ *)
(* compile (the CLI's `partition`, human form)                         *)

let compile ?(verbose = false) ?locked ~params c =
  let r = Merced.run ~params ?locked c in
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Report.summary r);
  Buffer.add_char buf '\n';
  (match Merced.retiming_feasibility r with
   | `Feasible ->
     Buffer.add_string buf
       "  legal retiming covers every combinational cut net\n"
   | `Needs_mux n ->
     Printf.bprintf buf
       "  legal retiming blocked on %d cut nets (multiplexed cells)\n" n);
  if verbose then
    List.iteri
      (fun i (p : Assign.partition) ->
        Printf.bprintf buf "  partition %d: %d vertices, iota = %d%s%s\n" i
          (Array.length p.Assign.vertices)
          p.Assign.input_count
          (if p.Assign.oversize then " (oversize)" else "")
          (if p.Assign.locked then " (locked)" else ""))
      r.Merced.assignment.Assign.partitions;
  { exit_code = 0; output = Buffer.contents buf }

(* ------------------------------------------------------------------ *)
(* selftest                                                            *)

let selftest ?pool ?words ~params ~max_width c =
  let r = Merced.run ~params c in
  let sim = Simulator.create c in
  let segments = Merced.segments r in
  (* the batch policy the CLI and daemon share: the params cutover knob
     decides when a segment is worth fanning out over the pool, and
     [words] (from a dispatch decision) overrides the default width *)
  let policy =
    Fault_engine.Batch.policy ?words ?pool
      ~cutover:params.Params.fault_cutover ()
  in
  let buf = Buffer.create 512 in
  Printf.bprintf buf "circuit %s: %d segments\n" c.Circuit.title
    (List.length segments);
  List.iteri
    (fun i seg ->
      let w = Segment.input_count seg in
      if w > 0 && w <= max_width then begin
        let rep = Pet.run ~policy sim seg in
        Buffer.add_string buf (Format.asprintf "  segment %d: %a@." i Pet.pp rep)
      end
      else
        Printf.bprintf buf
          "  segment %d: iota = %d, skipped (exhaustive bound %d)\n" i w
          max_width)
    segments;
  let phasing = Phasing.compute r in
  Buffer.add_string buf (Format.asprintf "%a@." Phasing.pp phasing);
  let sched = Phasing.schedule r in
  Buffer.add_string buf (Format.asprintf "%a@." Pipeline.pp sched);
  { exit_code = 0; output = Buffer.contents buf }

(* ------------------------------------------------------------------ *)
(* analyze                                                             *)

let analyze ?pool ~params ~json c =
  let t = Ppet_core.Analyze.run ?pool ~params c in
  {
    exit_code = 0;
    output =
      (if json then Ppet_core.Analyze.to_json t
       else Ppet_core.Analyze.human t);
  }

(* ------------------------------------------------------------------ *)
(* lint                                                                *)

let lint_outcome ?(verbose = false) report =
  let lines = Lint_engine.to_human ~verbose report in
  let buf = Buffer.create 256 in
  List.iter
    (fun l ->
      Buffer.add_string buf l;
      Buffer.add_char buf '\n')
    lines;
  {
    exit_code = (if Lint_engine.findings report > 0 then 1 else 0);
    output = Buffer.contents buf;
  }

let lint ?pool ?rules ?verbose ~params c =
  lint_outcome ?verbose (Lint_engine.run_circuit ?pool ?rules ~params c)

let lint_text ?pool ?rules ?verbose ~params ?title ?file text =
  lint_outcome ?verbose (Lint_engine.run_text ?pool ?rules ~params ?title ?file text)

(* ------------------------------------------------------------------ *)
(* bench                                                               *)

let validate_benchmarks names =
  List.iter
    (fun name ->
      if
        name <> "s27"
        && (not (List.mem name Benchmarks.names))
        && not (List.mem name Benchmarks.synthetic_names)
      then
        raise
          (Circuit.Error
             (Printf.sprintf
                "%S is neither \"s27\", a known benchmark (%s), nor a \
                 synthetic profile (%s)"
                name
                (String.concat ", " Benchmarks.names)
                (String.concat ", " Benchmarks.synthetic_names))))
    names

let bench ~benchmarks ~repeat =
  validate_benchmarks benchmarks;
  if repeat < 1 then raise (Circuit.Error "repeat must be >= 1");
  let entries =
    Mutex.protect load_mutex (fun () ->
        Bench_runner.run { Bench_runner.benchmarks; repeat; jobs = 1 })
  in
  { exit_code = 0; output = Report.bench_json ~name:"pipeline" ~entries }

(* ------------------------------------------------------------------ *)
(* campaign                                                            *)

let campaign ?pool (plan : Campaign.plan) =
  let report = Campaign.run ?pool plan in
  let failures = Campaign.below_min plan report in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Campaign.human report);
  List.iter
    (fun (cr : Campaign.circuit_report) ->
      Printf.bprintf buf
        "coverage gate: %s at %.2f%% is below the %.2f%% minimum\n"
        cr.Campaign.circuit
        (100.0 *. cr.Campaign.coverage)
        (100.0 *. plan.Campaign.min_coverage))
    failures;
  ( { exit_code = (if failures = [] then 0 else 1); output = Buffer.contents buf },
    report )
