(** Client side of the serve protocol — what [merced submit] and the
    tests speak. *)

type connection

val connect : ?retry_for:float -> string -> connection
(** Connect to the daemon's socket, retrying for up to [retry_for]
    seconds (default 0: one attempt) to absorb a daemon still starting
    up. Raises {!Ppet_netlist.Circuit.Error} when the deadline passes. *)

val close : connection -> unit

val roundtrip :
  ?on_progress:(stage:string -> [ `Begin | `End ] -> unit) ->
  connection ->
  Json.t ->
  (Json.t, string) result
(** Send one request and wait for its final [result]/[error] frame,
    feeding any [progress] frames to the callback. [Error] means the
    transport failed (server gone, unparseable frame) — protocol-level
    failures arrive as [Ok] error frames. *)

val request :
  ?retry_for:float ->
  ?on_progress:(stage:string -> [ `Begin | `End ] -> unit) ->
  socket:string ->
  Json.t ->
  (Json.t, string) result
(** [connect], one {!roundtrip}, [close]. *)
