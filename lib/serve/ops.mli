(** The job bodies shared by the one-shot CLI and the serve daemon.

    Each operation renders its result into a string instead of printing,
    so the daemon can ship it over the wire and the CLI can
    [print_string] it — one code path, guaranteed byte-identical output
    through both front doors. Operations raise the same exceptions the
    CLI already maps to exit code 2 ({!Ppet_netlist.Circuit.Error},
    {!Ppet_check.Error.Error}); the daemon maps them to structured error
    replies instead. *)

type outcome = {
  exit_code : int;  (** the CLI contract: 0 clean, 1 findings, 2 failure *)
  output : string;  (** exactly the bytes the one-shot CLI prints *)
}

val load_circuit : string -> Ppet_netlist.Circuit.t
(** Resolve a circuit spec the way every subcommand does: ["s27"], an
    existing .bench or .v file path, or a registry benchmark name.
    Raises {!Ppet_netlist.Circuit.Error} otherwise. Not thread-safe
    (the benchmark generator memoises); the daemon uses
    {!load_circuit_locked}. *)

val load_circuit_locked : string -> Ppet_netlist.Circuit.t
(** {!load_circuit} under the process-wide load lock — the entry point
    for concurrent server jobs. *)

val canonical : Ppet_netlist.Circuit.t -> string
(** Canonical .bench text — the content half of the serve cache key, so
    a circuit submitted by name and the same circuit submitted inline
    address the same cache entry. *)

val compile :
  ?verbose:bool ->
  ?locked:(int -> bool) ->
  params:Ppet_core.Params.t ->
  Ppet_netlist.Circuit.t ->
  outcome
(** The CLI's [partition] (human form): summary, retiming feasibility,
    per-partition lines with [verbose]. Exit code 0. *)

val dispatch :
  ?pool:Ppet_parallel.Domain_pool.t ->
  model:Ppet_core.Cost_model.t ->
  params:Ppet_core.Params.t ->
  Ppet_netlist.Circuit.t ->
  Ppet_core.Params.t * Ppet_core.Cost_model.decision
(** Resolve [--dispatch auto] for one circuit: decide from the model
    and the circuit's pre-compile stats, fold the params-level knobs
    (partitioner, cutover) into [params], and hand back the full
    decision (jobs, words) for the batch policy. The single resolution
    point shared by the CLI and the daemon; the result-bearing knobs do
    not depend on the pool width, so both front doors stay
    byte-identical. *)

val selftest :
  ?pool:Ppet_parallel.Domain_pool.t ->
  ?words:int ->
  params:Ppet_core.Params.t ->
  max_width:int ->
  Ppet_netlist.Circuit.t ->
  outcome
(** Partition, pseudo-exhaustively fault-test every segment no wider
    than [max_width], print phasing and schedule. [words] overrides the
    batch-engine word width (a dispatch decision's [d_words]). Exit
    code 0. *)

val analyze :
  ?pool:Ppet_parallel.Domain_pool.t ->
  params:Ppet_core.Params.t ->
  json:bool ->
  Ppet_netlist.Circuit.t ->
  outcome
(** The static dataflow report ({!Ppet_core.Analyze}): constants,
    X-state, SCOAP extremes, per-segment untestable-fault counts. Exit
    code 0; deterministic bytes, so the daemon caches it. *)

val lint :
  ?pool:Ppet_parallel.Domain_pool.t ->
  ?rules:string list ->
  ?verbose:bool ->
  params:Ppet_core.Params.t ->
  Ppet_netlist.Circuit.t ->
  outcome
(** Lint an in-memory circuit, human rendering ([verbose] adds
    info-severity lines). Exit code 1 on findings, 0 when clean. *)

val lint_text :
  ?pool:Ppet_parallel.Domain_pool.t ->
  ?rules:string list ->
  ?verbose:bool ->
  params:Ppet_core.Params.t ->
  ?title:string ->
  ?file:string ->
  string ->
  outcome
(** Lint .bench text through the tolerant front-end (malformed input is
    findings, not a crash), matching [merced lint FILE.bench]. *)

val validate_benchmarks : string list -> unit
(** Raise {!Ppet_netlist.Circuit.Error} on any name that is neither
    ["s27"], a registry benchmark, nor a synthetic profile. *)

val bench : benchmarks:string list -> repeat:int -> outcome
(** Time the pipeline sweep serially (jobs = 1) and return the BENCH
    JSON document. Never cached by the daemon — timings are not a
    function of the inputs. *)

val campaign :
  ?pool:Ppet_parallel.Domain_pool.t ->
  Ppet_core.Campaign.plan ->
  outcome * Ppet_core.Campaign.report
(** Run a whole-chip self-test campaign. The outcome output is
    {!Ppet_core.Campaign.human} (plus one line per circuit missing the
    coverage gate; exit 1 when any does); the report is handed back so
    the CLI can also write BENCH_campaign.json. The human bytes are
    timing-free, so the daemon may cache them. *)
