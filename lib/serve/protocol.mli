(** The serve wire protocol: newline-delimited JSON over a Unix socket.

    Each line the client sends is one request object; each line the
    server sends is one reply frame. A job request is answered by zero
    or more progress frames (only when the request set [progress] to
    true) followed by exactly one result or error frame. Frames carry
    the request's [id] back verbatim when one was given, so a client
    may pipeline requests on one connection.

    Request ops and their fields (defaults in parentheses): [compile]
    with [verbose] (false); [lint] with [rules] (all) and [verbose];
    [selftest] with [max_width] (14); [bench] with [benchmarks] and
    [repeat]; [campaign] with [profiles] (all seventeen), [words] (8),
    [drop] (true), [max_width] (14) and [min_coverage] (0 — the probe is
    a CLI-side measurement and has no wire form); [sleep] with [ms] — a
    diagnostic job that holds a worker, streams a "sleep" stage and
    honours [timeout_ms]; [suite] with [jobs], a list of job objects
    answered by one aggregated reply; [stats]; [shutdown].

    A circuit is either [circuit] (a spec the server resolves: "s27", a
    benchmark name, a server-side path) or [bench] (inline .bench text,
    with optional [title] and [file] for diagnostics parity). Params
    fields [lk], [beta], [seed], [substrate], [fault_cutover],
    [partitioner] default to the CLI defaults. [dispatch] = "auto" with
    [model] (inline COST_MODEL.json text — the daemon may run on
    another machine, so the model ships with the request) enables
    per-circuit auto-dispatch; the parsed model rides on the request
    and its fingerprint joins the cache key. [timeout_ms] bounds the
    queue wait (running jobs are not preempted; only the cooperative
    [sleep] op aborts mid-flight). *)

type source =
  | Spec of string
  | Text of { text : string; title : string option; file : string option }

type job =
  | Compile of { source : source; verbose : bool }
  | Lint of { source : source; rules : string list; verbose : bool }
  | Selftest of { source : source; max_width : int }
  | Analyze of { source : source; json : bool }
  | Bench of { benchmarks : string list; repeat : int }
  | Campaign of {
      profiles : string list;
      words : int;
      drop : bool;
      max_width : int;
      min_coverage : float;
      prune : bool;
    }
  | Sleep of { ms : int }

type job_request = {
  job : job;
  params : Ppet_core.Params.t;
  model : Ppet_core.Cost_model.t option;
      (** [dispatch = "auto"]: the cost model shipped with the request;
          the server resolves per-circuit decisions through
          {!Ops.dispatch} *)
  timeout_ms : int option;  (** queue-wait bound; [None] = server default *)
  progress : bool;          (** stream per-stage progress frames *)
}

type request =
  | Run of job_request
  | Suite of job_request list
  | Stats
  | Shutdown

type parsed = { request : request; id : string option }

val op_name : job -> string

val parse : string -> (parsed, string) result
(** One request line to a request, or a message for the [parse]-stage
    error frame. *)

(** {2 Reply frames} *)

type job_result = {
  exit_code : int;                 (** the one-shot CLI's exit code *)
  output : string;                 (** the one-shot CLI's stdout, byte-identical *)
  cached : bool;
  stages : (string * int64) list;  (** top-level trace spans, name * ns *)
}

type job_error = {
  stage : string;   (** {!Ppet_check.Error.stage_name} vocabulary *)
  message : string;
  timeout : bool;
  busy : bool;      (** backpressure: queue full or server stopping *)
}

type job_outcome = Done of job_result | Failed of job_error

val result_frame : ?id:string -> job_result -> Json.t
val error_frame : ?id:string -> job_error -> Json.t
val progress_frame : ?id:string -> stage:string -> [ `Begin | `End ] -> Json.t
val suite_frame : ?id:string -> job_outcome list -> Json.t
(** Aggregated suite reply: per-job objects in manifest order plus
    [total]/[ok]/[errors]/[findings]/[cached] counts. *)

val shutdown_frame : ?id:string -> unit -> Json.t

val stats_frame :
  ?id:string ->
  workers:int ->
  queue_depth:int ->
  queue_limit:int ->
  jobs_run:int ->
  cache_hits:int ->
  cache_misses:int ->
  unit ->
  Json.t
