module Circuit = Ppet_netlist.Circuit

type connection = { fd : Unix.file_descr; ic : in_channel }

(* The daemon binds its socket before it starts accepting, but a client
   racing the daemon's startup (the smoke test does, deliberately) needs
   a grace period; [retry_for] polls until the connect lands. *)
let connect ?(retry_for = 0.) path =
  let deadline = Unix.gettimeofday () +. retry_for in
  let rec go () =
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> { fd; ic = Unix.in_channel_of_descr fd }
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      if Unix.gettimeofday () < deadline then begin
        Thread.delay 0.02;
        go ()
      end
      else
        raise
          (Circuit.Error
             (Printf.sprintf "cannot connect to %S: %s" path
                (Unix.error_message e)))
  in
  go ()

let close conn = try Unix.close conn.fd with Unix.Unix_error _ -> ()

let send conn json =
  let line = Json.to_string json ^ "\n" in
  let len = String.length line in
  let rec go off =
    if off < len then go (off + Unix.write_substring conn.fd line off (len - off))
  in
  go 0

let read_frame conn =
  match input_line conn.ic with
  | line -> (
    match Json.of_string line with
    | Ok v -> Ok v
    | Error msg -> Error ("malformed reply: " ^ msg))
  | exception End_of_file -> Error "connection closed by server"

let roundtrip ?(on_progress = fun ~stage:_ _ -> ()) conn request =
  send conn request;
  let rec loop () =
    match read_frame conn with
    | Error _ as e -> e
    | Ok frame -> (
      match Json.str_member "type" frame with
      | Some "progress" ->
        (match (Json.str_member "stage" frame, Json.str_member "phase" frame) with
         | Some stage, Some "begin" -> on_progress ~stage `Begin
         | Some stage, Some "end" -> on_progress ~stage `End
         | _ -> ());
        loop ()
      | _ -> Ok frame)
  in
  loop ()

let request ?retry_for ?on_progress ~socket req =
  let conn = connect ?retry_for socket in
  Fun.protect
    ~finally:(fun () -> close conn)
    (fun () -> roundtrip ?on_progress conn req)
