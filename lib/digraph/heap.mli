(** Indexed binary min-heap over integer keys with float priorities.

    Supports the decrease-key operation needed by Dijkstra's algorithm:
    every key in [0, capacity) may be present at most once. *)

type t

val create : int -> t
(** [create capacity] makes an empty heap accepting keys in
    [0, capacity). *)

val is_empty : t -> bool

val size : t -> int

val mem : t -> int -> bool
(** [mem h k] tells whether key [k] is currently in the heap. *)

val insert : t -> int -> float -> unit
(** [insert h k p] adds key [k] with priority [p]. Raises
    [Invalid_argument] if [k] is already present or out of range. *)

val decrease : t -> int -> float -> unit
(** [decrease h k p] lowers the priority of present key [k] to [p].
    Raises [Invalid_argument] if [k] is absent or [p] is larger than the
    current priority. *)

val insert_or_decrease : t -> int -> float -> unit
(** Insert the key, or lower its priority if the new one is smaller;
    a no-op when the key is present with a smaller or equal priority. *)

val pop_min : t -> int * float
(** Remove and return the (key, priority) pair with minimal priority.
    Raises [Invalid_argument] on an empty heap. *)

val pop_min_key : t -> int
(** {!pop_min} without boxing the priority into a tuple — for hot loops
    that can recover it elsewhere (e.g. a Dijkstra settle loop, where it
    equals the vertex's current tentative distance). *)

val clear : t -> unit
(** Remove every key in O(size), leaving the heap ready for reuse —
    cheaper than reallocating when the same heap serves many runs. *)

val priority : t -> int -> float
(** Current priority of a present key. Raises [Not_found] otherwise. *)
