(** Flat int-indexed CSR (compressed sparse row) view of a {!Netgraph}.

    The hashed/array-of-arrays representation of {!Netgraph} is right for
    incremental construction, but its per-query allocation (successor
    dedup, per-net sink arrays behind two indirections) dominates the
    inner loops of the pipeline stages at scale. A [Csr.t] is a frozen,
    fully flat snapshot: every adjacency relation is one offset array
    plus one data array, so degree lookup is O(1), iteration touches
    contiguous memory, and no query allocates.

    All slice arrays follow the same convention: the elements of row [i]
    are [data.(off.(i)) .. data.(off.(i+1) - 1)].

    Row orders are chosen to match the corresponding {!Netgraph} query
    exactly, so a stage ported onto the CSR view visits vertices and
    nets in the same order as the hashed path and produces identical
    output:
    - [out_net] rows mirror [Netgraph.out_nets] (ascending net id);
    - [in_net] rows mirror [Netgraph.in_nets] (distinct, ascending);
    - [sink] rows mirror [Netgraph.net_sinks] (raw pin order, duplicate
      pins preserved);
    - [succ]/[pred] rows mirror [Netgraph.successors]/[predecessors]
      (distinct, sorted ascending). *)

type t = {
  n : int;                (** vertex count *)
  m : int;                (** net count *)
  net_src : int array;    (** net id -> source vertex *)
  sink_off : int array;   (** length m+1 *)
  sink : int array;       (** net id -> sink pins (duplicates preserved) *)
  out_off : int array;    (** length n+1 *)
  out_net : int array;    (** vertex -> outgoing net ids *)
  in_off : int array;     (** length n+1 *)
  in_net : int array;     (** vertex -> incoming net ids, distinct *)
  succ_off : int array;   (** length n+1 *)
  succ : int array;       (** vertex -> distinct successors, ascending *)
  pred_off : int array;   (** length n+1 *)
  pred : int array;       (** vertex -> distinct predecessors, ascending *)
}

val of_netgraph : Netgraph.t -> t
(** Snapshot the graph (freezes it first). Later [add_net] calls on the
    source graph are not reflected; take a new snapshot. *)

val n_nodes : t -> int
val n_nets : t -> int

val out_degree : t -> int -> int
(** Number of outgoing nets of a vertex. *)

val in_degree : t -> int -> int
(** Number of distinct incoming nets of a vertex. *)

(** {2 Scratch workspace}

    One workspace per solver/stage, reused across calls on the same
    graph — the allocation-free pool discipline of the fault engine
    applied to graph traversals. Marks are {e stamps}: a cell is set iff
    it equals the current [stamp] value, so clearing between uses is
    O(1) (bump the stamp) instead of O(n). *)

type workspace = {
  vmark : int array;     (** per-vertex stamp cells, length n *)
  vaux : int array;      (** per-vertex payload, valid where marked *)
  nmark : int array;     (** per-net stamp cells, length m *)
  queue : int array;     (** vertex ring/stack buffer, length n *)
  mutable stamp : int;   (** current generation *)
}

val workspace : t -> workspace
(** A fresh workspace sized for this graph. *)

val fresh_stamp : workspace -> int
(** Bump and return the generation; all mark cells become unset. *)
