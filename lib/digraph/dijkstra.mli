(** Single-source shortest paths over net distances (STEP 3.2 of the
    modified [Saturate_Network], Table 3).

    Traversing any branch of net [e] costs [dist e >= 0]. The result
    records, for every reachable vertex, the net through which it was
    settled; the set of those nets is the shortest-path tree whose flow
    the saturation procedure increments. *)

type tree = {
  dist : float array;      (** vertex -> distance, [infinity] if unreachable *)
  via : int array;         (** vertex -> settling net id, [-1] for the source
                               and unreachable vertices *)
  tree_nets : int array;   (** distinct nets of the shortest-path tree *)
}

val run : Netgraph.t -> dist:(int -> float) -> src:int -> tree
(** Raises [Invalid_argument] if some net has a negative distance. *)

type workspace
(** Preallocated dist/parent/settled arrays and heap, reusable across
    runs on one graph — the saturation loop's per-call allocations
    removed. *)

val workspace : ?csr:Csr.t -> Netgraph.t -> workspace
(** A workspace sized for [g]'s current node and net counts. Passing
    [csr] (a {!Csr.of_netgraph} snapshot of the same graph) makes
    {!run_into} relax over the flat rows instead of the Netgraph
    queries — the identical relaxation sequence, minus the per-vertex
    array fetches. Raises [Invalid_argument] on a size mismatch. *)

val run_into : workspace -> Netgraph.t -> dist:(int -> float) -> src:int -> tree
(** Exactly {!run}, but computing into the workspace: the returned
    tree's [dist] and [via] arrays {e alias the workspace} and are
    only valid until the next [run_into] on it ([tree_nets] is fresh).
    Raises [Invalid_argument] if the workspace is too small for the
    graph (e.g. nets were added after {!workspace}). *)

val path_to : tree -> Netgraph.t -> int -> int list
(** [path_to t g v] is the list of net ids on the tree path from the
    source to [v], source side first. Raises [Not_found] when [v] is
    unreachable. *)
