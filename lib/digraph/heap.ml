type t = {
  keys : int array;           (* heap slot -> key *)
  prios : float array;        (* heap slot -> priority *)
  pos : int array;            (* key -> heap slot, or -1 when absent *)
  mutable len : int;
}

let create capacity =
  if capacity < 0 then invalid_arg "Heap.create: negative capacity";
  {
    keys = Array.make (max capacity 1) (-1);
    prios = Array.make (max capacity 1) 0.0;
    pos = Array.make (max capacity 1) (-1);
    len = 0;
  }

let is_empty h = h.len = 0

let size h = h.len

let mem h k = k >= 0 && k < Array.length h.pos && h.pos.(k) >= 0

(* Hole-style sifting: carry the displaced entry in registers and write
   it once at its final slot, instead of a three-array swap per level.
   The comparison sequence — and therefore the resulting layout, and
   therefore tie-breaking everywhere downstream — is identical to the
   textbook swap formulation. *)
let sift_up h i =
  let k = h.keys.(i) and p = h.prios.(i) in
  let i = ref i in
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if h.prios.(parent) > p then begin
      h.keys.(!i) <- h.keys.(parent);
      h.prios.(!i) <- h.prios.(parent);
      h.pos.(h.keys.(!i)) <- !i;
      i := parent
    end
    else continue := false
  done;
  h.keys.(!i) <- k;
  h.prios.(!i) <- p;
  h.pos.(k) <- !i

let sift_down h i =
  let k = h.keys.(i) and p = h.prios.(i) in
  let i = ref i in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    let sp = ref p in
    if l < h.len && h.prios.(l) < !sp then begin
      smallest := l;
      sp := h.prios.(l)
    end;
    if r < h.len && h.prios.(r) < !sp then smallest := r;
    if !smallest <> !i then begin
      h.keys.(!i) <- h.keys.(!smallest);
      h.prios.(!i) <- h.prios.(!smallest);
      h.pos.(h.keys.(!i)) <- !i;
      i := !smallest
    end
    else continue := false
  done;
  h.keys.(!i) <- k;
  h.prios.(!i) <- p;
  h.pos.(k) <- !i

let insert h k p =
  if k < 0 || k >= Array.length h.pos then invalid_arg "Heap.insert: key out of range";
  if h.pos.(k) >= 0 then invalid_arg "Heap.insert: key already present";
  let i = h.len in
  h.keys.(i) <- k;
  h.prios.(i) <- p;
  h.pos.(k) <- i;
  h.len <- h.len + 1;
  sift_up h i

let decrease h k p =
  if not (mem h k) then invalid_arg "Heap.decrease: key absent";
  let i = h.pos.(k) in
  if p > h.prios.(i) then invalid_arg "Heap.decrease: priority increase";
  h.prios.(i) <- p;
  sift_up h i

let insert_or_decrease h k p =
  if mem h k then begin
    if p < h.prios.(h.pos.(k)) then decrease h k p
  end
  else insert h k p

let pop_min_key h =
  if h.len = 0 then invalid_arg "Heap.pop_min: empty heap";
  let k = h.keys.(0) in
  h.len <- h.len - 1;
  if h.len > 0 then begin
    let last = h.len in
    h.keys.(0) <- h.keys.(last);
    h.prios.(0) <- h.prios.(last);
    h.pos.(h.keys.(0)) <- 0;
    sift_down h 0
  end;
  h.pos.(k) <- -1;
  k

let pop_min h =
  if h.len = 0 then invalid_arg "Heap.pop_min: empty heap";
  let p = h.prios.(0) in
  let k = pop_min_key h in
  (k, p)

let clear h =
  for i = 0 to h.len - 1 do
    h.pos.(h.keys.(i)) <- -1
  done;
  h.len <- 0

let priority h k =
  if not (mem h k) then raise Not_found;
  h.prios.(h.pos.(k))
