type tree = {
  dist : float array;
  via : int array;
  tree_nets : int array;
}

(* Everything a run needs, preallocated once and reused: the
   multicommodity saturation loop calls Dijkstra thousands of times on
   one graph, and reallocating dist/heap/parent arrays per call used to
   dominate its constant factor. *)
type workspace = {
  ws_dist : float array;
  ws_via : int array;
  ws_settled : bool array;
  ws_heap : Heap.t;
  ws_net_seen : int array;  (* stamp per net, for tree-net dedup *)
  ws_net_buf : int array;
  mutable ws_stamp : int;
  ws_csr : Csr.t option;
      (* flat adjacency snapshot; when present, [run_into] relaxes over
         its rows (same order as the Netgraph queries, no per-vertex
         array fetches) *)
}

let workspace ?csr g =
  let n = Netgraph.n_nodes g in
  let m = Netgraph.n_nets g in
  (match csr with
   | Some c when Csr.n_nodes c <> n || Csr.n_nets c <> m ->
     invalid_arg "Dijkstra.workspace: csr does not match graph"
   | Some _ | None -> ());
  {
    ws_dist = Array.make (max n 1) infinity;
    ws_via = Array.make (max n 1) (-1);
    ws_settled = Array.make (max n 1) false;
    ws_heap = Heap.create n;
    ws_net_seen = Array.make (max m 1) 0;
    ws_net_buf = Array.make (max m 1) 0;
    ws_stamp = 0;
    ws_csr = csr;
  }

let run_into ws g ~dist ~src =
  let n = Netgraph.n_nodes g in
  if src < 0 || src >= n then invalid_arg "Dijkstra.run: bad source";
  if Array.length ws.ws_dist < n || Array.length ws.ws_net_seen < Netgraph.n_nets g
  then invalid_arg "Dijkstra.run_into: workspace too small for this graph";
  Netgraph.freeze g;
  let d = ws.ws_dist in
  let via = ws.ws_via in
  let settled = ws.ws_settled in
  let heap = ws.ws_heap in
  Array.fill d 0 n infinity;
  Array.fill via 0 n (-1);
  Array.fill settled 0 n false;
  Heap.clear heap;
  d.(src) <- 0.0;
  Heap.insert heap src 0.0;
  (match ws.ws_csr with
   | None ->
     while not (Heap.is_empty heap) do
       let v, dv = Heap.pop_min heap in
       if not settled.(v) then begin
         settled.(v) <- true;
         let relax e =
           let w = dist e in
           if w < 0.0 then invalid_arg "Dijkstra.run: negative net distance";
           let cand = dv +. w in
           Array.iter
             (fun u ->
               if (not settled.(u)) && cand < d.(u) then begin
                 d.(u) <- cand;
                 via.(u) <- e;
                 Heap.insert_or_decrease heap u cand
               end)
             (Netgraph.net_sinks g e)
         in
         Array.iter relax (Netgraph.out_nets g v)
       end
     done
   | Some csr ->
     (* same relaxation sequence over the flat rows (CSR rows mirror the
        Netgraph query orders); indices are in range by construction *)
     let out_off = csr.Csr.out_off and out_net = csr.Csr.out_net in
     let sink_off = csr.Csr.sink_off and sink = csr.Csr.sink in
     while not (Heap.is_empty heap) do
       (* the popped priority is d.(v) whenever the pop settles, so the
          tuple-free pop loses nothing *)
       let v = Heap.pop_min_key heap in
       if not (Array.unsafe_get settled v) then begin
         Array.unsafe_set settled v true;
         let dv = Array.unsafe_get d v in
         for i = Array.unsafe_get out_off v
             to Array.unsafe_get out_off (v + 1) - 1 do
           let e = Array.unsafe_get out_net i in
           let w = dist e in
           if w < 0.0 then invalid_arg "Dijkstra.run: negative net distance";
           let cand = dv +. w in
           for j = Array.unsafe_get sink_off e
               to Array.unsafe_get sink_off (e + 1) - 1 do
             let u = Array.unsafe_get sink j in
             if (not (Array.unsafe_get settled u))
                && cand < Array.unsafe_get d u
             then begin
               Array.unsafe_set d u cand;
               Array.unsafe_set via u e;
               Heap.insert_or_decrease heap u cand
             end
           done
         done
       end
     done);
  ws.ws_stamp <- ws.ws_stamp + 1;
  let stamp = ws.ws_stamp in
  let k = ref 0 in
  for v = n - 1 downto 0 do
    let e = via.(v) in
    if e >= 0 && ws.ws_net_seen.(e) <> stamp then begin
      ws.ws_net_seen.(e) <- stamp;
      ws.ws_net_buf.(!k) <- e;
      incr k
    end
  done;
  let count = !k in
  { dist = d; via; tree_nets = Array.init count (fun i -> ws.ws_net_buf.(count - 1 - i)) }

let run g ~dist ~src = run_into (workspace g) g ~dist ~src

let path_to t g v =
  if t.dist.(v) = infinity then raise Not_found;
  let rec walk v acc =
    let e = t.via.(v) in
    if e < 0 then acc else walk (Netgraph.net_src g e) (e :: acc)
  in
  walk v []
