(** Weakly connected components under a net filter.

    The clustering pass of the paper (Tables 4-6) removes the most
    congested nets and takes the remaining weakly connected pieces as
    candidate clusters; this module provides that primitive. *)

type partition = {
  cluster : int array;        (** vertex -> cluster id in [0, count) *)
  count : int;
  members : int array array;  (** cluster id -> member vertices *)
}

val weak : Netgraph.t -> keep:(int -> bool) -> partition
(** [weak g ~keep] groups vertices connected (ignoring direction) through
    nets satisfying [keep]. Vertices touched by no kept net form singleton
    clusters. Cluster ids are assigned by smallest member vertex. *)

val restrict : Netgraph.t -> vertices:int array -> keep:(int -> bool) -> int array array
(** [restrict g ~vertices ~keep] computes weak components of the subgraph
    induced by [vertices], connecting only through kept nets both of whose
    touched endpoints lie inside [vertices]. *)

val restrict_csr :
  Csr.t -> Csr.workspace -> vertices:int array -> keep:(int -> bool) ->
  int array array
(** {!restrict} over a flat snapshot, touching only the piece's own
    out-nets — O(piece + its pins) instead of O(all nets) per call.
    Pieces come out in the same order (ids by smallest member) with the
    same vertex order as {!restrict}. The workspace must belong to
    [csr]. *)

val cut_nets : Netgraph.t -> int array -> int list
(** [cut_nets g cluster_of] lists nets whose source and some sink lie in
    different clusters of the given vertex labelling. *)
