type t = {
  n : int;
  mutable srcs : int array;          (* net id -> source vertex *)
  mutable sinks : int array array;   (* net id -> sink vertices *)
  mutable n_nets : int;
  mutable out_idx : int array array; (* vertex -> outgoing net ids *)
  mutable in_idx : int array array;  (* vertex -> incoming net ids *)
  mutable frozen : bool;
}

let create n =
  if n < 0 then invalid_arg "Netgraph.create: negative size";
  {
    n;
    srcs = Array.make 8 (-1);
    sinks = Array.make 8 [||];
    n_nets = 0;
    out_idx = [||];
    in_idx = [||];
    frozen = false;
  }

let n_nodes g = g.n

let n_nets g = g.n_nets

let grow g =
  let cap = Array.length g.srcs in
  if g.n_nets >= cap then begin
    let srcs = Array.make (2 * cap) (-1) in
    Array.blit g.srcs 0 srcs 0 cap;
    g.srcs <- srcs;
    let sinks = Array.make (2 * cap) [||] in
    Array.blit g.sinks 0 sinks 0 cap;
    g.sinks <- sinks
  end

let add_net g ~src ~sinks =
  if src < 0 || src >= g.n then invalid_arg "Netgraph.add_net: bad source";
  if sinks = [] then invalid_arg "Netgraph.add_net: empty sink list";
  let check v =
    if v < 0 || v >= g.n then invalid_arg "Netgraph.add_net: bad sink"
  in
  List.iter check sinks;
  grow g;
  let id = g.n_nets in
  g.srcs.(id) <- src;
  g.sinks.(id) <- Array.of_list sinks;
  g.n_nets <- g.n_nets + 1;
  g.frozen <- false;
  id

let dedup_sorted a =
  let m = Array.length a in
  if m = 0 then a
  else begin
    Array.sort compare a;
    let k = ref 1 in
    for i = 1 to m - 1 do
      if a.(i) <> a.(i - 1) then begin
        a.(!k) <- a.(i);
        incr k
      end
    done;
    Array.sub a 0 !k
  end

let freeze g =
  if not g.frozen then begin
    let out_cnt = Array.make g.n 0 and in_cnt = Array.make g.n 0 in
    (* per-net sink dedup via stamps: a vertex is already counted for net
       [e] iff its cell holds the pass marker ([e] in the counting pass,
       [e + n_nets] in the filling pass — the second range cannot collide
       with leftovers of the first) *)
    let seen = Array.make (max g.n 1) (-1) in
    for e = 0 to g.n_nets - 1 do
      out_cnt.(g.srcs.(e)) <- out_cnt.(g.srcs.(e)) + 1;
      Array.iter
        (fun v ->
          if seen.(v) <> e then begin
            seen.(v) <- e;
            in_cnt.(v) <- in_cnt.(v) + 1
          end)
        g.sinks.(e)
    done;
    let out_idx = Array.init g.n (fun v -> Array.make out_cnt.(v) 0) in
    let in_idx = Array.init g.n (fun v -> Array.make in_cnt.(v) 0) in
    let out_fill = Array.make g.n 0 and in_fill = Array.make g.n 0 in
    for e = 0 to g.n_nets - 1 do
      let s = g.srcs.(e) in
      out_idx.(s).(out_fill.(s)) <- e;
      out_fill.(s) <- out_fill.(s) + 1;
      let marker = e + g.n_nets in
      Array.iter
        (fun v ->
          if seen.(v) <> marker then begin
            seen.(v) <- marker;
            in_idx.(v).(in_fill.(v)) <- e;
            in_fill.(v) <- in_fill.(v) + 1
          end)
        g.sinks.(e)
    done;
    g.out_idx <- out_idx;
    g.in_idx <- in_idx;
    g.frozen <- true
  end

let net_src g e =
  if e < 0 || e >= g.n_nets then invalid_arg "Netgraph.net_src";
  g.srcs.(e)

let net_sinks g e =
  if e < 0 || e >= g.n_nets then invalid_arg "Netgraph.net_sinks";
  g.sinks.(e)

let out_nets g v =
  freeze g;
  g.out_idx.(v)

let in_nets g v =
  freeze g;
  g.in_idx.(v)

let arcs g =
  let acc = ref [] in
  for e = g.n_nets - 1 downto 0 do
    let s = g.srcs.(e) in
    Array.iter (fun v -> acc := (s, v, e) :: !acc) g.sinks.(e)
  done;
  Array.of_list !acc

let successors g v =
  freeze g;
  let acc = ref [] in
  Array.iter
    (fun e -> Array.iter (fun w -> acc := w :: !acc) g.sinks.(e))
    g.out_idx.(v);
  dedup_sorted (Array.of_list !acc)

let predecessors g v =
  freeze g;
  let acc = ref [] in
  Array.iter (fun e -> acc := g.srcs.(e) :: !acc) g.in_idx.(v);
  dedup_sorted (Array.of_list !acc)

let iter_nets g f =
  for e = 0 to g.n_nets - 1 do
    f e ~src:g.srcs.(e) ~sinks:g.sinks.(e)
  done

let pp ppf g =
  Format.fprintf ppf "@[<v>graph: %d nodes, %d nets" g.n g.n_nets;
  iter_nets g (fun e ~src ~sinks ->
      Format.fprintf ppf "@,net %d: %d -> %a" e src
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           Format.pp_print_int)
        (Array.to_list sinks));
  Format.fprintf ppf "@]"
