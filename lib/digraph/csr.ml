type t = {
  n : int;
  m : int;
  net_src : int array;
  sink_off : int array;
  sink : int array;
  out_off : int array;
  out_net : int array;
  in_off : int array;
  in_net : int array;
  succ_off : int array;
  succ : int array;
  pred_off : int array;
  pred : int array;
}

let int_cmp (a : int) (b : int) = compare a b

(* Flatten rows given by [row v] (borrowed arrays, not copied). *)
let flatten n row =
  let off = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    off.(v + 1) <- off.(v) + Array.length (row v)
  done;
  let data = Array.make off.(n) 0 in
  for v = 0 to n - 1 do
    Array.blit (row v) 0 data off.(v) (Array.length (row v))
  done;
  (off, data)

(* Sorted-distinct CSR rows: for each vertex, [fill v tmp] writes its
   candidate targets into [tmp] and returns how many; the row becomes
   the sorted deduplicated candidates — the exact contract of
   [Netgraph.successors]/[predecessors], built once instead of per
   query. *)
let sorted_distinct n ~max_row ~fill =
  let tmp = Array.make (max max_row 1) 0 in
  let off = Array.make (n + 1) 0 in
  let cap = ref 16 in
  let data = ref (Array.make !cap 0) in
  let len = ref 0 in
  let push x =
    if !len >= !cap then begin
      let bigger = Array.make (2 * !cap) 0 in
      Array.blit !data 0 bigger 0 !len;
      data := bigger;
      cap := 2 * !cap
    end;
    !data.(!len) <- x;
    incr len
  in
  for v = 0 to n - 1 do
    let k = fill v tmp in
    if k > 0 then begin
      let row = Array.sub tmp 0 k in
      Array.sort int_cmp row;
      push row.(0);
      for i = 1 to k - 1 do
        if row.(i) <> row.(i - 1) then push row.(i)
      done
    end;
    off.(v + 1) <- !len
  done;
  (off, Array.sub !data 0 !len)

let of_netgraph g =
  Netgraph.freeze g;
  let n = Netgraph.n_nodes g in
  let m = Netgraph.n_nets g in
  let net_src = Array.init m (Netgraph.net_src g) in
  let sink_off, sink = flatten m (Netgraph.net_sinks g) in
  let out_off, out_net = flatten n (Netgraph.out_nets g) in
  let in_off, in_net = flatten n (Netgraph.in_nets g) in
  let max_out_pins = ref 0 in
  for v = 0 to n - 1 do
    let pins = ref 0 in
    Array.iter
      (fun e -> pins := !pins + (sink_off.(e + 1) - sink_off.(e)))
      (Netgraph.out_nets g v);
    if !pins > !max_out_pins then max_out_pins := !pins
  done;
  let succ_off, succ =
    sorted_distinct n ~max_row:!max_out_pins ~fill:(fun v tmp ->
        let k = ref 0 in
        for i = out_off.(v) to out_off.(v + 1) - 1 do
          let e = out_net.(i) in
          for j = sink_off.(e) to sink_off.(e + 1) - 1 do
            tmp.(!k) <- sink.(j);
            incr k
          done
        done;
        !k)
  in
  let max_in = ref 0 in
  for v = 0 to n - 1 do
    let d = in_off.(v + 1) - in_off.(v) in
    if d > !max_in then max_in := d
  done;
  let pred_off, pred =
    sorted_distinct n ~max_row:!max_in ~fill:(fun v tmp ->
        let k = ref 0 in
        for i = in_off.(v) to in_off.(v + 1) - 1 do
          tmp.(!k) <- net_src.(in_net.(i));
          incr k
        done;
        !k)
  in
  {
    n;
    m;
    net_src;
    sink_off;
    sink;
    out_off;
    out_net;
    in_off;
    in_net;
    succ_off;
    succ;
    pred_off;
    pred;
  }

let n_nodes t = t.n

let n_nets t = t.m

let out_degree t v = t.out_off.(v + 1) - t.out_off.(v)

let in_degree t v = t.in_off.(v + 1) - t.in_off.(v)

type workspace = {
  vmark : int array;
  vaux : int array;
  nmark : int array;
  queue : int array;
  mutable stamp : int;
}

let workspace t =
  {
    vmark = Array.make (max t.n 1) 0;
    vaux = Array.make (max t.n 1) 0;
    nmark = Array.make (max t.m 1) 0;
    queue = Array.make (max t.n 1) 0;
    stamp = 0;
  }

let fresh_stamp ws =
  ws.stamp <- ws.stamp + 1;
  ws.stamp
