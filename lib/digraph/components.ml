type partition = {
  cluster : int array;
  count : int;
  members : int array array;
}

let of_union_find uf n =
  let root_to_id = Hashtbl.create 16 in
  let cluster = Array.make n (-1) in
  let count = ref 0 in
  for v = 0 to n - 1 do
    let r = Union_find.find uf v in
    let id =
      try Hashtbl.find root_to_id r
      with Not_found ->
        let id = !count in
        Hashtbl.add root_to_id r id;
        incr count;
        id
    in
    cluster.(v) <- id
  done;
  let sizes = Array.make !count 0 in
  Array.iter (fun c -> sizes.(c) <- sizes.(c) + 1) cluster;
  let members = Array.init !count (fun c -> Array.make sizes.(c) 0) in
  let fill = Array.make !count 0 in
  for v = 0 to n - 1 do
    let c = cluster.(v) in
    members.(c).(fill.(c)) <- v;
    fill.(c) <- fill.(c) + 1
  done;
  { cluster; count = !count; members }

let weak g ~keep =
  let n = Netgraph.n_nodes g in
  let uf = Union_find.create n in
  Netgraph.iter_nets g (fun e ~src ~sinks ->
      if keep e then Array.iter (fun v -> Union_find.union uf src v) sinks);
  of_union_find uf n

let restrict g ~vertices ~keep =
  let inside = Hashtbl.create (Array.length vertices) in
  Array.iteri (fun i v -> Hashtbl.replace inside v i) vertices;
  let m = Array.length vertices in
  let uf = Union_find.create m in
  Netgraph.iter_nets g (fun e ~src ~sinks ->
      if keep e then
        match Hashtbl.find_opt inside src with
        | None -> ()
        | Some i ->
          Array.iter
            (fun v ->
              match Hashtbl.find_opt inside v with
              | Some j -> Union_find.union uf i j
              | None -> ())
            sinks);
  let part = of_union_find uf m in
  Array.map (fun idxs -> Array.map (fun i -> vertices.(i)) idxs) part.members

(* Piece-local [restrict]: same contract, but iterates only the piece's
   own out-nets instead of every net of the graph. The clustering loop
   re-splits pieces thousands of times; with the global scan each split
   costs O(|nets|), which is quadratic over a whole run. Only nets whose
   SOURCE lies inside connect (exactly as [restrict]): a net entering
   from outside joins nothing, even between its inside sinks. *)
let restrict_csr csr ws ~vertices ~keep =
  let k = Array.length vertices in
  let stamp = Csr.fresh_stamp ws in
  let vmark = ws.Csr.vmark and vaux = ws.Csr.vaux in
  for i = 0 to k - 1 do
    vmark.(vertices.(i)) <- stamp;
    vaux.(vertices.(i)) <- i
  done;
  let uf = Union_find.create k in
  let out_off = csr.Csr.out_off and out_net = csr.Csr.out_net in
  let sink_off = csr.Csr.sink_off and sink = csr.Csr.sink in
  for i = 0 to k - 1 do
    let v = vertices.(i) in
    for oi = out_off.(v) to out_off.(v + 1) - 1 do
      let e = out_net.(oi) in
      if keep e then
        for j = sink_off.(e) to sink_off.(e + 1) - 1 do
          let u = sink.(j) in
          if vmark.(u) = stamp then Union_find.union uf i vaux.(u)
        done
    done
  done;
  (* ids by first occurrence in piece-index order, as [of_union_find] *)
  let root_id = Array.make (max k 1) (-1) in
  let id_of = Array.make (max k 1) (-1) in
  let count = ref 0 in
  for i = 0 to k - 1 do
    let r = Union_find.find uf i in
    if root_id.(r) < 0 then begin
      root_id.(r) <- !count;
      incr count
    end;
    id_of.(i) <- root_id.(r)
  done;
  let sizes = Array.make (max !count 1) 0 in
  for i = 0 to k - 1 do
    sizes.(id_of.(i)) <- sizes.(id_of.(i)) + 1
  done;
  let members = Array.init !count (fun c -> Array.make sizes.(c) 0) in
  let fill = Array.make (max !count 1) 0 in
  for i = 0 to k - 1 do
    let c = id_of.(i) in
    members.(c).(fill.(c)) <- vertices.(i);
    fill.(c) <- fill.(c) + 1
  done;
  members

let cut_nets g cluster_of =
  let acc = ref [] in
  Netgraph.iter_nets g (fun e ~src ~sinks ->
      let c = cluster_of.(src) in
      if Array.exists (fun v -> cluster_of.(v) <> c) sinks then
        acc := e :: !acc);
  List.rev !acc
