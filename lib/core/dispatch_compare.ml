module Segment = Ppet_netlist.Segment
module Benchmarks = Ppet_netlist.Benchmarks
module Generator = Ppet_netlist.Generator
module S27 = Ppet_netlist.S27
module Simulator = Ppet_bist.Simulator
module Fault = Ppet_bist.Fault
module Fault_engine = Ppet_bist.Fault_engine
module Batch = Ppet_bist.Fault_engine.Batch
module Domain_pool = Ppet_parallel.Domain_pool
module Bench_stat = Ppet_obs.Bench_stat
module Prng = Ppet_digraph.Prng

(* `merced bench --compare`: run auto-dispatch against every forced
   configuration and prove each decision both fast and result-safe —
   the GPU-vs-CPU comparison-harness shape applied to the cost model.

   Per circuit, two stages are raced:

   - partition: every Params.partitioner, forced, on the same graph and
     seed. The auto row is the forced row of the partitioner the model
     picked; additionally each forced mode is re-run under the
     auto-derived params (decision cutover folded in, partitioner forced
     back) and the assignments must be bit-identical — the decision's
     perf knobs must not leak into results. Modes that cut worse than
     the chosen one, or that carry a worse quality prior
     (Cost_model.quality_factor — random tying flow on one tiny circuit
     does not make it a safe choice), are recorded but marked not
     [comparable], so the speed gate never rewards a quality loss.

   - fault_sim: the word widths 1/8/32, serial and (when jobs allow)
     pooled, against the auto policy (decision jobs/words/cutover). All
     configurations must produce the same detected-fault set — the batch
     engine's dispatch-invariance contract, checked end to end.

   The speed gate: per stage, the auto median must stay within
   [gate] x the best comparable forced median (plus an absolute slack
   that keeps microsecond-scale medians from flaking the gate). *)

type plan = {
  benchmarks : string list;
  repeat : int;
  jobs : int;           (* pooled configurations use this worker count *)
  params : Params.t;    (* base params; partitioner/cutover are the race *)
  model : Cost_model.t;
  gate : float;         (* auto must stay within gate x best forced *)
  slack_ns : float;     (* absolute grace on the gate *)
}

let default_gate = 1.1
let default_slack_ns = 1e5

type entry = {
  e_name : string;       (* "<circuit>/partition" or "<circuit>/fault_sim" *)
  config : string;       (* e.g. "flow", "jobs=2,words=8" *)
  chosen : bool;         (* the configuration auto-dispatch selected *)
  median_ns : float;
  mad_ns : float;
  ratio : float;         (* forced median / auto median; > 1 = auto faster *)
  result_match : bool;
  comparable : bool;     (* counts toward "best forced" in the gate *)
}

type report = {
  model_fp : string;
  gate : float;
  entries : entry list;
  failures : string list;  (* human lines; non-empty = exit 1 *)
}

let generate name =
  if name = "s27" then S27.circuit ()
  else
    let e = Benchmarks.find name in
    Generator.generate ~seed:0x5EEDL e.Benchmarks.profile

let assign_equal (a : Assign.t) (b : Assign.t) =
  a.Assign.cut_nets = b.Assign.cut_nets
  && List.length a.Assign.partitions = List.length b.Assign.partitions
  && List.for_all2
       (fun (p : Assign.partition) (q : Assign.partition) ->
         p.Assign.vertices = q.Assign.vertices
         && p.Assign.input_count = q.Assign.input_count)
       a.Assign.partitions b.Assign.partitions

(* cut count + oversize count: the quality a partitioner is judged on *)
let quality (a : Assign.t) =
  ( List.length a.Assign.cut_nets,
    List.length (List.filter (fun (p : Assign.partition) -> p.Assign.oversize)
                   a.Assign.partitions) )

let detected (o : Batch.outcome) =
  List.filter_map (fun (f, d) -> if d then Some f else None) o.Batch.results

let time ~repeat f =
  let s = Bench_stat.measure ~repeat f in
  (s.Bench_stat.median_ns, s.Bench_stat.mad_ns)

(* ------------------------------------------------------------------ *)

let partition_entries plan name c decision =
  let stats_name = name ^ "/partition" in
  let forced =
    List.map
      (fun p ->
        let params = { plan.params with Params.partitioner = p } in
        let r = Merced.run ~params c in
        let median_ns, mad_ns = time ~repeat:plan.repeat (fun () ->
            ignore (Merced.run ~params c))
        in
        (p, r, median_ns, mad_ns))
      Params.partitioners
  in
  let chosen_p = decision.Cost_model.d_partitioner in
  let _, chosen_r, auto_ns, _ =
    List.find (fun (p, _, _, _) -> p = chosen_p) forced
  in
  let chosen_q = quality chosen_r.Merced.assignment in
  List.map
    (fun (p, r, median_ns, mad_ns) ->
      (* the auto-derived params (decision cutover folded in) with this
         mode forced back must partition identically: the model's perf
         knobs are not allowed to leak into the result *)
      let auto_params =
        { (Cost_model.apply_decision decision plan.params) with
          Params.partitioner = p }
      in
      let r_auto = Merced.run ~params:auto_params c in
      let cuts, oversize = quality r.Merced.assignment in
      let chosen_cuts, chosen_oversize = chosen_q in
      {
        e_name = stats_name;
        config = Params.partitioner_name p;
        chosen = p = chosen_p;
        median_ns;
        mad_ns;
        ratio = (if auto_ns > 0.0 then median_ns /. auto_ns else 0.0);
        result_match = assign_equal r.Merced.assignment r_auto.Merced.assignment;
        (* realized quality no worse AND a no-worse quality prior: the
           gate asks "was there a safe config the dispatcher should have
           picked?", and a worse-prior baseline is not one *)
        comparable =
          cuts <= chosen_cuts && oversize <= chosen_oversize
          && Cost_model.quality_factor p <= Cost_model.quality_factor chosen_p;
      })
    forced

let fault_entries plan name c decision chosen_r =
  match Merced.segments chosen_r with
  | [] -> []
  | s :: rest ->
    let seg =
      List.fold_left
        (fun best s ->
          if Array.length s.Segment.members > Array.length best.Segment.members
          then s
          else best)
        s rest
    in
    let sim = Simulator.create c in
    let engine = Fault_engine.create sim seg in
    let faults = Fault.collapse c (Fault.of_segment c seg) in
    let n_in = Array.length (Segment.input_signals seg) in
    let rng = Prng.create 0xBE5CL in
    let word () =
      Int64.to_int (Int64.logand (Prng.next_int64 rng) (Int64.of_int max_int))
    in
    let patterns =
      List.init 16 (fun _ -> Array.init n_in (fun _ -> word ()))
    in
    let run_config ?pool ~words ~cutover () =
      let policy =
        Batch.policy ~words ?pool ~drop:Batch.Keep ~cutover ()
      in
      let o = Batch.run engine policy ~patterns faults in
      let median_ns, mad_ns = time ~repeat:plan.repeat (fun () ->
          ignore (Batch.run engine policy ~patterns faults))
      in
      (detected o, median_ns, mad_ns)
    in
    let auto_jobs = decision.Cost_model.d_jobs in
    let auto_words = decision.Cost_model.d_words in
    let auto_cutover = decision.Cost_model.d_cutover in
    let with_pool jobs f =
      if jobs <= 1 then f None
      else Domain_pool.with_pool ~jobs (fun p -> f (Some p))
    in
    let auto_detected, auto_ns, auto_mad =
      with_pool auto_jobs (fun pool ->
          run_config ?pool ~words:auto_words ~cutover:auto_cutover ())
    in
    let e_name = name ^ "/fault_sim" in
    let auto_entry =
      {
        e_name;
        config =
          Printf.sprintf "auto(jobs=%d,words=%d,cutover=%s)" auto_jobs
            auto_words
            (if auto_cutover >= Cost_model.no_cutover then "never"
             else string_of_int auto_cutover);
        chosen = true;
        median_ns = auto_ns;
        mad_ns = auto_mad;
        ratio = 1.0;
        result_match = true;
        comparable = true;
      }
    in
    let forced_jobs = if plan.jobs > 1 then [ 1; plan.jobs ] else [ 1 ] in
    let forced =
      List.concat_map
        (fun jobs ->
          List.map
            (fun words ->
              let det, median_ns, mad_ns =
                with_pool jobs (fun pool ->
                    (* cutover 1 makes the pooled configs actually pool:
                       the race is dispatch policy, not the knee *)
                    run_config ?pool ~words
                      ~cutover:(if jobs > 1 then 1 else plan.params.Params.fault_cutover)
                      ())
              in
              {
                e_name;
                config = Printf.sprintf "jobs=%d,words=%d" jobs words;
                chosen = false;
                median_ns;
                mad_ns;
                ratio = (if auto_ns > 0.0 then median_ns /. auto_ns else 0.0);
                (* the batch engine's dispatch-invariance contract,
                   checked end to end: every configuration detects the
                   same faults *)
                result_match = det = auto_detected;
                comparable = true;
              })
            [ 1; 8; 32 ])
        forced_jobs
    in
    auto_entry :: forced

let gate_failures (plan : plan) entries =
  (* group by e_name, gate the auto median against the best comparable *)
  let names =
    List.sort_uniq compare (List.map (fun e -> e.e_name) entries)
  in
  List.concat_map
    (fun n ->
      let rows = List.filter (fun e -> e.e_name = n) entries in
      let auto = List.find_opt (fun e -> e.chosen) rows in
      let mismatches =
        List.filter (fun e -> not e.result_match) rows
        |> List.map (fun e ->
               Printf.sprintf "%s: config %s result differs from auto" n
                 e.config)
      in
      let speed =
        match auto with
        | None -> []
        | Some a ->
          let best =
            List.fold_left
              (fun best e ->
                if e.comparable && e.median_ns > 0.0 then
                  Float.min best e.median_ns
                else best)
              infinity rows
          in
          if
            Float.is_finite best
            && a.median_ns > (plan.gate *. best) +. plan.slack_ns
          then
            [
              Printf.sprintf
                "%s: auto %.3gms exceeds %.2fx best forced %.3gms" n
                (a.median_ns /. 1e6) plan.gate (best /. 1e6);
            ]
          else []
      in
      mismatches @ speed)
    names

let run ?(progress = fun _ -> ()) plan =
  if plan.repeat < 1 then invalid_arg "Dispatch_compare.run: repeat must be >= 1";
  if plan.jobs < 1 then invalid_arg "Dispatch_compare.run: jobs must be >= 1";
  if plan.gate < 1.0 then invalid_arg "Dispatch_compare.run: gate must be >= 1";
  let entries =
    List.concat_map
      (fun name ->
        progress (name ^ "/partition");
        let c = generate name in
        let decision =
          Cost_model.decide plan.model ~jobs_available:plan.jobs
            (Cost_model.stats_of_circuit c)
        in
        let parts = partition_entries plan name c decision in
        let chosen_r =
          Merced.run
            ~params:{ plan.params with
                      Params.partitioner = decision.Cost_model.d_partitioner }
            c
        in
        progress (name ^ "/fault_sim");
        parts @ fault_entries plan name c decision chosen_r)
      plan.benchmarks
  in
  {
    model_fp = Cost_model.fingerprint plan.model;
    gate = plan.gate;
    entries;
    failures = gate_failures plan entries;
  }

(* ------------------------------------------------------------------ *)
(* rendering                                                           *)

let human report =
  let buf = Buffer.create 1024 in
  Printf.bprintf buf "dispatch compare (model %s, gate %.2fx)\n"
    (String.sub report.model_fp 0 8)
    report.gate;
  Printf.bprintf buf "%-18s %-28s %9s %7s %6s %5s\n" "stage" "config"
    "median" "ratio" "match" "cmp";
  List.iter
    (fun e ->
      Printf.bprintf buf "%-18s %-28s %8.3gms %6.2fx %6s %5s%s\n" e.e_name
        e.config
        (e.median_ns /. 1e6)
        e.ratio
        (if e.result_match then "ok" else "DIFF")
        (if e.comparable then "yes" else "no")
        (if e.chosen then "  <- auto" else ""))
    report.entries;
  (match report.failures with
   | [] -> Buffer.add_string buf "dispatch gate: ok\n"
   | fs ->
     List.iter (fun f -> Printf.bprintf buf "dispatch gate: FAILED: %s\n" f) fs);
  Buffer.contents buf

(* Line-oriented like every BENCH artefact: one entry per line, fixed
   key order. *)
let to_json ?(normalise = false) report =
  let buf = Buffer.create 2048 in
  let ns x = if normalise then 0.0 else x in
  Printf.bprintf buf
    "{\n  \"name\": \"dispatch\",\n  \"schema_version\": 1,\n  \
     \"model\": \"%s\",\n  \"gate\": %.6g,\n  \"entries\": ["
    (if normalise then "" else report.model_fp)
    report.gate;
  List.iteri
    (fun i e ->
      Printf.bprintf buf
        "%s\n    { \"name\": \"%s\", \"config\": \"%s\", \"chosen\": %b, \
         \"median_ns\": %.6g, \"mad_ns\": %.6g, \"ratio\": %.6g, \
         \"result_match\": %b, \"comparable\": %b }"
        (if i = 0 then "" else ",")
        (String.escaped e.e_name) (String.escaped e.config) e.chosen
        (ns e.median_ns) (ns e.mad_ns) (ns e.ratio) e.result_match
        e.comparable)
    report.entries;
  Printf.bprintf buf "\n  ],\n  \"failures\": %d\n}\n"
    (List.length report.failures);
  Buffer.contents buf
