(** [Make_Group] / [Make_Set] — clustering by congestion-ordered net
    removal (paper Tables 4–7).

    Starting from the most congested distance value, nets with
    [d(e) >= boundary] are removed; the weakly connected components of
    what remains are the candidate clusters. Any cluster whose input
    count exceeds [l_k] is re-split at the next boundary value. The legal
    retiming budget (Eq. 6) is honoured during removal: once a strongly
    connected component has [beta * f] of its nets removed, its remaining
    internal nets become uncuttable ([d := 0], STEP 2.1.2.1 of
    Table 7). *)

type cluster = {
  vertices : int array;     (** member vertex ids, ascending *)
  input_count : int;        (** iota: entering nets + internal PIs *)
  oversize : bool;          (** true when boundaries ran out before the
                                cluster met the input constraint *)
  locked : bool;            (** user-locked region Merced must not touch
                                (Table 5, STEP 2) *)
}

type t = {
  clusters : cluster list;      (** sorted by input count, descending *)
  cluster_of : int array;       (** vertex -> index into [clusters] *)
  removed : bool array;         (** per net: removed during clustering *)
  forced_kept : bool array;     (** per net: protected by Eq. 6 *)
  cuts_used : int array;        (** per SCC component: c(SCC) *)
  boundaries_used : int;        (** how deep into the stack D we went *)
}

val input_count_of :
  Ppet_netlist.Circuit.t -> Ppet_digraph.Netgraph.t -> inside:(int -> bool) ->
  int array -> int
(** iota of an arbitrary vertex set: distinct nets entering from outside
    plus primary inputs among the members (Sec. 2.3, "including primary
    inputs"). *)

val make_group :
  ?locked:(int -> bool) ->
  ?csr:Ppet_digraph.Csr.t ->
  Ppet_netlist.Circuit.t ->
  Ppet_digraph.Netgraph.t ->
  Ppet_retiming.Scc_budget.t ->
  Flow.result ->
  Params.t ->
  t
(** [locked] (default: nothing) marks vertices the user excludes from
    the BIST conversion: they are gathered into one dedicated cluster
    that is never split (its nets are never removed) and never merged,
    exactly the lock option of the paper's [Make_Set] (Table 5).

    [csr] (a {!Ppet_digraph.Csr.of_netgraph} snapshot of [g]) switches
    the splitting loop onto the flat substrate: pieces jump straight to
    their next effective boundary instead of revisiting every boundary
    value, drained from a heap that replays the queue formulation's
    exact action order (see the lineage-label argument in the
    implementation). The result — clusters, removed/forced nets, cut
    budgets, boundaries_used — is identical. Raises [Invalid_argument]
    on a size mismatch between [csr] and [g]. *)

val cut_nets : t -> Ppet_digraph.Netgraph.t -> int list
(** Nets whose source and some sink lie in different clusters — the
    final cut set (removed nets that ended up internal to one cluster
    are healed, they need no A_CELL). *)
