module Netgraph = Ppet_digraph.Netgraph
module Components = Ppet_digraph.Components
module Circuit = Ppet_netlist.Circuit
module Gate = Ppet_netlist.Gate
module Scc_budget = Ppet_retiming.Scc_budget

type cluster = {
  vertices : int array;
  input_count : int;
  oversize : bool;
  locked : bool;
}

type t = {
  clusters : cluster list;
  cluster_of : int array;
  removed : bool array;
  forced_kept : bool array;
  cuts_used : int array;
  boundaries_used : int;
}

let input_count_of c g ~inside vertices =
  let entering = Hashtbl.create 16 in
  let pis = ref 0 in
  Array.iter
    (fun v ->
      if (Circuit.node c v).Circuit.kind = Gate.Input then incr pis;
      Array.iter
        (fun e ->
          if not (inside (Netgraph.net_src g e)) then
            Hashtbl.replace entering e ())
        (Netgraph.in_nets g v))
    vertices;
  Hashtbl.length entering + !pis

(* Remove the nets of [vertices] whose distance reaches [boundary],
   honouring the per-SCC budget: a removal inside component comp is
   allowed only while c(comp) < beta * f(comp); beyond that the net is
   forced kept forever (Table 7, STEP 2.1.2.1). *)
let remove_at st g sb beta ~distance vertices boundary =
  let removed, forced, cuts = st in
  Array.iter
    (fun v ->
      Array.iter
        (fun e ->
          if (not removed.(e)) && (not forced.(e)) && distance.(e) >= boundary
          then begin
            match Scc_budget.net_scc sb e with
            | None -> removed.(e) <- true
            | Some comp ->
              if cuts.(comp) < beta * Scc_budget.registers sb comp then begin
                cuts.(comp) <- cuts.(comp) + 1;
                removed.(e) <- true
              end
              else forced.(e) <- true
          end)
        (Netgraph.out_nets g v))
    vertices

let make_group ?(locked = fun _ -> false) c g sb (flow : Flow.result)
    (p : Params.t) =
  Ppet_obs.Obs.span "cluster.make_group" @@ fun () ->
  let n = Netgraph.n_nodes g in
  let m = Netgraph.n_nets g in
  let removed = Array.make m false in
  let forced = Array.make m false in
  let cuts = Array.make (Scc_budget.n_components sb) 0 in
  let st = (removed, forced, cuts) in
  let distance = flow.Flow.distance in
  let boundaries = Array.of_list (Flow.boundaries flow) in
  let n_bounds = Array.length boundaries in
  let inside_of vertices =
    let tbl = Hashtbl.create (Array.length vertices) in
    Array.iter (fun v -> Hashtbl.replace tbl v ()) vertices;
    fun v -> Hashtbl.mem tbl v
  in
  let iota vertices = input_count_of c g ~inside:(inside_of vertices) vertices in
  let keep e = not removed.(e) in
  (* work queue of (vertices, next boundary index to try) *)
  let finished = ref [] in
  let queue = Queue.create () in
  let boundaries_used = ref 0 in
  (* locked vertices form one untouchable cluster, set aside up front *)
  let locked_vertices = ref [] in
  let free_vertices = ref [] in
  for v = n - 1 downto 0 do
    if locked v then locked_vertices := v :: !locked_vertices
    else free_vertices := v :: !free_vertices
  done;
  let locked_vertices = Array.of_list !locked_vertices in
  if Array.length locked_vertices > 0 then
    finished :=
      [ {
          vertices = locked_vertices;
          input_count = iota locked_vertices;
          oversize = false;
          locked = true;
        } ];
  let initial = Array.of_list !free_vertices in
  if n_bounds > 0 && Array.length initial > 0 then begin
    remove_at st g sb p.Params.beta ~distance initial boundaries.(0);
    boundaries_used := 1
  end;
  Array.iter
    (fun piece -> Queue.add (piece, 1) queue)
    (Components.restrict g ~vertices:initial ~keep);
  while not (Queue.is_empty queue) do
    let vertices, next_b = Queue.pop queue in
    let iota_v = iota vertices in
    if iota_v <= p.Params.l_k then
      finished :=
        { vertices; input_count = iota_v; oversize = false; locked = false }
        :: !finished
    else if next_b >= n_bounds then
      finished :=
        { vertices; input_count = iota_v; oversize = true; locked = false }
        :: !finished
    else begin
      boundaries_used := max !boundaries_used (next_b + 1);
      remove_at st g sb p.Params.beta ~distance vertices boundaries.(next_b);
      let pieces = Components.restrict g ~vertices ~keep in
      match pieces with
      | [| single |] when Array.length single = Array.length vertices ->
        (* no net could be removed at this boundary; go deeper *)
        Queue.add (vertices, next_b + 1) queue
      | _ ->
        Array.iter (fun piece -> Queue.add (piece, next_b + 1) queue) pieces
    end
  done;
  let clusters =
    List.sort
      (fun a b -> compare (b.input_count, b.vertices) (a.input_count, a.vertices))
      !finished
  in
  let cluster_of = Array.make n (-1) in
  List.iteri
    (fun i cl -> Array.iter (fun v -> cluster_of.(v) <- i) cl.vertices)
    clusters;
  Ppet_obs.Obs.add Ppet_obs.Obs.Metric.Clusters_formed (List.length clusters);
  {
    clusters;
    cluster_of;
    removed;
    forced_kept = forced;
    cuts_used = cuts;
    boundaries_used = !boundaries_used;
  }

let cut_nets t g = Components.cut_nets g t.cluster_of
