module Netgraph = Ppet_digraph.Netgraph
module Components = Ppet_digraph.Components
module Csr = Ppet_digraph.Csr
module Circuit = Ppet_netlist.Circuit
module Gate = Ppet_netlist.Gate
module Scc_budget = Ppet_retiming.Scc_budget

type cluster = {
  vertices : int array;
  input_count : int;
  oversize : bool;
  locked : bool;
}

type t = {
  clusters : cluster list;
  cluster_of : int array;
  removed : bool array;
  forced_kept : bool array;
  cuts_used : int array;
  boundaries_used : int;
}

let input_count_of c g ~inside vertices =
  let entering = Hashtbl.create 16 in
  let pis = ref 0 in
  Array.iter
    (fun v ->
      if (Circuit.node c v).Circuit.kind = Gate.Input then incr pis;
      Array.iter
        (fun e ->
          if not (inside (Netgraph.net_src g e)) then
            Hashtbl.replace entering e ())
        (Netgraph.in_nets g v))
    vertices;
  Hashtbl.length entering + !pis

(* Remove the nets of [vertices] whose distance reaches [boundary],
   honouring the per-SCC budget: a removal inside component comp is
   allowed only while c(comp) < beta * f(comp); beyond that the net is
   forced kept forever (Table 7, STEP 2.1.2.1). *)
let remove_at st g sb beta ~distance vertices boundary =
  let removed, forced, cuts = st in
  Array.iter
    (fun v ->
      Array.iter
        (fun e ->
          if (not removed.(e)) && (not forced.(e)) && distance.(e) >= boundary
          then begin
            match Scc_budget.net_scc sb e with
            | None -> removed.(e) <- true
            | Some comp ->
              if cuts.(comp) < beta * Scc_budget.registers sb comp then begin
                cuts.(comp) <- cuts.(comp) + 1;
                removed.(e) <- true
              end
              else forced.(e) <- true
          end)
        (Netgraph.out_nets g v))
    vertices

let finalize n finished removed forced cuts boundaries_used =
  let clusters =
    List.sort
      (fun a b -> compare (b.input_count, b.vertices) (a.input_count, a.vertices))
      finished
  in
  let cluster_of = Array.make n (-1) in
  List.iteri
    (fun i cl -> Array.iter (fun v -> cluster_of.(v) <- i) cl.vertices)
    clusters;
  Ppet_obs.Obs.add Ppet_obs.Obs.Metric.Clusters_formed (List.length clusters);
  {
    clusters;
    cluster_of;
    removed;
    forced_kept = forced;
    cuts_used = cuts;
    boundaries_used;
  }

let make_group_hashed ~locked c g sb (flow : Flow.result) (p : Params.t) =
  let n = Netgraph.n_nodes g in
  let m = Netgraph.n_nets g in
  let removed = Array.make m false in
  let forced = Array.make m false in
  let cuts = Array.make (Scc_budget.n_components sb) 0 in
  let st = (removed, forced, cuts) in
  let distance = flow.Flow.distance in
  let boundaries = Array.of_list (Flow.boundaries flow) in
  let n_bounds = Array.length boundaries in
  let inside_of vertices =
    let tbl = Hashtbl.create (Array.length vertices) in
    Array.iter (fun v -> Hashtbl.replace tbl v ()) vertices;
    fun v -> Hashtbl.mem tbl v
  in
  let iota vertices = input_count_of c g ~inside:(inside_of vertices) vertices in
  let keep e = not removed.(e) in
  (* work queue of (vertices, next boundary index to try) *)
  let finished = ref [] in
  let queue = Queue.create () in
  let boundaries_used = ref 0 in
  (* locked vertices form one untouchable cluster, set aside up front *)
  let locked_vertices = ref [] in
  let free_vertices = ref [] in
  for v = n - 1 downto 0 do
    if locked v then locked_vertices := v :: !locked_vertices
    else free_vertices := v :: !free_vertices
  done;
  let locked_vertices = Array.of_list !locked_vertices in
  if Array.length locked_vertices > 0 then
    finished :=
      [ {
          vertices = locked_vertices;
          input_count = iota locked_vertices;
          oversize = false;
          locked = true;
        } ];
  let initial = Array.of_list !free_vertices in
  if n_bounds > 0 && Array.length initial > 0 then begin
    remove_at st g sb p.Params.beta ~distance initial boundaries.(0);
    boundaries_used := 1
  end;
  Array.iter
    (fun piece -> Queue.add (piece, 1) queue)
    (Components.restrict g ~vertices:initial ~keep);
  while not (Queue.is_empty queue) do
    let vertices, next_b = Queue.pop queue in
    let iota_v = iota vertices in
    if iota_v <= p.Params.l_k then
      finished :=
        { vertices; input_count = iota_v; oversize = false; locked = false }
        :: !finished
    else if next_b >= n_bounds then
      finished :=
        { vertices; input_count = iota_v; oversize = true; locked = false }
        :: !finished
    else begin
      boundaries_used := max !boundaries_used (next_b + 1);
      remove_at st g sb p.Params.beta ~distance vertices boundaries.(next_b);
      let pieces = Components.restrict g ~vertices ~keep in
      match pieces with
      | [| single |] when Array.length single = Array.length vertices ->
        (* no net could be removed at this boundary; go deeper *)
        Queue.add (vertices, next_b + 1) queue
      | _ ->
        Array.iter (fun piece -> Queue.add (piece, next_b + 1) queue) pieces
    end
  done;
  finalize n !finished removed forced cuts !boundaries_used

(* ------------------------------------------------------------------ *)
(* Flat path.

   The queue formulation above is a synchronized breadth-first walk over
   boundary indices: the FIFO holds at most two consecutive phase values,
   so every live piece visits boundary t before any piece visits t+1 —
   including the no-op visits where none of the piece's live nets reaches
   the boundary (the single-full-piece branch). Those no-op visits
   dominate on large circuits: each costs an O(piece) iota plus an
   O(all nets) restrict, repeated once per boundary value.

   The flat path skips straight to each piece's next effective boundary.
   This is sound because pieces are vertex-disjoint and a net belongs to
   its source vertex, so the removed/forced state of a piece's out-nets
   changes only through the piece's own actions: the first index j >=
   next_b with boundaries.(j) <= max live distance is stable until the
   piece acts. The one piece of shared state is the per-SCC cut budget,
   which makes removal order observable; to replay the queue's order
   exactly, pieces carry a lineage label (the path of child indices in
   the split tree) and actions are drained from a min-heap keyed by
   (boundary index, label). Within a phase the queue processes pieces in
   label-lexicographic order (children inherit their parent's position,
   restrict emits them in id order), and two coexisting labels always
   differ at a common index, so the heap reproduces the exact global
   action sequence — same removed/forced/cuts, same clusters, same
   boundaries_used. iota only counts nets entering from outside the
   piece, which no removal changes, so it is evaluated once per piece. *)

(* Lexicographic label order. Beware: polymorphic compare on arrays
   orders by length first, which is NOT lexicographic. Coexisting labels
   are never prefix-related (a parent leaves the heap before its
   children enter), so the common-index comparison always decides. *)
let label_cmp (a : int array) (b : int array) =
  let la = Array.length a and lb = Array.length b in
  let l = if la < lb then la else lb in
  let rec go i =
    if i = l then compare la lb
    else
      let d = compare a.(i) b.(i) in
      if d <> 0 then d else go (i + 1)
  in
  go 0

type piece = {
  verts : int array;
  act_b : int;          (* boundary index this piece acts at *)
  label : int array;    (* lineage in the split tree *)
  iv : int;             (* iota, constant over the piece's lifetime *)
}

let piece_before p q =
  p.act_b < q.act_b || (p.act_b = q.act_b && label_cmp p.label q.label < 0)

type pheap = { mutable data : piece array; mutable len : int }

let heap_push h pc =
  if h.len = Array.length h.data then begin
    let cap = if h.len = 0 then 16 else 2 * h.len in
    let data = Array.make cap pc in
    Array.blit h.data 0 data 0 h.len;
    h.data <- data
  end;
  let i = ref h.len in
  h.len <- h.len + 1;
  h.data.(!i) <- pc;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if piece_before h.data.(!i) h.data.(parent) then begin
      let tmp = h.data.(parent) in
      h.data.(parent) <- h.data.(!i);
      h.data.(!i) <- tmp;
      i := parent
    end
    else continue := false
  done

let heap_pop h =
  let top = h.data.(0) in
  h.len <- h.len - 1;
  h.data.(0) <- h.data.(h.len);
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let best = ref !i in
    if l < h.len && piece_before h.data.(l) h.data.(!best) then best := l;
    if r < h.len && piece_before h.data.(r) h.data.(!best) then best := r;
    if !best <> !i then begin
      let tmp = h.data.(!best) in
      h.data.(!best) <- h.data.(!i);
      h.data.(!i) <- tmp;
      i := !best
    end
    else continue := false
  done;
  top

let make_group_flat ~locked csr c g sb (flow : Flow.result) (p : Params.t) =
  let n = Netgraph.n_nodes g in
  let m = Netgraph.n_nets g in
  if Csr.n_nodes csr <> n || Csr.n_nets csr <> m then
    invalid_arg "Cluster.make_group: csr snapshot does not match graph";
  let ws = Csr.workspace csr in
  let removed = Array.make m false in
  let forced = Array.make m false in
  let cuts = Array.make (Scc_budget.n_components sb) 0 in
  let distance = flow.Flow.distance in
  let boundaries = Array.of_list (Flow.boundaries flow) in
  let n_bounds = Array.length boundaries in
  let beta = p.Params.beta in
  let out_off = csr.Csr.out_off and out_net = csr.Csr.out_net in
  let in_off = csr.Csr.in_off and in_net = csr.Csr.in_net in
  let net_src = csr.Csr.net_src in
  let iota verts =
    let stamp = Csr.fresh_stamp ws in
    let vmark = ws.Csr.vmark and nmark = ws.Csr.nmark in
    Array.iter (fun v -> vmark.(v) <- stamp) verts;
    let entering = ref 0 and pis = ref 0 in
    Array.iter
      (fun v ->
        if (Circuit.node c v).Circuit.kind = Gate.Input then incr pis;
        for i = in_off.(v) to in_off.(v + 1) - 1 do
          let e = in_net.(i) in
          if nmark.(e) <> stamp && vmark.(net_src.(e)) <> stamp then begin
            nmark.(e) <- stamp;
            incr entering
          end
        done)
      verts;
    !entering + !pis
  in
  let remove_at verts boundary =
    Array.iter
      (fun v ->
        for i = out_off.(v) to out_off.(v + 1) - 1 do
          let e = out_net.(i) in
          if (not removed.(e)) && (not forced.(e)) && distance.(e) >= boundary
          then begin
            match Scc_budget.net_scc sb e with
            | None -> removed.(e) <- true
            | Some comp ->
              if cuts.(comp) < beta * Scc_budget.registers sb comp then begin
                cuts.(comp) <- cuts.(comp) + 1;
                removed.(e) <- true
              end
              else forced.(e) <- true
          end
        done)
      verts
  in
  (* Smallest index in [b0, n_bounds) whose boundary value some live net
     of the piece still reaches; n_bounds when none does. Boundaries are
     strictly descending, so binary search. *)
  let jump verts b0 =
    if b0 >= n_bounds then n_bounds
    else begin
      let maxd = ref neg_infinity in
      Array.iter
        (fun v ->
          for i = out_off.(v) to out_off.(v + 1) - 1 do
            let e = out_net.(i) in
            if (not removed.(e)) && (not forced.(e)) && distance.(e) > !maxd
            then maxd := distance.(e)
          done)
        verts;
      if boundaries.(b0) <= !maxd then b0
      else if boundaries.(n_bounds - 1) > !maxd then n_bounds
      else begin
        (* invariant: boundaries.(lo) > maxd >= boundaries.(hi) *)
        let lo = ref b0 and hi = ref (n_bounds - 1) in
        while !hi - !lo > 1 do
          let mid = (!lo + !hi) / 2 in
          if boundaries.(mid) <= !maxd then hi := mid else lo := mid
        done;
        !hi
      end
    end
  in
  let keep e = not removed.(e) in
  let finished = ref [] in
  let boundaries_used = ref 0 in
  let heap = { data = [||]; len = 0 } in
  (* The queue walks every boundary in [b0, act_b), bumping
     boundaries_used at each no-op; collapsing the walk must apply the
     same bumps. *)
  let enqueue verts b0 label iv =
    let j = jump verts b0 in
    if j >= n_bounds then begin
      if b0 < n_bounds then boundaries_used := max !boundaries_used n_bounds;
      finished :=
        { vertices = verts; input_count = iv; oversize = true; locked = false }
        :: !finished
    end
    else heap_push heap { verts; act_b = j; label; iv }
  in
  let classify verts b0 label =
    let iv = iota verts in
    if iv <= p.Params.l_k then
      finished :=
        { vertices = verts; input_count = iv; oversize = false; locked = false }
        :: !finished
    else enqueue verts b0 label iv
  in
  let locked_vertices = ref [] in
  let free_vertices = ref [] in
  for v = n - 1 downto 0 do
    if locked v then locked_vertices := v :: !locked_vertices
    else free_vertices := v :: !free_vertices
  done;
  let locked_vertices = Array.of_list !locked_vertices in
  if Array.length locked_vertices > 0 then
    finished :=
      [ {
          vertices = locked_vertices;
          input_count = iota locked_vertices;
          oversize = false;
          locked = true;
        } ];
  let initial = Array.of_list !free_vertices in
  if n_bounds > 0 && Array.length initial > 0 then begin
    remove_at initial boundaries.(0);
    boundaries_used := 1
  end;
  Array.iteri
    (fun k piece -> classify piece 1 [| k |])
    (Components.restrict_csr csr ws ~vertices:initial ~keep);
  while heap.len > 0 do
    let pc = heap_pop heap in
    boundaries_used := max !boundaries_used (pc.act_b + 1);
    remove_at pc.verts boundaries.(pc.act_b);
    let pieces = Components.restrict_csr csr ws ~vertices:pc.verts ~keep in
    match pieces with
    | [| single |] when Array.length single = Array.length pc.verts ->
      (* stayed connected (removals bridged, or budget only forced);
         keep the label — it is still the same piece *)
      enqueue pc.verts (pc.act_b + 1) pc.label pc.iv
    | _ ->
      Array.iteri
        (fun i piece ->
          classify piece (pc.act_b + 1) (Array.append pc.label [| i |]))
        pieces
  done;
  finalize n !finished removed forced cuts !boundaries_used

let make_group ?(locked = fun _ -> false) ?csr c g sb (flow : Flow.result)
    (p : Params.t) =
  Ppet_obs.Obs.span "cluster.make_group" @@ fun () ->
  match csr with
  | None -> make_group_hashed ~locked c g sb flow p
  | Some csr -> make_group_flat ~locked csr c g sb flow p

let cut_nets t g = Components.cut_nets g t.cluster_of
