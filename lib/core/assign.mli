(** [Assign_CBIT] — greedy merging of small clusters into full-width
    CBITs (paper Table 8, Sec. 3.2).

    The per-bit CBIT cost falls with length (Table 1 / Fig. 4), so
    packing several small clusters behind one l_k-wide CBIT beats giving
    each its own small tester. The gain of a merge is
    [gamma = l_k - iota(merged)] (Eq. 7); among equal gains the merge
    removing more shared cut nets wins. *)

type partition = {
  vertices : int array;
  input_count : int;
  merged_from : int;   (** how many Make_Group clusters it absorbs *)
  oversize : bool;
  locked : bool;       (** user-locked region, kept out of the merge *)
}

type t = {
  partitions : partition list;  (** final CUTs, largest iota first *)
  partition_of : int array;     (** vertex -> index into [partitions] *)
  cut_nets : int list;          (** nets crossing partitions *)
  merges : int;                 (** total merge operations performed *)
}

val run :
  ?csr:Ppet_digraph.Csr.t ->
  Ppet_netlist.Circuit.t ->
  Ppet_digraph.Netgraph.t ->
  Cluster.t ->
  Params.t ->
  Ppet_digraph.Prng.t ->
  t
(** When more than [max_merge_candidates] clusters remain, each greedy
    step scores a deterministic random sample of that size (plus the
    smallest clusters, which are the likeliest mergees) instead of the
    whole list — the quality/speed knob documented in Params.

    [csr] (a snapshot of [g]) switches the pass onto the flat substrate:
    owner-array membership, stamped entering-net scoring, no hashing.
    Below the candidate cap the result is identical to the hashed path;
    above it the two paths draw the random sample differently (the flat
    one with a partial Fisher-Yates costing only the draws it keeps) and
    may pick different merges. Raises [Invalid_argument] on a size
    mismatch between [csr] and [g]. *)
