module Netgraph = Ppet_digraph.Netgraph

type stats = {
  result : Assign.t;
  passes : int;
  moves_applied : int;
}

let cost st ~l_k ~lambda =
  float_of_int (Partition_state.n_cut st)
  +. (lambda *. float_of_int (Partition_state.penalty st ~l_k))

let run ?(max_passes = 8) ?(lambda = 4.0) c g (p : Params.t) rng =
  let n = Netgraph.n_nodes g in
  let l_k = p.Params.l_k in
  let initial = Baseline_random.run c g p rng in
  let n_clusters = List.length initial.Assign.partitions in
  let labels = Array.copy initial.Assign.partition_of in
  let st = Partition_state.build c g ~labels ~n_clusters in
  let neighbour_labels v =
    let tbl = Hashtbl.create 4 in
    let add w = Hashtbl.replace tbl (Partition_state.label st w) () in
    Array.iter add (Netgraph.successors g v);
    Array.iter add (Netgraph.predecessors g v);
    Hashtbl.remove tbl (Partition_state.label st v);
    List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) tbl [])
  in
  let passes = ref 0 and applied = ref 0 in
  let improved = ref true in
  while !improved && !passes < max_passes do
    incr passes;
    improved := false;
    let locked = Array.make n false in
    let start_cost = cost st ~l_k ~lambda in
    let running = ref start_cost in
    let best_cost = ref start_cost in
    let trail = ref [] in
    let best_prefix = ref 0 in
    let continue = ref true in
    while !continue do
      (* best gain over unlocked vertices and their neighbour clusters *)
      let best = ref None in
      for v = 0 to n - 1 do
        if not locked.(v) then
          List.iter
            (fun b ->
              let gain = Partition_state.move_gain st ~l_k ~lambda v b in
              match !best with
              | Some (bg, _, _) when bg >= gain -> ()
              | Some _ | None -> best := Some (gain, v, b))
            (neighbour_labels v)
      done;
      match !best with
      | None -> continue := false
      | Some (gain, v, b) ->
        let a = Partition_state.label st v in
        Partition_state.move st v b;
        locked.(v) <- true;
        running := !running -. gain;
        trail := (v, a) :: !trail;
        if !running < !best_cost -. 1e-9 then begin
          best_cost := !running;
          best_prefix := List.length !trail
        end;
        (* a full sweep of negative moves past the best point rarely
           recovers; stop when far underwater *)
        if List.length !trail - !best_prefix > 30 then continue := false
    done;
    (* roll back to the best prefix *)
    let to_undo = List.length !trail - !best_prefix in
    List.iteri
      (fun i (v, a) -> if i < to_undo then Partition_state.move st v a)
      !trail;
    applied := !applied + !best_prefix;
    if !best_cost < start_cost -. 1e-9 then improved := true
  done;
  { result = Partition_state.to_assign c g p st; passes = !passes; moves_applied = !applied }
