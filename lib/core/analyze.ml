module Circuit = Ppet_netlist.Circuit
module Segment = Ppet_netlist.Segment
module To_graph = Ppet_netlist.To_graph
module Gate = Ppet_netlist.Gate
module Fault = Ppet_bist.Fault
module Csr = Ppet_digraph.Csr
module Dataflow = Ppet_analysis.Dataflow
module Ternary = Ppet_analysis.Ternary
module Scoap = Ppet_analysis.Scoap
module Untestable = Ppet_analysis.Untestable

type segment_stat = {
  seg_members : int;
  seg_inputs : int;
  seg_observed : int;
  seg_faults : int;
  seg_unexcitable : int;
  seg_unobservable : int;
  seg_blocked : int;
}

type t = {
  circuit : string;
  nodes : int;
  gates : int;
  dffs : int;
  pis : int;
  pos : int;
  depth : int;
  components : int;
  largest_component : int;
  levels_fwd : int;
  levels_bwd : int;
  const_zero : int;
  const_one : int;
  x_nodes : int;
  x_dffs : int;
  cc_max : int;
  co_max : int;
  co_unreachable : int;
  segments : segment_stat list;
  total_faults : int;
  total_untestable : int;
}

let run ?pool ~params c =
  let g = To_graph.partition_view c in
  let csr = Csr.of_netgraph g in
  let sched = Dataflow.prepare csr in
  let constants = Ternary.constants ?pool sched c in
  let init = Ternary.initializable ?pool sched c ~constants in
  let scoap = Scoap.compute ?pool sched c ~constants in
  let n = Circuit.size c in
  let const_zero = ref 0 and const_one = ref 0 in
  Array.iter
    (fun v ->
      if v = Ternary.zero then incr const_zero
      else if v = Ternary.one then incr const_one)
    constants;
  let x_nodes = ref 0 and x_dffs = ref 0 in
  for v = 0 to n - 1 do
    if not init.(v) then begin
      incr x_nodes;
      if (Circuit.node c v).Circuit.kind = Gate.Dff then incr x_dffs
    end
  done;
  (* the largest finite costs: infinity means "impossible", not "hard",
     so it belongs in its own counter, not in the maximum *)
  let cc_max = ref 0 and co_max = ref 0 and co_unreachable = ref 0 in
  for v = 0 to n - 1 do
    let consider m x = if x < Scoap.inf && x > !m then m := x in
    consider cc_max scoap.Scoap.cc0.(v);
    consider cc_max scoap.Scoap.cc1.(v);
    consider co_max scoap.Scoap.co.(v);
    if scoap.Scoap.co.(v) >= Scoap.inf then incr co_unreachable
  done;
  let r = Merced.run ~params c in
  let uctx = Untestable.ctx c in
  let segments =
    List.map
      (fun seg ->
        let faults = Fault.collapse c (Fault.of_segment c seg) in
        let cls = Untestable.classify uctx seg faults in
        let by r0 =
          List.length
            (List.filter (fun (_, r) -> r = r0) cls.Untestable.untestable)
        in
        {
          seg_members = Array.length seg.Segment.members;
          seg_inputs = Segment.input_count seg;
          seg_observed = Array.length seg.Segment.observed;
          seg_faults = List.length faults;
          seg_unexcitable = by Untestable.Unexcitable;
          seg_unobservable = by Untestable.Unobservable;
          seg_blocked = by Untestable.Blocked;
        })
      (Merced.segments r)
  in
  {
    circuit = c.Circuit.title;
    nodes = n;
    gates = Array.length (Circuit.combinational c);
    dffs = Array.length (Circuit.dffs c);
    pis = Array.length c.Circuit.inputs;
    pos = Array.length c.Circuit.outputs;
    depth = Array.fold_left max 0 (Circuit.levels c);
    components = Dataflow.n_components sched;
    largest_component = Dataflow.max_component sched;
    levels_fwd = Dataflow.n_levels sched Dataflow.Forward;
    levels_bwd = Dataflow.n_levels sched Dataflow.Backward;
    const_zero = !const_zero;
    const_one = !const_one;
    x_nodes = !x_nodes;
    x_dffs = !x_dffs;
    cc_max = !cc_max;
    co_max = !co_max;
    co_unreachable = !co_unreachable;
    segments;
    total_faults = List.fold_left (fun a s -> a + s.seg_faults) 0 segments;
    total_untestable =
      List.fold_left
        (fun a s -> a + s.seg_unexcitable + s.seg_unobservable + s.seg_blocked)
        0 segments;
  }

let seg_untestable s = s.seg_unexcitable + s.seg_unobservable + s.seg_blocked

let human t =
  let buf = Buffer.create 1024 in
  Printf.bprintf buf "analyze %s\n" t.circuit;
  Printf.bprintf buf
    "  structure: %d nodes (%d gates, %d dffs, %d pis, %d pos), depth %d\n"
    t.nodes t.gates t.dffs t.pis t.pos t.depth;
  Printf.bprintf buf
    "  dataflow: %d components (largest %d), %d forward levels, %d backward\n"
    t.components t.largest_component t.levels_fwd t.levels_bwd;
  Printf.bprintf buf
    "  constants: %d zero, %d one; x-state: %d nodes (%d dffs)\n"
    t.const_zero t.const_one t.x_nodes t.x_dffs;
  Printf.bprintf buf "  scoap: max cc %d, max co %d, %d unreachable\n"
    t.cc_max t.co_max t.co_unreachable;
  Printf.bprintf buf "  segments: %d, faults %d, untestable %d\n"
    (List.length t.segments)
    t.total_faults t.total_untestable;
  List.iteri
    (fun i s ->
      if seg_untestable s > 0 then
        Printf.bprintf buf
          "    seg %d: members %d, inputs %d, faults %d, untestable %d (%d \
           unexcitable, %d unobservable, %d blocked)\n"
          i s.seg_members s.seg_inputs s.seg_faults (seg_untestable s)
          s.seg_unexcitable s.seg_unobservable s.seg_blocked)
    t.segments;
  Buffer.contents buf

let to_json t =
  let buf = Buffer.create 2048 in
  Printf.bprintf buf
    "{\n  \"name\": \"analyze\",\n  \"circuit\": \"%s\",\n  \"nodes\": %d,\n  \
     \"gates\": %d,\n  \"dffs\": %d,\n  \"pis\": %d,\n  \"pos\": %d,\n  \
     \"depth\": %d,\n  \"components\": %d,\n  \"largest_component\": %d,\n  \
     \"levels_fwd\": %d,\n  \"levels_bwd\": %d,\n  \"const_zero\": %d,\n  \
     \"const_one\": %d,\n  \"x_nodes\": %d,\n  \"x_dffs\": %d,\n  \
     \"cc_max\": %d,\n  \"co_max\": %d,\n  \"co_unreachable\": %d,\n  \
     \"total_faults\": %d,\n  \"total_untestable\": %d,\n  \"segments\": ["
    t.circuit t.nodes t.gates t.dffs t.pis t.pos t.depth t.components
    t.largest_component t.levels_fwd t.levels_bwd t.const_zero t.const_one
    t.x_nodes t.x_dffs t.cc_max t.co_max t.co_unreachable t.total_faults
    t.total_untestable;
  List.iteri
    (fun i s ->
      Printf.bprintf buf
        "%s\n    { \"members\": %d, \"inputs\": %d, \"observed\": %d, \
         \"faults\": %d, \"unexcitable\": %d, \"unobservable\": %d, \
         \"blocked\": %d }"
        (if i = 0 then "" else ",")
        s.seg_members s.seg_inputs s.seg_observed s.seg_faults
        s.seg_unexcitable s.seg_unobservable s.seg_blocked)
    t.segments;
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf
