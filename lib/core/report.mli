(** Text and CSV rendering of Merced results — the rows of Tables 10/11
    (partition results) and Table 12 (area comparison). *)

val table10_header : string

val table10_row : Merced.result -> string
(** Circuit, DFFs, DFFs on SCC, cut nets on SCC, nets cut, CPU time. *)

val table12_header : string

val table12_row : l16:Merced.result -> l24:Merced.result option -> string
(** ACBIT/ATotal with/without retiming at l_k = 16 and (optionally) 24;
    the paper prints 0 for circuits whose l_k = 24 run makes no internal
    cut, which [None] reproduces for circuits outside Table 11. *)

val summary : Merced.result -> string
(** Multi-line human summary of one run. *)

val csv_header : string

val csv_row : Merced.result -> string
(** Machine-readable full record, one line. *)

type bench_circuit = {
  gates : int;  (** combinational cells of the measured circuit *)
  dffs : int;   (** flip-flops *)
  edges : int;  (** nets of the partition-view graph *)
  segments : int;
      (** Merced partition count under default params; [0] = not stamped
          (pre-compile stats, or an artefact recorded before the
          cost-model features existed) *)
  largest_cluster : int;
      (** member gates of the biggest combinational segment; [0] = not
          stamped *)
}
(** Structural identity of a benchmark's workload, recorded so a
    baseline can be rejected when the generated circuit changed shape —
    and, since the cost model landed, the feature vector
    {!Cost_model.features_of} predicts stage runtimes from. *)

val bench_stats_compatible : bench_circuit -> bench_circuit -> bool
(** Same workload? The structural triple must agree exactly; the
    partition-shape fields only when both sides stamped them ([0] acts
    as a wildcard so pre-cost-model baselines remain comparable). *)

type bench_entry = {
  entry_name : string;  (** e.g. ["s27/flow"] or ["fault_sim/cone"] *)
  median_ns : float;    (** median wall-clock per run *)
  mad_ns : float;       (** median absolute deviation of the samples *)
  jobs : int;           (** worker count the entry was measured at *)
  circuit_stats : bench_circuit option;
      (** present on pipeline-sweep entries; [None] keeps the emitted
          JSON byte-identical to the pre-stats schema *)
}
(** One measured row of a BENCH_*.json artefact. *)

val bench_json : name:string -> entries:bench_entry list -> string
(** The BENCH_*.json perf-baseline format:
    [{"name":..., "entries":[{"name","median_ns","mad_ns","jobs"},...]}]
    with optional ["gates"/"dffs"/"edges"] (and, when stamped,
    ["segments"/"largest_cluster"]) keys per entry when
    [circuit_stats] is set. Every bench group (fault-sim shootout,
    [merced bench] pipeline sweep) emits through this helper so
    artefacts stay schema-identical and future changes can diff against
    a recorded baseline. *)

val bench_entries_of_json : string -> bench_entry list
(** Read back entries from text {!bench_json} wrote — a line-oriented
    scan of this module's own output, not a general JSON parser. Lines
    that do not carry all four mandatory keys are skipped. *)
