module Circuit = Ppet_netlist.Circuit

let title r = r.Merced.circuit.Circuit.title

let table10_header =
  Printf.sprintf "%-10s %8s %8s %12s %9s %9s" "Circuit" "DFFs" "DFF/SCC"
    "cuts-on-SCC" "nets-cut" "CPU(s)"

let table10_row r =
  let b = r.Merced.breakdown in
  Printf.sprintf "%-10s %8d %8d %12d %9d %9.2f" (title r)
    b.Area_accounting.dffs_total b.Area_accounting.dffs_on_scc
    b.Area_accounting.cuts_on_scc b.Area_accounting.cuts_total
    r.Merced.cpu_seconds

let table12_header =
  Printf.sprintf "%-10s | %9s %9s | %9s %9s" "Circuit" "16 w/R" "16 w/o"
    "24 w/R" "24 w/o"

let table12_row ~l16 ~l24 =
  let b = l16.Merced.breakdown in
  let w24, wo24 =
    match l24 with
    | Some r ->
      ( Printf.sprintf "%9.1f" r.Merced.breakdown.Area_accounting.ratio_with,
        Printf.sprintf "%9.1f" r.Merced.breakdown.Area_accounting.ratio_without )
    | None -> (Printf.sprintf "%9s" "0", Printf.sprintf "%9s" "0")
  in
  Printf.sprintf "%-10s | %9.1f %9.1f | %s %s" (title l16)
    b.Area_accounting.ratio_with b.Area_accounting.ratio_without w24 wo24

let summary r =
  let b = r.Merced.breakdown in
  let buf = Buffer.create 512 in
  let n_partitions = List.length r.Merced.assignment.Assign.partitions in
  Printf.bprintf buf "Merced result for %s (l_k = %d)\n" (title r)
    r.Merced.params.Params.l_k;
  Printf.bprintf buf "  flow: %d shortest-path trees injected\n"
    r.Merced.flow.Flow.iterations;
  Printf.bprintf buf "  clusters: %d (boundaries used: %d)\n"
    (List.length r.Merced.clustering.Cluster.clusters)
    r.Merced.clustering.Cluster.boundaries_used;
  Printf.bprintf buf "  partitions: %d after %d merges\n" n_partitions
    r.Merced.assignment.Assign.merges;
  Printf.bprintf buf "  cut nets: %d (%d on SCCs; %d retimable, %d muxed)\n"
    b.Area_accounting.cuts_total b.Area_accounting.cuts_on_scc
    b.Area_accounting.retimable b.Area_accounting.mux_excess;
  Printf.bprintf buf
    "  CBIT area: %.0f units w/ retiming vs %.0f w/o (%.1f%% vs %.1f%% of \
     total)\n"
    b.Area_accounting.area_with_retiming
    b.Area_accounting.area_without_retiming b.Area_accounting.ratio_with
    b.Area_accounting.ratio_without;
  Printf.bprintf buf "  sigma (Eq. 4): %.2f DFF; testing time: %.3g cycles\n"
    r.Merced.sigma_dff r.Merced.testing_time;
  Printf.bprintf buf "  CPU: %.2f s" r.Merced.cpu_seconds;
  Buffer.contents buf

let csv_header =
  "circuit,l_k,dffs,dffs_on_scc,cuts_total,cuts_on_scc,retimable,mux_excess,\
   partitions,area_circuit,area_cbit_retimed,area_cbit_plain,ratio_with,\
   ratio_without,sigma_dff,testing_time,cpu_seconds"

(* Machine-readable perf baselines (BENCH_*.json artefacts). Every bench
   group — the fault-sim shootout and the pipeline sweep alike — goes
   through this one emitter so the artefacts stay schema-identical and
   diffable across PRs. *)
type bench_circuit = {
  gates : int;
  dffs : int;
  edges : int;
  segments : int;
      (* Merced partition count; 0 = not stamped (pre-compile stats, or
         an artefact from before the cost-model features landed) *)
  largest_cluster : int;
      (* member gates of the biggest combinational segment; 0 = not
         stamped *)
}

(* Same workload? Structural fields must agree; the partition-shape
   fields only when both sides actually recorded them, so old baselines
   stay comparable (0 is the "not stamped" wildcard). *)
let bench_stats_compatible a b =
  a.gates = b.gates && a.dffs = b.dffs && a.edges = b.edges
  && (a.segments = 0 || b.segments = 0 || a.segments = b.segments)
  && (a.largest_cluster = 0 || b.largest_cluster = 0
      || a.largest_cluster = b.largest_cluster)

type bench_entry = {
  entry_name : string;
  median_ns : float;
  mad_ns : float;
  jobs : int;
  circuit_stats : bench_circuit option;
}

let bench_json ~name ~entries =
  let buf = Buffer.create 512 in
  Printf.bprintf buf "{\n  \"name\": \"%s\",\n  \"entries\": [" (String.escaped name);
  List.iteri
    (fun i e ->
      Printf.bprintf buf "%s\n    { \"name\": \"%s\", \"median_ns\": %.6g, \
                          \"mad_ns\": %.6g, \"jobs\": %d"
        (if i = 0 then "" else ",")
        (String.escaped e.entry_name) e.median_ns e.mad_ns e.jobs;
      (match e.circuit_stats with
       | None -> ()
       | Some c ->
         Printf.bprintf buf ", \"gates\": %d, \"dffs\": %d, \"edges\": %d"
           c.gates c.dffs c.edges;
         if c.segments > 0 || c.largest_cluster > 0 then
           Printf.bprintf buf ", \"segments\": %d, \"largest_cluster\": %d"
             c.segments c.largest_cluster);
      Buffer.add_string buf " }")
    entries;
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf

(* Minimal reader of the emitter above — one entry object per line, keys
   in a fixed order — NOT a general JSON parser. It only has to read
   artefacts this very module wrote, so a line-oriented scan is enough
   and keeps the regression guard dependency-free. *)
let bench_entries_of_json text =
  let field_after line key =
    let klen = String.length key in
    let rec find i =
      if i + klen > String.length line then None
      else if String.sub line i klen = key then Some (i + klen)
      else find (i + 1)
    in
    find 0
  in
  let until_delim line start =
    let stop = ref start in
    let n = String.length line in
    while
      !stop < n
      && (match line.[!stop] with ',' | ' ' | '}' | '"' -> false | _ -> true)
    do
      incr stop
    done;
    String.sub line start (!stop - start)
  in
  let entries = ref [] in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         match
           ( field_after line "\"name\": \"",
             field_after line "\"median_ns\": ",
             field_after line "\"mad_ns\": ",
             field_after line "\"jobs\": " )
         with
         | Some n0, Some m0, Some a0, Some j0 ->
           let name =
             match String.index_from_opt line n0 '"' with
             | Some n1 -> String.sub line n0 (n1 - n0)
             | None -> until_delim line n0
           in
           let stats =
             match
               ( field_after line "\"gates\": ",
                 field_after line "\"dffs\": ",
                 field_after line "\"edges\": " )
             with
             | Some g0, Some d0, Some e0 ->
               let opt key =
                 match field_after line key with
                 | Some o -> int_of_string (until_delim line o)
                 | None -> 0
               in
               Some
                 {
                   gates = int_of_string (until_delim line g0);
                   dffs = int_of_string (until_delim line d0);
                   edges = int_of_string (until_delim line e0);
                   segments = opt "\"segments\": ";
                   largest_cluster = opt "\"largest_cluster\": ";
                 }
             | _ -> None
           in
           entries :=
             {
               entry_name = name;
               median_ns = float_of_string (until_delim line m0);
               mad_ns = float_of_string (until_delim line a0);
               jobs = int_of_string (until_delim line j0);
               circuit_stats = stats;
             }
             :: !entries
         | _ -> ());
  List.rev !entries

let csv_row r =
  let b = r.Merced.breakdown in
  Printf.sprintf "%s,%d,%d,%d,%d,%d,%d,%d,%d,%.0f,%.1f,%.1f,%.2f,%.2f,%.2f,%.6g,%.3f"
    (title r) r.Merced.params.Params.l_k b.Area_accounting.dffs_total
    b.Area_accounting.dffs_on_scc b.Area_accounting.cuts_total
    b.Area_accounting.cuts_on_scc b.Area_accounting.retimable
    b.Area_accounting.mux_excess
    (List.length r.Merced.assignment.Assign.partitions)
    b.Area_accounting.circuit_area b.Area_accounting.area_with_retiming
    b.Area_accounting.area_without_retiming b.Area_accounting.ratio_with
    b.Area_accounting.ratio_without r.Merced.sigma_dff r.Merced.testing_time
    r.Merced.cpu_seconds
