(** [merced bench --compare] — race auto-dispatch against every forced
    configuration and check both halves of the cost model's contract:
    results never change (dispatch invariance, end to end) and the auto
    choice stays within a speed gate of the best forced mode
    (DESIGN.md section 5i; the committed BENCH_dispatch.json artefact).

    Two stages per circuit. [partition] times every
    {!Params.partitioner} on the same graph and seed, marks the model's
    pick as chosen, and re-runs each mode under the auto-derived params
    to prove the decision's perf knobs don't leak into the assignment;
    modes that cut worse than the chosen one — or that carry a worse
    {!Cost_model.quality_factor} prior, which prices in the quality risk
    a lucky tiny-circuit tie does not show — stay in the report but are
    excluded from the speed gate ([comparable = false]). [fault_sim]
    races the batch-engine word widths 1/8/32, serial and pooled,
    against the auto policy on the compiled circuit's largest segment —
    every configuration must detect the same fault set. *)

type plan = {
  benchmarks : string list;
  repeat : int;
  jobs : int;           (** pooled configurations use this worker count *)
  params : Params.t;    (** base params; partitioner/cutover are the race *)
  model : Cost_model.t;
  gate : float;         (** auto must stay within gate x best forced *)
  slack_ns : float;     (** absolute grace on the gate *)
}

val default_gate : float
(** 1.1 — the CI bound (ISSUE: auto within 1.1x of best forced). *)

val default_slack_ns : float
(** Absolute grace added to the gate so microsecond-scale medians
    (where scheduler noise dwarfs the work) cannot flake it. *)

type entry = {
  e_name : string;       (** ["<circuit>/partition" | "<circuit>/fault_sim"] *)
  config : string;       (** e.g. ["flow"], ["jobs=2,words=8"] *)
  chosen : bool;         (** the configuration auto-dispatch selected *)
  median_ns : float;
  mad_ns : float;
  ratio : float;         (** forced median / auto median; > 1 = auto faster *)
  result_match : bool;
  comparable : bool;     (** counts toward "best forced" in the gate *)
}

type report = {
  model_fp : string;     (** {!Cost_model.fingerprint} of the model raced *)
  gate : float;
  entries : entry list;
  failures : string list;  (** human lines; non-empty means exit 1 *)
}

val run : ?progress:(string -> unit) -> plan -> report
(** Raises [Invalid_argument] on [repeat < 1], [jobs < 1] or
    [gate < 1.0]. [progress] fires once per (circuit, stage). *)

val human : report -> string
(** The table [merced bench --compare] prints, gate verdict last. *)

val to_json : ?normalise:bool -> report -> string
(** The BENCH_dispatch.json form (versioned, line-oriented like every
    BENCH artefact). [normalise] zeroes timings and the model
    fingerprint for golden tests. *)
