module Netgraph = Ppet_digraph.Netgraph
module Csr = Ppet_digraph.Csr
module Prng = Ppet_digraph.Prng
module Circuit = Ppet_netlist.Circuit
module Gate = Ppet_netlist.Gate
module Segment = Ppet_netlist.Segment
module To_graph = Ppet_netlist.To_graph
module Scc_budget = Ppet_retiming.Scc_budget
module Rgraph = Ppet_retiming.Rgraph
module Retime = Ppet_retiming.Retime
module To_circuit = Ppet_retiming.To_circuit
module Obs = Ppet_obs.Obs

type result = {
  circuit : Circuit.t;
  params : Params.t;
  graph : Netgraph.t;
  budget : Scc_budget.t;
  flow : Flow.result;
  clustering : Cluster.t;
  assignment : Assign.t;
  breakdown : Area_accounting.breakdown;
  sigma_dff : float;
  testing_time : float;
  cpu_seconds : float;
}

let log_src = Logs.Src.create "ppet.merced" ~doc:"Merced BIST compiler"

module Log = (val Logs.src_log log_src)

let partition_iotas_of (assignment : Assign.t) =
  List.map
    (fun (p : Assign.partition) -> p.Assign.input_count)
    assignment.Assign.partitions

let run ?(params = Params.default) ?locked circuit =
  (match Params.validate params with
   | Ok () -> ()
   | Error msg -> invalid_arg ("Merced.run: " ^ msg));
  Obs.span "merced.run" @@ fun () ->
  let t0 = Sys.time () in
  (* STEP 1: graph representation *)
  let graph = Obs.span "merced.to_graph" (fun () -> To_graph.partition_view circuit) in
  Log.debug (fun m ->
      m "STEP 1 %s: %d vertices, %d nets" circuit.Circuit.title
        (Netgraph.n_nodes graph) (Netgraph.n_nets graph));
  (* Flat snapshot of the frozen graph: the saturation, clustering and
     assignment stages all relax over its rows when the substrate is
     Csr; under Hashed they fall back to the Netgraph queries. *)
  let csr =
    match params.Params.substrate with
    | Params.Hashed -> None
    | Params.Csr ->
      Some (Obs.span "merced.csr" (fun () -> Csr.of_netgraph graph))
  in
  (* STEP 2: strongly connected components *)
  let budget = Obs.span "merced.scc_budget" (fun () -> Scc_budget.create circuit graph) in
  Log.debug (fun m ->
      m "STEP 2: %d components, %d flip-flops on loops"
        (Scc_budget.n_components budget)
        (Scc_budget.dffs_on_scc budget));
  (* STEP 3: Assign_CBIT over the saturated network — or, when the
     params select a baseline engine, its partition directly. The
     baselines see the same graph and PRNG stream a forced
     `--partitioner` run would, so an auto-dispatch decision and the
     forced mode produce bit-identical assignments by construction. *)
  let rng = Prng.create params.Params.seed in
  let flow, clustering, assignment =
    match params.Params.partitioner with
    | Params.Flow ->
      let flow = Flow.saturate ?csr graph params rng in
      Log.debug (fun m ->
          m "STEP 3a: %d shortest-path trees injected" flow.Flow.iterations);
      let clustering =
        Cluster.make_group ?locked ?csr circuit graph budget flow params
      in
      Log.debug (fun m ->
          m "STEP 3b: %d clusters" (List.length clustering.Cluster.clusters));
      let assignment =
        Obs.span "merced.assign" (fun () ->
            Assign.run ?csr circuit graph clustering params rng)
      in
      (flow, clustering, assignment)
    | (Params.Fm | Params.Annealing | Params.Random) as p ->
      if locked <> None then
        invalid_arg
          (Printf.sprintf
             "Merced.run: --lock requires the flow partitioner, not %s"
             (Params.partitioner_name p));
      let assignment =
        Obs.span "merced.assign" (fun () ->
            match p with
            | Params.Fm ->
              (Baseline_fm.run circuit graph params rng).Baseline_fm.result
            | Params.Annealing ->
              (Baseline_annealing.run circuit graph params rng)
                .Baseline_annealing.result
            | Params.Random | Params.Flow ->
              Baseline_random.run circuit graph params rng)
      in
      Log.debug (fun m ->
          m "STEP 3 (%s baseline): %d partitions"
            (Params.partitioner_name p)
            (List.length assignment.Assign.partitions));
      (* neutral flow/clustering records: the baselines never saturate
         the network, and every downstream consumer (area accounting,
         phasing, the retiming solver) reads only the assignment *)
      let flow =
        {
          Flow.distance = Array.make (Netgraph.n_nets graph) 0.0;
          flow = Array.make (Netgraph.n_nets graph) 0.0;
          visits = Array.make (Netgraph.n_nodes graph) 0;
          iterations = 0;
        }
      in
      let clustering =
        {
          Cluster.clusters = [];
          cluster_of = Array.make (Netgraph.n_nodes graph) 0;
          removed = Array.make (Netgraph.n_nets graph) false;
          forced_kept = Array.make (Netgraph.n_nets graph) false;
          cuts_used = Array.make (Scc_budget.n_components budget) 0;
          boundaries_used = 0;
        }
      in
      (flow, clustering, assignment)
  in
  Obs.add Obs.Metric.Partitions_formed
    (List.length assignment.Assign.partitions);
  Log.debug (fun m ->
      m "STEP 3c: %d partitions, %d cut nets"
        (List.length assignment.Assign.partitions)
        (List.length assignment.Assign.cut_nets));
  (* STEP 4: report *)
  let iotas = partition_iotas_of assignment in
  let breakdown =
    Obs.span "merced.area" (fun () ->
        Area_accounting.compute circuit budget
          ~cut_nets:assignment.Assign.cut_nets ~partition_iotas:iotas)
  in
  let sigma_dff = Cost.sigma (List.map (fun i -> min i 32) iotas) in
  let testing_time = Cost.testing_time_cycles (List.map (fun i -> min i 32) iotas) in
  Obs.gauge "merced.cuts_total" (float_of_int breakdown.Area_accounting.cuts_total);
  Obs.gauge "merced.sigma_dff" sigma_dff;
  {
    circuit;
    params;
    graph;
    budget;
    flow;
    clustering;
    assignment;
    breakdown;
    sigma_dff;
    testing_time;
    cpu_seconds = Sys.time () -. t0;
  }

let partition_iotas r = partition_iotas_of r.assignment

type certificate = {
  cert_graph : Rgraph.t;
  cert_rho : int array;
  cert_required : int list;
  cert_dropped : int;
}

(* Solve for a legal retiming placing a register on every comb-driven cut
   net, iteratively dropping the requirements of over-constrained loops
   (those cut nets get multiplexed cells instead). Returns the graph, the
   labels, and the number of dropped requirements. *)
let solve_requirements r =
  Obs.span "merced.retime_requirements" @@ fun () ->
  let rg = Rgraph.of_circuit r.circuit in
  let vertex_by_name = Hashtbl.create (Rgraph.n_vertices rg) in
  for v = 0 to Rgraph.n_vertices rg - 1 do
    Hashtbl.replace vertex_by_name (Rgraph.vertex_name rg v) v
  done;
  (* cut nets whose driver is a combinational gate want >= 1 register on
     every collapsed edge leaving that driver; a plain bool array per
     vertex, because [require] runs once per constraint arc per solve
     attempt and the drop loop solves hundreds of times at 100k cells *)
  let required = Array.make (Rgraph.n_vertices rg) false in
  List.iter
    (fun e ->
      let driver = Netgraph.net_src r.graph e in
      let nd = Circuit.node r.circuit driver in
      match nd.Circuit.kind with
      | Gate.Input | Gate.Dff -> ()
      | Gate.Buff | Gate.Not | Gate.And | Gate.Nand | Gate.Or | Gate.Nor
      | Gate.Xor | Gate.Xnor ->
        (match Hashtbl.find_opt vertex_by_name nd.Circuit.name with
         | Some v -> required.(v) <- true
         | None -> ()))
    r.assignment.Assign.cut_nets;
  let require e =
    if required.(rg.Rgraph.edges.(e).Rgraph.tail) then 1 else 0
  in
  (* One flat solver reused across the whole drop loop when on the CSR
     substrate: the constraint arcs and scratch are built once, each
     attempt only refreshes the arc lengths. The substrates agree on
     feasibility and on every feasible rho (the canonical cold
     fixpoint); on infeasible attempts they may report different — and
     differently many — over-constrained cycles, because the flat solver
     detects them early and returns every cycle of its predecessor
     forest at once, so the two drop sequences can retire different
     requirement sets. Both are sound: each reported cycle is a genuine
     negative cycle of the system it was found in, and the equivalence
     oracles (merced check, the fuzzer, the lint certificate) hold for
     either. *)
  let solve =
    match r.params.Params.substrate with
    | Params.Hashed ->
      fun () ->
        (match Retime.solve rg ~require with
         | Retime.Feasible rho -> Ok rho
         | Retime.Infeasible cycle -> Error [ cycle ])
    | Params.Csr ->
      let solver = Retime.Solver.create rg in
      (* Each aborted attempt resumes from its own label state (warm),
         so a round costs only the relaxations past the previous abort
         instead of a full cold solve. Warm fixpoints are feasible but
         not canonical, so once a warm attempt converges we re-solve
         cold for the rho the hashed substrate would also produce. *)
      let warm = ref None in
      fun () ->
        (match Retime.Solver.run_cycles solver ?warm:!warm ~require with
         | Error cycles ->
           warm := Some (Retime.Solver.potentials solver);
           Error cycles
         | Ok rho ->
           (match !warm with
            | None -> Ok rho
            | Some _ ->
              warm := None;
              Retime.Solver.run_cycles solver ~require))
  in
  let dropped = ref 0 in
  let rec attempt () =
    match solve () with
    | Ok rho -> Some rho
    | Error cycles ->
      let progressed = ref false in
      List.iter
        (List.iter (fun v ->
             if required.(v) then begin
               required.(v) <- false;
               incr dropped;
               progressed := true
             end))
        cycles;
      if !progressed then attempt ()
      else begin
        (* no cycle carries a requirement we can drop; give up on all *)
        Array.fill required 0 (Array.length required) false;
        match solve () with
        | Ok rho -> Some rho
        | Error _ -> None
      end
  in
  let rho = attempt () in
  let required =
    let acc = ref [] in
    for v = Array.length required - 1 downto 0 do
      if required.(v) then acc := v :: !acc
    done;
    !acc
  in
  Obs.add Obs.Metric.Retime_required_kept (List.length required);
  Obs.add Obs.Metric.Retime_required_dropped !dropped;
  (rg, rho, required, !dropped)

let retiming_certificate r =
  let rg, rho, required, dropped = solve_requirements r in
  match rho with
  | None -> None
  | Some cert_rho ->
    Some { cert_graph = rg; cert_rho; cert_required = required;
           cert_dropped = dropped }

let retiming_feasibility r =
  let _, _, _, dropped = solve_requirements r in
  if dropped = 0 then `Feasible else `Needs_mux dropped

let apply_certificate r cert =
  Obs.span "merced.retime_emit" @@ fun () ->
  let rg' = Retime.apply cert.cert_graph cert.cert_rho in
  To_circuit.circuit_of ~title:(r.circuit.Circuit.title ^ "-retimed") rg'

let retimed_netlist r =
  match retiming_certificate r with
  | None -> None
  | Some cert -> Some (apply_certificate r cert, cert.cert_dropped)

let segments r =
  List.filter_map
    (fun (p : Assign.partition) ->
      let combs =
        Array.of_list
          (List.filter
             (fun v ->
               match (Circuit.node r.circuit v).Circuit.kind with
               | Gate.Input | Gate.Dff -> false
               | Gate.Buff | Gate.Not | Gate.And | Gate.Nand | Gate.Or
               | Gate.Nor | Gate.Xor | Gate.Xnor -> true)
             (Array.to_list p.Assign.vertices))
      in
      if Array.length combs = 0 then None
      else Some (Segment.of_members r.circuit combs))
    r.assignment.Assign.partitions
