(** Merced — the BIST compiler (paper Table 2).

    STEP 1 builds the multi-pin graph of the netlist, STEP 2 the strongly
    connected components (for the Eq. 6 retiming budget), STEP 3 runs
    [Assign_CBIT] on top of [Make_Group] and the saturated network, and
    STEP 4 reports the partitioning, its CBIT cost and the area
    comparison against a non-retimed implementation. *)

type result = {
  circuit : Ppet_netlist.Circuit.t;
  params : Params.t;
  graph : Ppet_digraph.Netgraph.t;
  budget : Ppet_retiming.Scc_budget.t;
  flow : Flow.result;
  clustering : Cluster.t;
  assignment : Assign.t;
  breakdown : Area_accounting.breakdown;
  sigma_dff : float;           (** Eq. 4 objective under Table 1 pricing *)
  testing_time : float;        (** clock cycles, Fig. 1b model *)
  cpu_seconds : float;         (** wall clock of the whole run *)
}

val run :
  ?params:Params.t ->
  ?locked:(int -> bool) ->
  Ppet_netlist.Circuit.t ->
  result
(** [locked] marks node ids the user excludes from BIST conversion: they
    stay together in one untouched partition (the paper's lock option,
    Table 5 STEP 2). *)

val partition_iotas : result -> int list
(** Input counts of the final partitions, descending. *)

val retiming_feasibility : result -> [ `Feasible | `Needs_mux of int ]
(** Cross-check of the accounting against the actual Leiserson–Saxe
    solver: [`Feasible] when a legal retiming puts a register on every
    cut net, [`Needs_mux n] when n cut nets sit on over-constrained
    loops (they get multiplexed cells instead, Fig. 3c). *)

type certificate = {
  cert_graph : Ppet_retiming.Rgraph.t;
      (** collapsed graph of the source circuit, Eq. 1's [w] *)
  cert_rho : int array;  (** lag per vertex; PIs and host pinned at 0 *)
  cert_required : int list;
      (** vertex ids whose out-edges kept the [>= 1]-register
          requirement (comb-driven cut-net drivers minus the dropped
          ones), ascending *)
  cert_dropped : int;    (** requirements dropped on over-constrained loops *)
}
(** Everything an independent checker needs to re-verify a retiming
    without re-running the solver: re-derive Eq. 1's weights from
    [cert_graph] and [cert_rho], check Eq. 3 non-negativity, the pinned
    lags, and that every retained requirement got its register
    ({!Ppet_lint}'s [retiming-legality] rule does exactly that). *)

val retiming_certificate : result -> certificate option
(** The witness behind {!retimed_netlist}: [None] only when even the
    unconstrained identity retiming fails (never on a valid circuit). *)

val apply_certificate :
  result -> certificate -> Ppet_retiming.To_circuit.emitted
(** Realise a certificate into the retimed netlist (the second half of
    {!retimed_netlist}, split out so a caller holding the certificate
    does not pay for a second solve). *)

val segments : result -> Ppet_netlist.Segment.t list
(** The combinational CUT of each partition (member gates only;
    flip-flops and PIs move to the boundary), ready for
    {!Ppet_bist.Pet}. Partitions with no combinational member are
    dropped. *)

val retimed_netlist :
  result -> (Ppet_retiming.To_circuit.emitted * int) option
(** Realise the register placement: solve for a legal retiming covering
    every combinational cut-net driver (dropping the requirements of
    over-constrained loops, whose count is returned), apply it, and emit
    the retimed netlist with recomputed initial states. [None] only when
    even the unconstrained identity fails (never on a valid circuit). *)

val log_src : Logs.src
(** Per-stage debug logging of the Table 2 pipeline; enable with
    [Logs.Src.set_level Merced.log_src (Some Logs.Debug)]. *)
