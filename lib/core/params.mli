(** Merced parameters (paper Sec. 4.1).

    The published settings are [b = 1], [min_visit = 20], [alpha = 4],
    [delta = 0.01], [beta = 50] (relaxed so [Assign_CBIT] is
    unrestricted), and input constraints [l_k] of 16 (Table 10) or 24
    (Table 11). *)

type substrate =
  | Hashed  (** the original hashtable/array-of-arrays graph paths *)
  | Csr     (** flat int-indexed CSR adjacency with reused workspaces *)
(** Graph-core selection. Both substrates compute identical results (the
    CSR paths replicate the hashed iteration orders exactly); [Hashed]
    remains available as a differential-debugging reference while the
    fuzzer soaks the flat paths. *)

val substrate_name : substrate -> string

type partitioner =
  | Flow       (** the paper's multicommodity-flow pipeline (Tables 3-7) *)
  | Fm         (** multi-way Fiduccia-Mattheyses ({!Baseline_fm}) *)
  | Annealing  (** simulated annealing ({!Baseline_annealing}) *)
  | Random     (** random seeded growth ({!Baseline_random}) *)
(** Which engine produces the partition assignment. [Flow] is the
    default and the quality reference; the baselines exist for the
    ablation bench and for cost-driven dispatch on circuits where the
    flow saturation dominates the wall clock. All four produce an
    {!Assign.t} honouring the [l_k] input constraint (baselines may
    leave oversize clusters, marked as such). *)

val partitioner_name : partitioner -> string
val partitioner_of_name : string -> partitioner option

val partitioners : partitioner list
(** All four, [Flow] first — the forced-mode sweep of
    [merced bench --compare] iterates this list. *)

type t = {
  capacity : float;       (** b — net capacity in Saturate_Network *)
  min_visit : int;        (** sampling adequacy threshold *)
  alpha : float;          (** congestion exponent *)
  delta : float;          (** flow quantum per shortest-path tree *)
  beta : int;             (** Eq. 6 loop-cut relaxation factor *)
  l_k : int;              (** input constraint / CBIT length *)
  seed : int64;           (** randomness of the flow injection *)
  max_iterations : int;   (** safety bound on flow-injection rounds *)
  max_merge_candidates : int;
      (** Assign_CBIT candidate scan cap per step (quality/speed knob) *)
  substrate : substrate;  (** graph-core implementation (default [Csr]) *)
  fault_cutover : int;
      (** fault-simulation segments with fewer member gates than this
          run serially even when a pool is supplied (default 128, the
          measured knee — see EXPERIMENTS.md "fault-engine cutover").
          Threaded into [Fault_engine.Batch.policy.cutover]; results are
          identical at any value, only the wall clock moves. *)
  partitioner : partitioner;
      (** partition engine (default [Flow]). Unlike the perf-only knobs
          this changes the compile result, so it is part of
          {!fingerprint}. *)
}

val default : t
(** Paper settings with [l_k = 16]. *)

val with_lk : int -> t
(** Paper settings at another input constraint. *)

val validate : t -> (unit, string) result

val fingerprint : t -> string
(** A stable, injective rendering of every field ([%h] for floats, so no
    two distinct settings collide) — the params half of the serve
    cache key. *)

val pp : Format.formatter -> t -> unit
