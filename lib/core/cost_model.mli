(** Calibrated per-stage cost model and the `--dispatch auto` decision
    function (ROADMAP item 3; DESIGN.md section 5i).

    One linear model per pipeline stage over the circuit statistics
    stamped into BENCH_pipeline.json ([gates], [dffs], [edges],
    [segments], [largest_cluster], plus an intercept), fitted by
    ridge-regularised least squares from [merced bench] data and
    persisted as the versioned COST_MODEL.json artefact. {!decide}
    turns predictions into the fault-sim dispatch knobs (pool use, word
    width, pool cutover) and the partitioner choice — a pure function
    of (model, circuit stats, available jobs), so auto and forced runs
    are differential-testable and the serve cache can key on the model
    fingerprint. *)

val schema_version : int
(** Version of the COST_MODEL.json schema this build reads and writes
    (same convention as lint's [schema_version]). *)

val feature_names : string array
(** Feature order of every coefficient vector:
    intercept, gates, dffs, edges, segments, largest_cluster. *)

val n_features : int

val features_of : Report.bench_circuit -> float array
(** The feature vector of a circuit's stamped stats ([segments] and
    [largest_cluster] may be 0 when unstamped — predictions then lean on
    the structural features alone). *)

val stats_of_circuit : Ppet_netlist.Circuit.t -> Report.bench_circuit
(** The pre-compile stats every auto-dispatch surface decides from:
    gates/dffs/edges of the partition view, partition shape unstamped
    (0). Shared so the CLI, the daemon and campaign make identical
    decisions for the same circuit. *)

type stage_model = {
  stage : string;       (** e.g. ["flow"], ["fault_sim@pooled"] *)
  rows : int;           (** observations the fit saw *)
  coeffs : float array; (** length {!n_features}, in feature order *)
}

type t = {
  ridge : float;              (** relative ridge weight of the fit *)
  stages : stage_model list;  (** sorted by stage name *)
}

val default_ridge : float

val fit : ?ridge:float -> Report.bench_entry list -> t
(** Least-squares fit, one model per stage key. Entry ["c/phase"] maps
    to stage [phase], except the pooled fault_sim row (jobs > 1) which
    gets ["fault_sim@pooled"]. Entries without circuit stats or with a
    non-positive median are skipped. The ridge term is relative per
    feature (lambda_j = ridge * max(X^T X_jj, 1)), so the system stays
    well-posed with fewer circuits than features. Raises
    [Ppet_netlist.Circuit.Error] when no usable entry remains. *)

val predict : t -> stage:string -> Report.bench_circuit -> float option
(** Predicted stage cost in nanoseconds, clamped to >= 0; [None] when
    the model has no such stage. *)

val to_json : ?normalise:bool -> t -> string
(** The COST_MODEL.json form (versioned, line-oriented like the BENCH
    artefacts). [normalise] zeroes the coefficients for golden tests. *)

val of_json : string -> (t, string) result
(** Read back what {!to_json} wrote. Rejects (with a message): a
    missing/foreign ["name"], an unsupported [schema_version], malformed
    or non-finite or wrong-arity coefficient rows, an empty stage list,
    and the all-zero model (the zero-median analogue — it would make
    every dispatch comparison a tie). *)

val load : string -> t
(** {!of_json} on a file; raises [Ppet_netlist.Circuit.Error] (the
    CLI's exit-2 path) on a missing file or any {!of_json} rejection. *)

val fingerprint : t -> string
(** Digest of the canonical {!to_json} bytes — the model half of the
    serve cache key under auto-dispatch. *)

type decision = {
  d_partitioner : Params.partitioner;
  d_jobs : int;     (** 1 = stay serial even if a pool is offered *)
  d_words : int;    (** batch-engine word width *)
  d_cutover : int;  (** predicted serial/pooled crossover, in gates *)
}

val decide : t -> jobs_available:int -> Report.bench_circuit -> decision
(** The auto-dispatch decision for one circuit. Partitioner: cheapest
    quality-adjusted predicted partition cost (flow = flow+cluster+assign;
    baselines pay a quality factor, so they only win when much faster).
    Words: cheapest measured kernel among 1/8/32. Jobs: [jobs_available]
    when the pooled fault_sim prediction beats the serial one, else 1.
    Cutover: smallest power-of-two gate count at which a same-shape
    circuit's pooled prediction wins (never -> [1 lsl 30]). Pure in
    (t, jobs_available, stats). *)

val apply_decision : decision -> Params.t -> Params.t
(** Fold the params-level half of a decision ([fault_cutover],
    [partitioner]) into a params record; jobs and words live in the
    batch policy, not in params. *)

val no_cutover : int
(** The cutover value meaning "never pool" (1 lsl 30) — what {!decide}
    returns when no same-shape circuit size makes the pool pay. *)

val quality_factor : Params.partitioner -> float
val stage_key : Report.bench_entry -> string option
(** The stage key a bench entry fits under (exposed for tests). *)
