module Netgraph = Ppet_digraph.Netgraph
module Components = Ppet_digraph.Components
module Circuit = Ppet_netlist.Circuit
module Gate = Ppet_netlist.Gate

type t = {
  c : Circuit.t;
  graph : Netgraph.t;
  label : int array;
  pi_count : int array;
  sink_cnt : (int, int) Hashtbl.t array;  (* cluster -> net -> member sinks *)
  entering : int array;
  mutable cuts : int;
  cut : bool array;
}

let sinks_of st k e =
  match Hashtbl.find_opt st.sink_cnt.(k) e with Some n -> n | None -> 0

let entering_status st k e =
  sinks_of st k e > 0 && st.label.(Netgraph.net_src st.graph e) <> k

let cut_status st e =
  let src_label = st.label.(Netgraph.net_src st.graph e) in
  Array.exists (fun v -> st.label.(v) <> src_label) (Netgraph.net_sinks st.graph e)

let build c graph ~labels ~n_clusters =
  let m = Netgraph.n_nets graph in
  let st =
    {
      c;
      graph;
      label = labels;
      pi_count = Array.make n_clusters 0;
      sink_cnt = Array.init n_clusters (fun _ -> Hashtbl.create 16);
      entering = Array.make n_clusters 0;
      cuts = 0;
      cut = Array.make m false;
    }
  in
  Array.iter
    (fun (nd : Circuit.node) ->
      if nd.Circuit.kind = Gate.Input then begin
        let k = labels.(nd.Circuit.id) in
        st.pi_count.(k) <- st.pi_count.(k) + 1
      end)
    c.Circuit.nodes;
  Netgraph.iter_nets graph (fun e ~src:_ ~sinks ->
      let seen = Hashtbl.create 4 in
      Array.iter
        (fun v ->
          if not (Hashtbl.mem seen v) then begin
            Hashtbl.add seen v ();
            let k = labels.(v) in
            Hashtbl.replace st.sink_cnt.(k) e (sinks_of st k e + 1)
          end)
        sinks);
  for k = 0 to n_clusters - 1 do
    Hashtbl.iter
      (fun e _ ->
        if entering_status st k e then st.entering.(k) <- st.entering.(k) + 1)
      st.sink_cnt.(k)
  done;
  for e = 0 to m - 1 do
    if cut_status st e then begin
      st.cut.(e) <- true;
      st.cuts <- st.cuts + 1
    end
  done;
  st

let n_clusters st = Array.length st.entering

let label st v = st.label.(v)

let iota st k = st.entering.(k) + st.pi_count.(k)

let n_cut st = st.cuts

let affected_nets st v =
  let tbl = Hashtbl.create 8 in
  Array.iter (fun e -> Hashtbl.replace tbl e ()) (Netgraph.in_nets st.graph v);
  Array.iter (fun e -> Hashtbl.replace tbl e ()) (Netgraph.out_nets st.graph v);
  List.sort compare (Hashtbl.fold (fun e () acc -> e :: acc) tbl [])

let move st v b =
  let a = st.label.(v) in
  if a <> b then begin
    let nets = affected_nets st v in
    let before_ent =
      List.concat_map
        (fun e ->
          [ (a, e, entering_status st a e); (b, e, entering_status st b e) ])
        nets
    in
    let before_cut = List.map (fun e -> (e, st.cut.(e))) nets in
    Array.iter
      (fun e ->
        let cur = sinks_of st a e in
        if cur <= 1 then Hashtbl.remove st.sink_cnt.(a) e
        else Hashtbl.replace st.sink_cnt.(a) e (cur - 1))
      (Netgraph.in_nets st.graph v);
    st.label.(v) <- b;
    if (Circuit.node st.c v).Circuit.kind = Gate.Input then begin
      st.pi_count.(a) <- st.pi_count.(a) - 1;
      st.pi_count.(b) <- st.pi_count.(b) + 1
    end;
    Array.iter
      (fun e -> Hashtbl.replace st.sink_cnt.(b) e (sinks_of st b e + 1))
      (Netgraph.in_nets st.graph v);
    List.iter
      (fun (k, e, was) ->
        let now = entering_status st k e in
        if was && not now then st.entering.(k) <- st.entering.(k) - 1
        else if now && not was then st.entering.(k) <- st.entering.(k) + 1)
      before_ent;
    List.iter
      (fun (e, was) ->
        let now = cut_status st e in
        if was && not now then begin
          st.cut.(e) <- false;
          st.cuts <- st.cuts - 1
        end
        else if now && not was then begin
          st.cut.(e) <- true;
          st.cuts <- st.cuts + 1
        end)
      before_cut
  end

let penalty st ~l_k =
  let total = ref 0 in
  for k = 0 to n_clusters st - 1 do
    let over = iota st k - l_k in
    if over > 0 then total := !total + over
  done;
  !total

let energy st ~l_k ~lambda =
  float_of_int st.cuts +. (lambda *. float_of_int (penalty st ~l_k))

let move_gain st ~l_k ~lambda v b =
  let a = st.label.(v) in
  if a = b then 0.0
  else begin
    let e0 = energy st ~l_k ~lambda in
    move st v b;
    let e1 = energy st ~l_k ~lambda in
    move st v a;
    e0 -. e1
  end

let labels_snapshot st = Array.copy st.label

let to_assign c graph (p : Params.t) st =
  let n = Netgraph.n_nodes graph in
  let members = Hashtbl.create (n_clusters st) in
  for v = 0 to n - 1 do
    let k = st.label.(v) in
    let cur = try Hashtbl.find members k with Not_found -> [] in
    Hashtbl.replace members k (v :: cur)
  done;
  let inside_of vertices =
    let tbl = Hashtbl.create (Array.length vertices) in
    Array.iter (fun v -> Hashtbl.replace tbl v ()) vertices;
    fun v -> Hashtbl.mem tbl v
  in
  let partitions =
    Hashtbl.fold
      (fun _ vs acc ->
        let vertices = Array.of_list vs in
        Array.sort compare vertices;
        let ic =
          Cluster.input_count_of c graph ~inside:(inside_of vertices) vertices
        in
        {
          Assign.vertices;
          input_count = ic;
          merged_from = 1;
          oversize = ic > p.Params.l_k;
          locked = false;
        }
        :: acc)
      members []
  in
  (* iota descending, ties broken on member ids: the fold above visits
     clusters in hash order, which must not decide partition indexes *)
  let partitions =
    List.sort
      (fun x y ->
        match compare y.Assign.input_count x.Assign.input_count with
        | 0 -> compare x.Assign.vertices y.Assign.vertices
        | c -> c)
      partitions
  in
  let partition_of = Array.make n (-1) in
  List.iteri
    (fun i pt -> Array.iter (fun v -> partition_of.(v) <- i) pt.Assign.vertices)
    partitions;
  let cut_nets = Components.cut_nets graph partition_of in
  { Assign.partitions; partition_of; cut_nets; merges = 0 }
