module Netgraph = Ppet_digraph.Netgraph
module Dijkstra = Ppet_digraph.Dijkstra
module Prng = Ppet_digraph.Prng
module Obs = Ppet_obs.Obs

type result = {
  distance : float array;
  flow : float array;
  visits : int array;
  iterations : int;
}

let saturate ?csr g (p : Params.t) rng =
  (match Params.validate p with
   | Ok () -> ()
   | Error msg -> invalid_arg ("Flow.saturate: " ^ msg));
  Obs.span "flow.saturate" @@ fun () ->
  let n = Netgraph.n_nodes g in
  let m = Netgraph.n_nets g in
  let distance = Array.make m 1.0 in
  let flow = Array.make m 0.0 in
  let visits = Array.make n 0 in
  let iterations = ref 0 in
  if n > 0 && m > 0 then begin
    (* under-visited vertices, maintained as a compacting array *)
    let pending = Array.init n (fun v -> v) in
    let n_pending = ref n in
    let compact () =
      let k = ref 0 in
      for i = 0 to !n_pending - 1 do
        let v = pending.(i) in
        if visits.(v) <= p.Params.min_visit then begin
          pending.(!k) <- v;
          incr k
        end
      done;
      n_pending := !k
    in
    let ws = Dijkstra.workspace ?csr g in
    let bump_visits =
      match csr with
      | None ->
        fun e ->
          Array.iter
            (fun v -> visits.(v) <- visits.(v) + 1)
            (Netgraph.net_sinks g e)
      | Some c ->
        let sink_off = c.Ppet_digraph.Csr.sink_off
        and sink = c.Ppet_digraph.Csr.sink in
        fun e ->
          for j = sink_off.(e) to sink_off.(e + 1) - 1 do
            let v = sink.(j) in
            visits.(v) <- visits.(v) + 1
          done
    in
    let tree_nets = ref 0 in
    while !n_pending > 0 && !iterations < p.Params.max_iterations do
      let src = pending.(Prng.int rng !n_pending) in
      visits.(src) <- visits.(src) + 1;
      let tree = Dijkstra.run_into ws g ~dist:(fun e -> distance.(e)) ~src in
      tree_nets := !tree_nets + Array.length tree.Dijkstra.tree_nets;
      Array.iter
        (fun e ->
          flow.(e) <- flow.(e) +. p.Params.delta;
          distance.(e) <-
            exp (p.Params.alpha *. flow.(e) /. p.Params.capacity);
          bump_visits e)
        tree.Dijkstra.tree_nets;
      incr iterations;
      compact ()
    done;
    Obs.add Obs.Metric.Flow_tree_nets !tree_nets
  end;
  Obs.add Obs.Metric.Flow_iterations !iterations;
  { distance; flow; visits; iterations = !iterations }

let boundaries r =
  let tbl = Hashtbl.create 64 in
  Array.iter (fun d -> Hashtbl.replace tbl d ()) r.distance;
  let ds = Hashtbl.fold (fun d () acc -> d :: acc) tbl [] in
  List.sort (fun a b -> compare b a) ds
