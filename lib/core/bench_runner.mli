(** Pipeline regression sweep behind [merced bench].

    Times each compiler phase — benchmark generation, network flow
    saturation, clustering, partition assignment, the retiming
    certificate solve, and cone-restricted fault simulation at one and
    at [plan.jobs] workers — on a list of registry benchmarks, and
    returns the median/MAD rows the BENCH_pipeline.json artefact is
    built from (see {!Report.bench_json}). *)

type plan = {
  benchmarks : string list;  (** registry names, plus the literal "s27" *)
  repeat : int;              (** timed samples per phase, >= 1 *)
  jobs : int;                (** worker count of the parallel fault-sim entry *)
}

val default_plan : plan
(** s27, s510, s420.1, s641 at [repeat = 5], [jobs = 2]. *)

val entry_names : plan -> Report.bench_entry list
(** The rows {!run} would measure, in order, with [median_ns]/[mad_ns]
    zeroed — the [--dry-run] view. Fault-sim rows appear once per
    worker count; a benchmark with no combinational gate skips them. *)

val run : ?progress:(string -> unit) -> plan -> Report.bench_entry list
(** Measure every phase of every benchmark in [plan]. [progress] (if
    given) is called with each entry name before it is measured. *)
