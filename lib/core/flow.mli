(** Modified [Saturate_Network] — probabilistic multicommodity-flow
    congestion estimation (paper Table 3, after Yeh/Cheng/Lin ICCAD'92).

    Random shortest-path trees inject flow; a net's distance grows
    exponentially with its accumulated flow, so nets that many
    source-sink commodities must share (the strongly connected cores of
    the circuit) end up with high distances — they are the natural places
    to cut. The [visit] index enforces fair sampling: the loop runs until
    every vertex has taken part in at least [min_visit] trees.

    Deviation from the paper's pseudo-code, documented in DESIGN.md: a
    vertex's visit counter advances both when it is picked as the source
    and when a tree reaches it (the literal source-only reading needs
    O(min_visit x |V|) Dijkstra runs, irreconcilable with the CPU times
    of Table 10), and sources are drawn uniformly from the under-visited
    vertices, which is what "fair sampling" demands. *)

type result = {
  distance : float array;  (** per net: exp(alpha * flow / cap) *)
  flow : float array;      (** per net: accumulated flow *)
  visits : int array;      (** per vertex *)
  iterations : int;        (** shortest-path trees computed *)
}

val saturate :
  ?csr:Ppet_digraph.Csr.t ->
  Ppet_digraph.Netgraph.t -> Params.t -> Ppet_digraph.Prng.t -> result
(** Runs until every vertex reaches [min_visit] visits or
    [max_iterations] trees have been injected. [csr] (a snapshot of the
    same graph) routes the Dijkstra runs and visit updates over the flat
    rows; the injected trees and resulting distances are identical. *)

val boundaries : result -> float list
(** Distinct distance values, descending — the stack D of Table 4. *)
