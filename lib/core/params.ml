type substrate = Hashed | Csr

let substrate_name = function Hashed -> "hashed" | Csr -> "csr"

type partitioner = Flow | Fm | Annealing | Random

let partitioner_name = function
  | Flow -> "flow"
  | Fm -> "fm"
  | Annealing -> "annealing"
  | Random -> "random"

let partitioner_of_name = function
  | "flow" -> Some Flow
  | "fm" -> Some Fm
  | "annealing" -> Some Annealing
  | "random" -> Some Random
  | _ -> None

let partitioners = [ Flow; Fm; Annealing; Random ]

type t = {
  capacity : float;
  min_visit : int;
  alpha : float;
  delta : float;
  beta : int;
  l_k : int;
  seed : int64;
  max_iterations : int;
  max_merge_candidates : int;
  substrate : substrate;
  fault_cutover : int;
  partitioner : partitioner;
}

let default =
  {
    capacity = 1.0;
    min_visit = 20;
    alpha = 4.0;
    delta = 0.01;
    beta = 50;
    l_k = 16;
    seed = 0x4DACL;
    max_iterations = 20_000;
    max_merge_candidates = 1_500;
    substrate = Csr;
    fault_cutover = 128;
    partitioner = Flow;
  }

let with_lk l_k = { default with l_k }

let validate p =
  if p.capacity <= 0.0 then Error "capacity must be positive"
  else if p.min_visit < 1 then Error "min_visit must be at least 1"
  else if p.delta <= 0.0 then Error "delta must be positive"
  else if p.beta < 1 then Error "beta must be at least 1 (Eq. 6)"
  else if p.l_k < 2 || p.l_k > 32 then Error "l_k must be in 2..32"
  else if p.max_iterations < 1 then Error "max_iterations must be positive"
  else if p.max_merge_candidates < 1 then Error "max_merge_candidates must be positive"
  else if p.fault_cutover < 1 then Error "fault_cutover must be at least 1"
  else Ok ()

(* Every field, in declaration order. Any knob that can change a compile
   result must land here: the serve cache keys results on circuit
   content + this string, so a missing field would alias distinct
   compiles onto one cache entry. *)
let fingerprint p =
  Printf.sprintf
    "b=%h;mv=%d;a=%h;d=%h;beta=%d;lk=%d;seed=%Ld;mi=%d;mmc=%d;sub=%s;fc=%d;part=%s"
    p.capacity p.min_visit p.alpha p.delta p.beta p.l_k p.seed
    p.max_iterations p.max_merge_candidates (substrate_name p.substrate)
    p.fault_cutover (partitioner_name p.partitioner)

let pp ppf p =
  Format.fprintf ppf
    "b=%.2f min_visit=%d alpha=%.2f delta=%.3f beta=%d l_k=%d seed=%Ld"
    p.capacity p.min_visit p.alpha p.delta p.beta p.l_k p.seed
