module Circuit = Ppet_netlist.Circuit
module Segment = Ppet_netlist.Segment
module Benchmarks = Ppet_netlist.Benchmarks
module Generator = Ppet_netlist.Generator
module To_graph = Ppet_netlist.To_graph
module Prng = Ppet_digraph.Prng
module Scc_budget = Ppet_retiming.Scc_budget
module Simulator = Ppet_bist.Simulator
module Fault = Ppet_bist.Fault
module Fault_engine = Ppet_bist.Fault_engine
module Domain_pool = Ppet_parallel.Domain_pool
module Bench_stat = Ppet_obs.Bench_stat

type plan = {
  benchmarks : string list;
  repeat : int;
  jobs : int;
}

let default_plan =
  { benchmarks = [ "s27"; "s510"; "s420.1"; "s641" ]; repeat = 5; jobs = 2 }

let circuit_of name =
  if name = "s27" then Ppet_netlist.S27.circuit ()
  else Benchmarks.circuit name

(* The fault-sim workload: the (up to) 400 lowest-id combinational gates
   as one segment, driven by eight 62-pattern word batches from a fixed
   PRNG stream — the same recipe as the bench harness's shootout, scaled
   down so the sweep stays interactive. *)
let fault_workload c sim =
  let comb = Circuit.combinational c in
  if Array.length comb = 0 then None
  else begin
    let members = Array.sub comb 0 (min 400 (Array.length comb)) in
    let seg = Segment.of_members c members in
    let faults = Fault.collapse c (Fault.of_segment c seg) in
    let n_in = Array.length (Segment.input_signals seg) in
    let rng = Prng.create 0xBE5CL in
    let word () =
      Int64.to_int (Int64.logand (Prng.next_int64 rng) (Int64.of_int max_int))
    in
    let patterns =
      List.init 8 (fun _ -> Array.init n_in (fun _ -> word ()))
    in
    Some (Fault_engine.create sim seg, patterns, faults)
  end

let phase_list plan name ~has_comb =
  let serial =
    [ "generate"; "flow"; "cluster"; "assign"; "retime"; "analysis";
      "partition_fm"; "partition_annealing"; "partition_random" ]
  in
  let serial = List.map (fun p -> (name ^ "/" ^ p, 1)) serial in
  if not has_comb then serial
  else
    serial
    @ [ (name ^ "/fault_sim", 1) ]
    @ (if plan.jobs > 1 then [ (name ^ "/fault_sim", plan.jobs) ] else [])
    @ [ (name ^ "/fault_sim_w8", 1); (name ^ "/fault_sim_w32", 1) ]

(* Structural identity of the measured circuit, stamped on every entry:
   a baseline only means something against the same workload, so the
   regression guard can refuse to compare medians across generator or
   profile changes. *)
let stats_of c g =
  {
    Report.gates = Array.length (Circuit.combinational c);
    dffs = Array.length (Circuit.dffs c);
    edges = Ppet_digraph.Netgraph.n_nets g;
    (* partition shape is stamped after the compile ran; 0 = unknown *)
    segments = 0;
    largest_cluster = 0;
  }

(* the cost-model features the pre-compile stats cannot carry *)
let stamp_partition_shape stats r =
  let segs = Merced.segments r in
  {
    stats with
    Report.segments = List.length segs;
    largest_cluster =
      List.fold_left
        (fun m s -> max m (Array.length s.Segment.members))
        0 segs;
  }

let entry_names plan =
  List.concat_map
    (fun name ->
      let c = circuit_of name in
      let has_comb = Array.length (Circuit.combinational c) > 0 in
      let stats = stats_of c (To_graph.partition_view c) in
      List.map
        (fun (entry_name, jobs) ->
          { Report.entry_name; median_ns = 0.; mad_ns = 0.; jobs;
            circuit_stats = Some stats })
        (phase_list plan name ~has_comb))
    plan.benchmarks

let run ?(progress = fun _ -> ()) plan =
  if plan.repeat < 1 then invalid_arg "Bench_runner.run: repeat must be >= 1";
  if plan.jobs < 1 then invalid_arg "Bench_runner.run: jobs must be >= 1";
  let params = Params.default in
  List.concat_map
    (fun name ->
      let c = circuit_of name in
      let g = To_graph.partition_view c in
      let stats = stats_of c g in
      let measure ~jobs phase f =
        let entry_name = name ^ "/" ^ phase in
        progress entry_name;
        let s = Bench_stat.measure ~repeat:plan.repeat f in
        {
          Report.entry_name;
          median_ns = s.Bench_stat.median_ns;
          mad_ns = s.Bench_stat.mad_ns;
          jobs;
          circuit_stats = Some stats;
        }
      in
      let generate =
        if name = "s27" then
          measure ~jobs:1 "generate" (fun () ->
              ignore (Ppet_netlist.S27.circuit ()))
        else begin
          let profile = (Benchmarks.find name).Benchmarks.profile in
          measure ~jobs:1 "generate" (fun () ->
              ignore (Generator.generate profile))
        end
      in
      let sb = Scc_budget.create c g in
      (* measure the stages on the substrate the params select, exactly
         as Merced.run would drive them *)
      let csr =
        match params.Params.substrate with
        | Params.Hashed -> None
        | Params.Csr -> Some (Ppet_digraph.Csr.of_netgraph g)
      in
      let flow_entry =
        measure ~jobs:1 "flow" (fun () ->
            ignore (Flow.saturate ?csr g params (Prng.create 1L)))
      in
      let flow = Flow.saturate ?csr g params (Prng.create 1L) in
      let cluster_entry =
        measure ~jobs:1 "cluster" (fun () ->
            ignore (Cluster.make_group ?csr c g sb flow params))
      in
      let clustering = Cluster.make_group ?csr c g sb flow params in
      let assign_entry =
        measure ~jobs:1 "assign" (fun () ->
            ignore (Assign.run ?csr c g clustering params (Prng.create 1L)))
      in
      let r = Merced.run ~params c in
      let retime_entry =
        measure ~jobs:1 "retime" (fun () ->
            ignore (Merced.retiming_certificate r))
      in
      (* the baseline partitioners, timed on the same graph and seed a
         forced --partitioner run would get — the rows the cost model's
         partitioner choice is fitted from *)
      let baseline_entry phase f =
        measure ~jobs:1 phase (fun () ->
            ignore (f c g params (Prng.create params.Params.seed)))
      in
      let partition_entries =
        [
          baseline_entry "partition_fm" (fun c g p rng ->
              (Baseline_fm.run c g p rng).Baseline_fm.result);
          baseline_entry "partition_annealing" (fun c g p rng ->
              (Baseline_annealing.run c g p rng).Baseline_annealing.result);
          baseline_entry "partition_random" Baseline_random.run;
        ]
      in
      (* the dataflow fixed-point stack always runs on the flat graph,
         whatever substrate the partition params picked *)
      let acsr =
        match csr with
        | Some x -> x
        | None -> Ppet_digraph.Csr.of_netgraph g
      in
      let analysis_entry =
        measure ~jobs:1 "analysis" (fun () ->
            let sched = Ppet_analysis.Dataflow.prepare acsr in
            let constants = Ppet_analysis.Ternary.constants sched c in
            ignore (Ppet_analysis.Ternary.initializable sched c ~constants);
            ignore (Ppet_analysis.Scoap.compute sched c ~constants))
      in
      let serial =
        [
          generate; flow_entry; cluster_entry; assign_entry; retime_entry;
          analysis_entry;
        ]
        @ partition_entries
      in
      let sim = Simulator.create c in
      let entries =
        match fault_workload c sim with
        | None -> serial
        | Some (engine, patterns, faults) ->
          (* words = 1 keeps this entry comparable with pre-batch-engine
             baselines: same per-fault-pattern work, same kernel shape *)
          let policy ?(words = 1) pool =
            Fault_engine.Batch.policy ~words ?pool
              ~drop:Fault_engine.Batch.Keep
              ~cutover:params.Params.fault_cutover ()
          in
          let fs1 =
            measure ~jobs:1 "fault_sim" (fun () ->
                ignore
                  (Fault_engine.Batch.run engine (policy None) ~patterns faults))
          in
          let fsn =
            if plan.jobs <= 1 then []
            else
              Domain_pool.with_pool ~jobs:plan.jobs (fun pool ->
                  [
                    measure ~jobs:plan.jobs "fault_sim" (fun () ->
                        ignore
                          (Fault_engine.Batch.run engine (policy (Some pool))
                             ~patterns faults));
                  ])
          in
          (* the multi-word kernels at the widths the dispatcher chooses
             between; serial, so the word width is the only mover *)
          let fsw words =
            measure ~jobs:1
              (Printf.sprintf "fault_sim_w%d" words)
              (fun () ->
                ignore
                  (Fault_engine.Batch.run engine
                     (policy ~words None)
                     ~patterns faults))
          in
          serial @ (fs1 :: fsn) @ [ fsw 8; fsw 32 ]
      in
      (* restamp every row with the partition shape of the compiled
         circuit: the cost model's segment features come from here *)
      let full_stats = stamp_partition_shape stats r in
      List.map
        (fun (e : Report.bench_entry) ->
          { e with Report.circuit_stats = Some full_stats })
        entries)
    plan.benchmarks
