module Netgraph = Ppet_digraph.Netgraph
module Components = Ppet_digraph.Components
module Circuit = Ppet_netlist.Circuit
module Gate = Ppet_netlist.Gate
module Prng = Ppet_digraph.Prng

type partition = {
  vertices : int array;
  input_count : int;
  merged_from : int;
  oversize : bool;
  locked : bool;
}

type t = {
  partitions : partition list;
  partition_of : int array;
  cut_nets : int list;
  merges : int;
}

(* A live cluster during the greedy pass: membership and entering-net
   tables are kept incrementally so scoring a merge costs
   O(|entering A| + |entering B|). *)
type live = {
  mutable members : int list;
  member_set : (int, unit) Hashtbl.t;
  mutable entering : (int, unit) Hashtbl.t;  (* nets with source outside *)
  mutable n_pis : int;
  mutable from : int;   (* Make_Group clusters absorbed *)
  was_oversize : bool;
  was_locked : bool;
  mutable dead : bool;
}

let live_iota l = Hashtbl.length l.entering + l.n_pis

let live_of_cluster c g (cl : Cluster.cluster) =
  let member_set = Hashtbl.create (Array.length cl.Cluster.vertices) in
  Array.iter (fun v -> Hashtbl.replace member_set v ()) cl.Cluster.vertices;
  let entering = Hashtbl.create 16 in
  let n_pis = ref 0 in
  Array.iter
    (fun v ->
      if (Circuit.node c v).Circuit.kind = Gate.Input then incr n_pis;
      Array.iter
        (fun e ->
          if not (Hashtbl.mem member_set (Netgraph.net_src g e)) then
            Hashtbl.replace entering e ())
        (Netgraph.in_nets g v))
    cl.Cluster.vertices;
  {
    members = Array.to_list cl.Cluster.vertices;
    member_set;
    entering;
    n_pis = !n_pis;
    from = 1;
    was_oversize = cl.Cluster.oversize;
    was_locked = cl.Cluster.locked;
    dead = false;
  }

(* iota of the union, and how many entering nets the merge removes. *)
let score_merge g a b =
  let union_entering = Hashtbl.create 16 in
  let scan src_tbl other e =
    let src = Netgraph.net_src g e in
    if not (Hashtbl.mem other src || Hashtbl.mem src_tbl src) then
      Hashtbl.replace union_entering e ()
  in
  Hashtbl.iter (fun e () -> scan a.member_set b.member_set e) a.entering;
  Hashtbl.iter (fun e () -> scan b.member_set a.member_set e) b.entering;
  let iota = Hashtbl.length union_entering + a.n_pis + b.n_pis in
  let removed =
    Hashtbl.length a.entering + Hashtbl.length b.entering
    - Hashtbl.length union_entering
  in
  (iota, removed)

let merge_into g a b =
  (* grow a by b; b dies *)
  let union_entering = Hashtbl.create 16 in
  List.iter (fun v -> Hashtbl.replace a.member_set v ()) b.members;
  let keep e =
    if not (Hashtbl.mem a.member_set (Netgraph.net_src g e)) then
      Hashtbl.replace union_entering e ()
  in
  Hashtbl.iter (fun e () -> keep e) a.entering;
  Hashtbl.iter (fun e () -> keep e) b.entering;
  a.members <- List.rev_append b.members a.members;
  a.entering <- union_entering;
  a.n_pis <- a.n_pis + b.n_pis;
  a.from <- a.from + b.from;
  b.dead <- true

let run c g (clustering : Cluster.t) (p : Params.t) rng =
  let live =
    Array.of_list
      (List.map (live_of_cluster c g) clustering.Cluster.clusters)
  in
  let n = Array.length live in
  let merges = ref 0 in
  let partitions = ref [] in
  (* candidate index sample for one greedy step *)
  let candidates_for exclude =
    let cap = p.Params.max_merge_candidates in
    let alive = ref [] and count = ref 0 in
    for i = n - 1 downto 0 do
      if (not live.(i).dead) && (not live.(i).was_locked) && i <> exclude
      then begin
        alive := i :: !alive;
        incr count
      end
    done;
    if !count <= cap then !alive
    else begin
      (* clusters are sorted by iota descending, so the tail holds the
         smallest (likeliest to fit); always keep those, sample the rest *)
      let arr = Array.of_list !alive in
      let tail = Array.sub arr (Array.length arr - (cap / 2)) (cap / 2) in
      let head = Array.sub arr 0 (Array.length arr - (cap / 2)) in
      Prng.shuffle rng head;
      Array.to_list (Array.append tail (Array.sub head 0 (cap - (cap / 2))))
    end
  in
  let extract_max () =
    let best = ref (-1) in
    for i = 0 to n - 1 do
      if not live.(i).dead then
        if !best < 0 || live_iota live.(i) > live_iota live.(!best) then
          best := i
    done;
    if !best < 0 then None else Some !best
  in
  let rec outer () =
    match extract_max () with
    | None -> ()
    | Some oi ->
      let o = live.(oi) in
      o.dead <- true;
      (* keep o out of future candidate lists but merge into it; locked
         regions are emitted untouched *)
      let continue = ref true in
      while (not o.was_locked) && !continue && live_iota o < p.Params.l_k do
        let best = ref None in
        List.iter
          (fun gi ->
            let gcl = live.(gi) in
            let iota, removed = score_merge g o gcl in
            if iota <= p.Params.l_k then begin
              let gain = p.Params.l_k - iota in
              match !best with
              | Some (bg, br, _) when (bg, br) >= (gain, removed) -> ()
              | Some _ | None -> best := Some (gain, removed, gi)
            end)
          (candidates_for oi);
        match !best with
        | None -> continue := false
        | Some (_, _, gi) ->
          merge_into g o live.(gi);
          incr merges
      done;
      let vertices = Array.of_list o.members in
      Array.sort compare vertices;
      partitions :=
        {
          vertices;
          input_count = live_iota o;
          merged_from = o.from;
          oversize = o.was_oversize;
          locked = o.was_locked;
        }
        :: !partitions;
      outer ()
  in
  outer ();
  let partitions =
    List.sort
      (fun a b ->
        match compare b.input_count a.input_count with
        | 0 -> compare a.vertices b.vertices
        | c -> c)
      !partitions
  in
  let partition_of = Array.make (Netgraph.n_nodes g) (-1) in
  List.iteri
    (fun i pt -> Array.iter (fun v -> partition_of.(v) <- i) pt.vertices)
    partitions;
  let cut_nets = Components.cut_nets g partition_of in
  { partitions; partition_of; cut_nets; merges = !merges }
