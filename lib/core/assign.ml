module Netgraph = Ppet_digraph.Netgraph
module Components = Ppet_digraph.Components
module Csr = Ppet_digraph.Csr
module Circuit = Ppet_netlist.Circuit
module Gate = Ppet_netlist.Gate
module Prng = Ppet_digraph.Prng

type partition = {
  vertices : int array;
  input_count : int;
  merged_from : int;
  oversize : bool;
  locked : bool;
}

type t = {
  partitions : partition list;
  partition_of : int array;
  cut_nets : int list;
  merges : int;
}

(* A live cluster during the greedy pass: membership and entering-net
   tables are kept incrementally so scoring a merge costs
   O(|entering A| + |entering B|). *)
type live = {
  mutable members : int list;
  member_set : (int, unit) Hashtbl.t;
  mutable entering : (int, unit) Hashtbl.t;  (* nets with source outside *)
  mutable n_pis : int;
  mutable from : int;   (* Make_Group clusters absorbed *)
  was_oversize : bool;
  was_locked : bool;
  mutable dead : bool;
}

let live_iota l = Hashtbl.length l.entering + l.n_pis

let live_of_cluster c g (cl : Cluster.cluster) =
  let member_set = Hashtbl.create (Array.length cl.Cluster.vertices) in
  Array.iter (fun v -> Hashtbl.replace member_set v ()) cl.Cluster.vertices;
  let entering = Hashtbl.create 16 in
  let n_pis = ref 0 in
  Array.iter
    (fun v ->
      if (Circuit.node c v).Circuit.kind = Gate.Input then incr n_pis;
      Array.iter
        (fun e ->
          if not (Hashtbl.mem member_set (Netgraph.net_src g e)) then
            Hashtbl.replace entering e ())
        (Netgraph.in_nets g v))
    cl.Cluster.vertices;
  {
    members = Array.to_list cl.Cluster.vertices;
    member_set;
    entering;
    n_pis = !n_pis;
    from = 1;
    was_oversize = cl.Cluster.oversize;
    was_locked = cl.Cluster.locked;
    dead = false;
  }

(* iota of the union, and how many entering nets the merge removes. *)
let score_merge g a b =
  let union_entering = Hashtbl.create 16 in
  let scan src_tbl other e =
    let src = Netgraph.net_src g e in
    if not (Hashtbl.mem other src || Hashtbl.mem src_tbl src) then
      Hashtbl.replace union_entering e ()
  in
  Hashtbl.iter (fun e () -> scan a.member_set b.member_set e) a.entering;
  Hashtbl.iter (fun e () -> scan b.member_set a.member_set e) b.entering;
  let iota = Hashtbl.length union_entering + a.n_pis + b.n_pis in
  let removed =
    Hashtbl.length a.entering + Hashtbl.length b.entering
    - Hashtbl.length union_entering
  in
  (iota, removed)

let merge_into g a b =
  (* grow a by b; b dies *)
  let union_entering = Hashtbl.create 16 in
  List.iter (fun v -> Hashtbl.replace a.member_set v ()) b.members;
  let keep e =
    if not (Hashtbl.mem a.member_set (Netgraph.net_src g e)) then
      Hashtbl.replace union_entering e ()
  in
  Hashtbl.iter (fun e () -> keep e) a.entering;
  Hashtbl.iter (fun e () -> keep e) b.entering;
  a.members <- List.rev_append b.members a.members;
  a.entering <- union_entering;
  a.n_pis <- a.n_pis + b.n_pis;
  a.from <- a.from + b.from;
  b.dead <- true

let finalize g partitions merges =
  let partitions =
    List.sort
      (fun a b ->
        match compare b.input_count a.input_count with
        | 0 -> compare a.vertices b.vertices
        | c -> c)
      partitions
  in
  let partition_of = Array.make (Netgraph.n_nodes g) (-1) in
  List.iteri
    (fun i pt -> Array.iter (fun v -> partition_of.(v) <- i) pt.vertices)
    partitions;
  let cut_nets = Components.cut_nets g partition_of in
  { partitions; partition_of; cut_nets; merges }

let run_hashed c g (clustering : Cluster.t) (p : Params.t) rng =
  let live =
    Array.of_list
      (List.map (live_of_cluster c g) clustering.Cluster.clusters)
  in
  let n = Array.length live in
  let merges = ref 0 in
  let partitions = ref [] in
  (* candidate index sample for one greedy step *)
  let candidates_for exclude =
    let cap = p.Params.max_merge_candidates in
    let alive = ref [] and count = ref 0 in
    for i = n - 1 downto 0 do
      if (not live.(i).dead) && (not live.(i).was_locked) && i <> exclude
      then begin
        alive := i :: !alive;
        incr count
      end
    done;
    if !count <= cap then !alive
    else begin
      (* clusters are sorted by iota descending, so the tail holds the
         smallest (likeliest to fit); always keep those, sample the rest *)
      let arr = Array.of_list !alive in
      let tail = Array.sub arr (Array.length arr - (cap / 2)) (cap / 2) in
      let head = Array.sub arr 0 (Array.length arr - (cap / 2)) in
      Prng.shuffle rng head;
      Array.to_list (Array.append tail (Array.sub head 0 (cap - (cap / 2))))
    end
  in
  let extract_max () =
    let best = ref (-1) in
    for i = 0 to n - 1 do
      if not live.(i).dead then
        if !best < 0 || live_iota live.(i) > live_iota live.(!best) then
          best := i
    done;
    if !best < 0 then None else Some !best
  in
  let rec outer () =
    match extract_max () with
    | None -> ()
    | Some oi ->
      let o = live.(oi) in
      o.dead <- true;
      (* keep o out of future candidate lists but merge into it; locked
         regions are emitted untouched *)
      let continue = ref true in
      while (not o.was_locked) && !continue && live_iota o < p.Params.l_k do
        let best = ref None in
        List.iter
          (fun gi ->
            let gcl = live.(gi) in
            let iota, removed = score_merge g o gcl in
            if iota <= p.Params.l_k then begin
              let gain = p.Params.l_k - iota in
              match !best with
              | Some (bg, br, _) when (bg, br) >= (gain, removed) -> ()
              | Some _ | None -> best := Some (gain, removed, gi)
            end)
          (candidates_for oi);
        match !best with
        | None -> continue := false
        | Some (_, _, gi) ->
          merge_into g o live.(gi);
          incr merges
      done;
      let vertices = Array.of_list o.members in
      Array.sort compare vertices;
      partitions :=
        {
          vertices;
          input_count = live_iota o;
          merged_from = o.from;
          oversize = o.was_oversize;
          locked = o.was_locked;
        }
        :: !partitions;
      outer ()
  in
  outer ();
  finalize g !partitions !merges

(* ------------------------------------------------------------------ *)
(* Flat path.

   The greedy pass has a structural invariant the hashed code never
   exploits: only the current growing partition [o] ever mutates, and
   [o] is marked dead before the scan, so every cluster still in the
   live set carries the iota it was born with. Make_Group emits the
   clusters sorted by input count descending, hence extract_max (first
   strict maximum over a non-increasing sequence) is just "first alive
   index", and an index-ordered doubly-linked alive list yields both the
   extraction order and the ascending candidate enumeration for free.

   Membership tests go through a vertex -> live-index [owner] array
   (clusters partition the vertices; a vertex is relabelled at most once
   beyond its initial assignment, when its cluster is absorbed), and
   entering-net sets are deduplicated int arrays scored with a stamped
   scratch over nets — score_merge becomes a pair of tight array sweeps
   with no hashing and no allocation.

   One deliberate divergence from the hashed path, documented in
   DESIGN.md: when more than max_merge_candidates clusters are alive,
   the hashed code shuffles the whole candidate head to sample from it;
   at scale this costs one rng draw per live cluster per greedy step.
   Here a partial Fisher-Yates draws only the sample actually kept.
   Results differ from the hashed substrate only on circuits exceeding
   the cap (the paper's benchmarks never do). *)

let run_flat csr c g (clustering : Cluster.t) (p : Params.t) rng =
  if Csr.n_nodes csr <> Netgraph.n_nodes g || Csr.n_nets csr <> Netgraph.n_nets g
  then invalid_arg "Assign.run: csr snapshot does not match graph";
  let m = Csr.n_nets csr in
  let net_src = csr.Csr.net_src in
  let in_off = csr.Csr.in_off and in_net = csr.Csr.in_net in
  let clusters = Array.of_list clustering.Cluster.clusters in
  let nl = Array.length clusters in
  (* per live cluster *)
  let mem = Array.make nl [||] in
  let mem_len = Array.make nl 0 in
  let ent = Array.make nl [||] in
  let ent_len = Array.make nl 0 in
  let n_pis = Array.make nl 0 in
  let from = Array.make nl 1 in
  let owner = Array.make (Netgraph.n_nodes g) (-1) in
  let net_stamp = Array.make (max m 1) 0 in
  let stamp = ref 0 in
  let buf = ref (Array.make 64 0) in
  let ensure_buf k = if Array.length !buf < k then buf := Array.make (2 * k) 0 in
  Array.iteri
    (fun i (cl : Cluster.cluster) ->
      mem.(i) <- Array.copy cl.Cluster.vertices;
      mem_len.(i) <- Array.length cl.Cluster.vertices;
      Array.iter (fun v -> owner.(v) <- i) cl.Cluster.vertices)
    clusters;
  for i = 0 to nl - 1 do
    incr stamp;
    let s = !stamp in
    let k = ref 0 in
    for t = 0 to mem_len.(i) - 1 do
      let v = mem.(i).(t) in
      if (Circuit.node c v).Circuit.kind = Gate.Input then
        n_pis.(i) <- n_pis.(i) + 1;
      for ii = in_off.(v) to in_off.(v + 1) - 1 do
        let e = in_net.(ii) in
        if owner.(net_src.(e)) <> i && net_stamp.(e) <> s then begin
          net_stamp.(e) <- s;
          ensure_buf (!k + 1);
          !buf.(!k) <- e;
          incr k
        end
      done
    done;
    ent.(i) <- Array.sub !buf 0 !k;
    ent_len.(i) <- !k
  done;
  (* index-ordered alive list *)
  let head = ref (if nl > 0 then 0 else -1) in
  let tail = ref (nl - 1) in
  let prev = Array.init nl (fun i -> i - 1) in
  let next = Array.init nl (fun i -> if i = nl - 1 then -1 else i + 1) in
  let alive = Array.make (max nl 1) true in
  (* alive non-locked count, for the candidate-cap decision *)
  let alivec = ref 0 in
  Array.iter
    (fun (cl : Cluster.cluster) -> if not cl.Cluster.locked then incr alivec)
    clusters;
  let unlink i =
    if prev.(i) >= 0 then next.(prev.(i)) <- next.(i) else head := next.(i);
    if next.(i) >= 0 then prev.(next.(i)) <- prev.(i) else tail := prev.(i);
    alive.(i) <- false;
    if not clusters.(i).Cluster.locked then decr alivec
  in
  (* iota of merging o with gi, and entering nets the merge removes;
     iota only grows as the sweep proceeds, so a candidate that cannot
     fit under l_k is rejected without finishing its sweep *)
  let exception Too_big in
  let score o gi =
    incr stamp;
    let s = !stamp in
    let allowance = p.Params.l_k - n_pis.(o) - n_pis.(gi) in
    if allowance < 0 then raise Too_big;
    let union = ref 0 in
    let sweep arr len =
      for t = 0 to len - 1 do
        let e = Array.unsafe_get arr t in
        let ow = Array.unsafe_get owner (Array.unsafe_get net_src e) in
        if ow <> o && ow <> gi && Array.unsafe_get net_stamp e <> s then begin
          Array.unsafe_set net_stamp e s;
          incr union;
          if !union > allowance then raise Too_big
        end
      done
    in
    sweep ent.(o) ent_len.(o);
    sweep ent.(gi) ent_len.(gi);
    let iota = !union + n_pis.(o) + n_pis.(gi) in
    let removed = ent_len.(o) + ent_len.(gi) - !union in
    (iota, removed)
  in
  let merge o gi =
    for t = 0 to mem_len.(gi) - 1 do
      owner.(mem.(gi).(t)) <- o
    done;
    let lo = mem_len.(o) and lg = mem_len.(gi) in
    if lo + lg > Array.length mem.(o) then begin
      let grown = Array.make (max (lo + lg) (2 * lo)) 0 in
      Array.blit mem.(o) 0 grown 0 lo;
      mem.(o) <- grown
    end;
    Array.blit mem.(gi) 0 mem.(o) lo lg;
    mem_len.(o) <- lo + lg;
    incr stamp;
    let s = !stamp in
    ensure_buf (ent_len.(o) + ent_len.(gi));
    let k = ref 0 in
    let keep arr len =
      for t = 0 to len - 1 do
        let e = arr.(t) in
        if owner.(net_src.(e)) <> o && net_stamp.(e) <> s then begin
          net_stamp.(e) <- s;
          !buf.(!k) <- e;
          incr k
        end
      done
    in
    keep ent.(o) ent_len.(o);
    keep ent.(gi) ent_len.(gi);
    ent.(o) <- Array.sub !buf 0 !k;
    ent_len.(o) <- !k;
    n_pis.(o) <- n_pis.(o) + n_pis.(gi);
    from.(o) <- from.(o) + from.(gi);
    unlink gi
  in
  let cap = p.Params.max_merge_candidates in
  let cand = Array.make (max nl 1) 0 in
  let sample = Array.make (max (min nl cap) 1) 0 in
  (* sampling pool over non-locked clusters, compacted lazily as they
     die, so one greedy step costs O(cap) even with 10^5 clusters live *)
  let pool = Array.make (max nl 1) 0 in
  let p_len = ref 0 in
  Array.iteri
    (fun i (cl : Cluster.cluster) ->
      if not cl.Cluster.locked then begin
        pool.(!p_len) <- i;
        incr p_len
      end)
    clusters;
  let picked = Array.make (max nl 1) 0 in
  let pick_s = ref 0 in
  (* alive non-locked candidates, ascending; above the cap keep the
     cap/2 smallest clusters (the list tail) and sample the rest *)
  let candidates () =
    let h = cap / 2 in
    let keep = cap - h in
    if !alivec <= 2 * cap then begin
      let len = ref 0 in
      let i = ref !head in
      while !i >= 0 do
        if not clusters.(!i).Cluster.locked then begin
          cand.(!len) <- !i;
          incr len
        end;
        i := next.(!i)
      done;
      if !len <= cap then (cand, !len)
      else begin
        let hlen = !len - h in
        Array.blit cand hlen sample 0 h;
        for t = 0 to keep - 1 do
          let j = t + Prng.int rng (hlen - t) in
          let tmp = cand.(t) in
          cand.(t) <- cand.(j);
          cand.(j) <- tmp;
          sample.(h + t) <- cand.(t)
        done;
        (sample, cap)
      end
    end
    else begin
      (* far above the cap: collect the tail by walking the alive list
         backward, then draw the head sample from the pool, rejecting
         dead entries (compacting as encountered), tail members and
         repeats — uniform without replacement over the same head set *)
      incr pick_s;
      let s = !pick_s in
      let got = ref 0 in
      let i = ref !tail in
      while !got < h do
        if not clusters.(!i).Cluster.locked then begin
          incr got;
          sample.(h - !got) <- !i;
          picked.(!i) <- s
        end;
        i := prev.(!i)
      done;
      let t = ref 0 in
      while !t < keep do
        let idx = Prng.int rng !p_len in
        let c = pool.(idx) in
        if not alive.(c) then begin
          decr p_len;
          pool.(idx) <- pool.(!p_len)
        end
        else if picked.(c) <> s then begin
          picked.(c) <- s;
          sample.(h + !t) <- c;
          incr t
        end
      done;
      (sample, cap)
    end
  in
  let merges = ref 0 in
  let partitions = ref [] in
  while !head >= 0 do
    let oi = !head in
    unlink oi;
    let o_locked = clusters.(oi).Cluster.locked in
    let continue = ref true in
    while (not o_locked) && !continue && ent_len.(oi) + n_pis.(oi) < p.Params.l_k
    do
      let arr, len = candidates () in
      let bg = ref 0 and br = ref 0 and bi = ref (-1) in
      for t = 0 to len - 1 do
        let gi = arr.(t) in
        match score oi gi with
        | exception Too_big -> ()
        | iota, removed ->
          (* the sweep allowance guarantees iota <= l_k here *)
          let gain = p.Params.l_k - iota in
          if !bi < 0 || gain > !bg || (gain = !bg && removed > !br) then begin
            bg := gain;
            br := removed;
            bi := gi
          end
      done;
      if !bi < 0 then continue := false
      else begin
        merge oi !bi;
        incr merges
      end
    done;
    let vertices = Array.sub mem.(oi) 0 mem_len.(oi) in
    Array.sort compare vertices;
    partitions :=
      {
        vertices;
        input_count = ent_len.(oi) + n_pis.(oi);
        merged_from = from.(oi);
        oversize = clusters.(oi).Cluster.oversize;
        locked = o_locked;
      }
      :: !partitions
  done;
  finalize g !partitions !merges

let run ?csr c g (clustering : Cluster.t) (p : Params.t) rng =
  match csr with
  | None -> run_hashed c g clustering p rng
  | Some csr -> run_flat csr c g clustering p rng
