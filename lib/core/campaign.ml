module Circuit = Ppet_netlist.Circuit
module Segment = Ppet_netlist.Segment
module Benchmarks = Ppet_netlist.Benchmarks
module Generator = Ppet_netlist.Generator
module S27 = Ppet_netlist.S27
module Simulator = Ppet_bist.Simulator
module Fault = Ppet_bist.Fault
module Fault_engine = Ppet_bist.Fault_engine
module Batch = Ppet_bist.Fault_engine.Batch
module Aliasing = Ppet_bist.Aliasing
module Pipeline = Ppet_bist.Pipeline
module Untestable = Ppet_analysis.Untestable
module Domain_pool = Ppet_parallel.Domain_pool
module Bench_stat = Ppet_obs.Bench_stat
module Obs = Ppet_obs.Obs
module Prng = Ppet_digraph.Prng

type plan = {
  profiles : string list;
  params : Params.t;
  words : int;
  drop : bool;
  max_width : int;
  min_coverage : float;
  prune : bool;
  probe : string option;
  probe_repeat : int;
  dispatch : Cost_model.t option;
}

let default_plan =
  {
    profiles = Benchmarks.names;
    params = Params.default;
    words = 8;
    drop = true;
    max_width = 14;
    min_coverage = 0.0;
    prune = true;
    probe = None;
    probe_repeat = 11;
    dispatch = None;
  }

type circuit_report = {
  circuit : string;
  gates : int;
  dffs : int;
  segments : int;
  tested : int;
  skipped : int;
  n_faults : int;
  n_untestable : int;
  n_detected : int;
  coverage : float;
  coverage_raw : float;
  aliasing : float;
  test_cycles : float;
  vectors : int;
  word_evals : int;
  wall_ns : float;
}

type probe_report = {
  probe_circuit : string;
  probe_gates : int;
  probe_faults : int;
  probe_batches : int;
  probe_words : int;
  single_ns : float;
  multi_ns : float;
  speedup : float;
}

type report = {
  words : int;
  drop : bool;
  max_width : int;
  prune : bool;
  circuits : circuit_report list;
  probe : probe_report option;
}

let validate_profiles names =
  List.iter
    (fun name ->
      if
        name <> "s27"
        && (not (List.mem name Benchmarks.names))
        && not (List.mem name Benchmarks.synthetic_names)
      then
        raise
          (Circuit.Error
             (Printf.sprintf
                "%S is neither \"s27\", a known benchmark (%s), nor a \
                 synthetic profile (%s)"
                name
                (String.concat ", " Benchmarks.names)
                (String.concat ", " Benchmarks.synthetic_names))))
    names

let validate plan =
  if plan.profiles = [] then
    invalid_arg "Campaign.run: profiles must be non-empty";
  if plan.words < 1 then invalid_arg "Campaign.run: words must be >= 1";
  if plan.max_width < 0 || plan.max_width > 20 then
    invalid_arg "Campaign.run: max_width must be in 0..20";
  if plan.min_coverage < 0.0 || plan.min_coverage > 1.0 then
    invalid_arg "Campaign.run: min_coverage must be in 0..1";
  if plan.probe_repeat < 1 then
    invalid_arg "Campaign.run: probe_repeat must be >= 1";
  validate_profiles plan.profiles;
  Option.iter (fun p -> validate_profiles [ p ]) plan.probe

let now_ns () = Unix.gettimeofday () *. 1e9

(* Generate directly instead of through the memoising Benchmarks.circuit
   cache: campaign workers run concurrently and the cache's plain
   Hashtbl is not theirs to race on. Same default seed, so the circuits
   are identical to what `merced selftest <name>` compiles. *)
let generate name =
  if name = "s27" then S27.circuit ()
  else
    let e = Benchmarks.find name in
    Generator.generate ~seed:0x5EEDL e.Benchmarks.profile

let run_circuit ?pool plan name =
  let t0 = now_ns () in
  let c = generate name in
  (* per-circuit auto-dispatch: the decision is a pure function of
     (model, structural stats, pool width), so the report stays
     deterministic — and the result-bearing knobs it may change
     (partitioner, word width) do not depend on the pool width, keeping
     the report byte-identical across --jobs *)
  let decision =
    Option.map
      (fun m ->
        let jobs_available =
          match pool with Some p -> Domain_pool.jobs p | None -> 1
        in
        Cost_model.decide m ~jobs_available (Cost_model.stats_of_circuit c))
      plan.dispatch
  in
  let params =
    match decision with
    | Some d -> Cost_model.apply_decision d plan.params
    | None -> plan.params
  in
  let words =
    match decision with Some d -> d.Cost_model.d_words | None -> plan.words
  in
  let pool =
    match decision with Some d when d.Cost_model.d_jobs <= 1 -> None | _ -> pool
  in
  let r = Merced.run ~params c in
  let sim = Simulator.create c in
  let segs = Merced.segments r in
  let policy =
    Batch.policy ~words ?pool
      ~drop:(if plan.drop then Batch.Drop else Batch.Keep)
      ~cutover:params.Params.fault_cutover ()
  in
  let uctx = if plan.prune then Some (Untestable.ctx c) else None in
  let tested = ref 0 and skipped = ref 0 in
  let n_faults = ref 0 and n_untestable = ref 0 and n_detected = ref 0 in
  let vectors = ref 0 and word_evals = ref 0 in
  let alias = ref 0.0 in
  List.iter
    (fun seg ->
      let w = Segment.input_count seg in
      if w > plan.max_width then incr skipped
      else begin
        incr tested;
        let faults = Fault.collapse c (Fault.of_segment c seg) in
        (* the static pre-pass: provably-untestable faults never reach
           the simulator. Verdicts are per-fault (fault + patterns
           only), so the detected set over the surviving faults is
           bit-identical to the unpruned engine's. *)
        let simulated =
          match uctx with
          | None -> faults
          | Some uctx ->
            let cls = Untestable.classify uctx seg faults in
            n_untestable := !n_untestable + List.length cls.Untestable.untestable;
            cls.Untestable.testable
        in
        n_faults := !n_faults + List.length faults;
        let patterns = Fault_engine.exhaustive_patterns ~width:w in
        let engine = Fault_engine.create sim seg in
        let o = Batch.run engine policy ~patterns simulated in
        n_detected := !n_detected + o.Batch.n_detected;
        vectors := !vectors + (1 lsl w);
        word_evals := !word_evals + o.Batch.word_evals;
        (* a zero-input segment has no CBIT stream to compact, so it
           contributes no aliasing term *)
        if w > 0 then alias := !alias +. Aliasing.probability ~width:w
      end)
    segs;
  let sched = Phasing.schedule r in
  {
    circuit = name;
    gates = Array.length (Circuit.combinational c);
    dffs = Array.length (Circuit.dffs c);
    segments = List.length segs;
    tested = !tested;
    skipped = !skipped;
    n_faults = !n_faults;
    n_untestable = !n_untestable;
    n_detected = !n_detected;
    coverage =
      (let testable = !n_faults - !n_untestable in
       if testable = 0 then 1.0
       else float_of_int !n_detected /. float_of_int testable);
    coverage_raw =
      (if !n_faults = 0 then 1.0
       else float_of_int !n_detected /. float_of_int !n_faults);
    aliasing = Float.min 1.0 !alias;
    test_cycles = Pipeline.total_cycles sched;
    vectors = !vectors;
    word_evals = !word_evals;
    wall_ns = now_ns () -. t0;
  }

(* The throughput probe: a fixed fault-simulation workload timed once
   with the single-word kernel and once at [plan.words]. The segment is
   the largest Merced cluster of the probe circuit — the campaign's own
   unit of work, and the regime that matters: interior gates are
   unobserved, so a fault must propagate through the member cone to a
   boundary output before it detects. Dropping is off so both runs do
   exactly the same per-fault-pattern work and the wall-clock ratio is
   the throughput ratio. *)
let probe_workload params c sim =
  let r = Merced.run ~params c in
  let seg =
    match Merced.segments r with
    | [] -> invalid_arg "Campaign.run: probe circuit has no segments"
    | s :: rest ->
      List.fold_left
        (fun best s ->
          if Array.length s.Segment.members > Array.length best.Segment.members
          then s
          else best)
        s rest
  in
  let faults = Fault.collapse c (Fault.of_segment c seg) in
  let n_in = Array.length (Segment.input_signals seg) in
  let rng = Prng.create 0xBE5CL in
  let word () =
    Int64.to_int (Int64.logand (Prng.next_int64 rng) (Int64.of_int max_int))
  in
  let patterns = List.init 64 (fun _ -> Array.init n_in (fun _ -> word ())) in
  (Fault_engine.create sim seg, seg, patterns, faults)

let run_probe plan name =
  let c = generate name in
  let sim = Simulator.create c in
  let engine, seg, patterns, faults = probe_workload plan.params c sim in
  let time words =
    let pol = Batch.policy ~words ~drop:Batch.Keep () in
    (Bench_stat.measure ~repeat:plan.probe_repeat (fun () ->
         ignore (Batch.run engine pol ~patterns faults)))
      .Bench_stat.median_ns
  in
  let single_ns = time 1 in
  let multi_ns = time plan.words in
  {
    probe_circuit = name;
    probe_gates = Array.length seg.Segment.members;
    probe_faults = List.length faults;
    probe_batches = List.length patterns;
    probe_words = plan.words;
    single_ns;
    multi_ns;
    speedup = (if multi_ns > 0.0 then single_ns /. multi_ns else 0.0);
  }

let run ?pool plan =
  validate plan;
  let names = Array.of_list plan.profiles in
  let n = Array.length names in
  let slots = Array.make n None in
  let do_one i = slots.(i) <- Some (run_circuit ?pool plan names.(i)) in
  (match pool with
   | Some p when Domain_pool.jobs p > 1 && n > 1 ->
     (* work-stealing over circuits: costs vary by two orders of
        magnitude between s510 and s38584, so static chunking would
        idle most workers. Results land in plan order via the slot
        array, so scheduling cannot leak into the report. *)
     let next = Atomic.make 0 in
     Domain_pool.run p (fun _w ->
         let rec loop () =
           let i = Atomic.fetch_and_add next 1 in
           if i < n then begin
             do_one i;
             loop ()
           end
         in
         loop ())
   | _ ->
     for i = 0 to n - 1 do
       do_one i
     done);
  if Obs.enabled () then Obs.add Obs.Metric.Campaign_circuits n;
  let circuits =
    Array.to_list
      (Array.map
         (function Some cr -> cr | None -> assert false)
         slots)
  in
  let probe = Option.map (run_probe plan) plan.probe in
  {
    words = plan.words;
    drop = plan.drop;
    max_width = plan.max_width;
    prune = plan.prune;
    circuits;
    probe;
  }

let below_min plan report =
  if plan.min_coverage <= 0.0 then []
  else List.filter (fun cr -> cr.coverage < plan.min_coverage) report.circuits

let human report =
  let buf = Buffer.create 1024 in
  Printf.bprintf buf
    "campaign: %d circuits, words %d, drop %s, max width %d, prune %s\n"
    (List.length report.circuits)
    report.words
    (if report.drop then "on" else "off")
    report.max_width
    (if report.prune then "on" else "off");
  Printf.bprintf buf "%-12s %6s %5s %5s %7s %8s %7s %9s %9s %10s %12s\n"
    "circuit" "gates" "dffs" "segs" "tested" "faults" "pruned" "detected"
    "coverage" "aliasing" "test-cycles";
  List.iter
    (fun cr ->
      Printf.bprintf buf
        "%-12s %6d %5d %5d %7d %8d %7d %9d %8.2f%% %10.2e %12.0f\n"
        cr.circuit cr.gates cr.dffs cr.segments cr.tested cr.n_faults
        cr.n_untestable cr.n_detected
        (100.0 *. cr.coverage)
        cr.aliasing cr.test_cycles)
    report.circuits;
  let tf = List.fold_left (fun a cr -> a + cr.n_faults) 0 report.circuits in
  let tu = List.fold_left (fun a cr -> a + cr.n_untestable) 0 report.circuits in
  let td = List.fold_left (fun a cr -> a + cr.n_detected) 0 report.circuits in
  let tt = List.fold_left (fun a cr -> a + cr.tested) 0 report.circuits in
  let ts = List.fold_left (fun a cr -> a + cr.skipped) 0 report.circuits in
  let tx = tf - tu in
  Printf.bprintf buf
    "total: %d/%d faults detected (%d untestable pruned; coverage %.2f%% of \
     testable, %.2f%% raw), %d segments tested, %d skipped\n"
    td tf tu
    (if tx = 0 then 100.0 else 100.0 *. float_of_int td /. float_of_int tx)
    (if tf = 0 then 100.0 else 100.0 *. float_of_int td /. float_of_int tf)
    tt ts;
  (match report.probe with
   | None -> ()
   | Some p ->
     Printf.bprintf buf
       "probe %s: %d gates, %d faults, %d batches: words %d vs 1 -> %.1fx \
        per-fault-pattern throughput\n"
       p.probe_circuit p.probe_gates p.probe_faults p.probe_batches
       p.probe_words p.speedup);
  Buffer.contents buf

let to_json ?(normalise = false) report =
  let buf = Buffer.create 2048 in
  let ns x = if normalise then 0.0 else x in
  Printf.bprintf buf
    "{\n  \"name\": \"campaign\",\n  \"words\": %d,\n  \"drop\": %b,\n  \
     \"max_width\": %d,\n  \"prune\": %b,\n  \"circuits\": ["
    report.words report.drop report.max_width report.prune;
  let first = ref true in
  List.iter
    (fun cr ->
      Printf.bprintf buf "%s\n    { \"name\": \"%s\", \"gates\": %d, \
                          \"dffs\": %d, \"segments\": %d, \"tested\": %d, \
                          \"skipped\": %d, \"faults\": %d, \"untestable\": \
                          %d, \"testable\": %d, \"detected\": %d, \
                          \"coverage\": %.6g, \"coverage_raw\": %.6g, \
                          \"aliasing\": %.6g, \"test_cycles\": %.6g, \
                          \"vectors\": %d, \"word_evals\": %d, \"wall_ns\": \
                          %.6g }"
        (if !first then "" else ",")
        cr.circuit cr.gates cr.dffs cr.segments cr.tested cr.skipped
        cr.n_faults cr.n_untestable
        (cr.n_faults - cr.n_untestable)
        cr.n_detected cr.coverage cr.coverage_raw cr.aliasing cr.test_cycles
        cr.vectors cr.word_evals (ns cr.wall_ns);
      first := false)
    report.circuits;
  Buffer.add_string buf "\n  ]";
  (match report.probe with
   | None -> ()
   | Some p ->
     Printf.bprintf buf
       ",\n  \"probe\": { \"circuit\": \"%s\", \"gates\": %d, \"faults\": %d, \
        \"batches\": %d, \"words\": %d, \"single_ns\": %.6g, \"multi_ns\": \
        %.6g, \"speedup\": %.6g }"
       p.probe_circuit p.probe_gates p.probe_faults p.probe_batches
       p.probe_words (ns p.single_ns) (ns p.multi_ns) (ns p.speedup));
  Buffer.add_string buf "\n}\n";
  Buffer.contents buf
