(** Whole-chip self-test campaigns — the paper's Tables 11/12 loop at
    fleet scale.

    A campaign compiles every requested benchmark profile with Merced,
    then pseudo-exhaustively fault-simulates each partition through
    {!Ppet_bist.Fault_engine.Batch} (multi-word kernel, fault dropping)
    and reports per-circuit coverage, MISR-aliasing bound and
    pipelined testing time. Circuits run concurrently on a
    {!Ppet_parallel.Domain_pool.t}; when only one circuit is requested
    (or the pool has one job) the parallelism falls through to the fault
    partitions inside {!Ppet_bist.Fault_engine.Batch.run} instead —
    nested dispatch degrades to the serial path by design.

    All result fields are deterministic (seeded generation, exhaustive
    patterns, order-independent verdicts); only the [wall_ns] stamps and
    the optional throughput probe vary run to run, which
    [to_json ~normalise:true] zeroes for golden tests. *)

type plan = {
  profiles : string list;
      (** circuit names: ["s27"], the seventeen paper benchmarks, or
          synthetic profiles *)
  params : Params.t;
  words : int;        (** {!Ppet_bist.Fault_engine.Batch.policy} word width *)
  drop : bool;        (** fault dropping ([Drop] when true, [Keep] otherwise) *)
  max_width : int;
      (** segments with more inputs than this are skipped (exhaustive
          bound), mirroring [merced selftest] *)
  min_coverage : float;
      (** [> 0.]: circuits whose testable-fault coverage lands below
          this fail the campaign (CLI exit 1); [0.] disables the gate *)
  prune : bool;
      (** statically classify each segment's faults with
          {!Ppet_analysis.Untestable} and keep provably-untestable ones
          away from the simulator. Per-fault verdicts depend only on the
          fault and the exhaustive patterns, so pruning never changes
          which testable faults detect — it only removes guaranteed
          misses from the workload and the coverage denominator *)
  probe : string option;
      (** measure single-word vs multi-word per-fault-pattern throughput
          on this circuit and record it in the report *)
  probe_repeat : int; (** probe timing repetitions (median of) *)
  dispatch : Cost_model.t option;
      (** [--dispatch auto]: decide partitioner, word width, pool use
          and cutover per circuit from this cost model, overriding
          [params.partitioner], [params.fault_cutover] and [words]. The
          decision is pure in (model, structural stats, pool width), and
          the result-bearing knobs it changes (partitioner, words) do
          not depend on the pool width — the report stays byte-identical
          across [--jobs] *)
}

val default_plan : plan
(** All seventeen paper profiles, default params, [words = 8], dropping
    on, [max_width = 14], no coverage gate, pruning on, no probe, no
    auto-dispatch. *)

type circuit_report = {
  circuit : string;
  gates : int;            (** combinational cells *)
  dffs : int;
  segments : int;         (** partitions Merced produced *)
  tested : int;
  skipped : int;          (** iota above [max_width] *)
  n_faults : int;         (** collapsed faults across tested segments *)
  n_untestable : int;     (** statically pruned (0 when [prune] is off) *)
  n_detected : int;
  coverage : float;
      (** detected / (faults - untestable); 1.0 when no testable faults *)
  coverage_raw : float;
      (** detected / faults — the unpruned denominator; 1.0 when no
          faults *)
  aliasing : float;
      (** union bound of per-segment MISR escape probabilities
          (sum of 2^-iota, capped at 1.0) over tested segments *)
  test_cycles : float;    (** pipelined self-test length incl. scan,
                              {!Ppet_bist.Pipeline.total_cycles} *)
  vectors : int;          (** exhaustive vectors applied, sum of 2^iota *)
  word_evals : int;       (** gate-word evaluations the batch engine did *)
  wall_ns : float;        (** compile + simulate wall clock *)
}

type probe_report = {
  probe_circuit : string;
  probe_gates : int;      (** member gates of the probe segment *)
  probe_faults : int;
  probe_batches : int;    (** pattern word batches per run *)
  probe_words : int;      (** multi-word width measured *)
  single_ns : float;      (** median wall ns of the words = 1 run *)
  multi_ns : float;       (** median wall ns at [probe_words] *)
  speedup : float;
      (** single_ns / multi_ns — per-fault-pattern throughput ratio (the
          workload is fixed with dropping off, so wall-clock ratio and
          per-fault-pattern ratio coincide) *)
}

type report = {
  words : int;
  drop : bool;
  max_width : int;
  prune : bool;
  circuits : circuit_report list;  (** in plan profile order *)
  probe : probe_report option;
}

val validate_profiles : string list -> unit
(** Raises [Ppet_netlist.Circuit.Error] when a name is neither ["s27"],
    a paper benchmark, nor a synthetic profile — the CLI maps it to
    exit 2. *)

val run : ?pool:Ppet_parallel.Domain_pool.t -> plan -> report
(** Execute the campaign. Raises [Invalid_argument] on bad knobs
    ([words]/[max_width]/[min_coverage]/[probe_repeat]) and
    [Ppet_netlist.Circuit.Error] on unknown profiles. *)

val below_min : plan -> report -> circuit_report list
(** Circuits whose testable-fault coverage misses [plan.min_coverage]
    (empty when the gate is disabled). *)

val human : report -> string
(** Byte-stable table: one row per circuit plus a totals line. Wall
    clocks and probe timings are deliberately excluded so the daemon op
    and the one-shot CLI render identical bytes (the probe appears as a
    separate line with its measured ratio when present). *)

val to_json : ?normalise:bool -> report -> string
(** The BENCH_campaign.json artefact. [~normalise:true] zeroes every
    timing field ([wall_ns], probe nanoseconds and speedup) for golden
    schema tests. *)
