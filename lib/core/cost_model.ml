module Circuit = Ppet_netlist.Circuit

(* The calibrated per-stage cost model behind `--dispatch auto`.

   Each pipeline stage gets one linear model over the circuit statistics
   already stamped into BENCH_pipeline.json entries; `merced calibrate`
   fits the coefficients by ridge-regularised least squares and persists
   them as the versioned COST_MODEL.json artefact. The dispatcher then
   turns predictions into the three perf knobs (fault-sim pool use,
   word width, pool cutover) and the partitioner choice — a pure
   function of (model bytes, circuit stats, available jobs), which is
   what makes auto-dispatch cacheable and differential-testable. *)

let schema_version = 1

(* ------------------------------------------------------------------ *)
(* features                                                            *)

let feature_names =
  [| "intercept"; "gates"; "dffs"; "edges"; "segments"; "largest_cluster" |]

let n_features = Array.length feature_names

let features_of (s : Report.bench_circuit) =
  [|
    1.0;
    float_of_int s.Report.gates;
    float_of_int s.Report.dffs;
    float_of_int s.Report.edges;
    float_of_int s.Report.segments;
    float_of_int s.Report.largest_cluster;
  |]

(* The stats a decision can be made from before any compile ran:
   structural features only, partition shape unstamped. Every
   auto-dispatch surface (CLI, daemon ops, campaign, the comparison
   harness) goes through here so they decide from identical features. *)
let stats_of_circuit c =
  {
    Report.gates = Array.length (Circuit.combinational c);
    dffs = Array.length (Circuit.dffs c);
    edges =
      Ppet_digraph.Netgraph.n_nets (Ppet_netlist.To_graph.partition_view c);
    segments = 0;
    largest_cluster = 0;
  }

(* The fit must see every training row through the same lens [decide]
   evaluates with. `merced bench` stamps rows with the post-compile
   partition shape (the regression guard uses it to refuse cross-workload
   comparisons), but at dispatch time no compile has run and
   [stats_of_circuit] carries segments = largest_cluster = 0. Training on
   features the dispatcher can never supply lets an underdetermined fit
   explain cost with them — and then extrapolate garbage (negative FM,
   cheap words=1) once they collapse to zero at decision time. Zeroed
   columns drop out of the normal equations, so the ridge solve pins
   their coefficients to exactly 0. *)
let decision_stats (s : Report.bench_circuit) =
  { s with Report.segments = 0; largest_cluster = 0 }

(* ------------------------------------------------------------------ *)
(* the model                                                           *)

type stage_model = {
  stage : string;
  rows : int;          (* observations the fit saw *)
  coeffs : float array; (* length n_features, feature order above *)
}

type t = {
  ridge : float;
  stages : stage_model list;  (* sorted by stage name *)
}

let find t stage = List.find_opt (fun m -> m.stage = stage) t.stages

let predict_coeffs coeffs x =
  let acc = ref 0.0 in
  for i = 0 to n_features - 1 do
    acc := !acc +. (coeffs.(i) *. x.(i))
  done;
  (* a linear fit extrapolated to tiny circuits can go negative; a cost
     is not allowed to *)
  Float.max 0.0 !acc

let predict t ~stage stats =
  Option.map
    (fun m -> predict_coeffs m.coeffs (features_of stats))
    (find t stage)

(* ------------------------------------------------------------------ *)
(* fitting: ridge least squares via the normal equations               *)

(* Solve (X^T X + L) w = X^T y by Gaussian elimination with partial
   pivoting — a 6x6 system, so numerics stay trivial. The ridge term is
   relative per feature (lambda_j = ridge * max(XtX_jj, 1)), which keeps
   the regularisation meaningful across the ~10^0..10^7 spread of the
   raw feature scales and makes the system nonsingular even when a
   feature column is constant (fewer circuits than features is the
   normal case for the default four-circuit sweep).

   Coefficients are constrained nonnegative. Every feature is a size,
   and no pipeline stage gets cheaper on a bigger circuit — but stage
   costs are convex in practice (FM is quadratic), so an unconstrained
   line through a 10..10'000-gate sweep buys its fit at the big end
   with a negative intercept and goes below zero on the small
   circuits, where the clamp in [predict_coeffs] would then make
   expensive baselines look free to [decide]. The active-set loop is
   the standard trick: solve the ridge system, pin the most negative
   coefficient to zero, re-solve — at most n_features rounds, fully
   deterministic. *)
let solve_normal ~ridge xs ys =
  let a0 = Array.make_matrix n_features n_features 0.0 in
  let b0 = Array.make n_features 0.0 in
  List.iter2
    (fun x y ->
      for i = 0 to n_features - 1 do
        b0.(i) <- b0.(i) +. (x.(i) *. y);
        for j = 0 to n_features - 1 do
          a0.(i).(j) <- a0.(i).(j) +. (x.(i) *. x.(j))
        done
      done)
    xs ys;
  for i = 0 to n_features - 1 do
    a0.(i).(i) <- a0.(i).(i) +. (ridge *. Float.max 1.0 a0.(i).(i))
  done;
  let n = n_features in
  let solve_active active =
    let a = Array.map Array.copy a0 in
    let b = Array.copy b0 in
    (* pinned features get an identity row/column, forcing w_j = 0
       without disturbing the restricted subsystem *)
    for j = 0 to n - 1 do
      if not active.(j) then begin
        for k = 0 to n - 1 do
          a.(j).(k) <- 0.0;
          a.(k).(j) <- 0.0
        done;
        a.(j).(j) <- 1.0;
        b.(j) <- 0.0
      end
    done;
    (* elimination *)
    for col = 0 to n - 1 do
      let pivot = ref col in
      for r = col + 1 to n - 1 do
        if Float.abs a.(r).(col) > Float.abs a.(!pivot).(col) then pivot := r
      done;
      if !pivot <> col then begin
        let tmp = a.(col) in
        a.(col) <- a.(!pivot);
        a.(!pivot) <- tmp;
        let tb = b.(col) in
        b.(col) <- b.(!pivot);
        b.(!pivot) <- tb
      end;
      let p = a.(col).(col) in
      if Float.abs p > 1e-12 then
        for r = col + 1 to n - 1 do
          let f = a.(r).(col) /. p in
          if f <> 0.0 then begin
            for c = col to n - 1 do
              a.(r).(c) <- a.(r).(c) -. (f *. a.(col).(c))
            done;
            b.(r) <- b.(r) -. (f *. b.(col))
          end
        done
    done;
    let w = Array.make n 0.0 in
    for row = n - 1 downto 0 do
      let acc = ref b.(row) in
      for c = row + 1 to n - 1 do
        acc := !acc -. (a.(row).(c) *. w.(c))
      done;
      w.(row) <-
        (if Float.abs a.(row).(row) > 1e-12 then !acc /. a.(row).(row)
         else 0.0)
    done;
    w
  in
  let active = Array.make n true in
  let rec nnls () =
    let w = solve_active active in
    let worst = ref (-1) in
    for j = 0 to n - 1 do
      if active.(j) && w.(j) < 0.0 && (!worst < 0 || w.(j) < w.(!worst)) then
        worst := j
    done;
    if !worst < 0 then w
    else begin
      active.(!worst) <- false;
      nnls ()
    end
  in
  nnls ()

(* Map a BENCH_pipeline entry onto its stage key. The two fault_sim
   rows of the sweep differ only in job count, so the pooled one gets
   its own key — the serial/pooled prediction gap is exactly what the
   cutover decision is fitted from. *)
let stage_key (e : Report.bench_entry) =
  match String.index_opt e.Report.entry_name '/' with
  | None -> None
  | Some i ->
    let phase =
      String.sub e.Report.entry_name (i + 1)
        (String.length e.Report.entry_name - i - 1)
    in
    if phase = "fault_sim" && e.Report.jobs > 1 then Some "fault_sim@pooled"
    else Some phase

let default_ridge = 1e-3

let fit ?(ridge = default_ridge) entries =
  if ridge < 0.0 then invalid_arg "Cost_model.fit: ridge must be >= 0";
  let groups : (string, (float array * float) list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter
    (fun (e : Report.bench_entry) ->
      match (stage_key e, e.Report.circuit_stats) with
      | Some key, Some stats when e.Report.median_ns > 0.0 ->
        let row = (features_of (decision_stats stats), e.Report.median_ns) in
        (match Hashtbl.find_opt groups key with
         | Some l -> l := row :: !l
         | None -> Hashtbl.add groups key (ref [ row ]))
      | _ -> ())
    entries;
  let stages =
    Hashtbl.fold
      (fun stage rows acc ->
        let rows = List.rev !rows in
        let xs = List.map fst rows and ys = List.map snd rows in
        { stage; rows = List.length rows; coeffs = solve_normal ~ridge xs ys }
        :: acc)
      groups []
  in
  let stages = List.sort (fun a b -> compare a.stage b.stage) stages in
  if stages = [] then
    raise
      (Circuit.Error
         "calibrate: no usable bench entries (every row needs circuit \
          stats and a positive median — re-record with `merced bench`)");
  { ridge; stages }

(* ------------------------------------------------------------------ *)
(* persistence (COST_MODEL.json)                                       *)

(* Emitted in the same line-oriented shape as Report.bench_json: one
   stage object per line, keys in a fixed order, so the reader below
   stays a scan of this module's own output. *)
let to_json ?(normalise = false) t =
  let buf = Buffer.create 1024 in
  Printf.bprintf buf
    "{\n  \"name\": \"cost-model\",\n  \"schema_version\": %d,\n  \
     \"ridge\": %.6g,\n  \"features\": [%s],\n  \"stages\": ["
    schema_version t.ridge
    (String.concat ", "
       (Array.to_list (Array.map (Printf.sprintf "\"%s\"") feature_names)));
  List.iteri
    (fun i m ->
      Printf.bprintf buf "%s\n    { \"stage\": \"%s\", \"rows\": %d, \
                          \"coeffs\": [%s] }"
        (if i = 0 then "" else ",")
        (String.escaped m.stage) m.rows
        (String.concat ", "
           (Array.to_list
              (Array.map
                 (fun c -> Printf.sprintf "%.9g" (if normalise then 0.0 else c))
                 m.coeffs))))
    t.stages;
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf

let fingerprint t = Digest.to_hex (Digest.string (to_json t))

(* Minimal reader of the emitter above — one stage object per line, keys
   in a fixed order — NOT a general JSON parser (same contract as
   Report.bench_entries_of_json). *)
let of_json text =
  let field_after line key =
    let klen = String.length key in
    let rec go i =
      if i + klen > String.length line then None
      else if String.sub line i klen = key then Some (i + klen)
      else go (i + 1)
    in
    go 0
  in
  let until_delim line start ~stops =
    let stop = ref start in
    let n = String.length line in
    while !stop < n && not (List.mem line.[!stop] stops) do
      incr stop
    done;
    String.sub line start (!stop - start)
  in
  let lines = String.split_on_char '\n' text in
  let scan key parse =
    List.find_map
      (fun line ->
        match field_after line key with
        | None -> None
        | Some i -> parse line i)
      lines
  in
  let int_field key =
    scan key (fun line i ->
        int_of_string_opt (until_delim line i ~stops:[ ','; ' '; '}'; '"' ]))
  in
  let float_field key =
    scan key (fun line i ->
        float_of_string_opt (until_delim line i ~stops:[ ','; ' '; '}'; '"' ]))
  in
  let name =
    scan "\"name\": \"" (fun line i ->
        Some (until_delim line i ~stops:[ '"' ]))
  in
  let ( let* ) = Result.bind in
  let* () =
    match name with
    | Some "cost-model" -> Ok ()
    | Some other ->
      Error (Printf.sprintf "not a cost-model artefact (name %S)" other)
    | None -> Error "not a cost-model artefact (no \"name\" field)"
  in
  let* () =
    match int_field "\"schema_version\": " with
    | Some v when v = schema_version -> Ok ()
    | Some v ->
      Error
        (Printf.sprintf "unsupported schema_version %d (this build reads %d)"
           v schema_version)
    | None -> Error "missing schema_version"
  in
  let* ridge =
    match float_field "\"ridge\": " with
    | Some r when r >= 0.0 -> Ok r
    | Some r -> Error (Printf.sprintf "ridge must be >= 0, not %g" r)
    | None -> Error "missing ridge"
  in
  let parse_stage line =
    match
      ( field_after line "\"stage\": \"",
        field_after line "\"rows\": ",
        field_after line "\"coeffs\": [" )
    with
    | Some s0, Some r0, Some c0 ->
      let stage = until_delim line s0 ~stops:[ '"' ] in
      let rows = int_of_string_opt (until_delim line r0 ~stops:[ ','; ' ' ]) in
      let body = until_delim line c0 ~stops:[ ']' ] in
      let coeffs =
        String.split_on_char ',' body
        |> List.map String.trim
        |> List.filter (fun s -> s <> "")
        |> List.map float_of_string_opt
      in
      if List.exists Option.is_none coeffs || rows = None then
        Some (Error (Printf.sprintf "stage %S: malformed row" stage))
      else
        let coeffs = Array.of_list (List.map Option.get coeffs) in
        if Array.length coeffs <> n_features then
          Some
            (Error
               (Printf.sprintf "stage %S: %d coefficients, expected %d" stage
                  (Array.length coeffs) n_features))
        else if Array.exists (fun c -> not (Float.is_finite c)) coeffs then
          Some (Error (Printf.sprintf "stage %S: non-finite coefficient" stage))
        else Some (Ok { stage; rows = Option.get rows; coeffs })
    | _ -> None
  in
  let* stages =
    List.fold_left
      (fun acc line ->
        let* acc = acc in
        match parse_stage line with
        | None -> Ok acc
        | Some (Error e) -> Error e
        | Some (Ok m) -> Ok (m :: acc))
      (Ok []) lines
  in
  let stages = List.rev stages in
  if stages = [] then Error "no stage models"
  else if
    List.for_all
      (fun m -> Array.for_all (fun c -> c = 0.0) m.coeffs)
      stages
  then
    (* the zero-median analogue of the PR 6 --against fix: an all-zero
       model predicts 0 ns for everything, so every dispatch comparison
       would be a meaningless tie — refuse it up front *)
    Error
      "all-zero model (a --normalise artefact or a hand-edited file?); \
       re-fit it with `merced calibrate`"
  else Ok { ridge; stages }

let load path =
  if not (Sys.file_exists path) then
    raise (Circuit.Error (Printf.sprintf "no such cost-model file %S" path));
  match of_json (In_channel.with_open_text path In_channel.input_all) with
  | Ok t -> t
  | Error msg ->
    raise (Circuit.Error (Printf.sprintf "cost model %S: %s" path msg))

(* ------------------------------------------------------------------ *)
(* dispatch decisions                                                  *)

type decision = {
  d_partitioner : Params.partitioner;
  d_jobs : int;
  d_words : int;
  d_cutover : int;
}

(* A baseline's raw wall clock is not the number to race the flow
   heuristic against. Flow is the paper's contribution and the
   reference result the rest of the repo is validated on; FM's
   quadratic passes stop scaling past ~3k nodes and annealing's cut
   quality buys 100x the time on large circuits (EXPERIMENTS Ablation
   A). The factors price that risk in, so a baseline only dispatches
   when it is faster by more than the confidence it costs. Random is
   priced separately: its ~1.5x cut inflation (Ablation A) is not a
   confidence question but a direct hit on the objective — cut nets
   price CBIT area, the thing the paper optimises — so it dispatches
   only when flow is intractably slow, not merely slower. *)
let quality_factor = function
  | Params.Flow -> 1.0
  | Params.Fm -> 8.0
  | Params.Annealing -> 8.0
  | Params.Random -> 1024.0

let partition_stage = function
  | Params.Flow -> "partition_flow" (* synthesised below, not a key *)
  | Params.Fm -> "partition_fm"
  | Params.Annealing -> "partition_annealing"
  | Params.Random -> "partition_random"

let predict_partition t p stats =
  match p with
  | Params.Flow -> (
    (* the flow pipeline's partition cost is its three stages *)
    match
      (predict t ~stage:"flow" stats,
       predict t ~stage:"cluster" stats,
       predict t ~stage:"assign" stats)
    with
    | Some f, Some c, Some a -> Some (f +. c +. a)
    | _ -> None)
  | p -> predict t ~stage:(partition_stage p) stats

let word_stages = [ (1, "fault_sim"); (8, "fault_sim_w8"); (32, "fault_sim_w32") ]

let no_cutover = 1 lsl 30 (* "never pool": above any real segment size *)

(* Scale the circuit's shape down/up to g gates, keeping its ratios, so
   the cutover scan asks the model about smaller versions of *this*
   circuit rather than of some canonical one. *)
let scaled_stats (s : Report.bench_circuit) g =
  let ratio field =
    if s.Report.gates <= 0 then 0
    else
      int_of_float
        (Float.round
           (float_of_int g *. float_of_int field /. float_of_int s.Report.gates))
  in
  {
    Report.gates = g;
    dffs = ratio s.Report.dffs;
    edges = ratio s.Report.edges;
    segments = (if s.Report.segments = 0 then 0 else max 1 (ratio s.Report.segments));
    largest_cluster =
      (if s.Report.largest_cluster = 0 then 0
       else min g (max 1 (ratio s.Report.largest_cluster)));
  }

let decide t ~jobs_available stats =
  (* partitioner: cheapest quality-adjusted predicted cost; Flow wins
     ties and is the fallback when the model lacks the stages *)
  let d_partitioner =
    let best =
      List.fold_left
        (fun best p ->
          match predict_partition t p stats with
          | None -> best
          | Some cost ->
            let cost = cost *. quality_factor p in
            (match best with
             | Some (_, c) when c <= cost -> best
             | _ -> Some (p, cost)))
        None Params.partitioners
    in
    match best with Some (p, _) -> p | None -> Params.Flow
  in
  (* word width: cheapest measured kernel for this shape *)
  let d_words =
    let best =
      List.fold_left
        (fun best (w, stage) ->
          match predict t ~stage stats with
          | None -> best
          | Some cost ->
            (match best with
             | Some (_, c) when c <= cost -> best
             | _ -> Some (w, cost)))
        None word_stages
    in
    match best with Some (w, _) -> w | None -> 8
  in
  (* pool use: pay the fork/join dispatch only when the model says the
     pooled kernel beats the serial one on this circuit *)
  let serial = predict t ~stage:"fault_sim" stats in
  let pooled = predict t ~stage:"fault_sim@pooled" stats in
  let pool_wins st =
    match (predict t ~stage:"fault_sim" st, predict t ~stage:"fault_sim@pooled" st)
    with
    | Some s, Some p -> p < s
    | _ -> false
  in
  let d_jobs =
    match (serial, pooled) with
    | Some s, Some p when p < s && jobs_available > 1 -> jobs_available
    | _ -> 1
  in
  (* cutover: the predicted crossover gate count — the smallest segment
     size at which the pooled kernel starts winning on a circuit of this
     shape. No crossover in range means "never pool". *)
  let d_cutover =
    if stats.Report.gates <= 0 then no_cutover
    else begin
      let rec scan g =
        if g > 1 lsl 20 then no_cutover
        else if pool_wins (scaled_stats stats g) then g
        else scan (g * 2)
      in
      scan 1
    end
  in
  { d_partitioner; d_jobs; d_words; d_cutover }

(* the params-level half of a decision; jobs/words live in the policy *)
let apply_decision d params =
  {
    params with
    Params.fault_cutover = d.d_cutover;
    partitioner = d.d_partitioner;
  }
