(** [merced analyze]: the static dataflow report for one circuit.

    Runs the whole {!Ppet_analysis} stack — SCC condensation and level
    schedule, ternary constant propagation, X-initializability, SCOAP
    testability — plus the Merced partition and the per-segment
    untestable-fault classifier, and folds the results into one
    deterministic record. No timings and no randomness: the same circuit
    and params always render identical bytes, which is what lets the
    serve daemon cache the op by content fingerprint. *)

type segment_stat = {
  seg_members : int;
  seg_inputs : int;       (** iota — exhaustive pattern width *)
  seg_observed : int;
  seg_faults : int;       (** collapsed stuck-at faults *)
  seg_unexcitable : int;
  seg_unobservable : int;
  seg_blocked : int;
}

type t = {
  circuit : string;
  nodes : int;
  gates : int;            (** combinational cells incl. inverters *)
  dffs : int;
  pis : int;
  pos : int;
  depth : int;
  components : int;       (** SCCs of the partition view *)
  largest_component : int;
  levels_fwd : int;       (** forward condensation levels *)
  levels_bwd : int;
  const_zero : int;       (** nodes proven stuck at 0 *)
  const_one : int;
  x_nodes : int;          (** not provably initializable *)
  x_dffs : int;           (** flip-flops among [x_nodes] *)
  cc_max : int;           (** largest finite SCOAP controllability *)
  co_max : int;           (** largest finite SCOAP observability *)
  co_unreachable : int;   (** nodes with observability = infinity *)
  segments : segment_stat list;  (** in Merced partition order *)
  total_faults : int;
  total_untestable : int;
}

val run :
  ?pool:Ppet_parallel.Domain_pool.t ->
  params:Params.t ->
  Ppet_netlist.Circuit.t ->
  t

val human : t -> string
(** Byte-stable multi-line summary; per-segment lines only for segments
    that carry at least one untestable fault. *)

val to_json : t -> string
(** Flat JSON object with a ["segments"] array (every segment). *)
