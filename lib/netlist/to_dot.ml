let escape name =
  let buf = Buffer.create (String.length name + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun ch ->
      if ch = '"' || ch = '\\' then Buffer.add_char buf '\\';
      Buffer.add_char buf ch)
    name;
  Buffer.add_char buf '"';
  Buffer.contents buf

let node_attrs (nd : Circuit.node) =
  match nd.Circuit.kind with
  | Gate.Input -> "shape=triangle, style=filled, fillcolor=lightblue"
  | Gate.Dff -> "shape=doubleoctagon, style=filled, fillcolor=khaki"
  | Gate.Not | Gate.Buff -> "shape=invtriangle"
  | Gate.And | Gate.Nand | Gate.Or | Gate.Nor | Gate.Xor | Gate.Xnor ->
    "shape=box"

let emit_node buf c (nd : Circuit.node) =
  Printf.bprintf buf "  %s [label=\"%s\\n%s\", %s];\n" (escape nd.Circuit.name)
    nd.Circuit.name
    (Gate.name nd.Circuit.kind)
    (node_attrs nd);
  ignore c

let emit_edges buf c ~is_cut_driver =
  Array.iter
    (fun (nd : Circuit.node) ->
      Array.iter
        (fun sink ->
          let attrs =
            if is_cut_driver nd.Circuit.id then
              " [color=red, penwidth=2.0]"
            else ""
          in
          Printf.bprintf buf "  %s -> %s%s;\n" (escape nd.Circuit.name)
            (escape (Circuit.node c sink).Circuit.name)
            attrs)
        c.Circuit.fanouts.(nd.Circuit.id))
    c.Circuit.nodes

let emit_outputs buf c =
  Array.iteri
    (fun i po ->
      let sink = Printf.sprintf "PO%d" i in
      Printf.bprintf buf
        "  %s [shape=triangle, orientation=180, style=filled, fillcolor=lightgrey, label=\"PO\"];\n"
        (escape sink);
      Printf.bprintf buf "  %s -> %s;\n"
        (escape (Circuit.node c po).Circuit.name)
        (escape sink))
    c.Circuit.outputs

let circuit ?title c =
  let title = match title with Some t -> t | None -> c.Circuit.title in
  let buf = Buffer.create 4096 in
  Printf.bprintf buf "digraph %s {\n  rankdir=LR;\n" (escape title);
  Array.iter (emit_node buf c) c.Circuit.nodes;
  emit_edges buf c ~is_cut_driver:(fun _ -> false);
  emit_outputs buf c;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let partitioned ?title c ~cluster_of ~cut_net_drivers =
  let title = match title with Some t -> t | None -> c.Circuit.title in
  let buf = Buffer.create 8192 in
  Printf.bprintf buf "digraph %s {\n  rankdir=LR;\n" (escape title);
  (* group nodes by cluster *)
  let clusters = Hashtbl.create 16 in
  Array.iter
    (fun (nd : Circuit.node) ->
      let k = cluster_of nd.Circuit.id in
      let cur = try Hashtbl.find clusters k with Not_found -> [] in
      Hashtbl.replace clusters k (nd :: cur))
    c.Circuit.nodes;
  let keys =
    List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) clusters [])
  in
  List.iter
    (fun k ->
      Printf.bprintf buf
        "  subgraph %s {\n    label=\"CUT %d\";\n    style=filled;\n    \
         color=lightgrey;\n"
        (escape (Printf.sprintf "cluster_%d" k))
        k;
      List.iter
        (fun nd ->
          Buffer.add_string buf "  ";
          emit_node buf c nd)
        (Hashtbl.find clusters k);
      Buffer.add_string buf "  }\n")
    (List.sort compare keys);
  let cut = Hashtbl.create 16 in
  List.iter (fun d -> Hashtbl.replace cut d ()) cut_net_drivers;
  emit_edges buf c ~is_cut_driver:(Hashtbl.mem cut);
  emit_outputs buf c;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
