let fail lexer fmt =
  Printf.ksprintf
    (fun msg ->
      raise (Circuit.Error (Printf.sprintf "%s: %s" (Bench_lexer.position lexer) msg)))
    fmt

let expect lexer tok what =
  let got = Bench_lexer.next lexer in
  if got <> tok then fail lexer "expected %s" what

let ident lexer what =
  match Bench_lexer.next lexer with
  | Bench_lexer.Ident s -> s
  | Bench_lexer.Lparen | Bench_lexer.Rparen | Bench_lexer.Comma
  | Bench_lexer.Equal | Bench_lexer.Eof ->
    fail lexer "expected %s" what

let parse_paren_name lexer =
  expect lexer Bench_lexer.Lparen "'('";
  let name = ident lexer "a signal name" in
  expect lexer Bench_lexer.Rparen "')'";
  name

let parse_fanins lexer =
  expect lexer Bench_lexer.Lparen "'('";
  let rec more acc =
    match Bench_lexer.next lexer with
    | Bench_lexer.Comma -> more (ident lexer "a signal name" :: acc)
    | Bench_lexer.Rparen -> List.rev acc
    | Bench_lexer.Ident _ | Bench_lexer.Lparen | Bench_lexer.Equal
    | Bench_lexer.Eof ->
      fail lexer "expected ',' or ')' in fan-in list"
  in
  more [ ident lexer "a signal name" ]

let parse_string ?(title = "bench") ?file src =
  let lexer = Bench_lexer.of_string ?file src in
  let builder = Circuit.Builder.create title in
  (* INPUT/OUTPUT are declarations only when a '(' follows; otherwise the
     identifier is an ordinary signal legally named "input"/"OUTPUT" and
     the line is a gate definition. *)
  let declaration kw =
    let u = String.uppercase_ascii kw in
    (u = "INPUT" || u = "OUTPUT") && Bench_lexer.peek lexer = Bench_lexer.Lparen
  in
  let rec stmt () =
    match Bench_lexer.next lexer with
    | Bench_lexer.Eof -> ()
    | Bench_lexer.Ident kw when declaration kw ->
      if String.uppercase_ascii kw = "INPUT" then
        Circuit.Builder.add_input builder (parse_paren_name lexer)
      else Circuit.Builder.add_output builder (parse_paren_name lexer);
      stmt ()
    | Bench_lexer.Ident lhs ->
      expect lexer Bench_lexer.Equal "'='";
      let gate_name = ident lexer "a gate type" in
      (match Gate.of_name gate_name with
       | None -> fail lexer "unknown gate type %S" gate_name
       | Some kind ->
         let fanins = parse_fanins lexer in
         Circuit.Builder.add_gate builder ~name:lhs ~kind ~fanins;
         stmt ())
    | Bench_lexer.Lparen | Bench_lexer.Rparen | Bench_lexer.Comma
    | Bench_lexer.Equal ->
      fail lexer "expected a statement"
  in
  stmt ();
  Circuit.Builder.finish builder

let parse_file path =
  let ic = open_in_bin path in
  let src =
    try
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      s
    with e ->
      close_in_noerr ic;
      raise e
  in
  let title = Filename.remove_extension (Filename.basename path) in
  parse_string ~title ~file:path src
