(** Gate-level synchronous circuit netlist.

    A circuit is a set of named nodes (primary inputs, combinational gates,
    D flip-flops), a list of primary outputs referring to node signals, and
    the derived fanout index. Nodes are densely numbered; the node id
    doubles as the vertex id of every graph extracted from the circuit.

    Build circuits through {!Builder}, which permits ISCAS89-style forward
    references and validates the result (defined signals, legal arities,
    no purely combinational cycles). *)

type node = {
  id : int;
  name : string;
  kind : Gate.kind;
  fanins : int array;  (** driver node ids, in declaration order *)
}

type t = private {
  title : string;
  nodes : node array;
  inputs : int array;    (** PI node ids, in declaration order *)
  outputs : int array;   (** PO node ids, in declaration order *)
  fanouts : int array array;  (** node id -> sink node ids (with duplicates
                                  when a sink reads the signal twice) *)
}

exception Error of string
(** Raised on malformed circuits with a human-readable reason. *)

module Builder : sig
  type circuit := t
  type t

  val create : string -> t
  (** [create title] starts an empty netlist. *)

  val add_input : t -> string -> unit

  val add_output : t -> string -> unit
  (** The signal may be declared later (forward reference). *)

  val add_gate : t -> name:string -> kind:Gate.kind -> fanins:string list -> unit
  (** Raises {!Error} on duplicate signal definition or on [kind] being
      [Input] (use [add_input]). *)

  val finish : t -> circuit
  (** Resolves names, checks every referenced signal is defined, arities
      are legal, at least one PI or DFF exists, and there is no
      combinational cycle. Raises {!Error} otherwise. *)
end

val find : t -> string -> int
(** Node id by signal name. Raises [Not_found]. *)

val node : t -> int -> node

val size : t -> int
(** Total number of nodes. *)

val dffs : t -> int array
(** Ids of all flip-flops, ascending. *)

val combinational : t -> int array
(** Ids of all combinational gates (excludes PIs and DFFs), ascending. *)

val is_po : t -> int -> bool

val area : t -> float
(** Estimated area of the circuit in the paper's units (Table 9, last
    column): sum of {!Gate.area} over all nodes. *)

val equal : t -> t -> bool
(** Structural equality up to node renumbering: the same signal names
    with the same kinds and positional fan-in names, and identical PI/PO
    declaration order. Titles are ignored (parsing a written netlist
    yields the file's title, not the original's). *)

val levels : t -> int array
(** Combinational depth of every node: PIs and DFF outputs are level 0;
    a gate's level is 1 + max over fanins. DFF data inputs do not
    propagate (registers break the cycles). *)

val pp : Format.formatter -> t -> unit
