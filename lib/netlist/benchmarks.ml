type entry = {
  profile : Generator.profile;
  paper_area : float;
  paper_dff_on_scc : int;
  in_table11 : bool;
}

let mk name n_pi n_dff n_gates n_inv area dff_on_scc in_table11 =
  {
    profile =
      {
        Generator.name;
        n_pi;
        n_dff;
        n_gates;
        n_inv;
        dff_on_scc;
        area_target = Some area;
      };
    paper_area = area;
    paper_dff_on_scc = dff_on_scc;
    in_table11;
  }

(* Columns: name, PIs, DFFs, gates, INVs, area (Table 9);
   DFFs-on-SCC (Table 10); present in Table 11. *)
let all =
  [
    mk "s510" 19 6 179 32 547. 6 false;
    mk "s420.1" 18 16 140 78 620. 16 false;
    mk "s641" 35 19 107 272 832. 15 true;
    mk "s713" 35 19 139 254 892. 15 true;
    mk "s820" 18 5 256 33 943. 5 false;
    mk "s832" 18 5 262 25 961. 5 false;
    mk "s838.1" 34 32 288 158 1268. 32 false;
    mk "s1423" 17 74 490 167 2238. 71 false;
    mk "s5378" 35 179 1004 1775 6241. 124 true;
    mk "s9234.1" 36 211 2027 3570 11467. 172 true;
    mk "s9234" 19 228 2027 3570 11637. 173 false;
    mk "s13207.1" 62 638 2573 5378 19171. 462 true;
    mk "s13207" 31 669 2573 5378 19476. 463 true;
    mk "s15850.1" 77 534 3448 6324 21305. 487 true;
    mk "s35932" 35 1728 12204 3861 50625. 1728 true;
    mk "s38417" 28 1636 8709 13470 52768. 1166 true;
    mk "s38584.1" 38 1426 11448 7805 55147. 1424 true;
  ]

(* Scale-stress profiles beyond the paper's table, named by their rough
   cell count. Primary-input counts grow slowly with size: the flow stage
   injects one shortest-path tree per (PI, visit) pair, so the number of
   in-degree-0 vertices — not the gate count — dictates how many Dijkstra
   runs saturation needs. No paper area/Table-10 row exists for these, so
   [area_target = None] (the generator budgets ~2.5 area per gate). *)
let synth name n_pi n_dff n_gates n_inv dff_on_scc =
  {
    profile =
      { Generator.name; n_pi; n_dff; n_gates; n_inv; dff_on_scc;
        area_target = None };
    paper_area = 0.;
    paper_dff_on_scc = dff_on_scc;
    in_table11 = false;
  }

let synthetic =
  [
    synth "synth10k" 32 500 8_000 2_000 350;
    synth "synth100k" 48 5_000 80_000 20_000 3_500;
    synth "synth1m" 64 50_000 800_000 200_000 35_000;
  ]

let synthetic_names =
  List.map (fun e -> e.profile.Generator.name) synthetic

let find name =
  let has l =
    List.find_opt (fun e -> String.equal e.profile.Generator.name name) l
  in
  match has all with
  | Some e -> e
  | None ->
    (match has synthetic with
     | Some e -> e
     | None -> raise Not_found)

let names = List.map (fun e -> e.profile.Generator.name) all

let cache : (string * int64, Circuit.t) Hashtbl.t = Hashtbl.create 17

let circuit ?(seed = 0x5EEDL) name =
  match Hashtbl.find_opt cache (name, seed) with
  | Some c -> c
  | None ->
    let e = find name in
    let c = Generator.generate ~seed e.profile in
    Hashtbl.replace cache (name, seed) c;
    c

let small =
  List.filter_map
    (fun e ->
      if e.paper_area < 3000. then Some e.profile.Generator.name else None)
    all
