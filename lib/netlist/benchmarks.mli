(** Registry of the seventeen ISCAS89 benchmark profiles used in the
    paper's evaluation (Table 9), with the feedback density implied by
    the "DFFs on SCC" column of Table 10.

    The circuits themselves are synthesized by {!Generator} (see
    DESIGN.md, substitution 1); their published statistics — PI, DFF,
    gate and inverter counts and the estimated area — are reproduced
    exactly or near-exactly. *)

type entry = {
  profile : Generator.profile;
  paper_area : float;          (** Table 9 "Estimated Area" *)
  paper_dff_on_scc : int;      (** Table 10 "DFFs on SCC" *)
  in_table11 : bool;           (** whether the paper ran it at l_k = 24 *)
}

val all : entry list
(** All seventeen, in Table 9 order (small to large). *)

val synthetic : entry list
(** Scale-stress profiles beyond the paper's tables ([synth10k],
    [synth100k], [synth1m], named by rough cell count). Not part of
    {!all}/{!names}: they exist to exercise the flat graph core, not to
    reproduce a published row. *)

val synthetic_names : string list

val find : string -> entry
(** Lookup by circuit name, e.g. ["s5378"] or ["synth100k"]; searches
    {!all} then {!synthetic}. Raises [Not_found]. *)

val names : string list
(** The paper benchmarks only (no [synth*] entries). *)

val circuit : ?seed:int64 -> string -> Circuit.t
(** Generate the synthetic stand-in for the named benchmark. Results are
    cached per (name, seed): repeated calls return the same value. *)

val small : string list
(** Names of circuits below 3000 area units — convenient for tests. *)
