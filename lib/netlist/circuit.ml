type node = {
  id : int;
  name : string;
  kind : Gate.kind;
  fanins : int array;
}

type t = {
  title : string;
  nodes : node array;
  inputs : int array;
  outputs : int array;
  fanouts : int array array;
}

exception Error of string

let error fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(* Combinational levelization; also detects combinational cycles. DFFs and
   PIs are sources at level 0; a DFF's data input never propagates a level
   because the register breaks the timing path. *)
let compute_levels nodes =
  let n = Array.length nodes in
  let level = Array.make n (-1) in
  let visiting = Array.make n false in
  let rec visit id =
    if level.(id) >= 0 then level.(id)
    else begin
      let nd = nodes.(id) in
      match nd.kind with
      | Gate.Input | Gate.Dff ->
        level.(id) <- 0;
        0
      | Gate.Buff | Gate.Not | Gate.And | Gate.Nand | Gate.Or | Gate.Nor
      | Gate.Xor | Gate.Xnor ->
        if visiting.(id) then
          error "combinational cycle through signal %S" nd.name;
        visiting.(id) <- true;
        let deepest = Array.fold_left (fun acc f -> max acc (visit f)) 0 nd.fanins in
        visiting.(id) <- false;
        level.(id) <- deepest + 1;
        deepest + 1
    end
  in
  for id = 0 to n - 1 do
    ignore (visit id)
  done;
  level

module Builder = struct
  type pending = {
    p_name : string;
    p_kind : Gate.kind;
    p_fanins : string list;
  }

  type t = {
    b_title : string;
    mutable rev_pending : pending list;
    mutable rev_outputs : string list;
    defined : (string, unit) Hashtbl.t;
  }

  let create title =
    { b_title = title; rev_pending = []; rev_outputs = []; defined = Hashtbl.create 64 }

  let define b name =
    if Hashtbl.mem b.defined name then error "duplicate definition of signal %S" name;
    Hashtbl.add b.defined name ()

  let add_input b name =
    define b name;
    b.rev_pending <- { p_name = name; p_kind = Gate.Input; p_fanins = [] } :: b.rev_pending

  let add_output b name = b.rev_outputs <- name :: b.rev_outputs

  let add_gate b ~name ~kind ~fanins =
    (match kind with
     | Gate.Input -> error "signal %S: use add_input for primary inputs" name
     | Gate.Buff | Gate.Not | Gate.And | Gate.Nand | Gate.Or | Gate.Nor
     | Gate.Xor | Gate.Xnor | Gate.Dff -> ());
    define b name;
    b.rev_pending <- { p_name = name; p_kind = kind; p_fanins = fanins } :: b.rev_pending

  let finish b =
    let pendings = Array.of_list (List.rev b.rev_pending) in
    let n = Array.length pendings in
    if n = 0 then error "empty circuit %S" b.b_title;
    let by_name = Hashtbl.create (2 * n) in
    Array.iteri (fun id p -> Hashtbl.replace by_name p.p_name id) pendings;
    let resolve ctx name =
      match Hashtbl.find_opt by_name name with
      | Some id -> id
      | None -> error "%s references undefined signal %S" ctx name
    in
    let nodes =
      Array.mapi
        (fun id p ->
          let fanins =
            Array.of_list
              (List.map (resolve (Printf.sprintf "gate %S" p.p_name)) p.p_fanins)
          in
          if not (Gate.arity_ok p.p_kind (Array.length fanins)) then
            error "gate %S: %s cannot take %d inputs" p.p_name
              (Gate.name p.p_kind) (Array.length fanins);
          { id; name = p.p_name; kind = p.p_kind; fanins })
        pendings
    in
    let inputs =
      Array.of_list
        (List.filter_map
           (fun nd -> if nd.kind = Gate.Input then Some nd.id else None)
           (Array.to_list nodes))
    in
    let has_dff = Array.exists (fun nd -> nd.kind = Gate.Dff) nodes in
    if Array.length inputs = 0 && not has_dff then
      error "circuit %S has neither primary inputs nor flip-flops" b.b_title;
    let outputs =
      Array.of_list
        (List.rev_map (resolve "primary output list") b.rev_outputs)
    in
    let fanout_count = Array.make n 0 in
    Array.iter
      (fun nd ->
        Array.iter (fun f -> fanout_count.(f) <- fanout_count.(f) + 1) nd.fanins)
      nodes;
    let fanouts = Array.init n (fun id -> Array.make fanout_count.(id) 0) in
    let fill = Array.make n 0 in
    Array.iter
      (fun nd ->
        Array.iter
          (fun f ->
            fanouts.(f).(fill.(f)) <- nd.id;
            fill.(f) <- fill.(f) + 1)
          nd.fanins)
      nodes;
    let c = { title = b.b_title; nodes; inputs; outputs; fanouts } in
    ignore (compute_levels nodes);
    c
end

let find c name =
  let n = Array.length c.nodes in
  let rec loop i =
    if i >= n then raise Not_found
    else if String.equal c.nodes.(i).name name then i
    else loop (i + 1)
  in
  loop 0

let node c id = c.nodes.(id)

let size c = Array.length c.nodes

let ids_of_kind pred c =
  Array.of_list
    (List.filter_map
       (fun nd -> if pred nd.kind then Some nd.id else None)
       (Array.to_list c.nodes))

let dffs = ids_of_kind (fun k -> k = Gate.Dff)

let combinational =
  ids_of_kind (fun k ->
      match k with
      | Gate.Input | Gate.Dff -> false
      | Gate.Buff | Gate.Not | Gate.And | Gate.Nand | Gate.Or | Gate.Nor
      | Gate.Xor | Gate.Xnor -> true)

let is_po c id = Array.exists (fun o -> o = id) c.outputs

let area c =
  Array.fold_left
    (fun acc nd -> acc +. Gate.area nd.kind (Array.length nd.fanins))
    0.0 c.nodes

let levels c = compute_levels c.nodes

let equal a b =
  let fanin_names c (nd : node) =
    Array.map (fun f -> c.nodes.(f).name) nd.fanins
  in
  let io_names c ids = Array.map (fun id -> c.nodes.(id).name) ids in
  Array.length a.nodes = Array.length b.nodes
  && io_names a a.inputs = io_names b b.inputs
  && io_names a a.outputs = io_names b b.outputs
  &&
  let by_name = Hashtbl.create (2 * Array.length b.nodes) in
  Array.iter (fun nd -> Hashtbl.replace by_name nd.name nd) b.nodes;
  Array.for_all
    (fun nd ->
      match Hashtbl.find_opt by_name nd.name with
      | None -> false
      | Some nd' -> nd.kind = nd'.kind && fanin_names a nd = fanin_names b nd')
    a.nodes

let pp ppf c =
  Format.fprintf ppf "@[<v>circuit %S: %d nodes (%d PI, %d DFF, %d PO)"
    c.title (size c)
    (Array.length c.inputs)
    (Array.length (dffs c))
    (Array.length c.outputs);
  Array.iter
    (fun nd ->
      Format.fprintf ppf "@,%s = %s(%s)" nd.name (Gate.name nd.kind)
        (String.concat ", "
           (List.map (fun f -> c.nodes.(f).name) (Array.to_list nd.fanins))))
    c.nodes;
  Format.fprintf ppf "@]"
