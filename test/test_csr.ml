(* The CSR substrate against its two oracles: the hashed Netgraph it
   snapshots, and the hashed retiming solver it replaces. *)

module Netgraph = Ppet_digraph.Netgraph
module Csr = Ppet_digraph.Csr
module Generator = Ppet_netlist.Generator
module To_graph = Ppet_netlist.To_graph
module Rgraph = Ppet_retiming.Rgraph
module Retime = Ppet_retiming.Retime
module Merced = Ppet_core.Merced
module Params = Ppet_core.Params
module Dft_rules = Ppet_lint.Dft_rules
module Diag = Ppet_lint.Diag

let circuit_of_seed seed =
  Generator.small_random ~seed:(Int64.of_int seed) ~n_pi:4 ~n_dff:6
    ~n_gates:(20 + (seed mod 40))

let slice off data i = Array.sub data off.(i) (off.(i + 1) - off.(i))

let check_row msg expected actual =
  if expected <> actual then
    QCheck.Test.fail_reportf "%s: [%s] <> [%s]" msg
      (String.concat ";" (List.map string_of_int (Array.to_list expected)))
      (String.concat ";" (List.map string_of_int (Array.to_list actual)))

(* Every CSR row equals the Netgraph query it mirrors, in order. *)
let prop_adjacency =
  QCheck.Test.make ~name:"CSR rows mirror Netgraph queries" ~count:60
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let g = To_graph.partition_view (circuit_of_seed seed) in
      let csr = Csr.of_netgraph g in
      if Csr.n_nodes csr <> Netgraph.n_nodes g then
        QCheck.Test.fail_report "vertex counts differ";
      if Csr.n_nets csr <> Netgraph.n_nets g then
        QCheck.Test.fail_report "net counts differ";
      for e = 0 to Netgraph.n_nets g - 1 do
        if csr.Csr.net_src.(e) <> Netgraph.net_src g e then
          QCheck.Test.fail_reportf "net %d source differs" e;
        check_row "sinks" (Netgraph.net_sinks g e)
          (slice csr.Csr.sink_off csr.Csr.sink e)
      done;
      for v = 0 to Netgraph.n_nodes g - 1 do
        check_row "out nets" (Netgraph.out_nets g v)
          (slice csr.Csr.out_off csr.Csr.out_net v);
        check_row "in nets" (Netgraph.in_nets g v)
          (slice csr.Csr.in_off csr.Csr.in_net v);
        check_row "successors" (Netgraph.successors g v)
          (slice csr.Csr.succ_off csr.Csr.succ v);
        check_row "predecessors" (Netgraph.predecessors g v)
          (slice csr.Csr.pred_off csr.Csr.pred v)
      done;
      true)

(* A pseudo-random but deterministic requirement: roughly one edge in
   four asks for a register. *)
let require_of rg salt e =
  let t = rg.Rgraph.edges.(e).Rgraph.tail in
  if (((e * 2654435761) lxor salt) land 3) = 0 && t <> rg.Rgraph.host then 1
  else 0

(* The flat solver agrees with the hashed Bellman-Ford on feasibility,
   and on feasible systems every constraint holds and the rho is
   bit-identical (both are the canonical all-zero-start fixpoint). *)
let prop_solver_agreement =
  QCheck.Test.make ~name:"flat solver = hashed solver on feasible systems"
    ~count:120
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rg = Rgraph.of_circuit (circuit_of_seed seed) in
      let require = require_of rg seed in
      let solver = Retime.Solver.create rg in
      (match (Retime.solve rg ~require, Retime.Solver.run solver ~require) with
       | Retime.Feasible rho_h, Retime.Feasible rho_c ->
         if rho_h <> rho_c then
           QCheck.Test.fail_report "feasible rhos differ between substrates";
         if not (Retime.is_legal rg rho_c) then
           QCheck.Test.fail_report "flat solver rho is not legal";
         Array.iteri
           (fun e _ ->
             if Retime.retimed_weight rg rho_c e < require e then
               QCheck.Test.fail_reportf
                 "edge %d violates its register requirement" e)
           rg.Rgraph.edges
       | Retime.Infeasible _, Retime.Infeasible cycle ->
         if cycle = [] then
           QCheck.Test.fail_report "empty infeasibility witness"
       | Retime.Feasible _, Retime.Infeasible _
       | Retime.Infeasible _, Retime.Feasible _ ->
         QCheck.Test.fail_report "substrates disagree on feasibility");
      true)

(* A feasible potential fed back as the warm start is already a fixpoint:
   the solver must verify it without changing a single label. *)
let prop_warm_fixpoint =
  QCheck.Test.make ~name:"warm start from a feasible rho is a fixpoint"
    ~count:120
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rg = Rgraph.of_circuit (circuit_of_seed seed) in
      let require = require_of rg seed in
      let solver = Retime.Solver.create rg in
      (match Retime.Solver.run solver ~require with
       | Retime.Infeasible _ -> ()
       | Retime.Feasible rho ->
         (match Retime.Solver.run solver ~warm:rho ~require with
          | Retime.Infeasible _ ->
            QCheck.Test.fail_report "warm re-check of a feasible rho failed"
          | Retime.Feasible rho' ->
            if rho <> rho' then
              QCheck.Test.fail_report "warm start moved a feasible fixpoint"));
      true)

(* End-to-end oracle: compile under both substrates; each certificate
   must satisfy the lint checker's independent re-derivation of the
   Leiserson-Saxe conditions. The partitions must agree exactly (the
   drop loops may keep different requirement sets, the partitions never
   differ). *)
let prop_certificates_cross_substrate =
  QCheck.Test.make ~name:"both substrates yield lint-clean certificates"
    ~count:12
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let c = circuit_of_seed seed in
      let check substrate =
        let params = { Params.default with Params.substrate; l_k = 5 } in
        let r = Merced.run ~params c in
        (match Merced.retiming_certificate r with
         | None -> ()
         | Some cert ->
           let findings =
             List.filter Diag.is_finding
               (Dft_rules.retiming_legality r (Some cert))
           in
           if findings <> [] then
             QCheck.Test.fail_reportf "%s certificate rejected: %s"
               (Params.substrate_name substrate)
               (Diag.to_human (List.hd findings)));
        List.map
          (fun (p : Ppet_core.Assign.partition) ->
            Array.to_list p.Ppet_core.Assign.vertices)
          r.Merced.assignment.Ppet_core.Assign.partitions
      in
      if check Params.Hashed <> check Params.Csr then
        QCheck.Test.fail_report "partitions differ between substrates";
      true)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_adjacency;
    QCheck_alcotest.to_alcotest prop_solver_agreement;
    QCheck_alcotest.to_alcotest prop_warm_fixpoint;
    QCheck_alcotest.to_alcotest prop_certificates_cross_substrate;
  ]
