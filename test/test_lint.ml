(* The lint subsystem: one crafted violation fixture per registry rule,
   plus the end-to-end properties the rules exist to witness — generator
   output, s27 and the registry benchmarks lint clean through the whole
   DFT flow, and the certificate checker agrees with the solver. *)

module Circuit = Ppet_netlist.Circuit
module Generator = Ppet_netlist.Generator
module Benchmarks = Ppet_netlist.Benchmarks
module S27 = Ppet_netlist.S27
module Params = Ppet_core.Params
module Merced = Ppet_core.Merced
module Assign = Ppet_core.Assign
module Testable = Ppet_core.Testable
module Retime = Ppet_retiming.Retime
module Rgraph = Ppet_retiming.Rgraph
module Diag = Ppet_lint.Diag
module Registry = Ppet_lint.Registry
module Engine = Ppet_lint.Engine
module Dft_rules = Ppet_lint.Dft_rules

let fired id diags = List.exists (fun (d : Diag.t) -> d.Diag.rule = id) diags

let check_fires id diags =
  Alcotest.(check bool)
    (Printf.sprintf "rule %s fires" id)
    true (fired id diags)

let lint_text src = (Engine.run_text ~title:"fixture" src).Engine.diags

(* one compiled s27 at the paper's worked-example constraint, shared by
   every DFT fixture *)
let compiled =
  lazy
    (let r = Merced.run ~params:(Params.with_lk 3) (S27.circuit ()) in
     (r, Testable.insert r))

(* ---------------- structural fixtures, one per rule ---------------- *)

let test_fixture_syntax () =
  check_fires "syntax" (lint_text "INPUT(a)\n@@\nOUTPUT(a)\n")

let test_fixture_multiple_drivers () =
  check_fires "multiple-drivers"
    (lint_text "INPUT(a)\nG = NOT(a)\nG = NOT(a)\nOUTPUT(G)\n")

let test_fixture_undriven_net () =
  check_fires "undriven-net" (lint_text "INPUT(a)\nG = AND(a, ghost)\nOUTPUT(G)\n")

let test_fixture_unknown_gate () =
  check_fires "unknown-gate" (lint_text "INPUT(a)\nG = FROB(a)\nOUTPUT(G)\n")

let test_fixture_bad_arity () =
  check_fires "bad-arity" (lint_text "INPUT(a)\nG = AND(a)\nOUTPUT(G)\n")

let test_fixture_comb_cycle () =
  check_fires "comb-cycle"
    (lint_text "INPUT(x)\na = AND(b, x)\nb = AND(a, x)\nOUTPUT(a)\n")

let test_fixture_no_state () = check_fires "no-state" (lint_text "")

let test_fixture_duplicate_output () =
  check_fires "duplicate-output"
    (lint_text "INPUT(a)\nG = NOT(a)\nOUTPUT(G)\nOUTPUT(G)\n")

let test_fixture_dead_logic () =
  let diags =
    lint_text "INPUT(a)\nG = NOT(a)\nDEAD = NOT(a)\nOUTPUT(G)\n"
  in
  check_fires "dead-logic" diags;
  (* advisory: dead logic alone must not make the report a finding *)
  Alcotest.(check int) "no findings" 0
    (List.length (List.filter Diag.is_finding diags))

let test_fixture_unread_input () =
  check_fires "unread-input"
    (lint_text "INPUT(a)\nINPUT(b)\nG = NOT(a)\nOUTPUT(G)\n")

(* ---------------- analysis fixtures, one per rule ------------------ *)

let test_fixture_stuck_net () =
  (* a AND NOT(a) is a proven constant zero *)
  check_fires "stuck-net"
    (lint_text "INPUT(a)\nna = NOT(a)\nz = AND(a, na)\nOUTPUT(z)\n")

let test_fixture_x_state () =
  (* q's only fan-in is its own inverted feedback: no initializing path *)
  check_fires "x-state"
    (lint_text
       "INPUT(a)\nq = DFF(nq)\nnq = NOT(q)\no = AND(a, q)\nOUTPUT(o)\n")

let test_fixture_unobservable_net () =
  (* the tied-zero side pin of o masks b from the only output *)
  let diags =
    lint_text
      "INPUT(a)\nINPUT(b)\nna = NOT(a)\nz = AND(a, na)\no = AND(b, z)\n\
       OUTPUT(o)\n"
  in
  check_fires "unobservable-net" diags;
  (* advisory family: none of these may count as findings *)
  Alcotest.(check int) "no findings" 0
    (List.length (List.filter Diag.is_finding diags))

(* ------------------ DFT fixtures, one per rule --------------------- *)

let test_fixture_input_bound () =
  let r, _ = Lazy.force compiled in
  let corrupted =
    {
      r with
      Merced.assignment =
        {
          r.Merced.assignment with
          Assign.partitions =
            List.map
              (fun (p : Assign.partition) ->
                { p with Assign.input_count = p.Assign.input_count + 1 })
              r.Merced.assignment.Assign.partitions;
        };
    }
  in
  check_fires "input-bound" (Dft_rules.input_bound corrupted)

let test_fixture_cell_placement () =
  let r, t = Lazy.force compiled in
  let cut = r.Merced.assignment.Assign.cut_nets in
  let non_cut =
    let rec first e = if List.mem e cut then first (e + 1) else e in
    first 0
  in
  let corrupted =
    {
      t with
      Testable.cells =
        (match t.Testable.cells with
         | c :: rest -> { c with Testable.net = non_cut } :: rest
         | [] -> []);
    }
  in
  check_fires "cell-placement" (Dft_rules.cell_placement r corrupted)

let test_fixture_scan_chain () =
  let r, t = Lazy.force compiled in
  (* reversing the chain order breaks every predecessor link *)
  let corrupted = { t with Testable.cells = List.rev t.Testable.cells } in
  check_fires "scan-chain" (Dft_rules.scan_chain r corrupted)

let test_fixture_cbit_width () =
  let r, t = Lazy.force compiled in
  let corrupted =
    {
      t with
      Testable.groups =
        (match t.Testable.groups with
         | g :: rest -> { g with Testable.width = g.Testable.width + 1 } :: rest
         | [] -> []);
    }
  in
  check_fires "cbit-width" (Dft_rules.cbit_width r corrupted)

let test_fixture_area_accounting () =
  let r, t = Lazy.force compiled in
  let b = r.Merced.breakdown in
  let corrupted =
    {
      r with
      Merced.breakdown =
        { b with Ppet_core.Area_accounting.cuts_total =
                   b.Ppet_core.Area_accounting.cuts_total + 1 };
    }
  in
  check_fires "area-accounting" (Dft_rules.area_accounting corrupted t);
  let inflated = { t with Testable.added_area = t.Testable.added_area +. 5.0 } in
  check_fires "area-accounting" (Dft_rules.area_accounting r inflated)

let test_fixture_scc_budget () =
  let r, _ = Lazy.force compiled in
  (* beta = 0 outlaws every cut on a loop; s27 at l_k 3 has three *)
  let corrupted =
    { r with Merced.params = { r.Merced.params with Params.beta = 0 } }
  in
  check_fires "scc-budget" (Dft_rules.scc_budget corrupted)

let test_fixture_retiming_legality () =
  let r, _ = Lazy.force compiled in
  (* a missing certificate is itself a finding *)
  check_fires "retiming-legality" (Dft_rules.retiming_legality r None);
  match Merced.retiming_certificate r with
  | None -> Alcotest.fail "s27 must have a certificate"
  | Some cert ->
    Alcotest.(check (list string)) "genuine certificate passes" []
      (List.map (fun (d : Diag.t) -> d.Diag.message)
         (Dft_rules.retiming_legality r (Some cert)));
    (* corrupt a pinned lag: the checker must refuse it independently *)
    let rho = Array.copy cert.Merced.cert_rho in
    let g = cert.Merced.cert_graph in
    let pi =
      let rec find v =
        match g.Rgraph.kinds.(v) with
        | Rgraph.Vpi _ -> v
        | _ -> find (v + 1)
      in
      find 0
    in
    rho.(pi) <- rho.(pi) + 1;
    check_fires "retiming-legality"
      (Dft_rules.retiming_legality r
         (Some { cert with Merced.cert_rho = rho }))

let test_fixture_exhaustive_width () =
  (* a 16-wide AND at l_k 16 yields a segment past the default campaign
     width of 14 *)
  let names = List.init 16 (fun i -> Printf.sprintf "a%d" i) in
  let src =
    String.concat ""
      (List.map (Printf.sprintf "INPUT(%s)\n") names)
    ^ Printf.sprintf "G = AND(%s)\n" (String.concat ", " names)
    ^ "q = DFF(G)\nOUTPUT(q)\n"
  in
  let c = Ppet_netlist.Bench_parser.parse_string ~title:"wide" src in
  let r = Merced.run ~params:(Params.with_lk 16) c in
  check_fires "exhaustive-width" (Dft_rules.exhaustive_width r)

(* --------------------- end-to-end properties ----------------------- *)

let clean_report name (rep : Engine.report) =
  Alcotest.(check bool) (name ^ " compiled") true rep.Engine.compiled;
  Alcotest.(check (list string))
    (name ^ " has no findings")
    []
    (List.map Diag.to_human (List.filter Diag.is_finding rep.Engine.diags))

let test_s27_clean () =
  clean_report "s27 lk=3"
    (Engine.run_circuit ~params:(Params.with_lk 3) (S27.circuit ()));
  clean_report "s27 default" (Engine.run_circuit (S27.circuit ()))

let test_registry_clean () =
  List.iter
    (fun name -> clean_report name (Engine.run_circuit (Benchmarks.circuit name)))
    [ "s510"; "s420.1" ]

let test_certificate_agrees_with_solver () =
  List.iter
    (fun c ->
      let r = Merced.run ~params:(Params.with_lk 6) c in
      match Merced.retiming_certificate r with
      | None -> Alcotest.fail (c.Circuit.title ^ ": no certificate")
      | Some cert ->
        Alcotest.(check bool)
          (c.Circuit.title ^ ": solver accepts the certificate")
          true
          (Retime.is_legal cert.Merced.cert_graph cert.Merced.cert_rho);
        Alcotest.(check (list string))
          (c.Circuit.title ^ ": checker accepts the certificate")
          []
          (List.map (fun (d : Diag.t) -> d.Diag.message)
             (Dft_rules.retiming_legality r (Some cert))))
    [ S27.circuit (); Benchmarks.circuit "s510" ]

let test_deterministic_output () =
  let run () =
    Engine.to_json (Engine.run_circuit ~params:(Params.with_lk 3) (S27.circuit ()))
  in
  Alcotest.(check string) "two runs byte-identical" (run ()) (run ());
  (* worker count must not change a report *)
  Ppet_parallel.Domain_pool.with_pool ~jobs:2 (fun pool ->
      let serial =
        Engine.run_text ~title:"t" "INPUT(a)\nG = NOT(a)\nOUTPUT(G)\n"
      and parallel =
        Engine.run_text ~pool ~title:"t" "INPUT(a)\nG = NOT(a)\nOUTPUT(G)\n"
      in
      Alcotest.(check string) "pooled run byte-identical"
        (Engine.to_json serial) (Engine.to_json parallel))

let test_registry_fixture_coverage () =
  (* every registry rule has a fixture above: keep this list in sync *)
  Alcotest.(check (list string))
    "registry ids"
    [ "syntax"; "multiple-drivers"; "undriven-net"; "unknown-gate";
      "bad-arity"; "comb-cycle"; "no-state"; "duplicate-output"; "dead-logic";
      "unread-input"; "stuck-net"; "x-state"; "unobservable-net";
      "input-bound"; "cell-placement"; "scan-chain"; "cbit-width";
      "area-accounting"; "scc-budget"; "retiming-legality";
      "exhaustive-width" ]
    Registry.ids

let prop_generated_circuits_lint_clean =
  QCheck.Test.make ~name:"generated circuits lint clean end to end" ~count:20
    QCheck.(pair (int_bound 1_000_000) (int_range 4 10))
    (fun (seed, lk) ->
      let c =
        Generator.small_random ~seed:(Int64.of_int (seed + 11)) ~n_pi:3
          ~n_dff:3 ~n_gates:(8 + (seed mod 24))
      in
      let rep = Engine.run_circuit ~params:(Params.with_lk lk) c in
      rep.Engine.compiled && Engine.findings rep = 0)

let suite =
  [
    Alcotest.test_case "fixture: syntax" `Quick test_fixture_syntax;
    Alcotest.test_case "fixture: multiple-drivers" `Quick
      test_fixture_multiple_drivers;
    Alcotest.test_case "fixture: undriven-net" `Quick test_fixture_undriven_net;
    Alcotest.test_case "fixture: unknown-gate" `Quick test_fixture_unknown_gate;
    Alcotest.test_case "fixture: bad-arity" `Quick test_fixture_bad_arity;
    Alcotest.test_case "fixture: comb-cycle" `Quick test_fixture_comb_cycle;
    Alcotest.test_case "fixture: no-state" `Quick test_fixture_no_state;
    Alcotest.test_case "fixture: duplicate-output" `Quick
      test_fixture_duplicate_output;
    Alcotest.test_case "fixture: dead-logic" `Quick test_fixture_dead_logic;
    Alcotest.test_case "fixture: unread-input" `Quick test_fixture_unread_input;
    Alcotest.test_case "fixture: stuck-net" `Quick test_fixture_stuck_net;
    Alcotest.test_case "fixture: x-state" `Quick test_fixture_x_state;
    Alcotest.test_case "fixture: unobservable-net" `Quick
      test_fixture_unobservable_net;
    Alcotest.test_case "fixture: input-bound" `Quick test_fixture_input_bound;
    Alcotest.test_case "fixture: cell-placement" `Quick
      test_fixture_cell_placement;
    Alcotest.test_case "fixture: scan-chain" `Quick test_fixture_scan_chain;
    Alcotest.test_case "fixture: cbit-width" `Quick test_fixture_cbit_width;
    Alcotest.test_case "fixture: area-accounting" `Quick
      test_fixture_area_accounting;
    Alcotest.test_case "fixture: scc-budget" `Quick test_fixture_scc_budget;
    Alcotest.test_case "fixture: retiming-legality" `Quick
      test_fixture_retiming_legality;
    Alcotest.test_case "fixture: exhaustive-width" `Quick
      test_fixture_exhaustive_width;
    Alcotest.test_case "s27 lints clean" `Quick test_s27_clean;
    Alcotest.test_case "registry benchmarks lint clean" `Quick
      test_registry_clean;
    Alcotest.test_case "certificate agrees with the solver" `Quick
      test_certificate_agrees_with_solver;
    Alcotest.test_case "deterministic output" `Quick test_deterministic_output;
    Alcotest.test_case "fixture coverage" `Quick test_registry_fixture_coverage;
    QCheck_alcotest.to_alcotest prop_generated_circuits_lint_clean;
  ]
