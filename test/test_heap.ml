module Heap = Ppet_digraph.Heap
module Prng = Ppet_digraph.Prng

let test_empty () =
  let h = Heap.create 10 in
  Alcotest.(check bool) "is_empty" true (Heap.is_empty h);
  Alcotest.(check int) "size" 0 (Heap.size h)

let test_insert_pop () =
  let h = Heap.create 10 in
  Heap.insert h 3 2.0;
  Heap.insert h 1 1.0;
  Heap.insert h 2 3.0;
  Alcotest.(check int) "size" 3 (Heap.size h);
  let k, p = Heap.pop_min h in
  Alcotest.(check int) "min key" 1 k;
  Alcotest.(check (float 1e-9)) "min prio" 1.0 p;
  let k, _ = Heap.pop_min h in
  Alcotest.(check int) "next" 3 k;
  let k, _ = Heap.pop_min h in
  Alcotest.(check int) "last" 2 k;
  Alcotest.(check bool) "drained" true (Heap.is_empty h)

let test_decrease () =
  let h = Heap.create 5 in
  Heap.insert h 0 10.0;
  Heap.insert h 1 5.0;
  Heap.decrease h 0 1.0;
  let k, p = Heap.pop_min h in
  Alcotest.(check int) "decreased wins" 0 k;
  Alcotest.(check (float 1e-9)) "new prio" 1.0 p

let test_decrease_rejects_increase () =
  let h = Heap.create 5 in
  Heap.insert h 0 1.0;
  Alcotest.check_raises "increase" (Invalid_argument "Heap.decrease: priority increase")
    (fun () -> Heap.decrease h 0 2.0)

let test_insert_duplicate () =
  let h = Heap.create 5 in
  Heap.insert h 0 1.0;
  Alcotest.check_raises "duplicate" (Invalid_argument "Heap.insert: key already present")
    (fun () -> Heap.insert h 0 2.0)

let test_pop_empty () =
  let h = Heap.create 5 in
  Alcotest.check_raises "empty" (Invalid_argument "Heap.pop_min: empty heap")
    (fun () -> ignore (Heap.pop_min h))

let test_mem_priority () =
  let h = Heap.create 5 in
  Heap.insert h 2 4.5;
  Alcotest.(check bool) "mem" true (Heap.mem h 2);
  Alcotest.(check bool) "not mem" false (Heap.mem h 3);
  Alcotest.(check (float 1e-9)) "priority" 4.5 (Heap.priority h 2);
  ignore (Heap.pop_min h);
  Alcotest.(check bool) "gone" false (Heap.mem h 2)

let test_insert_or_decrease () =
  let h = Heap.create 5 in
  Heap.insert_or_decrease h 1 5.0;
  Heap.insert_or_decrease h 1 3.0;
  Heap.insert_or_decrease h 1 9.0;
  Alcotest.(check (float 1e-9)) "kept min" 3.0 (Heap.priority h 1)

let test_clear_reusable () =
  let h = Heap.create 8 in
  Heap.insert h 0 3.0;
  Heap.insert h 5 1.0;
  Heap.insert h 2 2.0;
  Heap.clear h;
  Alcotest.(check int) "emptied" 0 (Heap.size h);
  Alcotest.(check bool) "old key gone" false (Heap.mem h 5);
  (* all keys insertable again after a clear *)
  Heap.insert h 5 7.0;
  Heap.insert h 0 4.0;
  let k, p = Heap.pop_min h in
  Alcotest.(check int) "fresh min key" 0 k;
  Alcotest.(check (float 1e-9)) "fresh min prio" 4.0 p

(* property: popping everything yields priorities in ascending order *)
let prop_heapsort =
  QCheck.Test.make ~name:"heap drains in sorted order" ~count:200
    QCheck.(list_of_size Gen.(1 -- 40) (float_bound_exclusive 1000.0))
    (fun prios ->
      let n = List.length prios in
      let h = Heap.create n in
      List.iteri (fun i p -> Heap.insert h i p) prios;
      let out = List.init n (fun _ -> snd (Heap.pop_min h)) in
      out = List.sort compare prios)

let prop_decrease_key =
  QCheck.Test.make ~name:"random decrease-keys keep heap consistent" ~count:100
    QCheck.(pair (int_bound 1000) (int_bound 1000))
    (fun (s1, s2) ->
      let rng = Prng.create (Int64.of_int ((s1 * 1009) + s2)) in
      let n = 30 in
      let h = Heap.create n in
      let best = Array.make n infinity in
      for _ = 1 to 200 do
        let k = Prng.int rng n in
        let p = Prng.float rng 100.0 in
        if Heap.mem h k then begin
          if p < best.(k) then begin
            Heap.decrease h k p;
            best.(k) <- p
          end
        end
        else begin
          Heap.insert h k p;
          best.(k) <- p
        end
      done;
      let prev = ref neg_infinity in
      let sorted = ref true in
      while not (Heap.is_empty h) do
        let k, p = Heap.pop_min h in
        if p < !prev || p <> best.(k) then sorted := false;
        prev := p
      done;
      !sorted)

let suite =
  [
    Alcotest.test_case "empty heap" `Quick test_empty;
    Alcotest.test_case "insert and pop" `Quick test_insert_pop;
    Alcotest.test_case "decrease key" `Quick test_decrease;
    Alcotest.test_case "decrease rejects increase" `Quick test_decrease_rejects_increase;
    Alcotest.test_case "insert rejects duplicate" `Quick test_insert_duplicate;
    Alcotest.test_case "pop rejects empty" `Quick test_pop_empty;
    Alcotest.test_case "mem and priority" `Quick test_mem_priority;
    Alcotest.test_case "insert_or_decrease keeps min" `Quick test_insert_or_decrease;
    Alcotest.test_case "clear makes the heap reusable" `Quick test_clear_reusable;
    QCheck_alcotest.to_alcotest prop_heapsort;
    QCheck_alcotest.to_alcotest prop_decrease_key;
  ]
