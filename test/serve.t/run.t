The merced compile daemon end to end: lifecycle, byte parity with the
one-shot CLI, cache hits on resubmission, structured errors, and a
clean shutdown.

  $ MERCED=../../bin/merced.exe
  $ SOCK=${TMPDIR:-/tmp}/merced-serve-cram-$$.sock
  $ $MERCED serve --socket "$SOCK" -j 2 -q &

A compile submitted to the daemon prints the one-shot partition bytes
(CPU time elided, as it is measured) and the first answer is computed,
not cached:

  $ $MERCED submit s27 --lk 3 --socket "$SOCK" --retry-for 10 --meta 2>meta | grep -v "CPU:"
  Merced result for s27 (l_k = 3)
    flow: 121 shortest-path trees injected
    clusters: 5 (boundaries used: 5)
    partitions: 3 after 2 merges
    cut nets: 3 (3 on SCCs; 2 retimable, 1 muxed)
    CBIT area: 57 units w/ retiming vs 85 w/o (52.9% vs 62.6% of total)
    sigma (Eq. 4): 24.42 DFF; testing time: 16 cycles
    legal retiming blocked on 3 cut nets (multiplexed cells)
  $ cat meta
  cached: false

Lint through the daemon matches the one-shot renderer byte for byte:

  $ $MERCED submit s27 --op lint --lk 3 --socket "$SOCK"
  lint s27: clean (21 rules, compile ok; 0 errors, 0 warnings, 3 infos)

Resubmitting the same compile is answered from the cache — and a cached
reply replays the original bytes exactly, CPU line included:

  $ $MERCED submit s27 --lk 3 --socket "$SOCK" --meta 2>meta > second.out
  $ cat meta
  cached: true
  $ $MERCED submit s27 --lk 3 --socket "$SOCK" | diff - second.out

A poisoned job comes back as a typed parse-stage error with exit 2:

  $ $MERCED submit no-such-circuit --socket "$SOCK" 2>&1 | grep -o 'error: parse: "no-such-circuit" is neither a file'
  error: parse: "no-such-circuit" is neither a file

The daemon survives it, and a suite manifest is answered as one
aggregated report (two jobs already sit in the cache):

  $ cat > suite.json <<'EOF'
  > [{"op":"compile","circuit":"s27","lk":3},
  >  {"op":"lint","circuit":"s27","lk":3},
  >  {"op":"compile","circuit":"no-such-circuit"}]
  > EOF
  $ $MERCED submit --suite suite.json --socket "$SOCK" > suite.out
  [2]
  $ grep -o '"total":3,"ok":2,"errors":1,"findings":0,"cached":2' suite.out
  "total":3,"ok":2,"errors":1,"findings":0,"cached":2

Statistics account for every hit and miss above:

  $ $MERCED submit --stats --socket "$SOCK" | grep -o '"cache_hits":4,"cache_misses":2'
  "cache_hits":4,"cache_misses":2

Shutdown drains and exits cleanly, removing the socket:

  $ $MERCED submit --shutdown --socket "$SOCK"
  $ wait
  $ test ! -e "$SOCK" && echo gone
  gone
