The Merced CLI end to end.

  $ MERCED=../../bin/merced.exe
 Statistics of the embedded s27:

  $ $MERCED stats s27
  Circuit       PIs    POs   DFFs   Gates   INVs       Area
  s27             4      1      3       8      2         51
  s27: 4 PI, 1 PO, 3 DFF, 8 gates, 2 INV, area 51, max fan-in 2, depth 6

Partitioning at the paper's worked-example constraint (CPU time elided):

  $ $MERCED partition s27 --lk 3 | grep -v "CPU:"
  Merced result for s27 (l_k = 3)
    flow: 121 shortest-path trees injected
    clusters: 5 (boundaries used: 5)
    partitions: 3 after 2 merges
    cut nets: 3 (3 on SCCs; 2 retimable, 1 muxed)
    CBIT area: 57 units w/ retiming vs 85 w/o (52.9% vs 62.6% of total)
    sigma (Eq. 4): 24.42 DFF; testing time: 16 cycles
    legal retiming blocked on 3 cut nets (multiplexed cells)

CSV output has a fixed header:

  $ $MERCED partition s27 --lk 3 --csv | head -1
  circuit,l_k,dffs,dffs_on_scc,cuts_total,cuts_on_scc,retimable,mux_excess,partitions,area_circuit,area_cbit_retimed,area_cbit_plain,ratio_with,ratio_without,sigma_dff,testing_time,cpu_seconds

Generated netlists parse back through the same tool:

  $ $MERCED generate s510 -o s510.bench
  wrote s510.bench (236 nodes)
  $ $MERCED stats s510.bench | head -2
  Circuit       PIs    POs   DFFs   Gates   INVs       Area
  s510           19      2      6     179     32        547

Self-test validation reaches full coverage on s27's segments:

  $ $MERCED selftest s27 --lk 4 | head -3
  circuit s27: 2 segments
    segment 0: width 7: 32/32 faults detected (100.0%; 0 redundant; detectable coverage 100.0%) with 128 patterns
    segment 1: width 1: 2/2 faults detected (100.0%; 0 redundant; detectable coverage 100.0%) with 2 patterns

Parallel fault simulation is bit-identical to the serial default:

  $ $MERCED selftest s27 --lk 4 > serial.out
  $ $MERCED selftest s27 --lk 4 --jobs 2 > parallel.out
  $ cmp serial.out parallel.out && echo identical
  identical

Test-hardware insertion and the retimed netlist both emit valid .bench:

  $ $MERCED insert s27 --lk 3 -o testable.bench | head -1
  inserted 3 test cells in 2 CBITs (+131 area units, 43.7/cell)
  $ $MERCED stats testable.bench | sed -n 2p
  testable        8      1      6      39      4        182

  $ $MERCED retime s27 --lk 3 -o retimed.bench
  retimed netlist: 17 nodes (3 registers; 3 cut nets left to multiplexed cells)
  initial states: 3 registers, 0 unknown (scan-initialised)
  wrote retimed.bench

Differential checking: the retimed and testable netlists are equivalent
to their source, on the embedded s27 and on a generated benchmark:

  $ $MERCED check s27 --lk 3
  round-trip  ok: writer -> parser is the identity
  retimed     ok: equivalent over 8 sequences x 24 cycles (latency 0; 3 cuts left to mux cells)
  testable    ok: normal mode bit-identical over 1984 random streams
  check passed

  $ $MERCED check s510.bench --lk 6
  round-trip  ok: writer -> parser is the identity
  retimed     ok: equivalent over 8 sequences x 24 cycles (latency 0; 100 cuts left to mux cells)
  testable    ok: normal mode bit-identical over 1984 random streams
  check passed

A pinned-seed fuzz run of the whole flow is clean:

  $ $MERCED fuzz --seed 7 --count 5
  fuzz: 5 cases
    entered the flow: 5
    cleanly rejected: 0
    flows fully clean: 5
    oracle violations: 0

Compilation is deterministic: retiming twice gives byte-identical
netlists, and the partition report is independent of the worker count:

  $ $MERCED retime s27 --lk 3 -o retimed2.bench > /dev/null
  $ cmp retimed.bench retimed2.bench && echo identical
  identical
  $ $MERCED selftest s27 --lk 4 --jobs 4 > jobs4.out
  $ cmp serial.out jobs4.out && echo identical
  identical

Unknown circuits fail cleanly:

  $ $MERCED stats nosuch 2>&1 | head -1 | cut -c1-30
  error: "nosuch" is neither a f
  $ $MERCED stats nosuch; echo "exit $?"
  error: "nosuch" is neither a file, "s27", nor a known benchmark (s510, s420.1, s641, s713, s820, s832, s838.1, s1423, s5378, s9234.1, s9234, s13207.1, s13207, s15850.1, s35932, s38417, s38584.1)
  exit 1
