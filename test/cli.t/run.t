The Merced CLI end to end.

  $ MERCED=../../bin/merced.exe
 Statistics of the embedded s27:

  $ $MERCED stats s27
  Circuit       PIs    POs   DFFs   Gates   INVs       Area
  s27             4      1      3       8      2         51
  s27: 4 PI, 1 PO, 3 DFF, 8 gates, 2 INV, area 51, max fan-in 2, depth 6

Partitioning at the paper's worked-example constraint (CPU time elided):

  $ $MERCED partition s27 --lk 3 | grep -v "CPU:"
  Merced result for s27 (l_k = 3)
    flow: 121 shortest-path trees injected
    clusters: 5 (boundaries used: 5)
    partitions: 3 after 2 merges
    cut nets: 3 (3 on SCCs; 2 retimable, 1 muxed)
    CBIT area: 57 units w/ retiming vs 85 w/o (52.9% vs 62.6% of total)
    sigma (Eq. 4): 24.42 DFF; testing time: 16 cycles
    legal retiming blocked on 3 cut nets (multiplexed cells)

CSV output has a fixed header:

  $ $MERCED partition s27 --lk 3 --csv | head -1
  circuit,l_k,dffs,dffs_on_scc,cuts_total,cuts_on_scc,retimable,mux_excess,partitions,area_circuit,area_cbit_retimed,area_cbit_plain,ratio_with,ratio_without,sigma_dff,testing_time,cpu_seconds

Generated netlists parse back through the same tool:

  $ $MERCED generate s510 -o s510.bench
  wrote s510.bench (236 nodes)
  $ $MERCED stats s510.bench | head -2
  Circuit       PIs    POs   DFFs   Gates   INVs       Area
  s510           19      2      6     179     32        547

Self-test validation reaches full coverage on s27's segments:

  $ $MERCED selftest s27 --lk 4 | head -3
  circuit s27: 2 segments
    segment 0: width 7: 32/32 faults detected (100.0%; 0 redundant; detectable coverage 100.0%) with 128 patterns
    segment 1: width 1: 2/2 faults detected (100.0%; 0 redundant; detectable coverage 100.0%) with 2 patterns

Parallel fault simulation is bit-identical to the serial default:

  $ $MERCED selftest s27 --lk 4 > serial.out
  $ $MERCED selftest s27 --lk 4 --jobs 2 > parallel.out
  $ cmp serial.out parallel.out && echo identical
  identical

Test-hardware insertion and the retimed netlist both emit valid .bench:

  $ $MERCED insert s27 --lk 3 -o testable.bench | head -1
  inserted 3 test cells in 2 CBITs (+131 area units, 43.7/cell)
  $ $MERCED stats testable.bench | sed -n 2p
  testable        8      1      6      39      4        182

  $ $MERCED retime s27 --lk 3 -o retimed.bench
  retimed netlist: 17 nodes (3 registers; 3 cut nets left to multiplexed cells)
  initial states: 3 registers, 0 unknown (scan-initialised)
  wrote retimed.bench

Differential checking: the retimed and testable netlists are equivalent
to their source, on the embedded s27 and on a generated benchmark:

  $ $MERCED check s27 --lk 3
  round-trip  ok: writer -> parser is the identity
  retimed     ok: equivalent over 8 sequences x 24 cycles (latency 0; 3 cuts left to mux cells)
  testable    ok: normal mode bit-identical over 1984 random streams
  check passed

  $ $MERCED check s510.bench --lk 6
  round-trip  ok: writer -> parser is the identity
  retimed     ok: equivalent over 8 sequences x 24 cycles (latency 0; 100 cuts left to mux cells)
  testable    ok: normal mode bit-identical over 1984 random streams
  check passed

A pinned-seed fuzz run of the whole flow is clean:

  $ $MERCED fuzz --seed 7 --count 5
  fuzz: 5 cases
    entered the flow: 5
    cleanly rejected: 0
    flows fully clean: 5
    oracle violations: 0

Compilation is deterministic: retiming twice gives byte-identical
netlists, and the partition report is independent of the worker count:

  $ $MERCED retime s27 --lk 3 -o retimed2.bench > /dev/null
  $ cmp retimed.bench retimed2.bench && echo identical
  identical
  $ $MERCED selftest s27 --lk 4 --jobs 4 > jobs4.out
  $ cmp serial.out jobs4.out && echo identical
  identical

Unknown circuits fail cleanly; usage and internal errors exit 2 (the
documented contract: 0 = clean, 1 = findings, 2 = usage/internal error):

  $ $MERCED stats nosuch 2>&1 | head -1 | cut -c1-30
  error: "nosuch" is neither a f
  $ $MERCED stats nosuch; echo "exit $?"
  error: "nosuch" is neither a file, "s27", nor a known benchmark (s510, s420.1, s641, s713, s820, s832, s838.1, s1423, s5378, s9234.1, s9234, s13207.1, s13207, s15850.1, s35932, s38417, s38584.1)
  exit 2
  $ $MERCED lint --no-such-flag 2> /dev/null; echo "exit $?"
  exit 2

Lint: the full rule registry is clean on s27 and its compiled output,
in the human and the JSON form:

  $ $MERCED lint s27 --lk 3; echo "exit $?"
  lint s27: clean (21 rules, compile ok; 0 errors, 0 warnings, 3 infos)
  exit 0
  $ $MERCED lint s27 --lk 3 --json
  {"schema_version":2,"circuit":"s27","compiled":true,"rules":["syntax","multiple-drivers","undriven-net","unknown-gate","bad-arity","comb-cycle","no-state","duplicate-output","dead-logic","unread-input","stuck-net","x-state","unobservable-net","input-bound","cell-placement","scan-chain","cbit-width","area-accounting","scc-budget","retiming-legality","exhaustive-width"],"diagnostics":[{"rule":"x-state","severity":"info","locus":"G5","position":null,"message":"no initializing path from the primary inputs; power-on X may persist","hint":"add a reset or break the uninitialized feedback loop"},{"rule":"x-state","severity":"info","locus":"G6","position":null,"message":"no initializing path from the primary inputs; power-on X may persist","hint":"add a reset or break the uninitialized feedback loop"},{"rule":"x-state","severity":"info","locus":"G7","position":null,"message":"no initializing path from the primary inputs; power-on X may persist","hint":"add a reset or break the uninitialized feedback loop"}],"summary":{"errors":0,"warnings":0,"infos":3,"findings":0}}

A broken netlist is diagnosed fully — the tolerant front-end recovers
past every error instead of stopping at the first — with exit 1, and
the diagnostic order is deterministic:

  $ cat > broken.bench <<'EOF'
  > INPUT(a)
  > G2 = NAND(a, b)
  > G2 = AND(a)
  > OUTPUT(zz)
  > G3 = FROB(a)
  > @@
  > EOF
  $ $MERCED lint broken.bench; echo "exit $?"
  broken.bench:3: error[bad-arity] G2: AND cannot take 1 input (hint: multi-input kinds take two or more inputs)
  broken.bench:3: error[multiple-drivers] G2: signal is defined more than once (hint: rename one of the definitions)
  broken.bench:6: error[syntax]: illegal character '@'
  broken.bench:2: error[undriven-net] b: gate "G2" references an undefined signal (hint: define the signal with INPUT(...) or a gate)
  broken.bench:4: error[undriven-net] zz: OUTPUT references an undefined signal (hint: define the signal with INPUT(...) or a gate)
  broken.bench:5: error[unknown-gate] G3: unknown gate type "FROB" (hint: use AND, NAND, OR, NOR, XOR, XNOR, NOT, BUF or DFF)
  lint broken: 6 findings (21 rules, compile skipped; 6 errors, 0 warnings, 0 infos)
  exit 1
  $ $MERCED lint broken.bench > lint1.out 2>&1; $MERCED lint broken.bench > lint2.out 2>&1; cmp lint1.out lint2.out && echo identical
  identical

Rule selection narrows the run; unknown rule ids are usage errors:

  $ $MERCED lint broken.bench --rules syntax,unknown-gate; echo "exit $?"
  broken.bench:6: error[syntax]: illegal character '@'
  broken.bench:5: error[unknown-gate] G3: unknown gate type "FROB" (hint: use AND, NAND, OR, NOR, XOR, XNOR, NOT, BUF or DFF)
  lint broken: 2 findings (2 rules, compile skipped; 2 errors, 0 warnings, 0 infos)
  exit 1
  $ $MERCED lint broken.bench --rules nosuch; echo "exit $?"
  error: unknown lint rule "nosuch" (try --list-rules)
  exit 2

The registry's rule table is printed on demand:

  $ $MERCED lint --list-rules | wc -l
  21
  $ $MERCED lint --list-rules | head -2
  syntax             structural error   illegal characters and malformed statements in .bench text
  multiple-drivers   structural error   a signal defined more than once (two drivers short the net)

Tracing: --trace on any subcommand records the pipeline spans. A
non-.json target gets the human tree; the span names are deterministic
even though the timings are not:

  $ $MERCED partition s27 --lk 3 --trace t.txt > /dev/null 2> trace.err
  $ grep -c "trace: wrote t.txt" trace.err
  1
  $ sed -n '/^spans/,/^counters:/p' t.txt | sed '1d;$d' | awk '{print $1}'
  merced.run
  merced.to_graph
  merced.csr
  merced.scc_budget
  flow.saturate
  cluster.make_group
  merced.assign
  merced.area
  merced.retime_requirements
  retime.solve
  retime.solve
  retime.solve

A .json target gets Chrome trace_event format with balanced B/E pairs:

  $ $MERCED lint s27 --lk 3 --trace t.json > /dev/null 2> /dev/null
  $ head -1 t.json
  {"traceEvents":[
  $ tail -1 t.json
  ],"displayTimeUnit":"ms"}
  $ test $(grep -c '"ph":"B"' t.json) = $(grep -c '"ph":"E"' t.json) && echo balanced
  balanced
  $ grep -c '"name":"lint.run_circuit"' t.json
  2

The exit contract survives tracing: findings still exit 1, usage errors
still exit 2, and the trace file is written even when the run fails:

  $ $MERCED lint broken.bench --trace lt.txt > /dev/null 2> /dev/null; echo "exit $?"
  exit 1
  $ $MERCED stats nosuch --trace oops.txt 2> /dev/null; echo "exit $?"
  exit 2
  $ test -f oops.txt && echo present
  present

A .json trace written by a failing run is still parseable Chrome format
with balanced B/E pairs (open spans are flushed with synthetic ends):

  $ $MERCED stats nosuch --trace oops.json 2> /dev/null; echo "exit $?"
  exit 2
  $ head -1 oops.json
  {"traceEvents":[
  $ tail -1 oops.json
  ],"displayTimeUnit":"ms"}
  $ test $(grep -c '"ph":"B"' oops.json) = $(grep -c '"ph":"E"' oops.json) && echo balanced
  balanced

The bench regression runner: --dry-run lists the sweep without timing
anything, and bad arguments are usage errors:

  $ $MERCED bench --benchmarks s27 --dry-run; echo "exit $?"
  s27/generate jobs=1
  s27/flow jobs=1
  s27/cluster jobs=1
  s27/assign jobs=1
  s27/retime jobs=1
  s27/analysis jobs=1
  s27/partition_fm jobs=1
  s27/partition_annealing jobs=1
  s27/partition_random jobs=1
  s27/fault_sim jobs=1
  s27/fault_sim jobs=2
  s27/fault_sim_w8 jobs=1
  s27/fault_sim_w32 jobs=1
  exit 0
  $ $MERCED bench --benchmarks s27 --jobs 4 --dry-run | tail -1
  s27/fault_sim_w32 jobs=1
  $ $MERCED bench --benchmarks nosuch --dry-run 2> /dev/null; echo "exit $?"
  exit 2
  $ $MERCED bench --benchmarks s27 --repeat 0 2> /dev/null; echo "exit $?"
  exit 2

A baseline that was never timed (zero medians — e.g. a --dry-run
artefact or a hand-edited file) is rejected up front as a usage error,
instead of feeding the 2x gate inf/nan ratios that always pass:

  $ cat > zero.json <<'EOF'
  > {
  >   "name": "pipeline",
  >   "entries": [
  >     { "name": "s27/retime", "median_ns": 0, "mad_ns": 0, "jobs": 1 }
  >   ]
  > }
  > EOF
  $ $MERCED bench --benchmarks s27 --repeat 1 --against zero.json 2>&1 | tail -1
  error: --against: baseline entry "s27/retime" has median 0 ns — the file was never timed (a --dry-run artefact?); re-record it with `merced bench`
  $ $MERCED bench --benchmarks s27 --repeat 1 --against zero.json 2> /dev/null; echo "exit $?"
  exit 2
  $ echo '{ "name": "pipeline", "entries": [] }' > empty.json
  $ $MERCED bench --benchmarks s27 --repeat 1 --against empty.json 2> /dev/null; echo "exit $?"
  exit 2

Synthetic profiles are accepted by name; misspelling one is a usage
error like any other unknown benchmark:

  $ $MERCED bench --benchmarks synth10k --dry-run | head -2
  synth10k/generate jobs=1
  synth10k/flow jobs=1
  $ $MERCED bench --benchmarks synthnosuch --dry-run 2> /dev/null; echo "exit $?"
  exit 2

The graph substrate is selectable for debugging; both substrates
produce the same partitions and the same feasible retiming, and an
unknown substrate is a usage error:

  $ $MERCED partition s27 --lk 3 --substrate hashed | grep -v "CPU:" > hashed.out
  $ $MERCED partition s27 --lk 3 --substrate csr | grep -v "CPU:" > csr.out
  $ cmp hashed.out csr.out && echo identical
  identical
  $ $MERCED retime s27 --lk 3 --substrate hashed -o rt-hashed.bench > /dev/null
  $ $MERCED retime s27 --lk 3 --substrate csr -o rt-csr.bench > /dev/null
  $ cmp rt-hashed.bench rt-csr.bench && echo identical
  identical
  $ $MERCED partition s27 --substrate nosuch 2> /dev/null; echo "exit $?"
  exit 2

--jobs and --fault-cutover are validated uniformly across subcommands:
non-positive or overflowing values are usage errors, not silent clamps:

  $ $MERCED selftest s27 --jobs 0 2> err.txt; echo "exit $?"; head -1 err.txt
  exit 2
  error: --jobs must be in 1..512, got 0
  $ $MERCED selftest s27 --jobs=-2 2> /dev/null; echo "exit $?"
  exit 2
  $ $MERCED campaign --profiles mini --jobs 100000 --no-out 2> err.txt; echo "exit $?"; head -1 err.txt
  exit 2
  error: --jobs must be in 1..512, got 100000
  $ $MERCED bench --benchmarks s27 --jobs 0 --dry-run 2> /dev/null; echo "exit $?"
  exit 2
  $ $MERCED selftest s27 --fault-cutover 0 2> err.txt; echo "exit $?"; head -1 err.txt
  exit 2
  error: --fault-cutover must be in 1..2^30, got 0
  $ $MERCED campaign --profiles mini --fault-cutover=-5 --no-out 2> /dev/null; echo "exit $?"
  exit 2
  $ $MERCED selftest s27 --fault-cutover 2000000000 2> err.txt; echo "exit $?"; head -1 err.txt
  exit 2
  error: --fault-cutover must be in 1..2^30, got 2000000000

Calibrate fits the dispatch cost model from a BENCH sweep. Missing or
entry-less inputs and a negative ridge are usage errors; a good sweep
writes the versioned artefact (the fingerprint hashes the fitted
coefficients, so it is elided here):

  $ $MERCED calibrate --from nosuch.json 2>&1; echo "exit $?"
  error: --from: no such BENCH file "nosuch.json"
  exit 2
  $ echo 'not json' > bad.json
  $ $MERCED calibrate --from bad.json 2>&1; echo "exit $?"
  error: --from: "bad.json" holds no bench entries
  exit 2
  $ $MERCED bench --benchmarks s27 --repeat 1 --out fit.json > /dev/null 2>&1
  $ $MERCED calibrate --from fit.json --ridge=-1 2>&1; echo "exit $?"
  error: --ridge must be >= 0, got -1
  exit 2
  $ $MERCED calibrate --from fit.json --out CM.json | sed -E 's/fingerprint [0-9a-f]+/fingerprint FP/'; echo "exit $?"
  wrote CM.json (13 stages from 13 entries, fingerprint FP)
  exit 0

--dispatch auto loads that model. A missing, version-skewed, or
all-zero model file is a usage error before any circuit work starts:

  $ $MERCED partition s27 --dispatch auto --model nosuch.json 2>&1; echo "exit $?"
  error: no such cost-model file "nosuch.json"
  exit 2
  $ sed 's/"schema_version": 1/"schema_version": 9/' CM.json > wrongver.json
  $ $MERCED partition s27 --dispatch auto --model wrongver.json 2>&1; echo "exit $?"
  error: cost model "wrongver.json": unsupported schema_version 9 (this build reads 1)
  exit 2
  $ cat > zero.json <<'EOF'
  > {
  >   "name": "cost-model",
  >   "schema_version": 1,
  >   "ridge": 0.001,
  >   "stages": [
  >     { "stage": "flow", "rows": 4, "coeffs": [0, 0, 0, 0, 0, 0] }
  >   ]
  > }
  > EOF
  $ $MERCED partition s27 --dispatch auto --model zero.json 2>&1; echo "exit $?"
  error: cost model "zero.json": all-zero model (a --normalise artefact or a hand-edited file?); re-fit it with `merced calibrate`
  exit 2

The dispatch decision is a pure function of the model and the circuit,
never of the worker count, so auto runs are byte-identical across
--jobs and across repeats:

  $ $MERCED selftest s27 --lk 4 --dispatch auto --model CM.json > auto1.out
  $ $MERCED selftest s27 --lk 4 --dispatch auto --model CM.json --jobs 2 > auto2.out
  $ cmp auto1.out auto2.out && echo identical
  identical
  $ $MERCED partition s27 --lk 3 --dispatch auto --model CM.json | grep -v "CPU:" > pauto1.out
  $ $MERCED partition s27 --lk 3 --dispatch auto --model CM.json | grep -v "CPU:" > pauto2.out
  $ cmp pauto1.out pauto2.out && echo identical
  identical

Tracing composes with dispatch: a successful auto run records its
spans, and a failing model load still writes the trace file:

  $ $MERCED partition s27 --lk 3 --dispatch auto --model CM.json --trace td.txt > /dev/null 2> td.err; echo "exit $?"
  exit 0
  $ grep -c "trace: wrote td.txt" td.err
  1
  $ $MERCED partition s27 --dispatch auto --model nosuch.json --trace tf.txt 2> /dev/null; echo "exit $?"
  exit 2
  $ test -f tf.txt && echo present
  present

bench --compare races auto dispatch against every forced config. It
times everything, so --dry-run is contradictory; a gate below 1 is a
usage error; the artefact has one result-matched entry per config (the
timings themselves are machine-dependent, so only the structure is
checked here):

  $ $MERCED bench --compare --benchmarks s27 --dry-run --model CM.json 2>&1; echo "exit $?"
  error: --compare times everything; drop --dry-run
  exit 2
  $ $MERCED bench --compare --benchmarks s27 --gate 0.5 --model CM.json 2>&1; echo "exit $?"
  error: --gate must be >= 1, got 0.5
  exit 2
  $ $MERCED bench --compare --benchmarks s27 --model nosuch.json 2>&1; echo "exit $?"
  error: no such cost-model file "nosuch.json"
  exit 2
  $ $MERCED bench --compare --benchmarks s27 --repeat 1 --model CM.json --out BD.json 2> /dev/null | grep -c "dispatch compare"
  1
  $ grep -c '"name": "dispatch"' BD.json
  1
  $ grep -c '"result_match": true' BD.json
  11
