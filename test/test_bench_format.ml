module Circuit = Ppet_netlist.Circuit
module Gate = Ppet_netlist.Gate
module Parser = Ppet_netlist.Bench_parser
module Writer = Ppet_netlist.Bench_writer
module Lexer = Ppet_netlist.Bench_lexer
module S27 = Ppet_netlist.S27
module Generator = Ppet_netlist.Generator

let test_lexer_tokens () =
  let l = Lexer.of_string "G1 = AND(G2, G3) # comment\nINPUT(G2)" in
  Alcotest.(check bool) "ident" true (Lexer.next l = Lexer.Ident "G1");
  Alcotest.(check bool) "equal" true (Lexer.next l = Lexer.Equal);
  Alcotest.(check bool) "and" true (Lexer.next l = Lexer.Ident "AND");
  Alcotest.(check bool) "lparen" true (Lexer.next l = Lexer.Lparen);
  Alcotest.(check bool) "g2" true (Lexer.next l = Lexer.Ident "G2");
  Alcotest.(check bool) "comma" true (Lexer.next l = Lexer.Comma);
  Alcotest.(check bool) "g3" true (Lexer.next l = Lexer.Ident "G3");
  Alcotest.(check bool) "rparen" true (Lexer.next l = Lexer.Rparen);
  (* comment swallowed *)
  Alcotest.(check bool) "input" true (Lexer.next l = Lexer.Ident "INPUT")

let test_lexer_peek () =
  let l = Lexer.of_string "abc def" in
  Alcotest.(check bool) "peek" true (Lexer.peek l = Lexer.Ident "abc");
  Alcotest.(check bool) "peek stable" true (Lexer.peek l = Lexer.Ident "abc");
  Alcotest.(check bool) "next" true (Lexer.next l = Lexer.Ident "abc");
  Alcotest.(check bool) "advances" true (Lexer.next l = Lexer.Ident "def");
  Alcotest.(check bool) "eof" true (Lexer.next l = Lexer.Eof)

let test_lexer_illegal_char () =
  let l = Lexer.of_string "a ; b" in
  ignore (Lexer.next l);
  Alcotest.(check bool) "illegal" true
    (try
       ignore (Lexer.next l);
       false
     with Circuit.Error msg -> String.length msg > 0 && String.sub msg 0 8 = "<string>")

let test_parse_s27 () =
  let c = Parser.parse_string ~title:"s27" S27.text in
  Alcotest.(check int) "nodes" 17 (Circuit.size c);
  let g9 = Circuit.node c (Circuit.find c "G9") in
  Alcotest.(check bool) "g9 nand" true (g9.Circuit.kind = Gate.Nand)

let test_parse_case_insensitive_keywords () =
  let c = Parser.parse_string "input(a)\noutput(y)\ny = not(a)" in
  Alcotest.(check int) "nodes" 2 (Circuit.size c)

let test_parse_whitespace_insensitive () =
  let c = Parser.parse_string "INPUT(a) OUTPUT(y) y=NOT( a )" in
  Alcotest.(check int) "nodes" 2 (Circuit.size c)

let test_parse_unknown_gate () =
  Alcotest.(check bool) "unknown gate" true
    (try
       ignore (Parser.parse_string "INPUT(a)\ny = FROB(a)");
       false
     with Circuit.Error msg ->
       (* position + message *)
       String.length msg > 0)

let test_parse_syntax_error_position () =
  Alcotest.(check bool) "line reported" true
    (try
       ignore (Parser.parse_string ~file:"t.bench" "INPUT(a)\ny = AND(a,)\n");
       false
     with Circuit.Error msg ->
       (* the error mentions the file *)
       String.length msg >= 7 && String.sub msg 0 7 = "t.bench")

let test_parse_keyword_named_signals () =
  (* INPUT / OUTPUT are declarations only when followed by '(' — a signal
     literally named "input" or "output" is an ordinary identifier *)
  let c =
    Parser.parse_string
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ninput = AND(a, b)\noutput = NOT(input)\ny = OR(input, output)"
  in
  Alcotest.(check int) "nodes" 5 (Circuit.size c);
  let nd = Circuit.node c (Circuit.find c "input") in
  Alcotest.(check bool) "input is a gate" true (nd.Circuit.kind = Gate.And);
  (* and keyword-prefixed names never were declarations *)
  let c2 = Parser.parse_string "INPUT(a)\nOUTPUT(y)\nINPUT1 = NOT(a)\ny = NOT(INPUT1)" in
  Alcotest.(check int) "prefixed" 3 (Circuit.size c2)

let test_parse_missing_paren () =
  Alcotest.(check bool) "missing paren" true
    (try
       ignore (Parser.parse_string "INPUT a)");
       false
     with Circuit.Error _ -> true)

let test_roundtrip_s27 () =
  let c = S27.circuit () in
  let c2 = Parser.parse_string ~title:"s27" (Writer.to_string c) in
  Alcotest.(check int) "same size" (Circuit.size c) (Circuit.size c2);
  Alcotest.(check (float 1e-9)) "same area" (Circuit.area c) (Circuit.area c2);
  (* same structure signal by signal *)
  Array.iter
    (fun (nd : Circuit.node) ->
      let nd2 = Circuit.node c2 (Circuit.find c2 nd.Circuit.name) in
      Alcotest.(check bool) ("kind of " ^ nd.Circuit.name) true
        (nd.Circuit.kind = nd2.Circuit.kind);
      let names c nd =
        List.map
          (fun f -> (Circuit.node c f).Circuit.name)
          (Array.to_list nd.Circuit.fanins)
      in
      Alcotest.(check (list string)) ("fanins of " ^ nd.Circuit.name)
        (names c nd) (names c2 nd2))
    c.Circuit.nodes

let test_file_io () =
  let path = Filename.temp_file "ppet" ".bench" in
  Writer.to_file path (S27.circuit ());
  let c = Parser.parse_file path in
  Sys.remove path;
  Alcotest.(check int) "parsed back" 17 (Circuit.size c);
  Alcotest.(check bool) "title from filename" true
    (String.length c.Circuit.title > 0)

(* property: writer/parser roundtrip on generated circuits *)
let prop_roundtrip =
  QCheck.Test.make ~name:"write/parse roundtrip on random circuits" ~count:30
    QCheck.(int_bound 100_000)
    (fun seed ->
      let c =
        Generator.small_random ~seed:(Int64.of_int (seed + 3)) ~n_pi:4 ~n_dff:5
          ~n_gates:40
      in
      let c2 = Parser.parse_string (Writer.to_string c) in
      Circuit.size c = Circuit.size c2
      && Circuit.area c = Circuit.area c2
      && Array.length c.Circuit.outputs = Array.length c2.Circuit.outputs)

(* ------------------------------------------------------------------ *)
(* BENCH_*.json perf-baseline schema (Report.bench_json) — goldens for
   both shapes: the bare pre-stats schema (circuit_stats = None must
   stay byte-identical, old baselines keep diffing cleanly) and the
   pipeline-sweep schema with per-entry circuit stats. *)

module Report = Ppet_core.Report

let bare_entries =
  [
    { Report.entry_name = "a/flow"; median_ns = 1.5; mad_ns = 0.5; jobs = 1;
      circuit_stats = None };
    { Report.entry_name = "a/fault_sim"; median_ns = 2.0; mad_ns = 0.0;
      jobs = 4; circuit_stats = None };
  ]

let stats_entries =
  let stats =
    Some
      { Report.gates = 120; dffs = 17; edges = 256; segments = 0;
        largest_cluster = 0 }
  in
  [
    { Report.entry_name = "s27/flow"; median_ns = 1.5; mad_ns = 0.5; jobs = 1;
      circuit_stats = stats };
    { Report.entry_name = "s27/retime"; median_ns = 250.0; mad_ns = 10.0;
      jobs = 1; circuit_stats = stats };
  ]

let test_bench_json_schema () =
  let json = Report.bench_json ~name:"pipeline" ~entries:bare_entries in
  Alcotest.(check string) "bare schema is stable"
    "{\n  \"name\": \"pipeline\",\n  \"entries\": [\n    { \"name\": \
     \"a/flow\", \"median_ns\": 1.5, \"mad_ns\": 0.5, \"jobs\": 1 },\n    \
     { \"name\": \"a/fault_sim\", \"median_ns\": 2, \"mad_ns\": 0, \"jobs\": \
     4 }\n  ]\n}\n"
    json

let test_bench_json_schema_stats () =
  let json = Report.bench_json ~name:"pipeline" ~entries:stats_entries in
  Alcotest.(check string) "stats schema is stable"
    "{\n  \"name\": \"pipeline\",\n  \"entries\": [\n    { \"name\": \
     \"s27/flow\", \"median_ns\": 1.5, \"mad_ns\": 0.5, \"jobs\": 1, \
     \"gates\": 120, \"dffs\": 17, \"edges\": 256 },\n    { \"name\": \
     \"s27/retime\", \"median_ns\": 250, \"mad_ns\": 10, \"jobs\": 1, \
     \"gates\": 120, \"dffs\": 17, \"edges\": 256 }\n  ]\n}\n"
    json

let test_bench_json_read_back () =
  List.iter
    (fun entries ->
      let json = Report.bench_json ~name:"pipeline" ~entries in
      let back = Report.bench_entries_of_json json in
      Alcotest.(check int) "entry count" (List.length entries)
        (List.length back);
      List.iter2
        (fun (a : Report.bench_entry) (b : Report.bench_entry) ->
          Alcotest.(check string) "name" a.Report.entry_name b.Report.entry_name;
          Alcotest.(check (float 1e-9)) "median" a.Report.median_ns
            b.Report.median_ns;
          Alcotest.(check (float 1e-9)) "mad" a.Report.mad_ns b.Report.mad_ns;
          Alcotest.(check int) "jobs" a.Report.jobs b.Report.jobs;
          Alcotest.(check bool) "stats" true
            (a.Report.circuit_stats = b.Report.circuit_stats))
        entries back)
    [ bare_entries; stats_entries ]

let suite =
  [
    Alcotest.test_case "lexer tokens" `Quick test_lexer_tokens;
    Alcotest.test_case "lexer peek" `Quick test_lexer_peek;
    Alcotest.test_case "lexer rejects illegal chars" `Quick test_lexer_illegal_char;
    Alcotest.test_case "parse s27" `Quick test_parse_s27;
    Alcotest.test_case "keywords case-insensitive" `Quick test_parse_case_insensitive_keywords;
    Alcotest.test_case "whitespace-insensitive" `Quick test_parse_whitespace_insensitive;
    Alcotest.test_case "unknown gate rejected" `Quick test_parse_unknown_gate;
    Alcotest.test_case "error carries position" `Quick test_parse_syntax_error_position;
    Alcotest.test_case "keyword-named signals parse as gates" `Quick
      test_parse_keyword_named_signals;
    Alcotest.test_case "missing paren rejected" `Quick test_parse_missing_paren;
    Alcotest.test_case "s27 roundtrip" `Quick test_roundtrip_s27;
    Alcotest.test_case "file io" `Quick test_file_io;
    Alcotest.test_case "BENCH json bare schema" `Quick test_bench_json_schema;
    Alcotest.test_case "BENCH json stats schema" `Quick
      test_bench_json_schema_stats;
    Alcotest.test_case "BENCH json read-back" `Quick
      test_bench_json_read_back;
    QCheck_alcotest.to_alcotest prop_roundtrip;
  ]
