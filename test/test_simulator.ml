module Circuit = Ppet_netlist.Circuit
module Gate = Ppet_netlist.Gate
module Parser = Ppet_netlist.Bench_parser
module Simulator = Ppet_bist.Simulator
module S27 = Ppet_netlist.S27

let word_of_bool b = if b then max_int else 0

let test_eval_all_comb () =
  let c = Parser.parse_string "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\nz = OR(a, b)\n" in
  let sim = Simulator.create c in
  let values = Array.make (Circuit.size c) 0 in
  values.(Circuit.find c "a") <- word_of_bool true;
  values.(Circuit.find c "b") <- word_of_bool false;
  Simulator.eval_all sim values;
  Alcotest.(check int) "and" 0 values.(Circuit.find c "y");
  Alcotest.(check int) "or" max_int values.(Circuit.find c "z")

let test_order_respects_dependencies () =
  let c = S27.circuit () in
  let sim = Simulator.create c in
  let pos = Array.make (Circuit.size c) (-1) in
  Array.iteri (fun i id -> pos.(id) <- i) (Simulator.order sim);
  Array.iter
    (fun id ->
      let nd = Circuit.node c id in
      Array.iter
        (fun f ->
          let fk = (Circuit.node c f).Circuit.kind in
          if fk <> Gate.Input && fk <> Gate.Dff then
            Alcotest.(check bool) "fanin earlier" true (pos.(f) < pos.(id)))
        nd.Circuit.fanins)
      (Simulator.order sim)

let test_eval_members_only () =
  let c = Parser.parse_string "INPUT(a)\nOUTPUT(y)\ng1 = NOT(a)\ny = NOT(g1)\n" in
  let sim = Simulator.create c in
  let values = Array.make (Circuit.size c) 0 in
  let member = Array.make (Circuit.size c) false in
  member.(Circuit.find c "y") <- true;
  (* g1 is NOT evaluated: its preset value 0 is used as the boundary *)
  values.(Circuit.find c "g1") <- 0;
  Simulator.eval_members sim values ~member;
  Alcotest.(check int) "y = NOT(boundary 0)" max_int values.(Circuit.find c "y")

let test_step_counter () =
  (* 1-bit toggler: q = DFF(NOT(q)) *)
  let c = Parser.parse_string "INPUT(en)\nOUTPUT(q)\nq = DFF(n)\nn = NOT(q)\n" in
  let sim = Simulator.create c in
  let state = [| 0 |] in
  let next1, _ = Simulator.step sim ~state ~pi:[| 0 |] in
  Alcotest.(check int) "toggles to 1" max_int next1.(0);
  let next2, _ = Simulator.step sim ~state:next1 ~pi:[| 0 |] in
  Alcotest.(check int) "toggles back" 0 next2.(0)

let test_run_collects_outputs () =
  let c = Parser.parse_string "INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n" in
  let sim = Simulator.create c in
  let final, outs =
    Simulator.run sim ~state:[| 0 |] ~pis:[ [| max_int |]; [| 0 |]; [| max_int |] ]
  in
  Alcotest.(check int) "final state" max_int final.(0);
  Alcotest.(check (list (list int))) "delayed stream"
    [ [ 0 ]; [ max_int ]; [ 0 ] ]
    (List.map Array.to_list outs)

let test_size_guards () =
  let c = S27.circuit () in
  let sim = Simulator.create c in
  Alcotest.check_raises "state" (Invalid_argument "Simulator.step: state size mismatch")
    (fun () -> ignore (Simulator.step sim ~state:[| 0 |] ~pi:[| 0; 0; 0; 0 |]));
  Alcotest.check_raises "pi" (Invalid_argument "Simulator.step: pi size mismatch")
    (fun () -> ignore (Simulator.step sim ~state:[| 0; 0; 0 |] ~pi:[| 0 |]))

(* step_into writes the same next-state and outputs step returns, with
   every buffer (including an aliased next/state) reused across cycles *)
let prop_step_into_matches_step =
  QCheck.Test.make ~name:"step_into = step across reused buffers" ~count:100
    QCheck.(pair (int_bound 0xFFFFFF) (int_range 1 5))
    (fun (seed, cycles) ->
      let c = S27.circuit () in
      let sim = Simulator.create c in
      let rng = Ppet_digraph.Prng.create (Int64.of_int (seed + 3)) in
      let word () =
        Int64.to_int
          (Int64.logand (Ppet_digraph.Prng.next_int64 rng) (Int64.of_int max_int))
      in
      let n_dff = Array.length (Circuit.dffs c) in
      let n_pi = Array.length c.Circuit.inputs in
      let n_po = Array.length c.Circuit.outputs in
      let values = Array.make (Circuit.size c) (word ()) in
      let state = Array.init n_dff (fun _ -> word ()) in
      let expect_state = Array.copy state in
      let po = Array.make n_po 0 in
      let ok = ref true in
      for _ = 1 to cycles do
        let pi = Array.init n_pi (fun _ -> word ()) in
        let exp_next, exp_po = Simulator.step sim ~state:expect_state ~pi in
        (* next aliases state: the in-place reuse pattern run uses *)
        Simulator.step_into sim ~values ~state ~pi ~next:state ~po;
        if state <> exp_next || po <> exp_po then ok := false;
        Array.blit exp_next 0 expect_state 0 n_dff
      done;
      !ok)

let test_step_into_guards () =
  let c = S27.circuit () in
  let sim = Simulator.create c in
  let values = Array.make (Circuit.size c) 0 in
  Alcotest.check_raises "values" (Invalid_argument "Simulator.step: values size mismatch")
    (fun () ->
      Simulator.step_into sim ~values:[| 0 |] ~state:[| 0; 0; 0 |]
        ~pi:[| 0; 0; 0; 0 |] ~next:[| 0; 0; 0 |] ~po:[| 0 |]);
  Alcotest.check_raises "state" (Invalid_argument "Simulator.step: state size mismatch")
    (fun () ->
      Simulator.step_into sim ~values ~state:[| 0 |] ~pi:[| 0; 0; 0; 0 |]
        ~next:[| 0 |] ~po:[| 0 |])

(* property: word-parallel sequential simulation of s27 agrees with a
   naive per-bit boolean reference *)
let prop_s27_matches_reference =
  QCheck.Test.make ~name:"s27 word simulation = boolean reference" ~count:60
    QCheck.(pair (int_bound 0xFFFFFF) (int_range 1 6))
    (fun (seed, cycles) ->
      let c = S27.circuit () in
      let sim = Simulator.create c in
      let rng = Ppet_digraph.Prng.create (Int64.of_int (seed + 1)) in
      let n_pi = Array.length c.Circuit.inputs in
      let pis =
        List.init cycles (fun _ ->
            Array.init n_pi (fun _ ->
                Int64.to_int
                  (Int64.logand (Ppet_digraph.Prng.next_int64 rng)
                     (Int64.of_int max_int))))
      in
      let dffs = Circuit.dffs c in
      let _, outs = Simulator.run sim ~state:(Array.make (Array.length dffs) 0) ~pis in
      (* boolean reference on lane 0 and lane 17 *)
      let check_lane lane =
        let state = Hashtbl.create 8 in
        Array.iter (fun d -> Hashtbl.replace state d false) dffs;
        let ok = ref true in
        List.iteri
          (fun t pi_words ->
            let values = Hashtbl.create 32 in
            Array.iteri
              (fun i p ->
                Hashtbl.replace values p ((pi_words.(i) lsr lane) land 1 = 1))
              c.Circuit.inputs;
            Array.iter
              (fun d -> Hashtbl.replace values d (Hashtbl.find state d))
              dffs;
            let rec value id =
              match Hashtbl.find_opt values id with
              | Some v -> v
              | None ->
                let nd = Circuit.node c id in
                let v = Gate.eval nd.Circuit.kind (Array.map value nd.Circuit.fanins) in
                Hashtbl.replace values id v;
                v
            in
            let po = value c.Circuit.outputs.(0) in
            let word = (List.nth outs t).(0) in
            if (word lsr lane) land 1 = 1 <> po then ok := false;
            Array.iter
              (fun d ->
                let nd = Circuit.node c d in
                Hashtbl.replace state d (value nd.Circuit.fanins.(0)))
              dffs)
          pis;
        !ok
      in
      check_lane 0 && check_lane 17)

let suite =
  [
    Alcotest.test_case "combinational eval" `Quick test_eval_all_comb;
    Alcotest.test_case "topological order" `Quick test_order_respects_dependencies;
    Alcotest.test_case "member-restricted eval" `Quick test_eval_members_only;
    Alcotest.test_case "sequential toggler" `Quick test_step_counter;
    Alcotest.test_case "run collects outputs" `Quick test_run_collects_outputs;
    Alcotest.test_case "size guards" `Quick test_size_guards;
    Alcotest.test_case "step_into size guards" `Quick test_step_into_guards;
    QCheck_alcotest.to_alcotest prop_step_into_matches_step;
    QCheck_alcotest.to_alcotest prop_s27_matches_reference;
  ]
