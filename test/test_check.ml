(* The check subsystem: differential sequential equivalence, the typed
   error layer, and the pipeline fuzzer run at a pinned seed. *)

module Circuit = Ppet_netlist.Circuit
module Parser = Ppet_netlist.Bench_parser
module Writer = Ppet_netlist.Bench_writer
module Generator = Ppet_netlist.Generator
module S27 = Ppet_netlist.S27
module Logic3 = Ppet_retiming.Logic3
module To_circuit = Ppet_retiming.To_circuit
module Params = Ppet_core.Params
module Merced = Ppet_core.Merced
module Error = Ppet_check.Error
module Seq_check = Ppet_check.Seq_check
module Fuzz = Ppet_check.Fuzz

let test_self_equivalent () =
  let c = S27.circuit () in
  match Seq_check.check c c with
  | Seq_check.Equivalent { latency; _ } ->
    Alcotest.(check int) "latency" 0 latency
  | Seq_check.Inequivalent d ->
    Alcotest.failf "s27 diverged from itself: %a" Seq_check.pp_divergence d

let test_planted_divergence () =
  let left = Parser.parse_string "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)" in
  let right = Parser.parse_string "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = OR(a, b)" in
  match Seq_check.check left right with
  | Seq_check.Equivalent _ -> Alcotest.fail "AND vs OR reported equivalent"
  | Seq_check.Inequivalent d ->
    Alcotest.(check string) "output" "y" d.Seq_check.output;
    (* the counterexample must replay: same stimulus, same divergence *)
    (match
       Seq_check.replay ~latency:d.Seq_check.latency left right
         d.Seq_check.stimulus
     with
     | None -> Alcotest.fail "recorded stimulus does not replay"
     | Some d' ->
       Alcotest.(check string) "replayed output" d.Seq_check.output
         d'.Seq_check.output;
       Alcotest.(check int) "replayed cycle" d.Seq_check.cycle
         d'.Seq_check.cycle)

let test_latency_alignment () =
  (* right is left with one pipeline register on the output path; with an
     X initial value the checker must find the 1-cycle alignment *)
  let left = Parser.parse_string "INPUT(a)\nOUTPUT(y)\ny = NOT(a)" in
  let right = Parser.parse_string "INPUT(a)\nOUTPUT(y)\nn = NOT(a)\ny = DFF(n)" in
  match Seq_check.check ~init_right:(fun _ -> Logic3.X) left right with
  | Seq_check.Equivalent { latency; _ } ->
    Alcotest.(check int) "latency" 1 latency
  | Seq_check.Inequivalent d ->
    Alcotest.failf "pipelined copy diverged: %a" Seq_check.pp_divergence d

let test_retimed_s27_equivalent () =
  let c = S27.circuit () in
  let r = Merced.run ~params:(Params.with_lk 3) c in
  match Merced.retimed_netlist r with
  | None -> Alcotest.fail "s27 retiming infeasible"
  | Some (emitted, _) -> (
    match
      Seq_check.check c emitted.To_circuit.circuit
        ~init_right:(To_circuit.init_fn emitted)
    with
    | Seq_check.Equivalent _ -> ()
    | Seq_check.Inequivalent d ->
      Alcotest.failf "retimed s27 diverges: %a" Seq_check.pp_divergence d)

let test_error_wrap_positions () =
  (match Error.wrap Error.Parse (fun () -> raise (Circuit.Error "t.bench:3: boom")) with
   | Result.Error e ->
     Alcotest.(check (option string)) "position" (Some "t.bench:3") e.Error.position;
     Alcotest.(check string) "message" "boom" e.Error.message;
     Alcotest.(check string) "rendered" "parse: t.bench:3: boom" (Error.to_string e)
   | Ok _ -> Alcotest.fail "expected a diagnostic");
  (match Error.wrap Error.Retime (fun () -> invalid_arg "bad rho") with
   | Result.Error e ->
     Alcotest.(check (option string)) "no position" None e.Error.position;
     Alcotest.(check string) "stage" "retime" (Error.stage_name e.Error.stage)
   | Ok _ -> Alcotest.fail "expected a diagnostic");
  (* positionless Circuit.Error text survives unsplit *)
  (match Error.wrap Error.Parse (fun () -> raise (Circuit.Error "plain message")) with
   | Result.Error e ->
     Alcotest.(check (option string)) "unsplit" None e.Error.position;
     Alcotest.(check string) "kept" "plain message" e.Error.message
   | Ok _ -> Alcotest.fail "expected a diagnostic");
  Alcotest.(check int) "ok passes through" 7
    (match Error.wrap Error.Check (fun () -> 7) with
     | Ok v -> v
     | Result.Error _ -> -1)

(* regression: a negative max_latency used to escape as Assert_failure
   (the align loop's impossible-case branch); it is an input shape the
   caller can produce, so it must be a typed Check error instead *)
let test_negative_max_latency_typed () =
  let c = S27.circuit () in
  (match Seq_check.check ~max_latency:(-1) c c with
   | _ -> Alcotest.fail "negative max_latency was accepted"
   | exception Error.Error e ->
     Alcotest.(check string) "stage" "check" (Error.stage_name e.Error.stage)
   | exception Assert_failure _ ->
     Alcotest.fail "negative max_latency still hits assert false");
  match Seq_check.check ~sequences:(-3) c c with
  | _ -> Alcotest.fail "negative sequences was accepted"
  | exception Error.Error e ->
    Alcotest.(check string) "stage" "check" (Error.stage_name e.Error.stage)

let test_fuzz_pinned_seed () =
  let r = Fuzz.run ~seed:0xF522L ~count:40 () in
  Alcotest.(check int) "cases" 40 r.Fuzz.cases;
  Alcotest.(check int) "violations" 0 (List.length r.Fuzz.violations);
  Alcotest.(check bool) "some circuits entered" true (r.Fuzz.entered >= 20);
  Alcotest.(check bool) "some flows completed" true (r.Fuzz.completed > 0);
  Alcotest.(check int) "entered + rejected covers the mutants" r.Fuzz.cases
    (r.Fuzz.entered + r.Fuzz.rejected)

let test_fuzz_deterministic () =
  let a = Fuzz.run ~seed:99L ~count:20 () in
  let b = Fuzz.run ~seed:99L ~count:20 () in
  Alcotest.(check bool) "identical reports" true (a = b)

(* the stronger round-trip property the fuzzer also enforces per case:
   writer -> parser is the identity up to node renumbering *)
let prop_roundtrip_identity =
  QCheck.Test.make ~name:"write/parse identity (Circuit.equal)" ~count:60
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let c =
        Generator.small_random ~seed:(Int64.of_int (seed + 11)) ~n_pi:5
          ~n_dff:4 ~n_gates:30
      in
      Circuit.equal c (Parser.parse_string (Writer.to_string c)))

(* compiling the same circuit twice yields byte-identical artefacts:
   the flow has no leftover hash-order dependence *)
let prop_byte_stable =
  QCheck.Test.make ~name:"retimed netlist emission is byte-stable" ~count:15
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let c =
        Generator.small_random ~seed:(Int64.of_int (seed + 29)) ~n_pi:4
          ~n_dff:4 ~n_gates:25
      in
      let emit () =
        let r = Merced.run ~params:(Params.with_lk 5) c in
        match Merced.retimed_netlist r with
        | None -> "infeasible"
        | Some (emitted, dropped) ->
          Printf.sprintf "%d\n%s" dropped
            (Writer.to_string emitted.To_circuit.circuit)
      in
      String.equal (emit ()) (emit ()))

let suite =
  [
    Alcotest.test_case "s27 equivalent to itself" `Quick test_self_equivalent;
    Alcotest.test_case "planted divergence found and replayed" `Quick
      test_planted_divergence;
    Alcotest.test_case "latency alignment" `Quick test_latency_alignment;
    Alcotest.test_case "retimed s27 equivalent" `Quick test_retimed_s27_equivalent;
    Alcotest.test_case "negative max_latency is a typed error" `Quick
      test_negative_max_latency_typed;
    Alcotest.test_case "typed errors carry positions" `Quick
      test_error_wrap_positions;
    Alcotest.test_case "fuzz at pinned seed is clean" `Slow test_fuzz_pinned_seed;
    Alcotest.test_case "fuzz reports are deterministic" `Quick
      test_fuzz_deterministic;
    QCheck_alcotest.to_alcotest prop_roundtrip_identity;
    QCheck_alcotest.to_alcotest prop_byte_stable;
  ]
