(* The campaign runner: deterministic reports (bytes and all), identical
   at any job count, with the coverage gate and the JSON schema pinned. *)

module Circuit = Ppet_netlist.Circuit
module Campaign = Ppet_core.Campaign
module Params = Ppet_core.Params
module Domain_pool = Ppet_parallel.Domain_pool

let plan profiles =
  { Campaign.default_plan with Campaign.profiles }

(* the s27 report is small enough to pin byte for byte — the one
   tested segment has iota 7, all 34 collapsed faults detectable *)
let test_human_golden_s27 () =
  let report = Campaign.run (plan [ "s27" ]) in
  let expected =
    String.concat "\n"
      [
        "campaign: 1 circuits, words 8, drop on, max width 14, prune on";
        "circuit       gates  dffs  segs  tested   faults  pruned  detected  coverage   aliasing  test-cycles";
        "s27              10     3     1       1       34       0        34   100.00%   7.81e-03           24";
        "total: 34/34 faults detected (0 untestable pruned; coverage 100.00% \
         of testable, 100.00% raw), 1 segments tested, 0 skipped";
        "";
      ]
  in
  Alcotest.(check string) "human bytes" expected (Campaign.human report)

let test_deterministic_and_jobs_independent () =
  let p = plan [ "s27"; "s510"; "s420.1" ] in
  let serial = Campaign.run p in
  let again = Campaign.run p in
  Alcotest.(check string) "rerun json"
    (Campaign.to_json ~normalise:true serial)
    (Campaign.to_json ~normalise:true again);
  List.iter
    (fun jobs ->
      let pooled = Domain_pool.with_pool ~jobs (fun pool -> Campaign.run ~pool p) in
      Alcotest.(check string)
        (Printf.sprintf "jobs %d json" jobs)
        (Campaign.to_json ~normalise:true serial)
        (Campaign.to_json ~normalise:true pooled);
      Alcotest.(check string)
        (Printf.sprintf "jobs %d human" jobs)
        (Campaign.human serial) (Campaign.human pooled))
    [ 2; 3 ]

let test_json_schema () =
  let report = Campaign.run (plan [ "s27" ]) in
  let norm = Campaign.to_json ~normalise:true report in
  let has needle =
    let nl = String.length needle and l = String.length norm in
    let rec go i = i + nl <= l && (String.sub norm i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "campaign name" true (has "\"name\": \"campaign\"");
  Alcotest.(check bool) "circuits array" true (has "\"circuits\": [");
  Alcotest.(check bool) "s27 entry" true (has "\"name\": \"s27\"");
  Alcotest.(check bool) "prune knob" true (has "\"prune\": true");
  Alcotest.(check bool) "untestable field" true (has "\"untestable\": 0");
  Alcotest.(check bool) "testable field" true (has "\"testable\": 34");
  Alcotest.(check bool) "raw coverage field" true (has "\"coverage_raw\": 1");
  Alcotest.(check bool) "normalised wall" true (has "\"wall_ns\": 0 }");
  (* the live report carries real wall clocks, so the bytes differ *)
  Alcotest.(check bool) "normalise does something" true
    (norm <> Campaign.to_json report)

let test_below_min_gate () =
  (* s420.1's one tested segment holds undetectable faults: testable
     coverage about 96% even after pruning, so a 99% gate flags it and
     s27 passes *)
  let p = { (plan [ "s27"; "s420.1" ]) with Campaign.min_coverage = 0.99 } in
  let report = Campaign.run p in
  (match Campaign.below_min p report with
   | [ cr ] ->
     Alcotest.(check string) "the failing circuit" "s420.1" cr.Campaign.circuit;
     Alcotest.(check bool) "below" true (cr.Campaign.coverage < 0.99)
   | l -> Alcotest.failf "expected 1 failing circuit, got %d" (List.length l));
  let ungated = { p with Campaign.min_coverage = 0.0 } in
  Alcotest.(check int) "gate off" 0
    (List.length (Campaign.below_min ungated (Campaign.run ungated)))

let test_unknown_profile_rejected () =
  Alcotest.(check bool) "raises Circuit.Error" true
    (try
       Campaign.validate_profiles [ "s27"; "nope" ];
       false
     with Circuit.Error _ -> true)

let test_bad_knobs_rejected () =
  let bad p = try ignore (Campaign.run p); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "words 0" true
    (bad { (plan [ "s27" ]) with Campaign.words = 0 });
  Alcotest.(check bool) "empty profiles" true (bad (plan []));
  Alcotest.(check bool) "min_coverage 2" true
    (bad { (plan [ "s27" ]) with Campaign.min_coverage = 2.0 });
  Alcotest.(check bool) "max_width 30" true
    (bad { (plan [ "s27" ]) with Campaign.max_width = 30 })

(* the acceptance invariant of the pruning pre-pass: the detected-fault
   count is bit-identical with pruning on and off (pruned faults are
   provably undetectable, and verdicts are per-fault), only the
   denominator moves *)
let test_prune_identical_detected () =
  let p = plan [ "s27"; "s420.1"; "s641" ] in
  let pruned = Campaign.run { p with Campaign.prune = true } in
  let raw = Campaign.run { p with Campaign.prune = false } in
  List.iter2
    (fun (a : Campaign.circuit_report) (b : Campaign.circuit_report) ->
      Alcotest.(check int) "detected" b.Campaign.n_detected a.Campaign.n_detected;
      Alcotest.(check int) "faults" b.Campaign.n_faults a.Campaign.n_faults;
      Alcotest.(check int) "unpruned count" 0 b.Campaign.n_untestable;
      Alcotest.(check (float 1e-9)) "raw coverage agrees"
        b.Campaign.coverage_raw a.Campaign.coverage_raw;
      Alcotest.(check bool) "testable coverage never lower" true
        (a.Campaign.coverage >= b.Campaign.coverage))
    pruned.Campaign.circuits raw.Campaign.circuits;
  (* s420.1 is the interesting one: its tested segment carries
     statically-untestable faults, so pruning must actually fire *)
  let s4201 = List.nth pruned.Campaign.circuits 1 in
  Alcotest.(check bool) "nonzero prune" true (s4201.Campaign.n_untestable > 0)

let test_drop_keep_same_report () =
  let keep = Campaign.run { (plan [ "s27"; "s510" ]) with Campaign.drop = false } in
  let drop = Campaign.run { (plan [ "s27"; "s510" ]) with Campaign.drop = true } in
  List.iter2
    (fun (k : Campaign.circuit_report) (d : Campaign.circuit_report) ->
      Alcotest.(check int) "detected" k.Campaign.n_detected d.Campaign.n_detected;
      Alcotest.(check bool) "drop works no harder" true
        (d.Campaign.word_evals <= k.Campaign.word_evals))
    keep.Campaign.circuits drop.Campaign.circuits

let suite =
  [
    Alcotest.test_case "s27 human report golden" `Quick test_human_golden_s27;
    Alcotest.test_case "deterministic and jobs-independent" `Quick
      test_deterministic_and_jobs_independent;
    Alcotest.test_case "normalised JSON schema" `Quick test_json_schema;
    Alcotest.test_case "coverage gate" `Quick test_below_min_gate;
    Alcotest.test_case "unknown profile rejected" `Quick
      test_unknown_profile_rejected;
    Alcotest.test_case "bad knobs rejected" `Quick test_bad_knobs_rejected;
    Alcotest.test_case "prune = raw detected sets" `Quick
      test_prune_identical_detected;
    Alcotest.test_case "drop = keep verdicts" `Quick test_drop_keep_same_report;
  ]
