The campaign runner end to end: the 0/1/2 exit contract and the
deterministic human report.

  $ MERCED=../../bin/merced.exe

A clean campaign over three small profiles exits 0 and writes the JSON
artefact:

  $ $MERCED campaign --profiles s27,s510,s420.1 -o report.json
  campaign: 3 circuits, words 8, drop on, max width 14, prune on
  circuit       gates  dffs  segs  tested   faults  pruned  detected  coverage   aliasing  test-cycles
  s27              10     3     1       1       34       0        34   100.00%   7.81e-03           24
  s510            211     6     9       1       26       0        26   100.00%   3.91e-03       393488
  s420.1          218    16     4       1       38      12        25    96.15%   9.77e-04       262260
  total: 85/98 faults detected (12 untestable pruned; coverage 98.84% of testable, 86.73% raw), 3 segments tested, 11 skipped
  wrote report.json (3 circuits)
  $ head -5 report.json
  {
    "name": "campaign",
    "words": 8,
    "drop": true,
    "max_width": 14,

The report is identical at any job count, word width, and dropping
policy (only wall clocks move, and the human table carries none):

  $ $MERCED campaign --profiles s27,s510,s420.1 --no-out > serial.out
  $ $MERCED campaign --profiles s27,s510,s420.1 --no-out --jobs 3 > parallel.out
  $ cmp serial.out parallel.out
  $ $MERCED campaign --profiles s27,s510,s420.1 --no-out --words 1 --no-drop > scalar.out
  $ tail -n +2 serial.out > serial.body; tail -n +2 scalar.out > scalar.body
  $ cmp serial.body scalar.body

A circuit below --min-coverage fails the campaign with exit 1 (s420.1's
tested segment holds undetectable faults):

  $ $MERCED campaign --profiles s420.1 --min-coverage 0.99 --no-out
  campaign: 1 circuits, words 8, drop on, max width 14, prune on
  circuit       gates  dffs  segs  tested   faults  pruned  detected  coverage   aliasing  test-cycles
  s420.1          218    16     4       1       38      12        25    96.15%   9.77e-04       262260
  total: 25/38 faults detected (12 untestable pruned; coverage 96.15% of testable, 65.79% raw), 1 segments tested, 3 skipped
  coverage gate: s420.1 at 96.15% is below the 99.00% minimum
  [1]

Unknown profiles and bad knobs are usage errors, exit 2:

  $ $MERCED campaign --profiles nope --no-out 2>&1 | head -1 | cut -c1-30
  error: "nope" is neither "s27"
  $ $MERCED campaign --profiles nope --no-out 2>/dev/null
  [2]
  $ $MERCED campaign --profiles s27 --words 0 --no-out
  error: Campaign.run: words must be >= 1
  [2]
