(* The serve daemon: JSON codec, protocol parsing, the result cache, and
   end-to-end daemon behaviour over a real Unix socket — concurrent
   mixed batches byte-identical to the one-shot CLI bodies, cache hits
   on resubmission, structured errors for poisoned jobs, queue
   backpressure, timeouts, and progress streaming. *)

module Json = Ppet_serve.Json
module Protocol = Ppet_serve.Protocol
module Cache = Ppet_serve.Cache
module Ops = Ppet_serve.Ops
module Server = Ppet_serve.Server
module Client = Ppet_serve.Client
module Params = Ppet_core.Params

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

(* ------------------------------------------------------------------ *)
(* json codec                                                          *)

let roundtrip v = Json.of_string (Json.to_string v)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("a", Json.Num 1.);
        ("b", Json.Str "line\nbreak \"quoted\" \\slash\t");
        ("c", Json.List [ Json.Bool true; Json.Null; Json.Num (-2.5) ]);
        ("empty", Json.Obj []);
        ("nil", Json.List []);
      ]
  in
  (match roundtrip v with
   | Ok v' -> checkb "roundtrip" true (v = v')
   | Error m -> Alcotest.failf "roundtrip failed: %s" m);
  (match Json.of_string "{\"u\":\"a\\u00e9\\ud83d\\ude00b\"}" with
   | Ok j ->
     checks "utf8 escapes" "a\xc3\xa9\xf0\x9f\x98\x80b"
       (Option.get (Json.str_member "u" j))
   | Error m -> Alcotest.failf "unicode parse failed: %s" m)

let test_json_errors () =
  let bad s =
    match Json.of_string s with
    | Ok _ -> Alcotest.failf "accepted %S" s
    | Error _ -> ()
  in
  bad "";
  bad "{";
  bad "{\"a\":}";
  bad "[1,]";
  bad "nul";
  bad "1 2";
  bad "\"\\x\"";
  bad "\"unterminated";
  bad "{\"a\":1}garbage"

let test_json_numbers () =
  checks "integral floats print plain" "{\"n\":3}"
    (Json.to_string (Json.Obj [ ("n", Json.Num 3.) ]));
  match Json.of_string "{\"n\":1e3,\"m\":-0.25}" with
  | Ok j ->
    checki "exponent" 1000 (Option.get (Json.int_member "n" j));
    checkb "fraction" true (Json.member "m" j = Some (Json.Num (-0.25)))
  | Error m -> Alcotest.failf "number parse failed: %s" m

(* ------------------------------------------------------------------ *)
(* protocol                                                            *)

let test_protocol_parse () =
  (match Protocol.parse "{\"op\":\"compile\",\"circuit\":\"s27\",\"lk\":24}" with
   | Ok { Protocol.request = Protocol.Run jr; id = None } ->
     checki "lk" 24 jr.Protocol.params.Params.l_k;
     (match jr.Protocol.job with
      | Protocol.Compile { source = Protocol.Spec "s27"; verbose = false } -> ()
      | _ -> Alcotest.fail "wrong job")
   | Ok _ -> Alcotest.fail "wrong request"
   | Error m -> Alcotest.failf "parse failed: %s" m);
  (match
     Protocol.parse
       "{\"op\":\"lint\",\"bench\":\"INPUT(a)\",\"title\":\"t\",\"rules\":[\"x\"],\"id\":\"7\"}"
   with
   | Ok { Protocol.request = Protocol.Run jr; id = Some "7" } -> (
     match jr.Protocol.job with
     | Protocol.Lint
         { source = Protocol.Text { title = Some "t"; _ }; rules = [ "x" ]; _ }
       -> ()
     | _ -> Alcotest.fail "wrong lint job")
   | Ok _ -> Alcotest.fail "wrong request"
   | Error m -> Alcotest.failf "parse failed: %s" m);
  let bad s =
    match Protocol.parse s with
    | Ok _ -> Alcotest.failf "accepted %S" s
    | Error _ -> ()
  in
  bad "not json";
  bad "[1]";
  bad "{\"circuit\":\"s27\"}";
  bad "{\"op\":\"frobnicate\"}";
  bad "{\"op\":\"compile\"}";
  bad "{\"op\":\"compile\",\"circuit\":\"s27\",\"bench\":\"x\"}";
  bad "{\"op\":\"compile\",\"circuit\":\"s27\",\"timeout_ms\":0}";
  bad "{\"op\":\"compile\",\"circuit\":\"s27\",\"substrate\":\"quantum\"}";
  bad "{\"op\":\"suite\",\"jobs\":[]}";
  bad "{\"op\":\"suite\",\"jobs\":[{\"op\":\"suite\",\"jobs\":[]}]}";
  bad "{\"op\":\"sleep\"}"

(* ------------------------------------------------------------------ *)
(* cache                                                               *)

let test_cache () =
  let c = Cache.create () in
  let k1 = Cache.key ~op:"compile" ~params_fp:"p" ~content:"c" ~extra:"e" in
  let k2 = Cache.key ~op:"compile" ~params_fp:"p" ~content:"c" ~extra:"e'" in
  checkb "distinct keys" false (k1 = k2);
  checkb "miss" true (Cache.find c k1 = None);
  Cache.store c k1 { Cache.exit_code = 0; output = "out"; stages = [] };
  (match Cache.find c k1 with
   | Some e -> checks "hit output" "out" e.Cache.output
   | None -> Alcotest.fail "expected hit");
  checkb "hit/miss counted" true (Cache.stats c = (1, 1))

(* ------------------------------------------------------------------ *)
(* daemon end-to-end                                                   *)

let sock_counter = ref 0

let fresh_socket () =
  incr sock_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "ppet-serve-%d-%d.sock" (Unix.getpid ()) !sock_counter)

let obj fields = Json.Obj fields
let str s = Json.Str s
let num n = Json.Num (float_of_int n)

let request ?on_progress sock fields =
  match Client.request ~retry_for:5.0 ?on_progress ~socket:sock (obj fields) with
  | Ok frame -> frame
  | Error m -> Alcotest.failf "transport error: %s" m

let with_server ?(jobs = 3) ?(queue_limit = 64) ?default_timeout_ms f =
  let sock = fresh_socket () in
  let server =
    Thread.create
      (fun () ->
        Server.run
          {
            Server.socket_path = sock;
            jobs;
            queue_limit;
            default_timeout_ms;
            quiet = true;
          })
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      (try ignore (request sock [ ("op", str "shutdown") ])
       with _ -> ());
      Thread.join server)
    (fun () -> f sock)

let field_str name frame = Option.value ~default:"" (Json.str_member name frame)
let field_int name frame = Option.value ~default:(-1) (Json.int_member name frame)
let field_bool name frame =
  Option.value ~default:false (Json.bool_member name frame)

(* compile summaries end in a measured "CPU: %.2f s" line; two separate
   runs agree on every byte but that one, so parity drops it *)
let strip_cpu s =
  String.split_on_char '\n' s
  |> List.filter (fun line ->
         not (String.length line >= 6 && String.sub line 0 6 = "  CPU:"))
  |> String.concat "\n"

(* the daemon must answer a concurrent batch of mixed jobs with exactly
   the bytes (and exit codes) the one-shot CLI bodies produce *)
let test_concurrent_mixed_batch () =
  let params = Params.default in
  let params24 = { params with Params.l_k = 24 } in
  let params3 = { params with Params.l_k = 3 } in
  let s27 = Ppet_netlist.S27.circuit () in
  let s420 = Ppet_netlist.Benchmarks.circuit "s420.1" in
  let expect =
    [|
      ( [ ("op", str "compile"); ("circuit", str "s27") ],
        Ops.compile ~params s27 );
      ( [ ("op", str "compile"); ("circuit", str "s27"); ("lk", num 24) ],
        Ops.compile ~params:params24 s27 );
      ( [ ("op", str "compile"); ("circuit", str "s420.1") ],
        Ops.compile ~params s420 );
      ( [ ("op", str "compile"); ("circuit", str "s27"); ("verbose", Json.Bool true) ],
        Ops.compile ~verbose:true ~params s27 );
      ( [ ("op", str "lint"); ("circuit", str "s27") ],
        Ops.lint ~params s27 );
      ( [ ("op", str "lint"); ("circuit", str "s27"); ("lk", num 3) ],
        Ops.lint ~params:params3 s27 );
      ( [ ("op", str "lint"); ("circuit", str "s420.1") ],
        Ops.lint ~params s420 );
      ( [ ("op", str "selftest"); ("circuit", str "s27") ],
        Ops.selftest ~params ~max_width:14 s27 );
    |]
  in
  with_server ~jobs:4 (fun sock ->
      let n = Array.length expect in
      let replies = Array.make n None in
      let threads =
        Array.init n (fun i ->
            Thread.create
              (fun () -> replies.(i) <- Some (request sock (fst expect.(i))))
              ())
      in
      Array.iter Thread.join threads;
      Array.iteri
        (fun i reply ->
          let frame = Option.get reply in
          let (expected : Ops.outcome) = snd expect.(i) in
          checks
            (Printf.sprintf "job %d type" i)
            "result" (field_str "type" frame);
          checks
            (Printf.sprintf "job %d output" i)
            (strip_cpu expected.Ops.output)
            (strip_cpu (field_str "output" frame));
          checki
            (Printf.sprintf "job %d exit code" i)
            expected.Ops.exit_code
            (field_int "exit_code" frame))
        replies;
      (* still serving: stats answers, and counted every job *)
      let stats = request sock [ ("op", str "stats") ] in
      checks "stats op" "stats" (field_str "op" stats);
      checki "jobs run" n (field_int "jobs_run" stats))

let test_cache_hit_on_resubmit () =
  with_server (fun sock ->
      let job = [ ("op", str "compile"); ("circuit", str "s27") ] in
      let first = request sock job in
      let second = request sock job in
      checkb "first is fresh" false (field_bool "cached" first);
      checkb "second is cached" true (field_bool "cached" second);
      checks "same bytes" (field_str "output" first) (field_str "output" second);
      (* the same circuit inline hits the same content-addressed entry
         (the title is part of the canonical text, so it must match) *)
      let inline =
        request sock
          [
            ("op", str "compile");
            ("bench", str (Ops.canonical (Ppet_netlist.S27.circuit ())));
            ("title", str "s27");
          ]
      in
      checkb "inline resubmission is a hit" true (field_bool "cached" inline);
      checks "inline same bytes" (field_str "output" first)
        (field_str "output" inline))

let test_poisoned_jobs () =
  with_server (fun sock ->
      (* unknown circuit: typed parse-stage error, daemon survives *)
      let bad = request sock [ ("op", str "compile"); ("circuit", str "nope") ] in
      checks "type" "error" (field_str "type" bad);
      checks "stage" "parse" (field_str "stage" bad);
      (* raw garbage on the wire: parse error frame, connection usable *)
      let conn = Client.connect ~retry_for:5.0 sock in
      Fun.protect
        ~finally:(fun () -> Client.close conn)
        (fun () ->
          match Client.roundtrip conn (Json.Str "not a request") with
          | Ok frame -> checks "garbage stage" "parse" (field_str "stage" frame)
          | Error m -> Alcotest.failf "transport error: %s" m);
      (* daemon still healthy *)
      let ok = request sock [ ("op", str "compile"); ("circuit", str "s27") ] in
      checks "after poison" "result" (field_str "type" ok))

let test_timeout_and_progress () =
  with_server (fun sock ->
      let stages = ref [] in
      let on_progress ~stage phase =
        stages := (stage, phase) :: !stages
      in
      let done_ =
        request ~on_progress sock
          [ ("op", str "sleep"); ("ms", num 80); ("progress", Json.Bool true) ]
      in
      checks "sleep ok" "result" (field_str "type" done_);
      checkb "saw begin" true (List.mem ("sleep", `Begin) !stages);
      checkb "saw end" true (List.mem ("sleep", `End) !stages);
      let timed =
        request sock
          [ ("op", str "sleep"); ("ms", num 5000); ("timeout_ms", num 60) ]
      in
      checks "timeout type" "error" (field_str "type" timed);
      checkb "timeout flag" true (field_bool "timeout" timed))

let test_suite_batch () =
  with_server (fun sock ->
      let job fields = obj fields in
      let frame =
        request sock
          [
            ("op", str "suite");
            ( "jobs",
              Json.List
                [
                  job [ ("op", str "compile"); ("circuit", str "s27") ];
                  job [ ("op", str "lint"); ("circuit", str "s27") ];
                  job [ ("op", str "compile"); ("circuit", str "nope") ];
                  job [ ("op", str "compile"); ("circuit", str "s27") ];
                ] );
          ]
      in
      checks "op" "suite" (field_str "op" frame);
      checki "total" 4 (field_int "total" frame);
      checki "ok" 3 (field_int "ok" frame);
      checki "errors" 1 (field_int "errors" frame);
      (* manifest order is preserved: the poisoned job is slot 2 *)
      match Json.list_member "jobs" frame with
      | Some [ a; b; c; d ] ->
        checks "slot 0" "ok" (field_str "status" a);
        checks "slot 1" "ok" (field_str "status" b);
        checks "slot 2" "error" (field_str "status" c);
        checks "slot 2 stage" "parse" (field_str "stage" c);
        checks "slot 3" "ok" (field_str "status" d)
      | _ -> Alcotest.fail "expected 4 job slots")

let test_backpressure () =
  with_server ~jobs:1 ~queue_limit:1 (fun sock ->
      (* occupy the single worker; the generous nap bounds how fast the
         rest of this test must win its races (it observes state via
         stats, so in practice it is done in a few milliseconds) *)
      let blocker =
        Thread.create
          (fun () ->
            ignore (request sock [ ("op", str "sleep"); ("ms", num 2000) ]))
          ()
      in
      let rec wait_for_depth want tries =
        if tries = 0 then
          Alcotest.failf "queue depth never reached %d" want;
        let stats = request sock [ ("op", str "stats") ] in
        if field_int "queue_depth" stats <> want then begin
          Thread.delay 0.005;
          wait_for_depth want (tries - 1)
        end
      in
      (* the blocker left the queue for the worker within the nap *)
      Thread.delay 0.05;
      wait_for_depth 0 100;
      (* fill the single queue slot while the worker is held ... *)
      let filler =
        Thread.create
          (fun () ->
            ignore (request sock [ ("op", str "sleep"); ("ms", num 10) ]))
          ()
      in
      wait_for_depth 1 100;
      (* ... so the next submission must bounce with a busy error *)
      let frame = request sock [ ("op", str "sleep"); ("ms", num 10) ] in
      checks "busy is an error frame" "error" (field_str "type" frame);
      checkb "busy flag" true (field_bool "busy" frame);
      Thread.join blocker;
      Thread.join filler)

let suite =
  [
    Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "json errors" `Quick test_json_errors;
    Alcotest.test_case "json numbers" `Quick test_json_numbers;
    Alcotest.test_case "protocol parse" `Quick test_protocol_parse;
    Alcotest.test_case "cache" `Quick test_cache;
    Alcotest.test_case "concurrent mixed batch" `Quick
      test_concurrent_mixed_batch;
    Alcotest.test_case "cache hit on resubmit" `Quick
      test_cache_hit_on_resubmit;
    Alcotest.test_case "poisoned jobs" `Quick test_poisoned_jobs;
    Alcotest.test_case "timeout and progress" `Quick test_timeout_and_progress;
    Alcotest.test_case "suite batch" `Quick test_suite_batch;
    Alcotest.test_case "backpressure" `Quick test_backpressure;
  ]
