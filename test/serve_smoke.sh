# Daemon smoke for the @serve-smoke alias: start merced serve, push a
# compile+lint batch through merced submit, assert the resubmission is
# answered from the cache with identical bytes, and shut down cleanly.
set -eu

merced=$1
sock=${TMPDIR:-/tmp}/merced-serve-smoke-$$.sock

"$merced" serve --socket "$sock" -j 2 -q &
daemon=$!
cleanup() { kill "$daemon" 2>/dev/null || true; rm -f "$sock"; }
trap cleanup EXIT

# compile through the daemon = the one-shot partition, byte for byte
# (minus the measured CPU line)
"$merced" submit s27 --lk 3 --socket "$sock" --retry-for 10 > daemon_compile.out
"$merced" partition s27 --lk 3 > oneshot_compile.out
diff <(grep -v "CPU:" oneshot_compile.out) <(grep -v "CPU:" daemon_compile.out)

# same story for lint (clean on s27 at lk 3, so both exit 0)
"$merced" submit s27 --op lint --lk 3 --socket "$sock" > daemon_lint.out
"$merced" lint s27 --lk 3 > oneshot_lint.out
diff oneshot_lint.out daemon_lint.out

# the resubmission must be a cache hit replaying the exact bytes
"$merced" submit s27 --lk 3 --socket "$sock" --meta > resubmit.out 2> resubmit.meta
grep -q "cached: true" resubmit.meta
diff daemon_compile.out resubmit.out

# clean shutdown: daemon exits 0 and removes its socket
"$merced" submit --shutdown --socket "$sock"
wait "$daemon"
test ! -e "$sock"
trap - EXIT
