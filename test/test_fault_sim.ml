(* Fault_sim is the seed oracle: the transparent re-simulation loop the
   batch engine is differentially tested against. Pattern construction
   and coverage live in Fault_engine now; these tests pin the oracle's
   own semantics (and the helpers) on hand-sized circuits. *)

module Circuit = Ppet_netlist.Circuit
module Gate = Ppet_netlist.Gate
module Segment = Ppet_netlist.Segment
module Fault = Ppet_bist.Fault
module Fault_sim = Ppet_bist.Fault_sim
module Fault_engine = Ppet_bist.Fault_engine
module Simulator = Ppet_bist.Simulator
module Parser = Ppet_netlist.Bench_parser

let and_circuit () =
  Parser.parse_string "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n"

let seg_of c names =
  Segment.of_members c (Array.of_list (List.map (Circuit.find c) names))

let test_exhaustive_patterns_shape () =
  let batches = Fault_engine.exhaustive_patterns ~width:3 in
  (* 8 vectors fit in one 62-bit batch *)
  Alcotest.(check int) "one batch" 1 (List.length batches);
  (match batches with
   | [ words ] ->
     Alcotest.(check int) "three inputs" 3 (Array.length words);
     (* input 0 alternates 0101... -> low 8 bits 0xAA pattern *)
     Alcotest.(check int) "bit column 0" 0b10101010 (words.(0) land 0xFF);
     Alcotest.(check int) "bit column 1" 0b11001100 (words.(1) land 0xFF);
     Alcotest.(check int) "bit column 2" 0b11110000 (words.(2) land 0xFF)
   | _ -> Alcotest.fail "expected one batch")

let test_exhaustive_patterns_multibatch () =
  let batches = Fault_engine.exhaustive_patterns ~width:8 in
  (* 256 vectors over 62-bit words -> ceil(256/62) = 5 batches *)
  Alcotest.(check int) "batches" 5 (List.length batches)

let test_and_gate_full_coverage () =
  let c = and_circuit () in
  let sim = Simulator.create c in
  let seg = seg_of c [ "y" ] in
  let faults = Fault.of_segment c seg in
  let patterns = Fault_engine.exhaustive_patterns ~width:2 in
  let results = Fault_sim.segment_detects sim seg ~patterns faults in
  Alcotest.(check (float 1e-9)) "all detected" 1.0
    (Fault_engine.coverage results)

let test_single_pattern_partial () =
  let c = and_circuit () in
  let sim = Simulator.create c in
  let seg = seg_of c [ "y" ] in
  let faults = Fault.of_segment c seg in
  (* only pattern (1,1): detects s-a-0s but no s-a-1 *)
  let patterns = [ [| 1; 1 |] ] in
  let results = Fault_sim.segment_detects sim seg ~patterns faults in
  let detected = List.filter snd results in
  Alcotest.(check bool) "partial" true
    (List.length detected > 0 && List.length detected < List.length results)

let test_redundant_fault_undetected () =
  (* y = OR(a, NOT(a)) is constant 1: s-a-1 at y is redundant *)
  let c = Parser.parse_string "INPUT(a)\nOUTPUT(y)\nn = NOT(a)\ny = OR(a, n)\n" in
  let sim = Simulator.create c in
  let seg = seg_of c [ "n"; "y" ] in
  let y = Circuit.find c "y" in
  let fault = { Fault.site = Fault.Output y; stuck_at = true } in
  let patterns = Fault_engine.exhaustive_patterns ~width:1 in
  let results = Fault_sim.segment_detects sim seg ~patterns [ fault ] in
  Alcotest.(check bool) "redundant undetected" false (List.assoc fault results)

let test_pin_fault_vs_output_fault () =
  (* on a fanout-free path they behave identically *)
  let c = and_circuit () in
  let sim = Simulator.create c in
  let seg = seg_of c [ "y" ] in
  let y = Circuit.find c "y" in
  let pin = { Fault.site = Fault.Input_pin (y, 0); stuck_at = true } in
  let out = { Fault.site = Fault.Output (Circuit.find c "a"); stuck_at = true } in
  let patterns = Fault_engine.exhaustive_patterns ~width:2 in
  let r = Fault_sim.segment_detects sim seg ~patterns [ pin; out ] in
  Alcotest.(check bool) "equivalent" true (List.assoc pin r = List.assoc out r)

let test_dff_member_rejected () =
  let c = Parser.parse_string "INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n" in
  let sim = Simulator.create c in
  let seg = seg_of c [ "q" ] in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Fault_sim.segment_detects sim seg ~patterns:[] []);
       false
     with Invalid_argument _ -> true)

let test_lfsr_patterns_cover () =
  (* LFSR patterns (plus all-zero) detect everything exhaustive does on
     the AND segment *)
  let c = and_circuit () in
  let sim = Simulator.create c in
  let seg = seg_of c [ "y" ] in
  let faults = Fault.of_segment c seg in
  let patterns = Fault_engine.lfsr_patterns ~width:2 ~count:4 in
  let results = Fault_sim.segment_detects sim seg ~patterns faults in
  Alcotest.(check (float 1e-9)) "full coverage" 1.0
    (Fault_engine.coverage results)

let test_coverage_empty () =
  Alcotest.(check (float 1e-9)) "empty = 1.0" 1.0 (Fault_engine.coverage [])

let test_batch_arity_guard () =
  let c = and_circuit () in
  let sim = Simulator.create c in
  let seg = seg_of c [ "y" ] in
  Alcotest.check_raises "arity"
    (Invalid_argument "Fault_sim.segment_detects: batch arity mismatch")
    (fun () ->
      ignore (Fault_sim.segment_detects sim seg ~patterns:[ [| 1 |] ] []))

let suite =
  [
    Alcotest.test_case "exhaustive pattern packing" `Quick test_exhaustive_patterns_shape;
    Alcotest.test_case "multi-batch packing" `Quick test_exhaustive_patterns_multibatch;
    Alcotest.test_case "AND gate full coverage" `Quick test_and_gate_full_coverage;
    Alcotest.test_case "single pattern partial coverage" `Quick test_single_pattern_partial;
    Alcotest.test_case "redundant fault undetected" `Quick test_redundant_fault_undetected;
    Alcotest.test_case "pin fault equals driver fault" `Quick test_pin_fault_vs_output_fault;
    Alcotest.test_case "DFF member rejected" `Quick test_dff_member_rejected;
    Alcotest.test_case "LFSR patterns cover" `Quick test_lfsr_patterns_cover;
    Alcotest.test_case "empty coverage" `Quick test_coverage_empty;
    Alcotest.test_case "batch arity guard" `Quick test_batch_arity_guard;
  ]
