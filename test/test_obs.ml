(* The observability layer: counters, span nesting, worker attribution,
   exporters, and the guarantee that instrumentation never perturbs
   pipeline output. *)

module Obs = Ppet_obs.Obs
module Export = Ppet_obs.Export
module Bench_stat = Ppet_obs.Bench_stat
module Domain_pool = Ppet_parallel.Domain_pool
module Merced = Ppet_core.Merced
module Params = Ppet_core.Params
module Report = Ppet_core.Report
module Generator = Ppet_netlist.Generator
module Bench_writer = Ppet_netlist.Bench_writer
module S27 = Ppet_netlist.S27

let record f =
  let tr = Obs.create () in
  let v = Obs.with_installed tr f in
  (v, tr)

(* ------------------------------------------------------------------ *)
(* counters                                                            *)

let counter_total metric events =
  List.fold_left
    (fun acc ev ->
      match ev with
      | Obs.Count c when c.metric = metric -> acc + c.value
      | _ -> acc)
    0 events

let test_counter_arithmetic () =
  let (), tr =
    record (fun () ->
        Obs.add Obs.Metric.Flow_iterations 3;
        Obs.add Obs.Metric.Flow_iterations 4;
        Obs.add Obs.Metric.Bf_relaxations 10)
  in
  let events = Obs.events tr in
  Alcotest.(check int) "flow total" 7
    (counter_total Obs.Metric.Flow_iterations events);
  Alcotest.(check int) "bf total" 10
    (counter_total Obs.Metric.Bf_relaxations events);
  Alcotest.(check int) "no fault counts" 0
    (counter_total Obs.Metric.Faults_simulated events);
  (* the human rendering shows the accumulated totals *)
  let human = Export.to_human ~normalise:true tr in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
    at 0
  in
  Alcotest.(check bool) "human mentions flow.iterations" true
    (contains human "flow.iterations");
  Alcotest.(check bool) "human omits zero counters" false
    (contains human "fault.faults")

let test_disabled_is_inert () =
  Alcotest.(check bool) "disabled" false (Obs.enabled ());
  (* none of these should record or raise without a sink *)
  Obs.add Obs.Metric.Flow_iterations 1;
  Obs.gauge "free" 1.0;
  Alcotest.(check int) "span passes value through" 9
    (Obs.span "void" (fun () -> 9))

(* ------------------------------------------------------------------ *)
(* span nesting                                                        *)

let names_of events =
  List.filter_map
    (function
      | Obs.Begin b -> Some ("B:" ^ b.name)
      | Obs.End _ -> Some "E"
      | Obs.Count _ | Obs.Gauge _ -> None)
    events

let test_span_nesting () =
  let (), tr =
    record (fun () ->
        Obs.span "outer" (fun () ->
            Obs.span "inner" (fun () -> ());
            Obs.span "inner2" (fun () -> ())))
  in
  Alcotest.(check (list string)) "well-nested order"
    [ "B:outer"; "B:inner"; "E"; "B:inner2"; "E"; "E" ]
    (names_of (Obs.events tr))

let test_span_ends_on_exception () =
  let raised, tr =
    record (fun () ->
        try
          Obs.span "boom" (fun () -> raise Exit)
        with Exit -> true)
  in
  Alcotest.(check bool) "exception propagated" true raised;
  Alcotest.(check (list string)) "span still closed" [ "B:boom"; "E" ]
    (names_of (Obs.events tr))

(* per-worker streams must be balanced and well-nested: depth never goes
   negative and returns to zero for every tid *)
let balanced events =
  let depth = Hashtbl.create 8 in
  let get tid = Option.value ~default:0 (Hashtbl.find_opt depth tid) in
  let ok = ref true in
  List.iter
    (fun ev ->
      match ev with
      | Obs.Begin b -> Hashtbl.replace depth b.tid (get b.tid + 1)
      | Obs.End e ->
        let d = get e.tid - 1 in
        if d < 0 then ok := false;
        Hashtbl.replace depth e.tid d
      | Obs.Count _ | Obs.Gauge _ -> ())
    events;
  Hashtbl.iter (fun _ d -> if d <> 0 then ok := false) depth;
  !ok

(* ------------------------------------------------------------------ *)
(* worker attribution                                                  *)

let test_worker_attribution () =
  let jobs = 3 in
  let (), tr =
    record (fun () ->
        Domain_pool.with_pool ~jobs (fun pool ->
            Domain_pool.run pool (fun w ->
                Obs.span "task" (fun () -> ignore (Sys.opaque_identity w)))))
  in
  let events = Obs.events tr in
  let tids =
    List.sort_uniq compare
      (List.filter_map
         (function Obs.Begin b -> Some b.tid | _ -> None)
         events)
  in
  Alcotest.(check (list int)) "every worker recorded its span"
    [ 0; 1; 2 ] tids;
  Alcotest.(check bool) "streams balanced" true (balanced events);
  Alcotest.(check int) "one dispatch counted" 1
    (counter_total Obs.Metric.Pool_dispatches events);
  Alcotest.(check bool) "busy time attributed" true
    (counter_total Obs.Metric.Pool_busy_ns events >= 0
     && List.exists
          (function
            | Obs.Count c -> c.metric = Obs.Metric.Pool_busy_ns
            | _ -> false)
          events)

(* ------------------------------------------------------------------ *)
(* golden Chrome trace: Merced.run on s27, normalised timestamps       *)

let golden_chrome_s27 =
  {|{"traceEvents":[
{"name":"merced.run","ph":"B","pid":0,"tid":0,"ts":0.000},
{"name":"merced.to_graph","ph":"B","pid":0,"tid":0,"ts":1.000},
{"name":"merced.to_graph","ph":"E","pid":0,"tid":0,"ts":2.000},
{"name":"merced.csr","ph":"B","pid":0,"tid":0,"ts":3.000},
{"name":"merced.csr","ph":"E","pid":0,"tid":0,"ts":4.000},
{"name":"merced.scc_budget","ph":"B","pid":0,"tid":0,"ts":5.000},
{"name":"merced.scc_budget","ph":"E","pid":0,"tid":0,"ts":6.000},
{"name":"flow.saturate","ph":"B","pid":0,"tid":0,"ts":7.000},
{"name":"flow.tree_nets","ph":"C","pid":0,"tid":0,"ts":8.000,"args":{"value":941}},
{"name":"flow.iterations","ph":"C","pid":0,"tid":0,"ts":9.000,"args":{"value":121}},
{"name":"flow.saturate","ph":"E","pid":0,"tid":0,"ts":10.000},
{"name":"cluster.make_group","ph":"B","pid":0,"tid":0,"ts":11.000},
{"name":"cluster.clusters","ph":"C","pid":0,"tid":0,"ts":12.000,"args":{"value":2}},
{"name":"cluster.make_group","ph":"E","pid":0,"tid":0,"ts":13.000},
{"name":"merced.assign","ph":"B","pid":0,"tid":0,"ts":14.000},
{"name":"merced.assign","ph":"E","pid":0,"tid":0,"ts":15.000},
{"name":"assign.partitions","ph":"C","pid":0,"tid":0,"ts":16.000,"args":{"value":1}},
{"name":"merced.area","ph":"B","pid":0,"tid":0,"ts":17.000},
{"name":"merced.area","ph":"E","pid":0,"tid":0,"ts":18.000},
{"name":"merced.cuts_total","ph":"C","pid":0,"tid":0,"ts":19.000,"args":{"value":0}},
{"name":"merced.sigma_dff","ph":"C","pid":0,"tid":0,"ts":20.000,"args":{"value":8.14}},
{"name":"merced.run","ph":"E","pid":0,"tid":0,"ts":21.000}
],"displayTimeUnit":"ms"}
|}

let test_golden_chrome () =
  let _, tr = record (fun () -> Merced.run (S27.circuit ())) in
  Alcotest.(check string) "chrome trace is byte-stable" golden_chrome_s27
    (Export.to_chrome ~normalise:true tr)

(* Truncated-span flush: exporting while spans are still open — the
   crash-path write of --trace, or a live snapshot of a running job —
   must yield balanced, loadable Chrome JSON, with synthetic E events
   closing innermost spans first. *)
let count_sub sub s =
  let m = String.length sub and n = String.length s in
  let rec go i acc =
    if i + m > n then acc
    else go (i + 1) (if String.sub s i m = sub then acc + 1 else acc)
  in
  go 0 0

let find_sub sub s =
  let m = String.length sub and n = String.length s in
  let rec go i = if i + m > n then -1 else if String.sub s i m = sub then i else go (i + 1) in
  go 0

let test_truncated_span_flush () =
  let tr = Obs.create () in
  let mid = ref "" in
  Obs.with_installed tr (fun () ->
      Obs.span "outer" (fun () ->
          Obs.span "inner" (fun () ->
              mid := Export.to_chrome ~normalise:true tr)));
  Alcotest.(check int) "mid-flight export is balanced"
    (count_sub "\"ph\":\"B\"" !mid)
    (count_sub "\"ph\":\"E\"" !mid);
  Alcotest.(check int) "both open spans flushed" 2
    (count_sub "\"ph\":\"B\"" !mid);
  (* the synthetic E's unwind the stack: inner closes before outer *)
  let e_inner = find_sub "{\"name\":\"inner\",\"ph\":\"E\"" !mid in
  let e_outer = find_sub "{\"name\":\"outer\",\"ph\":\"E\"" !mid in
  Alcotest.(check bool) "inner E present" true (e_inner >= 0);
  Alcotest.(check bool) "outer E present" true (e_outer >= 0);
  Alcotest.(check bool) "well-nested flush order" true (e_inner < e_outer);
  (* once the spans really close, the export carries no synthetic E *)
  let final = Export.to_chrome ~normalise:true tr in
  Alcotest.(check int) "final export balanced too"
    (count_sub "\"ph\":\"B\"" final)
    (count_sub "\"ph\":\"E\"" final)

let test_exporters_are_pure () =
  let _, tr = record (fun () -> Merced.run (S27.circuit ())) in
  Alcotest.(check string) "chrome idempotent"
    (Export.to_chrome ~normalise:true tr)
    (Export.to_chrome ~normalise:true tr);
  Alcotest.(check string) "human idempotent"
    (Export.to_human ~normalise:true tr)
    (Export.to_human ~normalise:true tr)

(* ------------------------------------------------------------------ *)
(* bench statistics                                                    *)

let test_bench_stat () =
  Alcotest.(check (float 1e-9)) "median odd" 2.0
    (Bench_stat.median [| 3.0; 1.0; 2.0 |]);
  Alcotest.(check (float 1e-9)) "median even" 2.5
    (Bench_stat.median [| 4.0; 1.0; 2.0; 3.0 |]);
  Alcotest.(check (float 1e-9)) "mad" 1.0
    (Bench_stat.mad [| 1.0; 2.0; 3.0 |]);
  let s = Bench_stat.measure ~warmup:0 ~repeat:3 (fun () -> ()) in
  Alcotest.(check int) "samples" 3 s.Bench_stat.samples;
  Alcotest.(check bool) "median non-negative" true (s.Bench_stat.median_ns >= 0.)

(* The BENCH json schema goldens live in test_bench_format.ml, next to
   the netlist-format ones. *)

(* ------------------------------------------------------------------ *)
(* properties                                                          *)

let profile_of_seed seed =
  {
    Generator.name = Printf.sprintf "q%d" (seed land 0xFFFF);
    n_pi = 4 + (seed mod 5);
    n_dff = 3 + (seed mod 7);
    n_gates = 40 + (seed mod 60);
    n_inv = 5 + (seed mod 9);
    dff_on_scc = seed mod 3;
    area_target = None;
  }

(* the fingerprint of a compile that tracing must not perturb: the
   retimed netlist byte-for-byte plus the CSV row minus its CPU-time
   field (the one legitimately nondeterministic column) *)
let fingerprint c =
  let r = Merced.run c in
  let csv = Report.csv_row r in
  let csv_no_cpu =
    String.concat "," (List.rev (List.tl (List.rev (String.split_on_char ',' csv))))
  in
  let retimed =
    match Merced.retimed_netlist r with
    | None -> "<none>"
    | Some (emitted, dropped) ->
      Printf.sprintf "%s#%d"
        (Bench_writer.to_string emitted.Ppet_retiming.To_circuit.circuit)
        dropped
  in
  csv_no_cpu ^ "\n" ^ retimed

let prop_tracing_does_not_perturb =
  QCheck.Test.make ~name:"installed trace leaves Merced output byte-identical"
    ~count:10
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let c = Generator.generate ~seed:(Int64.of_int seed) (profile_of_seed seed) in
      let bare = fingerprint c in
      let traced, _ = record (fun () -> fingerprint c) in
      String.equal bare traced)

let prop_span_trees_well_nested =
  QCheck.Test.make
    ~name:"span streams stay balanced under any pool interleaving" ~count:25
    QCheck.(pair (int_range 2 4) (int_range 1 5))
    (fun (jobs, depth) ->
      let (), tr =
        record (fun () ->
            Domain_pool.with_pool ~jobs (fun pool ->
                Domain_pool.run pool (fun w ->
                    let rec nest d =
                      if d = 0 then Obs.add Obs.Metric.Faults_simulated 1
                      else
                        Obs.span (Printf.sprintf "w%d-d%d" w d) (fun () ->
                            nest (d - 1))
                    in
                    nest depth)))
      in
      balanced (Obs.events tr))

(* ------------------------------------------------------------------ *)

let suite =
  [
    Alcotest.test_case "counter arithmetic" `Quick test_counter_arithmetic;
    Alcotest.test_case "disabled sink is inert" `Quick test_disabled_is_inert;
    Alcotest.test_case "span nesting" `Quick test_span_nesting;
    Alcotest.test_case "span ends on exception" `Quick
      test_span_ends_on_exception;
    Alcotest.test_case "worker attribution" `Quick test_worker_attribution;
    Alcotest.test_case "golden chrome trace (s27)" `Quick test_golden_chrome;
    Alcotest.test_case "truncated spans flush balanced" `Quick
      test_truncated_span_flush;
    Alcotest.test_case "exporters are pure" `Quick test_exporters_are_pure;
    Alcotest.test_case "bench statistics" `Quick test_bench_stat;
    QCheck_alcotest.to_alcotest prop_tracing_does_not_perturb;
    QCheck_alcotest.to_alcotest prop_span_trees_well_nested;
  ]
