module Cost_model = Ppet_core.Cost_model
module Campaign = Ppet_core.Campaign
module Params = Ppet_core.Params
module Report = Ppet_core.Report
module Benchmarks = Ppet_netlist.Benchmarks
module Domain_pool = Ppet_parallel.Domain_pool
module Circuit = Ppet_netlist.Circuit

(* ------------------------------------------------------------------ *)
(* fixtures *)

let stats ~gates ~dffs ~edges =
  { Report.gates; dffs; edges; segments = 0; largest_cluster = 0 }

let entry name ~jobs ~median stats =
  {
    Report.entry_name = name;
    median_ns = median;
    mad_ns = 0.0;
    jobs;
    circuit_stats = Some stats;
  }

(* A sweep whose medians are an exact linear function of the stats, over
   enough distinct circuits that the ridge term barely bends the fit. *)
let linear_entries stage f =
  List.map
    (fun (g, d, e) ->
      let s = stats ~gates:g ~dffs:d ~edges:e in
      entry (Printf.sprintf "c%d/%s" g stage) ~jobs:1 ~median:(f s) s)
    [ (10, 3, 16); (100, 20, 150); (500, 64, 700); (2000, 180, 2600);
      (8000, 700, 11000); (20000, 1500, 26000) ]

(* A complete model covering every stage `decide` consults, with costs
   chosen so the intended winners are unambiguous: flow's three stages
   are cheap, the baselines pay their quality factor, the 8-word kernel
   wins, and pooling wins only above ~1000 gates. *)
let full_model () =
  let per_gate rate s = 100.0 +. (rate *. float_of_int s.Report.gates) in
  let entries =
    List.concat
      [
        linear_entries "flow" (per_gate 10.0);
        linear_entries "cluster" (per_gate 5.0);
        linear_entries "assign" (per_gate 5.0);
        linear_entries "partition_fm" (per_gate 30.0);
        linear_entries "partition_annealing" (per_gate 300.0);
        linear_entries "partition_random" (per_gate 1.0);
        linear_entries "fault_sim" (per_gate 50.0);
        linear_entries "fault_sim_w8" (per_gate 8.0);
        linear_entries "fault_sim_w32" (per_gate 12.0);
        (* pooled: a large fixed dispatch cost, a lower slope — crosses
           the serial line near 1200 gates *)
        List.map
          (fun (e : Report.bench_entry) ->
            { e with Report.jobs = 2; median_ns = e.Report.median_ns +. 48_000.0
                     -. (42.0 *. float_of_int
                           (Option.get e.Report.circuit_stats).Report.gates) })
          (linear_entries "fault_sim" (per_gate 50.0));
      ]
  in
  Cost_model.fit ~ridge:1e-9 entries

(* ------------------------------------------------------------------ *)
(* fit *)

let test_fit_recovers_linear () =
  let f s = 1000.0 +. (7.0 *. float_of_int s.Report.gates) in
  let m = Cost_model.fit ~ridge:1e-9 (linear_entries "flow" f) in
  List.iter
    (fun (g, d, e) ->
      let s = stats ~gates:g ~dffs:d ~edges:e in
      match Cost_model.predict m ~stage:"flow" s with
      | None -> Alcotest.fail "stage missing"
      | Some p ->
        Alcotest.(check bool)
          (Printf.sprintf "prediction at %d gates within 1%%" g)
          true
          (Float.abs (p -. f s) /. f s < 0.01))
    [ (10, 3, 16); (2000, 180, 2600); (50000, 4000, 66000) ]

let test_fit_skips_unusable_rows () =
  let s = stats ~gates:10 ~dffs:3 ~edges:16 in
  let usable = entry "a/flow" ~jobs:1 ~median:5000.0 s in
  let zero = entry "b/flow" ~jobs:1 ~median:0.0 s in
  let unstamped =
    { (entry "c/flow" ~jobs:1 ~median:5000.0 s) with Report.circuit_stats = None }
  in
  let no_slash = entry "flow" ~jobs:1 ~median:5000.0 s in
  let m = Cost_model.fit [ usable; zero; unstamped; no_slash ] in
  (match m.Cost_model.stages with
   | [ sm ] ->
     Alcotest.(check string) "one stage" "flow" sm.Cost_model.stage;
     Alcotest.(check int) "one row survived" 1 sm.Cost_model.rows
   | _ -> Alcotest.fail "expected exactly one stage model");
  Alcotest.check_raises "nothing usable"
    (Circuit.Error
       "calibrate: no usable bench entries (every row needs circuit stats \
        and a positive median — re-record with `merced bench`)")
    (fun () -> ignore (Cost_model.fit [ zero; unstamped; no_slash ]))

(* Stage costs are convex in circuit size (FM is quadratic), so an
   unconstrained line through a wide sweep pays for the big end with a
   negative intercept and predicts below zero on small circuits —
   where the clamp would make expensive baselines look free to
   `decide`. The fit must come back all-nonnegative instead. *)
let test_fit_coeffs_nonnegative () =
  let quadratic s =
    let g = float_of_int s.Report.gates in
    100.0 *. g *. g
  in
  let m = Cost_model.fit ~ridge:1e-9 (linear_entries "flow" quadratic) in
  match m.Cost_model.stages with
  | [ sm ] ->
    Array.iteri
      (fun i c ->
        Alcotest.(check bool)
          (Printf.sprintf "coeff %d nonnegative" i)
          true (c >= 0.0))
      sm.Cost_model.coeffs
  | _ -> Alcotest.fail "expected exactly one stage model"

(* `merced bench` stamps rows with the post-compile partition shape for
   the regression guard, but at dispatch time those features are always
   zero — so the fit must project them away, or it trains on features
   `decide` can never supply (the train/serve skew that once made the
   model predict negative FM cost at segments = 0). *)
let test_fit_ignores_stamped_partition_shape () =
  let f s = 1000.0 +. (7.0 *. float_of_int s.Report.gates) in
  let stamp (e : Report.bench_entry) =
    let s = Option.get e.Report.circuit_stats in
    { e with
      Report.circuit_stats =
        Some { s with Report.segments = 9; largest_cluster = 55 } }
  in
  let plain = Cost_model.fit ~ridge:1e-9 (linear_entries "flow" f) in
  let stamped =
    Cost_model.fit ~ridge:1e-9 (List.map stamp (linear_entries "flow" f))
  in
  match (plain.Cost_model.stages, stamped.Cost_model.stages) with
  | [ p ], [ s ] ->
    Alcotest.(check bool) "stamping does not move the fit" true
      (p.Cost_model.coeffs = s.Cost_model.coeffs);
    Alcotest.(check (float 0.0)) "segments coeff pinned to zero" 0.0
      s.Cost_model.coeffs.(4);
    Alcotest.(check (float 0.0)) "largest-cluster coeff pinned to zero" 0.0
      s.Cost_model.coeffs.(5)
  | _ -> Alcotest.fail "expected exactly one stage model each"

let test_pooled_fault_sim_stage_key () =
  let s = stats ~gates:10 ~dffs:3 ~edges:16 in
  Alcotest.(check (option string)) "serial" (Some "fault_sim")
    (Cost_model.stage_key (entry "s27/fault_sim" ~jobs:1 ~median:1.0 s));
  Alcotest.(check (option string)) "pooled" (Some "fault_sim@pooled")
    (Cost_model.stage_key (entry "s27/fault_sim" ~jobs:2 ~median:1.0 s));
  Alcotest.(check (option string)) "no circuit prefix" None
    (Cost_model.stage_key (entry "fault_sim" ~jobs:1 ~median:1.0 s))

(* ------------------------------------------------------------------ *)
(* persistence: the golden schema and every rejection *)

let test_golden_schema () =
  let f s = 1000.0 +. (7.0 *. float_of_int s.Report.gates) in
  let m =
    Cost_model.fit ~ridge:1e-3
      (linear_entries "flow" f @ linear_entries "assign" f)
  in
  let expected =
    "{\n\
    \  \"name\": \"cost-model\",\n\
    \  \"schema_version\": 1,\n\
    \  \"ridge\": 0.001,\n\
    \  \"features\": [\"intercept\", \"gates\", \"dffs\", \"edges\", \
     \"segments\", \"largest_cluster\"],\n\
    \  \"stages\": [\n\
    \    { \"stage\": \"assign\", \"rows\": 6, \"coeffs\": [0, 0, 0, 0, 0, 0] },\n\
    \    { \"stage\": \"flow\", \"rows\": 6, \"coeffs\": [0, 0, 0, 0, 0, 0] }\n\
    \  ]\n\
     }\n"
  in
  Alcotest.(check string) "normalised golden" expected
    (Cost_model.to_json ~normalise:true m)

let test_roundtrip_idempotent () =
  let m = full_model () in
  let text = Cost_model.to_json m in
  match Cost_model.of_json text with
  | Error e -> Alcotest.fail ("own emitter rejected: " ^ e)
  | Ok m' ->
    Alcotest.(check string) "render is a fixed point" text
      (Cost_model.to_json m');
    Alcotest.(check string) "fingerprint stable"
      (Cost_model.fingerprint m) (Cost_model.fingerprint m')

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let reject name text fragment =
  match Cost_model.of_json text with
  | Ok _ -> Alcotest.fail (name ^ ": accepted")
  | Error e ->
    Alcotest.(check bool)
      (Printf.sprintf "%s: %S mentions %S" name e fragment)
      true (contains e fragment)

let test_of_json_rejections () =
  let good = Cost_model.to_json (full_model ()) in
  reject "garbage" "not json at all" "not a cost-model artefact";
  reject "foreign artefact"
    "{\n  \"name\": \"pipeline\",\n  \"schema_version\": 1\n}\n"
    "not a cost-model artefact";
  reject "wrong version"
    (String.split_on_char '\n' good
     |> List.map (fun line ->
            if contains line "\"schema_version\": 1," then
              "  \"schema_version\": 99,"
            else line)
     |> String.concat "\n")
    "unsupported schema_version 99";
  reject "missing ridge"
    "{\n  \"name\": \"cost-model\",\n  \"schema_version\": 1\n}\n"
    "missing ridge";
  reject "no stages"
    "{\n  \"name\": \"cost-model\",\n  \"schema_version\": 1,\n  \
     \"ridge\": 0.001,\n  \"stages\": [\n  ]\n}\n"
    "no stage models";
  reject "wrong arity"
    "{\n  \"name\": \"cost-model\",\n  \"schema_version\": 1,\n  \
     \"ridge\": 0.001,\n  \"stages\": [\n    { \"stage\": \"flow\", \
     \"rows\": 4, \"coeffs\": [1, 2, 3] }\n  ]\n}\n"
    "3 coefficients, expected 6";
  reject "non-finite coefficient"
    "{\n  \"name\": \"cost-model\",\n  \"schema_version\": 1,\n  \
     \"ridge\": 0.001,\n  \"stages\": [\n    { \"stage\": \"flow\", \
     \"rows\": 4, \"coeffs\": [nan, 2, 3, 4, 5, 6] }\n  ]\n}\n"
    "non-finite coefficient";
  reject "malformed row"
    "{\n  \"name\": \"cost-model\",\n  \"schema_version\": 1,\n  \
     \"ridge\": 0.001,\n  \"stages\": [\n    { \"stage\": \"flow\", \
     \"rows\": four, \"coeffs\": [1, 2, 3, 4, 5, 6] }\n  ]\n}\n"
    "malformed row";
  reject "all-zero model"
    "{\n  \"name\": \"cost-model\",\n  \"schema_version\": 1,\n  \
     \"ridge\": 0.001,\n  \"stages\": [\n    { \"stage\": \"flow\", \
     \"rows\": 4, \"coeffs\": [0, 0, 0, 0, 0, 0] }\n  ]\n}\n"
    "all-zero model"

(* ------------------------------------------------------------------ *)
(* decide *)

let test_decide_full_model () =
  let m = full_model () in
  let small = stats ~gates:10 ~dffs:3 ~edges:16 in
  let large = stats ~gates:20000 ~dffs:1500 ~edges:26000 in
  let ds = Cost_model.decide m ~jobs_available:4 small in
  let dl = Cost_model.decide m ~jobs_available:4 large in
  (* random is 20x cheaper than flow but pays a 64x quality factor, so
     flow wins everywhere in this model *)
  Alcotest.(check bool) "small picks flow" true
    (ds.Cost_model.d_partitioner = Params.Flow);
  Alcotest.(check bool) "large picks flow" true
    (dl.Cost_model.d_partitioner = Params.Flow);
  Alcotest.(check int) "8-word kernel wins small" 8 ds.Cost_model.d_words;
  Alcotest.(check int) "8-word kernel wins large" 8 dl.Cost_model.d_words;
  (* the pooled line crosses the serial one near 1200 gates *)
  Alcotest.(check int) "small stays serial" 1 ds.Cost_model.d_jobs;
  Alcotest.(check int) "large takes the pool" 4 dl.Cost_model.d_jobs;
  Alcotest.(check bool) "small cutover above its size" true
    (ds.Cost_model.d_cutover > 10);
  Alcotest.(check bool) "large cutover below its size" true
    (dl.Cost_model.d_cutover <= 20000 && dl.Cost_model.d_cutover >= 1)

let test_decide_fallbacks () =
  (* a model with only a flow stage: words fall back to 8, the pool is
     never taken, cutover says never *)
  let f s = 1000.0 +. (7.0 *. float_of_int s.Report.gates) in
  let m = Cost_model.fit ~ridge:1e-9 (linear_entries "flow" f) in
  let d = Cost_model.decide m ~jobs_available:8 (stats ~gates:50 ~dffs:5 ~edges:60) in
  Alcotest.(check bool) "partitioner falls back to flow" true
    (d.Cost_model.d_partitioner = Params.Flow);
  Alcotest.(check int) "words fall back to 8" 8 d.Cost_model.d_words;
  Alcotest.(check int) "no pooled stage, no pool" 1 d.Cost_model.d_jobs;
  Alcotest.(check int) "cutover = never" Cost_model.no_cutover
    d.Cost_model.d_cutover

let test_decide_all_seventeen () =
  let m = full_model () in
  List.iter
    (fun name ->
      let c = Benchmarks.circuit name in
      let s = Cost_model.stats_of_circuit c in
      Alcotest.(check bool) (name ^ " stats stamped") true
        (s.Report.gates > 0 && s.Report.edges > 0
         && s.Report.segments = 0 && s.Report.largest_cluster = 0);
      let d = Cost_model.decide m ~jobs_available:4 s in
      Alcotest.(check bool) (name ^ " words valid") true
        (List.mem d.Cost_model.d_words [ 1; 8; 32 ]);
      Alcotest.(check bool) (name ^ " partitioner valid") true
        (List.mem d.Cost_model.d_partitioner Params.partitioners);
      Alcotest.(check bool) (name ^ " jobs valid") true
        (d.Cost_model.d_jobs = 1 || d.Cost_model.d_jobs = 4);
      Alcotest.(check bool) (name ^ " cutover valid") true
        (d.Cost_model.d_cutover >= 1
         && d.Cost_model.d_cutover <= Cost_model.no_cutover))
    Benchmarks.names

(* ------------------------------------------------------------------ *)
(* purity properties *)

(* Random models with integer coefficients: %.9g renders them exactly,
   so a JSON round-trip cannot perturb a near-tie decision. *)
let arbitrary_model =
  QCheck.make
    ~print:(fun m -> Cost_model.to_json m)
    QCheck.Gen.(
      let coeff = map float_of_int (int_range (-500) 500) in
      let stage name =
        map
          (fun cs ->
            { Cost_model.stage = name; rows = 6; coeffs = Array.of_list cs })
          (list_repeat Cost_model.n_features coeff)
      in
      let stages =
        [ "flow"; "cluster"; "assign"; "partition_fm"; "partition_annealing";
          "partition_random"; "fault_sim"; "fault_sim@pooled"; "fault_sim_w8";
          "fault_sim_w32" ]
      in
      map
        (fun ss -> { Cost_model.ridge = 1e-3; stages = ss })
        (flatten_l (List.map stage stages)))

let arbitrary_stats =
  QCheck.make
    ~print:(fun s ->
      Printf.sprintf "gates=%d dffs=%d edges=%d" s.Report.gates s.Report.dffs
        s.Report.edges)
    QCheck.Gen.(
      map
        (fun (g, (d, e)) -> stats ~gates:g ~dffs:d ~edges:e)
        (pair (int_range 1 100_000) (pair (int_range 0 10_000) (int_range 1 150_000))))

let decision_eq a b =
  a.Cost_model.d_partitioner = b.Cost_model.d_partitioner
  && a.Cost_model.d_jobs = b.Cost_model.d_jobs
  && a.Cost_model.d_words = b.Cost_model.d_words
  && a.Cost_model.d_cutover = b.Cost_model.d_cutover

let prop_decision_jobs_independent =
  QCheck.Test.make
    ~name:"result-bearing knobs never depend on jobs_available" ~count:100
    (QCheck.pair arbitrary_model arbitrary_stats)
    (fun (m, s) ->
      let one = Cost_model.decide m ~jobs_available:1 s in
      let many = Cost_model.decide m ~jobs_available:7 s in
      one.Cost_model.d_partitioner = many.Cost_model.d_partitioner
      && one.Cost_model.d_words = many.Cost_model.d_words
      && one.Cost_model.d_cutover = many.Cost_model.d_cutover
      && one.Cost_model.d_jobs = 1
      && (many.Cost_model.d_jobs = 1 || many.Cost_model.d_jobs = 7))

let prop_decision_survives_roundtrip =
  QCheck.Test.make ~name:"decide is stable across a JSON round-trip"
    ~count:100
    (QCheck.pair arbitrary_model arbitrary_stats)
    (fun (m, s) ->
      match Cost_model.of_json (Cost_model.to_json m) with
      | Error _ -> true (* the all-zero draw is legitimately rejected *)
      | Ok m' ->
        decision_eq
          (Cost_model.decide m ~jobs_available:4 s)
          (Cost_model.decide m' ~jobs_available:4 s))

(* ------------------------------------------------------------------ *)
(* campaign differential: auto vs forced, serial vs pooled *)

let auto_plan m profiles words =
  {
    Campaign.default_plan with
    Campaign.profiles;
    words;
    dispatch = Some m;
  }

let test_campaign_auto_eq_forced () =
  let m = full_model () in
  List.iter
    (fun name ->
      let d =
        Cost_model.decide m ~jobs_available:1
          (Cost_model.stats_of_circuit (Benchmarks.circuit name))
      in
      let auto = Campaign.run (auto_plan m [ name ] d.Cost_model.d_words) in
      let forced =
        Campaign.run
          {
            Campaign.default_plan with
            Campaign.profiles = [ name ];
            words = d.Cost_model.d_words;
            params = Cost_model.apply_decision d Campaign.default_plan.Campaign.params;
          }
      in
      Alcotest.(check string)
        (name ^ ": auto = forced chosen config, byte-identical")
        (Campaign.to_json ~normalise:true forced)
        (Campaign.to_json ~normalise:true auto);
      Alcotest.(check string)
        (name ^ ": human bytes agree")
        (Campaign.human forced) (Campaign.human auto))
    [ "s510"; "s420.1"; "s641" ]

let test_campaign_auto_serial_eq_pooled () =
  let m = full_model () in
  let p = auto_plan m [ "s510"; "s420.1" ] 8 in
  let serial = Campaign.run p in
  let pooled = Domain_pool.with_pool ~jobs:2 (fun pool -> Campaign.run ~pool p) in
  Alcotest.(check string) "auto campaign bytes independent of --jobs"
    (Campaign.to_json ~normalise:true serial)
    (Campaign.to_json ~normalise:true pooled);
  Alcotest.(check string) "human bytes too"
    (Campaign.human serial) (Campaign.human pooled)

let suite =
  [
    Alcotest.test_case "fit recovers a linear law" `Quick
      test_fit_recovers_linear;
    Alcotest.test_case "fit skips unusable rows" `Quick
      test_fit_skips_unusable_rows;
    Alcotest.test_case "fit coefficients are nonnegative" `Quick
      test_fit_coeffs_nonnegative;
    Alcotest.test_case "fit ignores stamped partition shape" `Quick
      test_fit_ignores_stamped_partition_shape;
    Alcotest.test_case "pooled fault_sim stage key" `Quick
      test_pooled_fault_sim_stage_key;
    Alcotest.test_case "COST_MODEL.json golden schema" `Quick
      test_golden_schema;
    Alcotest.test_case "reader of own emitter is idempotent" `Quick
      test_roundtrip_idempotent;
    Alcotest.test_case "of_json rejections" `Quick test_of_json_rejections;
    Alcotest.test_case "decide on a full model" `Quick test_decide_full_model;
    Alcotest.test_case "decide fallbacks" `Quick test_decide_fallbacks;
    Alcotest.test_case "decide across all seventeen profiles" `Quick
      test_decide_all_seventeen;
    QCheck_alcotest.to_alcotest prop_decision_jobs_independent;
    QCheck_alcotest.to_alcotest prop_decision_survives_roundtrip;
    Alcotest.test_case "campaign: auto = forced chosen config" `Slow
      test_campaign_auto_eq_forced;
    Alcotest.test_case "campaign: auto bytes independent of pool" `Slow
      test_campaign_auto_serial_eq_pooled;
  ]
