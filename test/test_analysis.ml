(* The dataflow analyses and the untestable-fault classifier.

   The load-bearing property is soundness: every fault the classifier
   calls untestable must be undetected by exhaustive simulation of its
   segment — checked against the seed Fault_sim oracle and the
   production batch engine at words 1/4/8 on random sequential circuits,
   plus hand-built fixtures for each of the three proof shapes. *)

module Circuit = Ppet_netlist.Circuit
module Segment = Ppet_netlist.Segment
module Generator = Ppet_netlist.Generator
module To_graph = Ppet_netlist.To_graph
module Gate = Ppet_netlist.Gate
module Parser = Ppet_netlist.Bench_parser
module Csr = Ppet_digraph.Csr
module Fault = Ppet_bist.Fault
module Fault_sim = Ppet_bist.Fault_sim
module Fault_engine = Ppet_bist.Fault_engine
module Batch = Ppet_bist.Fault_engine.Batch
module Simulator = Ppet_bist.Simulator
module Domain_pool = Ppet_parallel.Domain_pool
module Dataflow = Ppet_analysis.Dataflow
module Ternary = Ppet_analysis.Ternary
module Scoap = Ppet_analysis.Scoap
module Untestable = Ppet_analysis.Untestable

let sched_of c = Dataflow.prepare (Csr.of_netgraph (To_graph.partition_view c))

let node_named c name =
  let found = ref (-1) in
  for v = 0 to Circuit.size c - 1 do
    if (Circuit.node c v).Circuit.name = name then found := v
  done;
  if !found < 0 then Alcotest.failf "no node named %s" name;
  !found

let comb_segment c = Segment.of_members c (Circuit.combinational c)

let classify_comb c =
  let seg = comb_segment c in
  let faults = Fault.collapse c (Fault.of_segment c seg) in
  (seg, faults, Untestable.classify (Untestable.ctx c) seg faults)

(* ------------------------------------------------------------------ *)
(* fixtures: one per proof shape                                       *)

(* z = AND(a, NOT a) is constant 0 through the inverter chain: its
   stuck-at-0 is unexcitable, and the AND it feeds can never open, so
   the sibling pin is blocked *)
let test_fixture_tied_constant () =
  (* p = NOT(b) keeps b on a multi-fanout net, so collapsing does not
     fold the pin fault on o into b's output fault *)
  let c =
    Parser.parse_string
      "INPUT(a)\nINPUT(b)\nna = NOT(a)\nz = AND(a, na)\no = AND(b, z)\n\
       p = NOT(b)\nOUTPUT(o)\nOUTPUT(p)\n"
  in
  let _, _, cls = classify_comb c in
  let z = node_named c "z" and o = node_named c "o" in
  let reason_of f =
    List.assoc_opt f
      (List.map (fun (f, r) -> (f, r)) cls.Untestable.untestable)
  in
  Alcotest.(check bool) "z s-a-0 unexcitable" true
    (reason_of { Fault.site = Fault.Output z; stuck_at = false }
     = Some Untestable.Unexcitable);
  Alcotest.(check bool) "o s-a-0 unexcitable" true
    (reason_of { Fault.site = Fault.Output o; stuck_at = false }
     = Some Untestable.Unexcitable);
  (* pin b of o: with the other pin stuck 0 the AND output is 0 under
     both forcings of b *)
  Alcotest.(check bool) "b pin of o blocked" true
    (reason_of { Fault.site = Fault.Input_pin (o, 0); stuck_at = true }
     = Some Untestable.Blocked)

let test_fixture_unobservable () =
  let c =
    Parser.parse_string
      "INPUT(a)\nINPUT(b)\no = AND(a, b)\ndead = OR(a, b)\nOUTPUT(o)\n"
  in
  let _, _, cls = classify_comb c in
  let dead = node_named c "dead" in
  let r =
    List.filter_map
      (fun (f, r) ->
        match f.Fault.site with
        | Fault.Output v when v = dead -> Some r
        | Fault.Output _ -> None
        | Fault.Input_pin (g, _) -> if g = dead then Some r else None)
      cls.Untestable.untestable
  in
  Alcotest.(check bool) "all dead faults unobservable" true
    (r <> [] && List.for_all (fun x -> x = Untestable.Unobservable) r)

(* a reset-free flip-flop loop: q and everything it dominates may hold X
   forever, while the PI-driven half of the circuit is initializable *)
let test_fixture_x_dff () =
  let c =
    Parser.parse_string
      "INPUT(a)\nq = DFF(nq)\nnq = NOT(q)\ng = AND(a, q)\nh = NOT(a)\n\
       OUTPUT(g)\nOUTPUT(h)\n"
  in
  let sched = sched_of c in
  let constants = Ternary.constants sched c in
  let init = Ternary.initializable sched c ~constants in
  Alcotest.(check bool) "q stays X" false (init.(node_named c "q"));
  Alcotest.(check bool) "g inherits X" false (init.(node_named c "g"));
  Alcotest.(check bool) "h initializable" true (init.(node_named c "h"));
  Alcotest.(check bool) "a initializable" true (init.(node_named c "a"))

(* the segment-local soundness trap: b and NOT(b) are complementary in
   the circuit, but the XOR reads NOT(b) from OUTSIDE the segment, and
   the test hardware drives segment inputs independently — so the XOR is
   NOT constant under test and nothing may be pruned from it *)
let test_fixture_boundary_roots_stay_independent () =
  let c =
    Parser.parse_string
      "INPUT(b)\nnb = NOT(b)\nx = XOR(b, nb)\nOUTPUT(x)\nOUTPUT(nb)\n"
  in
  let x = node_named c "x" in
  let seg = Segment.of_members c [| x |] in
  let faults = Fault.collapse c (Fault.of_segment c seg) in
  let cls = Untestable.classify (Untestable.ctx c) seg faults in
  Alcotest.(check int) "nothing pruned across the boundary" 0
    (List.length cls.Untestable.untestable);
  (* whole-circuit constants DO see the equality: x is constant 1 *)
  let constants = Ternary.constants (sched_of c) c in
  Alcotest.(check int) "global fixpoint proves x = 1" Ternary.one
    constants.(x)

(* ------------------------------------------------------------------ *)
(* scoap spot checks                                                   *)

let test_scoap_basics () =
  let c =
    Parser.parse_string
      "INPUT(a)\nINPUT(b)\no = AND(a, b)\ndead = OR(a, b)\nOUTPUT(o)\n"
  in
  let sched = sched_of c in
  let constants = Ternary.constants sched c in
  let s = Scoap.compute sched c ~constants in
  let a = node_named c "a" and o = node_named c "o" in
  let dead = node_named c "dead" in
  Alcotest.(check int) "PI cc0" 1 s.Scoap.cc0.(a);
  Alcotest.(check int) "PI cc1" 1 s.Scoap.cc1.(a);
  (* AND: cc1 = 1+1+1, cc0 = min(1,1)+1 *)
  Alcotest.(check int) "AND cc1" 3 s.Scoap.cc1.(o);
  Alcotest.(check int) "AND cc0" 2 s.Scoap.cc0.(o);
  Alcotest.(check int) "PO co" 0 s.Scoap.co.(o);
  (* observing a through the AND costs co(o)+1 plus setting b to 1 *)
  Alcotest.(check int) "side-pin cost" 2 s.Scoap.co.(a);
  Alcotest.(check bool) "dead gate unobservable" true
    (s.Scoap.co.(dead) >= Scoap.inf)

(* ------------------------------------------------------------------ *)
(* properties                                                          *)

let random_circuit seed =
  let rng = Ppet_digraph.Prng.create (Int64.of_int ((seed * 13) + 5)) in
  Generator.small_random
    ~seed:(Int64.of_int ((seed * 7) + 1))
    ~n_pi:(2 + Ppet_digraph.Prng.int rng 3)
    ~n_dff:(Ppet_digraph.Prng.int rng 3)
    ~n_gates:(4 + Ppet_digraph.Prng.int rng 12)

(* soundness: untestable => undetected by exhaustive simulation, against
   both the seed oracle and the batch engine at words 1/4/8; and pruning
   never changes the verdict of a surviving fault *)
let prop_untestable_undetected =
  QCheck.Test.make ~name:"untestable => undetected (exhaustive, words 1/4/8)"
    ~count:40
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let c = random_circuit seed in
      let seg = comb_segment c in
      let w = Segment.input_count seg in
      QCheck.assume (w > 0 && w <= 10);
      let faults = Fault.collapse c (Fault.of_segment c seg) in
      let cls = Untestable.classify (Untestable.ctx c) seg faults in
      let patterns = Fault_engine.exhaustive_patterns ~width:w in
      let sim = Simulator.create c in
      let oracle = Fault_sim.segment_detects sim seg ~patterns faults in
      let detected f = List.assoc f oracle in
      let sound =
        List.for_all (fun (f, _) -> not (detected f)) cls.Untestable.untestable
      in
      let engine = Fault_engine.create sim seg in
      let batch_agrees =
        List.for_all
          (fun words ->
            let policy = Batch.policy ~words ~drop:Batch.Keep ~cutover:1 () in
            let all = Batch.run engine policy ~patterns faults in
            let surv =
              Batch.run engine policy ~patterns cls.Untestable.testable
            in
            (* no pruned fault detects, and every surviving fault keeps
               the exact verdict it had in the unpruned run *)
            List.for_all
              (fun (f, d) ->
                if List.mem_assoc f cls.Untestable.untestable then not d
                else List.assoc f surv.Batch.results = d)
              all.Batch.results)
          [ 1; 4; 8 ]
      in
      sound && batch_agrees)

(* the fixpoints are schedule-independent: any pool size produces the
   same arrays as the serial path *)
let prop_parallel_solve_deterministic =
  QCheck.Test.make ~name:"pooled solve = serial solve" ~count:15
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let c = random_circuit seed in
      let sched = sched_of c in
      let constants = Ternary.constants sched c in
      let init = Ternary.initializable sched c ~constants in
      let s = Scoap.compute sched c ~constants in
      List.for_all
        (fun jobs ->
          Domain_pool.with_pool ~jobs (fun pool ->
              let constants' = Ternary.constants ~pool sched c in
              let init' =
                Ternary.initializable ~pool sched c ~constants:constants'
              in
              let s' = Scoap.compute ~pool sched c ~constants:constants' in
              constants' = constants && init' = init
              && s'.Scoap.cc0 = s.Scoap.cc0
              && s'.Scoap.cc1 = s.Scoap.cc1
              && s'.Scoap.co = s.Scoap.co))
        [ 2; 4 ])

(* ternary constants are sound against the simulator: on circuits with
   no flip-flops, a node proven constant evaluates to that constant on
   every exhaustive input assignment *)
let prop_constants_sound_combinational =
  QCheck.Test.make ~name:"proven constants hold exhaustively (comb)" ~count:30
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Ppet_digraph.Prng.create (Int64.of_int (seed + 3)) in
      let c =
        Generator.small_random
          ~seed:(Int64.of_int ((seed * 11) + 2))
          ~n_pi:(2 + Ppet_digraph.Prng.int rng 3)
          ~n_dff:0
          ~n_gates:(4 + Ppet_digraph.Prng.int rng 10)
      in
      let seg = comb_segment c in
      let w = Segment.input_count seg in
      QCheck.assume (w > 0 && w <= 10);
      let constants = Ternary.constants (sched_of c) c in
      let members = seg.Segment.members in
      let constant_members =
        Array.to_list members
        |> List.filter (fun v -> constants.(v) <> Ternary.unknown)
      in
      QCheck.assume (constant_members <> []);
      (* a constant-c node's stuck-at-c fault is invisible: simulate it
         and demand no detection at any observed point. The converse
         fault (stuck at the complement) flips the node on every
         pattern, which segment_detects confirms whenever the node can
         reach an observation point. *)
      let faults =
        List.map
          (fun v ->
            { Fault.site = Fault.Output v;
              stuck_at = constants.(v) = Ternary.one })
          constant_members
      in
      let patterns = Fault_engine.exhaustive_patterns ~width:w in
      let sim = Simulator.create c in
      Fault_sim.segment_detects sim seg ~patterns faults
      |> List.for_all (fun (_, d) -> not d))

(* condensation sanity on random circuits: component count, level
   bounds, and the defining property that a vertex's forward level is
   strictly above every predecessor in a different component *)
let prop_schedule_wellformed =
  QCheck.Test.make ~name:"condensation levels respect edges" ~count:30
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let c = random_circuit seed in
      let g = To_graph.partition_view c in
      let csr = Csr.of_netgraph g in
      let sched = Dataflow.prepare csr in
      let n = Circuit.size c in
      let ok =
        ref
          (Dataflow.n_components sched <= max 1 n
          && Dataflow.n_levels sched Dataflow.Forward
             <= Dataflow.n_components sched
          && Dataflow.max_component sched >= 1)
      in
      for v = 0 to n - 1 do
        let nd = Circuit.node c v in
        Array.iter
          (fun f ->
            (* Tarjan numbering: a cross-component edge goes from the
               higher component id to the lower (reverse topological) *)
            let cf = Dataflow.component_of sched f
            and cv = Dataflow.component_of sched v in
            if cf <> cv then ok := !ok && cf > cv)
          nd.Circuit.fanins
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "fixture: tied constant cone" `Quick
      test_fixture_tied_constant;
    Alcotest.test_case "fixture: unobservable gate" `Quick
      test_fixture_unobservable;
    Alcotest.test_case "fixture: X-dominated DFF" `Quick test_fixture_x_dff;
    Alcotest.test_case "fixture: boundary roots independent" `Quick
      test_fixture_boundary_roots_stay_independent;
    Alcotest.test_case "scoap basics" `Quick test_scoap_basics;
    QCheck_alcotest.to_alcotest prop_untestable_undetected;
    QCheck_alcotest.to_alcotest prop_parallel_solve_deterministic;
    QCheck_alcotest.to_alcotest prop_constants_sound_combinational;
    QCheck_alcotest.to_alcotest prop_schedule_wellformed;
  ]
