(* The batch engine must be bit-identical to the seed serial loop in
   Fault_sim — on any circuit, any pattern set, at every word width,
   job count, and dropping policy. *)

module Circuit = Ppet_netlist.Circuit
module Segment = Ppet_netlist.Segment
module Generator = Ppet_netlist.Generator
module Fault = Ppet_bist.Fault
module Fault_sim = Ppet_bist.Fault_sim
module Fault_engine = Ppet_bist.Fault_engine
module Batch = Ppet_bist.Fault_engine.Batch
module Simulator = Ppet_bist.Simulator
module Domain_pool = Ppet_parallel.Domain_pool
module Prng = Ppet_digraph.Prng
module Parser = Ppet_netlist.Bench_parser

(* random sequential circuit, segment = all its combinational gates,
   random word batches as patterns *)
let random_case seed =
  let rng = Prng.create (Int64.of_int (seed + 11)) in
  let c =
    Generator.small_random
      ~seed:(Int64.of_int ((seed * 7) + 1))
      ~n_pi:(2 + Prng.int rng 4) ~n_dff:(Prng.int rng 3)
      ~n_gates:(4 + Prng.int rng 14)
  in
  let seg = Segment.of_members c (Circuit.combinational c) in
  let faults = Fault.of_segment c seg in
  let n_in = Array.length (Segment.input_signals seg) in
  let word () =
    Int64.to_int (Int64.logand (Prng.next_int64 rng) (Int64.of_int max_int))
  in
  let patterns =
    List.init (1 + Prng.int rng 3) (fun _ -> Array.init n_in (fun _ -> word ()))
  in
  (c, seg, faults, patterns)

(* the full policy matrix against the seed oracle: words 1/4/8, jobs
   1/2/4, dropping on and off — all must agree verdict for verdict *)
let prop_batch_matches_seed =
  QCheck.Test.make ~name:"Batch.run = seed at words 1/4/8 x jobs 1/2/4 x drop"
    ~count:25
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let c, seg, faults, patterns = random_case seed in
      let sim = Simulator.create c in
      let expected = Fault_sim.segment_detects sim seg ~patterns faults in
      let engine = Fault_engine.create sim seg in
      let check pool =
        List.for_all
          (fun words ->
            List.for_all
              (fun drop ->
                let policy =
                  Batch.policy ~words ?pool ~drop ~cutover:1 ()
                in
                let o = Batch.run engine policy ~patterns faults in
                o.Batch.results = expected
                && o.Batch.n_faults = List.length faults
                && o.Batch.n_detected
                   = List.length (List.filter snd expected)
                && o.Batch.batches = List.length patterns)
              [ Batch.Keep; Batch.Drop ])
          [ 1; 4; 8 ]
      in
      check None
      && List.for_all
           (fun jobs -> Domain_pool.with_pool ~jobs (fun p -> check (Some p)))
           [ 2; 4 ])

(* dropping can only remove work, never change verdicts *)
let prop_drop_saves_work =
  QCheck.Test.make ~name:"Drop does at most Keep's word evals" ~count:40
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let c, seg, faults, patterns = random_case seed in
      let sim = Simulator.create c in
      let engine = Fault_engine.create sim seg in
      let run drop =
        Batch.run engine (Batch.policy ~words:4 ~drop ()) ~patterns faults
      in
      let keep = run Batch.Keep and drop = run Batch.Drop in
      keep.Batch.results = drop.Batch.results
      && drop.Batch.word_evals <= keep.Batch.word_evals)

(* a fault whose fanout cone reaches no observed signal: undetected,
   not a crash (the event-driven walk just runs dry) *)
let test_cone_misses_observed () =
  let c =
    Parser.parse_string
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\nd = NAND(a, b)\n"
  in
  let sim = Simulator.create c in
  let seg = Segment.of_members c (Circuit.combinational c) in
  let d = Circuit.find c "d" in
  Alcotest.(check bool) "d is a member, not observed" true
    (Segment.mem seg d
    && not (Array.exists (fun o -> o = d) seg.Segment.observed));
  let faults =
    [
      { Fault.site = Fault.Output d; stuck_at = true };
      { Fault.site = Fault.Output d; stuck_at = false };
      { Fault.site = Fault.Input_pin (d, 0); stuck_at = true };
    ]
  in
  let patterns = Fault_engine.exhaustive_patterns ~width:2 in
  List.iter
    (fun words ->
      let o =
        Batch.run_segment (Batch.policy ~words ()) sim seg ~patterns faults
      in
      List.iter
        (fun (_, det) -> Alcotest.(check bool) "unobservable" false det)
        o.Batch.results;
      Alcotest.(check bool) "matches seed" true
        (o.Batch.results = Fault_sim.segment_detects sim seg ~patterns faults))
    [ 1; 8 ]

let test_full_coverage_and_gate () =
  let c = Parser.parse_string "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n" in
  let sim = Simulator.create c in
  let seg = Segment.of_members c (Circuit.combinational c) in
  let faults = Fault.of_segment c seg in
  let patterns = Fault_engine.exhaustive_patterns ~width:2 in
  let o = Batch.run_segment (Batch.policy ()) sim seg ~patterns faults in
  Alcotest.(check bool) "all detected" true (List.for_all snd o.Batch.results);
  Alcotest.(check (float 1e-9)) "coverage 1" 1.0 o.Batch.coverage

let test_no_patterns_all_undetected () =
  let c = Parser.parse_string "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n" in
  let sim = Simulator.create c in
  let seg = Segment.of_members c (Circuit.combinational c) in
  let faults = Fault.of_segment c seg in
  let o = Batch.run_segment (Batch.policy ()) sim seg ~patterns:[] faults in
  Alcotest.(check bool) "none detected" true
    (List.for_all (fun (_, d) -> not d) o.Batch.results);
  Alcotest.(check int) "no batches" 0 o.Batch.batches;
  Alcotest.(check int) "no work" 0 o.Batch.word_evals

let test_dff_member_rejected () =
  let c = Parser.parse_string "INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n" in
  let sim = Simulator.create c in
  let seg = Segment.of_members c [| Circuit.find c "q" |] in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Fault_engine.create sim seg);
       false
     with Invalid_argument _ -> true)

let test_batch_arity_guard () =
  let c = Parser.parse_string "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n" in
  let sim = Simulator.create c in
  let seg = Segment.of_members c (Circuit.combinational c) in
  Alcotest.check_raises "arity"
    (Invalid_argument "Fault_engine.Batch.run: batch arity mismatch")
    (fun () ->
      ignore
        (Batch.run_segment (Batch.policy ()) sim seg ~patterns:[ [| 1 |] ] []))

let test_bad_policy_rejected () =
  let c = Parser.parse_string "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n" in
  let sim = Simulator.create c in
  let seg = Segment.of_members c (Circuit.combinational c) in
  let run policy =
    ignore (Batch.run_segment policy sim seg ~patterns:[] [])
  in
  Alcotest.check_raises "words"
    (Invalid_argument "Fault_engine.Batch.run: words must be >= 1")
    (fun () -> run { (Batch.policy ()) with Batch.words = 0 });
  Alcotest.check_raises "cutover"
    (Invalid_argument "Fault_engine.Batch.run: cutover must be >= 1")
    (fun () -> run { (Batch.policy ()) with Batch.cutover = 0 })

(* --- pack_vectors: the single-pass chunker vs the old take-based one *)

let old_pack ~width vectors =
  let bpw = Ppet_netlist.Gate.bits_per_word in
  let rec batches vs acc =
    match vs with
    | [] -> List.rev acc
    | _ ->
      let rec take k l =
        if k = 0 then ([], l)
        else
          match l with
          | [] -> ([], [])
          | x :: tl ->
            let got, rest = take (k - 1) tl in
            (x :: got, rest)
      in
      let chunk, rest = take bpw vs in
      let words = Array.make width 0 in
      List.iteri
        (fun b vector ->
          for i = 0 to width - 1 do
            if (vector lsr i) land 1 = 1 then words.(i) <- words.(i) lor (1 lsl b)
          done)
        chunk;
      batches rest (words :: acc)
  in
  batches vectors []

let prop_pack_vectors =
  QCheck.Test.make ~name:"single-pass pack_vectors = take-based packing"
    ~count:300
    QCheck.(
      pair (int_range 1 24)
        (list_of_size Gen.(0 -- 200) (int_bound ((1 lsl 24) - 1))))
    (fun (width, vectors) ->
      Fault_engine.pack_vectors ~width vectors = old_pack ~width vectors)

let test_pack_ragged_final_chunk () =
  (* 63 vectors on width 3: one full 62-bit batch plus a 1-bit tail *)
  let vectors = List.init 63 (fun i -> i land 7) in
  match Fault_engine.pack_vectors ~width:3 vectors with
  | [ full; tail ] ->
    Alcotest.(check int) "full batch wide" 3 (Array.length full);
    (* tail holds only vector 62 = 6 = 0b110 in bit 0 of each word *)
    Alcotest.(check (array int)) "ragged tail" [| 0; 1; 1 |] tail
  | l -> Alcotest.failf "expected 2 batches, got %d" (List.length l)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_batch_matches_seed;
    QCheck_alcotest.to_alcotest prop_drop_saves_work;
    Alcotest.test_case "cone missing observed = undetected" `Quick
      test_cone_misses_observed;
    Alcotest.test_case "AND gate full coverage" `Quick
      test_full_coverage_and_gate;
    Alcotest.test_case "no patterns = no detections" `Quick
      test_no_patterns_all_undetected;
    Alcotest.test_case "DFF member rejected" `Quick test_dff_member_rejected;
    Alcotest.test_case "batch arity guard" `Quick test_batch_arity_guard;
    Alcotest.test_case "bad policy rejected" `Quick test_bad_policy_rejected;
    QCheck_alcotest.to_alcotest prop_pack_vectors;
    Alcotest.test_case "pack_vectors ragged final chunk" `Quick
      test_pack_ragged_final_chunk;
  ]
