module Domain_pool = Ppet_parallel.Domain_pool

let test_create_guard () =
  Alcotest.check_raises "jobs 0"
    (Invalid_argument "Domain_pool.create: jobs must be >= 1") (fun () ->
      ignore (Domain_pool.create ~jobs:0))

let test_serial_inline () =
  (* jobs = 1 spawns nothing: the task runs on the calling domain *)
  Domain_pool.with_pool ~jobs:1 (fun p ->
      Alcotest.(check int) "jobs" 1 (Domain_pool.jobs p);
      let caller = Domain.self () in
      let seen = ref [] in
      Domain_pool.run p (fun w ->
          Alcotest.(check bool) "same domain" true (Domain.self () = caller);
          seen := w :: !seen);
      Alcotest.(check (list int)) "worker 0 only, once" [ 0 ] !seen)

let test_every_worker_runs () =
  Domain_pool.with_pool ~jobs:4 (fun p ->
      let ran = Array.make 4 0 in
      (* reuse across dispatches: the same pool must serve many rounds *)
      for _ = 1 to 3 do
        Domain_pool.run p (fun w -> ran.(w) <- ran.(w) + 1)
      done;
      Alcotest.(check (array int)) "each worker ran each round"
        [| 3; 3; 3; 3 |] ran)

let test_exception_propagates () =
  Domain_pool.with_pool ~jobs:3 (fun p ->
      Alcotest.check_raises "worker failure surfaces" (Failure "boom")
        (fun () -> Domain_pool.run p (fun w -> if w = 1 then failwith "boom"));
      Alcotest.check_raises "caller failure surfaces" (Failure "own")
        (fun () -> Domain_pool.run p (fun w -> if w = 0 then failwith "own"));
      (* the pool stays usable after a failed dispatch *)
      let total = Atomic.make 0 in
      Domain_pool.run p (fun _ -> Atomic.incr total);
      Alcotest.(check int) "pool alive after failure" 3 (Atomic.get total))

let test_shutdown_idempotent () =
  let p = Domain_pool.create ~jobs:2 in
  Domain_pool.shutdown p;
  Domain_pool.shutdown p;
  Alcotest.check_raises "run after shutdown"
    (Invalid_argument "Domain_pool.run: pool is shut down") (fun () ->
      Domain_pool.run p (fun _ -> ()))

let test_with_pool_returns () =
  Alcotest.(check int) "value" 42 (Domain_pool.with_pool ~jobs:2 (fun _ -> 42))

(* A nested run from inside a task must not corrupt pool state or
   deadlock: it degrades to a serial sweep on the calling worker, every
   chunk still runs exactly once, and the pool stays usable. *)
let test_nested_run_serial () =
  Domain_pool.with_pool ~jobs:3 (fun p ->
      let outer = Array.make 3 0 and inner = Array.make 3 (-1) in
      Domain_pool.run p (fun w ->
          outer.(w) <- outer.(w) + 1;
          if w = 1 then begin
            let seen = Atomic.make 0 in
            Domain_pool.run p (fun w' ->
                (* serial on the caller: no concurrent interleaving *)
                inner.(w') <- Atomic.fetch_and_add seen 1)
          end);
      Alcotest.(check (array int)) "outer ran once per worker" [| 1; 1; 1 |]
        outer;
      Alcotest.(check (array int)) "nested chunks ran in worker order"
        [| 0; 1; 2 |] inner;
      (* the pool is intact for the next ordinary dispatch *)
      let total = Atomic.make 0 in
      Domain_pool.run p (fun _ -> Atomic.incr total);
      Alcotest.(check int) "pool alive after nested run" 3 (Atomic.get total))

let test_nested_run_exception () =
  Domain_pool.with_pool ~jobs:2 (fun p ->
      Alcotest.check_raises "nested failure surfaces" (Failure "inner")
        (fun () ->
          Domain_pool.run p (fun w ->
              if w = 0 then
                Domain_pool.run p (fun w' ->
                    if w' = 1 then failwith "inner"))))

(* even across two distinct pools, a nested dispatch from inside a task
   stays serial instead of blocking a worker on foreign pool state *)
let test_nested_other_pool () =
  Domain_pool.with_pool ~jobs:2 (fun a ->
      Domain_pool.with_pool ~jobs:2 (fun b ->
          let ran = Atomic.make 0 in
          Domain_pool.run a (fun _ ->
              Domain_pool.run b (fun _ -> Atomic.incr ran));
          Alcotest.(check int) "all chunks of both dispatches ran" 4
            (Atomic.get ran)))

(* jobs = 1 must still account dispatches and busy time when a trace is
   installed (the fast path used to skip [instrumented] entirely) *)
let test_jobs1_instrumented () =
  let module Obs = Ppet_obs.Obs in
  let tr = Obs.create () in
  Obs.with_installed tr (fun () ->
      Domain_pool.with_pool ~jobs:1 (fun p ->
          Domain_pool.run p (fun _ -> ());
          Domain_pool.run p (fun _ -> ())));
  let dispatches, busy_events =
    List.fold_left
      (fun (d, b) ev ->
        match ev with
        | Obs.Count { metric = Obs.Metric.Pool_dispatches; value; _ } ->
          (d + value, b)
        | Obs.Count { metric = Obs.Metric.Pool_busy_ns; _ } -> (d, b + 1)
        | _ -> (d, b))
      (0, 0) (Obs.events tr)
  in
  Alcotest.(check int) "dispatches counted at jobs=1" 2 dispatches;
  Alcotest.(check int) "busy samples counted at jobs=1" 2 busy_events

(* property: chunk is a balanced contiguous partition of [0, n) *)
let prop_chunk_partition =
  QCheck.Test.make ~name:"chunk partitions [0,n) in order" ~count:500
    QCheck.(pair (int_range 1 9) (int_bound 100))
    (fun (jobs, n) ->
      let edges = List.init jobs (fun w -> Domain_pool.chunk ~jobs ~n w) in
      let contiguous =
        List.for_all2
          (fun (_, hi) (lo, _) -> hi = lo)
          (List.filteri (fun i _ -> i < jobs - 1) edges)
          (List.tl edges)
      and balanced =
        List.for_all
          (fun (lo, hi) -> hi - lo >= n / jobs && hi - lo <= (n / jobs) + 1)
          edges
      in
      fst (List.hd edges) = 0
      && snd (List.nth edges (jobs - 1)) = n
      && contiguous && balanced)

let suite =
  [
    Alcotest.test_case "create rejects jobs < 1" `Quick test_create_guard;
    Alcotest.test_case "1-job pool runs inline" `Quick test_serial_inline;
    Alcotest.test_case "every worker runs, pool reusable" `Quick
      test_every_worker_runs;
    Alcotest.test_case "exceptions propagate, pool survives" `Quick
      test_exception_propagates;
    Alcotest.test_case "shutdown is idempotent" `Quick test_shutdown_idempotent;
    Alcotest.test_case "with_pool returns the result" `Quick
      test_with_pool_returns;
    Alcotest.test_case "nested run degrades to serial" `Quick
      test_nested_run_serial;
    Alcotest.test_case "nested run propagates exceptions" `Quick
      test_nested_run_exception;
    Alcotest.test_case "nested run across pools is serial" `Quick
      test_nested_other_pool;
    Alcotest.test_case "jobs=1 dispatches are instrumented" `Quick
      test_jobs1_instrumented;
    QCheck_alcotest.to_alcotest prop_chunk_partition;
  ]
