(* Finds the segment size where pooled fault simulation starts
   paying for its dispatch. *)
module Circuit = Ppet_netlist.Circuit
module Segment = Ppet_netlist.Segment
module Benchmarks = Ppet_netlist.Benchmarks
module Prng = Ppet_digraph.Prng
module Simulator = Ppet_bist.Simulator
module Fault = Ppet_bist.Fault
module Fault_engine = Ppet_bist.Fault_engine
module Domain_pool = Ppet_parallel.Domain_pool
module Bench_stat = Ppet_obs.Bench_stat

let () =
  let c = Benchmarks.circuit "s5378" in
  let sim = Simulator.create c in
  let comb = Circuit.combinational c in
  Printf.printf "%6s %6s %7s %12s %12s %12s %7s\n" "gates" "faults" "batches" "serial_us"
    "pool2_us" "pool4_us" "p4/ser";
  List.iter
    (fun k ->
      let members = Array.sub comb 0 (min k (Array.length comb)) in
      let seg = Segment.of_members c members in
      let engine = Fault_engine.create sim seg in
      let faults = Fault.collapse c (Fault.of_segment c seg) in
      let n_in = Array.length (Segment.input_signals seg) in
      let rng = Prng.create 0xBE5CL in
      let word () =
        Int64.to_int (Int64.logand (Prng.next_int64 rng) (Int64.of_int max_int))
      in
      let n_batches = max 8 (min 256 ((1 lsl (min n_in 14)) / 62)) in
      let patterns = List.init n_batches (fun _ -> Array.init n_in (fun _ -> word ())) in
      let m f = (Bench_stat.measure ~warmup:2 ~repeat:9 f).Bench_stat.median_ns in
      (* cutover 1: always dispatch to the pool when one is supplied —
         this harness IS the measurement that knob is derived from *)
      let policy pool =
        Fault_engine.Batch.policy ~words:1 ?pool ~drop:Fault_engine.Batch.Keep
          ~cutover:1 ()
      in
      let serial =
        m (fun () ->
            ignore (Fault_engine.Batch.run engine (policy None) ~patterns faults))
      in
      let pooled jobs =
        Domain_pool.with_pool ~jobs (fun pool ->
            m (fun () ->
                ignore
                  (Fault_engine.Batch.run engine
                     (policy (Some pool))
                     ~patterns faults)))
      in
      let p2 = pooled 2 and p4 = pooled 4 in
      Printf.printf "%6d %6d %7d %12.1f %12.1f %12.1f %7.2f\n" k
        (List.length faults) n_batches (serial /. 1e3) (p2 /. 1e3) (p4 /. 1e3)
        (p4 /. serial))
    [ 16; 32; 64; 96; 128; 192; 256; 384; 512; 1024 ]
