(* Scratch harness for the campaign probe: times the single-word and
   multi-word kernels on the largest Merced cluster of a benchmark
   profile across word widths. Not part of any alias. *)

module Circuit = Ppet_netlist.Circuit
module Segment = Ppet_netlist.Segment
module Benchmarks = Ppet_netlist.Benchmarks
module Generator = Ppet_netlist.Generator
module Simulator = Ppet_bist.Simulator
module Fault = Ppet_bist.Fault
module Fault_engine = Ppet_bist.Fault_engine
module Batch = Ppet_bist.Fault_engine.Batch
module Merced = Ppet_core.Merced
module Params = Ppet_core.Params
module Prng = Ppet_digraph.Prng
module Bench_stat = Ppet_obs.Bench_stat

let () =
  let name = try Sys.argv.(1) with _ -> "synth10k" in
  let e = Benchmarks.find name in
  let c = Generator.generate ~seed:0x5EEDL e.Benchmarks.profile in
  let r = Merced.run ~params:Params.default c in
  let segs = Merced.segments r in
  let seg =
    List.fold_left
      (fun best s ->
        if Array.length s.Segment.members > Array.length best.Segment.members
        then s
        else best)
      (List.hd segs) segs
  in
  let sim = Simulator.create c in
  let faults = Fault.collapse c (Fault.of_segment c seg) in
  let n_in = Array.length (Segment.input_signals seg) in
  let rng = Prng.create 0xBE5CL in
  let word () =
    Int64.to_int (Int64.logand (Prng.next_int64 rng) (Int64.of_int max_int))
  in
  let patterns = List.init 64 (fun _ -> Array.init n_in (fun _ -> word ())) in
  let engine = Fault_engine.create sim seg in
  Printf.printf "segment: %d members, %d inputs, %d observed, %d faults\n"
    (Array.length seg.Segment.members)
    n_in
    (Array.length seg.Segment.observed)
    (List.length faults);
  let baseline = ref 0.0 in
  List.iter
    (fun words ->
      let pol = Batch.policy ~words ~drop:Batch.Keep () in
      let o = ref None in
      let st =
        Bench_stat.measure ~repeat:11 (fun () ->
            o := Some (Batch.run engine pol ~patterns faults))
      in
      let o = Option.get !o in
      if words = 1 then baseline := st.Bench_stat.median_ns;
      Printf.printf
        "words %2d: %8.3f ms  word_evals %9d  detected %d/%d  speedup %.1fx\n"
        words
        (st.Bench_stat.median_ns /. 1e6)
        o.Batch.word_evals o.Batch.n_detected o.Batch.n_faults
        (!baseline /. st.Bench_stat.median_ns))
    [ 1; 2; 4; 8; 16; 32; 62 ]
