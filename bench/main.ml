(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Sec. 4) on the synthetic benchmark suite, side by side
   with the published numbers, then times the compiler stages with
   Bechamel (one Test.make per table/figure).

   Run with: dune exec bench/main.exe
   Pass --quick to restrict the heavy tables to circuits under 25k area. *)

module Circuit = Ppet_netlist.Circuit
module Stats = Ppet_netlist.Stats
module Benchmarks = Ppet_netlist.Benchmarks
module Generator = Ppet_netlist.Generator
module Segment = Ppet_netlist.Segment
module To_graph = Ppet_netlist.To_graph
module Netgraph = Ppet_digraph.Netgraph
module Prng = Ppet_digraph.Prng
module Scc_budget = Ppet_retiming.Scc_budget
module Cbit = Ppet_bist.Cbit
module Pipeline = Ppet_bist.Pipeline
module Pet = Ppet_bist.Pet
module Simulator = Ppet_bist.Simulator
module Fault = Ppet_bist.Fault
module Fault_sim = Ppet_bist.Fault_sim
module Fault_engine = Ppet_bist.Fault_engine
module Domain_pool = Ppet_parallel.Domain_pool
module Params = Ppet_core.Params
module Flow = Ppet_core.Flow
module Cluster = Ppet_core.Cluster
module Assign = Ppet_core.Assign
module Merced = Ppet_core.Merced
module Area = Ppet_core.Area_accounting
module Report = Ppet_core.Report
module Baseline_random = Ppet_core.Baseline_random
module Baseline_annealing = Ppet_core.Baseline_annealing
module Baseline_fm = Ppet_core.Baseline_fm
module Bench_stat = Ppet_obs.Bench_stat

let quick = Array.exists (fun a -> a = "--quick") Sys.argv

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* ------------------------------------------------------------------ *)
(* published reference numbers                                         *)

(* Table 10 (l_k = 16): circuit -> dffs_on_scc, cuts_on_scc, nets_cut *)
let paper_t10 =
  [
    ("s510", (6, 77, 92));
    ("s420.1", (16, 0, 8));
    ("s641", (15, 19, 28));
    ("s713", (15, 24, 34));
    ("s820", (5, 68, 88));
    ("s832", (5, 77, 96));
    ("s838.1", (32, 0, 23));
    ("s1423", (71, 53, 65));
    ("s5378", (124, 283, 420));
    ("s9234.1", (172, 497, 700));
    ("s9234", (173, 471, 649));
    ("s13207.1", (462, 794, 975));
    ("s13207", (463, 817, 978));
    ("s15850.1", (487, 720, 1014));
    ("s35932", (1728, 2881, 2926));
    ("s38417", (1166, 1703, 2506));
    ("s38584.1", (1424, 3110, 3322));
  ]

(* Table 11 (l_k = 24): circuit -> cuts_on_scc, nets_cut *)
let paper_t11 =
  [
    ("s641", (12, 17));
    ("s713", (32, 38));
    ("s5378", (254, 392));
    ("s9234.1", (379, 531));
    ("s13207.1", (749, 931));
    ("s13207", (689, 845));
    ("s15850.1", (602, 872));
    ("s35932", (2639, 2667));
    ("s38417", (1555, 2279));
    ("s38584.1", (2593, 2764));
  ]

(* Table 12: circuit -> (w/R 16, w/o 16, w/R 24, w/o 24); 0 = no cuts *)
let paper_t12 =
  [
    ("s510", (78.8, 80.6, 0., 0.));
    ("s420.1", (19.7, 24.2, 0., 0.));
    ("s641", (18.9, 45.4, 13.2, 33.5));
    ("s713", (27.4, 48.5, 33.9, 51.3));
    ("s820", (67.2, 69.7, 0., 0.));
    ("s832", (69.0, 71.2, 0., 0.));
    ("s838.1", (25.6, 30.9, 0., 0.));
    ("s1423", (22.5, 41.8, 0., 0.));
    ("s5378", (46.8, 62.4, 43.4, 60.8));
    ("s9234.1", (49.3, 60.1, 38.8, 53.4));
    ("s9234", (45.5, 57.9, 0., 0.));
    ("s13207.1", (30.2, 55.7, 27.3, 54.5));
    ("s13207", (34.4, 55.4, 26.4, 51.7));
    ("s15850.1", (32.9, 54.0, 24.9, 50.3));
    ("s35932", (36.7, 58.8, 31.3, 56.5));
    ("s38417", (27.1, 54.0, 21.5, 51.6));
    ("s38584.1", (45.3, 59.8, 36.8, 55.3));
  ]

let suite_names =
  if quick then
    List.filter
      (fun n -> (Benchmarks.find n).Benchmarks.paper_area < 25_000.)
      Benchmarks.names
  else Benchmarks.names

(* ------------------------------------------------------------------ *)
(* Table 1 and Fig. 4                                                  *)

let table1 () =
  section "Table 1: area cost for various CBIT sizes";
  Printf.printf "%-6s %8s %12s %12s\n" "type" "length" "area/DFF" "per bit";
  Array.iter
    (fun (r : Cbit.cost_row) ->
      Printf.printf "%-6s %8d %12.2f %12.2f\n" r.Cbit.label r.Cbit.length
        r.Cbit.area_per_dff r.Cbit.per_bit)
    Cbit.cost_table

let fig4 () =
  section "Fig. 4: bit-wise area vs testing time per CBIT type";
  Printf.printf "%-6s %8s %14s %16s\n" "type" "length" "sigma (p/bit)"
    "testing cycles";
  Array.iter
    (fun (r : Cbit.cost_row) ->
      Printf.printf "%-6s %8d %14.3f %16.3g\n" r.Cbit.label r.Cbit.length
        (Ppet_core.Cost.bitwise_cost r.Cbit.length)
        (Cbit.testing_time r.Cbit.length))
    Cbit.cost_table;
  Printf.printf
    "(shape: per-bit cost falls slowly with length; testing time explodes \
     as 2^l — hence d4/d5 are the practical choices, as the paper argues)\n"

let fig1b () =
  section "Fig. 1(b): pipelined testing time is dominated by the widest CBIT";
  Printf.printf "%-34s %14s %10s\n" "pipe (CBIT widths)" "total cycles"
    "speed-up";
  List.iter
    (fun widths ->
      let s = Pipeline.of_segment_widths widths in
      Printf.printf "%-34s %14.0f %10.2fx\n"
        (String.concat "," (List.map string_of_int widths))
        (Pipeline.total_cycles s)
        (Pipeline.speedup_vs_serial s))
    [ [ 8; 8; 8; 8 ]; [ 12; 8; 8; 4 ]; [ 16; 16; 16; 16 ]; [ 16; 4; 4; 4 ];
      [ 24; 16; 12; 8 ] ]

(* ------------------------------------------------------------------ *)
(* Table 9                                                             *)

let table9 () =
  section "Table 9: circuit information (synthetic stand-ins vs published)";
  Printf.printf "%-10s %5s %6s %7s %6s %11s %11s\n" "circuit" "PIs" "DFFs"
    "gates" "INVs" "area" "paper area";
  List.iter
    (fun name ->
      let e = Benchmarks.find name in
      let c = Benchmarks.circuit name in
      let s = Stats.of_circuit c in
      Printf.printf "%-10s %5d %6d %7d %6d %11.0f %11.0f\n" name s.Stats.n_pi
        s.Stats.n_dff s.Stats.n_gates s.Stats.n_inv s.Stats.area
        e.Benchmarks.paper_area)
    suite_names

(* ------------------------------------------------------------------ *)
(* Tables 10/11/12 and Fig. 8 (memoized Merced runs)                   *)

let merced_cache : (string * int, Merced.result) Hashtbl.t = Hashtbl.create 40

let merced name lk =
  match Hashtbl.find_opt merced_cache (name, lk) with
  | Some r -> r
  | None ->
    let c = Benchmarks.circuit name in
    let r = Merced.run ~params:(Params.with_lk lk) c in
    Hashtbl.replace merced_cache (name, lk) r;
    r

let table10 () =
  section "Table 10: partition results for l_k = 16 (measured | paper)";
  Printf.printf "%-10s %6s | %9s %9s | %9s %9s | %8s\n" "circuit" "DFFs"
    "scc-cuts" "(paper)" "nets-cut" "(paper)" "CPU(s)";
  List.iter
    (fun name ->
      let r = merced name 16 in
      let b = r.Merced.breakdown in
      let p_scc, p_cut =
        match List.assoc_opt name paper_t10 with
        | Some (_, s, c) -> (s, c)
        | None -> (0, 0)
      in
      Printf.printf "%-10s %6d | %9d %9d | %9d %9d | %8.2f\n" name
        b.Area.dffs_total b.Area.cuts_on_scc p_scc b.Area.cuts_total p_cut
        r.Merced.cpu_seconds)
    suite_names

let table11 () =
  section "Table 11: partition results for l_k = 24 (measured | paper)";
  Printf.printf "%-10s %6s | %9s %9s | %9s %9s | %8s\n" "circuit" "DFFs"
    "scc-cuts" "(paper)" "nets-cut" "(paper)" "CPU(s)";
  List.iter
    (fun name ->
      let e = Benchmarks.find name in
      if e.Benchmarks.in_table11 then begin
        let r = merced name 24 in
        let b = r.Merced.breakdown in
        let p_scc, p_cut =
          match List.assoc_opt name paper_t11 with
          | Some v -> v
          | None -> (0, 0)
        in
        Printf.printf "%-10s %6d | %9d %9d | %9d %9d | %8.2f\n" name
          b.Area.dffs_total b.Area.cuts_on_scc p_scc b.Area.cuts_total p_cut
          r.Merced.cpu_seconds
      end)
    suite_names

let table12 () =
  section "Table 12: ACBIT/ATotal (%) with vs without retiming";
  Printf.printf
    "%-10s | %23s | %23s | %23s\n" "" "l_k=16 measured" "l_k=16 paper"
    "l_k=16 strict-budget";
  Printf.printf "%-10s | %7s %7s %7s | %11s %11s | %11s %11s\n" "circuit"
    "w/R" "w/o" "saved" "w/R" "w/o" "w/R" "mux";
  List.iter
    (fun name ->
      let r = merced name 16 in
      let b = r.Merced.breakdown in
      let p16r, p16p, _, _ =
        match List.assoc_opt name paper_t12 with
        | Some v -> v
        | None -> (0., 0., 0., 0.)
      in
      (* w/R under the paper's full-utilization arithmetic; the strict
         per-loop budget (Eq. 2/6) appears in the last columns *)
      Printf.printf
        "%-10s | %7.1f %7.1f %7.1f | %11.1f %11.1f | %11.1f %11d\n" name
        b.Area.ratio_full_utilization b.Area.ratio_without
        b.Area.saving_full_utilization p16r p16p b.Area.ratio_with
        b.Area.mux_excess)
    suite_names;
  (* l_k = 24 variant *)
  Printf.printf "\n%-10s | %23s | %23s\n" "" "l_k=24 measured" "l_k=24 paper";
  Printf.printf "%-10s | %7s %7s %7s | %11s %11s\n" "circuit" "w/R" "w/o"
    "saved" "w/R" "w/o";
  List.iter
    (fun name ->
      let e = Benchmarks.find name in
      if e.Benchmarks.in_table11 then begin
        let r = merced name 24 in
        let b = r.Merced.breakdown in
        let _, _, p24r, p24p =
          match List.assoc_opt name paper_t12 with
          | Some v -> v
          | None -> (0., 0., 0., 0.)
        in
        Printf.printf "%-10s | %7.1f %7.1f %7.1f | %11.1f %11.1f\n" name
          b.Area.ratio_full_utilization b.Area.ratio_without
          b.Area.saving_full_utilization p24r p24p
      end)
    suite_names;
  (* headline average *)
  let savings =
    List.map
      (fun name ->
        (merced name 16).Merced.breakdown.Area.saving_full_utilization)
      suite_names
  in
  let avg = List.fold_left ( +. ) 0.0 savings /. float_of_int (List.length savings) in
  Printf.printf
    "\naverage saving at l_k=16 (full-utilization model): %.1f points \
     (paper's headline: ~20%%)\n"
    avg

let fig8 () =
  section "Fig. 8: area saving of retiming grows with circuit size";
  Printf.printf "%-10s %11s %11s %11s\n" "circuit" "area" "saved(pp)"
    "saved-strict";
  List.iter
    (fun name ->
      let r = merced name 16 in
      let b = r.Merced.breakdown in
      Printf.printf "%-10s %11.0f %11.1f %11.1f\n" name b.Area.circuit_area
        b.Area.saving_full_utilization b.Area.saving)
    suite_names

(* ------------------------------------------------------------------ *)
(* ablations                                                           *)

let ablation_partitioners () =
  section "Ablation A: flow-based clustering vs baselines (l_k = 16)";
  Printf.printf
    "%-10s | %8s %7s | %8s %7s | %8s %7s | %8s %7s\n" "circuit" "merced"
    "t(s)" "random" "t(s)" "FM" "t(s)" "anneal" "t(s)";
  let timed f =
    let t0 = Sys.time () in
    let v = f () in
    (v, Sys.time () -. t0)
  in
  List.iter
    (fun name ->
      let c = Benchmarks.circuit name in
      let g = To_graph.partition_view c in
      let params = Params.with_lk 16 in
      let merced_r, merced_t =
        timed (fun () -> Merced.run ~params c)
      in
      let merced_cuts = List.length merced_r.Merced.assignment.Assign.cut_nets in
      let random, random_t =
        timed (fun () -> Baseline_random.run c g params (Prng.create 11L))
      in
      let fm, fm_t =
        timed (fun () -> Baseline_fm.run c g params (Prng.create 11L))
      in
      let annealing, anneal_t =
        timed (fun () ->
            Baseline_annealing.run ~moves_per_temp:(2 * Netgraph.n_nodes g)
              ~initial_temp:3.0 ~cooling:0.8 c g params (Prng.create 11L))
      in
      Printf.printf
        "%-10s | %8d %7.2f | %8d %7.2f | %8d %7.2f | %8d %7.2f\n" name
        merced_cuts merced_t
        (List.length random.Assign.cut_nets)
        random_t
        (List.length fm.Baseline_fm.result.Assign.cut_nets)
        fm_t
        (List.length annealing.Baseline_annealing.result.Assign.cut_nets)
        anneal_t)
    [ "s510"; "s641"; "s820"; "s838.1"; "s1423" ];
  (* one larger circuit: FM's O(n^2)-per-pass scan is already impractical
     there, so only the cheap baselines run *)
  let name = "s5378" in
  let c = Benchmarks.circuit name in
  let g = To_graph.partition_view c in
  let params = Params.with_lk 16 in
  let merced_r, merced_t = (let t0 = Sys.time () in let v = Merced.run ~params c in (v, Sys.time () -. t0)) in
  let random, random_t = (let t0 = Sys.time () in let v = Baseline_random.run c g params (Prng.create 11L) in (v, Sys.time () -. t0)) in
  let annealing, anneal_t =
    (let t0 = Sys.time () in
     let v = Baseline_annealing.run ~moves_per_temp:(2 * Netgraph.n_nodes g)
         ~initial_temp:3.0 ~cooling:0.8 c g params (Prng.create 11L) in
     (v, Sys.time () -. t0))
  in
  Printf.printf "%-10s | %8d %7.2f | %8d %7.2f | %8s %7s | %8d %7.2f\n" name
    (List.length merced_r.Merced.assignment.Assign.cut_nets) merced_t
    (List.length random.Assign.cut_nets) random_t "-" "-"
    (List.length annealing.Baseline_annealing.result.Assign.cut_nets) anneal_t;
  Printf.printf
    "(all rows satisfy the input constraint with zero oversize partitions; \
     on these synthetic circuits the authors' earlier annealing approach, \
     ref [4], finds roughly half the cuts of the flow heuristic at every \
     size tested, and FM sits between them but its quadratic passes stop \
     scaling at ~3k nodes — the flow heuristic's selling point is \
     near-linear time, not cut quality)\n"

let ablation_beta () =
  section "Ablation B: the Eq. 6 budget (beta) on s5378, l_k = 16";
  Printf.printf "%5s %9s %12s %10s %9s %9s %10s\n" "beta" "nets-cut"
    "cuts-on-SCC" "mux-cells" "w/R(%)" "w/o(%)" "oversize";
  List.iter
    (fun beta ->
      let c = Benchmarks.circuit "s5378" in
      let params = { (Params.with_lk 16) with Params.beta } in
      let r = Merced.run ~params c in
      let b = r.Merced.breakdown in
      let oversize =
        List.length
          (List.filter
             (fun (p : Assign.partition) -> p.Assign.oversize)
             r.Merced.assignment.Assign.partitions)
      in
      Printf.printf "%5d %9d %12d %10d %9.1f %9.1f %10d\n" beta
        b.Area.cuts_total b.Area.cuts_on_scc b.Area.mux_excess
        b.Area.ratio_with b.Area.ratio_without oversize)
    [ 1; 2; 5; 50 ]

let ablation_flow_params () =
  section "Ablation C: Saturate_Network sampling (s1423, l_k = 16)";
  Printf.printf "%10s %7s %12s %9s\n" "min_visit" "alpha" "iterations"
    "nets-cut";
  List.iter
    (fun (min_visit, alpha) ->
      let c = Benchmarks.circuit "s1423" in
      let params =
        { (Params.with_lk 16) with Params.min_visit; alpha }
      in
      let r = Merced.run ~params c in
      Printf.printf "%10d %7.1f %12d %9d\n" min_visit alpha
        r.Merced.flow.Flow.iterations
        r.Merced.breakdown.Area.cuts_total)
    [ (2, 4.0); (20, 4.0); (60, 4.0); (20, 1.0); (20, 8.0) ]

(* ------------------------------------------------------------------ *)
(* validation: pseudo-exhaustive coverage on real segments             *)

let validation_coverage () =
  section "Validation: PPET segments reach full detectable coverage";
  Printf.printf "%-10s %9s %9s %10s %11s %10s\n" "circuit" "segments"
    "tested" "faults" "detectable" "coverage";
  List.iter
    (fun name ->
      let c =
        if name = "s27" then Ppet_netlist.S27.circuit ()
        else Benchmarks.circuit name
      in
      let r = Merced.run ~params:(Params.with_lk 12) c in
      let sim = Simulator.create c in
      let segments = Merced.segments r in
      let tested = ref 0 and faults = ref 0 and detected = ref 0 in
      let redundant = ref 0 in
      List.iter
        (fun seg ->
          let w = Segment.input_count seg in
          if w > 0 && w <= 14 then begin
            incr tested;
            let rep = Pet.run sim seg in
            faults := !faults + rep.Pet.n_faults;
            detected := !detected + rep.Pet.n_detected;
            redundant := !redundant + rep.Pet.n_redundant
          end)
        segments;
      let detectable = !faults - !redundant in
      Printf.printf "%-10s %9d %9d %10d %11d %9.1f%%\n" name
        (List.length segments) !tested !faults detectable
        (if detectable = 0 then 100.0
         else 100.0 *. float_of_int !detected /. float_of_int detectable))
    [ "s27"; "s510"; "s641" ];
  (* phase assignment of the full pipeline *)
  Printf.printf "\nTest phases (partition adjacency colouring, l_k = 16):\n";
  List.iter
    (fun name ->
      let r = merced name 16 in
      let p = Ppet_core.Phasing.compute r in
      let s = Ppet_core.Phasing.schedule r in
      Printf.printf
        "  %-10s %3d partitions, %3d adjacencies -> %d phase(s), total %.3g cycles\n"
        name
        (Array.length p.Ppet_core.Phasing.phase_of)
        (List.length p.Ppet_core.Phasing.adjacency)
        p.Ppet_core.Phasing.phases
        (Pipeline.total_cycles s))
    [ "s510"; "s641"; "s1423" ];
  (* fault-dictionary diagnosis on one segment *)
  Printf.printf "\nSignature diagnosis (s27 combinational core, 16-bit MISR):\n";
  let c27 = Ppet_netlist.S27.circuit () in
  let sim27 = Simulator.create c27 in
  let seg27 = Segment.of_members c27 (Circuit.combinational c27) in
  let faults27 =
    Ppet_bist.Fault.collapse c27 (Ppet_bist.Fault.of_segment c27 seg27)
  in
  let dict = Ppet_bist.Diagnosis.build sim27 seg27 ~misr_width:16 faults27 in
  Printf.printf
    "  %d faults -> %d signature classes (resolution %.2f), %d undiagnosable\n"
    (List.length faults27)
    (Ppet_bist.Diagnosis.distinguishable_classes dict)
    (Ppet_bist.Diagnosis.resolution dict)
    (List.length (Ppet_bist.Diagnosis.undiagnosable dict));
  (* whole-chip gate-level self-test session with parallel fault sim *)
  Printf.printf
    "\nWhole-chip PPET session (gate level, PSA-everywhere, 2048-cycle burst):\n";
  List.iter
    (fun (name, lk) ->
      let c =
        if name = "s27" then Ppet_netlist.S27.circuit ()
        else Benchmarks.circuit name
      in
      let r = Merced.run ~params:(Params.with_lk lk) c in
      let t = Ppet_core.Testable.insert r in
      let rep = Ppet_core.Session.run ~max_burst:2048 t in
      Printf.printf
        "  %-10s %4d faults, %4d detected -> %5.1f%% coverage%s\n" name
        rep.Ppet_core.Session.n_faults rep.Ppet_core.Session.n_detected
        (100.0 *. rep.Ppet_core.Session.coverage)
        (if rep.Ppet_core.Session.truncated then " (truncated burst)" else ""))
    [ ("s27", 3); ("s510", 12); ("s641", 12); ("s1423", 16) ]

(* ------------------------------------------------------------------ *)
(* Bechamel timings: one Test.make per table/figure                    *)

let bechamel_timings () =
  section "Stage timings (Bechamel, one test per table/figure)";
  let open Bechamel in
  let c = Benchmarks.circuit "s1423" in
  let g = To_graph.partition_view c in
  let params = Params.with_lk 16 in
  let sb = Scc_budget.create c g in
  let flow = Flow.saturate g params (Prng.create 1L) in
  let clustering = Cluster.make_group c g sb flow params in
  let sim = Simulator.create c in
  let seg =
    let r = merced "s510" 12 in
    List.find
      (fun s -> Segment.input_count s > 0 && Segment.input_count s <= 10)
      (Merced.segments r)
  in
  let sim510 = Simulator.create (Benchmarks.circuit "s510") in
  let tests =
    [
      Test.make ~name:"table1-cbit-cost"
        (Staged.stage (fun () -> Ppet_core.Cost.sigma [ 16; 24; 8; 4 ]));
      Test.make ~name:"fig4-testing-time"
        (Staged.stage (fun () -> Cbit.testing_time 24));
      Test.make ~name:"fig1b-pipeline-model"
        (Staged.stage (fun () ->
             Pipeline.total_cycles (Pipeline.of_segment_widths [ 16; 8; 4 ])));
      Test.make ~name:"table9-generate-s510"
        (Staged.stage (fun () ->
             Generator.generate (Benchmarks.find "s510").Benchmarks.profile));
      Test.make ~name:"table10-saturate-s1423"
        (Staged.stage (fun () -> Flow.saturate g params (Prng.create 1L)));
      Test.make ~name:"table10-cluster-s1423"
        (Staged.stage (fun () ->
             Cluster.make_group c g sb flow params));
      Test.make ~name:"table10-assign-s1423"
        (Staged.stage (fun () ->
             Assign.run c g clustering params (Prng.create 1L)));
      Test.make ~name:"table12-area-accounting"
        (Staged.stage (fun () ->
             Area.compute c sb
               ~cut_nets:(Cluster.cut_nets clustering g)
               ~partition_iotas:[ 16; 16; 12 ]));
      Test.make ~name:"validation-pet-segment"
        (Staged.stage (fun () -> Pet.run sim510 seg));
      Test.make ~name:"simulator-step-s1423"
        (Staged.stage
           (let dffs = Circuit.dffs c in
            let state = Array.make (Array.length dffs) 0 in
            let pi = Array.make (Array.length c.Circuit.inputs) 0 in
            fun () -> Simulator.step sim ~state ~pi));
    ]
  in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  Printf.printf "%-28s %16s\n" "stage" "time per run";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let analysed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ ns ] ->
            let pretty =
              if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
              else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
              else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
              else Printf.sprintf "%.0f ns" ns
            in
            Printf.printf "%-28s %16s\n" name pretty
          | Some _ | None -> Printf.printf "%-28s %16s\n" name "n/a")
        analysed)
    tests

(* ------------------------------------------------------------------ *)
(* fault-engine timings: seed serial loop vs cone-restricted engine    *)

let bench_fault_engine () =
  section "Fault engine: seed serial vs cone-restricted vs parallel";
  (* one large PPET-partition-profile CUT: the several hundred
     topologically earliest combinational gates of the s5378 stand-in *)
  let c = Benchmarks.circuit "s5378" in
  let sim = Simulator.create c in
  let order = Simulator.order sim in
  let members = Array.sub order 0 (min 400 (Array.length order)) in
  let seg = Segment.of_members c members in
  let faults = Fault.collapse c (Fault.of_segment c seg) in
  let n_in = Array.length (Segment.input_signals seg) in
  (* random word batches: 62 patterns per batch, 12 batches *)
  let rng = Prng.create 0xBE5CL in
  let word () =
    Int64.to_int (Int64.logand (Prng.next_int64 rng) (Int64.of_int max_int))
  in
  let patterns = List.init 12 (fun _ -> Array.init n_in (fun _ -> word ())) in
  let n_patterns =
    Ppet_netlist.Gate.bits_per_word * List.length patterns
  in
  let engine = Fault_engine.create sim seg in
  Printf.printf
    "segment: %d members, iota-signals %d; %d collapsed faults x %d patterns\n"
    (Array.length seg.Segment.members)
    n_in (List.length faults) n_patterns;
  (* the same circuit-shape stamp the pipeline sweep carries, so the
     bench guard can match both artefacts on workload identity *)
  let stats =
    let g = To_graph.partition_view c in
    Some
      {
        Report.gates = Array.length (Circuit.combinational c);
        dffs = Array.length (Circuit.dffs c);
        edges = Netgraph.n_nets g;
        segments = 0;
        largest_cluster = 0;
      }
  in
  let med ~jobs entry_name f =
    let s = Bench_stat.measure ~warmup:1 ~repeat:7 f in
    {
      Report.entry_name;
      median_ns = s.Bench_stat.median_ns;
      mad_ns = s.Bench_stat.mad_ns;
      jobs;
      circuit_stats = stats;
    }
  in
  let policy ?pool ~words () =
    (* dropping off: a fixed workload is what makes runs comparable *)
    Fault_engine.Batch.policy ~words ?pool ~drop:Fault_engine.Batch.Keep ()
  in
  let seed =
    med ~jobs:1 "fault_sim/seed_serial" (fun () ->
        ignore (Fault_sim.segment_detects sim seg ~patterns faults))
  in
  let cone =
    med ~jobs:1 "fault_sim/cone" (fun () ->
        ignore (Fault_engine.Batch.run engine (policy ~words:1 ()) ~patterns faults))
  in
  let multi =
    med ~jobs:1 "fault_sim/multiword" (fun () ->
        ignore (Fault_engine.Batch.run engine (policy ~words:8 ()) ~patterns faults))
  in
  let par, par_multi =
    Domain_pool.with_pool ~jobs:4 (fun pool ->
        ( med ~jobs:4 "fault_sim/cone" (fun () ->
              ignore
                (Fault_engine.Batch.run engine
                   (policy ~pool ~words:1 ())
                   ~patterns faults)),
          med ~jobs:4 "fault_sim/multiword" (fun () ->
              ignore
                (Fault_engine.Batch.run engine
                   (policy ~pool ~words:8 ())
                   ~patterns faults)) ))
  in
  let per_fp (e : Report.bench_entry) =
    e.Report.median_ns
    /. (float_of_int (List.length faults) *. float_of_int n_patterns)
  in
  Printf.printf "%-28s %16s %16s\n" "engine" "time per run" "ns/fault-pattern";
  List.iter
    (fun (name, e) ->
      Printf.printf "%-28s %13.2f ms %16.3f\n" name
        (e.Report.median_ns /. 1e6) (per_fp e))
    [
      ("seed serial loop", seed);
      ("cone-restricted, jobs 1", cone);
      ("multi-word x8, jobs 1", multi);
      ("parallel, jobs 4", par);
      ("multi-word x8, jobs 4", par_multi);
    ];
  Printf.printf
    "speedup vs seed: %.1fx (jobs 1), %.1fx (jobs 4); multi-word vs \
     single: %.1fx (jobs 1), %.1fx (jobs 4)\n"
    (seed.Report.median_ns /. cone.Report.median_ns)
    (seed.Report.median_ns /. par.Report.median_ns)
    (cone.Report.median_ns /. multi.Report.median_ns)
    (par.Report.median_ns /. par_multi.Report.median_ns);
  let json =
    Report.bench_json ~name:"fault_sim"
      ~entries:[ seed; cone; multi; par; par_multi ]
  in
  let oc = open_out "BENCH_fault_sim.json" in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote BENCH_fault_sim.json\n"

(* ------------------------------------------------------------------ *)

let () =
  Printf.printf "PPET benchmark harness%s\n"
    (if quick then " (quick mode)" else "");
  table1 ();
  fig4 ();
  fig1b ();
  table9 ();
  table10 ();
  table11 ();
  table12 ();
  fig8 ();
  ablation_partitioners ();
  ablation_beta ();
  ablation_flow_params ();
  validation_coverage ();
  bechamel_timings ();
  bench_fault_engine ();
  print_newline ()
