examples/compiler_tour.ml: Array Format Hashtbl List Ppet_core Ppet_digraph Ppet_netlist Ppet_retiming
