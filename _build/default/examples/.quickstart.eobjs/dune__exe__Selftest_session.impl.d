examples/selftest_session.ml: Array Format List Ppet_bist Ppet_core Ppet_netlist
