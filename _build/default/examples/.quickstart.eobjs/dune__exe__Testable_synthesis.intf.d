examples/testable_synthesis.mli:
