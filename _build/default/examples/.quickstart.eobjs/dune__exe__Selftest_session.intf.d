examples/selftest_session.mli:
