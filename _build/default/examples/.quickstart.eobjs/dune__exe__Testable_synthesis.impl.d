examples/testable_synthesis.ml: Array Format Hashtbl Int64 List Ppet_bist Ppet_core Ppet_digraph Ppet_netlist String
