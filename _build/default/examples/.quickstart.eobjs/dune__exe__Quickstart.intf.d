examples/quickstart.mli:
