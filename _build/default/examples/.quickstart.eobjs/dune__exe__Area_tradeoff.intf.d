examples/area_tradeoff.mli:
