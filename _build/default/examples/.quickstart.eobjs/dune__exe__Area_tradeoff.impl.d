examples/area_tradeoff.ml: Format List Ppet_core Ppet_netlist
