examples/quickstart.ml: Array Format List Ppet_core Ppet_netlist String
