(* Quickstart: parse a netlist, run the Merced BIST compiler on it, and
   read the partitioning report — the five-minute tour of the library.

   Run with: dune exec examples/quickstart.exe *)

module Circuit = Ppet_netlist.Circuit
module Parser = Ppet_netlist.Bench_parser
module Params = Ppet_core.Params
module Merced = Ppet_core.Merced
module Report = Ppet_core.Report
module Assign = Ppet_core.Assign

(* Any ISCAS89-format netlist works; s27 is the circuit the paper itself
   uses as its worked example (Figs. 2 and 5-7). *)
let netlist = Ppet_netlist.S27.text

let () =
  (* 1. parse *)
  let circuit = Parser.parse_string ~title:"s27" netlist in
  Format.printf "parsed %s: %d nodes, estimated area %.0f units@."
    circuit.Circuit.title (Circuit.size circuit) (Circuit.area circuit);

  (* 2. compile for PPET: the paper's example uses l_k = 3 *)
  let params = Params.with_lk 3 in
  let result = Merced.run ~params circuit in

  (* 3. read the report *)
  print_endline (Report.summary result);

  (* 4. inspect the partitions (compare with the paper's Fig. 7, which
     finds four clusters at l_k = 3) *)
  List.iteri
    (fun i (p : Assign.partition) ->
      let names =
        Array.to_list p.Assign.vertices
        |> List.map (fun v -> (Circuit.node circuit v).Circuit.name)
        |> String.concat ", "
      in
      Format.printf "partition %d (iota = %d): %s@." i p.Assign.input_count names)
    result.Merced.assignment.Assign.partitions;

  (* 5. check that a legal retiming realises the register placement *)
  match Merced.retiming_feasibility result with
  | `Feasible ->
    Format.printf "retiming: every combinational cut net gets a register@."
  | `Needs_mux n ->
    Format.printf
      "retiming: %d cut nets sit on over-constrained loops -> multiplexed \
       A_CELLs (Fig. 3c)@."
      n
