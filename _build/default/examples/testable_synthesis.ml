(* The end product of the whole flow: take a design, run Merced, insert
   the CBIT test hardware, and demonstrate on the resulting NETLIST (no
   behavioural models) that

     1. normal mode is bit-identical to the original design,
     2. a scan-init / TPG-burst / PSA / scan-out session runs at gate
        level, and
     3. the measured area overhead lines up with the Table 12 accounting.

   Run with: dune exec examples/testable_synthesis.exe *)

module Circuit = Ppet_netlist.Circuit
module Simulator = Ppet_bist.Simulator
module Params = Ppet_core.Params
module Merced = Ppet_core.Merced
module Testable = Ppet_core.Testable
module Area = Ppet_core.Area_accounting
module Prng = Ppet_digraph.Prng

(* step a circuit once: returns the full value array *)
let stepper circuit =
  let sim = Simulator.create circuit in
  let dffs = Circuit.dffs circuit in
  let state = Hashtbl.create 32 in
  Array.iter (fun d -> Hashtbl.replace state d 0) dffs;
  fun ~pi ~force ->
    let values = Array.make (Circuit.size circuit) 0 in
    Array.iteri (fun i p -> values.(p) <- pi.(i)) circuit.Circuit.inputs;
    List.iter (fun (n, w) -> values.(Circuit.find circuit n) <- w) force;
    Array.iter (fun d -> values.(d) <- Hashtbl.find state d) dffs;
    Simulator.eval_all sim values;
    Array.iter
      (fun d ->
        Hashtbl.replace state d
          values.((Circuit.node circuit d).Circuit.fanins.(0)))
      dffs;
    values

let () =
  let original = Ppet_netlist.Benchmarks.circuit "s641" in
  let result = Merced.run ~params:(Params.with_lk 16) original in
  let t = Testable.insert result in
  let testable = t.Testable.circuit in
  Format.printf "original:  %d nodes, area %.0f@." (Circuit.size original)
    (Circuit.area original);
  Format.printf "testable:  %d nodes, area %.0f (+%.0f; %d cells in %d CBITs)@."
    (Circuit.size testable) (Circuit.area testable) t.Testable.added_area
    (Testable.cell_count t)
    (List.length t.Testable.groups);

  (* 1. normal-mode equivalence on 20 random cycles *)
  let rng = Prng.create 2024L in
  let rand_word () =
    Int64.to_int (Int64.logand (Prng.next_int64 rng) (Int64.of_int max_int))
  in
  let step_o = stepper original and step_t = stepper testable in
  let n_pi = Array.length original.Circuit.inputs in
  let n_pi_t = Array.length testable.Circuit.inputs in
  let mismatches = ref 0 in
  for _ = 1 to 20 do
    let pi = Array.init n_pi (fun _ -> rand_word ()) in
    let pi_t = Array.make n_pi_t 0 in
    Array.blit pi 0 pi_t 0 n_pi;
    let vo = step_o ~pi ~force:[] in
    let vt = step_t ~pi:pi_t ~force:[] in
    Array.iteri
      (fun k po ->
        if vo.(po) <> vt.(testable.Circuit.outputs.(k)) then incr mismatches)
      original.Circuit.outputs
  done;
  Format.printf
    "normal mode: 20 cycles x %d outputs x 62 bit-lanes, %d mismatches@."
    (Array.length original.Circuit.outputs)
    !mismatches;

  (* 2. a gate-level self-test session on the largest CBIT *)
  let group =
    List.fold_left
      (fun acc (g : Testable.cbit_group) ->
        if g.Testable.width > acc.Testable.width then g else acc)
      (List.hd t.Testable.groups) t.Testable.groups
  in
  Format.printf "self-test on CBIT #%d: width %d, polynomial degree %d@."
    group.Testable.partition group.Testable.width
    (Ppet_bist.Gf2_poly.degree group.Testable.poly);
  let step = stepper testable in
  let zeros = Array.make n_pi_t 0 in
  let force_mode ~fb ~psa ~scan =
    [ (t.Testable.test_en, max_int); (t.Testable.fb_en, fb);
      (t.Testable.psa_en, psa); (t.Testable.scan_in, scan) ]
  in
  (* scan in a 1 for the chain head (enough to seed the LFSR) *)
  for _ = 1 to Testable.scan_length t do
    ignore (step ~pi:zeros ~force:(force_mode ~fb:0 ~psa:0 ~scan:max_int))
  done;
  (* TPG burst *)
  let burst = 64 in
  for _ = 1 to burst do
    ignore (step ~pi:zeros ~force:(force_mode ~fb:max_int ~psa:0 ~scan:0))
  done;
  (* PSA phase: compress whatever the partition responds with *)
  for _ = 1 to burst do
    ignore (step ~pi:zeros ~force:(force_mode ~fb:max_int ~psa:max_int ~scan:0))
  done;
  (* scan out: observe the serial stream at the last cell *)
  let last_cell =
    List.nth group.Testable.cell_names (group.Testable.width - 1)
  in
  let signature_bits = ref [] in
  for _ = 1 to group.Testable.width do
    let v = step ~pi:zeros ~force:(force_mode ~fb:0 ~psa:0 ~scan:0) in
    signature_bits := (v.(Circuit.find testable last_cell) land 1) :: !signature_bits
  done;
  Format.printf "scanned-out signature bits (MSB cell, serial): %s@."
    (String.concat "" (List.map string_of_int !signature_bits));

  (* 3. compare measured overhead with the Table 12 model *)
  let b = result.Merced.breakdown in
  Format.printf
    "area model: %.0f units w/ retiming, %.0f w/o (Table 12 arithmetic)@."
    b.Area.area_with_retiming b.Area.area_without_retiming;
  Format.printf
    "measured insertion: %.0f units (%.1f/cell vs the model's 23/cell \
     ceiling) — our netlist spells out the mode decoding that the paper's \
     3-gate A_CELL shares implicitly; see EXPERIMENTS.md@."
    t.Testable.added_area
    (Testable.measured_overhead_per_cell t)
