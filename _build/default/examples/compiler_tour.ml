(* A tour through every stage of the Merced compiler on a mid-size
   synthetic benchmark — the data a paper reader wants to see at each
   STEP of Table 2, plus the retiming machinery of Sec. 2 applied for
   real: we solve for a legal retiming, rebuild the circuit, and
   co-simulate it against the original.

   Run with: dune exec examples/compiler_tour.exe *)

module Netgraph = Ppet_digraph.Netgraph
module Prng = Ppet_digraph.Prng
module Circuit = Ppet_netlist.Circuit
module To_graph = Ppet_netlist.To_graph
module Benchmarks = Ppet_netlist.Benchmarks
module Scc_budget = Ppet_retiming.Scc_budget
module Rgraph = Ppet_retiming.Rgraph
module Retime = Ppet_retiming.Retime
module Logic3 = Ppet_retiming.Logic3
module Params = Ppet_core.Params
module Flow = Ppet_core.Flow
module Cluster = Ppet_core.Cluster
module Assign = Ppet_core.Assign

let () =
  let circuit = Benchmarks.circuit "s641" in
  let params = Params.with_lk 16 in

  (* STEP 1: graph representation (multi-pin model, Fig. 2) *)
  let graph = To_graph.partition_view circuit in
  Format.printf "STEP 1: %d vertices, %d nets@." (Netgraph.n_nodes graph)
    (Netgraph.n_nets graph);

  (* STEP 2: strongly connected components *)
  let budget = Scc_budget.create circuit graph in
  let loops =
    List.length
      (List.filter
         (fun comp -> Scc_budget.is_loop budget comp)
         (List.init (Scc_budget.n_components budget) (fun i -> i)))
  in
  Format.printf "STEP 2: %d SCCs, %d of them loops, %d flip-flops on loops@."
    (Scc_budget.n_components budget) loops
    (Scc_budget.dffs_on_scc budget);

  (* STEP 3a: Saturate_Network (Table 3) *)
  let rng = Prng.create params.Params.seed in
  let flow = Flow.saturate graph params rng in
  let boundaries = Flow.boundaries flow in
  Format.printf "STEP 3a: %d shortest-path trees, %d distinct congestion levels@."
    flow.Flow.iterations (List.length boundaries);

  (* STEP 3b: Make_Group (Tables 4-7) *)
  let clustering = Cluster.make_group circuit graph budget flow params in
  Format.printf "STEP 3b: %d clusters (used %d boundaries)@."
    (List.length clustering.Cluster.clusters)
    clustering.Cluster.boundaries_used;

  (* STEP 3c: Assign_CBIT (Table 8) *)
  let assignment = Assign.run circuit graph clustering params rng in
  Format.printf "STEP 3c: %d partitions after %d merges, %d cut nets@."
    (List.length assignment.Assign.partitions)
    assignment.Assign.merges
    (List.length assignment.Assign.cut_nets);

  (* STEP 4: realise the register placement by legal retiming (Sec. 2.2) *)
  let rg = Rgraph.of_circuit circuit in
  let wanted = Hashtbl.create 64 in
  let vertex_by_name = Hashtbl.create 256 in
  for v = 0 to Rgraph.n_vertices rg - 1 do
    Hashtbl.replace vertex_by_name (Rgraph.vertex_name rg v) v
  done;
  List.iter
    (fun e ->
      let driver = Netgraph.net_src graph e in
      let nd = Circuit.node circuit driver in
      match nd.Circuit.kind with
      | Ppet_netlist.Gate.Input | Ppet_netlist.Gate.Dff -> ()
      | _ ->
        (match Hashtbl.find_opt vertex_by_name nd.Circuit.name with
         | Some v -> Hashtbl.replace wanted v ()
         | None -> ()))
    assignment.Assign.cut_nets;
  let require e =
    if Hashtbl.mem wanted rg.Rgraph.edges.(e).Rgraph.tail then 1 else 0
  in
  (match Retime.solve rg ~require with
   | Retime.Feasible rho ->
     let moved = Array.fold_left (fun acc r -> acc + abs r) 0 rho in
     Format.printf "STEP 4: legal retiming found (total |rho| = %d)@." moved;
     let rg' = Retime.apply rg rho in
     Format.printf "        registers: %d per-pin before, %d after@."
       (Rgraph.n_registers rg) (Rgraph.n_registers rg');
     (* co-simulate 5 cycles on random inputs: outputs must agree *)
     let srng = Prng.create 77L in
     let stim = Hashtbl.create 64 in
     let inputs ~cycle name =
       match Hashtbl.find_opt stim (cycle, name) with
       | Some v -> v
       | None ->
         let v = if Prng.bool srng then Logic3.One else Logic3.Zero in
         Hashtbl.replace stim (cycle, name) v;
         v
     in
     let a = Rgraph.simulate rg ~inputs ~cycles:5 in
     let b = Rgraph.simulate rg' ~inputs ~cycles:5 in
     let mismatches = ref 0 and compared = ref 0 in
     Array.iteri
       (fun t outs ->
         List.iter
           (fun (name, v0) ->
             incr compared;
             if not (Logic3.compatible v0 (List.assoc name b.(t))) then
               incr mismatches)
           outs)
       a;
     Format.printf
       "        co-simulation: %d output observations, %d mismatches@."
       !compared !mismatches
   | Retime.Infeasible cycle ->
     Format.printf
       "STEP 4: requirements hit an over-constrained loop of %d vertices — \
        those cuts get multiplexed A_CELLs@."
       (List.length cycle))
