(* The designer's trade-off study from Sec. 4 of the paper:

     - sweep the input constraint l_k: bigger CBITs cut fewer nets (less
       test hardware) but testing time grows as 2^l_k (Fig. 4);
     - sweep beta (Eq. 6): restricting cuts on loops keeps every test
       register retimable but can force wider partitions.

   Run with: dune exec examples/area_tradeoff.exe *)

module Params = Ppet_core.Params
module Merced = Ppet_core.Merced
module Area = Ppet_core.Area_accounting
module Benchmarks = Ppet_netlist.Benchmarks

let circuit_name = "s1423"

let () =
  let circuit = Benchmarks.circuit circuit_name in
  Format.printf "=== l_k sweep on %s (beta = 50, the paper's setting) ===@."
    circuit_name;
  Format.printf "%4s %9s %8s %8s %10s %14s@." "l_k" "nets-cut" "w/R(%)"
    "w/o(%)" "saved(pp)" "test cycles";
  List.iter
    (fun l_k ->
      let r = Merced.run ~params:(Params.with_lk l_k) circuit in
      let b = r.Merced.breakdown in
      Format.printf "%4d %9d %8.1f %8.1f %10.1f %14.3g@." l_k
        b.Area.cuts_total b.Area.ratio_with b.Area.ratio_without b.Area.saving
        r.Merced.testing_time)
    [ 8; 12; 16; 24; 32 ];

  Format.printf "@.=== beta sweep on %s (l_k = 16) ===@." circuit_name;
  Format.printf "%5s %9s %12s %10s %8s@." "beta" "nets-cut" "cuts-on-SCC"
    "mux-cells" "w/R(%)";
  List.iter
    (fun beta ->
      let params = { (Params.with_lk 16) with Params.beta } in
      let r = Merced.run ~params circuit in
      let b = r.Merced.breakdown in
      Format.printf "%5d %9d %12d %10d %8.1f@." beta b.Area.cuts_total
        b.Area.cuts_on_scc b.Area.mux_excess b.Area.ratio_with)
    [ 1; 2; 5; 50 ];

  Format.printf
    "@.Reading: a small beta keeps loop cuts within the retimable budget \
     (few mux cells) at the price of more or wider partitions; beta = 50 \
     effectively removes the restriction, as the paper does for its \
     best-testing-time tables.@."
