(* A complete PPET self-test session, cycle by cycle, on one segment:

     1. Merced partitions the circuit;
     2. the segment's input CBIT is seeded through the scan chain;
     3. in TPG mode it applies the pseudo-exhaustive pattern burst while
        the output CBIT compresses responses in PSA mode;
     4. signatures are scanned out and compared against the fault-free
        reference — and we verify by fault simulation that any single
        stuck-at fault would have corrupted the signature.

   Run with: dune exec examples/selftest_session.exe *)

module Circuit = Ppet_netlist.Circuit
module Segment = Ppet_netlist.Segment
module Params = Ppet_core.Params
module Merced = Ppet_core.Merced
module Simulator = Ppet_bist.Simulator
module Cbit = Ppet_bist.Cbit
module Acell = Ppet_bist.Acell
module Scan_chain = Ppet_bist.Scan_chain
module Fault = Ppet_bist.Fault
module Misr = Ppet_bist.Misr
module Gate = Ppet_netlist.Gate

let () =
  let circuit = Ppet_netlist.S27.circuit () in
  let result = Merced.run ~params:(Params.with_lk 3) circuit in
  let sim = Simulator.create circuit in
  let seg =
    match Merced.segments result with
    | seg :: _ -> seg
    | [] -> failwith "no segments"
  in
  let width = Segment.input_count seg in
  let n_obs = Array.length seg.Segment.observed in
  Format.printf "segment under test: %d gates, %d inputs, %d observed outputs@."
    (Array.length seg.Segment.members) width n_obs;
  let member = Array.make (Circuit.size circuit) false in
  Array.iter (fun id -> member.(id) <- true) seg.Segment.members;

  (* hardware: an input CBIT as wide as the segment's inputs, an output
     CBIT compressing the observed responses, on one scan chain *)
  let tpg = Cbit.create ~width () in
  let psa = Cbit.create ~width:(max n_obs 4) () in
  let chain = Scan_chain.create [ tpg; psa ] in
  Format.printf "scan chain: %d bits@." (Scan_chain.total_bits chain);

  (* phase 1: global initialisation through the scan chain *)
  Scan_chain.initialise chain ~seeds:[ 1; 0 ];
  Cbit.set_mode tpg Acell.Tpg;
  Cbit.set_mode psa Acell.Psa;

  (* phase 2: the self-test burst — 2^width cycles: the all-zero pattern
     first (TPG cannot produce it autonomously), then the LFSR orbit *)
  let run_burst inject_fault =
    Cbit.load tpg 1;
    Cbit.load psa 0;
    let apply pattern =
      let bits = Array.init width (fun i -> (pattern lsr i) land 1 = 1) in
      let c = Simulator.circuit sim in
      let values = Array.make (Circuit.size c) 0 in
      Array.iteri
        (fun i sig_id -> values.(sig_id) <- (if bits.(i) then 1 else 0))
        (Segment.input_signals seg);
      (match inject_fault with
       | Some { Fault.site = Fault.Output id; stuck_at } when member.(id) ->
         (* evaluate, then pin the faulty node *)
         Simulator.eval_members sim values ~member;
         values.(id) <- (if stuck_at then 1 else 0);
         (* re-evaluate downstream of the fault, cheaply: full pass *)
         Array.iter
           (fun gid ->
             if member.(gid) && gid <> id then begin
               let nd = Circuit.node c gid in
               values.(gid) <-
                 Gate.eval_word nd.Circuit.kind
                   (Array.map (fun f -> values.(f)) nd.Circuit.fanins)
                 land 1
             end)
           (Simulator.order sim)
       | Some _ | None -> Simulator.eval_members sim values ~member);
      let response = ref 0 in
      Array.iteri
        (fun i o -> response := !response lor ((values.(o) land 1) lsl i))
        seg.Segment.observed;
      ignore (Cbit.clock psa ~data:!response ())
    in
    apply 0;
    for _ = 1 to (1 lsl width) - 1 do
      apply (Cbit.state tpg);
      Cbit.set_mode tpg Acell.Tpg;
      Cbit.clock tpg ()
    done;
    Cbit.state psa
  in

  let reference = run_burst None in
  Format.printf "fault-free signature: 0x%X (%d cycles)@." reference (1 lsl width);

  (* phase 3: inject every stuck fault on segment outputs; each must
     corrupt the signature *)
  let faults =
    List.filter
      (fun f -> match f.Fault.site with Fault.Output _ -> true | Fault.Input_pin _ -> false)
      (Fault.of_segment circuit seg)
  in
  let escapes = ref 0 and detected = ref 0 in
  List.iter
    (fun f ->
      let s = run_burst (Some f) in
      if s = reference then begin
        (* distinguish aliasing from true redundancy via exhaustive check *)
        incr escapes
      end
      else incr detected)
    faults;
  Format.printf "detected %d/%d output stuck faults by signature@." !detected
    (List.length faults);
  if !escapes > 0 then
    Format.printf
      "(%d faults left the signature unchanged: redundant logic or MISR \
       aliasing — compare with Pet.run's redundancy report)@."
      !escapes;

  (* phase 4: scan the signature out *)
  let sigs = Scan_chain.read_signatures chain in
  Format.printf "scanned out %d signature words@." (List.length sigs);
  ignore (Misr.reference ~width:(max n_obs 4) [])
