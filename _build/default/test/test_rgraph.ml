module Circuit = Ppet_netlist.Circuit
module Gate = Ppet_netlist.Gate
module Parser = Ppet_netlist.Bench_parser
module Rgraph = Ppet_retiming.Rgraph
module L = Ppet_retiming.Logic3
module S27 = Ppet_netlist.S27

let pipeline_src =
  "INPUT(a)\nOUTPUT(y)\nq1 = DFF(a)\nq2 = DFF(q1)\ng = NOT(q2)\ny = BUFF(g)\n"

let test_chain_collapse () =
  let c = Parser.parse_string pipeline_src in
  let rg = Rgraph.of_circuit c in
  (* vertices: a, g, y, host (DFFs collapse) *)
  Alcotest.(check int) "vertices" 4 (Rgraph.n_vertices rg);
  (* g's single in-edge carries both registers *)
  let find_vertex name =
    let rec loop v =
      if v >= Rgraph.n_vertices rg then raise Not_found
      else if Rgraph.vertex_name rg v = name then v
      else loop (v + 1)
    in
    loop 0
  in
  let gv = find_vertex "g" in
  let e = rg.Rgraph.edges.(rg.Rgraph.in_edges.(gv).(0)) in
  Alcotest.(check int) "weight 2" 2 e.Rgraph.weight;
  Alcotest.(check int) "two inits" 2 (List.length e.Rgraph.inits)

let test_registers_counted () =
  let c = Parser.parse_string pipeline_src in
  let rg = Rgraph.of_circuit c in
  Alcotest.(check int) "registers" 2 (Rgraph.n_registers rg)

let test_invariants () =
  let rg = Rgraph.of_circuit (S27.circuit ()) in
  (match Rgraph.check_invariants rg with
   | Ok () -> ()
   | Error msg -> Alcotest.fail msg)

let test_host_edges () =
  let c = S27.circuit () in
  let rg = Rgraph.of_circuit c in
  (* host drives 4 PIs, receives 1 PO *)
  Alcotest.(check int) "host out" 4
    (Array.length rg.Rgraph.out_edges.(rg.Rgraph.host));
  Alcotest.(check int) "host in" 1
    (Array.length rg.Rgraph.in_edges.(rg.Rgraph.host))

let test_pure_dff_ring_anchored () =
  (* a ring of two DFFs with a reader: needs an anchor vertex *)
  let src = "INPUT(a)\nOUTPUT(y)\nq1 = DFF(q2)\nq2 = DFF(q1)\ny = AND(q1, a)\n" in
  let c = Parser.parse_string src in
  let rg = Rgraph.of_circuit c in
  (match Rgraph.check_invariants rg with
   | Ok () -> ()
   | Error msg -> Alcotest.fail msg);
  (* 2 physical registers, but the anchor's register is read by both the
     ring and the AND gate, so the per-pin count sees it twice *)
  Alcotest.(check int) "per-pin register count" 3 (Rgraph.n_registers rg)

let test_simulate_pipeline_delay () =
  let c = Parser.parse_string pipeline_src in
  let rg = Rgraph.of_circuit c in
  (* y = NOT(a delayed 2 cycles); registers initialised to 0 *)
  let stimulus = [| L.One; L.Zero; L.One; L.One |] in
  let inputs ~cycle _name =
    if cycle < Array.length stimulus then stimulus.(cycle) else L.Zero
  in
  let outs = Rgraph.simulate rg ~inputs ~cycles:4 in
  let y_at t = List.assoc "y" outs.(t) in
  (* cycles 0,1 see the initial zeros -> NOT 0 = 1 *)
  Alcotest.(check bool) "t0" true (L.equal (y_at 0) L.One);
  Alcotest.(check bool) "t1" true (L.equal (y_at 1) L.One);
  Alcotest.(check bool) "t2 = not a(0)" true (L.equal (y_at 2) L.Zero);
  Alcotest.(check bool) "t3 = not a(1)" true (L.equal (y_at 3) L.One)

let test_simulate_s27_known_sequence () =
  (* cross-check the rgraph simulator against hand-computed s27 behaviour:
     all registers 0, inputs all 0: G11 = NOR(G5,G9); compute a few cycles
     against the independent word-level simulator *)
  let c = S27.circuit () in
  let rg = Rgraph.of_circuit c in
  let sim = Ppet_bist.Simulator.create c in
  let dffs = Circuit.dffs c in
  let state = Array.make (Array.length dffs) 0 in
  let pis = Array.make (Array.length c.Circuit.inputs) 0 in
  let rstate = ref state in
  let outs = Rgraph.simulate rg ~inputs:(fun ~cycle:_ _ -> L.Zero) ~cycles:5 in
  for t = 0 to 4 do
    let next, po = Ppet_bist.Simulator.step sim ~state:!rstate ~pi:pis in
    rstate := next;
    let expected = po.(0) land 1 = 1 in
    let got = List.assoc "G17" outs.(t) in
    Alcotest.(check bool)
      (Printf.sprintf "cycle %d" t)
      true
      (L.equal got (L.of_bool expected))
  done

let test_simulate_x_propagates () =
  let c = Parser.parse_string "INPUT(a)\nOUTPUT(y)\ny = XOR(a, a)\n" in
  let rg = Rgraph.of_circuit c in
  let outs = Rgraph.simulate rg ~inputs:(fun ~cycle:_ _ -> L.X) ~cycles:1 in
  (* xor of x with x is x in our pessimistic 3-valued algebra *)
  Alcotest.(check bool) "pessimistic X" true
    (L.equal (List.assoc "y" outs.(0)) L.X)

let test_copy_independent () =
  let rg = Rgraph.of_circuit (S27.circuit ()) in
  let rg2 = Rgraph.copy rg in
  (* mutate the copy's first weighted edge *)
  Array.iter
    (fun (e : Rgraph.edge) ->
      if e.Rgraph.weight > 0 then e.Rgraph.weight <- e.Rgraph.weight + 1)
    rg2.Rgraph.edges;
  Alcotest.(check bool) "original untouched" true
    (Rgraph.n_registers rg < Rgraph.n_registers rg2)

let suite =
  [
    Alcotest.test_case "DFF chains collapse to weights" `Quick test_chain_collapse;
    Alcotest.test_case "register count" `Quick test_registers_counted;
    Alcotest.test_case "invariants on s27" `Quick test_invariants;
    Alcotest.test_case "host edges" `Quick test_host_edges;
    Alcotest.test_case "pure DFF ring anchored" `Quick test_pure_dff_ring_anchored;
    Alcotest.test_case "pipeline delay simulation" `Quick test_simulate_pipeline_delay;
    Alcotest.test_case "s27 matches word simulator" `Quick test_simulate_s27_known_sequence;
    Alcotest.test_case "X propagation" `Quick test_simulate_x_propagates;
    Alcotest.test_case "copy independence" `Quick test_copy_independent;
  ]
