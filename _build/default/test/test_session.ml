module Circuit = Ppet_netlist.Circuit
module Fault = Ppet_bist.Fault
module Params = Ppet_core.Params
module Merced = Ppet_core.Merced
module Testable = Ppet_core.Testable
module Session = Ppet_core.Session
module S27 = Ppet_netlist.S27

let s27_testable =
  lazy (Testable.insert (Merced.run ~params:(Params.with_lk 3) (S27.circuit ())))

let test_full_coverage_s27 () =
  let t = Lazy.force s27_testable in
  let rep = Session.run ~max_burst:4096 t in
  Alcotest.(check bool) "faults exist" true (rep.Session.n_faults > 0);
  Alcotest.(check (float 1e-9)) "full coverage" 1.0 rep.Session.coverage;
  Alcotest.(check (list string)) "nothing undetected" []
    (List.map (Fault.describe (S27.circuit ())) rep.Session.undetected)

let test_deterministic () =
  let t = Lazy.force s27_testable in
  let a = Session.run ~max_burst:256 t in
  let b = Session.run ~max_burst:256 t in
  Alcotest.(check int) "same detections" a.Session.n_detected b.Session.n_detected

let test_more_burst_never_hurts () =
  let t = Lazy.force s27_testable in
  let short = Session.run ~max_burst:8 t in
  let long = Session.run ~max_burst:512 t in
  Alcotest.(check bool) "monotone" true
    (long.Session.n_detected >= short.Session.n_detected)

let test_custom_fault_list () =
  let t = Lazy.force s27_testable in
  let c = S27.circuit () in
  let g8 = Circuit.find c "G8" in
  let faults =
    [ { Fault.site = Fault.Output g8; stuck_at = true };
      { Fault.site = Fault.Output g8; stuck_at = false } ]
  in
  let rep = Session.run ~max_burst:512 ~faults t in
  Alcotest.(check int) "two faults" 2 rep.Session.n_faults;
  Alcotest.(check int) "both detected" 2 rep.Session.n_detected

let test_without_po_observer () =
  (* CBIT signatures alone still catch most faults; the PO observer covers
     the output cones *)
  let t = Lazy.force s27_testable in
  let with_po = Session.run ~max_burst:1024 t in
  let without = Session.run ~max_burst:1024 ~observe_pos:false t in
  Alcotest.(check bool) "po observer helps or equals" true
    (with_po.Session.n_detected >= without.Session.n_detected)

let test_truncation_flag () =
  let c = Ppet_netlist.Benchmarks.circuit "s641" in
  let t = Testable.insert (Merced.run ~params:(Params.with_lk 16) c) in
  let rep = Session.run ~max_burst:64 t in
  (* widest CBIT is 13+ bits: 64 cycles is truncated *)
  Alcotest.(check bool) "truncated" true rep.Session.truncated

let test_bad_fault_site () =
  let t = Lazy.force s27_testable in
  (* a fault site naming a node id beyond the original circuit *)
  Alcotest.(check bool) "raises" true
    (try
       ignore
         (Session.run
            ~faults:[ { Fault.site = Fault.Output 9999; stuck_at = true } ]
            t);
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "s27 full whole-chip coverage" `Quick test_full_coverage_s27;
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "longer burst monotone" `Quick test_more_burst_never_hurts;
    Alcotest.test_case "custom fault list" `Quick test_custom_fault_list;
    Alcotest.test_case "PO observer contribution" `Quick test_without_po_observer;
    Alcotest.test_case "truncation flagged" `Slow test_truncation_flag;
    Alcotest.test_case "bad fault site rejected" `Quick test_bad_fault_site;
  ]
