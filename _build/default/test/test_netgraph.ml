module Netgraph = Ppet_digraph.Netgraph

(* the s27 graph of paper Fig. 2(b): a small multi-pin net structure *)
let diamond () =
  (* 0 -> {1,2}; 1 -> {3}; 2 -> {3}; 3 -> {0} (a loop) *)
  let g = Netgraph.create 4 in
  let e0 = Netgraph.add_net g ~src:0 ~sinks:[ 1; 2 ] in
  let e1 = Netgraph.add_net g ~src:1 ~sinks:[ 3 ] in
  let e2 = Netgraph.add_net g ~src:2 ~sinks:[ 3 ] in
  let e3 = Netgraph.add_net g ~src:3 ~sinks:[ 0 ] in
  (g, e0, e1, e2, e3)

let test_counts () =
  let g, _, _, _, _ = diamond () in
  Alcotest.(check int) "nodes" 4 (Netgraph.n_nodes g);
  Alcotest.(check int) "nets" 4 (Netgraph.n_nets g)

let test_net_access () =
  let g, e0, _, _, _ = diamond () in
  Alcotest.(check int) "src" 0 (Netgraph.net_src g e0);
  Alcotest.(check (array int)) "sinks" [| 1; 2 |] (Netgraph.net_sinks g e0)

let test_out_in_nets () =
  let g, e0, e1, e2, e3 = diamond () in
  Alcotest.(check (array int)) "out of 0" [| e0 |] (Netgraph.out_nets g 0);
  let in3 = Netgraph.in_nets g 3 in
  Array.sort compare in3;
  Alcotest.(check (array int)) "in of 3" [| e1; e2 |] in3;
  Alcotest.(check (array int)) "in of 0" [| e3 |] (Netgraph.in_nets g 0)

let test_successors_predecessors () =
  let g, _, _, _, _ = diamond () in
  Alcotest.(check (array int)) "succ 0" [| 1; 2 |] (Netgraph.successors g 0);
  Alcotest.(check (array int)) "pred 3" [| 1; 2 |] (Netgraph.predecessors g 3);
  Alcotest.(check (array int)) "succ 3" [| 0 |] (Netgraph.successors g 3)

let test_arcs () =
  let g, _, _, _, _ = diamond () in
  Alcotest.(check int) "arc count" 5 (Array.length (Netgraph.arcs g))

let test_multisink_dedup_in_nets () =
  let g = Netgraph.create 2 in
  let e = Netgraph.add_net g ~src:0 ~sinks:[ 1; 1 ] in
  (* the net is listed once in in_nets even though vertex 1 reads twice *)
  Alcotest.(check (array int)) "in nets deduped" [| e |] (Netgraph.in_nets g 1)

let test_self_loop () =
  let g = Netgraph.create 1 in
  let _ = Netgraph.add_net g ~src:0 ~sinks:[ 0 ] in
  Alcotest.(check (array int)) "self succ" [| 0 |] (Netgraph.successors g 0)

let test_add_after_freeze () =
  let g = Netgraph.create 3 in
  let _ = Netgraph.add_net g ~src:0 ~sinks:[ 1 ] in
  ignore (Netgraph.out_nets g 0);
  let _ = Netgraph.add_net g ~src:1 ~sinks:[ 2 ] in
  Alcotest.(check int) "refrozen" 1 (Array.length (Netgraph.out_nets g 1))

let test_bad_vertex () =
  let g = Netgraph.create 2 in
  Alcotest.check_raises "bad source" (Invalid_argument "Netgraph.add_net: bad source")
    (fun () -> ignore (Netgraph.add_net g ~src:5 ~sinks:[ 0 ]));
  Alcotest.check_raises "bad sink" (Invalid_argument "Netgraph.add_net: bad sink")
    (fun () -> ignore (Netgraph.add_net g ~src:0 ~sinks:[ 9 ]));
  Alcotest.check_raises "empty sinks" (Invalid_argument "Netgraph.add_net: empty sink list")
    (fun () -> ignore (Netgraph.add_net g ~src:0 ~sinks:[]))

let test_iter_nets () =
  let g, _, _, _, _ = diamond () in
  let total_pins = ref 0 in
  Netgraph.iter_nets g (fun _ ~src:_ ~sinks -> total_pins := !total_pins + Array.length sinks);
  Alcotest.(check int) "pins" 5 !total_pins

let suite =
  [
    Alcotest.test_case "node and net counts" `Quick test_counts;
    Alcotest.test_case "net accessors" `Quick test_net_access;
    Alcotest.test_case "out/in nets" `Quick test_out_in_nets;
    Alcotest.test_case "successors/predecessors" `Quick test_successors_predecessors;
    Alcotest.test_case "arcs enumerate pins" `Quick test_arcs;
    Alcotest.test_case "in_nets dedups multi-pin sink" `Quick test_multisink_dedup_in_nets;
    Alcotest.test_case "self loop allowed" `Quick test_self_loop;
    Alcotest.test_case "adding after freeze refreezes" `Quick test_add_after_freeze;
    Alcotest.test_case "bad vertices rejected" `Quick test_bad_vertex;
    Alcotest.test_case "iter_nets sees every pin" `Quick test_iter_nets;
  ]
