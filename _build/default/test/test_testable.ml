module Circuit = Ppet_netlist.Circuit
module Gate = Ppet_netlist.Gate
module Generator = Ppet_netlist.Generator
module Simulator = Ppet_bist.Simulator
module Cbit = Ppet_bist.Cbit
module Acell = Ppet_bist.Acell
module Params = Ppet_core.Params
module Merced = Ppet_core.Merced
module Testable = Ppet_core.Testable
module Prng = Ppet_digraph.Prng
module S27 = Ppet_netlist.S27

let s27_testable =
  lazy (Testable.insert (Merced.run ~params:(Params.with_lk 3) (S27.circuit ())))

(* A tiny manual stepper exposing every internal signal: values keyed by
   node id; [force] overrides named signals (the controls). *)
let make_stepper circuit =
  let sim = Simulator.create circuit in
  let dffs = Circuit.dffs circuit in
  let state = Hashtbl.create 32 in
  Array.iter (fun d -> Hashtbl.replace state d 0) dffs;
  let step ~pi_words ~force =
    let values = Array.make (Circuit.size circuit) 0 in
    Array.iteri (fun i p -> values.(p) <- pi_words.(i)) circuit.Circuit.inputs;
    List.iter
      (fun (name, w) -> values.(Circuit.find circuit name) <- w)
      force;
    Array.iter (fun d -> values.(d) <- Hashtbl.find state d) dffs;
    Simulator.eval_all sim values;
    Array.iter
      (fun d ->
        Hashtbl.replace state d
          values.((Circuit.node circuit d).Circuit.fanins.(0)))
      dffs;
    values
  in
  let get_state name = Hashtbl.find state (Circuit.find circuit name) in
  let set_state name v = Hashtbl.replace state (Circuit.find circuit name) v in
  (step, get_state, set_state)

let test_structure () =
  let t = Lazy.force s27_testable in
  Alcotest.(check bool) "has cells" true (Testable.cell_count t > 0);
  Alcotest.(check int) "scan = cells" (Testable.cell_count t)
    (Testable.scan_length t);
  Alcotest.(check bool) "area grew" true (t.Testable.added_area > 0.0);
  List.iter
    (fun (g : Testable.cbit_group) ->
      Alcotest.(check int) "group width" g.Testable.width
        (List.length g.Testable.cell_names))
    t.Testable.groups

let test_namespace_guard () =
  let b = Circuit.Builder.create "clash" in
  Circuit.Builder.add_input b "PPET_X";
  Circuit.Builder.add_gate b ~name:"y" ~kind:Gate.Not ~fanins:[ "PPET_X" ];
  Circuit.Builder.add_output b "y";
  let c = Circuit.Builder.finish b in
  let r = Merced.run ~params:(Params.with_lk 4) c in
  Alcotest.(check bool) "rejected" true
    (try
       ignore (Testable.insert r);
       false
     with Invalid_argument _ -> true)

let normal_mode_equivalent original (t : Testable.t) cycles seed =
  let rng = Prng.create seed in
  let rand_word () =
    Int64.to_int (Int64.logand (Prng.next_int64 rng) (Int64.of_int max_int))
  in
  let step_o, _, _ = make_stepper original in
  let step_t, _, _ = make_stepper t.Testable.circuit in
  let n_pi_o = Array.length original.Circuit.inputs in
  let n_pi_t = Array.length t.Testable.circuit.Circuit.inputs in
  let ok = ref true in
  for _ = 1 to cycles do
    let pi_o = Array.init n_pi_o (fun _ -> rand_word ()) in
    (* the testable circuit's PIs are the originals followed by controls *)
    let pi_t = Array.make n_pi_t 0 in
    Array.blit pi_o 0 pi_t 0 n_pi_o;
    let vo = step_o ~pi_words:pi_o ~force:[] in
    let vt = step_t ~pi_words:pi_t ~force:[] in
    Array.iteri
      (fun k po ->
        let po_t = t.Testable.circuit.Circuit.outputs.(k) in
        if vo.(po) <> vt.(po_t) then ok := false)
      original.Circuit.outputs
  done;
  !ok

let test_normal_mode_s27 () =
  let t = Lazy.force s27_testable in
  Alcotest.(check bool) "bit-identical in normal mode" true
    (normal_mode_equivalent t.Testable.original t 12 5L)

let test_tpg_matches_cbit_model () =
  (* gate-level TPG sequence = the behavioural Cbit in Tpg mode *)
  let t = Lazy.force s27_testable in
  let c = t.Testable.circuit in
  let step, get_state, set_state = make_stepper c in
  let group = List.hd t.Testable.groups in
  let names = Array.of_list group.Testable.cell_names in
  let w = group.Testable.width in
  let model = Cbit.create ~poly:group.Testable.poly ~width:w () in
  Cbit.load model 1;
  Cbit.set_mode model Acell.Tpg;
  (* seed the gate-level cells with the same value *)
  Array.iteri (fun i n -> set_state n (if i = 0 then max_int else 0)) names;
  let n_pi = Array.length c.Circuit.inputs in
  for cycle = 1 to 40 do
    ignore
      (step ~pi_words:(Array.make n_pi 0)
         ~force:
           [ (t.Testable.test_en, max_int); (t.Testable.fb_en, max_int);
             (t.Testable.psa_en, 0); (t.Testable.scan_in, 0) ]);
    ignore (Cbit.clock model ());
    let gate_level = ref 0 in
    Array.iteri
      (fun i n -> if get_state n land 1 = 1 then gate_level := !gate_level lor (1 lsl i))
      names;
    Alcotest.(check int)
      (Printf.sprintf "cycle %d" cycle)
      (Cbit.state model) !gate_level
  done

let test_scan_shifts () =
  let t = Lazy.force s27_testable in
  let c = t.Testable.circuit in
  let step, get_state, _ = make_stepper c in
  let total = Testable.scan_length t in
  let n_pi = Array.length c.Circuit.inputs in
  (* push an alternating serial stream for [total] cycles *)
  let stream = List.init total (fun i -> i mod 2 = 1) in
  List.iter
    (fun bit ->
      ignore
        (step ~pi_words:(Array.make n_pi 0)
           ~force:
             [ (t.Testable.test_en, max_int); (t.Testable.fb_en, 0);
               (t.Testable.psa_en, 0);
               (t.Testable.scan_in, if bit then max_int else 0) ]))
    stream;
  (* the chain content, LSB-of-first-group first, equals the stream with
     the last-pushed bit at the entry point *)
  let chain_names =
    List.concat_map (fun (g : Testable.cbit_group) -> g.Testable.cell_names)
      t.Testable.groups
  in
  let got = List.map (fun n -> get_state n land 1 = 1) chain_names in
  (* bit pushed at time t ends up at position total-t along the chain:
     position k holds stream element total-1-k *)
  let expect = List.rev stream in
  Alcotest.(check (list bool)) "chain content" expect got

let test_psa_folds_data () =
  (* with PSA enabled, the signature differs from autonomous TPG unless
     all arriving data is zero *)
  let t = Lazy.force s27_testable in
  let c = t.Testable.circuit in
  let run psa =
    let step, get_state, set_state = make_stepper c in
    let group = List.hd t.Testable.groups in
    let names = Array.of_list group.Testable.cell_names in
    Array.iteri (fun i n -> set_state n (if i = 0 then max_int else 0)) names;
    let n_pi = Array.length c.Circuit.inputs in
    for _ = 1 to 16 do
      ignore
        (step ~pi_words:(Array.make n_pi max_int)
           ~force:
             [ (t.Testable.test_en, max_int); (t.Testable.fb_en, max_int);
               (t.Testable.psa_en, psa); (t.Testable.scan_in, 0) ])
    done;
    Array.fold_left
      (fun acc n -> (acc lsl 1) lor (get_state n land 1))
      0 names
  in
  Alcotest.(check bool) "psa changes the signature" true (run max_int <> run 0)

let test_overhead_within_model_range () =
  let t = Lazy.force s27_testable in
  let per_cell = Testable.measured_overhead_per_cell t in
  (* The paper's model prices cells between 9 (converted) and 23
     (fresh + mux) units; our netlist spells out the mode decoding the
     3-gate A_CELL of Fig. 3(a) leaves implicit, measuring ~34-44 on
     small designs (fixed per-group gates amortise poorly on s27's three
     cells). EXPERIMENTS.md discusses the gap. *)
  Alcotest.(check bool)
    (Printf.sprintf "per-cell overhead %.1f in [6, 50]" per_cell)
    true
    (per_cell >= 6.0 && per_cell <= 50.0)

let test_no_cut_nets_degenerate () =
  (* a circuit whose partitioning needs no cuts gets only the controls *)
  let c = S27.circuit () in
  let r = Merced.run ~params:(Params.with_lk 16) c in
  let t = Testable.insert r in
  Alcotest.(check int) "no cells" 0 (Testable.cell_count t);
  Alcotest.(check int) "four new PIs" 4
    (Array.length t.Testable.circuit.Circuit.inputs
     - Array.length c.Circuit.inputs)

let prop_normal_mode_random =
  QCheck.Test.make ~name:"insertion preserves normal-mode behaviour" ~count:12
    QCheck.(int_bound 100_000)
    (fun seed ->
      let c =
        Generator.small_random ~seed:(Int64.of_int (seed + 87)) ~n_pi:5
          ~n_dff:6 ~n_gates:40
      in
      let r = Merced.run ~params:(Params.with_lk 5) c in
      let t = Testable.insert r in
      normal_mode_equivalent c t 8 (Int64.of_int (seed * 7)))

let suite =
  [
    Alcotest.test_case "structure" `Quick test_structure;
    Alcotest.test_case "namespace guard" `Quick test_namespace_guard;
    Alcotest.test_case "normal mode bit-identical (s27)" `Quick test_normal_mode_s27;
    Alcotest.test_case "TPG = behavioural CBIT" `Quick test_tpg_matches_cbit_model;
    Alcotest.test_case "scan chain shifts" `Quick test_scan_shifts;
    Alcotest.test_case "PSA folds responses" `Quick test_psa_folds_data;
    Alcotest.test_case "overhead within model range" `Quick test_overhead_within_model_range;
    Alcotest.test_case "degenerate: no cuts" `Quick test_no_cut_nets_degenerate;
    QCheck_alcotest.to_alcotest prop_normal_mode_random;
  ]
