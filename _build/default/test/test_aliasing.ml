module Aliasing = Ppet_bist.Aliasing

let test_probability () =
  Alcotest.(check (float 1e-12)) "2^-8" (1.0 /. 256.0) (Aliasing.probability ~width:8);
  Alcotest.(check (float 1e-12)) "2^-16" (1.0 /. 65536.0) (Aliasing.probability ~width:16)

let test_finite_edges () =
  Alcotest.(check (float 1e-12)) "no words" 1.0
    (Aliasing.probability_finite ~width:8 ~cycles:0);
  Alcotest.(check (float 1e-12)) "one word" 0.0
    (Aliasing.probability_finite ~width:8 ~cycles:1)

let test_finite_small_exact () =
  (* width 1, 2 words: streams 01,10,11; aliasing (nonzero -> 0): 11
     compresses to shift(1) xor 1 = 1 xor 1 = 0 -> 1 of 3 *)
  Alcotest.(check (float 1e-12)) "k=1 m=2" (1.0 /. 3.0)
    (Aliasing.probability_finite ~width:1 ~cycles:2)

let test_finite_tends_to_asymptotic () =
  let p = Aliasing.probability_finite ~width:8 ~cycles:1000 in
  Alcotest.(check (float 1e-6)) "converges" (Aliasing.probability ~width:8) p;
  Alcotest.(check bool) "from below" true (p <= Aliasing.probability ~width:8)

let test_monte_carlo_agrees () =
  let measured =
    Aliasing.escape_rate ~width:6 ~trials:60_000 ~seed:11L ~burst:20
  in
  let expect = Aliasing.probability ~width:6 in
  Alcotest.(check bool)
    (Printf.sprintf "measured %.5f vs %.5f" measured expect)
    true
    (abs_float (measured -. expect) < 0.006)

let test_recommended_width () =
  (* union bound: 100 segments below 1e-4 needs 2^-w <= 1e-6: w = 20 *)
  Alcotest.(check int) "width" 20
    (Aliasing.recommended_width ~segments:100 ~target:1e-4);
  Alcotest.(check int) "one segment 1%" 7
    (Aliasing.recommended_width ~segments:1 ~target:0.01);
  Alcotest.(check bool) "unreachable" true
    (try
       ignore (Aliasing.recommended_width ~segments:1 ~target:1e-12);
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "asymptotic probability" `Quick test_probability;
    Alcotest.test_case "finite stream edges" `Quick test_finite_edges;
    Alcotest.test_case "finite small exact" `Quick test_finite_small_exact;
    Alcotest.test_case "finite tends to 2^-k" `Quick test_finite_tends_to_asymptotic;
    Alcotest.test_case "Monte-Carlo agrees" `Slow test_monte_carlo_agrees;
    Alcotest.test_case "recommended width" `Quick test_recommended_width;
  ]
