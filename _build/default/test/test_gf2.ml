module P = Ppet_bist.Gf2_poly

let test_degree () =
  Alcotest.(check int) "x^4+x+1" 4 (P.degree 0b10011);
  Alcotest.(check int) "x+1" 1 (P.degree 0b11);
  Alcotest.(check int) "1" 0 (P.degree 1)

let test_taps () =
  Alcotest.(check (list int)) "taps" [ 4; 1; 0 ] (P.taps 0b10011)

let test_mul_mod () =
  (* x * x = x^2 mod x^2+x+1 = x+1 *)
  Alcotest.(check int) "x*x mod x2+x+1" 0b11 (P.mul_mod 2 2 ~modulus:0b111);
  (* (x+1)^2 = x^2+1 mod x^2+x+1 = x *)
  Alcotest.(check int) "(x+1)^2" 0b10 (P.mul_mod 3 3 ~modulus:0b111)

let test_pow_mod () =
  (* order of x modulo x^4+x+1 is 15: x^15 = 1, x^5 <> 1 *)
  Alcotest.(check int) "x^15 = 1" 1 (P.pow_mod 2 15L ~modulus:0b10011);
  Alcotest.(check bool) "x^5 <> 1" true (P.pow_mod 2 5L ~modulus:0b10011 <> 1);
  Alcotest.(check int) "x^0 = 1" 1 (P.pow_mod 2 0L ~modulus:0b10011)

let test_irreducible () =
  Alcotest.(check bool) "x^2+x+1" true (P.is_irreducible 0b111);
  Alcotest.(check bool) "x^2+1 = (x+1)^2" false (P.is_irreducible 0b101);
  Alcotest.(check bool) "x^4+x+1" true (P.is_irreducible 0b10011);
  (* x^4+x^2+1 = (x^2+x+1)^2 *)
  Alcotest.(check bool) "x^4+x^2+1" false (P.is_irreducible 0b10101)

let test_primitive_vs_irreducible () =
  (* x^4+x^3+x^2+x+1 is irreducible but has order 5, not 15 *)
  Alcotest.(check bool) "irreducible" true (P.is_irreducible 0b11111);
  Alcotest.(check bool) "not primitive" false (P.is_primitive 0b11111);
  Alcotest.(check bool) "x^4+x+1 primitive" true (P.is_primitive 0b10011)

let test_table_all_primitive () =
  (* the embedded table self-checks against the mathematical test *)
  for n = 1 to 32 do
    let p = P.primitive n in
    Alcotest.(check int) (Printf.sprintf "degree %d" n) n (P.degree p);
    Alcotest.(check bool) (Printf.sprintf "primitive %d" n) true (P.is_primitive p)
  done

let test_primitive_out_of_range () =
  Alcotest.check_raises "zero" (Invalid_argument "Gf2_poly.primitive: degree must be in 1..32")
    (fun () -> ignore (P.primitive 0));
  Alcotest.check_raises "33" (Invalid_argument "Gf2_poly.primitive: degree must be in 1..32")
    (fun () -> ignore (P.primitive 33))

let test_pp () =
  Alcotest.(check string) "pretty" "x^4 + x + 1"
    (Format.asprintf "%a" P.pp 0b10011)

let prop_mul_commutative =
  QCheck.Test.make ~name:"mul_mod is commutative and associative" ~count:300
    QCheck.(triple (int_range 1 0xFFFF) (int_range 1 0xFFFF) (int_range 1 0xFFFF))
    (fun (a, b, c) ->
      let m = P.primitive 16 in
      P.mul_mod a b ~modulus:m = P.mul_mod b a ~modulus:m
      && P.mul_mod (P.mul_mod a b ~modulus:m) c ~modulus:m
         = P.mul_mod a (P.mul_mod b c ~modulus:m) ~modulus:m)

let prop_distributive =
  QCheck.Test.make ~name:"mul_mod distributes over xor" ~count:300
    QCheck.(pair (int_range 1 0xFFF) (int_range 1 0xFFF))
    (fun (a, b) ->
      let m = P.primitive 12 in
      let c = 0b1011 in
      P.mul_mod c (a lxor b) ~modulus:m
      = P.mul_mod c a ~modulus:m lxor P.mul_mod c b ~modulus:m)

let suite =
  [
    Alcotest.test_case "degree" `Quick test_degree;
    Alcotest.test_case "taps" `Quick test_taps;
    Alcotest.test_case "modular multiplication" `Quick test_mul_mod;
    Alcotest.test_case "modular power" `Quick test_pow_mod;
    Alcotest.test_case "irreducibility" `Quick test_irreducible;
    Alcotest.test_case "primitive vs merely irreducible" `Quick test_primitive_vs_irreducible;
    Alcotest.test_case "table is primitive (1..32)" `Slow test_table_all_primitive;
    Alcotest.test_case "primitive range check" `Quick test_primitive_out_of_range;
    Alcotest.test_case "pretty printing" `Quick test_pp;
    QCheck_alcotest.to_alcotest prop_mul_commutative;
    QCheck_alcotest.to_alcotest prop_distributive;
  ]
