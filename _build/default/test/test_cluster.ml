module Cluster = Ppet_core.Cluster
module Flow = Ppet_core.Flow
module Params = Ppet_core.Params
module Netgraph = Ppet_digraph.Netgraph
module Prng = Ppet_digraph.Prng
module Circuit = Ppet_netlist.Circuit
module To_graph = Ppet_netlist.To_graph
module Scc_budget = Ppet_retiming.Scc_budget
module Generator = Ppet_netlist.Generator
module S27 = Ppet_netlist.S27

let setup ?(l_k = 3) ?(beta = 50) c =
  let g = To_graph.partition_view c in
  let sb = Scc_budget.create c g in
  let params = { Params.default with Params.l_k; beta } in
  let flow = Flow.saturate g params (Prng.create 2L) in
  (g, sb, params, flow)

let test_s27_clusters_respect_lk () =
  let c = S27.circuit () in
  let g, sb, params, flow = setup c in
  let t = Cluster.make_group c g sb flow params in
  List.iter
    (fun cl ->
      if not cl.Cluster.oversize then
        Alcotest.(check bool) "iota <= l_k" true
          (cl.Cluster.input_count <= params.Params.l_k))
    t.Cluster.clusters

let test_clusters_partition_vertices () =
  let c = S27.circuit () in
  let g, sb, params, flow = setup c in
  let t = Cluster.make_group c g sb flow params in
  let seen = Array.make (Netgraph.n_nodes g) 0 in
  List.iter
    (fun cl -> Array.iter (fun v -> seen.(v) <- seen.(v) + 1) cl.Cluster.vertices)
    t.Cluster.clusters;
  Alcotest.(check bool) "each vertex once" true (Array.for_all (fun k -> k = 1) seen);
  Array.iteri
    (fun v cl -> Alcotest.(check bool) (Printf.sprintf "cluster_of %d" v) true (cl >= 0))
    t.Cluster.cluster_of

let test_sorted_descending () =
  let c = S27.circuit () in
  let g, sb, params, flow = setup c in
  let t = Cluster.make_group c g sb flow params in
  let rec desc = function
    | a :: (b :: _ as tl) ->
      a.Cluster.input_count >= b.Cluster.input_count && desc tl
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "sorted" true (desc t.Cluster.clusters)

let test_input_count_of () =
  let c = S27.circuit () in
  let g = To_graph.partition_view c in
  (* single vertex G8 = AND(G14, G6): 2 entering nets, no PI *)
  let vs = [| Circuit.find c "G8" |] in
  let inside v = v = Circuit.find c "G8" in
  Alcotest.(check int) "iota" 2 (Cluster.input_count_of c g ~inside vs);
  (* PI alone counts itself *)
  let pi = Circuit.find c "G0" in
  Alcotest.(check int) "pi iota" 1
    (Cluster.input_count_of c g ~inside:(fun v -> v = pi) [| pi |])

let test_beta_one_limits_scc_cuts () =
  (* with beta = 1, at most f(scc) nets of each loop may be removed *)
  let c = Generator.small_random ~seed:5L ~n_pi:4 ~n_dff:6 ~n_gates:40 in
  let g, sb, _, _ = setup c in
  let params = { Params.default with Params.l_k = 4; Params.beta = 1 } in
  let flow = Flow.saturate g params (Prng.create 2L) in
  let t = Cluster.make_group c g sb flow params in
  Array.iteri
    (fun comp used ->
      if Scc_budget.is_loop sb comp then
        Alcotest.(check bool)
          (Printf.sprintf "scc %d within budget" comp)
          true
          (used <= params.Params.beta * Scc_budget.registers sb comp))
    t.Cluster.cuts_used

let test_forced_nets_uncut () =
  let c = Generator.small_random ~seed:5L ~n_pi:4 ~n_dff:6 ~n_gates:40 in
  let g, sb, _, _ = setup c in
  let params = { Params.default with Params.l_k = 4; Params.beta = 1 } in
  let flow = Flow.saturate g params (Prng.create 2L) in
  let t = Cluster.make_group c g sb flow params in
  Array.iteri
    (fun e forced ->
      if forced then
        Alcotest.(check bool) "forced nets not removed" false t.Cluster.removed.(e))
    t.Cluster.forced_kept

let test_cut_nets_cross_clusters () =
  let c = S27.circuit () in
  let g, sb, params, flow = setup c in
  let t = Cluster.make_group c g sb flow params in
  List.iter
    (fun e ->
      let src = Netgraph.net_src g e in
      let crosses =
        Array.exists
          (fun v -> t.Cluster.cluster_of.(v) <> t.Cluster.cluster_of.(src))
          (Netgraph.net_sinks g e)
      in
      Alcotest.(check bool) "cut crosses" true crosses)
    (Cluster.cut_nets t g)

let test_lk_large_single_cluster () =
  (* l_k above the whole circuit's iota: nothing needs cutting. Make_Group
     may still pre-split at the top congestion boundary (the paper's
     STEP 4 runs unconditionally); Assign_CBIT's merging heals it, so the
     end-to-end pipeline reports no cuts. *)
  let c = S27.circuit () in
  let r = Ppet_core.Merced.run ~params:(Params.with_lk 16) c in
  Alcotest.(check int) "no cuts after merging" 0
    (List.length r.Ppet_core.Merced.assignment.Ppet_core.Assign.cut_nets)

let prop_constraint_holds =
  QCheck.Test.make ~name:"clusters satisfy the input constraint" ~count:20
    QCheck.(pair (int_bound 10_000) (int_range 4 10))
    (fun (seed, l_k) ->
      let c =
        Generator.small_random ~seed:(Int64.of_int (seed + 31)) ~n_pi:6
          ~n_dff:5 ~n_gates:50
      in
      let g = To_graph.partition_view c in
      let sb = Scc_budget.create c g in
      let params = { Params.default with Params.l_k } in
      let flow = Flow.saturate g params (Prng.create (Int64.of_int seed)) in
      let t = Cluster.make_group c g sb flow params in
      List.for_all
        (fun cl ->
          cl.Cluster.oversize || cl.Cluster.input_count <= l_k)
        t.Cluster.clusters)

let suite =
  [
    Alcotest.test_case "clusters respect l_k" `Quick test_s27_clusters_respect_lk;
    Alcotest.test_case "clusters partition V" `Quick test_clusters_partition_vertices;
    Alcotest.test_case "sorted by iota descending" `Quick test_sorted_descending;
    Alcotest.test_case "input_count_of" `Quick test_input_count_of;
    Alcotest.test_case "beta=1 limits SCC cuts (Eq. 6)" `Quick test_beta_one_limits_scc_cuts;
    Alcotest.test_case "forced nets stay" `Quick test_forced_nets_uncut;
    Alcotest.test_case "cut nets cross clusters" `Quick test_cut_nets_cross_clusters;
    Alcotest.test_case "large l_k needs no cuts" `Quick test_lk_large_single_cluster;
    QCheck_alcotest.to_alcotest prop_constraint_holds;
  ]

(* appended: the lock option of Table 5 *)
let test_locked_cluster_preserved () =
  let c = S27.circuit () in
  let ids = [ Circuit.find c "G8"; Circuit.find c "G15"; Circuit.find c "G16" ] in
  let locked v = List.mem v ids in
  let g, sb, params, flow = setup c in
  let t = Cluster.make_group ~locked c g sb flow params in
  let locked_clusters =
    List.filter (fun cl -> cl.Cluster.locked) t.Cluster.clusters
  in
  Alcotest.(check int) "one locked cluster" 1 (List.length locked_clusters);
  (match locked_clusters with
   | [ cl ] ->
     let vs = Array.to_list cl.Cluster.vertices in
     Alcotest.(check (list int)) "exactly the locked ids"
       (List.sort compare ids) (List.sort compare vs)
   | _ -> Alcotest.fail "unexpected");
  (* the free clusters never contain locked vertices *)
  List.iter
    (fun cl ->
      if not cl.Cluster.locked then
        Array.iter
          (fun v -> Alcotest.(check bool) "free of locks" false (locked v))
          cl.Cluster.vertices)
    t.Cluster.clusters

let test_locked_survives_assign () =
  let c = S27.circuit () in
  let ids = [ Circuit.find c "G8"; Circuit.find c "G15" ] in
  let r =
    Ppet_core.Merced.run ~params:(Params.with_lk 3)
      ~locked:(fun v -> List.mem v ids)
      c
  in
  let locked_parts =
    List.filter
      (fun (p : Ppet_core.Assign.partition) -> p.Ppet_core.Assign.locked)
      r.Ppet_core.Merced.assignment.Ppet_core.Assign.partitions
  in
  Alcotest.(check int) "locked partition kept" 1 (List.length locked_parts);
  (match locked_parts with
   | [ p ] ->
     Alcotest.(check int) "unmerged" 2 (Array.length p.Ppet_core.Assign.vertices)
   | _ -> Alcotest.fail "unexpected")

let suite =
  suite
  @ [
      Alcotest.test_case "locked cluster preserved" `Quick test_locked_cluster_preserved;
      Alcotest.test_case "locked survives Assign_CBIT" `Quick test_locked_survives_assign;
    ]
