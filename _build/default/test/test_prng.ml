module Prng = Ppet_digraph.Prng

let test_deterministic () =
  let a = Prng.create 42L and b = Prng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_different_seeds () =
  let a = Prng.create 1L and b = Prng.create 2L in
  let xs = List.init 16 (fun _ -> Prng.next_int64 a) in
  let ys = List.init 16 (fun _ -> Prng.next_int64 b) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_copy_independent () =
  let a = Prng.create 7L in
  ignore (Prng.next_int64 a);
  let b = Prng.copy a in
  Alcotest.(check int64) "copy continues identically" (Prng.next_int64 a)
    (Prng.next_int64 b)

let test_int_bounds () =
  let g = Prng.create 9L in
  for _ = 1 to 1000 do
    let v = Prng.int g 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_int_bad_bound () =
  let g = Prng.create 9L in
  Alcotest.check_raises "zero bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int g 0))

let test_float_bounds () =
  let g = Prng.create 11L in
  for _ = 1 to 1000 do
    let v = Prng.float g 2.5 in
    Alcotest.(check bool) "in range" true (v >= 0.0 && v < 2.5)
  done

let test_int_covers_values () =
  let g = Prng.create 3L in
  let seen = Array.make 4 false in
  for _ = 1 to 200 do
    seen.(Prng.int g 4) <- true
  done;
  Alcotest.(check bool) "all residues hit" true (Array.for_all (fun b -> b) seen)

let test_bool_mixes () =
  let g = Prng.create 5L in
  let trues = ref 0 in
  for _ = 1 to 1000 do
    if Prng.bool g then incr trues
  done;
  Alcotest.(check bool) "roughly balanced" true (!trues > 350 && !trues < 650)

let test_shuffle_permutation () =
  let g = Prng.create 13L in
  let a = Array.init 50 (fun i -> i) in
  Prng.shuffle g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 (fun i -> i)) sorted

let test_pick_member () =
  let g = Prng.create 17L in
  let a = [| 3; 5; 7 |] in
  for _ = 1 to 50 do
    let v = Prng.pick g a in
    Alcotest.(check bool) "member" true (Array.exists (fun x -> x = v) a)
  done

let test_pick_empty () =
  let g = Prng.create 17L in
  Alcotest.check_raises "empty" (Invalid_argument "Prng.pick: empty array")
    (fun () -> ignore (Prng.pick g [||]))

let suite =
  [
    Alcotest.test_case "deterministic stream" `Quick test_deterministic;
    Alcotest.test_case "seeds differ" `Quick test_different_seeds;
    Alcotest.test_case "copy is independent" `Quick test_copy_independent;
    Alcotest.test_case "int within bounds" `Quick test_int_bounds;
    Alcotest.test_case "int rejects bad bound" `Quick test_int_bad_bound;
    Alcotest.test_case "float within bounds" `Quick test_float_bounds;
    Alcotest.test_case "int covers all residues" `Quick test_int_covers_values;
    Alcotest.test_case "bool is balanced" `Quick test_bool_mixes;
    Alcotest.test_case "shuffle permutes" `Quick test_shuffle_permutation;
    Alcotest.test_case "pick returns member" `Quick test_pick_member;
    Alcotest.test_case "pick rejects empty" `Quick test_pick_empty;
  ]
