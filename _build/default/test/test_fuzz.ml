(* Robustness fuzzing: the parsers must either succeed or fail with
   [Circuit.Error] — never crash with any other exception — on arbitrary
   input, including mutations of valid netlists. *)

module Circuit = Ppet_netlist.Circuit
module Bench_parser = Ppet_netlist.Bench_parser
module Verilog = Ppet_netlist.Verilog
module Prng = Ppet_digraph.Prng

let graceful f src =
  match f src with
  | (_ : Circuit.t) -> true
  | exception Circuit.Error _ -> true
  | exception _ -> false

let token_soup rng len =
  let pieces =
    [| "INPUT"; "OUTPUT"; "AND"; "DFF"; "="; "("; ")"; ","; "G1"; "G2"; "\n";
       " "; "#x"; "module"; "endmodule"; "input"; "output"; "wire"; "nand";
       ";"; "\\esc "; "//c\n"; "/*"; "*/"; "99"; "_a" |]
  in
  let buf = Buffer.create 64 in
  for _ = 1 to len do
    Buffer.add_string buf (Prng.pick rng pieces)
  done;
  Buffer.contents buf

let mutate rng src =
  let b = Bytes.of_string src in
  let n = Bytes.length b in
  if n = 0 then src
  else begin
    for _ = 1 to 1 + Prng.int rng 5 do
      let i = Prng.int rng n in
      let c = Char.chr (32 + Prng.int rng 95) in
      Bytes.set b i c
    done;
    Bytes.to_string b
  end

let prop_bench_soup =
  QCheck.Test.make ~name:"bench parser survives token soup" ~count:300
    QCheck.(pair (int_bound 1_000_000) (int_range 1 60))
    (fun (seed, len) ->
      let rng = Prng.create (Int64.of_int (seed + 1)) in
      graceful (Bench_parser.parse_string ?title:None ?file:None) (token_soup rng len))

let prop_bench_mutations =
  QCheck.Test.make ~name:"bench parser survives mutations of s27" ~count:300
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Prng.create (Int64.of_int (seed + 7)) in
      graceful (Bench_parser.parse_string ?title:None ?file:None)
        (mutate rng Ppet_netlist.S27.text))

let prop_verilog_soup =
  QCheck.Test.make ~name:"verilog parser survives token soup" ~count:300
    QCheck.(pair (int_bound 1_000_000) (int_range 1 60))
    (fun (seed, len) ->
      let rng = Prng.create (Int64.of_int (seed + 13)) in
      graceful (Verilog.parse_string ?file:None) (token_soup rng len))

let prop_verilog_mutations =
  QCheck.Test.make ~name:"verilog parser survives mutations" ~count:300
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Prng.create (Int64.of_int (seed + 23)) in
      let valid = Verilog.to_string (Ppet_netlist.S27.circuit ()) in
      graceful (Verilog.parse_string ?file:None) (mutate rng valid))

let test_pathological_inputs () =
  List.iter
    (fun src ->
      Alcotest.(check bool) ("bench: " ^ String.escaped src) true
        (graceful (Bench_parser.parse_string ?title:None ?file:None) src);
      Alcotest.(check bool) ("verilog: " ^ String.escaped src) true
        (graceful (Verilog.parse_string ?file:None) src))
    [
      "";
      "(";
      "\\";
      "module";
      "module ;";
      "INPUT(";
      "a = AND(a, a)";
      String.make 10_000 '(';
      "G0 = DFF(G0)";
      "module m (a; input a; endmodule";
      "/*";
      "# only a comment";
    ]

let suite =
  [
    QCheck_alcotest.to_alcotest prop_bench_soup;
    QCheck_alcotest.to_alcotest prop_bench_mutations;
    QCheck_alcotest.to_alcotest prop_verilog_soup;
    QCheck_alcotest.to_alcotest prop_verilog_mutations;
    Alcotest.test_case "pathological inputs" `Quick test_pathological_inputs;
  ]
