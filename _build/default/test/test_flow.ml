module Flow = Ppet_core.Flow
module Params = Ppet_core.Params
module Netgraph = Ppet_digraph.Netgraph
module Prng = Ppet_digraph.Prng
module To_graph = Ppet_netlist.To_graph
module S27 = Ppet_netlist.S27

let params = { Params.default with Params.l_k = 3 }

let test_all_visited () =
  let g = To_graph.partition_view (S27.circuit ()) in
  let r = Flow.saturate g params (Prng.create 1L) in
  Array.iteri
    (fun v n ->
      Alcotest.(check bool)
        (Printf.sprintf "vertex %d visited" v)
        true
        (n > params.Params.min_visit))
    r.Flow.visits

let test_distances_positive () =
  let g = To_graph.partition_view (S27.circuit ()) in
  let r = Flow.saturate g params (Prng.create 1L) in
  Array.iter
    (fun d -> Alcotest.(check bool) "d >= 1" true (d >= 1.0))
    r.Flow.distance

let test_deterministic () =
  let g = To_graph.partition_view (S27.circuit ()) in
  let a = Flow.saturate g params (Prng.create 7L) in
  let b = Flow.saturate g params (Prng.create 7L) in
  Alcotest.(check bool) "same distances" true (a.Flow.distance = b.Flow.distance);
  let c = Flow.saturate g params (Prng.create 8L) in
  Alcotest.(check bool) "different seed differs" true (a.Flow.distance <> c.Flow.distance)

let test_distance_flow_relation () =
  let g = To_graph.partition_view (S27.circuit ()) in
  let r = Flow.saturate g params (Prng.create 3L) in
  Array.iteri
    (fun e f ->
      let expect = exp (params.Params.alpha *. f /. params.Params.capacity) in
      Alcotest.(check (float 1e-9)) "d = exp(alpha f / b)" expect r.Flow.distance.(e))
    r.Flow.flow

let test_scc_nets_congested () =
  (* the paper's Fig. 5 observation: loop nets absorb more flow *)
  let c = S27.circuit () in
  let g = To_graph.partition_view c in
  let sb = Ppet_retiming.Scc_budget.create c g in
  let r = Flow.saturate g params (Prng.create 5L) in
  let loop_flow = ref 0.0 and loop_n = ref 0 in
  let other_flow = ref 0.0 and other_n = ref 0 in
  for e = 0 to Netgraph.n_nets g - 1 do
    match Ppet_retiming.Scc_budget.net_scc sb e with
    | Some _ ->
      loop_flow := !loop_flow +. r.Flow.flow.(e);
      incr loop_n
    | None ->
      other_flow := !other_flow +. r.Flow.flow.(e);
      incr other_n
  done;
  let avg_loop = !loop_flow /. float_of_int !loop_n in
  let avg_other = !other_flow /. float_of_int !other_n in
  Alcotest.(check bool) "loops more congested" true (avg_loop > avg_other)

let test_boundaries_sorted () =
  let g = To_graph.partition_view (S27.circuit ()) in
  let r = Flow.saturate g params (Prng.create 1L) in
  let bs = Flow.boundaries r in
  let rec descending = function
    | a :: (b :: _ as tl) -> a > b && descending tl
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "strictly descending" true (descending bs);
  Alcotest.(check bool) "non-empty" true (bs <> [])

let test_max_iterations_cap () =
  let g = To_graph.partition_view (S27.circuit ()) in
  let p = { params with Params.max_iterations = 3 } in
  let r = Flow.saturate g p (Prng.create 1L) in
  Alcotest.(check int) "capped" 3 r.Flow.iterations

let test_empty_graph () =
  let g = Netgraph.create 0 in
  let r = Flow.saturate g params (Prng.create 1L) in
  Alcotest.(check int) "no iterations" 0 r.Flow.iterations

let test_invalid_params () =
  let g = To_graph.partition_view (S27.circuit ()) in
  let p = { params with Params.delta = -1.0 } in
  Alcotest.(check bool) "rejected" true
    (try
       ignore (Flow.saturate g p (Prng.create 1L));
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "every vertex sampled" `Quick test_all_visited;
    Alcotest.test_case "distances at least 1" `Quick test_distances_positive;
    Alcotest.test_case "deterministic per seed" `Quick test_deterministic;
    Alcotest.test_case "distance = exp(alpha f/b)" `Quick test_distance_flow_relation;
    Alcotest.test_case "SCC nets congested (Fig. 5)" `Quick test_scc_nets_congested;
    Alcotest.test_case "boundary stack sorted" `Quick test_boundaries_sorted;
    Alcotest.test_case "iteration cap" `Quick test_max_iterations_cap;
    Alcotest.test_case "empty graph" `Quick test_empty_graph;
    Alcotest.test_case "invalid params rejected" `Quick test_invalid_params;
  ]
