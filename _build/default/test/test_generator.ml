module Circuit = Ppet_netlist.Circuit
module Gate = Ppet_netlist.Gate
module Stats = Ppet_netlist.Stats
module Generator = Ppet_netlist.Generator
module Benchmarks = Ppet_netlist.Benchmarks
module To_graph = Ppet_netlist.To_graph
module Components = Ppet_digraph.Components
module Scc_budget = Ppet_retiming.Scc_budget

let profile name n_pi n_dff n_gates n_inv dff_on_scc area =
  {
    Generator.name;
    n_pi;
    n_dff;
    n_gates;
    n_inv;
    dff_on_scc;
    area_target = area;
  }

let test_exact_counts () =
  let c = Generator.generate (profile "t1" 10 8 120 30 4 None) in
  let s = Stats.of_circuit c in
  Alcotest.(check int) "pis" 10 s.Stats.n_pi;
  Alcotest.(check int) "dffs" 8 s.Stats.n_dff;
  Alcotest.(check int) "gates" 120 s.Stats.n_gates;
  Alcotest.(check int) "invs" 30 s.Stats.n_inv

let test_deterministic () =
  let p = profile "t2" 6 4 60 10 2 None in
  let a = Ppet_netlist.Bench_writer.to_string (Generator.generate ~seed:9L p) in
  let b = Ppet_netlist.Bench_writer.to_string (Generator.generate ~seed:9L p) in
  Alcotest.(check string) "same output" a b;
  let c = Ppet_netlist.Bench_writer.to_string (Generator.generate ~seed:10L p) in
  Alcotest.(check bool) "different seed differs" true (a <> c)

let test_dff_on_scc_exact () =
  let c = Generator.generate (profile "t3" 8 20 200 40 12 None) in
  let g = To_graph.partition_view c in
  let sb = Scc_budget.create c g in
  Alcotest.(check int) "dffs on scc" 12 (Scc_budget.dffs_on_scc sb)

let test_no_scc_when_zero () =
  let c = Generator.generate (profile "t4" 8 10 150 30 0 None) in
  let g = To_graph.partition_view c in
  let sb = Scc_budget.create c g in
  Alcotest.(check int) "feed-forward only" 0 (Scc_budget.dffs_on_scc sb)

let test_all_on_scc () =
  let c = Generator.generate (profile "t5" 4 15 150 30 15 None) in
  let g = To_graph.partition_view c in
  let sb = Scc_budget.create c g in
  Alcotest.(check int) "all looping" 15 (Scc_budget.dffs_on_scc sb)

let test_area_tracking () =
  let target = 1200.0 in
  let c = Generator.generate (profile "t6" 10 10 200 50 5 (Some target)) in
  let err = abs_float (Circuit.area c -. target) /. target in
  Alcotest.(check bool) "within 5%" true (err < 0.05)

let test_connected () =
  let c = Generator.generate (profile "t7" 12 10 300 60 5 None) in
  let g = To_graph.partition_view c in
  let p = Components.weak g ~keep:(fun _ -> true) in
  Alcotest.(check int) "one weak component" 1 p.Components.count

let test_every_pi_read () =
  let c = Generator.generate (profile "t8" 20 10 300 60 5 None) in
  Array.iter
    (fun pi ->
      Alcotest.(check bool)
        ((Circuit.node c pi).Circuit.name ^ " read")
        true
        (Array.length c.Circuit.fanouts.(pi) > 0))
    c.Circuit.inputs

let test_rejects_bad_profiles () =
  Alcotest.(check bool) "dff_on_scc too large" true
    (try
       ignore (Generator.generate (profile "bad" 2 3 10 2 5 None));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "no sources" true
    (try
       ignore (Generator.generate (profile "bad2" 0 0 10 2 0 None));
       false
     with Invalid_argument _ -> true)

let test_has_outputs () =
  let c = Generator.generate (profile "t9" 5 5 80 10 2 None) in
  Alcotest.(check bool) "some POs" true (Array.length c.Circuit.outputs > 0)

let test_benchmark_registry_counts () =
  Alcotest.(check int) "seventeen entries" 17 (List.length Benchmarks.all);
  let e = Benchmarks.find "s5378" in
  Alcotest.(check int) "pis" 35 e.Benchmarks.profile.Generator.n_pi;
  Alcotest.(check int) "dffs" 179 e.Benchmarks.profile.Generator.n_dff;
  Alcotest.(check bool) "missing raises" true
    (try
       ignore (Benchmarks.find "s9999");
       false
     with Not_found -> true)

let test_benchmark_matches_table9 () =
  (* every registry circuit reproduces its published statistics *)
  List.iter
    (fun name ->
      let e = Benchmarks.find name in
      let c = Benchmarks.circuit name in
      let s = Stats.of_circuit c in
      let p = e.Benchmarks.profile in
      Alcotest.(check int) (name ^ " pis") p.Generator.n_pi s.Stats.n_pi;
      Alcotest.(check int) (name ^ " dffs") p.Generator.n_dff s.Stats.n_dff;
      Alcotest.(check int) (name ^ " gates") p.Generator.n_gates s.Stats.n_gates;
      Alcotest.(check int) (name ^ " invs") p.Generator.n_inv s.Stats.n_inv;
      let err =
        abs_float (s.Stats.area -. e.Benchmarks.paper_area)
        /. e.Benchmarks.paper_area
      in
      Alcotest.(check bool) (name ^ " area within 3%") true (err < 0.03))
    Benchmarks.small

let test_benchmark_caching () =
  let a = Benchmarks.circuit "s510" and b = Benchmarks.circuit "s510" in
  Alcotest.(check bool) "cached (physically equal)" true (a == b)

let test_stats_row_format () =
  let s = Stats.of_circuit (Ppet_netlist.S27.circuit ()) in
  Alcotest.(check bool) "row mentions title" true
    (String.length (Stats.row s) > 10);
  Alcotest.(check bool) "header nonempty" true (String.length Stats.header > 10)

let prop_generated_valid =
  QCheck.Test.make ~name:"random profiles produce valid circuits" ~count:25
    QCheck.(quad (int_range 1 12) (int_bound 12) (int_range 5 80) (int_bound 20))
    (fun (n_pi, n_dff, n_gates, n_inv) ->
      let c =
        Generator.generate
          (profile
             (Printf.sprintf "q%d-%d-%d-%d" n_pi n_dff n_gates n_inv)
             n_pi n_dff n_gates n_inv (n_dff / 2) None)
      in
      let s = Stats.of_circuit c in
      s.Stats.n_pi = n_pi && s.Stats.n_dff = n_dff
      && s.Stats.n_gates = n_gates && s.Stats.n_inv = n_inv)

let suite =
  [
    Alcotest.test_case "exact structural counts" `Quick test_exact_counts;
    Alcotest.test_case "deterministic per seed" `Quick test_deterministic;
    Alcotest.test_case "dff_on_scc is exact" `Quick test_dff_on_scc_exact;
    Alcotest.test_case "zero feedback honoured" `Quick test_no_scc_when_zero;
    Alcotest.test_case "all-feedback honoured" `Quick test_all_on_scc;
    Alcotest.test_case "area tracking" `Quick test_area_tracking;
    Alcotest.test_case "connected result" `Quick test_connected;
    Alcotest.test_case "every PI consumed" `Quick test_every_pi_read;
    Alcotest.test_case "bad profiles rejected" `Quick test_rejects_bad_profiles;
    Alcotest.test_case "outputs exist" `Quick test_has_outputs;
    Alcotest.test_case "benchmark registry" `Quick test_benchmark_registry_counts;
    Alcotest.test_case "registry matches Table 9" `Slow test_benchmark_matches_table9;
    Alcotest.test_case "benchmark caching" `Quick test_benchmark_caching;
    Alcotest.test_case "stats formatting" `Quick test_stats_row_format;
    QCheck_alcotest.to_alcotest prop_generated_valid;
  ]
