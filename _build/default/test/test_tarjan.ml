module Netgraph = Ppet_digraph.Netgraph
module Tarjan = Ppet_digraph.Tarjan
module Prng = Ppet_digraph.Prng

let graph edges n =
  let g = Netgraph.create n in
  List.iter (fun (s, ts) -> ignore (Netgraph.add_net g ~src:s ~sinks:ts)) edges;
  g

let test_dag () =
  let g = graph [ (0, [ 1 ]); (1, [ 2 ]); (0, [ 2 ]) ] 3 in
  let r = Tarjan.run g in
  Alcotest.(check int) "three components" 3 r.Tarjan.count;
  Alcotest.(check int) "all trivial" 0 (List.length (Tarjan.nontrivial r g))

let test_cycle () =
  let g = graph [ (0, [ 1 ]); (1, [ 2 ]); (2, [ 0 ]) ] 3 in
  let r = Tarjan.run g in
  Alcotest.(check int) "one component" 1 r.Tarjan.count;
  Alcotest.(check int) "one loop" 1 (List.length (Tarjan.nontrivial r g))

let test_two_sccs () =
  (* 0<->1 and 2<->3, with 1 -> 2 *)
  let g = graph [ (0, [ 1 ]); (1, [ 0; 2 ]); (2, [ 3 ]); (3, [ 2 ]) ] 4 in
  let r = Tarjan.run g in
  Alcotest.(check int) "two components" 2 r.Tarjan.count;
  Alcotest.(check bool) "0 and 1 together" true
    (r.Tarjan.component.(0) = r.Tarjan.component.(1));
  Alcotest.(check bool) "2 and 3 together" true
    (r.Tarjan.component.(2) = r.Tarjan.component.(3));
  Alcotest.(check bool) "separate" true
    (r.Tarjan.component.(0) <> r.Tarjan.component.(2))

let test_reverse_topological_numbering () =
  let g = graph [ (0, [ 1 ]); (1, [ 2 ]) ] 3 in
  let r = Tarjan.run g in
  (* edge a->b across components implies component(a) > component(b) *)
  Alcotest.(check bool) "ordering" true
    (r.Tarjan.component.(0) > r.Tarjan.component.(1)
     && r.Tarjan.component.(1) > r.Tarjan.component.(2))

let test_self_loop_nontrivial () =
  let g = graph [ (0, [ 0 ]); (1, [ 0 ]) ] 2 in
  let r = Tarjan.run g in
  Alcotest.(check bool) "self loop is a loop" false
    (Tarjan.is_trivial r g r.Tarjan.component.(0));
  Alcotest.(check bool) "plain vertex trivial" true
    (Tarjan.is_trivial r g r.Tarjan.component.(1))

let test_members () =
  let g = graph [ (0, [ 1 ]); (1, [ 0 ]); (2, [ 0 ]) ] 3 in
  let r = Tarjan.run g in
  let c01 = r.Tarjan.component.(0) in
  let m = Array.copy r.Tarjan.members.(c01) in
  Array.sort compare m;
  Alcotest.(check (array int)) "members of scc" [| 0; 1 |] m

let test_net_internal () =
  let g = Netgraph.create 3 in
  let e_loop = Netgraph.add_net g ~src:0 ~sinks:[ 1 ] in
  let _ = Netgraph.add_net g ~src:1 ~sinks:[ 0 ] in
  let e_out = Netgraph.add_net g ~src:1 ~sinks:[ 2 ] in
  let r = Tarjan.run g in
  Alcotest.(check bool) "loop net internal" true
    (Tarjan.net_internal r g e_loop <> None);
  Alcotest.(check bool) "escaping net not internal" true
    (Tarjan.net_internal r g e_out = None)

let test_big_chain_no_overflow () =
  (* deep linear graph exercises the iterative implementation *)
  let n = 200_000 in
  let g = Netgraph.create n in
  for i = 0 to n - 2 do
    ignore (Netgraph.add_net g ~src:i ~sinks:[ i + 1 ])
  done;
  let r = Tarjan.run g in
  Alcotest.(check int) "all singletons" n r.Tarjan.count

let test_big_cycle () =
  let n = 100_000 in
  let g = Netgraph.create n in
  for i = 0 to n - 1 do
    ignore (Netgraph.add_net g ~src:i ~sinks:[ (i + 1) mod n ])
  done;
  let r = Tarjan.run g in
  Alcotest.(check int) "one giant scc" 1 r.Tarjan.count

(* property: components partition V, and every cycle of a random graph
   stays within one component *)
let prop_partition =
  QCheck.Test.make ~name:"components partition the vertex set" ~count:100
    QCheck.(int_bound 10_000)
    (fun seed ->
      let rng = Prng.create (Int64.of_int (seed + 1)) in
      let n = 2 + Prng.int rng 40 in
      let g = Netgraph.create n in
      for _ = 1 to 2 * n do
        let s = Prng.int rng n and t = Prng.int rng n in
        ignore (Netgraph.add_net g ~src:s ~sinks:[ t ])
      done;
      let r = Tarjan.run g in
      let seen = Array.make n 0 in
      Array.iter
        (fun ms -> Array.iter (fun v -> seen.(v) <- seen.(v) + 1) ms)
        r.Tarjan.members;
      Array.for_all (fun k -> k = 1) seen
      && Array.for_all (fun c -> c >= 0 && c < r.Tarjan.count) r.Tarjan.component)

let prop_condensation_acyclic =
  QCheck.Test.make ~name:"condensation is acyclic (numbering monotone)" ~count:100
    QCheck.(int_bound 10_000)
    (fun seed ->
      let rng = Prng.create (Int64.of_int (seed + 77)) in
      let n = 2 + Prng.int rng 40 in
      let g = Netgraph.create n in
      for _ = 1 to 2 * n do
        let s = Prng.int rng n and t = Prng.int rng n in
        ignore (Netgraph.add_net g ~src:s ~sinks:[ t ])
      done;
      let r = Tarjan.run g in
      let ok = ref true in
      Netgraph.iter_nets g (fun _ ~src ~sinks ->
          Array.iter
            (fun t ->
              let cs = r.Tarjan.component.(src) and ct = r.Tarjan.component.(t) in
              if cs <> ct && cs <= ct then ok := false)
            sinks);
      !ok)

let suite =
  [
    Alcotest.test_case "dag has trivial components" `Quick test_dag;
    Alcotest.test_case "cycle is one component" `Quick test_cycle;
    Alcotest.test_case "two sccs separated" `Quick test_two_sccs;
    Alcotest.test_case "reverse topological ids" `Quick test_reverse_topological_numbering;
    Alcotest.test_case "self loop nontrivial" `Quick test_self_loop_nontrivial;
    Alcotest.test_case "members listed" `Quick test_members;
    Alcotest.test_case "net_internal" `Quick test_net_internal;
    Alcotest.test_case "deep chain (iterative)" `Slow test_big_chain_no_overflow;
    Alcotest.test_case "giant cycle" `Slow test_big_cycle;
    QCheck_alcotest.to_alcotest prop_partition;
    QCheck_alcotest.to_alcotest prop_condensation_acyclic;
  ]
