module To_dot = Ppet_netlist.To_dot
module Circuit = Ppet_netlist.Circuit
module Merced = Ppet_core.Merced
module Params = Ppet_core.Params
module Netgraph = Ppet_digraph.Netgraph
module S27 = Ppet_netlist.S27

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec loop i =
    if i + ln > lh then false
    else if String.sub hay i ln = needle then true
    else loop (i + 1)
  in
  loop 0

let test_circuit_dot () =
  let c = S27.circuit () in
  let dot = To_dot.circuit c in
  Alcotest.(check bool) "digraph" true (contains dot "digraph \"s27\"");
  Alcotest.(check bool) "every node present" true
    (Array.for_all
       (fun (nd : Circuit.node) -> contains dot ("\"" ^ nd.Circuit.name ^ "\""))
       c.Circuit.nodes);
  Alcotest.(check bool) "dff styled" true (contains dot "doubleoctagon");
  Alcotest.(check bool) "pi styled" true (contains dot "shape=triangle");
  Alcotest.(check bool) "closes" true (contains dot "}\n")

let test_edge_count () =
  let c = S27.circuit () in
  let dot = To_dot.circuit c in
  let arrow_count =
    List.length
      (String.split_on_char '\n' dot
       |> List.filter (fun l -> contains l "->"))
  in
  let pin_count =
    Array.fold_left
      (fun acc (nd : Circuit.node) -> acc + Array.length nd.Circuit.fanins)
      0 c.Circuit.nodes
  in
  (* one arrow per pin plus one per primary output *)
  Alcotest.(check int) "arrows" (pin_count + Array.length c.Circuit.outputs)
    arrow_count

let test_partitioned_dot () =
  let c = S27.circuit () in
  let r = Merced.run ~params:(Params.with_lk 3) c in
  let drivers =
    List.map
      (fun e -> Netgraph.net_src r.Merced.graph e)
      r.Merced.assignment.Ppet_core.Assign.cut_nets
  in
  let dot =
    To_dot.partitioned c
      ~cluster_of:(fun v -> r.Merced.assignment.Ppet_core.Assign.partition_of.(v))
      ~cut_net_drivers:drivers
  in
  Alcotest.(check bool) "has subgraphs" true (contains dot "subgraph \"cluster_0\"");
  Alcotest.(check bool) "cut nets highlighted" true (contains dot "color=red")

let test_escaping () =
  let b = Circuit.Builder.create "weird" in
  Circuit.Builder.add_input b "a\"b";
  Circuit.Builder.add_gate b ~name:"y" ~kind:Ppet_netlist.Gate.Not ~fanins:[ "a\"b" ];
  Circuit.Builder.add_output b "y";
  let c = Circuit.Builder.finish b in
  let dot = To_dot.circuit c in
  Alcotest.(check bool) "escaped quote" true (contains dot "\\\"")

let suite =
  [
    Alcotest.test_case "plain circuit dot" `Quick test_circuit_dot;
    Alcotest.test_case "edge count" `Quick test_edge_count;
    Alcotest.test_case "partitioned dot" `Quick test_partitioned_dot;
    Alcotest.test_case "name escaping" `Quick test_escaping;
  ]
