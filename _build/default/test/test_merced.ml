module Merced = Ppet_core.Merced
module Params = Ppet_core.Params
module Assign = Ppet_core.Assign
module Area = Ppet_core.Area_accounting
module Report = Ppet_core.Report
module Segment = Ppet_netlist.Segment
module Circuit = Ppet_netlist.Circuit
module Gate = Ppet_netlist.Gate
module Benchmarks = Ppet_netlist.Benchmarks
module Pet = Ppet_bist.Pet
module Simulator = Ppet_bist.Simulator
module S27 = Ppet_netlist.S27

let s27_result = lazy (Merced.run ~params:(Params.with_lk 3) (S27.circuit ()))

let test_runs_end_to_end () =
  let r = Lazy.force s27_result in
  Alcotest.(check bool) "partitions exist" true
    (List.length r.Merced.assignment.Assign.partitions >= 2);
  Alcotest.(check bool) "cpu time measured" true (r.Merced.cpu_seconds >= 0.0)

let test_deterministic () =
  let a = Merced.run ~params:(Params.with_lk 3) (S27.circuit ()) in
  let b = Merced.run ~params:(Params.with_lk 3) (S27.circuit ()) in
  Alcotest.(check int) "same cuts"
    a.Merced.breakdown.Area.cuts_total
    b.Merced.breakdown.Area.cuts_total;
  Alcotest.(check (float 1e-9)) "same sigma" a.Merced.sigma_dff b.Merced.sigma_dff

let test_iotas_descending () =
  let r = Lazy.force s27_result in
  let rec desc = function
    | a :: (b :: _ as tl) -> a >= b && desc tl
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "descending" true (desc (Merced.partition_iotas r))

let test_testing_time_vs_lk () =
  (* larger l_k means longer testing time but fewer cuts *)
  let c = Benchmarks.circuit "s641" in
  let r16 = Merced.run ~params:(Params.with_lk 16) c in
  let r24 = Merced.run ~params:(Params.with_lk 24) c in
  Alcotest.(check bool) "time grows" true
    (r24.Merced.testing_time >= r16.Merced.testing_time);
  Alcotest.(check bool) "cuts shrink" true
    (r24.Merced.breakdown.Area.cuts_total
     <= r16.Merced.breakdown.Area.cuts_total)

let test_retiming_always_saves () =
  let r = Lazy.force s27_result in
  let b = r.Merced.breakdown in
  Alcotest.(check bool) "saving >= 0" true (b.Area.saving >= 0.0);
  Alcotest.(check bool) "ratio ordering" true
    (b.Area.ratio_with <= b.Area.ratio_without)

let test_feasibility_crosscheck () =
  let r = Lazy.force s27_result in
  (match Merced.retiming_feasibility r with
   | `Feasible -> ()
   | `Needs_mux n ->
     Alcotest.(check bool) "mux count sane" true
       (n > 0 && n <= r.Merced.breakdown.Area.cuts_total))

let test_segments_are_combinational () =
  let r = Lazy.force s27_result in
  List.iter
    (fun seg ->
      Array.iter
        (fun id ->
          let k = (Circuit.node r.Merced.circuit id).Circuit.kind in
          Alcotest.(check bool) "comb only" true
            (k <> Gate.Dff && k <> Gate.Input))
        seg.Segment.members)
    (Merced.segments r)

let test_segments_testable () =
  (* every produced segment passes pseudo-exhaustive testing with full
     detectable coverage — the end-to-end PPET promise *)
  let r = Lazy.force s27_result in
  let sim = Simulator.create r.Merced.circuit in
  List.iter
    (fun seg ->
      if Segment.input_count seg <= 16 && Segment.input_count seg > 0 then begin
        let rep = Pet.run sim seg in
        Alcotest.(check (float 1e-9)) "detectable coverage" 1.0
          rep.Pet.detectable_coverage
      end)
    (Merced.segments r)

let test_report_rows () =
  let r = Lazy.force s27_result in
  Alcotest.(check bool) "t10 row" true (String.length (Report.table10_row r) > 20);
  Alcotest.(check bool) "t12 row" true
    (String.length (Report.table12_row ~l16:r ~l24:None) > 20);
  Alcotest.(check bool) "summary" true (String.length (Report.summary r) > 100);
  let csv = Report.csv_row r in
  let cols = String.split_on_char ',' csv in
  let headers = String.split_on_char ',' Report.csv_header in
  Alcotest.(check int) "csv arity" (List.length headers) (List.length cols)

let test_invalid_params_rejected () =
  Alcotest.(check bool) "bad l_k" true
    (try
       ignore (Merced.run ~params:{ Params.default with Params.l_k = 1 } (S27.circuit ()));
       false
     with Invalid_argument _ -> true)

let test_benchmark_run_sane () =
  let c = Benchmarks.circuit "s510" in
  let r = Merced.run ~params:(Params.with_lk 16) c in
  let b = r.Merced.breakdown in
  Alcotest.(check bool) "cuts positive" true (b.Area.cuts_total > 0);
  Alcotest.(check bool) "most cuts on SCC" true
    (b.Area.cuts_on_scc * 2 > b.Area.cuts_total);
  Alcotest.(check int) "dff count" 6 b.Area.dffs_total;
  Alcotest.(check int) "dffs on scc" 6 b.Area.dffs_on_scc

let suite =
  [
    Alcotest.test_case "end-to-end run" `Quick test_runs_end_to_end;
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "iotas sorted" `Quick test_iotas_descending;
    Alcotest.test_case "l_k trade-off" `Slow test_testing_time_vs_lk;
    Alcotest.test_case "retiming saves area" `Quick test_retiming_always_saves;
    Alcotest.test_case "LS feasibility cross-check" `Quick test_feasibility_crosscheck;
    Alcotest.test_case "segments combinational" `Quick test_segments_are_combinational;
    Alcotest.test_case "segments pseudo-exhaustively testable" `Quick test_segments_testable;
    Alcotest.test_case "report rendering" `Quick test_report_rows;
    Alcotest.test_case "invalid params rejected" `Quick test_invalid_params_rejected;
    Alcotest.test_case "benchmark s510 sane" `Slow test_benchmark_run_sane;
  ]
