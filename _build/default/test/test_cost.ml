module Cost = Ppet_core.Cost
module Area = Ppet_core.Area_accounting
module Merced = Ppet_core.Merced
module Params = Ppet_core.Params
module To_graph = Ppet_netlist.To_graph
module Scc_budget = Ppet_retiming.Scc_budget
module Circuit = Ppet_netlist.Circuit
module S27 = Ppet_netlist.S27

let test_catalogue () =
  Alcotest.(check int) "six types" 6 (List.length Cost.catalogue);
  let d4 = Cost.choose 16 in
  Alcotest.(check string) "d4" "d4" d4.Cost.label;
  Alcotest.(check (float 1e-9)) "p4" 32.21 d4.Cost.area_dff

let test_choose_rounds_up () =
  Alcotest.(check int) "5 -> 8" 8 (Cost.choose 5).Cost.length;
  Alcotest.(check int) "17 -> 24" 24 (Cost.choose 17).Cost.length;
  Alcotest.(check int) "1 -> 4" 4 (Cost.choose 1).Cost.length;
  Alcotest.(check int) "32 -> 32" 32 (Cost.choose 32).Cost.length;
  Alcotest.check_raises "33"
    (Invalid_argument "Cost.choose: no CBIT type beyond 32 bits (partition further)")
    (fun () -> ignore (Cost.choose 33))

let test_sigma () =
  (* Eq. 4: two d4 CBITs + one d1 *)
  Alcotest.(check (float 1e-9)) "sigma" (32.21 +. 32.21 +. 8.14)
    (Cost.sigma [ 16; 13; 3 ]);
  Alcotest.(check (float 1e-9)) "units x10" ((32.21 +. 8.14) *. 10.0)
    (Cost.sigma_units [ 14; 2 ])

let test_testing_time () =
  (* dominated by the widest assigned CBIT (Fig. 1b) *)
  Alcotest.(check (float 1e-9)) "2^16" 65536.0 (Cost.testing_time_cycles [ 3; 16; 9 ]);
  Alcotest.(check (float 1e-9)) "rounding to type" 65536.0
    (Cost.testing_time_cycles [ 13 ]);
  Alcotest.(check (float 1e-9)) "empty" 0.0 (Cost.testing_time_cycles [])

let test_bitwise_cost () =
  Alcotest.(check (float 1e-4)) "sigma_16" (32.21 /. 16.0) (Cost.bitwise_cost 16);
  Alcotest.(check bool) "longer cheaper" true
    (Cost.bitwise_cost 32 < Cost.bitwise_cost 8)

let breakdown_of ~cut_nets ~iotas c =
  let g = To_graph.partition_view c in
  let sb = Scc_budget.create c g in
  Area.compute c sb ~cut_nets ~partition_iotas:iotas

let test_area_no_cuts () =
  let c = S27.circuit () in
  let b = breakdown_of ~cut_nets:[] ~iotas:[] c in
  Alcotest.(check int) "no cuts" 0 b.Area.cuts_total;
  Alcotest.(check (float 1e-9)) "no area" 0.0 b.Area.area_with_retiming;
  Alcotest.(check (float 1e-9)) "ratio 0" 0.0 b.Area.ratio_with

let test_area_model_arithmetic () =
  let c = S27.circuit () in
  let g = To_graph.partition_view c in
  let map = To_graph.net_of_driver c g in
  (* one feed-forward-ish cut: net driven by G14 (feeds G8, G10) *)
  let cut = map.(Circuit.find c "G14") in
  let b = breakdown_of ~cut_nets:[ cut ] ~iotas:[ 3 ] c in
  Alcotest.(check int) "one cut" 1 b.Area.cuts_total;
  (* without retiming: 2.3 DFF = 23 units + overhead *)
  Alcotest.(check (float 1e-6)) "w/o = 23 + fb"
    (23.0 +. b.Area.feedback_overhead)
    b.Area.area_without_retiming;
  Alcotest.(check bool) "retiming cheaper" true
    (b.Area.area_with_retiming < b.Area.area_without_retiming);
  Alcotest.(check bool) "saving positive" true (b.Area.saving > 0.0)

let test_full_utilization_bound () =
  let r = Merced.run ~params:(Params.with_lk 3) (S27.circuit ()) in
  let b = r.Merced.breakdown in
  Alcotest.(check bool) "strict >= optimistic area" true
    (b.Area.area_with_retiming >= b.Area.area_full_utilization);
  Alcotest.(check bool) "optimistic saving at least strict" true
    (b.Area.saving_full_utilization >= b.Area.saving)

let test_ratio_definition () =
  let r = Merced.run ~params:(Params.with_lk 3) (S27.circuit ()) in
  let b = r.Merced.breakdown in
  let expect =
    100.0 *. b.Area.area_with_retiming
    /. (b.Area.circuit_area +. b.Area.area_with_retiming)
  in
  Alcotest.(check (float 1e-9)) "ACBIT/ATotal" expect b.Area.ratio_with

let suite =
  [
    Alcotest.test_case "catalogue of Table 1" `Quick test_catalogue;
    Alcotest.test_case "choose rounds up" `Quick test_choose_rounds_up;
    Alcotest.test_case "sigma objective (Eq. 4)" `Quick test_sigma;
    Alcotest.test_case "testing time" `Quick test_testing_time;
    Alcotest.test_case "bitwise cost (Fig. 4)" `Quick test_bitwise_cost;
    Alcotest.test_case "no cuts, no area" `Quick test_area_no_cuts;
    Alcotest.test_case "area model arithmetic" `Quick test_area_model_arithmetic;
    Alcotest.test_case "full-utilization bound" `Quick test_full_utilization_bound;
    Alcotest.test_case "ratio definition" `Quick test_ratio_definition;
  ]
