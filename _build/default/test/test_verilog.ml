module Circuit = Ppet_netlist.Circuit
module Gate = Ppet_netlist.Gate
module Verilog = Ppet_netlist.Verilog
module Generator = Ppet_netlist.Generator
module Equivalence = Ppet_core.Equivalence
module S27 = Ppet_netlist.S27

let sample =
  "// a tiny sequential design\n\
   module toy (a, b, y);\n\
  \  input a, b;\n\
  \  output y;\n\
  \  wire w1, q;\n\
  \  nand g1 (w1, a, b);\n\
  \  dff  g2 (q, w1);\n\
  \  not  g3 (y, q);\n\
   endmodule\n"

let test_parse_sample () =
  let c = Verilog.parse_string sample in
  Alcotest.(check string) "title" "toy" c.Circuit.title;
  Alcotest.(check int) "pis" 2 (Array.length c.Circuit.inputs);
  Alcotest.(check int) "pos" 1 (Array.length c.Circuit.outputs);
  Alcotest.(check int) "dffs" 1 (Array.length (Circuit.dffs c));
  let w1 = Circuit.node c (Circuit.find c "w1") in
  Alcotest.(check bool) "nand" true (w1.Circuit.kind = Gate.Nand)

let test_comments_and_block_comments () =
  let src =
    "module m (a, y); /* block\n comment */ input a; output y;\n\
     buf g (y, a); // trailing\nendmodule"
  in
  let c = Verilog.parse_string src in
  Alcotest.(check int) "two nodes" 2 (Circuit.size c)

let test_instance_name_optional () =
  let c =
    Verilog.parse_string
      "module m (a, y); input a; output y; not (y, a); endmodule"
  in
  Alcotest.(check int) "parsed" 2 (Circuit.size c)

let test_escaped_identifiers () =
  let c =
    Verilog.parse_string
      "module m (a, y); input a; output y;\n\
       not g1 (\\w[0] , a);\n\
       buf g2 (y, \\w[0] );\n\
       endmodule"
  in
  let w = Circuit.node c (Circuit.find c "w[0]") in
  Alcotest.(check bool) "escaped wire parsed" true (w.Circuit.kind = Gate.Not);
  (* and the writer emits it back in escaped form *)
  let c2 = Verilog.parse_string (Verilog.to_string c) in
  Alcotest.(check int) "roundtrips" (Circuit.size c) (Circuit.size c2)

let test_rejects_behavioural () =
  Alcotest.(check bool) "assign rejected" true
    (try
       ignore
         (Verilog.parse_string
            "module m (a, y); input a; output y; assign y = a; endmodule");
       false
     with Circuit.Error _ -> true)

let test_rejects_missing_endmodule () =
  Alcotest.(check bool) "unterminated" true
    (try
       ignore (Verilog.parse_string "module m (a); input a;");
       false
     with Circuit.Error _ -> true)

let test_roundtrip_s27 () =
  let c = S27.circuit () in
  let c2 = Verilog.parse_string (Verilog.to_string c) in
  Alcotest.(check int) "same size" (Circuit.size c) (Circuit.size c2);
  Alcotest.(check (float 1e-9)) "same area" (Circuit.area c) (Circuit.area c2);
  let v = Equivalence.check_bool c c2 in
  Alcotest.(check bool) "equivalent" true v.Equivalence.equivalent

let test_cross_format () =
  (* bench -> circuit -> verilog -> circuit -> bench: all equivalent *)
  let c = S27.circuit () in
  let via_v = Verilog.parse_string (Verilog.to_string c) in
  let via_b =
    Ppet_netlist.Bench_parser.parse_string
      (Ppet_netlist.Bench_writer.to_string via_v)
  in
  let v = Equivalence.check_bool c via_b in
  Alcotest.(check bool) "equivalent through both formats" true
    v.Equivalence.equivalent

let test_file_io () =
  let path = Filename.temp_file "ppet" ".v" in
  Verilog.to_file path (S27.circuit ());
  let c = Verilog.parse_file path in
  Sys.remove path;
  Alcotest.(check int) "parsed back" 17 (Circuit.size c)

let prop_roundtrip_random =
  QCheck.Test.make ~name:"verilog round trip on random circuits" ~count:20
    QCheck.(int_bound 100_000)
    (fun seed ->
      let c =
        Generator.small_random ~seed:(Int64.of_int (seed + 17)) ~n_pi:4
          ~n_dff:4 ~n_gates:30
      in
      let c2 = Verilog.parse_string (Verilog.to_string c) in
      Circuit.size c = Circuit.size c2
      && (Equivalence.check_bool ~cycles:8 c c2).Equivalence.equivalent)

let suite =
  [
    Alcotest.test_case "parse sample" `Quick test_parse_sample;
    Alcotest.test_case "comments" `Quick test_comments_and_block_comments;
    Alcotest.test_case "optional instance name" `Quick test_instance_name_optional;
    Alcotest.test_case "escaped identifiers" `Quick test_escaped_identifiers;
    Alcotest.test_case "behavioural rejected" `Quick test_rejects_behavioural;
    Alcotest.test_case "missing endmodule" `Quick test_rejects_missing_endmodule;
    Alcotest.test_case "s27 round trip" `Quick test_roundtrip_s27;
    Alcotest.test_case "cross-format equivalence" `Quick test_cross_format;
    Alcotest.test_case "file io" `Quick test_file_io;
    QCheck_alcotest.to_alcotest prop_roundtrip_random;
  ]
