module Params = Ppet_core.Params
module Report = Ppet_core.Report
module Merced = Ppet_core.Merced
module S27 = Ppet_netlist.S27

let test_defaults_match_paper () =
  let p = Params.default in
  Alcotest.(check (float 1e-9)) "b" 1.0 p.Params.capacity;
  Alcotest.(check int) "min_visit" 20 p.Params.min_visit;
  Alcotest.(check (float 1e-9)) "alpha" 4.0 p.Params.alpha;
  Alcotest.(check (float 1e-9)) "delta" 0.01 p.Params.delta;
  Alcotest.(check int) "beta" 50 p.Params.beta;
  Alcotest.(check int) "l_k" 16 p.Params.l_k

let test_with_lk () =
  Alcotest.(check int) "lk" 24 (Params.with_lk 24).Params.l_k;
  Alcotest.(check int) "rest unchanged" 20 (Params.with_lk 24).Params.min_visit

let test_validation_messages () =
  let bad field p =
    match Params.validate p with
    | Error _ -> ()
    | Ok () -> Alcotest.fail (field ^ " should be rejected")
  in
  bad "capacity" { Params.default with Params.capacity = 0.0 };
  bad "min_visit" { Params.default with Params.min_visit = 0 };
  bad "delta" { Params.default with Params.delta = -0.5 };
  bad "beta" { Params.default with Params.beta = 0 };
  bad "l_k low" { Params.default with Params.l_k = 1 };
  bad "l_k high" { Params.default with Params.l_k = 40 };
  bad "max_iterations" { Params.default with Params.max_iterations = 0 };
  (match Params.validate Params.default with
   | Ok () -> ()
   | Error m -> Alcotest.fail m)

let test_pp () =
  Alcotest.(check bool) "prints" true
    (String.length (Format.asprintf "%a" Params.pp Params.default) > 20)

let test_report_headers_align () =
  (* headers and rows keep the same column structure *)
  let r = Merced.run ~params:(Params.with_lk 3) (S27.circuit ()) in
  let header_cols =
    List.length
      (List.filter (fun s -> s <> "")
         (String.split_on_char ' ' Report.table10_header))
  in
  let row_cols =
    List.length
      (List.filter (fun s -> s <> "")
         (String.split_on_char ' ' (Report.table10_row r)))
  in
  Alcotest.(check int) "t10 columns" header_cols row_cols

let test_csv_stable_schema () =
  let cols = String.split_on_char ',' Report.csv_header in
  Alcotest.(check int) "17 columns" 17 (List.length cols);
  Alcotest.(check bool) "first is circuit" true (List.hd cols = "circuit")

let suite =
  [
    Alcotest.test_case "paper defaults" `Quick test_defaults_match_paper;
    Alcotest.test_case "with_lk" `Quick test_with_lk;
    Alcotest.test_case "validation" `Quick test_validation_messages;
    Alcotest.test_case "params printing" `Quick test_pp;
    Alcotest.test_case "report columns align" `Quick test_report_headers_align;
    Alcotest.test_case "csv schema" `Quick test_csv_stable_schema;
  ]
