module Circuit = Ppet_netlist.Circuit
module Segment = Ppet_netlist.Segment
module Pet = Ppet_bist.Pet
module Simulator = Ppet_bist.Simulator
module Parser = Ppet_netlist.Bench_parser
module Generator = Ppet_netlist.Generator
module Gate = Ppet_netlist.Gate
module S27 = Ppet_netlist.S27

let seg_of c names =
  Segment.of_members c (Array.of_list (List.map (Circuit.find c) names))

let test_and_tree () =
  let c =
    Parser.parse_string
      "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nOUTPUT(y)\n\
       g1 = AND(a, b)\ng2 = AND(c, d)\ny = AND(g1, g2)\n"
  in
  let sim = Simulator.create c in
  let r = Pet.run sim (seg_of c [ "g1"; "g2"; "y" ]) in
  Alcotest.(check int) "width" 4 r.Pet.width;
  Alcotest.(check int) "patterns 2^4" 16 r.Pet.patterns_applied;
  Alcotest.(check (float 1e-9)) "full coverage" 1.0 r.Pet.coverage;
  Alcotest.(check int) "no redundancy" 0 r.Pet.n_redundant

let test_redundant_logic_reported () =
  let c = Parser.parse_string "INPUT(a)\nOUTPUT(y)\nn = NOT(a)\ny = OR(a, n)\n" in
  let sim = Simulator.create c in
  let r = Pet.run sim (seg_of c [ "n"; "y" ]) in
  Alcotest.(check bool) "has redundant faults" true (r.Pet.n_redundant > 0);
  Alcotest.(check (float 1e-9)) "detectable coverage still 1" 1.0
    r.Pet.detectable_coverage

let test_s27_whole_combinational () =
  (* the headline PPET property on the real published circuit: exhaustive
     patterns detect every detectable fault of the combinational core *)
  let c = S27.circuit () in
  let sim = Simulator.create c in
  let combs = Circuit.combinational c in
  let seg = Segment.of_members c combs in
  let r = Pet.run sim seg in
  Alcotest.(check int) "width 7 (4 PI + 3 DFF)" 7 r.Pet.width;
  Alcotest.(check (float 1e-9)) "detectable coverage 1.0" 1.0
    r.Pet.detectable_coverage;
  Alcotest.(check bool) "most faults detectable" true (r.Pet.coverage > 0.9)

let test_lfsr_matches_exhaustive () =
  let c = S27.circuit () in
  let sim = Simulator.create c in
  let seg = Segment.of_members c (Circuit.combinational c) in
  let a = Pet.run sim seg in
  let b = Pet.run_with_lfsr sim seg in
  Alcotest.(check int) "same detections" a.Pet.n_detected b.Pet.n_detected

let test_width_cap () =
  let c =
    Generator.generate
      {
        Generator.name = "wide";
        n_pi = 25;
        n_dff = 0;
        n_gates = 30;
        n_inv = 5;
        dff_on_scc = 0;
        area_target = None;
      }
  in
  let sim = Simulator.create c in
  let seg = Segment.of_members c (Circuit.combinational c) in
  if Segment.input_count seg > 20 then
    Alcotest.(check bool) "raises" true
      (try
         ignore (Pet.run sim seg);
         false
       with Invalid_argument _ -> true)
  else Alcotest.(check bool) "narrow enough" true true

let test_report_printing () =
  let c = Parser.parse_string "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n" in
  let sim = Simulator.create c in
  let r = Pet.run sim (seg_of c [ "y" ]) in
  let s = Format.asprintf "%a" Pet.pp r in
  Alcotest.(check bool) "mentions coverage" true (String.length s > 20)

(* property: pseudo-exhaustive testing reaches detectable-coverage 1.0 on
   random combinational segments — the theorem PPET rests on *)
let prop_pet_complete =
  QCheck.Test.make ~name:"exhaustive test detects all detectable faults"
    ~count:15
    QCheck.(int_bound 100_000)
    (fun seed ->
      let c =
        Generator.generate
          {
            Generator.name = Printf.sprintf "pet%d" seed;
            n_pi = 5;
            n_dff = 3;
            n_gates = 18;
            n_inv = 4;
            dff_on_scc = 1;
            area_target = None;
          }
          ~seed:(Int64.of_int (seed + 21))
      in
      let sim = Simulator.create c in
      let seg = Ppet_netlist.Segment.of_members c (Circuit.combinational c) in
      QCheck.assume (Segment.input_count seg <= 16);
      let r = Pet.run sim seg in
      r.Pet.detectable_coverage = 1.0)

let suite =
  [
    Alcotest.test_case "AND tree fully covered" `Quick test_and_tree;
    Alcotest.test_case "redundant faults reported" `Quick test_redundant_logic_reported;
    Alcotest.test_case "s27 pseudo-exhaustive" `Quick test_s27_whole_combinational;
    Alcotest.test_case "LFSR source matches exhaustive" `Quick test_lfsr_matches_exhaustive;
    Alcotest.test_case "width cap enforced" `Quick test_width_cap;
    Alcotest.test_case "report prints" `Quick test_report_printing;
    QCheck_alcotest.to_alcotest prop_pet_complete;
  ]
