test/test_prng.ml: Alcotest Array List Ppet_digraph
