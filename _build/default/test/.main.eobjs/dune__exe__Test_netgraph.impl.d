test/test_netgraph.ml: Alcotest Array Ppet_digraph
