test/test_to_graph.ml: Alcotest Array List Ppet_digraph Ppet_netlist
