test/test_pet.ml: Alcotest Array Format Int64 List Ppet_bist Ppet_netlist Printf QCheck QCheck_alcotest String
