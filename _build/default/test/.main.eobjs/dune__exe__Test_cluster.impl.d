test/test_cluster.ml: Alcotest Array Int64 List Ppet_core Ppet_digraph Ppet_netlist Ppet_retiming Printf QCheck QCheck_alcotest
