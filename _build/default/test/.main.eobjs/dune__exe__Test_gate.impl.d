test/test_gate.ml: Alcotest Array Int64 List Ppet_digraph Ppet_netlist QCheck QCheck_alcotest
