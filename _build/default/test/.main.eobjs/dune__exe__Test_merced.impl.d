test/test_merced.ml: Alcotest Array Lazy List Ppet_bist Ppet_core Ppet_netlist String
