test/test_dijkstra.ml: Alcotest Array Int64 List Ppet_digraph QCheck QCheck_alcotest
