test/test_flow.ml: Alcotest Array Ppet_core Ppet_digraph Ppet_netlist Ppet_retiming Printf
