test/test_verilog.ml: Alcotest Array Filename Int64 Ppet_core Ppet_netlist QCheck QCheck_alcotest Sys
