test/test_circuit.ml: Alcotest Array Ppet_netlist
