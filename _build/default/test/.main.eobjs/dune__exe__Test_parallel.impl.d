test/test_parallel.ml: Alcotest Array Atomic Domain List Ppet_parallel QCheck QCheck_alcotest
