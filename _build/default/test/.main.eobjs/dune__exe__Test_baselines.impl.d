test/test_baselines.ml: Alcotest Array List Ppet_core Ppet_digraph Ppet_netlist
