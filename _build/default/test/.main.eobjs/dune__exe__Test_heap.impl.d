test/test_heap.ml: Alcotest Array Gen Int64 List Ppet_digraph QCheck QCheck_alcotest
