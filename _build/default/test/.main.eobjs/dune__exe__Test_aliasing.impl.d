test/test_aliasing.ml: Alcotest Ppet_bist Printf
