test/test_assign.ml: Alcotest Array Int64 List Ppet_core Ppet_digraph Ppet_netlist Ppet_retiming QCheck QCheck_alcotest
