test/test_components.ml: Alcotest Array Ppet_digraph
