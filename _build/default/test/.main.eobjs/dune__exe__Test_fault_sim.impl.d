test/test_fault_sim.ml: Alcotest Array List Ppet_bist Ppet_netlist
