test/test_scc_budget.ml: Alcotest Array Ppet_digraph Ppet_netlist Ppet_retiming
