test/test_pipeline.ml: Alcotest Format List Ppet_bist String
