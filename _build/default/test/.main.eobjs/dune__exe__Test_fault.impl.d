test/test_fault.ml: Alcotest List Ppet_bist Ppet_netlist
