test/test_diagnosis.ml: Alcotest Array List Ppet_bist Ppet_netlist Printf
