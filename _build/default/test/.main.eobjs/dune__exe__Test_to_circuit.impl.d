test/test_to_circuit.ml: Alcotest Array Hashtbl Int64 List Ppet_digraph Ppet_netlist Ppet_retiming Printf QCheck QCheck_alcotest
