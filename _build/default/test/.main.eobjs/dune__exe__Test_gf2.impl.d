test/test_gf2.ml: Alcotest Format Ppet_bist Printf QCheck QCheck_alcotest
