test/test_testable.ml: Alcotest Array Hashtbl Int64 Lazy List Ppet_bist Ppet_core Ppet_digraph Ppet_netlist Printf QCheck QCheck_alcotest
