test/test_phasing.ml: Alcotest Array Format List Ppet_bist Ppet_core Ppet_netlist Printf String
