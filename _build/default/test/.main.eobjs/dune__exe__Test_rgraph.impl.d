test/test_rgraph.ml: Alcotest Array List Ppet_bist Ppet_netlist Ppet_retiming Printf
