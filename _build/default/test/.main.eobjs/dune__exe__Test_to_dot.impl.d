test/test_to_dot.ml: Alcotest Array List Ppet_core Ppet_digraph Ppet_netlist String
