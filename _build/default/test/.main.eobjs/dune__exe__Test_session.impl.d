test/test_session.ml: Alcotest Lazy List Ppet_bist Ppet_core Ppet_netlist
