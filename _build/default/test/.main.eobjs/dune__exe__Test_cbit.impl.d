test/test_cbit.ml: Alcotest Array List Ppet_bist Printf
