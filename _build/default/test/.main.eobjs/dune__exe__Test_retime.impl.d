test/test_retime.ml: Alcotest Array Hashtbl Int64 List Ppet_digraph Ppet_netlist Ppet_retiming QCheck QCheck_alcotest
