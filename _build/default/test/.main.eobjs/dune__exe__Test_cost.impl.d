test/test_cost.ml: Alcotest Array List Ppet_core Ppet_netlist Ppet_retiming
