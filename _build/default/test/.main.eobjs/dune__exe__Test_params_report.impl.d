test/test_params_report.ml: Alcotest Format List Ppet_core Ppet_netlist String
