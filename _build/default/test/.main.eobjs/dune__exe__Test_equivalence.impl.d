test/test_equivalence.ml: Alcotest Int64 Ppet_core Ppet_netlist Ppet_retiming QCheck QCheck_alcotest
