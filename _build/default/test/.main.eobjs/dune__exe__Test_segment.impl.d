test/test_segment.ml: Alcotest Array List Ppet_netlist
