test/main.mli:
