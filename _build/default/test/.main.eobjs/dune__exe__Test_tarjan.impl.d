test/test_tarjan.ml: Alcotest Array Int64 List Ppet_digraph QCheck QCheck_alcotest
