test/test_fuzz.ml: Alcotest Buffer Bytes Char Int64 List Ppet_digraph Ppet_netlist QCheck QCheck_alcotest String
