test/test_simulator.ml: Alcotest Array Hashtbl Int64 List Ppet_bist Ppet_digraph Ppet_netlist QCheck QCheck_alcotest
