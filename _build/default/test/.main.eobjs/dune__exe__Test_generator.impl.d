test/test_generator.ml: Alcotest Array List Ppet_digraph Ppet_netlist Ppet_retiming Printf QCheck QCheck_alcotest String
