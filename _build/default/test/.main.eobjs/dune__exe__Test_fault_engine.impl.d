test/test_fault_engine.ml: Alcotest Array Gen Int64 List Ppet_bist Ppet_digraph Ppet_netlist Ppet_parallel QCheck QCheck_alcotest
