test/test_lfsr_misr.ml: Alcotest Array Gen List Ppet_bist Printf QCheck QCheck_alcotest
