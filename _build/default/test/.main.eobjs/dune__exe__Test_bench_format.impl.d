test/test_bench_format.ml: Alcotest Array Filename Int64 List Ppet_netlist QCheck QCheck_alcotest String Sys
