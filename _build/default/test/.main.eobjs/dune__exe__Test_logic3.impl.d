test/test_logic3.ml: Alcotest Array Gen List Ppet_netlist Ppet_retiming Printf QCheck QCheck_alcotest
