module Circuit = Ppet_netlist.Circuit
module Parser = Ppet_netlist.Bench_parser
module Generator = Ppet_netlist.Generator
module Rgraph = Ppet_retiming.Rgraph
module Retime = Ppet_retiming.Retime
module L = Ppet_retiming.Logic3

let pipeline_src =
  "INPUT(a)\nOUTPUT(y)\nq1 = DFF(a)\ng1 = NOT(q1)\nq2 = DFF(g1)\ny = BUFF(q2)\n"

let ring_src =
  (* one register on a two-gate loop: chi <= f allows one cut *)
  "INPUT(a)\nOUTPUT(y)\nq = DFF(g2)\ng1 = AND(q, a)\ng2 = NOT(g1)\ny = BUFF(g1)\n"

let vertex_of rg name =
  let rec loop v =
    if v >= Rgraph.n_vertices rg then raise Not_found
    else if Rgraph.vertex_name rg v = name then v
    else loop (v + 1)
  in
  loop 0

let test_identity_feasible () =
  let rg = Rgraph.of_circuit (Parser.parse_string pipeline_src) in
  match Retime.solve rg ~require:(fun _ -> 0) with
  | Retime.Feasible rho ->
    Alcotest.(check bool) "legal" true (Retime.is_legal rg rho)
  | Retime.Infeasible _ -> Alcotest.fail "identity must be feasible"

let test_move_register_forward () =
  (* demand BOTH pipeline registers on g1's output: the register in front
     of g1 must move forward across the inverter *)
  let rg = Rgraph.of_circuit (Parser.parse_string pipeline_src) in
  let g1 = vertex_of rg "g1" in
  let require e = if rg.Rgraph.edges.(e).Rgraph.tail = g1 then 2 else 0 in
  (match Retime.solve rg ~require with
   | Retime.Feasible rho ->
     Alcotest.(check bool) "legal" true (Retime.is_legal rg rho);
     Alcotest.(check bool) "g1 lags" true (rho.(g1) < 0);
     Array.iteri
       (fun i (e : Rgraph.edge) ->
         if e.Rgraph.tail = g1 then
           Alcotest.(check bool) "registers present" true
             (Retime.retimed_weight rg rho i >= 2))
       rg.Rgraph.edges
   | Retime.Infeasible _ -> Alcotest.fail "should be feasible")

let test_loop_budget_respected () =
  (* the ring has one register; requiring registers on BOTH loop gate
     outputs violates Eq. 2 and must be infeasible *)
  let rg = Rgraph.of_circuit (Parser.parse_string ring_src) in
  let g1 = vertex_of rg "g1" and g2 = vertex_of rg "g2" in
  let require e =
    let t = rg.Rgraph.edges.(e).Rgraph.tail in
    if t = g1 || t = g2 then 1 else 0
  in
  (match Retime.solve rg ~require with
   | Retime.Feasible _ -> Alcotest.fail "chi > f must be infeasible"
   | Retime.Infeasible cycle ->
     Alcotest.(check bool) "cycle reported" true (List.length cycle >= 2);
     Alcotest.(check bool) "cycle contains a loop gate" true
       (List.exists (fun v -> v = g1 || v = g2) cycle))

let test_loop_single_requirement_feasible () =
  let rg = Rgraph.of_circuit (Parser.parse_string ring_src) in
  let g2 = vertex_of rg "g2" in
  let require e = if rg.Rgraph.edges.(e).Rgraph.tail = g2 then 1 else 0 in
  match Retime.solve rg ~require with
  | Retime.Feasible rho ->
    Alcotest.(check bool) "legal" true (Retime.is_legal rg rho)
  | Retime.Infeasible _ -> Alcotest.fail "chi = f must be feasible"

let test_cycle_weight_invariant () =
  (* Eq. 2: any legal retiming keeps loop register counts *)
  let rg = Rgraph.of_circuit (Parser.parse_string ring_src) in
  let g2 = vertex_of rg "g2" in
  let require e = if rg.Rgraph.edges.(e).Rgraph.tail = g2 then 1 else 0 in
  match Retime.solve rg ~require with
  | Retime.Infeasible _ -> Alcotest.fail "feasible expected"
  | Retime.Feasible rho ->
    (* total on the loop q->g1->g2->q: find edges among {g1,g2} and the
       anchored register path *)
    Alcotest.(check int) "total register count preserved"
      (Rgraph.n_registers rg)
      (Retime.total_registers_after rg rho)

let test_apply_moves_initial_state () =
  (* forward move across the inverter: register value 0 becomes NOT 0 = 1 *)
  let rg = Rgraph.of_circuit (Parser.parse_string pipeline_src) in
  let g1 = vertex_of rg "g1" in
  let require e = if rg.Rgraph.edges.(e).Rgraph.tail = g1 then 2 else 0 in
  match Retime.solve rg ~require with
  | Retime.Infeasible _ -> Alcotest.fail "feasible expected"
  | Retime.Feasible rho ->
    let rg' = Retime.apply rg rho in
    (match Rgraph.check_invariants rg' with
     | Ok () -> ()
     | Error m -> Alcotest.fail m);
    Alcotest.(check int) "register count preserved"
      (Rgraph.n_registers rg) (Rgraph.n_registers rg');
    (* the moved register's value was justified through the inverter *)
    let moved =
      rg'.Rgraph.edges.(rg'.Rgraph.out_edges.(g1).(0)).Rgraph.inits
    in
    Alcotest.(check bool) "inverted init present" true
      (List.exists (fun v -> L.equal v L.One) moved)

let test_apply_illegal_rejected () =
  let rg = Rgraph.of_circuit (Parser.parse_string pipeline_src) in
  let rho = Array.make (Rgraph.n_vertices rg) 0 in
  rho.(vertex_of rg "g1") <- 100;
  Alcotest.check_raises "illegal" (Invalid_argument "Retime.apply: illegal retiming")
    (fun () -> ignore (Retime.apply rg rho))

(* The central correctness property: a retimed circuit with recomputed
   initial state is 3-valued compatible with the original on every output
   at every cycle. No latency compensation is needed: primary inputs and
   the host are pinned at lag 0, so Eq. 1 keeps the register count of
   every PI-to-PO path — the retimed machine is cycle-exact. *)
let cosimulate_compatible c require_of =
  let rg = Rgraph.of_circuit c in
  match Retime.solve rg ~require:(require_of rg) with
  | Retime.Infeasible _ -> true (* nothing to check *)
  | Retime.Feasible rho ->
    let rg' = Retime.apply rg rho in
    let cycles = 8 in
    let rng = Ppet_digraph.Prng.create 99L in
    let stim = Hashtbl.create 16 in
    let inputs ~cycle name =
      match Hashtbl.find_opt stim (cycle, name) with
      | Some v -> v
      | None ->
        let v = if Ppet_digraph.Prng.bool rng then L.One else L.Zero in
        Hashtbl.replace stim (cycle, name) v;
        v
    in
    let a = Rgraph.simulate rg ~inputs ~cycles in
    let b = Rgraph.simulate rg' ~inputs ~cycles in
    let ok = ref true in
    for t = 0 to cycles - 1 do
      List.iter
        (fun (name, v0) ->
          let v1 = List.assoc name b.(t) in
          if not (L.compatible v0 v1) then ok := false)
        a.(t)
    done;
    !ok

let test_cosim_pipeline () =
  let c = Parser.parse_string pipeline_src in
  let req rg e = if rg.Rgraph.edges.(e).Rgraph.tail = vertex_of rg "g1" then 1 else 0 in
  Alcotest.(check bool) "compatible" true
    (cosimulate_compatible c (fun rg e -> req rg e))

let test_cosim_ring () =
  let c = Parser.parse_string ring_src in
  let req rg e = if rg.Rgraph.edges.(e).Rgraph.tail = vertex_of rg "g2" then 1 else 0 in
  Alcotest.(check bool) "compatible" true
    (cosimulate_compatible c (fun rg e -> req rg e))

let test_cosim_s27 () =
  let c = Ppet_netlist.S27.circuit () in
  (* ask for a register at G8's output (a comb gate off the main loop) *)
  Alcotest.(check bool) "compatible" true
    (cosimulate_compatible c (fun rg e ->
         if Rgraph.vertex_name rg rg.Rgraph.edges.(e).Rgraph.tail = "G9" then 1
         else 0))

let prop_cosim_random =
  QCheck.Test.make ~name:"retiming preserves behaviour (random circuits)"
    ~count:20
    QCheck.(pair (int_bound 100_000) (int_bound 4))
    (fun (seed, pick) ->
      let c =
        Generator.small_random ~seed:(Int64.of_int (seed + 11)) ~n_pi:3
          ~n_dff:4 ~n_gates:15
      in
      let rg = Rgraph.of_circuit c in
      (* require a register at the output of some combinational vertices *)
      let targets =
        let acc = ref [] in
        for v = 0 to Rgraph.n_vertices rg - 1 do
          match rg.Rgraph.kinds.(v) with
          | Rgraph.Vgate _ -> acc := v :: !acc
          | Rgraph.Vpi _ | Rgraph.Vhost -> ()
        done;
        Array.of_list !acc
      in
      QCheck.assume (Array.length targets > 0);
      let chosen = targets.(pick mod Array.length targets) in
      cosimulate_compatible c (fun rg' e ->
          if
            Rgraph.vertex_name rg' rg'.Rgraph.edges.(e).Rgraph.tail
            = Rgraph.vertex_name rg chosen
          then 1
          else 0))

let suite =
  [
    Alcotest.test_case "identity feasible" `Quick test_identity_feasible;
    Alcotest.test_case "register moves forward" `Quick test_move_register_forward;
    Alcotest.test_case "loop budget enforced (Eq. 2)" `Quick test_loop_budget_respected;
    Alcotest.test_case "single loop cut feasible" `Quick test_loop_single_requirement_feasible;
    Alcotest.test_case "register count invariant" `Quick test_cycle_weight_invariant;
    Alcotest.test_case "apply recomputes state" `Quick test_apply_moves_initial_state;
    Alcotest.test_case "apply rejects illegal rho" `Quick test_apply_illegal_rejected;
    Alcotest.test_case "co-simulation: pipeline" `Quick test_cosim_pipeline;
    Alcotest.test_case "co-simulation: ring" `Quick test_cosim_ring;
    Alcotest.test_case "co-simulation: s27" `Quick test_cosim_s27;
    QCheck_alcotest.to_alcotest prop_cosim_random;
  ]
