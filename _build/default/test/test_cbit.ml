module Cbit = Ppet_bist.Cbit
module Acell = Ppet_bist.Acell
module Lfsr = Ppet_bist.Lfsr
module Misr = Ppet_bist.Misr
module Scan_chain = Ppet_bist.Scan_chain

let test_acell_areas () =
  (* Fig. 3: A_CELL = 1.9 DFF; +MUX = 2.3; converted = 0.9 *)
  Alcotest.(check (float 1e-9)) "fresh" 1.9 (Acell.relative_area Acell.Fresh);
  Alcotest.(check (float 1e-9)) "muxed" 2.3 (Acell.relative_area Acell.Fresh_with_mux);
  Alcotest.(check (float 1e-9)) "converted" 0.9 (Acell.relative_area Acell.Converted);
  Alcotest.(check (float 1e-9)) "units" 23.0 (Acell.area_units Acell.Fresh_with_mux)

let test_acell_modes () =
  let next = Acell.next_bit ~data_in:true ~feedback:false ~scan_in:false ~current:false in
  Alcotest.(check bool) "normal latches data" true (next Acell.Normal);
  Alcotest.(check bool) "tpg latches feedback" false (next Acell.Tpg);
  Alcotest.(check bool) "psa xors" true (next Acell.Psa);
  Alcotest.(check bool) "scan shifts" false (next Acell.Scan)

let test_cbit_tpg_equals_lfsr () =
  let cb = Cbit.create ~width:8 () in
  Cbit.load cb 1;
  Cbit.set_mode cb Acell.Tpg;
  let l = Lfsr.create ~width:8 () in
  for i = 1 to 100 do
    Cbit.clock cb ();
    Alcotest.(check int) (Printf.sprintf "step %d" i) (Lfsr.step l) (Cbit.state cb)
  done

let test_cbit_psa_equals_misr () =
  let cb = Cbit.create ~width:8 () in
  Cbit.set_mode cb Acell.Psa;
  let m = Misr.create ~width:8 () in
  List.iter
    (fun w ->
      Cbit.clock cb ~data:w ();
      Alcotest.(check int) "psa = misr" (Misr.absorb m w) (Cbit.state cb))
    [ 17; 0; 255; 3; 128; 77 ]

let test_cbit_normal_transparent () =
  let cb = Cbit.create ~width:8 () in
  Cbit.clock cb ~data:0xAB ();
  Alcotest.(check int) "latches data" 0xAB (Cbit.state cb)

let test_cbit_dual_mode_switch () =
  (* the same register generates, then compresses — the PPET trick *)
  let cb = Cbit.create ~width:4 () in
  Cbit.load cb 1;
  Cbit.set_mode cb Acell.Tpg;
  for _ = 1 to 5 do
    Cbit.clock cb ()
  done;
  let after_tpg = Cbit.state cb in
  Cbit.set_mode cb Acell.Psa;
  Cbit.clock cb ~data:0xF ();
  Alcotest.(check bool) "state evolved" true (Cbit.state cb <> after_tpg)

let test_cost_table_values () =
  (* Table 1 rows verbatim *)
  let row i = Cbit.cost_table.(i) in
  Alcotest.(check int) "d1 length" 4 (row 0).Cbit.length;
  Alcotest.(check (float 1e-9)) "d1 area" 8.14 (row 0).Cbit.area_per_dff;
  Alcotest.(check (float 1e-9)) "d4 area" 32.21 (row 3).Cbit.area_per_dff;
  Alcotest.(check (float 1e-9)) "d6 area" 63.12 (row 5).Cbit.area_per_dff;
  Alcotest.(check (float 1e-2)) "d5 per-bit" 1.99 (row 4).Cbit.per_bit

let test_per_bit_decreases () =
  (* Fig. 4's lesson: longer CBITs cost less per bit. The published table
     itself dips at d1 (2.04 -> 2.09 -> ...), so the property holds from
     d2 onward, and the longest type is the cheapest per bit. *)
  let rows = Array.to_list Cbit.cost_table in
  let rec non_increasing = function
    | a :: (b :: _ as tl) ->
      a.Cbit.per_bit >= b.Cbit.per_bit && non_increasing tl
    | [ _ ] | [] -> true
  in
  (match rows with
   | _d1 :: rest -> Alcotest.(check bool) "monotone from d2" true (non_increasing rest)
   | [] -> Alcotest.fail "table empty");
  Alcotest.(check bool) "d6 cheapest" true
    (Cbit.cost_table.(5).Cbit.per_bit < Cbit.cost_table.(0).Cbit.per_bit)

let test_area_interpolation () =
  (* table lengths exact, intermediate lengths between neighbours *)
  Alcotest.(check (float 1e-9)) "exact 16" 32.21 (Cbit.area_per_dff 16);
  let a20 = Cbit.area_per_dff 20 in
  Alcotest.(check bool) "20 between 16 and 24" true (a20 > 32.21 && a20 < 47.66);
  Alcotest.(check bool) "overhead positive" true (Cbit.feedback_overhead 10 > 0.0)

let test_testing_time () =
  Alcotest.(check (float 1e-9)) "2^16" 65536.0 (Cbit.testing_time 16);
  Alcotest.(check (float 1e-9)) "2^24" 16777216.0 (Cbit.testing_time 24);
  Alcotest.check_raises "33" (Invalid_argument "Cbit.testing_time: length must be in 1..32")
    (fun () -> ignore (Cbit.testing_time 33))

let test_scan_chain_roundtrip () =
  let cb1 = Cbit.create ~width:4 () and cb2 = Cbit.create ~width:8 () in
  let chain = Scan_chain.create [ cb1; cb2 ] in
  Alcotest.(check int) "length" 12 (Scan_chain.total_bits chain);
  Scan_chain.initialise chain ~seeds:[ 0x5; 0xA7 ];
  Alcotest.(check int) "cb1 seeded" 0x5 (Cbit.state cb1);
  Alcotest.(check int) "cb2 seeded" 0xA7 (Cbit.state cb2)

let test_scan_chain_readout () =
  let cb1 = Cbit.create ~width:4 () and cb2 = Cbit.create ~width:4 () in
  let chain = Scan_chain.create [ cb1; cb2 ] in
  Cbit.load cb1 0x3;
  Cbit.load cb2 0xC;
  Alcotest.(check (list int)) "signatures" [ 0x3; 0xC ]
    (Scan_chain.read_signatures chain)

let test_scan_chain_full_session () =
  (* init -> TPG burst -> read out: states must match a reference LFSR *)
  let cb = Cbit.create ~width:8 () in
  let chain = Scan_chain.create [ cb ] in
  Scan_chain.initialise chain ~seeds:[ 1 ];
  Scan_chain.set_all_modes chain Acell.Tpg;
  for _ = 1 to 10 do
    Cbit.clock cb ()
  done;
  let l = Lfsr.create ~width:8 () in
  ignore (Lfsr.run l 10);
  Alcotest.(check (list int)) "burst result" [ Lfsr.state l ]
    (Scan_chain.read_signatures chain)

let test_scan_chain_seed_mismatch () =
  let chain = Scan_chain.create [ Cbit.create ~width:4 () ] in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Scan_chain.initialise: need one seed per CBIT")
    (fun () -> Scan_chain.initialise chain ~seeds:[ 1; 2 ])

let suite =
  [
    Alcotest.test_case "A_CELL areas (Fig. 3)" `Quick test_acell_areas;
    Alcotest.test_case "A_CELL mode behaviour" `Quick test_acell_modes;
    Alcotest.test_case "TPG mode = LFSR" `Quick test_cbit_tpg_equals_lfsr;
    Alcotest.test_case "PSA mode = MISR" `Quick test_cbit_psa_equals_misr;
    Alcotest.test_case "Normal mode transparent" `Quick test_cbit_normal_transparent;
    Alcotest.test_case "dual-mode switching" `Quick test_cbit_dual_mode_switch;
    Alcotest.test_case "Table 1 verbatim" `Quick test_cost_table_values;
    Alcotest.test_case "per-bit cost decreases (Fig. 4)" `Quick test_per_bit_decreases;
    Alcotest.test_case "area interpolation" `Quick test_area_interpolation;
    Alcotest.test_case "testing time 2^l" `Quick test_testing_time;
    Alcotest.test_case "scan chain initialise" `Quick test_scan_chain_roundtrip;
    Alcotest.test_case "scan chain readout" `Quick test_scan_chain_readout;
    Alcotest.test_case "scan full session" `Quick test_scan_chain_full_session;
    Alcotest.test_case "scan seed mismatch" `Quick test_scan_chain_seed_mismatch;
  ]
