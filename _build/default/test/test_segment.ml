module Circuit = Ppet_netlist.Circuit
module Segment = Ppet_netlist.Segment
module S27 = Ppet_netlist.S27

let s27_ids c names = Array.of_list (List.map (Circuit.find c) names)

let test_single_gate () =
  let c = S27.circuit () in
  (* G8 = AND(G14, G6): inputs are its two drivers, observed is itself *)
  let seg = Segment.of_members c (s27_ids c [ "G8" ]) in
  Alcotest.(check int) "iota" 2 (Segment.input_count seg);
  Alcotest.(check int) "observed" 1 (Array.length seg.Segment.observed);
  Alcotest.(check int) "no inside PIs" 0 (Array.length seg.Segment.inside_pis)

let test_pi_member () =
  let c = S27.circuit () in
  (* G0 (PI) + G14 = NOT(G0): PI counts as an input, G14 observed *)
  let seg = Segment.of_members c (s27_ids c [ "G0"; "G14" ]) in
  Alcotest.(check int) "iota = 1 (the PI)" 1 (Segment.input_count seg);
  Alcotest.(check int) "one inside PI" 1 (Array.length seg.Segment.inside_pis);
  Alcotest.(check int) "no external drivers" 0 (Array.length seg.Segment.input_drivers)

let test_observed_po () =
  let c = S27.circuit () in
  (* G17 = NOT(G11) is the PO; with G17 alone, it is observed as a PO *)
  let seg = Segment.of_members c (s27_ids c [ "G17" ]) in
  Alcotest.(check bool) "po observed" true
    (Array.exists (fun o -> o = Circuit.find c "G17") seg.Segment.observed)

let test_internal_not_observed () =
  let c = S27.circuit () in
  (* G12 feeds G15 and G13; with all three inside, G12 is internal *)
  let seg = Segment.of_members c (s27_ids c [ "G12"; "G15"; "G13" ]) in
  Alcotest.(check bool) "g12 hidden" false
    (Array.exists (fun o -> o = Circuit.find c "G12") seg.Segment.observed)

let test_input_signals_order () =
  let c = S27.circuit () in
  let seg = Segment.of_members c (s27_ids c [ "G0"; "G8" ]) in
  let signals = Segment.input_signals seg in
  Alcotest.(check int) "drivers then PIs" (Segment.input_count seg)
    (Array.length signals)

let test_mem () =
  let c = S27.circuit () in
  let seg = Segment.of_members c (s27_ids c [ "G8" ]) in
  Alcotest.(check bool) "member" true (Segment.mem seg (Circuit.find c "G8"));
  Alcotest.(check bool) "non-member" false (Segment.mem seg (Circuit.find c "G9"))

let test_duplicate_rejected () =
  let c = S27.circuit () in
  let g8 = Circuit.find c "G8" in
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Segment.of_members: duplicate node id") (fun () ->
      ignore (Segment.of_members c [| g8; g8 |]))

let test_bad_id_rejected () =
  let c = S27.circuit () in
  Alcotest.check_raises "range" (Invalid_argument "Segment.of_members: bad node id")
    (fun () -> ignore (Segment.of_members c [| 999 |]))

let test_whole_circuit () =
  let c = S27.circuit () in
  let all = Array.init (Circuit.size c) (fun i -> i) in
  let seg = Segment.of_members c all in
  (* everything inside: inputs are exactly the 4 PIs *)
  Alcotest.(check int) "iota = PIs" 4 (Segment.input_count seg);
  Alcotest.(check int) "no external drivers" 0
    (Array.length seg.Segment.input_drivers)

let suite =
  [
    Alcotest.test_case "single gate boundary" `Quick test_single_gate;
    Alcotest.test_case "PI member counts as input" `Quick test_pi_member;
    Alcotest.test_case "PO is observed" `Quick test_observed_po;
    Alcotest.test_case "internal node not observed" `Quick test_internal_not_observed;
    Alcotest.test_case "input signal ordering" `Quick test_input_signals_order;
    Alcotest.test_case "membership" `Quick test_mem;
    Alcotest.test_case "duplicate rejected" `Quick test_duplicate_rejected;
    Alcotest.test_case "bad id rejected" `Quick test_bad_id_rejected;
    Alcotest.test_case "whole circuit segment" `Quick test_whole_circuit;
  ]
