module Circuit = Ppet_netlist.Circuit
module Segment = Ppet_netlist.Segment
module Fault = Ppet_bist.Fault
module Parser = Ppet_netlist.Bench_parser
module S27 = Ppet_netlist.S27

let small () =
  Parser.parse_string "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ng = AND(a, b)\ny = NOT(g)\n"

let test_all_of_circuit_count () =
  let c = small () in
  (* outputs: a, b, g, y (4 sites); pins: g has 2, y has 1 (3 sites);
     two polarities each *)
  let faults = Fault.all_of_circuit c in
  Alcotest.(check int) "count" 14 (List.length faults);
  Alcotest.(check int) "sites" 7 (Fault.count_sites faults)

let test_of_segment_scope () =
  let c = small () in
  let seg = Segment.of_members c [| Circuit.find c "g" |] in
  let faults = Fault.of_segment c seg in
  (* g output + 2 pins, both polarities *)
  Alcotest.(check int) "count" 6 (List.length faults)

let test_collapse_single_fanout () =
  let c = small () in
  let faults = Fault.all_of_circuit c in
  let collapsed = Fault.collapse c faults in
  (* g's pins read single-fanout nets a,b -> collapsed into their output
     faults; y's pin likewise; only the 4 output sites remain *)
  Alcotest.(check int) "collapsed" 8 (List.length collapsed)

let test_collapse_keeps_fanout_pins () =
  let c =
    Parser.parse_string
      "INPUT(a)\nOUTPUT(y)\nOUTPUT(z)\ny = AND(a, a)\nz = NOT(a)\n"
  in
  let faults = Fault.all_of_circuit c in
  let collapsed = Fault.collapse c faults in
  (* a has fanout 3 (two pins of y + z): y's pin faults survive, z's pin
     is a NOT input (dominated) *)
  let pin_faults =
    List.filter
      (fun f -> match f.Fault.site with Fault.Input_pin _ -> true | Fault.Output _ -> false)
      collapsed
  in
  Alcotest.(check int) "fanout pins kept" 4 (List.length pin_faults)

let test_describe () =
  let c = small () in
  let g = Circuit.find c "g" in
  Alcotest.(check string) "output" "g output s-a-1"
    (Fault.describe c { Fault.site = Fault.Output g; stuck_at = true });
  Alcotest.(check string) "pin" "g input 0 s-a-0"
    (Fault.describe c { Fault.site = Fault.Input_pin (g, 0); stuck_at = false })

let test_s27_fault_count () =
  let c = S27.circuit () in
  let faults = Fault.all_of_circuit c in
  (* 17 outputs + pins: 3 DFF pins + 2 NOT pins + 8 two-input gates x2 =
     21 pins; (17+21) x 2 = 76 *)
  Alcotest.(check int) "s27 faults" 76 (List.length faults)

let suite =
  [
    Alcotest.test_case "fault universe of a circuit" `Quick test_all_of_circuit_count;
    Alcotest.test_case "segment-scoped faults" `Quick test_of_segment_scope;
    Alcotest.test_case "collapse merges single-fanout pins" `Quick test_collapse_single_fanout;
    Alcotest.test_case "collapse keeps fanout pins" `Quick test_collapse_keeps_fanout_pins;
    Alcotest.test_case "describe" `Quick test_describe;
    Alcotest.test_case "s27 fault count" `Quick test_s27_fault_count;
  ]
