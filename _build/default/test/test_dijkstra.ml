module Netgraph = Ppet_digraph.Netgraph
module Dijkstra = Ppet_digraph.Dijkstra
module Prng = Ppet_digraph.Prng

let simple () =
  (* 0 -e0(1)-> 1 -e1(1)-> 2 ; 0 -e2(3)-> 2 *)
  let g = Netgraph.create 3 in
  let e0 = Netgraph.add_net g ~src:0 ~sinks:[ 1 ] in
  let e1 = Netgraph.add_net g ~src:1 ~sinks:[ 2 ] in
  let e2 = Netgraph.add_net g ~src:0 ~sinks:[ 2 ] in
  let w = [| 1.0; 1.0; 3.0 |] in
  (g, (fun e -> w.(e)), e0, e1, e2)

let test_shortest () =
  let g, dist, _, _, _ = simple () in
  let t = Dijkstra.run g ~dist ~src:0 in
  Alcotest.(check (float 1e-9)) "d0" 0.0 t.Dijkstra.dist.(0);
  Alcotest.(check (float 1e-9)) "d1" 1.0 t.Dijkstra.dist.(1);
  Alcotest.(check (float 1e-9)) "d2" 2.0 t.Dijkstra.dist.(2)

let test_tree_nets () =
  let g, dist, e0, e1, _ = simple () in
  let t = Dijkstra.run g ~dist ~src:0 in
  let nets = Array.copy t.Dijkstra.tree_nets in
  Array.sort compare nets;
  Alcotest.(check (array int)) "tree follows cheap path" [| e0; e1 |] nets

let test_path_to () =
  let g, dist, e0, e1, _ = simple () in
  let t = Dijkstra.run g ~dist ~src:0 in
  Alcotest.(check (list int)) "path" [ e0; e1 ] (Dijkstra.path_to t g 2)

let test_unreachable () =
  let g = Netgraph.create 3 in
  let _ = Netgraph.add_net g ~src:0 ~sinks:[ 1 ] in
  let t = Dijkstra.run g ~dist:(fun _ -> 1.0) ~src:0 in
  Alcotest.(check bool) "2 unreachable" true (t.Dijkstra.dist.(2) = infinity);
  Alcotest.check_raises "path raises" Not_found (fun () ->
      ignore (Dijkstra.path_to t g 2))

let test_multisink_costs_once () =
  (* one net reaching two sinks: both get distance = weight of that net *)
  let g = Netgraph.create 3 in
  let e = Netgraph.add_net g ~src:0 ~sinks:[ 1; 2 ] in
  let t = Dijkstra.run g ~dist:(fun _ -> 2.5) ~src:0 in
  Alcotest.(check (float 1e-9)) "sink1" 2.5 t.Dijkstra.dist.(1);
  Alcotest.(check (float 1e-9)) "sink2" 2.5 t.Dijkstra.dist.(2);
  Alcotest.(check (array int)) "tree has one net" [| e |] t.Dijkstra.tree_nets

let test_negative_rejected () =
  let g = Netgraph.create 2 in
  let _ = Netgraph.add_net g ~src:0 ~sinks:[ 1 ] in
  Alcotest.check_raises "negative"
    (Invalid_argument "Dijkstra.run: negative net distance") (fun () ->
      ignore (Dijkstra.run g ~dist:(fun _ -> -1.0) ~src:0))

(* property: triangle inequality of the computed distances over the
   relaxation structure, and tree consistency d(v) = d(src e) + w(e) *)
let prop_relaxed =
  QCheck.Test.make ~name:"dijkstra fixpoint: no edge can relax further" ~count:100
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Prng.create (Int64.of_int (seed + 5)) in
      let n = 2 + Prng.int rng 30 in
      let g = Netgraph.create n in
      let m = 3 * n in
      let w = Array.init m (fun _ -> Prng.float rng 10.0) in
      for _ = 1 to m do
        let s = Prng.int rng n in
        let k = 1 + Prng.int rng 3 in
        let sinks = List.init k (fun _ -> Prng.int rng n) in
        ignore (Netgraph.add_net g ~src:s ~sinks)
      done;
      let t = Dijkstra.run g ~dist:(fun e -> w.(e)) ~src:0 in
      let ok = ref true in
      Netgraph.iter_nets g (fun e ~src ~sinks ->
          Array.iter
            (fun v ->
              if t.Dijkstra.dist.(src) +. w.(e) < t.Dijkstra.dist.(v) -. 1e-9
              then ok := false)
            sinks);
      (* via-net consistency *)
      for v = 0 to n - 1 do
        let e = t.Dijkstra.via.(v) in
        if e >= 0 then begin
          let s = Netgraph.net_src g e in
          if abs_float (t.Dijkstra.dist.(s) +. w.(e) -. t.Dijkstra.dist.(v)) > 1e-9
          then ok := false
        end
      done;
      !ok)

(* property: a workspace reused across many runs (different sources,
   different weights) gives exactly what fresh runs give — distances,
   via nets, and tree_nets in the same order *)
let prop_run_into_reuse =
  QCheck.Test.make ~name:"run_into reuse = fresh run" ~count:100
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Prng.create (Int64.of_int (seed + 17)) in
      let n = 2 + Prng.int rng 25 in
      let g = Netgraph.create n in
      let m = 3 * n in
      let w = Array.init m (fun _ -> Prng.float rng 10.0) in
      for _ = 1 to m do
        let s = Prng.int rng n in
        let sinks = List.init (1 + Prng.int rng 3) (fun _ -> Prng.int rng n) in
        ignore (Netgraph.add_net g ~src:s ~sinks)
      done;
      let ws = Dijkstra.workspace g in
      let ok = ref true in
      for round = 0 to 4 do
        let dist e = w.(e) +. float_of_int round in
        let src = Prng.int rng n in
        let fresh = Dijkstra.run g ~dist ~src in
        let reused = Dijkstra.run_into ws g ~dist ~src in
        if
          Array.to_list reused.Dijkstra.dist <> Array.to_list fresh.Dijkstra.dist
          || Array.to_list reused.Dijkstra.via <> Array.to_list fresh.Dijkstra.via
          || reused.Dijkstra.tree_nets <> fresh.Dijkstra.tree_nets
        then ok := false
      done;
      !ok)

let test_run_into_too_small () =
  let g = Netgraph.create 2 in
  let _ = Netgraph.add_net g ~src:0 ~sinks:[ 1 ] in
  let ws = Dijkstra.workspace g in
  let _ = Netgraph.add_net g ~src:1 ~sinks:[ 0 ] in
  Alcotest.check_raises "stale workspace"
    (Invalid_argument "Dijkstra.run_into: workspace too small for this graph")
    (fun () -> ignore (Dijkstra.run_into ws g ~dist:(fun _ -> 1.0) ~src:0))

let suite =
  [
    Alcotest.test_case "shortest distances" `Quick test_shortest;
    Alcotest.test_case "tree nets" `Quick test_tree_nets;
    Alcotest.test_case "path reconstruction" `Quick test_path_to;
    Alcotest.test_case "unreachable vertices" `Quick test_unreachable;
    Alcotest.test_case "multi-sink net costs once" `Quick test_multisink_costs_once;
    Alcotest.test_case "negative distance rejected" `Quick test_negative_rejected;
    Alcotest.test_case "run_into rejects a stale workspace" `Quick test_run_into_too_small;
    QCheck_alcotest.to_alcotest prop_relaxed;
    QCheck_alcotest.to_alcotest prop_run_into_reuse;
  ]
