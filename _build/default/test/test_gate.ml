module Gate = Ppet_netlist.Gate

let test_names_roundtrip () =
  List.iter
    (fun k ->
      match k with
      | Gate.Input -> Alcotest.(check bool) "input unnamed" true (Gate.of_name "INPUT" = None)
      | _ ->
        Alcotest.(check bool)
          (Gate.name k ^ " roundtrips")
          true
          (Gate.of_name (Gate.name k) = Some k))
    Gate.all

let test_of_name_aliases () =
  Alcotest.(check bool) "BUF" true (Gate.of_name "BUF" = Some Gate.Buff);
  Alcotest.(check bool) "buff lowercase" true (Gate.of_name "buff" = Some Gate.Buff);
  Alcotest.(check bool) "INV" true (Gate.of_name "INV" = Some Gate.Not);
  Alcotest.(check bool) "dff lowercase" true (Gate.of_name "dff" = Some Gate.Dff);
  Alcotest.(check bool) "garbage" true (Gate.of_name "FOO" = None)

let test_arity () =
  Alcotest.(check bool) "NOT unary" true (Gate.arity_ok Gate.Not 1);
  Alcotest.(check bool) "NOT not binary" false (Gate.arity_ok Gate.Not 2);
  Alcotest.(check bool) "AND binary" true (Gate.arity_ok Gate.And 2);
  Alcotest.(check bool) "AND quaternary" true (Gate.arity_ok Gate.And 4);
  Alcotest.(check bool) "AND not unary" false (Gate.arity_ok Gate.And 1);
  Alcotest.(check bool) "DFF unary" true (Gate.arity_ok Gate.Dff 1);
  Alcotest.(check bool) "INPUT nullary" true (Gate.arity_ok Gate.Input 0)

let test_area_paper_numbers () =
  (* the unit costs of Sec. 4 *)
  Alcotest.(check (float 1e-9)) "INV" 1.0 (Gate.area Gate.Not 1);
  Alcotest.(check (float 1e-9)) "AND2" 3.0 (Gate.area Gate.And 2);
  Alcotest.(check (float 1e-9)) "NAND2" 2.0 (Gate.area Gate.Nand 2);
  Alcotest.(check (float 1e-9)) "OR2" 3.0 (Gate.area Gate.Or 2);
  Alcotest.(check (float 1e-9)) "NOR2" 2.0 (Gate.area Gate.Nor 2);
  Alcotest.(check (float 1e-9)) "XOR2" 4.0 (Gate.area Gate.Xor 2);
  Alcotest.(check (float 1e-9)) "DFF" 10.0 (Gate.area Gate.Dff 1);
  Alcotest.(check (float 1e-9)) "MUX const" 3.0 Gate.mux2_area

let test_area_fanin_scaling () =
  (* 1 extra unit per input beyond two *)
  Alcotest.(check (float 1e-9)) "AND3" 4.0 (Gate.area Gate.And 3);
  Alcotest.(check (float 1e-9)) "NAND4" 4.0 (Gate.area Gate.Nand 4);
  Alcotest.check_raises "bad arity" (Invalid_argument "Gate.area: NOT cannot take 2 inputs")
    (fun () -> ignore (Gate.area Gate.Not 2))

let test_eval_truth_tables () =
  let t = true and f = false in
  Alcotest.(check bool) "and" true (Gate.eval Gate.And [| t; t |]);
  Alcotest.(check bool) "and f" false (Gate.eval Gate.And [| t; f |]);
  Alcotest.(check bool) "nand" true (Gate.eval Gate.Nand [| t; f |]);
  Alcotest.(check bool) "or" true (Gate.eval Gate.Or [| f; t |]);
  Alcotest.(check bool) "nor" true (Gate.eval Gate.Nor [| f; f |]);
  Alcotest.(check bool) "xor" true (Gate.eval Gate.Xor [| t; f |]);
  Alcotest.(check bool) "xor even" false (Gate.eval Gate.Xor [| t; t |]);
  Alcotest.(check bool) "xnor" true (Gate.eval Gate.Xnor [| t; t |]);
  Alcotest.(check bool) "not" true (Gate.eval Gate.Not [| f |]);
  Alcotest.(check bool) "buff" true (Gate.eval Gate.Buff [| t |])

let test_eval_multi_input () =
  Alcotest.(check bool) "and3" false (Gate.eval Gate.And [| true; true; false |]);
  Alcotest.(check bool) "or4" true (Gate.eval Gate.Or [| false; false; false; true |]);
  Alcotest.(check bool) "xor3 parity" true
    (Gate.eval Gate.Xor [| true; true; true |])

let test_eval_rejects_sequential () =
  Alcotest.check_raises "dff" (Invalid_argument "Gate.eval: not a combinational gate")
    (fun () -> ignore (Gate.eval Gate.Dff [| true |]))

(* property: word evaluation agrees with bit evaluation on every lane *)
let prop_word_matches_bool =
  let kinds = [| Gate.Buff; Gate.Not; Gate.And; Gate.Nand; Gate.Or; Gate.Nor; Gate.Xor; Gate.Xnor |] in
  QCheck.Test.make ~name:"eval_word agrees with eval per lane" ~count:300
    QCheck.(triple (int_bound 7) (int_bound 2) (int_bound 0x3FFFFFF))
    (fun (ki, extra, seed) ->
      let kind = kinds.(ki) in
      let arity = match kind with Gate.Buff | Gate.Not -> 1 | _ -> 2 + extra in
      let rng = Ppet_digraph.Prng.create (Int64.of_int (seed + 1)) in
      let words =
        Array.init arity (fun _ ->
            Int64.to_int (Int64.logand (Ppet_digraph.Prng.next_int64 rng) (Int64.of_int max_int)))
      in
      let wout = Gate.eval_word kind words in
      let ok = ref true in
      for b = 0 to Gate.bits_per_word - 1 do
        let bits = Array.map (fun w -> (w lsr b) land 1 = 1) words in
        let expect = Gate.eval kind bits in
        if ((wout lsr b) land 1 = 1) <> expect then ok := false
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "names roundtrip" `Quick test_names_roundtrip;
    Alcotest.test_case "name aliases" `Quick test_of_name_aliases;
    Alcotest.test_case "arity rules" `Quick test_arity;
    Alcotest.test_case "paper area numbers" `Quick test_area_paper_numbers;
    Alcotest.test_case "fan-in area scaling" `Quick test_area_fanin_scaling;
    Alcotest.test_case "truth tables" `Quick test_eval_truth_tables;
    Alcotest.test_case "multi-input gates" `Quick test_eval_multi_input;
    Alcotest.test_case "sequential not evaluable" `Quick test_eval_rejects_sequential;
    QCheck_alcotest.to_alcotest prop_word_matches_bool;
  ]
