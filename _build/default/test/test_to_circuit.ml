module Circuit = Ppet_netlist.Circuit
module Parser = Ppet_netlist.Bench_parser
module Generator = Ppet_netlist.Generator
module Stats = Ppet_netlist.Stats
module Rgraph = Ppet_retiming.Rgraph
module Retime = Ppet_retiming.Retime
module To_circuit = Ppet_retiming.To_circuit
module L = Ppet_retiming.Logic3
module S27 = Ppet_netlist.S27

let roundtrip c =
  let rg = Rgraph.of_circuit c in
  To_circuit.circuit_of rg

let test_roundtrip_preserves_registers () =
  let c = S27.circuit () in
  let e = roundtrip c in
  Alcotest.(check int) "same register count"
    (Array.length (Circuit.dffs c))
    (Array.length (Circuit.dffs e.To_circuit.circuit))

let test_roundtrip_preserves_gates () =
  let c = S27.circuit () in
  let e = roundtrip c in
  let s = Stats.of_circuit c and s' = Stats.of_circuit e.To_circuit.circuit in
  Alcotest.(check int) "gates" s.Stats.n_gates s'.Stats.n_gates;
  Alcotest.(check int) "invs" s.Stats.n_inv s'.Stats.n_inv;
  Alcotest.(check int) "pis" s.Stats.n_pi s'.Stats.n_pi;
  Alcotest.(check int) "pos" s.Stats.n_po s'.Stats.n_po

let test_roundtrip_inits_zero () =
  let c = S27.circuit () in
  let e = roundtrip c in
  List.iter
    (fun (name, v) ->
      Alcotest.(check bool) (name ^ " zero") true (L.equal v L.Zero))
    e.To_circuit.register_inits

let cosim_equal c =
  (* original vs emitted, 3-valued, on random concrete inputs *)
  let rg = Rgraph.of_circuit c in
  let e = To_circuit.circuit_of rg in
  let rg' =
    Rgraph.of_circuit ~init:(To_circuit.init_fn e) e.To_circuit.circuit
  in
  let rng = Ppet_digraph.Prng.create 31L in
  let stim = Hashtbl.create 16 in
  let inputs ~cycle name =
    match Hashtbl.find_opt stim (cycle, name) with
    | Some v -> v
    | None ->
      let v = if Ppet_digraph.Prng.bool rng then L.One else L.Zero in
      Hashtbl.replace stim (cycle, name) v;
      v
  in
  let cycles = 8 in
  let a = Rgraph.simulate rg ~inputs ~cycles in
  let b = Rgraph.simulate rg' ~inputs ~cycles in
  let ok = ref true in
  for t = 0 to cycles - 1 do
    (* outputs are positionally aligned: same PO order *)
    List.iter2
      (fun (_, v0) (_, v1) -> if not (L.compatible v0 v1) then ok := false)
      a.(t) b.(t)
  done;
  !ok

let test_roundtrip_behaviour () =
  Alcotest.(check bool) "s27 behaviour preserved" true (cosim_equal (S27.circuit ()))

let test_retimed_emission_behaviour () =
  (* a pipeline where the register in front of the inverter must move
     forward across it; emit the retimed netlist and co-simulate *)
  let src =
    "INPUT(a)\nOUTPUT(y)\nq1 = DFF(a)\ng1 = NOT(q1)\nq2 = DFF(g1)\n\
     y = BUFF(q2)\n"
  in
  let c = Parser.parse_string ~title:"pipe" src in
  let rg = Rgraph.of_circuit c in
  let target =
    let rec find v =
      if Rgraph.vertex_name rg v = "g1" then v else find (v + 1)
    in
    find 0
  in
  let require e = if rg.Rgraph.edges.(e).Rgraph.tail = target then 2 else 0 in
  match Retime.solve rg ~require with
  | Retime.Infeasible _ -> Alcotest.fail "expected feasible"
  | Retime.Feasible rho ->
    let rg' = Retime.apply rg rho in
    let e = To_circuit.circuit_of ~title:"pipe-retimed" rg' in
    (* the emitted netlist has both registers after g1 *)
    let c' = e.To_circuit.circuit in
    let g1 = Circuit.find c' "g1" in
    let feeds_dff =
      Array.exists
        (fun s -> (Circuit.node c' s).Circuit.kind = Ppet_netlist.Gate.Dff)
        c'.Circuit.fanouts.(g1)
    in
    Alcotest.(check bool) "register at g1 output" true feeds_dff;
    Alcotest.(check int) "two registers" 2
      (Array.length (Circuit.dffs c'));
    (* the moved register's initial value was inverted: one init is 1 *)
    Alcotest.(check bool) "justified init" true
      (List.exists (fun (_, v) -> L.equal v L.One) e.To_circuit.register_inits);
    (* and behaves like the original *)
    let rg'' = Rgraph.of_circuit ~init:(To_circuit.init_fn e) c' in
    let rng = Ppet_digraph.Prng.create 17L in
    let stim = Hashtbl.create 16 in
    let inputs ~cycle name =
      match Hashtbl.find_opt stim (cycle, name) with
      | Some v -> v
      | None ->
        let v = if Ppet_digraph.Prng.bool rng then L.One else L.Zero in
        Hashtbl.replace stim (cycle, name) v;
        v
    in
    let a = Rgraph.simulate (Rgraph.of_circuit c) ~inputs ~cycles:8 in
    let b = Rgraph.simulate rg'' ~inputs ~cycles:8 in
    for t = 0 to 7 do
      List.iter2
        (fun (_, v0) (_, v1) ->
          Alcotest.(check bool)
            (Printf.sprintf "cycle %d compatible" t)
            true (L.compatible v0 v1))
        a.(t) b.(t)
    done

let test_emitted_is_writable () =
  let e = roundtrip (S27.circuit ()) in
  let text = Ppet_netlist.Bench_writer.to_string e.To_circuit.circuit in
  let c2 = Parser.parse_string text in
  Alcotest.(check int) "reparses" (Circuit.size e.To_circuit.circuit) (Circuit.size c2)

let prop_roundtrip_random =
  QCheck.Test.make ~name:"emission round-trip preserves behaviour" ~count:25
    QCheck.(int_bound 100_000)
    (fun seed ->
      let c =
        Generator.small_random ~seed:(Int64.of_int (seed + 41)) ~n_pi:3
          ~n_dff:5 ~n_gates:20
      in
      cosim_equal c)

let prop_retime_emit_random =
  QCheck.Test.make ~name:"retime+emit preserves behaviour" ~count:15
    QCheck.(pair (int_bound 100_000) (int_bound 5))
    (fun (seed, pick) ->
      let c =
        Generator.small_random ~seed:(Int64.of_int (seed + 43)) ~n_pi:3
          ~n_dff:4 ~n_gates:15
      in
      let rg = Rgraph.of_circuit c in
      let gates = ref [] in
      for v = 0 to Rgraph.n_vertices rg - 1 do
        match rg.Rgraph.kinds.(v) with
        | Rgraph.Vgate _ -> gates := v :: !gates
        | Rgraph.Vpi _ | Rgraph.Vhost -> ()
      done;
      let gates = Array.of_list !gates in
      QCheck.assume (Array.length gates > 0);
      let target = gates.(pick mod Array.length gates) in
      let require e =
        if rg.Rgraph.edges.(e).Rgraph.tail = target then 1 else 0
      in
      match Retime.solve rg ~require with
      | Retime.Infeasible _ -> true
      | Retime.Feasible rho ->
        let e = To_circuit.circuit_of (Retime.apply rg rho) in
        let rg'' =
          Rgraph.of_circuit ~init:(To_circuit.init_fn e) e.To_circuit.circuit
        in
        let rng = Ppet_digraph.Prng.create 53L in
        let stim = Hashtbl.create 16 in
        let inputs ~cycle name =
          match Hashtbl.find_opt stim (cycle, name) with
          | Some v -> v
          | None ->
            let v = if Ppet_digraph.Prng.bool rng then L.One else L.Zero in
            Hashtbl.replace stim (cycle, name) v;
            v
        in
        let a = Rgraph.simulate rg ~inputs ~cycles:8 in
        let b = Rgraph.simulate rg'' ~inputs ~cycles:8 in
        let ok = ref true in
        for t = 0 to 7 do
          List.iter2
            (fun (_, v0) (_, v1) ->
              if not (L.compatible v0 v1) then ok := false)
            a.(t) b.(t)
        done;
        !ok)

let suite =
  [
    Alcotest.test_case "round trip register count" `Quick test_roundtrip_preserves_registers;
    Alcotest.test_case "round trip gate counts" `Quick test_roundtrip_preserves_gates;
    Alcotest.test_case "round trip zero inits" `Quick test_roundtrip_inits_zero;
    Alcotest.test_case "round trip behaviour" `Quick test_roundtrip_behaviour;
    Alcotest.test_case "retimed netlist emission" `Quick test_retimed_emission_behaviour;
    Alcotest.test_case "emitted netlist writable" `Quick test_emitted_is_writable;
    QCheck_alcotest.to_alcotest prop_roundtrip_random;
    QCheck_alcotest.to_alcotest prop_retime_emit_random;
  ]
