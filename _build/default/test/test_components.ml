module Netgraph = Ppet_digraph.Netgraph
module Components = Ppet_digraph.Components
module Union_find = Ppet_digraph.Union_find
module Traverse = Ppet_digraph.Traverse

let chain () =
  let g = Netgraph.create 4 in
  let e0 = Netgraph.add_net g ~src:0 ~sinks:[ 1 ] in
  let e1 = Netgraph.add_net g ~src:1 ~sinks:[ 2 ] in
  let e2 = Netgraph.add_net g ~src:2 ~sinks:[ 3 ] in
  (g, e0, e1, e2)

let test_weak_all_kept () =
  let g, _, _, _ = chain () in
  let p = Components.weak g ~keep:(fun _ -> true) in
  Alcotest.(check int) "one component" 1 p.Components.count

let test_weak_cut_middle () =
  let g, _, e1, _ = chain () in
  let p = Components.weak g ~keep:(fun e -> e <> e1) in
  Alcotest.(check int) "two components" 2 p.Components.count;
  Alcotest.(check bool) "0,1 together" true
    (p.Components.cluster.(0) = p.Components.cluster.(1));
  Alcotest.(check bool) "2,3 together" true
    (p.Components.cluster.(2) = p.Components.cluster.(3))

let test_weak_none_kept () =
  let g, _, _, _ = chain () in
  let p = Components.weak g ~keep:(fun _ -> false) in
  Alcotest.(check int) "all singletons" 4 p.Components.count

let test_weak_ignores_direction () =
  let g = Netgraph.create 2 in
  let _ = Netgraph.add_net g ~src:1 ~sinks:[ 0 ] in
  let p = Components.weak g ~keep:(fun _ -> true) in
  Alcotest.(check int) "undirected connection" 1 p.Components.count

let test_restrict () =
  let g, _, _, _ = chain () in
  let pieces = Components.restrict g ~vertices:[| 0; 1; 3 |] ~keep:(fun _ -> true) in
  (* 0-1 connected inside, 3 separate (2 not in the subset) *)
  Alcotest.(check int) "two pieces" 2 (Array.length pieces);
  let sizes = Array.map Array.length pieces in
  Array.sort compare sizes;
  Alcotest.(check (array int)) "sizes" [| 1; 2 |] sizes

let test_cut_nets () =
  let g, e0, e1, e2 = chain () in
  let labels = [| 0; 0; 1; 1 |] in
  Alcotest.(check (list int)) "only middle cut" [ e1 ]
    (Components.cut_nets g labels);
  let labels2 = [| 0; 1; 2; 3 |] in
  Alcotest.(check (list int)) "all cut" [ e0; e1; e2 ]
    (Components.cut_nets g labels2)

let test_cut_nets_multisink () =
  let g = Netgraph.create 3 in
  let e = Netgraph.add_net g ~src:0 ~sinks:[ 1; 2 ] in
  (* net counted once even when it crosses to two different clusters *)
  Alcotest.(check (list int)) "once" [ e ]
    (Components.cut_nets g [| 0; 1; 2 |])

let test_union_find_basics () =
  let uf = Union_find.create 5 in
  Alcotest.(check bool) "initially disjoint" false (Union_find.same uf 0 1);
  Union_find.union uf 0 1;
  Union_find.union uf 1 2;
  Alcotest.(check bool) "transitively joined" true (Union_find.same uf 0 2);
  Alcotest.(check bool) "others untouched" false (Union_find.same uf 0 3);
  let groups = Union_find.groups uf in
  Alcotest.(check int) "three groups" 3 (Array.length groups)

let test_union_find_idempotent () =
  let uf = Union_find.create 3 in
  Union_find.union uf 0 1;
  Union_find.union uf 0 1;
  Union_find.union uf 1 0;
  Alcotest.(check int) "still two groups" 2 (Array.length (Union_find.groups uf))

let test_reachable () =
  let g, _, _, _ = chain () in
  let r = Traverse.reachable g ~from:[ 1 ] in
  Alcotest.(check (array bool)) "forward cone" [| false; true; true; true |] r;
  let co = Traverse.co_reachable g ~from:[ 1 ] in
  Alcotest.(check (array bool)) "backward cone" [| true; true; false; false |] co

let test_topological () =
  let g, _, _, _ = chain () in
  (match Traverse.topological g with
   | Some order -> Alcotest.(check (array int)) "chain order" [| 0; 1; 2; 3 |] order
   | None -> Alcotest.fail "chain is acyclic");
  let g2 = Netgraph.create 2 in
  let _ = Netgraph.add_net g2 ~src:0 ~sinks:[ 1 ] in
  let _ = Netgraph.add_net g2 ~src:1 ~sinks:[ 0 ] in
  Alcotest.(check bool) "cycle detected" true (Traverse.topological g2 = None)

let test_levels () =
  let g = Netgraph.create 4 in
  let _ = Netgraph.add_net g ~src:0 ~sinks:[ 1; 2 ] in
  let _ = Netgraph.add_net g ~src:1 ~sinks:[ 3 ] in
  let _ = Netgraph.add_net g ~src:2 ~sinks:[ 3 ] in
  let lv = Traverse.longest_path_levels g ~roots:[ 0 ] in
  Alcotest.(check (array int)) "levels" [| 0; 1; 1; 2 |] lv

let suite =
  [
    Alcotest.test_case "weak: everything kept" `Quick test_weak_all_kept;
    Alcotest.test_case "weak: cut in the middle" `Quick test_weak_cut_middle;
    Alcotest.test_case "weak: nothing kept" `Quick test_weak_none_kept;
    Alcotest.test_case "weak ignores direction" `Quick test_weak_ignores_direction;
    Alcotest.test_case "restrict to subset" `Quick test_restrict;
    Alcotest.test_case "cut nets of a labelling" `Quick test_cut_nets;
    Alcotest.test_case "multi-sink cut counted once" `Quick test_cut_nets_multisink;
    Alcotest.test_case "union-find basics" `Quick test_union_find_basics;
    Alcotest.test_case "union-find idempotent" `Quick test_union_find_idempotent;
    Alcotest.test_case "reachability both ways" `Quick test_reachable;
    Alcotest.test_case "topological sort" `Quick test_topological;
    Alcotest.test_case "longest-path levels" `Quick test_levels;
  ]
