module Circuit = Ppet_netlist.Circuit
module Segment = Ppet_netlist.Segment
module Parser = Ppet_netlist.Bench_parser
module Fault = Ppet_bist.Fault
module Diagnosis = Ppet_bist.Diagnosis
module Simulator = Ppet_bist.Simulator
module S27 = Ppet_netlist.S27

let seg_of c names =
  Segment.of_members c (Array.of_list (List.map (Circuit.find c) names))

let and_setup () =
  let c = Parser.parse_string "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n" in
  let sim = Simulator.create c in
  let seg = seg_of c [ "y" ] in
  let faults = Fault.of_segment c seg in
  (c, sim, seg, faults)

let test_dictionary_basics () =
  let _, sim, seg, faults = and_setup () in
  let d = Diagnosis.build sim seg ~misr_width:8 faults in
  Alcotest.(check bool) "classes positive" true
    (Diagnosis.distinguishable_classes d > 0);
  Alcotest.(check (list bool)) "nothing undiagnosable" []
    (List.map (fun _ -> true) (Diagnosis.undiagnosable d))

let test_lookup_roundtrip () =
  (* building a dictionary, then observing each fault's signature,
     returns a candidate set containing that fault *)
  let c, sim, seg, faults = and_setup () in
  let d = Diagnosis.build sim seg ~misr_width:8 faults in
  let member = Array.make (Circuit.size c) false in
  Array.iter (fun id -> member.(id) <- true) seg.Segment.members;
  List.iter
    (fun f ->
      (* recompute the fault's signature by rebuilding a single-fault
         dictionary — same deterministic session *)
      let d1 = Diagnosis.build sim seg ~misr_width:8 [ f ] in
      let s =
        match Diagnosis.undiagnosable d1 with
        | [] ->
          (* detected: its signature is the only non-fault-free key *)
          let found = ref None in
          for sig_ = 0 to 255 do
            if sig_ <> Diagnosis.fault_free d1 && Diagnosis.lookup d1 sig_ <> []
            then found := Some sig_
          done;
          (match !found with Some s -> s | None -> Alcotest.fail "no signature")
        | _ -> Diagnosis.fault_free d1
      in
      let candidates = Diagnosis.lookup d s in
      Alcotest.(check bool)
        (Fault.describe c f ^ " in candidates")
        true
        (List.exists (Fault.equal f) candidates
         || s = Diagnosis.fault_free d))
    faults

let test_fault_free_differs () =
  let _, sim, seg, faults = and_setup () in
  let d = Diagnosis.build sim seg ~misr_width:8 faults in
  (* every AND-gate fault is detectable, so no faulty signature may equal
     the fault-free one *)
  Alcotest.(check int) "no escapes" 0 (List.length (Diagnosis.undiagnosable d))

let test_resolution_bounds () =
  let _, sim, seg, faults = and_setup () in
  let d = Diagnosis.build sim seg ~misr_width:8 faults in
  let r = Diagnosis.resolution d in
  Alcotest.(check bool) "in (0,1]" true (r > 0.0 && r <= 1.0)

let test_s27_dictionary () =
  let c = S27.circuit () in
  let sim = Simulator.create c in
  let seg = Segment.of_members c (Circuit.combinational c) in
  let faults = Fault.collapse c (Fault.of_segment c seg) in
  let d = Diagnosis.build sim seg ~misr_width:16 faults in
  (* the redundant faults of the exhaustive run are exactly the
     undiagnosable ones (MISR aliasing at width 16 over 128 cycles is
     negligible but not impossible; allow a small slack) *)
  let pet = Ppet_bist.Pet.run ~collapse:true sim seg in
  let und = List.length (Diagnosis.undiagnosable d) in
  Alcotest.(check bool)
    (Printf.sprintf "undiagnosable %d ~ redundant %d" und pet.Ppet_bist.Pet.n_redundant)
    true
    (und >= pet.Ppet_bist.Pet.n_redundant
     && und <= pet.Ppet_bist.Pet.n_redundant + 2);
  Alcotest.(check bool) "good resolution" true (Diagnosis.resolution d > 0.3)

let test_width_guards () =
  let _, sim, seg, faults = and_setup () in
  Alcotest.(check bool) "bad misr width" true
    (try
       ignore (Diagnosis.build sim seg ~misr_width:0 faults);
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "dictionary basics" `Quick test_dictionary_basics;
    Alcotest.test_case "lookup round trip" `Quick test_lookup_roundtrip;
    Alcotest.test_case "fault-free distinct" `Quick test_fault_free_differs;
    Alcotest.test_case "resolution bounds" `Quick test_resolution_bounds;
    Alcotest.test_case "s27 dictionary vs PET" `Quick test_s27_dictionary;
    Alcotest.test_case "width guards" `Quick test_width_guards;
  ]
