module Lfsr = Ppet_bist.Lfsr
module Misr = Ppet_bist.Misr
module Gf2_poly = Ppet_bist.Gf2_poly

let test_maximal_period () =
  (* primitive polynomial -> period 2^n - 1 (the pseudo-exhaustive core) *)
  List.iter
    (fun w ->
      let l = Lfsr.create ~width:w () in
      Alcotest.(check int)
        (Printf.sprintf "width %d" w)
        ((1 lsl w) - 1)
        (Lfsr.period l))
    [ 2; 3; 4; 8; 12; 16 ]

let test_non_primitive_shorter () =
  (* x^4+x^3+x^2+x+1 has order 5 *)
  let l = Lfsr.create ~poly:0b11111 ~width:4 () in
  Alcotest.(check int) "period 5" 5 (Lfsr.period l)

let test_never_zero () =
  let l = Lfsr.create ~width:6 () in
  for _ = 1 to 100 do
    Alcotest.(check bool) "nonzero" true (Lfsr.step l <> 0)
  done

let test_zero_absorbing () =
  let l = Lfsr.create ~width:4 () in
  Lfsr.set_state l 0;
  Alcotest.(check int) "zero stays" 0 (Lfsr.step l);
  Alcotest.(check int) "period of zero" 1 (Lfsr.period l)

let test_covers_all_states () =
  let w = 8 in
  let l = Lfsr.create ~width:w () in
  let seen = Array.make (1 lsl w) false in
  seen.(Lfsr.state l) <- true;
  for _ = 1 to (1 lsl w) - 2 do
    seen.(Lfsr.step l) <- true
  done;
  let missing = ref 0 in
  Array.iteri (fun i s -> if (not s) && i <> 0 then incr missing) seen;
  Alcotest.(check int) "all non-zero states visited" 0 !missing

let test_deterministic_sequence () =
  let a = Lfsr.create ~width:8 () and b = Lfsr.create ~width:8 () in
  Alcotest.(check (list int)) "same" (Lfsr.sequence a 50) (Lfsr.sequence b 50)

let test_run () =
  let a = Lfsr.create ~width:8 () and b = Lfsr.create ~width:8 () in
  let fin = Lfsr.run a 37 in
  ignore (Lfsr.sequence b 37);
  Alcotest.(check int) "run = 37 steps" (Lfsr.state b) fin

let test_bad_widths () =
  Alcotest.check_raises "0" (Invalid_argument "Lfsr.create: width must be in 1..32")
    (fun () -> ignore (Lfsr.create ~width:0 ()));
  Alcotest.check_raises "33" (Invalid_argument "Lfsr.create: width must be in 1..32")
    (fun () -> ignore (Lfsr.create ~width:33 ()));
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Lfsr.create: polynomial degree differs from width")
    (fun () -> ignore (Lfsr.create ~poly:0b111 ~width:4 ()))

let test_set_state_guard () =
  let l = Lfsr.create ~width:4 () in
  Alcotest.check_raises "wide" (Invalid_argument "Lfsr.set_state: value too wide")
    (fun () -> Lfsr.set_state l 16)

let test_misr_distinguishes_streams () =
  let s1 = [ 1; 2; 3; 4; 5 ] and s2 = [ 1; 2; 3; 4; 6 ] in
  Alcotest.(check bool) "different signatures" true
    (Misr.reference ~width:8 s1 <> Misr.reference ~width:8 s2)

let test_misr_deterministic () =
  let s = [ 9; 8; 7; 6 ] in
  Alcotest.(check int) "stable" (Misr.reference ~width:8 s) (Misr.reference ~width:8 s)

let test_misr_zero_stream () =
  (* all-zero stream from zero state keeps the zero signature *)
  Alcotest.(check int) "zero" 0 (Misr.reference ~width:8 [ 0; 0; 0; 0 ])

let test_misr_absorb_incremental () =
  let m = Misr.create ~width:8 () in
  ignore (Misr.absorb m 5);
  ignore (Misr.absorb m 9);
  Alcotest.(check int) "same as reference" (Misr.reference ~width:8 [ 5; 9 ])
    (Misr.signature m)

(* property: MISR is linear — signature of (a xor b) stream equals
   signature(a) xor signature(b) when starting from zero *)
let prop_misr_linear =
  QCheck.Test.make ~name:"MISR linearity over GF(2)" ~count:200
    QCheck.(pair (list_of_size Gen.(1 -- 20) (int_bound 255))
              (list_of_size Gen.(1 -- 20) (int_bound 255)))
    (fun (a, b) ->
      let n = min (List.length a) (List.length b) in
      let take l = List.filteri (fun i _ -> i < n) l in
      let a = take a and b = take b in
      let x = List.map2 ( lxor ) a b in
      Misr.reference ~width:8 x
      = Misr.reference ~width:8 a lxor Misr.reference ~width:8 b)

(* property: single-bit corruption is always detected (non-aliasing for
   one fault) *)
let prop_misr_single_corruption =
  QCheck.Test.make ~name:"MISR detects any single-word corruption" ~count:200
    QCheck.(triple (list_of_size Gen.(1 -- 20) (int_bound 255)) (int_bound 19) (int_range 1 255))
    (fun (stream, pos, flip) ->
      QCheck.assume (pos < List.length stream);
      let corrupted =
        List.mapi (fun i w -> if i = pos then w lxor flip else w) stream
      in
      Misr.reference ~width:8 stream <> Misr.reference ~width:8 corrupted)

let test_lfsr_consistent_with_gf2 () =
  (* the LFSR's state sequence has period equal to the order of x *)
  let poly = Gf2_poly.primitive 10 in
  let l = Lfsr.create ~poly ~width:10 () in
  Alcotest.(check int) "period = 2^10 - 1" 1023 (Lfsr.period l)

let suite =
  [
    Alcotest.test_case "maximal period (primitive)" `Quick test_maximal_period;
    Alcotest.test_case "non-primitive shorter period" `Quick test_non_primitive_shorter;
    Alcotest.test_case "never reaches zero" `Quick test_never_zero;
    Alcotest.test_case "zero state absorbs" `Quick test_zero_absorbing;
    Alcotest.test_case "covers all non-zero states" `Quick test_covers_all_states;
    Alcotest.test_case "deterministic sequence" `Quick test_deterministic_sequence;
    Alcotest.test_case "run equals repeated step" `Quick test_run;
    Alcotest.test_case "width guards" `Quick test_bad_widths;
    Alcotest.test_case "set_state guard" `Quick test_set_state_guard;
    Alcotest.test_case "MISR distinguishes streams" `Quick test_misr_distinguishes_streams;
    Alcotest.test_case "MISR deterministic" `Quick test_misr_deterministic;
    Alcotest.test_case "MISR zero stream" `Quick test_misr_zero_stream;
    Alcotest.test_case "MISR incremental absorb" `Quick test_misr_absorb_incremental;
    Alcotest.test_case "LFSR period via GF(2) order" `Quick test_lfsr_consistent_with_gf2;
    QCheck_alcotest.to_alcotest prop_misr_linear;
    QCheck_alcotest.to_alcotest prop_misr_single_corruption;
  ]
