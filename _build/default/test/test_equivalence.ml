module Circuit = Ppet_netlist.Circuit
module Gate = Ppet_netlist.Gate
module Parser = Ppet_netlist.Bench_parser
module Generator = Ppet_netlist.Generator
module Equivalence = Ppet_core.Equivalence
module Merced = Ppet_core.Merced
module Params = Ppet_core.Params
module Testable = Ppet_core.Testable
module To_circuit = Ppet_retiming.To_circuit
module Rgraph = Ppet_retiming.Rgraph
module S27 = Ppet_netlist.S27

let test_self_equivalent () =
  let c = S27.circuit () in
  let v = Equivalence.check_bool c c in
  Alcotest.(check bool) "self" true v.Equivalence.equivalent;
  Alcotest.(check bool) "no mismatch" true (v.Equivalence.first_mismatch = None)

let test_detects_difference () =
  let a = Parser.parse_string "INPUT(x)\nOUTPUT(y)\ny = NOT(x)\n" in
  let b = Parser.parse_string "INPUT(x)\nOUTPUT(y)\ny = BUFF(x)\n" in
  let v = Equivalence.check_bool a b in
  Alcotest.(check bool) "different" false v.Equivalence.equivalent;
  (match v.Equivalence.first_mismatch with
   | Some (cycle, name) ->
     Alcotest.(check int) "first cycle" 0 cycle;
     Alcotest.(check string) "output named" "y" name
   | None -> Alcotest.fail "expected mismatch")

let test_detects_sequential_difference () =
  (* identical combinationally, divergent after one cycle *)
  let a = Parser.parse_string "INPUT(x)\nOUTPUT(y)\nq = DFF(x)\ny = BUFF(q)\n" in
  let b = Parser.parse_string "INPUT(x)\nOUTPUT(y)\nq = DFF(n)\nn = NOT(x)\ny = BUFF(q)\n" in
  let v = Equivalence.check_bool a b in
  Alcotest.(check bool) "different" false v.Equivalence.equivalent;
  (match v.Equivalence.first_mismatch with
   | Some (cycle, _) -> Alcotest.(check bool) "after a cycle" true (cycle >= 1)
   | None -> Alcotest.fail "expected mismatch")

let test_output_count_guard () =
  let a = Parser.parse_string "INPUT(x)\nOUTPUT(y)\ny = NOT(x)\n" in
  let b = Parser.parse_string "INPUT(x)\nOUTPUT(y)\nOUTPUT(x)\ny = NOT(x)\n" in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Equivalence.check_bool a b);
       false
     with Invalid_argument _ -> true)

let test_testable_normal_mode () =
  (* the Testable insertion passes the checker with controls forced 0 *)
  let c = S27.circuit () in
  let t = Testable.insert (Merced.run ~params:(Params.with_lk 3) c) in
  let v =
    Equivalence.check_bool c t.Testable.circuit
      ~force_right:
        [ (t.Testable.test_en, false); (t.Testable.fb_en, false);
          (t.Testable.psa_en, false); (t.Testable.scan_in, false) ]
  in
  Alcotest.(check bool) "normal mode equivalent" true v.Equivalence.equivalent

let test_emitted_roundtrip_3valued () =
  let c = S27.circuit () in
  let e = To_circuit.circuit_of (Rgraph.of_circuit c) in
  let v =
    Equivalence.check_3valued c e.To_circuit.circuit
      ~init_right:(To_circuit.init_fn e)
  in
  Alcotest.(check bool) "round trip compatible" true v.Equivalence.equivalent

let test_retimed_3valued () =
  let c = Ppet_netlist.Benchmarks.circuit "s641" in
  let r = Merced.run ~params:(Params.with_lk 16) c in
  match Merced.retimed_netlist r with
  | None -> Alcotest.fail "retiming failed"
  | Some (e, _) ->
    let v =
      Equivalence.check_3valued ~cycles:8 c e.To_circuit.circuit
        ~init_right:(To_circuit.init_fn e)
    in
    Alcotest.(check bool) "retimed netlist compatible" true
      v.Equivalence.equivalent

let prop_random_self_equivalence =
  QCheck.Test.make ~name:"every circuit is equivalent to itself" ~count:15
    QCheck.(int_bound 100_000)
    (fun seed ->
      let c =
        Generator.small_random ~seed:(Int64.of_int (seed + 3)) ~n_pi:4
          ~n_dff:4 ~n_gates:25
      in
      (Equivalence.check_bool c c).Equivalence.equivalent)

let suite =
  [
    Alcotest.test_case "self equivalence" `Quick test_self_equivalent;
    Alcotest.test_case "combinational difference found" `Quick test_detects_difference;
    Alcotest.test_case "sequential difference found" `Quick test_detects_sequential_difference;
    Alcotest.test_case "output count guard" `Quick test_output_count_guard;
    Alcotest.test_case "testable normal mode" `Quick test_testable_normal_mode;
    Alcotest.test_case "emission round trip (3-valued)" `Quick test_emitted_roundtrip_3valued;
    Alcotest.test_case "retimed netlist (3-valued)" `Slow test_retimed_3valued;
    QCheck_alcotest.to_alcotest prop_random_self_equivalence;
  ]
