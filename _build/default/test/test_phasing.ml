module Phasing = Ppet_core.Phasing
module Merced = Ppet_core.Merced
module Params = Ppet_core.Params
module Pipeline = Ppet_bist.Pipeline
module S27 = Ppet_netlist.S27
module Benchmarks = Ppet_netlist.Benchmarks

let test_s27_phases () =
  let r = Merced.run ~params:(Params.with_lk 3) (S27.circuit ()) in
  let p = Phasing.compute r in
  Alcotest.(check int) "one phase per partition"
    (List.length r.Merced.assignment.Ppet_core.Assign.partitions)
    (Array.length p.Phasing.phase_of);
  Alcotest.(check bool) "at least one phase" true (p.Phasing.phases >= 1);
  (* proper colouring: adjacent partitions differ *)
  List.iter
    (fun (a, b) ->
      Alcotest.(check bool)
        (Printf.sprintf "%d-%d differ" a b)
        true
        (p.Phasing.phase_of.(a) <> p.Phasing.phase_of.(b)))
    p.Phasing.adjacency

let test_phases_bounded () =
  (* the classic PPET arrangement needs few phases: 2 for pipelines,
     3 for odd cycles — never more than max degree + 1 *)
  let r = Merced.run ~params:(Params.with_lk 16) (Benchmarks.circuit "s641") in
  let p = Phasing.compute r in
  let deg = Array.make (Array.length p.Phasing.phase_of) 0 in
  List.iter
    (fun (a, b) ->
      deg.(a) <- deg.(a) + 1;
      deg.(b) <- deg.(b) + 1)
    p.Phasing.adjacency;
  let max_deg = Array.fold_left max 0 deg in
  Alcotest.(check bool) "greedy bound" true (p.Phasing.phases <= max_deg + 1)

let test_schedule_consistent () =
  let r = Merced.run ~params:(Params.with_lk 3) (S27.circuit ()) in
  let p = Phasing.compute r in
  let s = Phasing.schedule r in
  Alcotest.(check int) "phases carried over" p.Phasing.phases s.Pipeline.phases;
  Alcotest.(check bool) "positive time" true (Pipeline.total_cycles s > 0.0)

let test_no_adjacency_one_phase () =
  (* a partitioning with no cut nets has no adjacencies: one phase *)
  let r = Merced.run ~params:(Params.with_lk 16) (S27.circuit ()) in
  let p = Phasing.compute r in
  Alcotest.(check (list (pair int int))) "no adjacency" [] p.Phasing.adjacency;
  Alcotest.(check int) "one phase" 1 p.Phasing.phases

let test_pp () =
  let r = Merced.run ~params:(Params.with_lk 3) (S27.circuit ()) in
  let p = Phasing.compute r in
  Alcotest.(check bool) "prints" true
    (String.length (Format.asprintf "%a" Phasing.pp p) > 10)

let suite =
  [
    Alcotest.test_case "s27 proper colouring" `Quick test_s27_phases;
    Alcotest.test_case "greedy bound respected" `Quick test_phases_bounded;
    Alcotest.test_case "schedule consistency" `Quick test_schedule_consistent;
    Alcotest.test_case "no cuts, one phase" `Quick test_no_adjacency_one_phase;
    Alcotest.test_case "pretty printing" `Quick test_pp;
  ]
