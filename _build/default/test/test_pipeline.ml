module Pipeline = Ppet_bist.Pipeline

let test_total_time_model () =
  let s = Pipeline.make ~widths:[ [ 4; 8 ]; [ 8; 6 ] ] () in
  Alcotest.(check int) "dominant width" 8 (Pipeline.dominated_by s);
  Alcotest.(check int) "scan bits" 26 s.Pipeline.scan_bits;
  (* burst = 2 phases x 2^8 *)
  Alcotest.(check (float 1e-9)) "burst" 512.0 (Pipeline.burst_cycles s);
  Alcotest.(check (float 1e-9)) "total" (512.0 +. 52.0) (Pipeline.total_cycles s)

let test_dominated_by_widest () =
  (* Fig. 1(b): the widest CBIT dominates regardless of count *)
  let narrow = Pipeline.of_segment_widths [ 4; 4; 4; 4; 4; 4; 4; 4 ] in
  let wide = Pipeline.of_segment_widths [ 12 ] in
  Alcotest.(check bool) "one wide CBIT beats many narrow" true
    (Pipeline.burst_cycles wide > Pipeline.burst_cycles narrow)

let test_speedup_grows_with_segments () =
  let few = Pipeline.of_segment_widths [ 10; 10 ] in
  let many = Pipeline.of_segment_widths [ 10; 10; 10; 10; 10; 10 ] in
  Alcotest.(check bool) "concurrency pays" true
    (Pipeline.speedup_vs_serial many > Pipeline.speedup_vs_serial few)

let test_single_phase () =
  let s = Pipeline.make ~phases:1 ~widths:[ [ 6 ] ] () in
  Alcotest.(check (float 1e-9)) "one burst" 64.0 (Pipeline.burst_cycles s)

let test_guards () =
  Alcotest.(check bool) "bad width" true
    (try
       ignore (Pipeline.make ~widths:[ [ 0 ] ] ());
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad phases" true
    (try
       ignore (Pipeline.make ~phases:0 ~widths:[ [ 4 ] ] ());
       false
     with Invalid_argument _ -> true)

let test_pp () =
  let s = Pipeline.of_segment_widths [ 4; 8 ] in
  Alcotest.(check bool) "prints" true
    (String.length (Format.asprintf "%a" Pipeline.pp s) > 30)

let suite =
  [
    Alcotest.test_case "total-time model" `Quick test_total_time_model;
    Alcotest.test_case "widest CBIT dominates (Fig. 1b)" `Quick test_dominated_by_widest;
    Alcotest.test_case "speed-up grows with segments" `Quick test_speedup_grows_with_segments;
    Alcotest.test_case "single phase" `Quick test_single_phase;
    Alcotest.test_case "guards" `Quick test_guards;
    Alcotest.test_case "pretty printing" `Quick test_pp;
  ]

(* appended: power-constrained scheduling *)
let test_power_constrained_chunks () =
  let s = Pipeline.power_constrained ~widths:[ 4; 16; 8; 12 ] ~max_per_pipe:2 in
  Alcotest.(check int) "two pipes" 2 (List.length s.Pipeline.pipes);
  (* sorted descending and chunked: [16;12] [8;4] *)
  (match s.Pipeline.pipes with
   | [ a; b ] ->
     Alcotest.(check (list int)) "pipe 0" [ 16; 12 ] a.Pipeline.widths;
     Alcotest.(check (list int)) "pipe 1" [ 8; 4 ] b.Pipeline.widths
   | _ -> Alcotest.fail "expected two pipes")

let test_sequential_cycles () =
  let s = Pipeline.power_constrained ~widths:[ 8; 8; 4; 4 ] ~max_per_pipe:2 in
  (* pipes [8;8] and [4;4]: 2 phases x (256 + 16) + 2 x 24 scan bits *)
  Alcotest.(check (float 1e-9)) "sum of bursts" (48.0 +. 2.0 *. (256.0 +. 16.0))
    (Pipeline.sequential_cycles s)

let test_similar_widths_grouping_pays () =
  (* mixing a wide CBIT into a narrow pipe wastes cycles *)
  let good = Pipeline.power_constrained ~widths:[ 16; 16; 4; 4 ] ~max_per_pipe:2 in
  let bad = Pipeline.make ~widths:[ [ 16; 4 ]; [ 16; 4 ] ] () in
  Alcotest.(check bool) "sorted chunking wins" true
    (Pipeline.sequential_cycles good < Pipeline.sequential_cycles bad
     || Pipeline.sequential_cycles good = Pipeline.sequential_cycles bad)

let suite =
  suite
  @ [
      Alcotest.test_case "power-constrained chunking" `Quick test_power_constrained_chunks;
      Alcotest.test_case "sequential cycle count" `Quick test_sequential_cycles;
      Alcotest.test_case "similar widths grouped" `Quick test_similar_widths_grouping_pays;
    ]
