module Circuit = Ppet_netlist.Circuit
module To_graph = Ppet_netlist.To_graph
module Netgraph = Ppet_digraph.Netgraph
module S27 = Ppet_netlist.S27

let test_vertex_count () =
  let c = S27.circuit () in
  let g = To_graph.partition_view c in
  Alcotest.(check int) "one vertex per node" (Circuit.size c) (Netgraph.n_nodes g)

let test_net_per_driven_signal () =
  let c = S27.circuit () in
  let g = To_graph.partition_view c in
  (* every node except the PO G17 (read by nobody) drives a net *)
  let driven =
    Array.to_list c.Circuit.nodes
    |> List.filter (fun (nd : Circuit.node) ->
           Array.length c.Circuit.fanouts.(nd.Circuit.id) > 0)
    |> List.length
  in
  Alcotest.(check int) "net count" driven (Netgraph.n_nets g)

let test_fanout_as_one_net () =
  let c = S27.circuit () in
  let g = To_graph.partition_view c in
  (* G8 feeds G15 and G16: one net, two sinks (multi-pin model, Fig 2b) *)
  let g8 = Circuit.find c "G8" in
  let out = Netgraph.out_nets g g8 in
  Alcotest.(check int) "single net" 1 (Array.length out);
  let sinks = Array.copy (Netgraph.net_sinks g out.(0)) in
  Array.sort compare sinks;
  let expect = [| Circuit.find c "G15"; Circuit.find c "G16" |] in
  Array.sort compare expect;
  Alcotest.(check (array int)) "both sinks" expect sinks

let test_net_of_driver () =
  let c = S27.circuit () in
  let g = To_graph.partition_view c in
  let map = To_graph.net_of_driver c g in
  let g8 = Circuit.find c "G8" in
  Alcotest.(check int) "maps back" g8 (To_graph.driver_of_net g map.(g8));
  let g17 = Circuit.find c "G17" in
  Alcotest.(check int) "PO drives nothing" (-1) map.(g17)

let test_dff_is_vertex () =
  let c = S27.circuit () in
  let g = To_graph.partition_view c in
  let g5 = Circuit.find c "G5" in
  (* G5 = DFF(G10), feeds G11: it has both in and out nets *)
  Alcotest.(check int) "dff has out net" 1 (Array.length (Netgraph.out_nets g g5));
  Alcotest.(check int) "dff has in net" 1 (Array.length (Netgraph.in_nets g g5))

let suite =
  [
    Alcotest.test_case "vertex per node" `Quick test_vertex_count;
    Alcotest.test_case "net per driven signal" `Quick test_net_per_driven_signal;
    Alcotest.test_case "fanout is one multi-pin net" `Quick test_fanout_as_one_net;
    Alcotest.test_case "net_of_driver mapping" `Quick test_net_of_driver;
    Alcotest.test_case "registers are vertices" `Quick test_dff_is_vertex;
  ]
