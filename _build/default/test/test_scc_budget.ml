module Circuit = Ppet_netlist.Circuit
module To_graph = Ppet_netlist.To_graph
module Netgraph = Ppet_digraph.Netgraph
module Scc_budget = Ppet_retiming.Scc_budget
module Parser = Ppet_netlist.Bench_parser
module S27 = Ppet_netlist.S27

let make src =
  let c = Parser.parse_string src in
  let g = To_graph.partition_view c in
  (c, g, Scc_budget.create c g)

let ring =
  "INPUT(a)\nOUTPUT(y)\nq = DFF(g2)\ng1 = AND(q, a)\ng2 = NOT(g1)\ny = BUFF(g1)\n"

let test_ring_registers () =
  let _, _, sb = make ring in
  Alcotest.(check int) "one dff on scc" 1 (Scc_budget.dffs_on_scc sb)

let test_s27_dffs_on_scc () =
  let c = S27.circuit () in
  let g = To_graph.partition_view c in
  let sb = Scc_budget.create c g in
  (* G5 and G6 sit on loops (G10/G11 feedback); G7's loop: G7->G12->G13->G7 *)
  Alcotest.(check int) "all three loop" 3 (Scc_budget.dffs_on_scc sb)

let test_net_scc () =
  let c, g, sb = make ring in
  (* the net g1 -> {g2, y}: g1 and g2 are in the loop, so it is internal *)
  let g1 = Circuit.find c "g1" in
  let net = (To_graph.net_of_driver c g).(g1) in
  Alcotest.(check bool) "loop-internal" true (Scc_budget.net_scc sb net <> None);
  (* a -> g1 comes from outside the loop *)
  let a = Circuit.find c "a" in
  let net_a = (To_graph.net_of_driver c g).(a) in
  Alcotest.(check bool) "entering net not internal" true
    (Scc_budget.net_scc sb net_a = None)

let test_cuts_by_scc_and_excess () =
  let c, g, sb = make ring in
  let g1 = Circuit.find c "g1" and q = Circuit.find c "q" in
  let map = To_graph.net_of_driver c g in
  let cuts = [ map.(g1); map.(q) ] in
  let hist = Scc_budget.cuts_by_scc sb cuts in
  Alcotest.(check int) "two cuts on the loop" 2 (Array.fold_left ( + ) 0 hist);
  (* one register available: one cut coverable, one excess *)
  Alcotest.(check int) "excess" 1 (Scc_budget.mux_excess sb ~cuts_on_scc:hist);
  Alcotest.(check int) "coverable" 1
    (Scc_budget.coverable sb ~cuts_on_scc:hist ~cuts_total:2)

let test_feedforward_cuts_all_coverable () =
  let c, g, sb =
    make "INPUT(a)\nOUTPUT(y)\nq = DFF(a)\ng = NOT(q)\ny = BUFF(g)\n"
  in
  let gid = Circuit.find c "g" in
  let map = To_graph.net_of_driver c g in
  let cuts = [ map.(gid) ] in
  let hist = Scc_budget.cuts_by_scc sb cuts in
  Alcotest.(check int) "no loop cuts" 0 (Array.fold_left ( + ) 0 hist);
  Alcotest.(check int) "no excess" 0 (Scc_budget.mux_excess sb ~cuts_on_scc:hist);
  Alcotest.(check int) "fully coverable" 1
    (Scc_budget.coverable sb ~cuts_on_scc:hist ~cuts_total:1)

let test_graph_mismatch_rejected () =
  let c = S27.circuit () in
  let g = Netgraph.create 3 in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Scc_budget.create: graph does not match circuit")
    (fun () -> ignore (Scc_budget.create c g))

let test_is_loop_registers () =
  let c, _, sb = make ring in
  let q = Circuit.find c "q" in
  let scc = Scc_budget.scc sb in
  let comp = scc.Ppet_digraph.Tarjan.component.(q) in
  Alcotest.(check bool) "loop" true (Scc_budget.is_loop sb comp);
  Alcotest.(check int) "f = 1" 1 (Scc_budget.registers sb comp)

let suite =
  [
    Alcotest.test_case "ring registers" `Quick test_ring_registers;
    Alcotest.test_case "s27 DFFs on SCC" `Quick test_s27_dffs_on_scc;
    Alcotest.test_case "net_scc classification" `Quick test_net_scc;
    Alcotest.test_case "cut histogram and excess" `Quick test_cuts_by_scc_and_excess;
    Alcotest.test_case "feed-forward cuts coverable" `Quick test_feedforward_cuts_all_coverable;
    Alcotest.test_case "graph mismatch rejected" `Quick test_graph_mismatch_rejected;
    Alcotest.test_case "is_loop and registers" `Quick test_is_loop_registers;
  ]
