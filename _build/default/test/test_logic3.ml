module L = Ppet_retiming.Logic3
module Gate = Ppet_netlist.Gate

let test_of_to_bool () =
  Alcotest.(check bool) "one" true (L.to_bool (L.of_bool true) = Some true);
  Alcotest.(check bool) "zero" true (L.to_bool (L.of_bool false) = Some false);
  Alcotest.(check bool) "x" true (L.to_bool L.X = None)

let test_compatible () =
  Alcotest.(check bool) "x anything" true (L.compatible L.X L.One);
  Alcotest.(check bool) "same" true (L.compatible L.Zero L.Zero);
  Alcotest.(check bool) "differ" false (L.compatible L.Zero L.One)

let test_meet () =
  Alcotest.(check bool) "x meets v" true (L.meet L.X L.One = Some L.One);
  Alcotest.(check bool) "v meets x" true (L.meet L.Zero L.X = Some L.Zero);
  Alcotest.(check bool) "conflict" true (L.meet L.Zero L.One = None);
  Alcotest.(check bool) "same" true (L.meet L.One L.One = Some L.One)

let test_controlling_values () =
  (* a controlling 0 decides AND even with X on the other pin *)
  Alcotest.(check bool) "and 0,x" true (L.eval Gate.And [| L.Zero; L.X |] = L.Zero);
  Alcotest.(check bool) "or 1,x" true (L.eval Gate.Or [| L.One; L.X |] = L.One);
  Alcotest.(check bool) "nand 0,x" true (L.eval Gate.Nand [| L.Zero; L.X |] = L.One);
  Alcotest.(check bool) "nor 1,x" true (L.eval Gate.Nor [| L.One; L.X |] = L.Zero);
  (* no controlling value for xor *)
  Alcotest.(check bool) "xor 1,x" true (L.eval Gate.Xor [| L.One; L.X |] = L.X)

let test_eval_concrete_matches_bool () =
  let kinds = [ Gate.Buff; Gate.Not; Gate.And; Gate.Nand; Gate.Or; Gate.Nor; Gate.Xor; Gate.Xnor ] in
  List.iter
    (fun kind ->
      let arity = match kind with Gate.Buff | Gate.Not -> 1 | _ -> 2 in
      let combos = if arity = 1 then [ [| false |]; [| true |] ]
        else [ [| false; false |]; [| false; true |]; [| true; false |]; [| true; true |] ]
      in
      List.iter
        (fun bits ->
          let expect = L.of_bool (Gate.eval kind bits) in
          let got = L.eval kind (Array.map L.of_bool bits) in
          Alcotest.(check bool) (Gate.name kind ^ " concrete") true (L.equal got expect))
        combos)
    kinds

let test_preimage_exact () =
  let kinds = [ Gate.Buff; Gate.Not; Gate.And; Gate.Nand; Gate.Or; Gate.Nor; Gate.Xor; Gate.Xnor ] in
  List.iter
    (fun kind ->
      let arities = match kind with Gate.Buff | Gate.Not -> [ 1 ] | _ -> [ 2; 3 ] in
      List.iter
        (fun arity ->
          List.iter
            (fun out ->
              match L.preimage kind arity out with
              | Some ins ->
                Alcotest.(check bool)
                  (Printf.sprintf "%s/%d pre-image of %c" (Gate.name kind) arity (L.to_char out))
                  true
                  (L.equal (L.eval kind ins) out)
              | None -> Alcotest.fail "pre-image should exist")
            [ L.Zero; L.One; L.X ])
        arities)
    kinds

let test_preimage_minimal_commitment () =
  (* AND output 0 needs only one committed input *)
  match L.preimage Gate.And 3 L.Zero with
  | Some ins ->
    let committed = Array.to_list ins |> List.filter (fun v -> not (L.equal v L.X)) in
    Alcotest.(check int) "one committed pin" 1 (List.length committed)
  | None -> Alcotest.fail "pre-image should exist"

let test_chars () =
  Alcotest.(check char) "zero" '0' (L.to_char L.Zero);
  Alcotest.(check char) "one" '1' (L.to_char L.One);
  Alcotest.(check char) "x" 'x' (L.to_char L.X)

(* property: 3-valued eval is monotone: replacing X by any concrete value
   can only refine the output (never contradict a concrete output) *)
let prop_monotone =
  let kinds = [| Gate.And; Gate.Nand; Gate.Or; Gate.Nor; Gate.Xor; Gate.Xnor |] in
  QCheck.Test.make ~name:"3-valued eval is monotone in the information order"
    ~count:500
    QCheck.(triple (int_bound 5) (int_bound 2) (list_of_size Gen.(2 -- 4) (int_bound 2)))
    (fun (ki, _, vals) ->
      QCheck.assume (List.length vals >= 2);
      let kind = kinds.(ki) in
      let of_int = function 0 -> L.Zero | 1 -> L.One | _ -> L.X in
      let ins = Array.of_list (List.map of_int vals) in
      let out = L.eval kind ins in
      (* refine each X to 0 and to 1; the result must stay compatible *)
      let ok = ref true in
      Array.iteri
        (fun i v ->
          if L.equal v L.X then
            List.iter
              (fun r ->
                let ins' = Array.copy ins in
                ins'.(i) <- r;
                if not (L.compatible (L.eval kind ins') out) then ok := false)
              [ L.Zero; L.One ])
        ins;
      !ok)

let suite =
  [
    Alcotest.test_case "bool conversions" `Quick test_of_to_bool;
    Alcotest.test_case "compatibility" `Quick test_compatible;
    Alcotest.test_case "meet" `Quick test_meet;
    Alcotest.test_case "controlling values" `Quick test_controlling_values;
    Alcotest.test_case "concrete agrees with bool eval" `Quick test_eval_concrete_matches_bool;
    Alcotest.test_case "pre-images evaluate back" `Quick test_preimage_exact;
    Alcotest.test_case "pre-image commits minimally" `Quick test_preimage_minimal_commitment;
    Alcotest.test_case "character rendering" `Quick test_chars;
    QCheck_alcotest.to_alcotest prop_monotone;
  ]
