module Baseline_random = Ppet_core.Baseline_random
module Baseline_annealing = Ppet_core.Baseline_annealing
module Assign = Ppet_core.Assign
module Params = Ppet_core.Params
module Merced = Ppet_core.Merced
module Netgraph = Ppet_digraph.Netgraph
module Prng = Ppet_digraph.Prng
module To_graph = Ppet_netlist.To_graph
module Generator = Ppet_netlist.Generator
module S27 = Ppet_netlist.S27

let params = { Params.default with Params.l_k = 4 }

let check_valid g l_k (a : Assign.t) =
  let seen = Array.make (Netgraph.n_nodes g) 0 in
  List.iter
    (fun p -> Array.iter (fun v -> seen.(v) <- seen.(v) + 1) p.Assign.vertices)
    a.Assign.partitions;
  Alcotest.(check bool) "covers once" true (Array.for_all (fun k -> k = 1) seen);
  List.iter
    (fun p ->
      if not p.Assign.oversize then
        Alcotest.(check bool) "iota ok" true (p.Assign.input_count <= l_k))
    a.Assign.partitions

let test_random_valid () =
  let c = S27.circuit () in
  let g = To_graph.partition_view c in
  let a = Baseline_random.run c g params (Prng.create 3L) in
  check_valid g params.Params.l_k a

let test_random_deterministic () =
  let c = S27.circuit () in
  let g = To_graph.partition_view c in
  let a = Baseline_random.run c g params (Prng.create 3L) in
  let b = Baseline_random.run c g params (Prng.create 3L) in
  Alcotest.(check int) "same cuts" (List.length a.Assign.cut_nets)
    (List.length b.Assign.cut_nets)

let test_annealing_valid () =
  let c = S27.circuit () in
  let g = To_graph.partition_view c in
  let s =
    Baseline_annealing.run ~initial_temp:2.0 ~cooling:0.7 ~moves_per_temp:200
      c g params (Prng.create 3L)
  in
  check_valid g params.Params.l_k s.Baseline_annealing.result;
  Alcotest.(check bool) "tried moves" true (s.Baseline_annealing.moves_tried > 0)

let test_annealing_improves_on_random () =
  let c = Generator.small_random ~seed:13L ~n_pi:6 ~n_dff:5 ~n_gates:60 in
  let g = To_graph.partition_view c in
  let random = Baseline_random.run c g params (Prng.create 5L) in
  let annealed =
    Baseline_annealing.run ~initial_temp:3.0 ~cooling:0.8 ~moves_per_temp:400
      c g params (Prng.create 5L)
  in
  Alcotest.(check bool) "annealing not worse" true
    (List.length annealed.Baseline_annealing.result.Assign.cut_nets
     <= List.length random.Assign.cut_nets)

let test_merced_beats_random () =
  (* the headline ablation: flow-based clustering cuts fewer nets than
     random growth at the same constraint *)
  let c = Generator.small_random ~seed:21L ~n_pi:6 ~n_dff:6 ~n_gates:80 in
  let g = To_graph.partition_view c in
  let random = Baseline_random.run c g params (Prng.create 9L) in
  let merced = Merced.run ~params c in
  Alcotest.(check bool) "merced cuts fewer" true
    (List.length merced.Merced.assignment.Assign.cut_nets
     <= List.length random.Assign.cut_nets)

let suite =
  [
    Alcotest.test_case "random baseline valid" `Quick test_random_valid;
    Alcotest.test_case "random deterministic" `Quick test_random_deterministic;
    Alcotest.test_case "annealing valid" `Quick test_annealing_valid;
    Alcotest.test_case "annealing >= random" `Slow test_annealing_improves_on_random;
    Alcotest.test_case "merced >= random" `Slow test_merced_beats_random;
  ]

(* appended: Fiduccia-Mattheyses baseline *)
module Baseline_fm = Ppet_core.Baseline_fm

let test_fm_valid () =
  let c = S27.circuit () in
  let g = To_graph.partition_view c in
  let s = Baseline_fm.run c g params (Prng.create 3L) in
  check_valid g params.Params.l_k s.Baseline_fm.result;
  Alcotest.(check bool) "ran passes" true (s.Baseline_fm.passes >= 1)

let test_fm_improves_on_random () =
  let c = Generator.small_random ~seed:13L ~n_pi:6 ~n_dff:5 ~n_gates:60 in
  let g = To_graph.partition_view c in
  let random = Baseline_random.run c g params (Prng.create 5L) in
  let fm = Baseline_fm.run c g params (Prng.create 5L) in
  Alcotest.(check bool) "fm not worse" true
    (List.length fm.Baseline_fm.result.Assign.cut_nets
     <= List.length random.Assign.cut_nets)

let test_fm_deterministic () =
  let c = S27.circuit () in
  let g = To_graph.partition_view c in
  let a = Baseline_fm.run c g params (Prng.create 9L) in
  let b = Baseline_fm.run c g params (Prng.create 9L) in
  Alcotest.(check int) "same cuts"
    (List.length a.Baseline_fm.result.Assign.cut_nets)
    (List.length b.Baseline_fm.result.Assign.cut_nets)

let suite =
  suite
  @ [
      Alcotest.test_case "FM baseline valid" `Quick test_fm_valid;
      Alcotest.test_case "FM >= random" `Slow test_fm_improves_on_random;
      Alcotest.test_case "FM deterministic" `Quick test_fm_deterministic;
    ]
