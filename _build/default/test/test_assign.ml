module Assign = Ppet_core.Assign
module Cluster = Ppet_core.Cluster
module Flow = Ppet_core.Flow
module Params = Ppet_core.Params
module Netgraph = Ppet_digraph.Netgraph
module Prng = Ppet_digraph.Prng
module To_graph = Ppet_netlist.To_graph
module Scc_budget = Ppet_retiming.Scc_budget
module Generator = Ppet_netlist.Generator
module S27 = Ppet_netlist.S27

let run_pipeline ?(l_k = 3) c =
  let g = To_graph.partition_view c in
  let sb = Scc_budget.create c g in
  let params = { Params.default with Params.l_k } in
  let rng = Prng.create 2L in
  let flow = Flow.saturate g params rng in
  let clustering = Cluster.make_group c g sb flow params in
  let a = Assign.run c g clustering params rng in
  (g, params, clustering, a)

let test_partitions_cover () =
  let c = S27.circuit () in
  let g, _, _, a = run_pipeline c in
  let seen = Array.make (Netgraph.n_nodes g) 0 in
  List.iter
    (fun p -> Array.iter (fun v -> seen.(v) <- seen.(v) + 1) p.Assign.vertices)
    a.Assign.partitions;
  Alcotest.(check bool) "exactly once" true (Array.for_all (fun k -> k = 1) seen)

let test_constraint_respected () =
  let c = S27.circuit () in
  let _, params, _, a = run_pipeline c in
  List.iter
    (fun p ->
      if not p.Assign.oversize then
        Alcotest.(check bool) "iota <= l_k" true
          (p.Assign.input_count <= params.Params.l_k))
    a.Assign.partitions

let test_merging_reduces_count () =
  let c = S27.circuit () in
  let _, _, clustering, a = run_pipeline c in
  Alcotest.(check bool) "merges happened or nothing to merge" true
    (List.length a.Assign.partitions <= List.length clustering.Cluster.clusters)

let test_merged_from_accounting () =
  let c = S27.circuit () in
  let _, _, clustering, a = run_pipeline c in
  let total =
    List.fold_left (fun acc p -> acc + p.Assign.merged_from) 0 a.Assign.partitions
  in
  Alcotest.(check int) "clusters conserved" (List.length clustering.Cluster.clusters) total

let test_cut_nets_consistent () =
  let c = S27.circuit () in
  let g, _, _, a = run_pipeline c in
  List.iter
    (fun e ->
      let src = Netgraph.net_src g e in
      Alcotest.(check bool) "crosses" true
        (Array.exists
           (fun v -> a.Assign.partition_of.(v) <> a.Assign.partition_of.(src))
           (Netgraph.net_sinks g e)))
    a.Assign.cut_nets

let test_merging_never_hurts_cuts () =
  (* merging can only remove cut nets relative to the raw clustering *)
  let c = Generator.small_random ~seed:77L ~n_pi:6 ~n_dff:5 ~n_gates:60 in
  let g = To_graph.partition_view c in
  let sb = Scc_budget.create c g in
  let params = { Params.default with Params.l_k = 6 } in
  let rng = Prng.create 4L in
  let flow = Flow.saturate g params rng in
  let clustering = Cluster.make_group c g sb flow params in
  let before = List.length (Cluster.cut_nets clustering g) in
  let a = Assign.run c g clustering params rng in
  Alcotest.(check bool) "merge helps" true (List.length a.Assign.cut_nets <= before)

let test_paper_example_shape () =
  (* the paper's worked example: s27 with l_k = 3 gives 4 partitions
     (Fig. 7); our graph includes the 4 PIs as vertices, so allow a small
     neighbourhood around 4 *)
  let c = S27.circuit () in
  let _, _, _, a = run_pipeline ~l_k:3 c in
  let n = List.length a.Assign.partitions in
  Alcotest.(check bool) "about four partitions" true (n >= 3 && n <= 7)

let prop_valid_partitions =
  QCheck.Test.make ~name:"assign output is a valid partitioning" ~count:15
    QCheck.(pair (int_bound 10_000) (int_range 4 12))
    (fun (seed, l_k) ->
      let c =
        Generator.small_random ~seed:(Int64.of_int (seed + 71)) ~n_pi:5
          ~n_dff:6 ~n_gates:45
      in
      let g = To_graph.partition_view c in
      let sb = Scc_budget.create c g in
      let params = { Params.default with Params.l_k } in
      let rng = Prng.create (Int64.of_int (seed * 3)) in
      let flow = Flow.saturate g params rng in
      let clustering = Cluster.make_group c g sb flow params in
      let a = Assign.run c g clustering params rng in
      let seen = Array.make (Netgraph.n_nodes g) 0 in
      List.iter
        (fun p -> Array.iter (fun v -> seen.(v) <- seen.(v) + 1) p.Assign.vertices)
        a.Assign.partitions;
      Array.for_all (fun k -> k = 1) seen
      && List.for_all
           (fun p -> p.Assign.oversize || p.Assign.input_count <= l_k)
           a.Assign.partitions)

let suite =
  [
    Alcotest.test_case "partitions cover V once" `Quick test_partitions_cover;
    Alcotest.test_case "input constraint respected" `Quick test_constraint_respected;
    Alcotest.test_case "merging reduces cluster count" `Quick test_merging_reduces_count;
    Alcotest.test_case "merged_from conserves clusters" `Quick test_merged_from_accounting;
    Alcotest.test_case "cut nets cross partitions" `Quick test_cut_nets_consistent;
    Alcotest.test_case "merging never adds cuts" `Quick test_merging_never_hurts_cuts;
    Alcotest.test_case "paper worked example shape" `Quick test_paper_example_shape;
    QCheck_alcotest.to_alcotest prop_valid_partitions;
  ]
