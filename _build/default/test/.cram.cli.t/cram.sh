  $ MERCED=../../bin/merced.exe
  $ $MERCED stats s27
  $ $MERCED partition s27 --lk 3 | grep -v "CPU:"
  $ $MERCED partition s27 --lk 3 --csv | head -1
  $ $MERCED generate s510 -o s510.bench
  $ $MERCED stats s510.bench | head -2
  $ $MERCED selftest s27 --lk 4 | head -3
  $ $MERCED selftest s27 --lk 4 > serial.out
  $ $MERCED selftest s27 --lk 4 --jobs 2 > parallel.out
  $ cmp serial.out parallel.out && echo identical
  $ $MERCED insert s27 --lk 3 -o testable.bench | head -1
  $ $MERCED stats testable.bench | sed -n 2p
  $ $MERCED retime s27 --lk 3 -o retimed.bench
  $ $MERCED stats nosuch 2>&1 | head -1 | cut -c1-30
  $ $MERCED stats nosuch; echo "exit $?"
