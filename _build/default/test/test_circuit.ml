module Circuit = Ppet_netlist.Circuit
module Gate = Ppet_netlist.Gate
module S27 = Ppet_netlist.S27

let build_small () =
  let b = Circuit.Builder.create "small" in
  Circuit.Builder.add_input b "a";
  Circuit.Builder.add_input b "b";
  Circuit.Builder.add_output b "y";
  Circuit.Builder.add_gate b ~name:"y" ~kind:Gate.And ~fanins:[ "a"; "b" ];
  Circuit.Builder.finish b

let test_build_basics () =
  let c = build_small () in
  Alcotest.(check int) "size" 3 (Circuit.size c);
  Alcotest.(check int) "inputs" 2 (Array.length c.Circuit.inputs);
  Alcotest.(check int) "outputs" 1 (Array.length c.Circuit.outputs);
  let y = Circuit.find c "y" in
  Alcotest.(check bool) "is po" true (Circuit.is_po c y);
  Alcotest.(check bool) "a not po" false (Circuit.is_po c (Circuit.find c "a"))

let test_forward_reference () =
  let b = Circuit.Builder.create "fwd" in
  Circuit.Builder.add_input b "a";
  (* g1 references g2 before definition, as ISCAS89 files do *)
  Circuit.Builder.add_gate b ~name:"g1" ~kind:Gate.Not ~fanins:[ "g2" ];
  Circuit.Builder.add_gate b ~name:"g2" ~kind:Gate.Not ~fanins:[ "a" ];
  let c = Circuit.Builder.finish b in
  let g1 = Circuit.node c (Circuit.find c "g1") in
  Alcotest.(check string) "resolved" "g2"
    (Circuit.node c g1.Circuit.fanins.(0)).Circuit.name

let test_duplicate_rejected () =
  let b = Circuit.Builder.create "dup" in
  Circuit.Builder.add_input b "a";
  Alcotest.check_raises "duplicate"
    (Circuit.Error "duplicate definition of signal \"a\"") (fun () ->
      Circuit.Builder.add_gate b ~name:"a" ~kind:Gate.Not ~fanins:[ "a" ])

let test_undefined_rejected () =
  let b = Circuit.Builder.create "undef" in
  Circuit.Builder.add_input b "a";
  Circuit.Builder.add_gate b ~name:"g" ~kind:Gate.Not ~fanins:[ "nope" ];
  Alcotest.check_raises "undefined"
    (Circuit.Error "gate \"g\" references undefined signal \"nope\"")
    (fun () -> ignore (Circuit.Builder.finish b))

let test_arity_rejected () =
  let b = Circuit.Builder.create "arity" in
  Circuit.Builder.add_input b "a";
  Circuit.Builder.add_gate b ~name:"g" ~kind:Gate.And ~fanins:[ "a" ];
  Alcotest.check_raises "arity" (Circuit.Error "gate \"g\": AND cannot take 1 inputs")
    (fun () -> ignore (Circuit.Builder.finish b))

let test_comb_cycle_rejected () =
  let b = Circuit.Builder.create "cycle" in
  Circuit.Builder.add_input b "a";
  Circuit.Builder.add_gate b ~name:"g1" ~kind:Gate.And ~fanins:[ "a"; "g2" ];
  Circuit.Builder.add_gate b ~name:"g2" ~kind:Gate.Not ~fanins:[ "g1" ];
  Alcotest.(check bool) "raises" true
    (try
       ignore (Circuit.Builder.finish b);
       false
     with Circuit.Error _ -> true)

let test_dff_breaks_cycle () =
  let b = Circuit.Builder.create "seqcycle" in
  Circuit.Builder.add_gate b ~name:"q" ~kind:Gate.Dff ~fanins:[ "g" ];
  Circuit.Builder.add_gate b ~name:"g" ~kind:Gate.Not ~fanins:[ "q" ];
  let c = Circuit.Builder.finish b in
  Alcotest.(check int) "two nodes" 2 (Circuit.size c)

let test_empty_rejected () =
  let b = Circuit.Builder.create "empty" in
  Alcotest.check_raises "empty" (Circuit.Error "empty circuit \"empty\"") (fun () ->
      ignore (Circuit.Builder.finish b))

let test_no_sources_rejected () =
  let b = Circuit.Builder.create "nosrc" in
  Circuit.Builder.add_gate b ~name:"g" ~kind:Gate.And ~fanins:[ "g2"; "g2" ];
  Circuit.Builder.add_gate b ~name:"g2" ~kind:Gate.Not ~fanins:[ "g" ];
  Alcotest.(check bool) "raises" true
    (try
       ignore (Circuit.Builder.finish b);
       false
     with Circuit.Error _ -> true)

let test_fanouts () =
  let c = build_small () in
  let a = Circuit.find c "a" and y = Circuit.find c "y" in
  Alcotest.(check (array int)) "a feeds y" [| y |] c.Circuit.fanouts.(a);
  Alcotest.(check (array int)) "y feeds nothing" [||] c.Circuit.fanouts.(y)

let test_s27_shape () =
  let c = S27.circuit () in
  Alcotest.(check int) "size" 17 (Circuit.size c);
  Alcotest.(check int) "pis" 4 (Array.length c.Circuit.inputs);
  Alcotest.(check int) "dffs" 3 (Array.length (Circuit.dffs c));
  Alcotest.(check int) "combs" 10 (Array.length (Circuit.combinational c));
  Alcotest.(check int) "pos" 1 (Array.length c.Circuit.outputs)

let test_s27_area () =
  (* 2 INV (1) + 1 AND2 (3) + 2 OR2 (3) + 1 NAND2 (2) + 4 NOR2 (2) + 3 DFF (10) *)
  Alcotest.(check (float 1e-9)) "area" 51.0 (Circuit.area (S27.circuit ()))

let test_levels () =
  let c = S27.circuit () in
  let lv = Circuit.levels c in
  Alcotest.(check int) "PI level" 0 lv.(Circuit.find c "G0");
  Alcotest.(check int) "DFF level" 0 lv.(Circuit.find c "G5");
  Alcotest.(check int) "G14 = NOT(G0)" 1 lv.(Circuit.find c "G14");
  Alcotest.(check int) "G8 = AND(G14,G6)" 2 lv.(Circuit.find c "G8")

let test_find_missing () =
  let c = build_small () in
  Alcotest.check_raises "missing" Not_found (fun () -> ignore (Circuit.find c "zz"))

let suite =
  [
    Alcotest.test_case "builder basics" `Quick test_build_basics;
    Alcotest.test_case "forward references" `Quick test_forward_reference;
    Alcotest.test_case "duplicate signal rejected" `Quick test_duplicate_rejected;
    Alcotest.test_case "undefined signal rejected" `Quick test_undefined_rejected;
    Alcotest.test_case "illegal arity rejected" `Quick test_arity_rejected;
    Alcotest.test_case "combinational cycle rejected" `Quick test_comb_cycle_rejected;
    Alcotest.test_case "DFF breaks cycles" `Quick test_dff_breaks_cycle;
    Alcotest.test_case "empty circuit rejected" `Quick test_empty_rejected;
    Alcotest.test_case "sourceless circuit rejected" `Quick test_no_sources_rejected;
    Alcotest.test_case "fanout index" `Quick test_fanouts;
    Alcotest.test_case "s27 shape" `Quick test_s27_shape;
    Alcotest.test_case "s27 estimated area" `Quick test_s27_area;
    Alcotest.test_case "levelization" `Quick test_levels;
    Alcotest.test_case "find raises Not_found" `Quick test_find_missing;
  ]
