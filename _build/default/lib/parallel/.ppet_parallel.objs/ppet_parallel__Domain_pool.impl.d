lib/parallel/domain_pool.ml: Array Condition Domain Fun Mutex
