(** Disjoint-set forest with union by rank and path compression. *)

type t

val create : int -> t

val find : t -> int -> int
(** Canonical representative of the element's set. *)

val union : t -> int -> int -> unit

val same : t -> int -> int -> bool

val groups : t -> int array array
(** Current partition as arrays of members; group order is by smallest
    member. *)
