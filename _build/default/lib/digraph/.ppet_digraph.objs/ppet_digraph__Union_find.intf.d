lib/digraph/union_find.mli:
