lib/digraph/netgraph.ml: Array Format Hashtbl List
