lib/digraph/heap.mli:
