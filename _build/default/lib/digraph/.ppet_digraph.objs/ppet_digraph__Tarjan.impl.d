lib/digraph/tarjan.ml: Array Netgraph
