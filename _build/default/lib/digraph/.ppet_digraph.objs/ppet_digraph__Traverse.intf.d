lib/digraph/traverse.mli: Netgraph
