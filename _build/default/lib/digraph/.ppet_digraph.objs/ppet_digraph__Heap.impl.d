lib/digraph/heap.ml: Array
