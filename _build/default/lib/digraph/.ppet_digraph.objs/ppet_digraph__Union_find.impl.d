lib/digraph/union_find.ml: Array Hashtbl List
