lib/digraph/tarjan.mli: Netgraph
