lib/digraph/traverse.ml: Array List Netgraph Queue
