lib/digraph/prng.ml: Array Int64
