lib/digraph/prng.mli:
