lib/digraph/components.ml: Array Hashtbl List Netgraph Union_find
