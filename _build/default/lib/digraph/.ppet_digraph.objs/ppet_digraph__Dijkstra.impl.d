lib/digraph/dijkstra.ml: Array Heap Netgraph
