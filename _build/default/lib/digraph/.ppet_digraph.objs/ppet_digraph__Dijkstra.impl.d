lib/digraph/dijkstra.ml: Array Hashtbl Heap Netgraph
