lib/digraph/netgraph.mli: Format
