lib/digraph/components.mli: Netgraph
