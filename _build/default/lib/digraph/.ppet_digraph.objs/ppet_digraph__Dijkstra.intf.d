lib/digraph/dijkstra.mli: Netgraph
