(** Deterministic pseudo-random number generator (splitmix64).

    The probabilistic multicommodity-flow saturation of the paper needs a
    reproducible random source so that experiments can be replayed exactly.
    Splitmix64 is small, fast, and passes BigCrush for this use. *)

type t

val create : int64 -> t
(** [create seed] makes an independent generator. Equal seeds give equal
    streams. *)

val copy : t -> t
(** [copy g] duplicates the generator state; both copies then evolve
    independently. *)

val next_int64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int g bound] is uniform in [0, bound). Raises [Invalid_argument] if
    [bound <= 0]. *)

val float : t -> float -> float
(** [float g bound] is uniform in [0, bound). *)

val bool : t -> bool
(** Fair coin. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. Raises [Invalid_argument] on an
    empty array. *)
