type t = { mutable state : int64 }

let create seed = { state = seed }

let copy g = { state = g.state }

(* splitmix64: Steele, Lea & Flood, "Fast splittable pseudorandom number
   generators", OOPSLA 2014. *)
let next_int64 g =
  let open Int64 in
  g.state <- add g.state 0x9E3779B97F4A7C15L;
  let z = g.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let int g bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  let mask = 0x3FFFFFFFFFFFFFFFL in
  let v = Int64.to_int (Int64.logand (next_int64 g) mask) in
  v mod bound

let float g bound =
  (* 53 high bits give a uniform float in [0,1). *)
  let v = Int64.shift_right_logical (next_int64 g) 11 in
  Int64.to_float v /. 9007199254740992.0 *. bound

let bool g = Int64.logand (next_int64 g) 1L = 1L

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick g a =
  if Array.length a = 0 then invalid_arg "Prng.pick: empty array";
  a.(int g (Array.length a))
