(** Strongly connected components (Tarjan 1972, iterative formulation).

    The paper identifies SCCs (STEP 2 of the Merced pipeline, Table 2) to
    enforce the legal-retiming constraint Eq. (6) on circuit loops. *)

type result = {
  component : int array;  (** vertex -> component id, ids in [0, count) *)
  count : int;            (** number of components *)
  members : int array array;  (** component id -> member vertices *)
}

val run : Netgraph.t -> result
(** Components are numbered in reverse topological order of the condensed
    graph (a net from component [a] to component [b <> a] implies
    [a > b]). *)

val is_trivial : result -> Netgraph.t -> int -> bool
(** [is_trivial r g c] holds when component [c] is a single vertex without
    a self-loop net, i.e. lies on no cycle. *)

val nontrivial : result -> Netgraph.t -> int list
(** Components that contain at least one cycle, i.e. the circuit loops
    subject to Eq. (6). *)

val net_internal : result -> Netgraph.t -> int -> int option
(** [net_internal r g e] is [Some c] when net [e] has its source and at
    least one sink inside the same component [c] lying on a cycle — a net
    whose cut is restricted by the retiming budget — and [None]
    otherwise. *)
