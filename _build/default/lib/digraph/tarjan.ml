type result = {
  component : int array;
  count : int;
  members : int array array;
}

(* Iterative Tarjan: an explicit stack of (vertex, successor cursor) frames
   avoids stack overflow on the deep netlists of the large benchmarks. *)
let run g =
  let n = Netgraph.n_nodes g in
  Netgraph.freeze g;
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let next_index = ref 0 in
  let component = Array.make n (-1) in
  let comp_count = ref 0 in
  let succs = Array.init n (fun v -> Netgraph.successors g v) in
  let visit root =
    let frames = ref [ (root, ref 0) ] in
    index.(root) <- !next_index;
    lowlink.(root) <- !next_index;
    incr next_index;
    stack := root :: !stack;
    on_stack.(root) <- true;
    while !frames <> [] do
      match !frames with
      | [] -> ()
      | (v, cursor) :: rest ->
        if !cursor < Array.length succs.(v) then begin
          let w = succs.(v).(!cursor) in
          incr cursor;
          if index.(w) < 0 then begin
            index.(w) <- !next_index;
            lowlink.(w) <- !next_index;
            incr next_index;
            stack := w :: !stack;
            on_stack.(w) <- true;
            frames := (w, ref 0) :: !frames
          end
          else if on_stack.(w) then
            lowlink.(v) <- min lowlink.(v) index.(w)
        end
        else begin
          (* v is fully explored: maybe close a component, then pop. *)
          if lowlink.(v) = index.(v) then begin
            let continue = ref true in
            while !continue do
              match !stack with
              | [] -> continue := false
              | w :: tl ->
                stack := tl;
                on_stack.(w) <- false;
                component.(w) <- !comp_count;
                if w = v then continue := false
            done;
            incr comp_count
          end;
          frames := rest;
          (match rest with
           | (parent, _) :: _ ->
             lowlink.(parent) <- min lowlink.(parent) lowlink.(v)
           | [] -> ())
        end
    done
  in
  for v = 0 to n - 1 do
    if index.(v) < 0 then visit v
  done;
  let counts = Array.make !comp_count 0 in
  Array.iter (fun c -> counts.(c) <- counts.(c) + 1) component;
  let members = Array.init !comp_count (fun c -> Array.make counts.(c) 0) in
  let fill = Array.make !comp_count 0 in
  for v = 0 to n - 1 do
    let c = component.(v) in
    members.(c).(fill.(c)) <- v;
    fill.(c) <- fill.(c) + 1
  done;
  { component; count = !comp_count; members }

let has_self_loop g v =
  Array.exists
    (fun e -> Array.exists (fun w -> w = v) (Netgraph.net_sinks g e))
    (Netgraph.out_nets g v)

let is_trivial r g c =
  match r.members.(c) with
  | [| v |] -> not (has_self_loop g v)
  | _ -> false

let nontrivial r g =
  let acc = ref [] in
  for c = r.count - 1 downto 0 do
    if not (is_trivial r g c) then acc := c :: !acc
  done;
  !acc

let net_internal r g e =
  let src = Netgraph.net_src g e in
  let c = r.component.(src) in
  if is_trivial r g c then None
  else if Array.exists (fun v -> r.component.(v) = c) (Netgraph.net_sinks g e)
  then Some c
  else None
