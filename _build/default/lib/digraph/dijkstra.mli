(** Single-source shortest paths over net distances (STEP 3.2 of the
    modified [Saturate_Network], Table 3).

    Traversing any branch of net [e] costs [dist e >= 0]. The result
    records, for every reachable vertex, the net through which it was
    settled; the set of those nets is the shortest-path tree whose flow
    the saturation procedure increments. *)

type tree = {
  dist : float array;      (** vertex -> distance, [infinity] if unreachable *)
  via : int array;         (** vertex -> settling net id, [-1] for the source
                               and unreachable vertices *)
  tree_nets : int array;   (** distinct nets of the shortest-path tree *)
}

val run : Netgraph.t -> dist:(int -> float) -> src:int -> tree
(** Raises [Invalid_argument] if some net has a negative distance. *)

val path_to : tree -> Netgraph.t -> int -> int list
(** [path_to t g v] is the list of net ids on the tree path from the
    source to [v], source side first. Raises [Not_found] when [v] is
    unreachable. *)
