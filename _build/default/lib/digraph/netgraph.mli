(** Directed graph under the multi-pin net model of the paper (Sec. 2.1).

    Vertices are integers [0 .. n_nodes-1] and stand for circuit modules
    (combinational cells, registers, primary inputs). Each {e net} has a
    single source vertex and one or more sink vertices: the multi-pin model
    represents a fanout net as one edge with branches, so that cutting the
    net severs the source from every sink and counts as a single cut.

    The graph is built incrementally with [add_net] and then frozen by
    [freeze]; all queries work on both states but are O(1) only after
    freezing. *)

type t

val create : int -> t
(** [create n] is an empty graph on [n] vertices. *)

val add_net : t -> src:int -> sinks:int list -> int
(** [add_net g ~src ~sinks] records a net and returns its dense id.
    Self-loop branches ([src] appearing in [sinks]) are allowed and
    represent direct feedback. Raises [Invalid_argument] on vertex ids out
    of range or an empty sink list. *)

val freeze : t -> unit
(** Build the incidence indexes. Implicitly called by accessors; adding a
    net after freezing unfreezes the graph. *)

val n_nodes : t -> int

val n_nets : t -> int

val net_src : t -> int -> int

val net_sinks : t -> int -> int array

val out_nets : t -> int -> int array
(** Nets whose source is the given vertex. *)

val in_nets : t -> int -> int array
(** Nets having the given vertex among their sinks (each net listed once
    even if the vertex appears as several sink pins). *)

val arcs : t -> (int * int * int) array
(** All (src, sink, net id) arcs, one per sink pin. *)

val successors : t -> int -> int array
(** Distinct sink vertices over all outgoing nets. *)

val predecessors : t -> int -> int array
(** Distinct source vertices over all incoming nets. *)

val iter_nets : t -> (int -> src:int -> sinks:int array -> unit) -> unit

val pp : Format.formatter -> t -> unit
