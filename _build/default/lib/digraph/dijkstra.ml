type tree = {
  dist : float array;
  via : int array;
  tree_nets : int array;
}

let run g ~dist ~src =
  let n = Netgraph.n_nodes g in
  if src < 0 || src >= n then invalid_arg "Dijkstra.run: bad source";
  Netgraph.freeze g;
  let d = Array.make n infinity in
  let via = Array.make n (-1) in
  let heap = Heap.create n in
  d.(src) <- 0.0;
  Heap.insert heap src 0.0;
  let settled = Array.make n false in
  while not (Heap.is_empty heap) do
    let v, dv = Heap.pop_min heap in
    if not settled.(v) then begin
      settled.(v) <- true;
      let relax e =
        let w = dist e in
        if w < 0.0 then invalid_arg "Dijkstra.run: negative net distance";
        let cand = dv +. w in
        Array.iter
          (fun u ->
            if (not settled.(u)) && cand < d.(u) then begin
              d.(u) <- cand;
              via.(u) <- e;
              Heap.insert_or_decrease heap u cand
            end)
          (Netgraph.net_sinks g e)
      in
      Array.iter relax (Netgraph.out_nets g v)
    end
  done;
  let seen = Hashtbl.create 16 in
  let nets = ref [] in
  for v = n - 1 downto 0 do
    let e = via.(v) in
    if e >= 0 && not (Hashtbl.mem seen e) then begin
      Hashtbl.add seen e ();
      nets := e :: !nets
    end
  done;
  { dist = d; via; tree_nets = Array.of_list !nets }

let path_to t g v =
  if t.dist.(v) = infinity then raise Not_found;
  let rec walk v acc =
    let e = t.via.(v) in
    if e < 0 then acc else walk (Netgraph.net_src g e) (e :: acc)
  in
  walk v []
