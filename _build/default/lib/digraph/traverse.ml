let bfs neighbours n from =
  let seen = Array.make n false in
  let queue = Queue.create () in
  List.iter
    (fun v ->
      if v < 0 || v >= n then invalid_arg "Traverse: seed out of range";
      if not seen.(v) then begin
        seen.(v) <- true;
        Queue.add v queue
      end)
    from;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    Array.iter
      (fun w ->
        if not seen.(w) then begin
          seen.(w) <- true;
          Queue.add w queue
        end)
      (neighbours v)
  done;
  seen

let reachable g ~from =
  bfs (fun v -> Netgraph.successors g v) (Netgraph.n_nodes g) from

let co_reachable g ~from =
  bfs (fun v -> Netgraph.predecessors g v) (Netgraph.n_nodes g) from

let in_degrees g =
  let n = Netgraph.n_nodes g in
  let deg = Array.make n 0 in
  Netgraph.iter_nets g (fun _ ~src:_ ~sinks ->
      Array.iter (fun v -> deg.(v) <- deg.(v) + 1) sinks);
  deg

(* Kahn's algorithm over arcs (each sink pin counts separately). *)
let topological g =
  let n = Netgraph.n_nodes g in
  Netgraph.freeze g;
  let deg = in_degrees g in
  let queue = Queue.create () in
  for v = 0 to n - 1 do
    if deg.(v) = 0 then Queue.add v queue
  done;
  let order = Array.make n (-1) in
  let filled = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    order.(!filled) <- v;
    incr filled;
    Array.iter
      (fun e ->
        Array.iter
          (fun w ->
            deg.(w) <- deg.(w) - 1;
            if deg.(w) = 0 then Queue.add w queue)
          (Netgraph.net_sinks g e))
      (Netgraph.out_nets g v)
  done;
  if !filled = n then Some order else None

let longest_path_levels g ~roots =
  let n = Netgraph.n_nodes g in
  let level = Array.make n (-1) in
  List.iter (fun v -> level.(v) <- 0) roots;
  match topological g with
  | None -> level
  | Some order ->
    Array.iter
      (fun v ->
        if level.(v) >= 0 then
          Array.iter
            (fun e ->
              Array.iter
                (fun w -> if level.(w) < level.(v) + 1 then level.(w) <- level.(v) + 1)
                (Netgraph.net_sinks g e))
            (Netgraph.out_nets g v))
      order;
    level
