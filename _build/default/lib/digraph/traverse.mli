(** Depth-first traversal utilities used across the compiler. *)

val reachable : Netgraph.t -> from:int list -> bool array
(** Vertices reachable (following net direction) from any seed. Seeds are
    themselves reachable. *)

val co_reachable : Netgraph.t -> from:int list -> bool array
(** Vertices from which some seed can be reached (reverse reachability). *)

val topological : Netgraph.t -> int array option
(** [Some order] listing all vertices so that every net goes forward, or
    [None] when the graph has a cycle. *)

val longest_path_levels : Netgraph.t -> roots:int list -> int array
(** For an acyclic traversal from [roots]: level of each vertex = length
    of the longest net path from a root (roots have level 0, vertices
    unreachable from the roots have level -1). Behaviour is unspecified on
    cyclic graphs; use after checking [topological]. *)
