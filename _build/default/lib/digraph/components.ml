type partition = {
  cluster : int array;
  count : int;
  members : int array array;
}

let of_union_find uf n =
  let root_to_id = Hashtbl.create 16 in
  let cluster = Array.make n (-1) in
  let count = ref 0 in
  for v = 0 to n - 1 do
    let r = Union_find.find uf v in
    let id =
      try Hashtbl.find root_to_id r
      with Not_found ->
        let id = !count in
        Hashtbl.add root_to_id r id;
        incr count;
        id
    in
    cluster.(v) <- id
  done;
  let sizes = Array.make !count 0 in
  Array.iter (fun c -> sizes.(c) <- sizes.(c) + 1) cluster;
  let members = Array.init !count (fun c -> Array.make sizes.(c) 0) in
  let fill = Array.make !count 0 in
  for v = 0 to n - 1 do
    let c = cluster.(v) in
    members.(c).(fill.(c)) <- v;
    fill.(c) <- fill.(c) + 1
  done;
  { cluster; count = !count; members }

let weak g ~keep =
  let n = Netgraph.n_nodes g in
  let uf = Union_find.create n in
  Netgraph.iter_nets g (fun e ~src ~sinks ->
      if keep e then Array.iter (fun v -> Union_find.union uf src v) sinks);
  of_union_find uf n

let restrict g ~vertices ~keep =
  let inside = Hashtbl.create (Array.length vertices) in
  Array.iteri (fun i v -> Hashtbl.replace inside v i) vertices;
  let m = Array.length vertices in
  let uf = Union_find.create m in
  Netgraph.iter_nets g (fun e ~src ~sinks ->
      if keep e then
        match Hashtbl.find_opt inside src with
        | None -> ()
        | Some i ->
          Array.iter
            (fun v ->
              match Hashtbl.find_opt inside v with
              | Some j -> Union_find.union uf i j
              | None -> ())
            sinks);
  let part = of_union_find uf m in
  Array.map (fun idxs -> Array.map (fun i -> vertices.(i)) idxs) part.members

let cut_nets g cluster_of =
  let acc = ref [] in
  Netgraph.iter_nets g (fun e ~src ~sinks ->
      let c = cluster_of.(src) in
      if Array.exists (fun v -> cluster_of.(v) <> c) sinks then
        acc := e :: !acc);
  List.rev !acc
