module Circuit = Ppet_netlist.Circuit
module Segment = Ppet_netlist.Segment
module Gate = Ppet_netlist.Gate

type dictionary = {
  fault_free : int;
  by_signature : (int, Fault.t list) Hashtbl.t;
  all : (Fault.t * int) list;
}

(* Single-pattern (bit 0 only) evaluation of the segment under a fault,
   compressing observed outputs into the MISR word per pattern. *)
let signature_of sim (seg : Segment.t) ~misr_width ~member fault =
  let c = Simulator.circuit sim in
  let width = Segment.input_count seg in
  let misr = Misr.create ~width:misr_width () in
  let inputs = Segment.input_signals seg in
  let n = Circuit.size c in
  for pattern = 0 to (1 lsl width) - 1 do
    let values = Array.make n 0 in
    Array.iteri
      (fun i sig_id -> values.(sig_id) <- (pattern lsr i) land 1)
      inputs;
    (match fault with
     | Some { Fault.site = Fault.Output id; stuck_at }
       when (not member.(id)) || (Circuit.node c id).Circuit.kind = Gate.Input
       ->
       values.(id) <- (if stuck_at then 1 else 0)
     | Some _ | None -> ());
    Array.iter
      (fun id ->
        if member.(id) then begin
          let nd = Circuit.node c id in
          let ins = Array.map (fun f -> values.(f)) nd.Circuit.fanins in
          (match fault with
           | Some { Fault.site = Fault.Input_pin (gid, pin); stuck_at }
             when gid = id ->
             ins.(pin) <- (if stuck_at then 1 else 0)
           | Some _ | None -> ());
          let v = Gate.eval_word nd.Circuit.kind ins land 1 in
          let v =
            match fault with
            | Some { Fault.site = Fault.Output oid; stuck_at } when oid = id ->
              if stuck_at then 1 else 0
            | Some _ | None -> v
          in
          values.(id) <- v
        end)
      (Simulator.order sim);
    let word = ref 0 in
    Array.iteri
      (fun i o -> word := !word lor ((values.(o) land 1) lsl (i mod misr_width)))
      seg.Segment.observed;
    ignore (Misr.absorb misr !word)
  done;
  Misr.signature misr

let build sim seg ~misr_width faults =
  let width = Segment.input_count seg in
  if width > 16 then invalid_arg "Diagnosis.build: segment wider than 16 inputs";
  if misr_width < 1 || misr_width > 32 then
    invalid_arg "Diagnosis.build: bad MISR width";
  let c = Simulator.circuit sim in
  let member = Array.make (Circuit.size c) false in
  Array.iter (fun id -> member.(id) <- true) seg.Segment.members;
  let fault_free = signature_of sim seg ~misr_width ~member None in
  let by_signature = Hashtbl.create 64 in
  let all =
    List.map
      (fun f ->
        let s = signature_of sim seg ~misr_width ~member (Some f) in
        let cur = try Hashtbl.find by_signature s with Not_found -> [] in
        Hashtbl.replace by_signature s (f :: cur);
        (f, s))
      faults
  in
  { fault_free; by_signature; all }

let fault_free d = d.fault_free

let lookup d s =
  match Hashtbl.find_opt d.by_signature s with
  | Some fs -> List.rev fs
  | None -> []

let distinguishable_classes d =
  let n = Hashtbl.length d.by_signature in
  if Hashtbl.mem d.by_signature d.fault_free then n - 1 else n

let undiagnosable d =
  List.filter_map
    (fun (f, s) -> if s = d.fault_free then Some f else None)
    d.all

let resolution d =
  let detected =
    List.length (List.filter (fun (_, s) -> s <> d.fault_free) d.all)
  in
  if detected = 0 then 0.0
  else float_of_int (distinguishable_classes d) /. float_of_int detected
